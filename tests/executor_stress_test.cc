// Streaming executor stress tests: generator-driven multi-pane streams,
// sliding windows, cross-engine value agreement on real workload shapes,
// and metric sanity under load.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "src/benchlib/workloads.h"
#include "src/runtime/executor.h"
#include "tests/test_seed.h"

namespace hamlet {
namespace {

using EmissionKey = std::tuple<QueryId, int64_t, Timestamp>;

std::map<EmissionKey, double> ToMap(const RunOutput& out) {
  std::map<EmissionKey, double> m;
  for (const Emission& e : out.emissions)
    m[{e.query, e.group_key, e.window_start}] = e.value;
  return m;
}

TEST(ExecutorStressTest, EnginesAgreeOnGeneratedRidesharingStream) {
  BenchWorkload bw =
      MakeWorkload1("ridesharing", 8, /*window_ms=*/5 * kMillisPerSecond);
  GeneratorConfig gen;
  gen.seed = test::SeedOr(77);
  gen.events_per_minute = 1200;
  gen.duration_minutes = 1;
  gen.num_groups = 3;
  gen.burstiness = 0.6;
  gen.max_burst = 8;
  EventVector ev = bw.generator->Generate(gen);

  RunConfig base;
  base.kind = EngineKind::kGretaGraph;
  StreamExecutor ref(*bw.plan, base);
  std::map<EmissionKey, double> expected = ToMap(ref.Run(ev));
  ASSERT_GT(expected.size(), 0u);

  for (EngineKind kind :
       {EngineKind::kHamletDynamic, EngineKind::kHamletStatic,
        EngineKind::kHamletNoShare, EngineKind::kGretaPrefix}) {
    RunConfig config;
    config.kind = kind;
    StreamExecutor executor(*bw.plan, config);
    std::map<EmissionKey, double> actual = ToMap(executor.Run(ev));
    ASSERT_EQ(actual.size(), expected.size()) << EngineKindName(kind);
    for (const auto& [key, value] : expected) {
      auto it = actual.find(key);
      ASSERT_NE(it, actual.end()) << EngineKindName(kind);
      EXPECT_DOUBLE_EQ(it->second, value)
          << EngineKindName(kind) << " q" << std::get<0>(key) << " g"
          << std::get<1>(key) << " ws" << std::get<2>(key);
    }
  }
}

TEST(ExecutorStressTest, WorkloadTwoAgreesAcrossPolicies) {
  BenchWorkload bw = MakeWorkload2(12);
  GeneratorConfig gen;
  gen.seed = test::SeedOr(5);
  gen.events_per_minute = 150;
  gen.duration_minutes = 20;
  gen.num_groups = 2;
  gen.burstiness = 0.95;
  gen.max_burst = 60;
  EventVector ev = bw.generator->Generate(gen);

  RunConfig base;
  base.kind = EngineKind::kHamletNoShare;
  StreamExecutor ref(*bw.plan, base);
  std::map<EmissionKey, double> expected = ToMap(ref.Run(ev));
  ASSERT_GT(expected.size(), 0u);

  for (EngineKind kind :
       {EngineKind::kHamletDynamic, EngineKind::kHamletStatic}) {
    RunConfig config;
    config.kind = kind;
    StreamExecutor executor(*bw.plan, config);
    std::map<EmissionKey, double> actual = ToMap(executor.Run(ev));
    ASSERT_EQ(actual.size(), expected.size());
    for (const auto& [key, value] : expected) {
      // Trend counts on 20-minute bursty windows reach 1e100+; summation
      // order differs between shared and solo folding, so compare with a
      // tight relative tolerance (empty-window MAX yields -inf: inf==inf).
      const double actual_value = actual.at(key);
      if (std::isinf(value)) {
        EXPECT_DOUBLE_EQ(actual_value, value);
      } else {
        const double scale = std::max({1.0, std::abs(value)});
        EXPECT_NEAR(actual_value, value, 1e-9 * scale)
            << EngineKindName(kind) << " q" << std::get<0>(key) << " g"
            << std::get<1>(key) << " ws" << std::get<2>(key);
      }
    }
  }
}

TEST(ExecutorStressTest, SlidingWindowsOverGeneratedStream) {
  // 15s window sliding by 5s over a 1-minute smart-home stream: every event
  // belongs to 3 window instances of each query.
  Schema* schema;
  BenchWorkload bw = MakeWorkload1("smart_home", 4, 15 * kMillisPerSecond);
  schema = const_cast<Schema*>(&bw.generator->schema());
  (void)schema;
  // Rebuild with sliding windows via the text API.
  Workload sliding(const_cast<Schema*>(&bw.generator->schema()));
  for (const Query& q : bw.workload->queries()) {
    Query copy = q;
    copy.window = WindowSpec::Sliding(15 * kMillisPerSecond,
                                      5 * kMillisPerSecond);
    ASSERT_TRUE(sliding.Add(copy).ok());
  }
  WorkloadPlan plan = AnalyzeWorkload(sliding).value();
  EXPECT_EQ(plan.pane_size, 5 * kMillisPerSecond);

  GeneratorConfig gen;
  gen.seed = test::SeedOr(21);
  gen.events_per_minute = 600;
  gen.duration_minutes = 1;
  gen.num_groups = 2;
  EventVector ev = bw.generator->Generate(gen);

  RunConfig greta_cfg;
  greta_cfg.kind = EngineKind::kGretaGraph;
  StreamExecutor ref(plan, greta_cfg);
  std::map<EmissionKey, double> expected = ToMap(ref.Run(ev));

  RunConfig hamlet_cfg;
  hamlet_cfg.kind = EngineKind::kHamletDynamic;
  StreamExecutor executor(plan, hamlet_cfg);
  std::map<EmissionKey, double> actual = ToMap(executor.Run(ev));
  ASSERT_EQ(actual.size(), expected.size());
  for (const auto& [key, value] : expected)
    EXPECT_DOUBLE_EQ(actual.at(key), value);
  // Multiple overlapping instances must have been emitted per query.
  EXPECT_GT(expected.size(), 4u * 4u);
}

TEST(ExecutorStressTest, MetricsScaleWithLoad) {
  BenchWorkload bw =
      MakeWorkload1("nyc_taxi", 6, /*window_ms=*/10 * kMillisPerSecond);
  GeneratorConfig small;
  small.seed = test::SeedOr(3);
  small.events_per_minute = 500;
  small.duration_minutes = 1;
  small.num_groups = 2;
  GeneratorConfig big = small;
  big.events_per_minute = 2000;
  RunConfig config;
  config.kind = EngineKind::kHamletDynamic;
  config.collect_emissions = false;
  StreamExecutor a(*bw.plan, config);
  RunMetrics ma = a.Run(bw.generator->Generate(small)).metrics;
  StreamExecutor b(*bw.plan, config);
  RunMetrics mb = b.Run(bw.generator->Generate(big)).metrics;
  EXPECT_EQ(ma.events, 500);
  EXPECT_EQ(mb.events, 2000);
  EXPECT_GT(mb.peak_memory_bytes, ma.peak_memory_bytes);
  EXPECT_GT(mb.hamlet.bursts_total, ma.hamlet.bursts_total);
}

TEST(ExecutorStressTest, WorkloadFactoriesProduceValidPlans) {
  for (const char* dataset : {"ridesharing", "nyc_taxi", "smart_home"}) {
    for (int k : {5, 25, 50}) {
      BenchWorkload bw = MakeWorkload1(dataset, k, kMillisPerMinute);
      EXPECT_EQ(bw.plan->num_exec(), k) << dataset;
      // Every W1 query shares the dataset's Kleene type: one share group
      // containing all queries.
      ASSERT_GE(bw.plan->share_groups.size(), 1u) << dataset;
      EXPECT_EQ(bw.plan->share_groups[0].members.Count(), k) << dataset;
    }
  }
  for (int k : {10, 40, 100}) {
    BenchWorkload bw = MakeWorkload2(k);
    EXPECT_EQ(bw.plan->num_exec(), k);
    EXPECT_GE(bw.plan->share_groups.size(), 2u);
    EXPECT_EQ(bw.plan->pane_size, 5 * kMillisPerMinute);
  }
}

}  // namespace
}  // namespace hamlet

int main(int argc, char** argv) {
  return hamlet::test::RunSeededSuite(argc, argv);
}
