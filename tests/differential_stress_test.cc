// Differential stress harness: ONE generated stream, replayed under a
// seeded random sample of runtime configurations — engine kind x shard
// count x ingest mode (session-level batches of varying size, or 1/2/4
// concurrent producers, optionally with mid-stream producer churn) x
// staging batch size x adaptive batching x columnar x run propagation x
// work stealing x queue capacity — asserting the emission set is
// bit-identical to the
// single-threaded batch reference every time. Every documented
// emission-neutral knob has to actually be neutral, in combination, under
// real concurrency.
//
// The sample is drawn from a seed that is logged on entry and printed in
// every failure label, and overridable via --seed= / HAMLET_TEST_SEED
// (tests/test_seed.h), so any failure replays exactly. The tier-1 run
// samples a small config set; `ctest -C long` (differential_stress_long)
// replays the same stream under --stress_configs=50.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/benchlib/workloads.h"
#include "src/runtime/executor.h"
#include "src/runtime/sharded_session.h"
#include "tests/test_seed.h"

namespace hamlet {
namespace {

int g_stress_configs = 12;

constexpr EngineKind kAllKinds[] = {
    EngineKind::kHamletDynamic, EngineKind::kHamletStatic,
    EngineKind::kHamletNoShare, EngineKind::kGretaGraph,
    EngineKind::kGretaPrefix,   EngineKind::kTwoStep,
    EngineKind::kSharon};

struct StressConfig {
  EngineKind kind = EngineKind::kHamletDynamic;
  int shards = 1;
  int producers = 0;  // 0 = session-level ingest
  int push_batch = 16;
  int shard_batch = 128;
  int queue_capacity = 8192;
  bool adaptive = false;
  bool columnar = true;
  bool run_propagation = true;
  bool stealing = false;
  bool churn = false;  // producer handles leave/join at mid-stream

  std::string Describe() const {
    std::string s = EngineKindName(kind);
    s += "/N=" + std::to_string(shards);
    s += producers == 0 ? "/session" : "/P=" + std::to_string(producers);
    s += "/push=" + std::to_string(push_batch);
    s += "/stage=" + std::to_string(shard_batch);
    s += "/q=" + std::to_string(queue_capacity);
    if (adaptive) s += "/adaptive";
    if (!columnar) s += "/scalar";
    if (!run_propagation) s += "/rowpath";
    if (stealing) s += "/steal";
    if (churn) s += "/churn";
    return s;
  }
};

StressConfig SampleConfig(Rng& rng) {
  StressConfig c;
  c.kind = kAllKinds[rng.NextBelow(7)];
  c.shards = static_cast<int>(rng.NextBelow(4)) + 1;
  const int producer_choices[] = {0, 1, 2, 4};
  c.producers = producer_choices[rng.NextBelow(4)];
  const int push_choices[] = {1, 16, 64};
  c.push_batch = push_choices[rng.NextBelow(3)];
  const int stage_choices[] = {1, 32, 256};
  c.shard_batch = stage_choices[rng.NextBelow(3)];
  const int queue_choices[] = {64, 8192};
  c.queue_capacity = queue_choices[rng.NextBelow(2)];
  c.adaptive = rng.NextBelow(2) == 1;
  c.columnar = rng.NextBelow(2) == 1;
  c.run_propagation = rng.NextBelow(2) == 1;
  c.stealing = rng.NextBelow(2) == 1;
  c.churn = c.producers >= 2 && rng.NextBelow(2) == 1;
  return c;
}

void ExpectSameValue(double a, double b, const std::string& label) {
  if (std::isnan(a) && std::isnan(b)) return;
  EXPECT_EQ(a, b) << label;
}

void ExpectSameEmissionSet(const std::vector<Emission>& expected,
                           const std::vector<Emission>& actual,
                           const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    const Emission& a = expected[i];
    const Emission& b = actual[i];
    const std::string at = label + " emission #" + std::to_string(i);
    EXPECT_EQ(a.query, b.query) << at;
    EXPECT_EQ(a.group_key, b.group_key) << at;
    EXPECT_EQ(a.window_start, b.window_start) << at;
    EXPECT_EQ(a.window_end, b.window_end) << at;
    ExpectSameValue(a.value, b.value, at);
  }
}

// Feeds `ev` through P concurrent producer handles; with `churn`, the
// first wave of handles retires at mid-stream and a fresh wave carries
// the tail.
void FeedProducers(ShardedSession* session, const EventVector& ev,
                   int num_producers, bool churn) {
  const size_t mid = churn ? ev.size() / 2 : ev.size();
  for (int phase = 0; phase < (churn ? 2 : 1); ++phase) {
    const size_t begin = phase == 0 ? 0 : mid;
    const size_t end = phase == 0 ? mid : ev.size();
    std::vector<std::unique_ptr<ShardedSession::Producer>> producers;
    for (int p = 0; p < num_producers; ++p) {
      producers.push_back(session->AddProducer().value());
    }
    std::vector<std::thread> threads;
    for (int p = 0; p < num_producers; ++p) {
      threads.emplace_back([&, p, begin, end] {
        ShardedSession::Producer& producer =
            *producers[static_cast<size_t>(p)];
        for (size_t i = begin + static_cast<size_t>(p); i < end;
             i += static_cast<size_t>(num_producers)) {
          ASSERT_TRUE(producer.Push(ev[i]).ok());
        }
        if (end == ev.size() && !ev.empty()) {
          ASSERT_TRUE(producer.AdvanceTo(ev.back().time).ok());
        }
        ASSERT_TRUE(producer.Close().ok());
      });
    }
    for (std::thread& t : threads) t.join();
  }
}

TEST(DifferentialStress, SampledConfigsMatchBatchReference) {
  const uint64_t seed = test::SeedOr(0x5EED5);
  BenchWorkload bw =
      MakeWorkload1("ridesharing", 6, /*window_ms=*/5 * kMillisPerSecond);
  GeneratorConfig gen;
  gen.seed = seed;
  gen.events_per_minute = 900;
  gen.duration_minutes = 1;
  gen.num_groups = 8;
  gen.burstiness = 0.7;
  gen.max_burst = 10;
  EventVector ev = bw.generator->Generate(gen);
  ASSERT_FALSE(ev.empty());

  // One batch reference per engine kind, computed on demand.
  std::map<EngineKind, RunOutput> references;
  auto reference = [&](EngineKind kind) -> const RunOutput& {
    auto it = references.find(kind);
    if (it == references.end()) {
      RunConfig config;
      config.kind = kind;
      StreamExecutor executor(*bw.plan, config);
      it = references.emplace(kind, executor.Run(ev)).first;
      EXPECT_TRUE(it->second.status.ok()) << it->second.status.ToString();
      EXPECT_GT(it->second.emissions.size(), 0u) << EngineKindName(kind);
    }
    return it->second;
  };

  Rng rng(seed ^ 0x9E3779B97F4A7C15ull);
  for (int i = 0; i < g_stress_configs; ++i) {
    const StressConfig sc = SampleConfig(rng);
    const std::string label = "seed=" + std::to_string(seed) + " config#" +
                              std::to_string(i) + " " + sc.Describe();
    SCOPED_TRACE(label);
    RunConfig config;
    config.kind = sc.kind;
    config.num_shards = sc.shards;
    config.shard_batch_size = sc.shard_batch;
    config.shard_queue_capacity = sc.queue_capacity;
    config.adaptive_batching = sc.adaptive;
    config.columnar = sc.columnar;
    config.run_propagation = sc.run_propagation;
    config.work_stealing = sc.stealing;
    CollectingSink sink;
    Result<std::unique_ptr<ShardedSession>> opened =
        ShardedSession::Open(*bw.plan, config, &sink);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    ShardedSession& session = *opened.value();
    if (sc.producers == 0) {
      for (size_t j = 0; j < ev.size();
           j += static_cast<size_t>(sc.push_batch)) {
        const size_t len = std::min(static_cast<size_t>(sc.push_batch),
                                    ev.size() - j);
        Status s =
            session.PushBatch(std::span<const Event>(ev.data() + j, len));
        ASSERT_TRUE(s.ok()) << s.ToString();
      }
      ASSERT_TRUE(session.AdvanceTo(ev.back().time).ok());
    } else {
      FeedProducers(&session, ev, sc.producers, sc.churn);
    }
    Result<RunMetrics> metrics = session.Close();
    ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
    const RunOutput& ref = reference(sc.kind);
    ExpectSameEmissionSet(ref.emissions, sink.Take(), label);
    EXPECT_EQ(ref.metrics.events, metrics.value().events) << label;
    EXPECT_EQ(ref.metrics.emissions, metrics.value().emissions) << label;
    if (!sc.stealing) {
      EXPECT_EQ(metrics.value().stolen_panes, 0) << label;
    }
  }
}

}  // namespace
}  // namespace hamlet

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--stress_configs=", 17) == 0) {
      hamlet::g_stress_configs = std::atoi(argv[i] + 17);
    }
  }
  return hamlet::test::RunSeededSuite(argc, argv);
}
