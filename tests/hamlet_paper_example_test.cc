// Reproduces the paper's worked examples exactly:
//  * Fig. 4(b)/5(a,b) + Tables 3 and 4 — graphlet-level snapshots x and y
//    with values per query over the A A C | B B B B | A A C C C | B stream;
//  * Fig. 5(c) + Table 5 — event-level snapshot z under predicate
//    divergence (edge b4->b5 holds for q1 but not q2).
#include <gtest/gtest.h>

#include "src/hamlet/batch_eval.h"
#include "src/optimizer/policies.h"
#include "src/query/parser.h"
#include "src/stream/stream_builder.h"

namespace hamlet {
namespace {

class PaperExampleTest : public ::testing::Test {
 protected:
  void AddQuery(const std::string& text) {
    Query q = ParseQuery(text).value();
    ASSERT_TRUE(workload_.Add(q).ok());
  }
  WorkloadPlan Analyze() {
    Result<WorkloadPlan> plan = AnalyzeWorkload(workload_);
    HAMLET_CHECK(plan.ok());
    return std::move(plan).value();
  }
  Schema schema_;
  Workload workload_{&schema_};
};

TEST_F(PaperExampleTest, Tables3And4GraphletSnapshots) {
  // q1 = SEQ(A, B+), q2 = SEQ(C, B+) (Example 3 / Fig. 3(b)).
  AddQuery("RETURN COUNT(*) PATTERN SEQ(A, B+) WITHIN 1 min");
  AddQuery("RETURN COUNT(*) PATTERN SEQ(C, B+) WITHIN 1 min");
  WorkloadPlan plan = Analyze();
  ASSERT_EQ(plan.share_groups.size(), 1u);
  EXPECT_EQ(plan.share_groups[0].mode, PropagationMode::kFastSum);

  // Graphlets of Fig. 4(b): A1 = {a1,a2}, C2 = {c1}, B3 = {b3..b6},
  // A4 = {2 A's}, C5 = {3 C's}, then B6 starts.
  EventVector ev =
      ParseStreamScript("A A C B B B B A A C C C B", &schema_);

  AlwaysSharePolicy policy;
  HamletEngine engine(plan, QuerySet::FirstN(plan.num_exec()), &policy);
  ContextId q1 = engine.OpenContext(0, 0, 100);
  ContextId q2 = engine.OpenContext(1, 0, 100);
  engine.OnPaneStart(0);
  for (const Event& e : ev) engine.OnEvent(e);

  const SnapshotStore& store = engine.snapshot_store();
  // Variable allocation order: B3 opens -> u(=0), x(=1); B6 opens ->
  // u2(=2), y(=3).
  const SnapshotId x = 1, y = 3;
  // Table 4, snapshot x: value(x,q1) = sum(A1,q1) = 2;
  //                      value(x,q2) = sum(C2,q2) = 1.
  EXPECT_DOUBLE_EQ(store.Get(x, q1).count, 2.0);
  EXPECT_DOUBLE_EQ(store.Get(x, q2).count, 1.0);
  // Table 4, snapshot y: value(y,q1) = x + sum(B3) + sum(A4) = 2+30+2 = 34;
  //                      value(y,q2) = 1 + 15 + 3 = 19.
  EXPECT_DOUBLE_EQ(store.Get(y, q1).count, 34.0);
  EXPECT_DOUBLE_EQ(store.Get(y, q2).count, 19.0);

  // Table 3: shared propagation within B3 gives x, 2x, 4x, 8x; the final
  // trend counts fold sum(B3) + count(b13): for q1 the last B contributes
  // count = y = 34, so fcount(q1) = 30 + 34 = 64; q2: 15 + 19 = 34.
  engine.OnPaneEnd();
  ContextResult r1 = engine.CloseContext(q1);
  ContextResult r2 = engine.CloseContext(q2);
  EXPECT_DOUBLE_EQ(r1.value, 64.0);
  EXPECT_DOUBLE_EQ(r2.value, 34.0);
  // Exactly two shared graphlets (B3, B6), each with a graphlet snapshot.
  EXPECT_EQ(engine.stats().graphlets_shared, 2);
  EXPECT_EQ(engine.stats().event_snapshots, 0);
}

TEST_F(PaperExampleTest, Table5EventLevelSnapshots) {
  // Fig. 5(c): the edge (b4, b5) holds for q1 but not q2 due to predicates.
  // We model it with per-query edge predicates: q1's is always true
  // (prev.zero <= next.zero on an all-zero attribute), q2's compares the
  // "ok" attribute, which only decreases between b4 and b5.
  AddQuery(
      "RETURN COUNT(*) PATTERN SEQ(A, B+) WHERE prev.zero <= next.zero "
      "WITHIN 1 min");
  AddQuery(
      "RETURN COUNT(*) PATTERN SEQ(C, B+) WHERE prev.ok <= next.ok "
      "WITHIN 1 min");
  WorkloadPlan plan = Analyze();
  ASSERT_EQ(plan.share_groups.size(), 1u);
  EXPECT_EQ(plan.share_groups[0].mode, PropagationMode::kPerEventSnapshot);

  const AttrId zero = schema_.FindAttr("zero");
  const AttrId ok = schema_.FindAttr("ok");
  const TypeId A = schema_.FindType("A");
  const TypeId B = schema_.FindType("B");
  const TypeId C = schema_.FindType("C");
  auto make = [&](Timestamp t, TypeId ty, double ok_val) {
    Event e(t, ty);
    e.set_attr(zero, 0.0);
    e.set_attr(ok, ok_val);
    return e;
  };
  EventVector ev = {
      make(1, A, 0),  make(2, A, 0),  make(3, C, 0),
      make(4, B, 1),                    // b3
      make(5, B, 5),                    // b4
      make(6, B, 3),                    // b5: b4->b5 fails for q2 (5 > 3)
      make(7, B, 9),                    // b6
      make(8, A, 0),  make(9, A, 0),    // A4
      make(10, C, 0), make(11, C, 0), make(12, C, 0),  // C5
      make(13, B, 9),                   // first event of B6
  };

  AlwaysSharePolicy policy;
  HamletEngine engine(plan, QuerySet::FirstN(plan.num_exec()), &policy);
  ContextId q1 = engine.OpenContext(0, 0, 100);
  ContextId q2 = engine.OpenContext(1, 0, 100);
  engine.OnPaneStart(0);
  for (const Event& e : ev) engine.OnEvent(e);

  // Per-event snapshots: B3 opens with u(=0); z_b3=1, z_b4=2, z_b5=3,
  // z_b6=4; B6 opens with u2(=5); z_b13=6.
  const SnapshotStore& store = engine.snapshot_store();
  // Table 5, snapshot z = count(b5): q1: x + b3 + b4 = 2+2+4 = 8;
  //                                  q2: x + b3 = 1+1 = 2.
  EXPECT_DOUBLE_EQ(store.Get(3, q1).count, 8.0);
  EXPECT_DOUBLE_EQ(store.Get(3, q2).count, 2.0);
  // Table 5, snapshot y = count of B6's first event:
  //   q1: x + sum(B3,q1) + sum(A4,q1) = 2 + 30 + 2 = 34;
  //   q2: x + sum(B3,q2) + sum(C5,q2) = 1 + 11 + 3 = 15.
  EXPECT_DOUBLE_EQ(store.Get(6, q1).count, 34.0);
  EXPECT_DOUBLE_EQ(store.Get(6, q2).count, 15.0);
  EXPECT_GT(engine.stats().event_snapshots, 0);

  engine.OnPaneEnd();
  // fcount(q1) = sum(B3,q1) + count(b13,q1) = 30 + 34 = 64;
  // fcount(q2) = 11 + 15 = 26.
  EXPECT_DOUBLE_EQ(engine.CloseContext(q1).value, 64.0);
  EXPECT_DOUBLE_EQ(engine.CloseContext(q2).value, 26.0);
}

TEST_F(PaperExampleTest, NonSharedMatchesSharedOnPaperStream) {
  AddQuery("RETURN COUNT(*) PATTERN SEQ(A, B+) WITHIN 1 min");
  AddQuery("RETURN COUNT(*) PATTERN SEQ(C, B+) WITHIN 1 min");
  WorkloadPlan plan = Analyze();
  EventVector ev =
      ParseStreamScript("A A C B B B B A A C C C B", &schema_);
  AlwaysSharePolicy always;
  NeverSharePolicy never;
  BatchResult shared = EvalHamletBatch(plan, ev, &always);
  BatchResult solo = EvalHamletBatch(plan, ev, &never);
  ASSERT_EQ(shared.exec_values.size(), solo.exec_values.size());
  for (size_t i = 0; i < shared.exec_values.size(); ++i)
    EXPECT_DOUBLE_EQ(shared.exec_values[i], solo.exec_values[i]);
  // Non-shared execution creates no snapshots at all.
  EXPECT_EQ(solo.stats.snapshots_created, 0);
  EXPECT_EQ(solo.stats.bursts_shared, 0);
  EXPECT_GT(shared.stats.snapshots_created, 0);
}

}  // namespace
}  // namespace hamlet
