// Unit tests for src/common: QuerySet, Rng, Status/Result, Table, stats.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "src/common/memory_meter.h"
#include "src/common/query_set.h"
#include "src/common/rng.h"
#include "src/common/spsc_queue.h"
#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/common/table.h"

namespace hamlet {
namespace {

TEST(QuerySetTest, InsertContainsErase) {
  QuerySet s;
  EXPECT_TRUE(s.Empty());
  s.Insert(0);
  s.Insert(63);
  s.Insert(64);
  s.Insert(255);
  EXPECT_EQ(s.Count(), 4);
  EXPECT_TRUE(s.Contains(0));
  EXPECT_TRUE(s.Contains(63));
  EXPECT_TRUE(s.Contains(64));
  EXPECT_TRUE(s.Contains(255));
  EXPECT_FALSE(s.Contains(1));
  s.Erase(63);
  EXPECT_FALSE(s.Contains(63));
  EXPECT_EQ(s.Count(), 3);
}

TEST(QuerySetTest, SetAlgebra) {
  QuerySet a = QuerySet::FirstN(5);           // {0..4}
  QuerySet b;
  b.Insert(3);
  b.Insert(4);
  b.Insert(7);
  EXPECT_EQ(a.Union(b).Count(), 6);
  EXPECT_EQ(a.Intersect(b).Count(), 2);
  EXPECT_EQ(a.Minus(b).Count(), 3);
  EXPECT_TRUE(a.Intersect(b).IsSubsetOf(a));
  EXPECT_TRUE(a.Intersect(b).IsSubsetOf(b));
  EXPECT_FALSE(a.IsSubsetOf(b));
}

TEST(QuerySetTest, ForEachVisitsInOrder) {
  QuerySet s;
  s.Insert(70);
  s.Insert(2);
  s.Insert(130);
  std::vector<QueryId> seen;
  s.ForEach([&](QueryId q) { seen.push_back(q); });
  EXPECT_EQ(seen, (std::vector<QueryId>{2, 70, 130}));
  EXPECT_EQ(s.First(), 2);
  EXPECT_EQ(s.ToString(), "{2,70,130}");
}

TEST(QuerySetTest, SingleAndFirstN) {
  EXPECT_EQ(QuerySet::Single(9).Count(), 1);
  EXPECT_TRUE(QuerySet::Single(9).Contains(9));
  EXPECT_EQ(QuerySet::FirstN(0).Count(), 0);
  EXPECT_EQ(QuerySet::FirstN(100).Count(), 100);
}

TEST(RngTest, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, RangesRespected) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.NextDouble(2.0, 3.0);
    EXPECT_GE(d, 2.0);
    EXPECT_LT(d, 3.0);
  }
}

TEST(RngTest, BurstLengthDistribution) {
  Rng rng(11);
  double total = 0;
  const int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) total += rng.NextBurstLength(0.9, 1000);
  // Mean of 1 + Geometric(0.9) is 10.
  EXPECT_NEAR(total / kSamples, 10.0, 0.5);
  for (int i = 0; i < 100; ++i) EXPECT_LE(rng.NextBurstLength(0.99, 7), 7);
}

TEST(RngTest, PoissonMean) {
  Rng rng(13);
  double total = 0;
  const int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) total += rng.NextPoisson(4.0);
  EXPECT_NEAR(total / kSamples, 4.0, 0.15);
}

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::Ok().ok());
  Status s = Status::InvalidArgument("bad");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "invalid_argument: bad");
}

TEST(ResultTest, ValueAndStatus) {
  Result<int> ok = 42;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  Result<int> err = Status::NotFound("nope");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}

TEST(TableTest, AlignedAndCsv) {
  Table t({"a", "metric"});
  t.AddRow({"1", "2.5"});
  t.AddRow({"1000", "x"});
  std::string aligned = t.ToAligned();
  EXPECT_NE(aligned.find("| a    | metric |"), std::string::npos);
  EXPECT_EQ(t.ToCsv(), "a,metric\n1,2.5\n1000,x\n");
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableTest, NumFormatting) {
  EXPECT_EQ(Table::Num(2.5, 1), "2.5");
  EXPECT_EQ(Table::Num(0.0), "0.000");
  // Very large/small magnitudes switch to scientific notation.
  EXPECT_NE(Table::Num(1e9).find("e"), std::string::npos);
}

TEST(RunningStatsTest, Moments) {
  RunningStats s;
  s.Add(1.0);
  s.Add(3.0);
  s.Add(5.0);
  EXPECT_EQ(s.count(), 3);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(PercentilesTest, InterpolatedQuantiles) {
  Percentiles p;
  for (int i = 1; i <= 100; ++i) p.Add(i);
  EXPECT_NEAR(p.Percentile(50), 50.5, 0.01);
  EXPECT_DOUBLE_EQ(p.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(p.Percentile(100), 100.0);
}

TEST(MemoryMeterTest, TracksPeak) {
  MemoryMeter m;
  m.Add(100);
  m.Add(50);
  m.Sub(120);
  EXPECT_EQ(m.current(), 30);
  EXPECT_EQ(m.peak(), 150);
  m.SetCurrent(500);
  EXPECT_EQ(m.peak(), 500);
}

TEST(SpscQueueTest, PushPopFifoAndCapacity) {
  SpscQueue<int> q(3);  // rounds up to 4
  EXPECT_EQ(q.capacity(), 4u);
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.ApproxSize(), 0u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.TryPush(std::move(i)));
  EXPECT_EQ(q.ApproxSize(), 4u);
  int overflow = 99;
  EXPECT_FALSE(q.TryPush(std::move(overflow)));
  EXPECT_EQ(overflow, 99);  // left intact for retry
  for (int i = 0; i < 4; ++i) {
    int out = -1;
    EXPECT_TRUE(q.TryPop(&out));
    EXPECT_EQ(out, i);
  }
  int out;
  EXPECT_FALSE(q.TryPop(&out));
}

// Regression: TryPop used to leave the moved-from payload in its ring slot,
// so up to `capacity` popped heap-backed buffers (the sharded runtime's
// event batches) stayed alive inside the queue — retained memory invisible
// to the memory meter. A popped slot must release its payload immediately.
TEST(SpscQueueTest, PopReleasesSlotPayload) {
  SpscQueue<std::shared_ptr<int>> q(8);
  const size_t cap = q.capacity();
  std::vector<std::shared_ptr<int>> payloads;
  // Several laps around the ring so every slot has held a payload.
  for (size_t lap = 0; lap < 3; ++lap) {
    for (size_t i = 0; i < cap; ++i) {
      auto p = std::make_shared<int>(static_cast<int>(i));
      payloads.push_back(p);
      ASSERT_TRUE(q.TryPush(std::move(p)));
    }
    for (size_t i = 0; i < cap; ++i) {
      std::shared_ptr<int> out;
      ASSERT_TRUE(q.TryPop(&out));
      ASSERT_NE(out, nullptr);
      out.reset();
    }
  }
  // The queue is empty and every pop consumer released its copy: nothing
  // may still co-own the payloads. Pre-fix, the last `cap` pushes were
  // still referenced by their ring slots (use_count 2).
  for (const auto& p : payloads) {
    EXPECT_EQ(p.use_count(), 1) << "ring slot retains a popped payload";
  }
}

}  // namespace
}  // namespace hamlet
