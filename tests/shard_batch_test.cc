// Batched shard ingress + pre-partitioned ingest tests.
//
// The core property extends shard-count invariance to ingress granularity:
// for every EngineKind, shard count (1/2/4/8) and shard_batch_size
// (1 = per-event hand-off through 1024 ≫ stream chunks), the emission set
// of a ShardedSession equals the single-threaded batch Run() on the same
// stream — staging, batch flushes, watermark barriers and the emission
// fan-in must never change *what* is computed, only how it is handed off.
// Also covered: PushPrePartitioned fed by the shard-aware
// PartitionedBatchCursor (src/stream/shard_router.h), its fail-fast
// contract (sub-batch count, per-shard ordering, cross-call ordering),
// RouterFor consistency with the session's own router, and backpressure
// with tiny queues and tiny batches at once.
//
// Registered in the ASan and TSan CI jobs next to sharded_session_test:
// together they drive every cross-thread path of the batched runtime —
// SPSC batch hand-off, buffer recycling, parking, outbox fan-in — under
// real concurrency.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "src/benchlib/workloads.h"
#include "src/query/parser.h"
#include "src/runtime/executor.h"
#include "src/runtime/sharded_session.h"
#include "src/stream/shard_router.h"

namespace hamlet {
namespace {

constexpr EngineKind kAllKinds[] = {
    EngineKind::kHamletDynamic, EngineKind::kHamletStatic,
    EngineKind::kHamletNoShare, EngineKind::kGretaGraph,
    EngineKind::kGretaPrefix,   EngineKind::kTwoStep,
    EngineKind::kSharon};

// Exact (bitwise) equality, except that two NaNs compare equal.
void ExpectSameValue(double a, double b, const std::string& label) {
  if (std::isnan(a) && std::isnan(b)) return;
  EXPECT_EQ(a, b) << label;
}

// Set equality via the shared normalized order: one emission per
// (query, group, window) makes the sorted sequences directly comparable.
void ExpectSameEmissionSet(const std::vector<Emission>& expected,
                           const std::vector<Emission>& actual,
                           const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    const Emission& a = expected[i];
    const Emission& b = actual[i];
    const std::string at = label + " emission #" + std::to_string(i);
    EXPECT_EQ(a.query, b.query) << at;
    EXPECT_EQ(a.query_name, b.query_name) << at;
    EXPECT_EQ(a.group_key, b.group_key) << at;
    EXPECT_EQ(a.window_start, b.window_start) << at;
    EXPECT_EQ(a.window_end, b.window_end) << at;
    ExpectSameValue(a.value, b.value, at);
  }
}

struct ShardedResult {
  std::vector<Emission> emissions;
  RunMetrics metrics;
};

// Pushes `ev` through a ShardedSession in mixed granularity (singles via
// Push, chunks via PushBatch) with occasional interleaved watermarks (each
// one a staging-flush barrier) and a trailing watermark, then Close.
ShardedResult RunSharded(const WorkloadPlan& plan, RunConfig config,
                         int num_shards, int batch_size,
                         const EventVector& ev, int queue_capacity = 8192) {
  config.num_shards = num_shards;
  config.shard_batch_size = batch_size;
  config.shard_queue_capacity = queue_capacity;
  CollectingSink sink;
  Result<std::unique_ptr<ShardedSession>> session =
      ShardedSession::Open(plan, config, &sink);
  HAMLET_CHECK(session.ok());
  Rng rng(static_cast<uint64_t>(num_shards) * 1000 +
          static_cast<uint64_t>(batch_size));
  size_t i = 0;
  while (i < ev.size()) {
    size_t len = 1 + static_cast<size_t>(rng.NextBelow(100));
    len = std::min(len, ev.size() - i);
    Status s = len == 1 ? session.value()->Push(ev[i])
                        : session.value()->PushBatch(
                              std::span<const Event>(ev.data() + i, len));
    EXPECT_TRUE(s.ok()) << s.ToString();
    i += len;
    if (i < ev.size() && rng.NextBelow(8) == 0) {
      EXPECT_TRUE(session.value()->AdvanceTo(ev[i].time - 1).ok());
    }
  }
  if (!ev.empty()) {
    EXPECT_TRUE(session.value()->AdvanceTo(ev.back().time).ok());
  }
  ShardedResult out;
  out.metrics = session.value()->Close().value();
  out.emissions = sink.Take();
  return out;
}

EventVector RidesharingStream(uint64_t seed, int num_groups) {
  GeneratorConfig gen;
  gen.seed = seed;
  gen.events_per_minute = 600;
  gen.duration_minutes = 1;
  gen.num_groups = num_groups;
  gen.burstiness = 0.6;
  gen.max_burst = 8;
  return MakeGenerator("ridesharing")->Generate(gen);
}

TEST(BatchGranularityEquivalence, AllEnginesAllShardCounts) {
  BenchWorkload bw =
      MakeWorkload1("ridesharing", 6, /*window_ms=*/5 * kMillisPerSecond);
  EventVector ev = RidesharingStream(/*seed=*/91, /*num_groups=*/8);
  for (EngineKind kind : kAllKinds) {
    RunConfig config;
    config.kind = kind;
    StreamExecutor executor(*bw.plan, config);
    RunOutput batch = executor.Run(ev);
    ASSERT_TRUE(batch.status.ok()) << batch.status.ToString();
    ASSERT_GT(batch.emissions.size(), 0u) << EngineKindName(kind);
    for (int shards : {1, 2, 4, 8}) {
      ShardedResult sharded =
          RunSharded(*bw.plan, config, shards, /*batch_size=*/7, ev);
      const std::string label = std::string(EngineKindName(kind)) + "/N=" +
                                std::to_string(shards);
      ExpectSameEmissionSet(batch.emissions, sharded.emissions, label);
      EXPECT_EQ(batch.metrics.events, sharded.metrics.events) << label;
      EXPECT_EQ(batch.metrics.emissions, sharded.metrics.emissions) << label;
      EXPECT_EQ(batch.metrics.dnf_windows, sharded.metrics.dnf_windows)
          << label;
    }
  }
}

TEST(BatchGranularityEquivalence, BatchSizeSweep) {
  BenchWorkload bw =
      MakeWorkload1("ridesharing", 6, /*window_ms=*/5 * kMillisPerSecond);
  EventVector ev = RidesharingStream(/*seed=*/92, /*num_groups=*/8);
  RunConfig config;
  config.kind = EngineKind::kHamletDynamic;
  StreamExecutor executor(*bw.plan, config);
  RunOutput batch = executor.Run(ev);
  ASSERT_TRUE(batch.status.ok());
  // 1 is the per-event hand-off baseline; 1024 exceeds every chunk, so all
  // flushes come from the watermark/Close barriers. The queue shrinks as
  // the batch grows: capacity counts messages, and Open rejects
  // capacity * batch products past kMaxQueuedEventsPerShard.
  for (int batch_size : {1, 2, 64, 1024}) {
    ShardedResult sharded =
        RunSharded(*bw.plan, config, /*num_shards=*/3, batch_size, ev,
                   /*queue_capacity=*/batch_size >= 1024 ? 512 : 8192);
    const std::string label = "batch=" + std::to_string(batch_size);
    ExpectSameEmissionSet(batch.emissions, sharded.emissions, label);
    EXPECT_EQ(batch.metrics.events, sharded.metrics.events) << label;
  }
}

// Tiny everything: a two-slot queue and three-event batches force the
// producer through backpressure on nearly every flush; results must not
// change.
TEST(BatchGranularityEquivalence, TinyQueueTinyBatchBackpressure) {
  BenchWorkload bw =
      MakeWorkload1("ridesharing", 4, /*window_ms=*/2 * kMillisPerSecond);
  EventVector ev = RidesharingStream(/*seed=*/93, /*num_groups=*/8);
  RunConfig config;
  config.kind = EngineKind::kHamletDynamic;
  StreamExecutor executor(*bw.plan, config);
  RunOutput batch = executor.Run(ev);
  ASSERT_TRUE(batch.status.ok());
  ShardedResult sharded =
      RunSharded(*bw.plan, config, /*num_shards=*/3, /*batch_size=*/3, ev,
                 /*queue_capacity=*/2);
  ExpectSameEmissionSet(batch.emissions, sharded.emissions, "tiny");
  EXPECT_EQ(batch.metrics.events, sharded.metrics.events);
}

// PushPrePartitioned driven by the shard-aware cursor: same emissions as
// batch Run() for every shard count, without the session hashing a single
// event.
TEST(PrePartitionedEquivalence, CursorDrivenAllShardCounts) {
  BenchWorkload bw =
      MakeWorkload1("ridesharing", 6, /*window_ms=*/5 * kMillisPerSecond);
  GeneratorConfig gen;
  gen.seed = 94;
  gen.events_per_minute = 600;
  gen.duration_minutes = 1;
  gen.num_groups = 8;
  gen.burstiness = 0.6;
  gen.max_burst = 8;
  EventVector ev = bw.generator->Generate(gen);
  for (EngineKind kind : {EngineKind::kHamletDynamic, EngineKind::kSharon}) {
    RunConfig config;
    config.kind = kind;
    StreamExecutor executor(*bw.plan, config);
    RunOutput batch = executor.Run(ev);
    ASSERT_TRUE(batch.status.ok());
    for (int shards : {1, 2, 4, 8}) {
      config.num_shards = shards;
      CollectingSink sink;
      Result<std::unique_ptr<ShardedSession>> session =
          ShardedSession::Open(*bw.plan, config, &sink);
      ASSERT_TRUE(session.ok());
      std::unique_ptr<EventCursor> cursor = bw.generator->Stream(gen);
      PartitionedBatchCursor batches(cursor.get(), session.value()->router(),
                                     /*batch_events=*/64);
      PartitionedBatch chunk;
      while (batches.NextBatch(&chunk)) {
        Status s = session.value()->PushPrePartitioned(std::move(chunk));
        ASSERT_TRUE(s.ok()) << s.ToString();
      }
      ASSERT_TRUE(session.value()->AdvanceTo(ev.back().time).ok());
      RunMetrics m = session.value()->Close().value();
      const std::string label = std::string(EngineKindName(kind)) +
                                "/prepart/N=" + std::to_string(shards);
      EXPECT_EQ(batch.metrics.events, m.events) << label;
      ExpectSameEmissionSet(batch.emissions, sink.Take(), label);
    }
  }
}

// Mixing the three ingest styles (Push, PushBatch, PushPrePartitioned) in
// one run stays equivalent: staging flushes keep every shard's queue in
// per-shard time order.
TEST(PrePartitionedEquivalence, MixedIngestStyles) {
  BenchWorkload bw =
      MakeWorkload1("ridesharing", 4, /*window_ms=*/2 * kMillisPerSecond);
  EventVector ev = RidesharingStream(/*seed=*/95, /*num_groups=*/8);
  RunConfig config;
  config.kind = EngineKind::kHamletDynamic;
  StreamExecutor executor(*bw.plan, config);
  RunOutput batch = executor.Run(ev);
  ASSERT_TRUE(batch.status.ok());
  config.num_shards = 3;
  config.shard_batch_size = 5;
  CollectingSink sink;
  Result<std::unique_ptr<ShardedSession>> session =
      ShardedSession::Open(*bw.plan, config, &sink);
  ASSERT_TRUE(session.ok());
  const ShardRouter& router = session.value()->router();
  Rng rng(7);
  size_t i = 0;
  while (i < ev.size()) {
    const uint64_t style = rng.NextBelow(3);
    size_t len = 1 + static_cast<size_t>(rng.NextBelow(40));
    len = std::min(len, ev.size() - i);
    std::span<const Event> chunk(ev.data() + i, len);
    Status s;
    if (style == 0) {
      s = session.value()->Push(ev[i]);
      len = 1;
    } else if (style == 1) {
      s = session.value()->PushBatch(chunk);
    } else {
      std::vector<PartitionedBatch> parts =
          PartitionBatches(chunk, router, len);
      s = session.value()->PushPrePartitioned(std::move(parts.front()));
    }
    ASSERT_TRUE(s.ok()) << s.ToString();
    i += len;
  }
  ASSERT_TRUE(session.value()->AdvanceTo(ev.back().time).ok());
  RunMetrics m = session.value()->Close().value();
  EXPECT_EQ(batch.metrics.events, m.events);
  ExpectSameEmissionSet(batch.emissions, sink.Take(), "mixed-ingest");
}

class PrePartitionedContractTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_.AddAttr("v");
    schema_.AddAttr("g");
    ASSERT_TRUE(
        workload_
            .Add(ParseQuery("RETURN COUNT(*) PATTERN SEQ(A, B+) GROUPBY g "
                            "WITHIN 100 ms")
                     .value())
            .ok());
    plan_ = std::make_unique<WorkloadPlan>(
        AnalyzeWorkload(workload_).value());
  }

  Event Make(Timestamp t, const char* type, double group = 0.0) {
    Event e(t, schema_.AddType(type));
    e.set_attr(0, 1.0);
    e.set_attr(1, group);
    return e;
  }

  // A chunk routed with the session's router (all events into group 0's
  // shard here, which is what the single group implies).
  PartitionedBatch Routed(const ShardedSession& session,
                          std::vector<Event> events) {
    PartitionedBatch batch(
        static_cast<size_t>(session.num_shards()));
    for (const Event& e : events) {
      batch[session.router().ShardOf(e)].push_back(e);
    }
    return batch;
  }

  Schema schema_;
  Workload workload_{&schema_};
  std::unique_ptr<WorkloadPlan> plan_;
};

TEST_F(PrePartitionedContractTest, RejectsWrongSubBatchCount) {
  RunConfig config;
  config.num_shards = 3;
  Result<std::unique_ptr<ShardedSession>> session =
      ShardedSession::Open(*plan_, config, nullptr);
  ASSERT_TRUE(session.ok());
  PartitionedBatch two(2);
  Status s = session.value()->PushPrePartitioned(std::move(two));
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("sub-batches"), std::string::npos);
}

TEST_F(PrePartitionedContractTest, RejectsOutOfOrderWithinShard) {
  RunConfig config;
  config.num_shards = 2;
  Result<std::unique_ptr<ShardedSession>> session =
      ShardedSession::Open(*plan_, config, nullptr);
  ASSERT_TRUE(session.ok());
  PartitionedBatch batch = Routed(*session.value(),
                                  {Make(10, "A"), Make(20, "B")});
  // Corrupt per-shard order in whichever sub-batch got the events.
  for (EventVector& sub : batch) {
    if (sub.size() == 2) std::swap(sub[0], sub[1]);
  }
  Status s = session.value()->PushPrePartitioned(std::move(batch));
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("t=10"), std::string::npos);
  // Nothing was committed: the same events in order are still accepted.
  EXPECT_TRUE(session.value()
                  ->PushPrePartitioned(Routed(
                      *session.value(), {Make(10, "A"), Make(20, "B")}))
                  .ok());
  EXPECT_EQ(session.value()->Close().value().events, 2);
}

TEST_F(PrePartitionedContractTest, RejectsEventsBehindPreviousCall) {
  RunConfig config;
  config.num_shards = 2;
  Result<std::unique_ptr<ShardedSession>> session =
      ShardedSession::Open(*plan_, config, nullptr);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session.value()->Push(Make(50, "A")).ok());
  Status s = session.value()->PushPrePartitioned(
      Routed(*session.value(), {Make(20, "B")}));
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("t=20"), std::string::npos);
  // Empty chunks are fine (a shard-aware source may have nothing buffered).
  EXPECT_TRUE(session.value()
                  ->PushPrePartitioned(PartitionedBatch(2))
                  .ok());
  RunMetrics m = session.value()->Close().value();
  EXPECT_EQ(m.events, 1);
  EXPECT_EQ(session.value()
                ->PushPrePartitioned(PartitionedBatch(2))
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(PrePartitionedContractTest, RouterForMatchesSessionRouter) {
  RunConfig config;
  config.num_shards = 4;
  Result<std::unique_ptr<ShardedSession>> session =
      ShardedSession::Open(*plan_, config, nullptr);
  ASSERT_TRUE(session.ok());
  Result<ShardRouter> standalone = ShardedSession::RouterFor(*plan_, 4);
  ASSERT_TRUE(standalone.ok());
  EXPECT_EQ(standalone.value().num_shards(), 4);
  EXPECT_EQ(standalone.value().partition_attr(),
            session.value()->router().partition_attr());
  for (int g = 0; g < 64; ++g) {
    Event e = Make(10 + g, "A", /*group=*/static_cast<double>(g));
    EXPECT_EQ(standalone.value().ShardOf(e),
              session.value()->router().ShardOf(e))
        << g;
  }
  ASSERT_TRUE(session.value()->Close().ok());
  // RouterFor fails exactly like Open on garbage shard counts.
  EXPECT_EQ(ShardedSession::RouterFor(*plan_, 0).status().code(),
            StatusCode::kInvalidArgument);
}

// Sinks run on the caller thread, so a feedback-style sink may call Push
// from OnEmission. The reentrant call must neither corrupt the fan-in
// scratch (reentrancy guard) nor, during Close's final drain, stage events
// no worker will ever process (the session is closed by then).
TEST_F(PrePartitionedContractTest, ReentrantFeedbackSinkIsSafe) {
  RunConfig config;
  config.num_shards = 2;
  config.shard_batch_size = 1;  // surface emissions promptly
  ShardedSession* raw = nullptr;
  int accepted = 0;
  int rejected = 0;
  // Far past every driver watermark below, near enough that Close's
  // pane-by-pane flush to the feedback windows stays cheap.
  Timestamp next_feedback = 100'000;
  CallbackSink sink([&](const Emission&) {
    if (raw == nullptr) return;
    Status s = raw->Push(Make(next_feedback++, "A"));
    if (s.ok()) {
      ++accepted;
    } else {
      EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
      ++rejected;
    }
  });
  Result<std::unique_ptr<ShardedSession>> session =
      ShardedSession::Open(*plan_, config, &sink);
  ASSERT_TRUE(session.ok());
  raw = session.value().get();
  ASSERT_TRUE(raw->Push(Make(10, "A")).ok());
  ASSERT_TRUE(raw->Push(Make(20, "B")).ok());
  // Drive drains with growing watermarks until the [0,100) emission fans in
  // and the sink's reentrant Push lands (then stop: the feedback events are
  // far in the future, so further small watermarks would regress).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  Timestamp w = 500;
  while (accepted == 0 && std::chrono::steady_clock::now() < deadline) {
    ASSERT_TRUE(raw->AdvanceTo(w++).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(accepted, 1);
  // Close flushes the feedback events' windows; their emissions hit the
  // sink during the final drain, when the session is already closed.
  RunMetrics m = raw->Close().value();
  EXPECT_EQ(m.events, 2 + accepted);
  EXPECT_GE(rejected, 1);
}

// A sink that calls Close() from OnEmission ("stop after first alert")
// interrupts a drain mid-iteration. Close's final fan-in must still
// deliver every remaining emission — including those of shards the
// interrupted drain had already passed — and nothing may be delivered
// twice.
TEST_F(PrePartitionedContractTest, CloseFromSinkDeliversEverything) {
  RunConfig config;
  config.num_shards = 4;
  config.shard_batch_size = 1;
  ShardedSession* raw = nullptr;
  int received = 0;
  bool closed = false;
  int64_t emissions_at_close = -1;
  CallbackSink sink([&](const Emission&) {
    ++received;
    if (raw != nullptr && !closed) {
      closed = true;
      Result<RunMetrics> m = raw->Close();  // nested: inside a drain
      ASSERT_TRUE(m.ok());
      emissions_at_close = m.value().emissions;
    }
  });
  Result<std::unique_ptr<ShardedSession>> session =
      ShardedSession::Open(*plan_, config, &sink);
  ASSERT_TRUE(session.ok());
  raw = session.value().get();
  // Several groups so multiple shards hold emissions when Close interrupts.
  for (int g = 0; g < 8; ++g) {
    ASSERT_TRUE(raw->Push(Make(10 + g, "A", static_cast<double>(g))).ok());
  }
  for (int g = 0; g < 8; ++g) {
    ASSERT_TRUE(
        raw->Push(Make(30 + g * 2, "B", static_cast<double>(g))).ok());
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  Timestamp w = 200;
  while (!closed && std::chrono::steady_clock::now() < deadline) {
    Status s = raw->AdvanceTo(w++);
    if (!s.ok()) break;  // the sink closed the session mid-drive
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(closed);
  // Every emission the closed session counted reached the sink exactly
  // once, despite the drain interruption.
  EXPECT_EQ(received, emissions_at_close);
  EXPECT_EQ(raw->Close().status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(PrePartitionedContractTest, OpenValidatesShardBatchSize) {
  RunConfig config;
  config.shard_batch_size = 0;
  Result<std::unique_ptr<ShardedSession>> r =
      ShardedSession::Open(*plan_, config, nullptr);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("shard_batch_size"), std::string::npos);
}

// shard_queue_capacity counts MESSAGES, so its event footprint scales with
// shard_batch_size: capacity=8192/batch=1 buffers at most 8192 events while
// capacity=8192/batch=128 buffers ~1M. Open relates the two knobs
// explicitly — both extremes of the documented contract.
TEST_F(PrePartitionedContractTest, OpenRelatesQueueCapacityToBatchSize) {
  // Low extreme: a big message queue of single-event batches is a small
  // event buffer — fine.
  RunConfig config;
  config.num_shards = 2;
  config.shard_queue_capacity = 8192;
  config.shard_batch_size = 1;
  EXPECT_TRUE(ShardedSession::Open(*plan_, config, nullptr).ok());
  // Default-shaped product right at ~1M events — fine.
  config.shard_batch_size = 128;
  EXPECT_TRUE(ShardedSession::Open(*plan_, config, nullptr).ok());
  // High extreme: the same capacity with huge batches implies an event
  // buffer past kMaxQueuedEventsPerShard; rejected, naming both knobs.
  config.shard_batch_size = 2048;
  ASSERT_GT(static_cast<int64_t>(config.shard_queue_capacity) *
                config.shard_batch_size,
            kMaxQueuedEventsPerShard);
  Result<std::unique_ptr<ShardedSession>> r =
      ShardedSession::Open(*plan_, config, nullptr);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("shard_queue_capacity"),
            std::string::npos);
  EXPECT_NE(r.status().message().find("shard_batch_size"), std::string::npos);
  EXPECT_NE(r.status().message().find("messages"), std::string::npos);
}

}  // namespace
}  // namespace hamlet
