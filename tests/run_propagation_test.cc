// Run-granular propagation: segmenter unit tests plus the knob's
// end-to-end contract — emissions are bit-identical with run_propagation
// on and off, for every engine kind, across shard counts and concurrent
// producer counts. The baseline for every cell is the single-threaded
// row-path StreamExecutor run, so the matrix also re-proves the columnar
// and sharding equivalences it composes with.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "src/benchlib/workloads.h"
#include "src/query/run_segmenter.h"
#include "src/runtime/executor.h"
#include "src/runtime/sharded_session.h"

namespace hamlet {
namespace {

constexpr EngineKind kAllKinds[] = {
    EngineKind::kHamletDynamic, EngineKind::kHamletStatic,
    EngineKind::kHamletNoShare, EngineKind::kGretaGraph,
    EngineKind::kGretaPrefix,   EngineKind::kTwoStep,
    EngineKind::kSharon};

// ---------------------------------------------------------------------------
// SegmentRuns unit tests: hand-built batches and masks, exact span layout.

EventBatch MakeBatch(const std::vector<std::pair<Timestamp, TypeId>>& rows) {
  EventBatch batch(1);
  for (const auto& [time, type] : rows) {
    Event e;
    e.time = time;
    e.type = type;
    e.num_attrs = 1;
    batch.Append(e);
  }
  return batch;
}

SelectionMask MaskOf(const std::vector<uint8_t>& bytes01) {
  SelectionMask m;
  PackMask(bytes01.data(), static_cast<int>(bytes01.size()), &m);
  return m;
}

TEST(RunSegmenter, SplitsOnTypeChange) {
  EventBatch batch = MakeBatch({{1, 5}, {2, 5}, {3, 7}, {4, 7}, {5, 7}});
  std::vector<RunSpan> runs;
  SegmentRuns(batch, batch.size(), /*pane_size=*/0, QuerySet::FirstN(2),
              /*predicated_queries=*/{}, /*masks=*/{}, &runs);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].type, 5);
  EXPECT_EQ(runs[0].row_begin, 0);
  EXPECT_EQ(runs[0].row_end, 2);
  EXPECT_EQ(runs[1].type, 7);
  EXPECT_EQ(runs[1].row_begin, 2);
  EXPECT_EQ(runs[1].row_end, 5);
  EXPECT_EQ(runs[0].passes, QuerySet::FirstN(2));
  EXPECT_EQ(runs[1].passes, QuerySet::FirstN(2));
}

TEST(RunSegmenter, SplitsOnPaneBoundary) {
  EventBatch batch = MakeBatch({{1, 3}, {9, 3}, {10, 3}, {12, 3}});
  std::vector<RunSpan> runs;
  SegmentRuns(batch, batch.size(), /*pane_size=*/10, QuerySet::FirstN(1),
              /*predicated_queries=*/{}, /*masks=*/{}, &runs);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].row_end, 2);  // times 1, 9 -> pane 0
  EXPECT_EQ(runs[1].row_begin, 2);
  EXPECT_EQ(runs[1].row_end, 4);  // times 10, 12 -> pane 10

  // pane_size <= 0 disables pane splitting: one run.
  SegmentRuns(batch, batch.size(), /*pane_size=*/0, QuerySet::FirstN(1),
              /*predicated_queries=*/{}, /*masks=*/{}, &runs);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].row_begin, 0);
  EXPECT_EQ(runs[0].row_end, 4);
}

TEST(RunSegmenter, SplitsOnPassSetFlipAcrossMaskWords) {
  // 130 same-type rows; query 1's predicate passes rows [0, 65) only, so
  // the flip sits past the first 64-bit mask word — exercising the
  // carry between words in the flip-bitmap build.
  std::vector<std::pair<Timestamp, TypeId>> rows;
  std::vector<uint8_t> bytes01;
  for (int i = 0; i < 130; ++i) {
    rows.push_back({i + 1, 4});
    bytes01.push_back(i < 65 ? 1 : 0);
  }
  EventBatch batch = MakeBatch(rows);
  std::vector<SelectionMask> masks;
  masks.push_back(MaskOf(bytes01));
  std::vector<RunSpan> runs;
  SegmentRuns(batch, batch.size(), /*pane_size=*/0, QuerySet::FirstN(3),
              /*predicated_queries=*/{1}, masks, &runs);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].row_begin, 0);
  EXPECT_EQ(runs[0].row_end, 65);
  EXPECT_EQ(runs[0].passes, QuerySet::FirstN(3));
  EXPECT_EQ(runs[1].row_begin, 65);
  EXPECT_EQ(runs[1].row_end, 130);
  QuerySet minus1 = QuerySet::FirstN(3);
  minus1.Erase(1);
  EXPECT_EQ(runs[1].passes, minus1);
}

// ---------------------------------------------------------------------------
// End-to-end equivalence matrix.

void ExpectSameValue(double a, double b, const std::string& label) {
  if (std::isnan(a) && std::isnan(b)) return;
  EXPECT_EQ(a, b) << label;
}

void ExpectSameEmissionSet(const std::vector<Emission>& expected,
                           const std::vector<Emission>& actual,
                           const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    const Emission& a = expected[i];
    const Emission& b = actual[i];
    const std::string at = label + " emission #" + std::to_string(i);
    EXPECT_EQ(a.query, b.query) << at;
    EXPECT_EQ(a.group_key, b.group_key) << at;
    EXPECT_EQ(a.window_start, b.window_start) << at;
    EXPECT_EQ(a.window_end, b.window_end) << at;
    ExpectSameValue(a.value, b.value, at);
  }
}

void FeedProducers(ShardedSession* session, const EventVector& ev,
                   int num_producers) {
  std::vector<std::unique_ptr<ShardedSession::Producer>> producers;
  for (int p = 0; p < num_producers; ++p) {
    producers.push_back(session->AddProducer().value());
  }
  std::vector<std::thread> threads;
  for (int p = 0; p < num_producers; ++p) {
    threads.emplace_back([&, p] {
      ShardedSession::Producer& producer = *producers[static_cast<size_t>(p)];
      for (size_t i = static_cast<size_t>(p); i < ev.size();
           i += static_cast<size_t>(num_producers)) {
        ASSERT_TRUE(producer.Push(ev[i]).ok());
      }
      if (!ev.empty()) {
        ASSERT_TRUE(producer.AdvanceTo(ev.back().time).ok());
      }
      ASSERT_TRUE(producer.Close().ok());
    });
  }
  for (std::thread& t : threads) t.join();
}

TEST(RunPropagation, EmissionsIdenticalOnAndOffAcrossShardsAndProducers) {
  BenchWorkload bw =
      MakeWorkload1("ridesharing", 6, /*window_ms=*/5 * kMillisPerSecond);
  GeneratorConfig gen;
  gen.seed = 0xCAFE;
  gen.events_per_minute = 900;
  gen.duration_minutes = 1;
  gen.num_groups = 8;
  gen.burstiness = 0.7;  // bursty: real multi-row runs, not length-1 spans
  gen.max_burst = 10;
  EventVector ev = bw.generator->Generate(gen);
  ASSERT_FALSE(ev.empty());

  for (EngineKind kind : kAllKinds) {
    // Baseline: single-threaded row-path batch run of the same stream.
    RunConfig ref_config;
    ref_config.kind = kind;
    StreamExecutor executor(*bw.plan, ref_config);
    RunOutput ref = executor.Run(ev);
    ASSERT_TRUE(ref.status.ok()) << ref.status.ToString();
    ASSERT_GT(ref.emissions.size(), 0u) << EngineKindName(kind);

    for (int shards : {1, 2, 4}) {
      for (int producers : {0, 1, 2}) {
        for (bool run_propagation : {false, true}) {
          const std::string label =
              std::string(EngineKindName(kind)) +
              "/N=" + std::to_string(shards) +
              (producers == 0 ? "/session" : "/P=" + std::to_string(producers)) +
              (run_propagation ? "/runs" : "/rows");
          SCOPED_TRACE(label);
          RunConfig config;
          config.kind = kind;
          config.num_shards = shards;
          config.columnar = true;
          config.run_propagation = run_propagation;
          CollectingSink sink;
          Result<std::unique_ptr<ShardedSession>> opened =
              ShardedSession::Open(*bw.plan, config, &sink);
          ASSERT_TRUE(opened.ok()) << opened.status().ToString();
          ShardedSession& session = *opened.value();
          if (producers == 0) {
            // Session-level chunked PushBatch: chunk length 48 keeps most
            // bursts whole while still exercising mid-burst chunk seams.
            for (size_t j = 0; j < ev.size(); j += 48) {
              const size_t len = std::min<size_t>(48, ev.size() - j);
              ASSERT_TRUE(
                  session
                      .PushBatch(std::span<const Event>(ev.data() + j, len))
                      .ok());
            }
            ASSERT_TRUE(session.AdvanceTo(ev.back().time).ok());
          } else {
            FeedProducers(&session, ev, producers);
          }
          Result<RunMetrics> metrics = session.Close();
          ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
          ExpectSameEmissionSet(ref.emissions, sink.Take(), label);
          EXPECT_EQ(ref.metrics.events, metrics.value().events) << label;
          EXPECT_EQ(ref.metrics.emissions, metrics.value().emissions)
              << label;
          // Run-shape metrics flow only from the run path, and the log2
          // length histogram partitions exactly the dispatched runs.
          int64_t hist_total = 0;
          for (int64_t bucket : metrics.value().run_len_hist)
            hist_total += bucket;
          if (run_propagation) {
            EXPECT_GT(metrics.value().runs, 0) << label;
            EXPECT_EQ(hist_total, metrics.value().runs) << label;
          } else {
            EXPECT_EQ(metrics.value().runs, 0) << label;
            EXPECT_EQ(hist_total, 0) << label;
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace hamlet
