// Multi-producer ingest tests (ShardedSession::AddProducer).
//
// The core property is producer-count invariance: for every EngineKind,
// the emission set of a ShardedSession fed by P = 1/2/4 concurrent
// Producer handles over N = 1/2/4 shards equals the single-threaded batch
// Run() on the same stream. The sequencer releases events in global time
// order (timestamps are unique, so the merged order is a total order), the
// router is deterministic, and frontier broadcasts are emission-neutral by
// construction — so the fan-in must be bitwise reproducible no matter how
// the producer threads race.
//
// Also covered: the per-producer ordering gate (out-of-order and watermark
// regression rejected synchronously on the offending handle), mode
// exclusivity (session-level ingest locked out after AddProducer and vice
// versa), Close-with-open-handles, the sticky cross-producer duplicate
// poison, late-joiner admission bounds, watermark merging across a
// laggard, and producer churn (handles joining and leaving mid-stream).
//
// This suite runs under TSan and ASan in CI alongside sharded_session_test
// — it is the primary concurrency torture for the MPSC hub + sequencer.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/benchlib/workloads.h"
#include "src/query/parser.h"
#include "src/runtime/executor.h"
#include "src/runtime/sharded_session.h"

namespace hamlet {
namespace {

constexpr EngineKind kAllKinds[] = {
    EngineKind::kHamletDynamic, EngineKind::kHamletStatic,
    EngineKind::kHamletNoShare, EngineKind::kGretaGraph,
    EngineKind::kGretaPrefix,   EngineKind::kTwoStep,
    EngineKind::kSharon};

struct MpResult {
  std::vector<Emission> emissions;
  RunMetrics metrics;
};

// Exact (bitwise) equality, except that two NaNs compare equal.
void ExpectSameValue(double a, double b, const std::string& label) {
  if (std::isnan(a) && std::isnan(b)) return;
  EXPECT_EQ(a, b) << label;
}

void ExpectSameEmissionSet(const std::vector<Emission>& expected,
                           const std::vector<Emission>& actual,
                           const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    const Emission& a = expected[i];
    const Emission& b = actual[i];
    const std::string at = label + " emission #" + std::to_string(i);
    EXPECT_EQ(a.query, b.query) << at;
    EXPECT_EQ(a.query_name, b.query_name) << at;
    EXPECT_EQ(a.group_key, b.group_key) << at;
    EXPECT_EQ(a.window_start, b.window_start) << at;
    EXPECT_EQ(a.window_end, b.window_end) << at;
    ExpectSameValue(a.value, b.value, at);
  }
}

// Round-robin split of a strictly increasing stream: producer i owns the
// events at indices == i (mod P), so every handle's subsequence is itself
// strictly increasing — the per-producer ordering contract.
std::vector<EventVector> SplitRoundRobin(const EventVector& ev,
                                         int num_producers) {
  std::vector<EventVector> parts(static_cast<size_t>(num_producers));
  for (size_t i = 0; i < ev.size(); ++i) {
    parts[i % static_cast<size_t>(num_producers)].push_back(ev[i]);
  }
  return parts;
}

// Pushes `ev` through P concurrent Producer handles (round-robin split,
// one thread per handle, PushBatch in small chunks with a mid-stream
// per-producer watermark), then a final producer watermark at the global
// last event time, Close on every handle, and session Close. The final
// watermark equals RunSharded's trailing AdvanceTo, so emissions compare
// directly against both the batch reference and the single-producer path.
MpResult RunMultiProducer(const WorkloadPlan& plan, RunConfig config,
                          int num_shards, int num_producers,
                          const EventVector& ev) {
  config.num_shards = num_shards;
  CollectingSink sink;
  Result<std::unique_ptr<ShardedSession>> session =
      ShardedSession::Open(plan, config, &sink);
  HAMLET_CHECK(session.ok());
  std::vector<std::unique_ptr<ShardedSession::Producer>> producers;
  for (int p = 0; p < num_producers; ++p) {
    Result<std::unique_ptr<ShardedSession::Producer>> handle =
        session.value()->AddProducer();
    HAMLET_CHECK(handle.ok());
    producers.push_back(std::move(handle).value());
  }
  const std::vector<EventVector> parts = SplitRoundRobin(ev, num_producers);
  const Timestamp last_time = ev.empty() ? 0 : ev.back().time;
  std::vector<std::thread> threads;
  threads.reserve(producers.size());
  for (size_t p = 0; p < producers.size(); ++p) {
    threads.emplace_back([&, p] {
      ShardedSession::Producer& producer = *producers[p];
      const EventVector& mine = parts[p];
      constexpr size_t kChunk = 7;
      for (size_t i = 0; i < mine.size(); i += kChunk) {
        const size_t len = std::min(kChunk, mine.size() - i);
        Status s = producer.PushBatch(
            std::span<const Event>(mine.data() + i, len));
        ASSERT_TRUE(s.ok()) << s.ToString();
        // Mid-stream per-producer watermark at the handle's own last event
        // time: legal (equality is allowed) and exercises the merge.
        if (i / kChunk % 4 == 3) {
          ASSERT_TRUE(producer.AdvanceTo(mine[i + len - 1].time).ok());
        }
      }
      if (!ev.empty()) {
        ASSERT_TRUE(producer.AdvanceTo(last_time).ok());
      }
      ASSERT_TRUE(producer.Close().ok());
    });
  }
  for (std::thread& t : threads) t.join();
  producers.clear();
  MpResult out;
  out.metrics = session.value()->Close().value();
  out.emissions = sink.Take();
  return out;
}

EventVector Workload1Stream(BenchWorkload* bw, uint64_t seed) {
  GeneratorConfig gen;
  gen.seed = seed;
  gen.events_per_minute = 600;
  gen.duration_minutes = 1;
  gen.num_groups = 8;
  gen.burstiness = 0.6;
  gen.max_burst = 8;
  return bw->generator->Generate(gen);
}

TEST(MultiProducerInvariance, AllEnginesProducersShards) {
  BenchWorkload bw =
      MakeWorkload1("ridesharing", 6, /*window_ms=*/5 * kMillisPerSecond);
  EventVector ev = Workload1Stream(&bw, 77);
  for (EngineKind kind : kAllKinds) {
    RunConfig config;
    config.kind = kind;
    StreamExecutor executor(*bw.plan, config);
    RunOutput batch = executor.Run(ev);
    ASSERT_TRUE(batch.status.ok()) << batch.status.ToString();
    ASSERT_GT(batch.emissions.size(), 0u) << EngineKindName(kind);
    for (int shards : {1, 2, 4}) {
      for (int producers : {1, 2, 4}) {
        MpResult mp =
            RunMultiProducer(*bw.plan, config, shards, producers, ev);
        const std::string label = std::string(EngineKindName(kind)) + "/N=" +
                                  std::to_string(shards) + "/P=" +
                                  std::to_string(producers);
        ExpectSameEmissionSet(batch.emissions, mp.emissions, label);
        // Every event is merged, routed and processed exactly once.
        EXPECT_EQ(batch.metrics.events, mp.metrics.events) << label;
        EXPECT_EQ(batch.metrics.emissions, mp.metrics.emissions) << label;
      }
    }
  }
}

TEST(MultiProducerInvariance, SlidingWindowsAndTinyRings) {
  Schema schema;
  schema.AddAttr("v");
  schema.AddAttr("g");
  Workload workload(&schema);
  for (const char* text :
       {"RETURN COUNT(*) PATTERN SEQ(A, B+) GROUPBY g WITHIN 30 ms "
        "SLIDE 10 ms",
        "RETURN SUM(B.v) PATTERN SEQ(C, B+) GROUPBY g WITHIN 30 ms "
        "SLIDE 10 ms"}) {
    ASSERT_TRUE(workload.Add(ParseQuery(text).value()).ok());
  }
  WorkloadPlan plan = AnalyzeWorkload(workload).value();
  Rng rng(21);
  EventVector ev;
  Timestamp t = 1;
  const char* alphabet[] = {"A", "B", "C"};
  for (int i = 0; i < 400; ++i) {
    Event e(t, schema.AddType(alphabet[rng.NextBelow(3)]));
    e.set_attr(0, static_cast<double>(rng.NextInt(0, 9)));
    e.set_attr(1, static_cast<double>(rng.NextBelow(5)));
    ev.push_back(e);
    t += 1 + static_cast<Timestamp>(rng.NextBelow(3));
  }
  RunConfig config;
  config.kind = EngineKind::kHamletDynamic;
  // A two-slot producer ring forces every handle through the
  // ring-full spin on nearly every push; results must not change.
  config.producer_queue_capacity = 2;
  StreamExecutor executor(plan, config);
  RunOutput batch = executor.Run(ev);
  ASSERT_TRUE(batch.status.ok());
  for (int producers : {2, 4}) {
    MpResult mp = RunMultiProducer(plan, config, /*num_shards=*/2, producers,
                                   ev);
    ExpectSameEmissionSet(batch.emissions, mp.emissions,
                          "sliding/P=" + std::to_string(producers));
  }
}

// ---------------------------------------------------------------------------
// Contract tests share one tiny fixture plan.

class MpContractTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_.AddAttr("v");
    schema_.AddAttr("g");
    type_a_ = schema_.AddType("A");
    type_b_ = schema_.AddType("B");
    workload_ = std::make_unique<Workload>(&schema_);
    ASSERT_TRUE(workload_
                    ->Add(ParseQuery("RETURN COUNT(*) PATTERN SEQ(A, B+) "
                                     "GROUPBY g WITHIN 100 ms")
                              .value())
                    .ok());
    // The plan keeps a pointer into the workload, so both live on the
    // fixture.
    plan_ =
        std::make_unique<WorkloadPlan>(AnalyzeWorkload(*workload_).value());
  }

  Event Make(Timestamp t, TypeId type, double group) {
    Event e(t, type);
    e.set_attr(0, 1.0);
    e.set_attr(1, group);
    return e;
  }

  std::unique_ptr<ShardedSession> Open(int num_shards, CollectingSink* sink,
                                       RunConfig config = RunConfig{}) {
    config.kind = EngineKind::kHamletDynamic;
    config.num_shards = num_shards;
    Result<std::unique_ptr<ShardedSession>> session =
        ShardedSession::Open(*plan_, config, sink);
    EXPECT_TRUE(session.ok());
    return std::move(session).value();
  }

  Schema schema_;
  TypeId type_a_ = 0;
  TypeId type_b_ = 0;
  std::unique_ptr<Workload> workload_;
  std::unique_ptr<WorkloadPlan> plan_;
};

TEST_F(MpContractTest, PerProducerOutOfOrderRejectedSynchronously) {
  CollectingSink sink;
  auto session = Open(2, &sink);
  auto producer = session->AddProducer().value();
  ASSERT_TRUE(producer->Push(Make(50, type_a_, 1)).ok());
  // Duplicate and regressing times bounce off the handle's own gate,
  // before anything reaches the hub — the handle stays usable.
  Status dup = producer->Push(Make(50, type_b_, 1));
  EXPECT_EQ(dup.code(), StatusCode::kInvalidArgument) << dup.ToString();
  Status old = producer->Push(Make(20, type_b_, 1));
  EXPECT_EQ(old.code(), StatusCode::kInvalidArgument) << old.ToString();
  EXPECT_NE(old.message().find("20"), std::string::npos) << old.ToString();
  EXPECT_TRUE(producer->Push(Make(60, type_b_, 1)).ok());
  ASSERT_TRUE(producer->Close().ok());
  EXPECT_TRUE(session->Close().ok());
}

TEST_F(MpContractTest, ProducerWatermarkContract) {
  CollectingSink sink;
  auto session = Open(1, &sink);
  auto producer = session->AddProducer().value();
  ASSERT_TRUE(producer->Push(Make(10, type_a_, 1)).ok());
  ASSERT_TRUE(producer->AdvanceTo(100).ok());
  // An event below the handle's own watermark is a broken promise.
  Status low = producer->Push(Make(50, type_b_, 1));
  EXPECT_EQ(low.code(), StatusCode::kInvalidArgument) << low.ToString();
  // Watermarks must not regress either.
  Status back = producer->AdvanceTo(40);
  EXPECT_EQ(back.code(), StatusCode::kInvalidArgument) << back.ToString();
  // Equality is allowed: an event AT the watermark is still in-order.
  EXPECT_TRUE(producer->Push(Make(100, type_b_, 1)).ok());
  ASSERT_TRUE(producer->Close().ok());
  EXPECT_TRUE(session->Close().ok());
}

TEST_F(MpContractTest, SessionLevelIngestLockedOutInProducerMode) {
  CollectingSink sink;
  auto session = Open(2, &sink);
  auto producer = session->AddProducer().value();
  const Event e = Make(10, type_a_, 1);
  EXPECT_EQ(session->Push(e).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(session->PushBatch(std::span<const Event>(&e, 1)).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(session->AdvanceTo(100).code(), StatusCode::kFailedPrecondition);
  std::vector<EventVector> chunk(2);
  chunk[0].push_back(e);
  EXPECT_EQ(session->PushPrePartitioned(chunk).code(),
            StatusCode::kFailedPrecondition);
  // Live churn is front-thread-only and the front thread no longer owns
  // ingest ordering, so plan changes are refused in producer mode too.
  Query q = ParseQuery("RETURN COUNT(*) PATTERN SEQ(A, B+) GROUPBY g "
                       "WITHIN 50 ms")
                .value();
  EXPECT_EQ(session->AddQuery(q).status().code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(producer->Close().ok());
  EXPECT_TRUE(session->Close().ok());
}

TEST_F(MpContractTest, AddProducerAfterSessionIngestRejected) {
  CollectingSink sink;
  auto session = Open(2, &sink);
  ASSERT_TRUE(session->Push(Make(10, type_a_, 1)).ok());
  Result<std::unique_ptr<ShardedSession::Producer>> handle =
      session->AddProducer();
  ASSERT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(session->Close().ok());
}

TEST_F(MpContractTest, CloseWithOpenProducersRejected) {
  CollectingSink sink;
  auto session = Open(2, &sink);
  auto producer = session->AddProducer().value();
  Result<RunMetrics> early = session->Close();
  ASSERT_FALSE(early.ok());
  EXPECT_EQ(early.status().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(producer->Close().ok());
  EXPECT_TRUE(session->Close().ok());
}

TEST_F(MpContractTest, ProducerHandleCloseContract) {
  CollectingSink sink;
  auto session = Open(1, &sink);
  auto producer = session->AddProducer().value();
  ASSERT_TRUE(producer->Push(Make(10, type_a_, 1)).ok());
  ASSERT_TRUE(producer->Close().ok());
  EXPECT_EQ(producer->Close().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(producer->Push(Make(20, type_b_, 1)).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(producer->AdvanceTo(30).code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(session->Close().ok());
}

TEST_F(MpContractTest, CrossProducerDuplicateTimestampPoisons) {
  CollectingSink sink;
  auto session = Open(2, &sink);
  auto p1 = session->AddProducer().value();
  auto p2 = session->AddProducer().value();
  // Each handle's own gate accepts t=10 (both were admitted at the
  // stream start), but the merged stream now carries a duplicate — the
  // sequencer's front gate rejects whichever copy merges second and the
  // session poisons, surfacing the error on EVERY producer.
  ASSERT_TRUE(p1->Push(Make(10, type_a_, 1)).ok());
  ASSERT_TRUE(p2->Push(Make(10, type_b_, 1)).ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  Status poisoned;
  Timestamp t = 11;
  while (std::chrono::steady_clock::now() < deadline) {
    poisoned = p1->Push(Make(t++, type_b_, 1));
    if (!poisoned.ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_FALSE(poisoned.ok()) << "session never poisoned";
  EXPECT_EQ(poisoned.code(), StatusCode::kInvalidArgument)
      << poisoned.ToString();
  // The poison is sticky and shared: the sibling handle and new joiners
  // see it too.
  EXPECT_FALSE(p2->Push(Make(t + 100, type_a_, 1)).ok());
  EXPECT_FALSE(session->AddProducer().ok());
  ASSERT_TRUE(p1->Close().ok());
  ASSERT_TRUE(p2->Close().ok());
  EXPECT_TRUE(session->Close().ok());
}

TEST_F(MpContractTest, LateJoinerAdmittedAtTheFrontier) {
  CollectingSink sink;
  RunConfig config;
  config.shard_batch_size = 1;  // flush staging per event for fast polling
  auto session = Open(2, &sink, config);
  auto p1 = session->AddProducer().value();
  for (Timestamp t = 1; t <= 250; ++t) {
    ASSERT_TRUE(p1->Push(Make(t, t % 5 == 0 ? type_a_ : type_b_, 1)).ok());
  }
  // Wait for a frontier broadcast: the first window [0,100) closing
  // proves the claim floor moved past t=100.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (session->MetricsSnapshot().emissions < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(session->MetricsSnapshot().emissions, 1);
  // A joiner is admitted at the merged frontier: events the merge already
  // passed are rejected synchronously on the new handle, not poisoned.
  auto p2 = session->AddProducer().value();
  Status old = p2->Push(Make(50, type_a_, 2));
  EXPECT_EQ(old.code(), StatusCode::kInvalidArgument) << old.ToString();
  EXPECT_TRUE(p2->Push(Make(1000, type_a_, 2)).ok());
  ASSERT_TRUE(p1->Close().ok());
  ASSERT_TRUE(p2->Close().ok());
  EXPECT_TRUE(session->Close().ok());
}

TEST_F(MpContractTest, WatermarkMergeHoldsForTheLaggard) {
  CollectingSink sink;
  RunConfig config;
  config.shard_batch_size = 1;
  auto session = Open(2, &sink, config);
  auto fast = session->AddProducer().value();
  auto slow = session->AddProducer().value();
  ASSERT_TRUE(slow->Push(Make(5, type_a_, 2)).ok());
  for (Timestamp t = 10; t <= 500; t += 5) {
    ASSERT_TRUE(fast->Push(Make(t, t % 25 == 0 ? type_a_ : type_b_, 1)).ok());
  }
  ASSERT_TRUE(fast->AdvanceTo(500).ok());
  // The merged frontier is pinned at the laggard's bound (t=6): only its
  // own event may merge; none of the fast producer's events can release
  // and no window may close, no matter how long we wait.
  const auto hold = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(200);
  while (std::chrono::steady_clock::now() < hold) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  RunMetrics held = session->MetricsSnapshot();
  EXPECT_LE(held.events, 1) << "fast producer's events merged past laggard";
  EXPECT_EQ(held.emissions, 0);
  // The laggard's watermark releases everything.
  ASSERT_TRUE(slow->AdvanceTo(500).ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (session->MetricsSnapshot().emissions < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(session->MetricsSnapshot().emissions, 1);
  ASSERT_TRUE(fast->Close().ok());
  ASSERT_TRUE(slow->Close().ok());
  EXPECT_TRUE(session->Close().ok());
}

TEST_F(MpContractTest, ProducerChurnPreservesEmissions) {
  // Build a reference stream: two groups, strictly increasing times.
  EventVector ev;
  for (Timestamp t = 1; t <= 600; ++t) {
    ev.push_back(Make(t, t % 7 == 0 ? type_a_ : type_b_,
                      static_cast<double>(t % 3)));
  }
  RunConfig config;
  config.kind = EngineKind::kHamletDynamic;
  StreamExecutor executor(*plan_, config);
  RunOutput batch = executor.Run(ev);
  ASSERT_TRUE(batch.status.ok());
  ASSERT_GT(batch.emissions.size(), 0u);

  CollectingSink sink;
  auto session = Open(2, &sink, config);
  // Phase A: two producers split the first half even/odd, then leave.
  {
    auto pa = session->AddProducer().value();
    auto pb = session->AddProducer().value();
    for (size_t i = 0; i < 300; ++i) {
      ASSERT_TRUE(((i % 2 == 0) ? pa : pb)->Push(ev[i]).ok());
    }
    ASSERT_TRUE(pa->Close().ok());
    ASSERT_TRUE(pb->Close().ok());
  }
  // Phase B: a fresh pair joins for the tail. Their admission bound is
  // at most the last merged time + 1 <= 301, so the tail is accepted.
  {
    auto pc = session->AddProducer().value();
    auto pd = session->AddProducer().value();
    for (size_t i = 300; i < ev.size(); ++i) {
      ASSERT_TRUE(((i % 2 == 0) ? pc : pd)->Push(ev[i]).ok());
    }
    ASSERT_TRUE(pc->AdvanceTo(ev.back().time).ok());
    ASSERT_TRUE(pd->AdvanceTo(ev.back().time).ok());
    ASSERT_TRUE(pc->Close().ok());
    ASSERT_TRUE(pd->Close().ok());
  }
  RunMetrics metrics = session->Close().value();
  ExpectSameEmissionSet(batch.emissions, sink.Take(), "producer-churn");
  EXPECT_EQ(metrics.events, batch.metrics.events);
}

}  // namespace
}  // namespace hamlet
