// Unit tests for the HAMLET symbolic layer: expressions over snapshots,
// the snapshot store, and context maps.
#include <gtest/gtest.h>

#include "src/hamlet/ctx_map.h"
#include "src/hamlet/snapshot_store.h"

namespace hamlet {
namespace {

TEST(SnapshotStoreTest, SetGetDefaultZero) {
  SnapshotStore store;
  SnapshotId x = store.Create();
  EXPECT_EQ(x, 0);
  LinAgg v;
  v.count = 3;
  store.Set(x, /*ctx=*/7, v);
  EXPECT_DOUBLE_EQ(store.Get(x, 7).count, 3);
  EXPECT_DOUBLE_EQ(store.Get(x, 8).count, 0);  // unset context reads zero
  store.Set(x, 7, LinAgg{.count = 5, .sum = 0, .count_e = 0});
  EXPECT_DOUBLE_EQ(store.Get(x, 7).count, 5);  // overwrite
  EXPECT_EQ(store.total_created(), 1);
  EXPECT_EQ(store.num_entries(), 1);
}

TEST(SnapshotStoreTest, DropContextRemovesColumn) {
  SnapshotStore store;
  SnapshotId x = store.Create(), y = store.Create();
  store.Set(x, 1, LinAgg{.count = 1, .sum = 0, .count_e = 0});
  store.Set(y, 1, LinAgg{.count = 2, .sum = 0, .count_e = 0});
  store.Set(y, 2, LinAgg{.count = 3, .sum = 0, .count_e = 0});
  store.DropContext(1);
  EXPECT_DOUBLE_EQ(store.Get(x, 1).count, 0);
  EXPECT_DOUBLE_EQ(store.Get(y, 2).count, 3);
  EXPECT_EQ(store.num_entries(), 1);
}

TEST(ExprTest, VarAndConstEval) {
  SnapshotStore store;
  SnapshotId x = store.Create();
  store.Set(x, 0, LinAgg{.count = 2, .sum = 10, .count_e = 1});
  Expr e = Expr::Var(x);
  e.AddConst(LinAgg{.count = 1, .sum = 0, .count_e = 0});
  LinAgg v = e.Eval(store, 0);
  EXPECT_DOUBLE_EQ(v.count, 3);
  EXPECT_DOUBLE_EQ(v.sum, 10);
  EXPECT_DOUBLE_EQ(e.EvalCount(store, 0), 3);
}

TEST(ExprTest, AddExprMergesSortedTerms) {
  SnapshotStore store;
  SnapshotId x = store.Create(), y = store.Create(), z = store.Create();
  store.Set(x, 0, LinAgg{.count = 1, .sum = 0, .count_e = 0});
  store.Set(y, 0, LinAgg{.count = 10, .sum = 0, .count_e = 0});
  store.Set(z, 0, LinAgg{.count = 100, .sum = 0, .count_e = 0});
  Expr a;
  a.AddVar(z, 1.0);
  a.AddVar(x, 2.0);
  Expr b;
  b.AddVar(y, 3.0);
  b.AddVar(x, 1.0);
  a.AddExpr(b);
  EXPECT_EQ(a.num_terms(), 3);
  // Terms sorted by var id.
  EXPECT_EQ(a.terms()[0].var, x);
  EXPECT_EQ(a.terms()[2].var, z);
  EXPECT_DOUBLE_EQ(a.Eval(store, 0).count, 3 * 1 + 3 * 10 + 1 * 100);
}

TEST(ExprTest, RepeatedSelfAddDoubles) {
  // The Table 3 doubling pattern: R += expr; expr' = x + R.
  SnapshotStore store;
  SnapshotId x = store.Create();
  store.Set(x, 0, LinAgg{.count = 2, .sum = 0, .count_e = 0});
  Expr running;
  double expected = 2;
  for (int i = 0; i < 4; ++i) {
    Expr node = Expr::Var(x);
    node.AddExpr(running);
    EXPECT_DOUBLE_EQ(node.EvalCount(store, 0), expected);
    running.AddExpr(node);
    expected *= 2;
  }
  // running = 15x as in Table 4's sum(B3).
  EXPECT_DOUBLE_EQ(running.EvalCount(store, 0), 30);
  EXPECT_EQ(running.num_terms(), 1);
  EXPECT_DOUBLE_EQ(running.terms()[0].alpha, 15);
}

TEST(ExprTest, ApplyTargetEventCrossCoefficients) {
  // sum(e) = acc.sum + val*count(e); count_e(e) = acc.count_e + count(e).
  SnapshotStore store;
  SnapshotId x = store.Create();
  store.Set(x, 0, LinAgg{.count = 4, .sum = 7, .count_e = 2});
  Expr e = Expr::Var(x);
  e.ApplyTargetEvent(/*val=*/10.0, /*need_sum=*/true, /*need_count_e=*/true);
  LinAgg v = e.Eval(store, 0);
  EXPECT_DOUBLE_EQ(v.count, 4);
  EXPECT_DOUBLE_EQ(v.sum, 7 + 10.0 * 4);
  EXPECT_DOUBLE_EQ(v.count_e, 2 + 4);
}

TEST(ExprTest, PerContextScoping) {
  // A variable never set for a context evaluates to zero there — this is
  // what scopes node expressions to window instances.
  SnapshotStore store;
  SnapshotId x = store.Create();
  store.Set(x, 0, LinAgg{.count = 5, .sum = 0, .count_e = 0});
  Expr e = Expr::Var(x);
  EXPECT_DOUBLE_EQ(e.EvalCount(store, 0), 5);
  EXPECT_DOUBLE_EQ(e.EvalCount(store, 1), 0);
}

TEST(ExprTest, ToStringShowsCoefficients) {
  Expr e;
  e.AddConst(LinAgg{.count = 2, .sum = 0, .count_e = 0});
  e.AddVar(3, 4.0);
  EXPECT_EQ(e.ToString(), "2 + 4*x3");
}

TEST(CtxMapTest, MutGetErase) {
  CtxMap<int> m;
  m.Mut(5) = 42;
  EXPECT_EQ(m.Get(5, -1), 42);
  EXPECT_EQ(m.Get(6, -1), -1);
  EXPECT_TRUE(m.Contains(5));
  m.Erase(5);
  EXPECT_FALSE(m.Contains(5));
  EXPECT_EQ(m.size(), 0u);
}

}  // namespace
}  // namespace hamlet
