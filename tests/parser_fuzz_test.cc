// Parser round-trip fuzzing: random pattern ASTs and random full queries
// must survive ToString -> Parse -> ToString verbatim, and compile
// deterministically.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/plan/template_info.h"
#include "src/query/parser.h"
#include "tests/test_seed.h"

namespace hamlet {
namespace {

// Random *supported* pattern: a SEQ of distinct types with optional Kleene
// stars and negations, optionally group-Kleene'd or OR/AND-composed.
Pattern RandomPattern(Rng& rng, int* next_type) {
  auto fresh = [&]() {
    return std::string(1, static_cast<char>('A' + (*next_type)++));
  };
  auto random_seq = [&](bool allow_neg) {
    std::vector<Pattern> parts;
    const int len = static_cast<int>(rng.NextInt(1, 4));
    for (int i = 0; i < len; ++i) {
      if (allow_neg && rng.NextBool(0.2)) {
        parts.push_back(Pattern::Not(Pattern::Type(fresh())));
      }
      Pattern p = Pattern::Type(fresh());
      if (rng.NextBool(0.4)) p = Pattern::Kleene(std::move(p));
      parts.push_back(std::move(p));
    }
    return Pattern::Seq(std::move(parts));
  };
  const double shape = rng.NextDouble();
  if (shape < 0.15) return Pattern::Kleene(random_seq(/*allow_neg=*/false));
  if (shape < 0.3)
    return Pattern::Or(random_seq(false), random_seq(false));
  if (shape < 0.4)
    return Pattern::And(random_seq(false), random_seq(false));
  return random_seq(/*allow_neg=*/true);
}

TEST(ParserFuzzTest, PatternRoundTripIsIdentity) {
  Rng rng(test::SeedOr(0xAB5));
  for (int trial = 0; trial < 500; ++trial) {
    int next_type = 0;
    Pattern original = RandomPattern(rng, &next_type);
    const std::string text = original.ToString();
    Result<Pattern> reparsed = ParsePattern(text);
    ASSERT_TRUE(reparsed.ok()) << text << ": " << reparsed.status().ToString();
    EXPECT_TRUE(reparsed.value() == original) << text;
    EXPECT_EQ(reparsed.value().ToString(), text);
  }
}

TEST(ParserFuzzTest, QueryRoundTripIsIdentity) {
  Rng rng(test::SeedOr(0xF00D));
  const char* aggs[] = {"COUNT(*)",    "COUNT(B)",     "SUM(B.price)",
                        "AVG(B.price)", "MIN(B.price)", "MAX(B.price)"};
  const char* wheres[] = {"",
                          " WHERE B.price > 3",
                          " WHERE [driver]",
                          " WHERE prev.price <= next.price",
                          " WHERE B.price > 3 AND [driver, rider]"};
  for (int trial = 0; trial < 300; ++trial) {
    std::string text = "RETURN ";
    text += aggs[rng.NextBelow(6)];
    text += " PATTERN SEQ(A, B+";
    if (rng.NextBool(0.5)) text += ", NOT N";
    if (rng.NextBool(0.5)) text += ", C";
    text += ")";
    text += wheres[rng.NextBelow(5)];
    if (rng.NextBool(0.5)) text += " GROUPBY district";
    const int within = static_cast<int>(rng.NextInt(1, 30));
    text += " WITHIN " + std::to_string(within) + " min";
    if (rng.NextBool(0.3) && within % 2 == 0)
      text += " SLIDE " + std::to_string(within / 2) + " min";
    Result<Query> first = ParseQuery(text);
    ASSERT_TRUE(first.ok()) << text;
    const std::string printed = first.value().ToString();
    Result<Query> second = ParseQuery(printed);
    ASSERT_TRUE(second.ok()) << printed;
    EXPECT_EQ(second.value().ToString(), printed) << "original: " << text;
  }
}

TEST(ParserFuzzTest, RandomSupportedPatternsCompile) {
  Rng rng(test::SeedOr(0xDEAD));
  for (int trial = 0; trial < 500; ++trial) {
    Schema schema;
    int next_type = 0;
    Pattern p = RandomPattern(rng, &next_type);
    ASSERT_TRUE(p.Resolve(&schema).ok());
    Result<CompiledPattern> compiled = CompilePattern(p, schema);
    // Fresh distinct types everywhere: every generated shape is supported
    // except negation placement corner cases handled by compile (e.g. a
    // standalone leading NOT in a 1-element SEQ is fine).
    ASSERT_TRUE(compiled.ok())
        << p.ToString() << ": " << compiled.status().ToString();
    for (const LinearPattern& branch : compiled->branches) {
      EXPECT_GT(branch.num_positions(), 0);
      TemplateInfo info = BuildTemplate(branch);
      // Navigation tables are internally consistent.
      for (int pos = 0; pos < branch.num_positions(); ++pos) {
        for (int pp : info.pred_positions[static_cast<size_t>(pos)]) {
          EXPECT_GE(pp, 0);
          EXPECT_LT(pp, branch.num_positions());
        }
      }
    }
  }
}

TEST(ParserFuzzTest, GarbageInputsFailGracefully) {
  const char* garbage[] = {
      "",
      "RETURN",
      "RETURN COUNT(*)",
      "RETURN COUNT(*) PATTERN",
      "RETURN COUNT(*) PATTERN SEQ( WITHIN 1 min",
      "RETURN COUNT(*) PATTERN SEQ(A,) WITHIN 1 min",
      "RETURN COUNT(*) PATTERN A WITHIN",
      "RETURN COUNT(*) PATTERN A WITHIN x min",
      "RETURN FOO(*) PATTERN A WITHIN 1 min",
      "RETURN COUNT(*) PATTERN A WHERE WITHIN 1 min",
      "RETURN COUNT(*) PATTERN A WHERE B. > 3 WITHIN 1 min",
      "RETURN COUNT(*) PATTERN A WHERE [ WITHIN 1 min",
      "@#$%",
  };
  for (const char* text : garbage) {
    Result<Query> r = ParseQuery(text);
    EXPECT_FALSE(r.ok()) << "should reject: " << text;
  }
}

}  // namespace
}  // namespace hamlet

int main(int argc, char** argv) {
  return hamlet::test::RunSeededSuite(argc, argv);
}
