// StreamExecutor tests: pane management, tumbling/sliding windows, group-by
// partitioning, and cross-engine agreement. The reference is the brute-force
// enumerator applied per (query, group, window instance).
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "src/brute/enumerator.h"
#include "src/common/rng.h"
#include "src/query/parser.h"
#include "src/runtime/executor.h"
#include "src/stream/stream_builder.h"

namespace hamlet {
namespace {

// Expected emissions computed per window instance with the brute-force
// enumerator.
std::map<std::tuple<QueryId, int64_t, Timestamp>, double> Reference(
    const WorkloadPlan& plan, const EventVector& events) {
  std::map<std::tuple<QueryId, int64_t, Timestamp>, double> out;
  if (events.empty()) return out;
  Timestamp horizon = 0;
  for (const ExecQuery& eq : plan.exec_queries)
    horizon = std::max(horizon, eq.window.within);
  const Timestamp t_max = events.back().time + horizon;
  for (QueryId query = 0; query < plan.workload->size(); ++query) {
    const CompositionRule& rule =
        plan.compositions[static_cast<size_t>(query)];
    const ExecQuery& first =
        plan.exec_queries[static_cast<size_t>(rule.exec_ids[0])];
    const WindowSpec& spec = first.window;
    const AttrId group_by = first.group_by;
    // Group keys present in the stream.
    std::vector<int64_t> keys;
    for (const Event& e : events) {
      int64_t k = group_by == Schema::kInvalidId
                      ? 0
                      : static_cast<int64_t>(std::llround(e.attr(group_by)));
      if (std::find(keys.begin(), keys.end(), k) == keys.end())
        keys.push_back(k);
    }
    for (int64_t key : keys) {
      for (Timestamp ws = 0; ws < t_max; ws += spec.slide) {
        EventVector in_window;
        for (const Event& e : events) {
          if (e.time < ws || e.time >= ws + spec.within) continue;
          int64_t k = group_by == Schema::kInvalidId
                          ? 0
                          : static_cast<int64_t>(
                                std::llround(e.attr(group_by)));
          if (k == key) in_window.push_back(e);
        }
        std::vector<double> branch_values;
        for (int exec : rule.exec_ids) {
          branch_values.push_back(
              BruteForceEval(plan.exec_queries[static_cast<size_t>(exec)],
                             in_window)
                  .value()
                  .value);
        }
        out[{query, key, ws}] = ComposeQueryValue(rule, branch_values);
      }
    }
  }
  return out;
}

// The executor only emits windows it opened (i.e. covering panes at/after
// the first event); compare on the intersection, requiring every emission to
// match the reference.
void ExpectEmissionsMatch(const RunOutput& run,
                          const std::map<std::tuple<QueryId, int64_t, Timestamp>,
                                         double>& ref,
                          const std::string& label) {
  ASSERT_GT(run.emissions.size(), 0u) << label;
  for (const Emission& e : run.emissions) {
    auto it = ref.find({e.query, e.group_key, e.window_start});
    ASSERT_NE(it, ref.end())
        << label << " unexpected window q" << e.query << " g" << e.group_key
        << " ws=" << e.window_start;
    EXPECT_DOUBLE_EQ(e.value, it->second)
        << label << " q" << e.query << " g" << e.group_key
        << " ws=" << e.window_start;
  }
}

class RuntimeFixture : public ::testing::Test {
 protected:
  void Add(const std::string& text) {
    Query q = ParseQuery(text).value();
    ASSERT_TRUE(workload_.Add(q).ok());
  }
  WorkloadPlan Analyze() {
    Result<WorkloadPlan> plan = AnalyzeWorkload(workload_);
    HAMLET_CHECK(plan.ok());
    return std::move(plan).value();
  }
  // Random stream: timestamps 1ms apart starting at 1, types from alphabet,
  // attrs: v (0), g (1) in [0, groups).
  EventVector RandomStream(Rng& rng, int len,
                           const std::vector<const char*>& alphabet,
                           int groups, Timestamp spacing = 1) {
    EventVector ev;
    Timestamp t = 1;
    for (int i = 0; i < len; ++i) {
      Event e(t, schema_.AddType(alphabet[rng.NextBelow(alphabet.size())]));
      e.set_attr(0, static_cast<double>(rng.NextInt(0, 9)));
      e.set_attr(1, static_cast<double>(rng.NextInt(0, groups - 1)));
      ev.push_back(e);
      t += 1 + static_cast<Timestamp>(rng.NextBelow(
               static_cast<uint64_t>(spacing)));
    }
    return ev;
  }
  Schema schema_;
  Workload workload_{&schema_};
};

TEST_F(RuntimeFixture, TumblingWindowsAllEngines) {
  schema_.AddAttr("v");
  schema_.AddAttr("g");
  Add("RETURN COUNT(*) PATTERN SEQ(A, B+) WITHIN 40 ms");
  Add("RETURN COUNT(*) PATTERN SEQ(C, B+) WITHIN 40 ms");
  WorkloadPlan plan = Analyze();
  Rng rng(2024);
  EventVector ev = RandomStream(rng, 60, {"A", "B", "C"}, 1, 3);
  auto ref = Reference(plan, ev);
  for (EngineKind kind :
       {EngineKind::kHamletDynamic, EngineKind::kHamletStatic,
        EngineKind::kHamletNoShare, EngineKind::kGretaGraph,
        EngineKind::kGretaPrefix, EngineKind::kTwoStep, EngineKind::kSharon}) {
    RunConfig config;
    config.kind = kind;
    StreamExecutor executor(plan, config);
    RunOutput run = executor.Run(ev);
    ExpectEmissionsMatch(run, ref, EngineKindName(kind));
    EXPECT_EQ(run.metrics.events, 60);
    EXPECT_GT(run.metrics.throughput_eps, 0);
  }
}

TEST_F(RuntimeFixture, SlidingWindowsReplicateCorrectly) {
  schema_.AddAttr("v");
  schema_.AddAttr("g");
  Add("RETURN COUNT(*) PATTERN SEQ(A, B+) WITHIN 30 ms SLIDE 10 ms");
  Add("RETURN COUNT(*) PATTERN SEQ(C, B+) WITHIN 30 ms SLIDE 10 ms");
  WorkloadPlan plan = Analyze();
  EXPECT_EQ(plan.pane_size, 10);
  Rng rng(7);
  EventVector ev = RandomStream(rng, 50, {"A", "B", "C"}, 1, 3);
  auto ref = Reference(plan, ev);
  for (EngineKind kind : {EngineKind::kHamletDynamic, EngineKind::kGretaGraph,
                          EngineKind::kTwoStep}) {
    RunConfig config;
    config.kind = kind;
    StreamExecutor executor(plan, config);
    ExpectEmissionsMatch(executor.Run(ev), ref, EngineKindName(kind));
  }
}

TEST_F(RuntimeFixture, DiverseWindowsShareViaPanes) {
  schema_.AddAttr("v");
  schema_.AddAttr("g");
  // Different tumbling windows, pane = gcd = 20ms; the HAMLET component
  // still shares B+ across the queries.
  Add("RETURN COUNT(*) PATTERN SEQ(A, B+) WITHIN 40 ms");
  Add("RETURN COUNT(*) PATTERN SEQ(C, B+) WITHIN 60 ms");
  WorkloadPlan plan = Analyze();
  EXPECT_EQ(plan.pane_size, 20);
  ASSERT_EQ(plan.share_groups.size(), 1u);
  Rng rng(99);
  EventVector ev = RandomStream(rng, 80, {"A", "B", "C"}, 1, 3);
  auto ref = Reference(plan, ev);
  for (EngineKind kind : {EngineKind::kHamletDynamic, EngineKind::kHamletStatic,
                          EngineKind::kGretaGraph}) {
    RunConfig config;
    config.kind = kind;
    StreamExecutor executor(plan, config);
    RunOutput run = executor.Run(ev);
    ExpectEmissionsMatch(run, ref, EngineKindName(kind));
    if (kind == EngineKind::kHamletStatic) {
      EXPECT_GT(run.metrics.hamlet.bursts_shared, 0);
    }
  }
}

TEST_F(RuntimeFixture, GroupByPartitionsStreams) {
  schema_.AddAttr("v");
  schema_.AddAttr("g");
  Add("RETURN COUNT(*) PATTERN SEQ(A, B+) GROUPBY g WITHIN 50 ms");
  Add("RETURN COUNT(*) PATTERN SEQ(C, B+) GROUPBY g WITHIN 50 ms");
  WorkloadPlan plan = Analyze();
  Rng rng(31);
  EventVector ev = RandomStream(rng, 90, {"A", "B", "C"}, 3, 2);
  auto ref = Reference(plan, ev);
  for (EngineKind kind : {EngineKind::kHamletDynamic, EngineKind::kGretaGraph,
                          EngineKind::kSharon}) {
    RunConfig config;
    config.kind = kind;
    StreamExecutor executor(plan, config);
    ExpectEmissionsMatch(executor.Run(ev), ref, EngineKindName(kind));
  }
}

TEST_F(RuntimeFixture, SumAndAvgAcrossWindows) {
  schema_.AddAttr("v");
  schema_.AddAttr("g");
  Add("RETURN SUM(B.v) PATTERN SEQ(A, B+) WITHIN 30 ms");
  Add("RETURN AVG(B.v) PATTERN SEQ(C, B+) WITHIN 30 ms");
  WorkloadPlan plan = Analyze();
  Rng rng(55);
  EventVector ev = RandomStream(rng, 70, {"A", "B", "C"}, 1, 2);
  auto ref = Reference(plan, ev);
  for (EngineKind kind : {EngineKind::kHamletDynamic, EngineKind::kGretaGraph,
                          EngineKind::kTwoStep, EngineKind::kSharon}) {
    RunConfig config;
    config.kind = kind;
    StreamExecutor executor(plan, config);
    ExpectEmissionsMatch(executor.Run(ev), ref, EngineKindName(kind));
  }
}

TEST_F(RuntimeFixture, OrCompositionAcrossComponents) {
  schema_.AddAttr("v");
  schema_.AddAttr("g");
  Add("RETURN COUNT(*) PATTERN SEQ(A,B+) OR SEQ(C,D+) WITHIN 40 ms");
  WorkloadPlan plan = Analyze();
  Rng rng(66);
  EventVector ev = RandomStream(rng, 60, {"A", "B", "C", "D"}, 1, 2);
  auto ref = Reference(plan, ev);
  RunConfig config;
  config.kind = EngineKind::kHamletDynamic;
  StreamExecutor executor(plan, config);
  ExpectEmissionsMatch(executor.Run(ev), ref, "or_composition");
}

TEST_F(RuntimeFixture, TwoStepBudgetProducesDnf) {
  schema_.AddAttr("v");
  schema_.AddAttr("g");
  Add("RETURN COUNT(*) PATTERN B+ WITHIN 100 ms");
  WorkloadPlan plan = Analyze();
  StreamBuilder sb(&schema_);
  sb.AddRun(40, "B");  // 2^40 trends: hopeless for construction
  RunConfig config;
  config.kind = EngineKind::kTwoStep;
  config.two_step_budget = 10'000;
  StreamExecutor executor(plan, config);
  RunOutput run = executor.Run(sb.Take());
  EXPECT_GT(run.metrics.dnf_windows, 0);
}

TEST_F(RuntimeFixture, MetricsArePopulated) {
  schema_.AddAttr("v");
  schema_.AddAttr("g");
  Add("RETURN COUNT(*) PATTERN SEQ(A, B+) WITHIN 50 ms");
  Add("RETURN COUNT(*) PATTERN SEQ(C, B+) WITHIN 50 ms");
  WorkloadPlan plan = Analyze();
  Rng rng(5);
  EventVector ev = RandomStream(rng, 200, {"A", "B", "C"}, 1, 1);
  RunConfig config;
  config.kind = EngineKind::kHamletDynamic;
  StreamExecutor executor(plan, config);
  RunOutput run = executor.Run(ev);
  EXPECT_EQ(run.metrics.events, 200);
  EXPECT_GT(run.metrics.emissions, 0);
  EXPECT_GT(run.metrics.peak_memory_bytes, 0);
  EXPECT_GT(run.metrics.decisions, 0);
  EXPECT_GE(run.metrics.avg_latency_seconds, 0);
  EXPECT_GE(run.metrics.max_latency_seconds, run.metrics.avg_latency_seconds);
}

}  // namespace
}  // namespace hamlet
