// Columnar hot-path tests.
//
// Pins down the three contracts the columnar refactor introduced:
//  1. EQUIVALENCE — for every engine kind and shard count, running a stream
//     with RunConfig::columnar on yields the BIT-IDENTICAL emission set the
//     row path produces (values compared with EXPECT_EQ, not tolerances).
//  2. KERNEL SEMANTICS — CmpColumnKernel/TypeGateAnd/PackMask/
//     MaskedLinAggKernel agree element-for-element with the scalar row path
//     (EvalCmp), including IEEE NaN behaviour and empty/full selections.
//  3. ALLOCATION — steady-state HAMLET evaluation performs ZERO heap
//     allocations per event (arena-pooled graphlets + Expr/CtxMap small
//     buffers), enforced with global operator new/delete counters.
#include <gtest/gtest.h>

#include <atomic>

// This file replaces the global allocator with a malloc-backed counting
// one; GCC's heuristic pairing of allocation/deallocation calls does not
// know that and flags `std::free` on new-ed pointers.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

#include <cmath>
#include <cstdlib>
#include <limits>
#include <new>
#include <span>
#include <string>
#include <vector>

#include "src/benchlib/workloads.h"
#include "src/common/arena.h"
#include "src/query/columnar_predicate.h"
#include "src/query/parser.h"
#include "src/runtime/executor.h"
#include "src/runtime/sharded_session.h"
#include "src/stream/event_batch.h"
#include "src/stream/stream_builder.h"

// ---------------------------------------------------------------------------
// Global allocation counters. Interposing replaceable operator new/delete is
// the one observation point that sees EVERY heap allocation in the process
// (std::vector growth, node push_back, map rebalancing...), works under
// ASan, and needs no allocator hooks in the production code.
namespace {

std::atomic<bool> g_count_allocations{false};
std::atomic<int64_t> g_allocation_count{0};

void NoteAllocation() {
  if (g_count_allocations.load(std::memory_order_relaxed)) {
    g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace

void* operator new(std::size_t size) {
  NoteAllocation();
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  NoteAllocation();
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
// ---------------------------------------------------------------------------

namespace hamlet {
namespace {

constexpr EngineKind kAllKinds[] = {
    EngineKind::kHamletDynamic, EngineKind::kHamletStatic,
    EngineKind::kHamletNoShare, EngineKind::kGretaGraph,
    EngineKind::kGretaPrefix,   EngineKind::kTwoStep,
    EngineKind::kSharon};

constexpr CmpOp kAllOps[] = {CmpOp::kLt, CmpOp::kLe, CmpOp::kGt,
                             CmpOp::kGe, CmpOp::kEq, CmpOp::kNe};

// Exact (bitwise) equality, except that two NaNs compare equal.
void ExpectSameValue(double a, double b, const std::string& label) {
  if (std::isnan(a) && std::isnan(b)) return;
  EXPECT_EQ(a, b) << label;
}

void ExpectSameEmissionSet(const std::vector<Emission>& expected,
                           const std::vector<Emission>& actual,
                           const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    const Emission& a = expected[i];
    const Emission& b = actual[i];
    const std::string at = label + " emission #" + std::to_string(i);
    EXPECT_EQ(a.query, b.query) << at;
    EXPECT_EQ(a.query_name, b.query_name) << at;
    EXPECT_EQ(a.group_key, b.group_key) << at;
    EXPECT_EQ(a.window_start, b.window_start) << at;
    EXPECT_EQ(a.window_end, b.window_end) << at;
    ExpectSameValue(a.value, b.value, at);
  }
}

// Runs `ev` through a ShardedSession in fixed-size chunks and returns the
// normalized emission set.
std::vector<Emission> RunSharded(const WorkloadPlan& plan,
                                 const RunConfig& config, int shards,
                                 const EventVector& ev) {
  RunConfig cfg = config;
  cfg.num_shards = shards;
  CollectingSink sink;
  Result<std::unique_ptr<ShardedSession>> session =
      ShardedSession::Open(plan, cfg, &sink);
  HAMLET_CHECK(session.ok());
  constexpr size_t kChunk = 64;
  for (size_t i = 0; i < ev.size(); i += kChunk) {
    const size_t len = std::min(kChunk, ev.size() - i);
    Status s = session.value()->PushBatch(
        std::span<const Event>(ev.data() + i, len));
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
  if (!ev.empty()) {
    EXPECT_TRUE(session.value()->AdvanceTo(ev.back().time).ok());
  }
  EXPECT_TRUE(session.value()->Close().ok());
  return sink.Take();
}

// ---------------------------------------------------------------------------
// 1. Row-vs-columnar emission equivalence, all engines x shard counts.

void CheckRowColumnarEquivalence(const BenchWorkload& bw,
                                 const EventVector& ev,
                                 const std::string& workload_label) {
  for (EngineKind kind : kAllKinds) {
    // Row-path baseline: plain Session, columnar off.
    RunConfig row;
    row.kind = kind;
    row.columnar = false;
    StreamExecutor row_exec(*bw.plan, row);
    RunOutput baseline = row_exec.Run(ev);
    ASSERT_TRUE(baseline.status.ok()) << baseline.status.ToString();
    ASSERT_GT(baseline.emissions.size(), 0u)
        << workload_label << "/" << EngineKindName(kind);

    RunConfig columnar = row;
    columnar.columnar = true;
    for (int shards : {1, 2, 4, 8}) {
      std::vector<Emission> got =
          RunSharded(*bw.plan, columnar, shards, ev);
      ExpectSameEmissionSet(
          baseline.emissions, got,
          workload_label + "/" + EngineKindName(kind) + "/columnar/N=" +
              std::to_string(shards));
    }
    // And the row path itself must be shard-invariant with columnar off
    // (guards against the equivalence holding only because both paths
    // took the batch branch).
    std::vector<Emission> row_sharded = RunSharded(*bw.plan, row, 2, ev);
    ExpectSameEmissionSet(
        baseline.emissions, row_sharded,
        workload_label + "/" + EngineKindName(kind) + "/row/N=2");
  }
}

TEST(RowColumnarEquivalence, Workload1WithPredicatesAllEnginesAllShards) {
  BenchWorkload bw = MakeWorkload1("ridesharing", 5,
                                   /*window_ms=*/5 * kMillisPerSecond,
                                   /*with_predicate=*/true);
  GeneratorConfig gen;
  gen.seed = 1234;
  gen.events_per_minute = 500;
  gen.duration_minutes = 1;
  gen.num_groups = 8;
  gen.burstiness = 0.6;
  gen.max_burst = 8;
  EventVector ev = bw.generator->Generate(gen);
  CheckRowColumnarEquivalence(bw, ev, "w1");
}

TEST(RowColumnarEquivalence, Workload2DiverseAllEnginesAllShards) {
  BenchWorkload bw = MakeWorkload2(6);
  // Kept deliberately small: the two-step baseline's trend enumeration is
  // superlinear in Kleene-run length, and this sweep runs it 10 times
  // (row + 4 shard counts + guards) under ASan in CI.
  GeneratorConfig gen;
  gen.seed = 99;
  gen.events_per_minute = 150;
  gen.duration_minutes = 1;
  gen.num_groups = 4;
  gen.burstiness = 0.5;
  gen.max_burst = 4;
  EventVector ev = bw.generator->Generate(gen);
  CheckRowColumnarEquivalence(bw, ev, "w2");
}

// Engine-level batch equivalence: EvalHamletBatchColumnar over the SoA batch
// vs EvalHamletBatch over the rows, for a workload with event predicates.
TEST(RowColumnarEquivalence, EvalHamletBatchColumnarMatchesRowPath) {
  Schema schema;
  Workload workload{&schema};
  for (const char* text :
       {"RETURN COUNT(*) PATTERN SEQ(A, B+) WHERE B.x > 2 WITHIN 1 s",
        "RETURN SUM(B.x) PATTERN SEQ(C, B+) WHERE B.x <= 5 WITHIN 1 s"}) {
    workload.Add(ParseQuery(text).value()).ok();
  }
  WorkloadPlan plan = AnalyzeWorkload(workload).value();

  // "x" is the first attribute the workload registers -> attr id 0.
  StreamBuilder sb(&schema);
  sb.Add("A", {1.0});
  sb.AddRun(4, "B", {3.0});
  sb.Add("C", {4.0});
  sb.AddRun(3, "B", {7.0});
  sb.AddRun(2, "B", {1.0});
  EventVector ev = sb.Take();

  AlwaysSharePolicy policy_row;
  BatchResult row = EvalHamletBatch(plan, ev, &policy_row);
  AlwaysSharePolicy policy_col;
  EventBatch batch = EventBatch::FromRows(ev, schema.num_attrs());
  BatchResult col = EvalHamletBatchColumnar(plan, batch, &policy_col);

  ASSERT_EQ(row.exec_values.size(), col.exec_values.size());
  for (size_t i = 0; i < row.exec_values.size(); ++i) {
    ExpectSameValue(row.exec_values[i], col.exec_values[i],
                    "exec #" + std::to_string(i));
  }
  EXPECT_EQ(row.stats.events, col.stats.events);
  EXPECT_EQ(row.stats.graphlets_opened, col.stats.graphlets_opened);
  EXPECT_EQ(row.stats.snapshots_created, col.stats.snapshots_created);
}

// ---------------------------------------------------------------------------
// 2. Kernel unit tests.

TEST(PredicateKernels, CmpColumnKernelMatchesEvalCmpIncludingNaN) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<double> col = {-3.5, 0.0, -0.0, 2.0,  2.0000001,
                                   nan,  inf, -inf, 7.25, 2.0};
  const std::vector<double> constants = {2.0, 0.0, nan, -inf};
  std::vector<uint8_t> out(col.size());
  for (CmpOp op : kAllOps) {
    for (double c : constants) {
      CmpColumnKernel(op, col.data(), static_cast<int>(col.size()), c,
                      out.data());
      for (size_t i = 0; i < col.size(); ++i) {
        EXPECT_EQ(out[i] != 0, EvalCmp(op, col[i], c))
            << CmpOpName(op) << " col[" << i << "]=" << col[i]
            << " const=" << c;
      }
    }
  }
}

TEST(PredicateKernels, TypeGateOnlyConstrainsOwnType) {
  const std::vector<TypeId> types = {0, 1, 0, 2, 1, 0};
  const std::vector<uint8_t> pass = {0, 0, 1, 0, 1, 0};
  std::vector<uint8_t> acc(types.size(), 1);
  TypeGateAnd(types.data(), static_cast<int>(types.size()), /*type=*/1,
              pass.data(), acc.data());
  // Rows of other types are untouched; type-1 rows take their pass bit.
  const std::vector<uint8_t> expect = {1, 0, 1, 1, 1, 1};
  EXPECT_EQ(acc, expect);
}

TEST(PredicateKernels, PackMaskAndSelectionMaskEdges) {
  // 70 rows crosses the word boundary; pattern 1 0 1 0 ...
  std::vector<uint8_t> bytes(70);
  for (size_t i = 0; i < bytes.size(); ++i) bytes[i] = (i % 2 == 0) ? 1 : 0;
  SelectionMask mask;
  PackMask(bytes.data(), static_cast<int>(bytes.size()), &mask);
  EXPECT_EQ(mask.rows(), 70);
  EXPECT_EQ(mask.CountSelected(), 35);
  for (int i = 0; i < 70; ++i) EXPECT_EQ(mask.Test(i), i % 2 == 0) << i;

  SelectionMask all;
  all.AssignAll(70);
  EXPECT_EQ(all.CountSelected(), 70);  // tail bits beyond row 70 are clear
  SelectionMask none;
  none.AssignNone(70);
  EXPECT_EQ(none.CountSelected(), 0);
  for (int i = 0; i < 70; ++i) {
    EXPECT_TRUE(all.Test(i));
    EXPECT_FALSE(none.Test(i));
  }
}

TEST(PredicateKernels, MaskedLinAggMatchesScalarLoop) {
  const std::vector<double> col = {1.5, -2.0, 4.25, 0.0, 100.0, -7.5};
  const std::vector<uint8_t> mask = {1, 0, 1, 1, 0, 1};
  double count = 0.0, sum = 0.0;
  MaskedLinAggKernel(col.data(), mask.data(), static_cast<int>(col.size()),
                     &count, &sum);
  double want_count = 0.0, want_sum = 0.0;
  for (size_t i = 0; i < col.size(); ++i) {
    if (mask[i]) {
      want_count += 1.0;
      want_sum += col[i];
    }
  }
  EXPECT_EQ(count, want_count);
  EXPECT_EQ(sum, want_sum);
}

TEST(PredicateKernels, ProgramEvalBatchEmptyAndFullSelections) {
  Schema schema;
  Workload workload{&schema};
  workload.Add(ParseQuery("RETURN COUNT(*) PATTERN SEQ(A, B+) "
                          "WHERE B.x > 100 WITHIN 1 s")
                   .value())
      .ok();
  workload.Add(ParseQuery("RETURN COUNT(*) PATTERN SEQ(A, B+) "
                          "WHERE B.x > -100 WITHIN 1 s")
                   .value())
      .ok();
  WorkloadPlan plan = AnalyzeWorkload(workload).value();
  PredicateProgram program = CompilePredicateProgram(plan).value();
  ASSERT_FALSE(program.trivial());
  ASSERT_EQ(program.predicated_queries().size(), 2u);

  StreamBuilder sb(&schema);
  sb.Add("A", {1.0});
  sb.AddRun(5, "B", {2.0});  // 2 > -100, not > 100
  EventBatch batch = EventBatch::FromRows(sb.Take(), schema.num_attrs());
  BatchSelection sel;
  program.EvalBatch(batch, &sel);
  ASSERT_EQ(sel.masks.size(), 2u);
  // Query 0 (x > 100): B rows fail, the A row passes (type gate).
  // Query 1 (x > -100): every row passes.
  EXPECT_EQ(sel.masks[0].CountSelected(), 1);
  EXPECT_EQ(sel.masks[1].CountSelected(), batch.size());
  for (int i = 0; i < batch.size(); ++i) {
    Event row;
    batch.CopyRow(i, &row);
    EXPECT_EQ(sel.masks[0].Test(i), program.EvalRow(0, row)) << i;
    EXPECT_EQ(sel.masks[1].Test(i), program.EvalRow(1, row)) << i;
  }
}

// ---------------------------------------------------------------------------
// EventBatch round-trip.

TEST(EventBatchTest, RoundTripIsBitIdentical) {
  EventBatch batch(2);
  std::vector<Event> rows;
  Event e;
  e.time = 5;
  e.type = 1;
  e.num_attrs = 2;
  e.attrs[0] = 1.5;
  e.attrs[1] = -0.0;
  rows.push_back(e);
  Event narrow;  // fewer attrs than the batch's columns
  narrow.time = 6;
  narrow.type = 0;
  narrow.num_attrs = 1;
  narrow.attrs[0] = 42.0;
  rows.push_back(narrow);
  Event wide;  // more attrs than the batch started with: widens
  wide.time = 7;
  wide.type = 2;
  wide.num_attrs = 4;
  wide.attrs[0] = 1;
  wide.attrs[1] = 2;
  wide.attrs[2] = 3;
  wide.attrs[3] = std::numeric_limits<double>::quiet_NaN();
  rows.push_back(wide);
  for (const Event& r : rows) batch.Append(r);

  ASSERT_EQ(batch.size(), 3);
  EXPECT_EQ(batch.num_attr_columns(), 4);  // widened by the third row
  for (int i = 0; i < batch.size(); ++i) {
    Event got;
    batch.CopyRow(i, &got);
    const Event& want = rows[static_cast<size_t>(i)];
    EXPECT_EQ(got.time, want.time) << i;
    EXPECT_EQ(got.type, want.type) << i;
    EXPECT_EQ(got.num_attrs, want.num_attrs) << i;
    for (int a = 0; a < Event::kMaxAttrs; ++a) {
      ExpectSameValue(got.attrs[static_cast<size_t>(a)],
                      want.attrs[static_cast<size_t>(a)],
                      "row " + std::to_string(i) + " attr " +
                          std::to_string(a));
    }
  }
  // Widening zero-padded the earlier rows' new columns.
  EXPECT_EQ(batch.column(3)[0], 0.0);
  EXPECT_EQ(batch.column(3)[1], 0.0);
  // Clear keeps the shape.
  batch.Clear();
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(batch.num_attr_columns(), 4);
}

// ---------------------------------------------------------------------------
// Open-time validation (satellite: unresolved predicate -> kInvalidArgument
// at Session::Open, not a per-event DCHECK later).

TEST(OpenValidation, UnresolvedPredicateAttrFailsOpen) {
  Schema schema;
  Workload workload{&schema};
  workload.Add(ParseQuery("RETURN COUNT(*) PATTERN SEQ(A, B+) "
                          "WHERE B.x > 1 WITHIN 1 s")
                   .value())
      .ok();
  WorkloadPlan plan = AnalyzeWorkload(workload).value();
  // Corrupt the resolved attribute id the way a schema/plan mismatch would.
  ASSERT_FALSE(plan.exec_queries.empty());
  ASSERT_FALSE(plan.exec_queries[0].event_predicates.empty());
  plan.exec_queries[0].event_predicates[0].attr = 99;

  for (bool columnar : {true, false}) {
    RunConfig config;
    config.columnar = columnar;
    CollectingSink sink;
    Result<std::unique_ptr<Session>> session =
        Session::Open(plan, config, &sink);
    ASSERT_FALSE(session.ok()) << "columnar=" << columnar;
    EXPECT_EQ(session.status().code(), StatusCode::kInvalidArgument)
        << session.status().ToString();
  }
}

// ---------------------------------------------------------------------------
// Arena / ObjectPool.

TEST(ArenaTest, BumpAllocationAndReset) {
  Arena arena(/*block_bytes=*/256);
  EXPECT_EQ(arena.bytes_reserved(), 0);
  void* a = arena.Allocate(64, 8);
  void* b = arena.Allocate(64, 8);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  const int64_t reserved = arena.bytes_reserved();
  EXPECT_GE(reserved, 256);
  // Oversize request gets its own block.
  void* big = arena.Allocate(4096, 16);
  ASSERT_NE(big, nullptr);
  EXPECT_GT(arena.bytes_reserved(), reserved);
  // Reset rewinds without releasing; reservation is monotone.
  const int64_t peak = arena.bytes_reserved();
  arena.Reset();
  EXPECT_EQ(arena.bytes_reserved(), peak);
  EXPECT_EQ(arena.bytes_used(), 0);
  void* a2 = arena.Allocate(64, 8);
  EXPECT_EQ(a2, a);  // first block rewound, same bump start
}

TEST(ArenaTest, AlignmentIsHonored) {
  Arena arena;
  for (size_t align : {size_t{8}, size_t{16}, size_t{64}}) {
    void* p = arena.Allocate(24, align);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u) << align;
  }
}

struct PoolProbe {
  std::vector<int> payload;
  int recycles = 0;
  void Recycle() {
    payload.clear();  // logical reset, capacity kept
    ++recycles;
  }
};

TEST(ObjectPoolTest, AcquireReleaseRecyclesWithCapacitiesKept) {
  ObjectPool<PoolProbe> pool;
  PoolProbe* a = pool.Acquire();
  a->payload.assign(100, 7);
  const size_t warmed = a->payload.capacity();
  pool.Release(a);
  EXPECT_EQ(pool.num_live(), 0);
  EXPECT_EQ(pool.num_free(), 1);
  PoolProbe* b = pool.Acquire();
  EXPECT_EQ(b, a);  // LIFO reuse
  EXPECT_EQ(b->recycles, 1);
  EXPECT_TRUE(b->payload.empty());
  EXPECT_GE(b->payload.capacity(), warmed);  // Recycle kept the capacity
  PoolProbe* c = pool.Acquire();
  EXPECT_NE(c, b);
  EXPECT_EQ(pool.objects().size(), 2u);
  EXPECT_GT(pool.bytes_reserved(), 0);
}

// ---------------------------------------------------------------------------
// 3. Zero-steady-state-allocation regression.
//
// Warm a session until every capacity (staging batch, selection bitmaps,
// pooled graphlet node vectors, snapshot store) has seen its steady-state
// size, then assert that pushing another same-pane burst through the
// columnar hot path performs ZERO heap allocations. Kleene bursts are the
// paper's stress axis, so this is exactly the loop that used to pay one
// malloc/free per graphlet and several per event.

void CheckZeroSteadyStateAllocations(EngineKind kind) {
  Schema schema;
  Workload workload{&schema};
  for (const char* text :
       {"RETURN COUNT(*) PATTERN SEQ(A, B+) WHERE B.x > 0 WITHIN 1 s",
        "RETURN COUNT(*) PATTERN SEQ(C, B+) WHERE B.x > 0 WITHIN 1 s"}) {
    HAMLET_CHECK(workload.Add(ParseQuery(text).value()).ok());
  }
  WorkloadPlan plan = AnalyzeWorkload(workload).value();

  RunConfig config;
  config.kind = kind;
  config.columnar = true;
  // No sink: emissions drop, so window closes cannot allocate in a sink
  // buffer (closures happen outside the measured region anyway).
  Result<std::unique_ptr<Session>> opened =
      Session::Open(plan, config, /*sink=*/nullptr);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  Session& session = *opened.value();

  // "x" is the first attribute registered -> attr id 0. No GROUPBY, so
  // every event lands in group 0.
  auto push_run = [&](Timestamp start, const char* type, int n, double x) {
    EventVector ev;
    ev.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      Event e;
      e.time = start + i;
      e.type = schema.FindType(type);
      e.num_attrs = 1;
      e.attrs[0] = x;
      ev.push_back(e);
    }
    ASSERT_TRUE(session.PushBatch(ev).ok());
  };

  // Pane 0 (window [0, 1000)): warm the staging batch / selection scratch to
  // 600 rows and the pool's graphlet node vectors past the later burst.
  push_run(1, "A", 1, 1.0);
  push_run(10, "B", 600, 1.0);
  // Pane 1: fresh windows/contexts/graphlets from the warmed pools. The
  // 600-event run grows THIS pane's open B graphlet capacity beyond what
  // the measured burst appends (600 + 200 stays under the doubled vector
  // capacity), regardless of which recycled pool object the lane drew.
  push_run(1000, "A", 1, 1.0);
  push_run(1005, "C", 1, 1.0);
  push_run(1010, "B", 600, 1.0);

  // Measured region: one more same-pane burst, staged and dispatched through
  // the columnar path. Events stay inside pane 1, so no windows open or
  // close and no graphlets are acquired — pure steady-state appends.
  EventVector burst;
  for (int i = 0; i < 200; ++i) {
    Event e;
    e.time = 1700 + i;
    e.type = schema.FindType("B");
    e.num_attrs = 1;
    e.attrs[0] = 1.0;
    burst.push_back(e);
  }
  g_allocation_count.store(0);
  g_count_allocations.store(true);
  Status pushed = session.PushBatch(burst);
  g_count_allocations.store(false);
  ASSERT_TRUE(pushed.ok()) << pushed.ToString();
  EXPECT_EQ(g_allocation_count.load(), 0)
      << EngineKindName(kind)
      << ": steady-state hamlet hot loop allocated on the heap";

  ASSERT_TRUE(session.Close().ok());
}

TEST(ZeroAllocation, SharedPathSteadyStateAllocatesNothing) {
  CheckZeroSteadyStateAllocations(EngineKind::kHamletStatic);
}

TEST(ZeroAllocation, SoloPathSteadyStateAllocatesNothing) {
  CheckZeroSteadyStateAllocations(EngineKind::kHamletNoShare);
}

}  // namespace
}  // namespace hamlet
