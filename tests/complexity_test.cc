// Empirical validation of the paper's complexity analysis:
//   Eq. 4  NonShared(Q) ~ k * n^2   (GRETA graph mode)
//   Eq. 6  Shared(Q)    ~ n^2 * s + s*k*g*t, which collapses to ~n per
//          window for fast-sum sharing with O(1) snapshots per burst.
// The engines expose an `ops` counter (predecessor visits / expression
// term operations); these tests check its growth orders, not wall time.
#include <gtest/gtest.h>

#include "src/greta/greta_engine.h"
#include "src/hamlet/batch_eval.h"
#include "src/optimizer/policies.h"
#include "src/query/parser.h"
#include "src/stream/stream_builder.h"

namespace hamlet {
namespace {

class ComplexityFixture : public ::testing::Test {
 protected:
  WorkloadPlan Plan(std::initializer_list<const char*> queries) {
    for (const char* text : queries) {
      Query q = ParseQuery(text).value();
      HAMLET_CHECK(workload_.Add(q).ok());
    }
    Result<WorkloadPlan> plan = AnalyzeWorkload(workload_);
    HAMLET_CHECK(plan.ok());
    return std::move(plan).value();
  }
  // a/c separators every `burst` B's, total ~n events.
  EventVector BurstStream(int n, int burst) {
    StreamBuilder sb(&schema_);
    int emitted = 0;
    while (emitted < n) {
      sb.Add("A").Add("C");
      sb.AddRun(burst, "B");
      emitted += burst + 2;
    }
    return sb.Take();
  }
  Schema schema_;
  Workload workload_{&schema_};
};

TEST_F(ComplexityFixture, GretaGraphOpsGrowQuadratically) {
  // Eq. 4: within one window the graph mode visits O(n^2) predecessors.
  WorkloadPlan plan =
      Plan({"RETURN COUNT(*) PATTERN SEQ(A, B+) WITHIN 1 min"});
  int64_t ops_small, ops_large;
  {
    GretaEngine engine(plan.exec_queries[0], GretaMode::kGraph);
    for (const Event& e : BurstStream(200, 10)) engine.OnEvent(e);
    ops_small = engine.ops();
  }
  {
    GretaEngine engine(plan.exec_queries[0], GretaMode::kGraph);
    for (const Event& e : BurstStream(800, 10)) engine.OnEvent(e);
    ops_large = engine.ops();
  }
  // 4x the events -> ~16x the work; require clearly super-linear (>8x) and
  // at most quadratic (<24x).
  EXPECT_GT(ops_large, 8 * ops_small);
  EXPECT_LT(ops_large, 24 * ops_small);
}

TEST_F(ComplexityFixture, GretaPrefixOpsGrowLinearly) {
  WorkloadPlan plan =
      Plan({"RETURN COUNT(*) PATTERN SEQ(A, B+) WITHIN 1 min"});
  int64_t ops_small, ops_large;
  {
    GretaEngine engine(plan.exec_queries[0], GretaMode::kPrefixSum);
    for (const Event& e : BurstStream(200, 10)) engine.OnEvent(e);
    ops_small = engine.ops();
  }
  {
    GretaEngine engine(plan.exec_queries[0], GretaMode::kPrefixSum);
    for (const Event& e : BurstStream(800, 10)) engine.OnEvent(e);
    ops_large = engine.ops();
  }
  EXPECT_GT(ops_large, 3 * ops_small);
  EXPECT_LT(ops_large, 6 * ops_small);
}

TEST_F(ComplexityFixture, HamletFastSumOpsGrowLinearlyInEvents) {
  // Fast-sum sharing: O(1) expression work per event plus O(k) per burst.
  WorkloadPlan plan = Plan({
      "RETURN COUNT(*) PATTERN SEQ(A, B+) WITHIN 1 min",
      "RETURN COUNT(*) PATTERN SEQ(C, B+) WITHIN 1 min",
  });
  AlwaysSharePolicy always;
  BatchResult small = EvalHamletBatch(plan, BurstStream(200, 10), &always);
  BatchResult large = EvalHamletBatch(plan, BurstStream(800, 10), &always);
  EXPECT_GT(large.stats.ops, 3 * small.stats.ops);
  EXPECT_LT(large.stats.ops, 7 * small.stats.ops);
}

TEST_F(ComplexityFixture, SharedWorkIsSublinearInQueries) {
  // The heart of Eq. 4 vs Eq. 6: non-shared work scales with k, shared
  // propagation does not (only the per-burst snapshot maintenance does).
  std::vector<int64_t> shared_ops, solo_ops;
  for (int k : {4, 8, 16}) {
    Schema schema;
    Workload workload(&schema);
    for (int i = 0; i < k; ++i) {
      std::string prefix(1, static_cast<char>('C' + i));
      Query q = ParseQuery("RETURN COUNT(*) PATTERN SEQ(" + prefix +
                           ", B+) WITHIN 1 min")
                    .value();
      HAMLET_CHECK(workload.Add(q).ok());
    }
    WorkloadPlan plan = AnalyzeWorkload(workload).value();
    StreamBuilder sb(&schema);
    for (int r = 0; r < 10; ++r) {
      for (int i = 0; i < k; ++i)
        sb.Add(std::string(1, static_cast<char>('C' + i)));
      sb.AddRun(30, "B");
    }
    EventVector ev = sb.Take();
    AlwaysSharePolicy always;
    NeverSharePolicy never;
    shared_ops.push_back(EvalHamletBatch(plan, ev, &always).stats.ops);
    solo_ops.push_back(EvalHamletBatch(plan, ev, &never).stats.ops);
  }
  // Doubling k roughly doubles non-shared B-propagation work...
  EXPECT_GT(solo_ops[2], 3 * solo_ops[0]);
  // ...while the shared runs grow strictly slower than the solo runs.
  const double shared_growth = static_cast<double>(shared_ops[2]) /
                               static_cast<double>(shared_ops[0]);
  const double solo_growth = static_cast<double>(solo_ops[2]) /
                             static_cast<double>(solo_ops[0]);
  EXPECT_LT(shared_growth, solo_growth);
  // And at k=16 the shared total is below the non-shared total.
  EXPECT_LT(shared_ops[2], solo_ops[2]);
}

TEST_F(ComplexityFixture, SnapshotCountTracksBurstsNotEvents) {
  // Fast-sum sharing creates O(1) snapshots per burst (u and x), however
  // long the burst is (Definition 8's whole point).
  WorkloadPlan plan = Plan({
      "RETURN COUNT(*) PATTERN SEQ(A, B+) WITHIN 1 min",
      "RETURN COUNT(*) PATTERN SEQ(C, B+) WITHIN 1 min",
  });
  AlwaysSharePolicy always;
  BatchResult short_bursts =
      EvalHamletBatch(plan, BurstStream(600, 5), &always);
  BatchResult long_bursts =
      EvalHamletBatch(plan, BurstStream(600, 50), &always);
  // Same event volume, 10x fewer bursts -> far fewer snapshots.
  EXPECT_GT(short_bursts.stats.snapshots_created,
            4 * long_bursts.stats.snapshots_created);
  EXPECT_EQ(long_bursts.stats.event_snapshots, 0);
}

}  // namespace
}  // namespace hamlet
