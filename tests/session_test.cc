// Session API tests.
//
// The core property is chunk equivalence: for every EngineKind, pushing a
// stream through a Session in arbitrary batch sizes (including 1-event
// chunks, interleaved and trailing AdvanceTo watermarks) yields emissions
// and deterministic metrics identical to batch StreamExecutor::Run on the
// same stream. Also covers the fail-fast Status contracts (config
// validation at Open, out-of-order rejection, watermark regression, use
// after Close) and the sink implementations.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <span>
#include <string>

#include "src/benchlib/workloads.h"
#include "src/common/rng.h"
#include "src/query/parser.h"
#include "src/runtime/executor.h"
#include "src/stream/stream_builder.h"

namespace hamlet {
namespace {

constexpr EngineKind kAllKinds[] = {
    EngineKind::kHamletDynamic, EngineKind::kHamletStatic,
    EngineKind::kHamletNoShare, EngineKind::kGretaGraph,
    EngineKind::kGretaPrefix,   EngineKind::kTwoStep,
    EngineKind::kSharon};

struct ChunkedResult {
  std::vector<Emission> emissions;
  RunMetrics metrics;
};

// Pushes `ev` in random-sized chunks (1..7 events, singles via Push, larger
// via PushBatch), issues occasional watermarks, a trailing AdvanceTo past
// the last event, then Close.
ChunkedResult RunChunked(const WorkloadPlan& plan, const RunConfig& config,
                         const EventVector& ev, uint64_t chunk_seed) {
  CollectingSink sink;
  Result<std::unique_ptr<Session>> session =
      Session::Open(plan, config, &sink);
  HAMLET_CHECK(session.ok());
  Rng rng(chunk_seed);
  size_t i = 0;
  while (i < ev.size()) {
    size_t len = 1 + static_cast<size_t>(rng.NextBelow(7));
    len = std::min(len, ev.size() - i);
    Status s = len == 1 ? session.value()->Push(ev[i])
                        : session.value()->PushBatch(
                              std::span<const Event>(ev.data() + i, len));
    EXPECT_TRUE(s.ok()) << s.ToString();
    i += len;
    // Interleaved watermark just before the next event: genuinely advances
    // panes the batch path would only reach while processing that event.
    if (i < ev.size() && rng.NextBelow(4) == 0) {
      EXPECT_TRUE(session.value()->AdvanceTo(ev[i].time - 1).ok());
    }
  }
  // Trailing watermark at the last event time (a later one would open and
  // close windows batch Run() never reaches).
  if (!ev.empty()) {
    EXPECT_TRUE(session.value()->AdvanceTo(ev.back().time).ok());
  }
  ChunkedResult out;
  out.metrics = session.value()->Close().value();
  out.emissions = sink.Take();
  return out;
}

// Exact (bitwise) equality, except that two NaNs compare equal.
void ExpectSameValue(double a, double b, const std::string& label) {
  if (std::isnan(a) && std::isnan(b)) return;
  EXPECT_EQ(a, b) << label;
}

void ExpectIdentical(const RunOutput& batch, const ChunkedResult& chunked,
                     const std::string& label) {
  ASSERT_EQ(batch.emissions.size(), chunked.emissions.size()) << label;
  for (size_t i = 0; i < batch.emissions.size(); ++i) {
    const Emission& a = batch.emissions[i];
    const Emission& b = chunked.emissions[i];
    const std::string at = label + " emission #" + std::to_string(i);
    EXPECT_EQ(a.query, b.query) << at;
    EXPECT_EQ(a.query_name, b.query_name) << at;
    EXPECT_EQ(a.group_key, b.group_key) << at;
    EXPECT_EQ(a.window_start, b.window_start) << at;
    EXPECT_EQ(a.window_end, b.window_end) << at;
    ExpectSameValue(a.value, b.value, at);
  }
  const RunMetrics& m = batch.metrics;
  const RunMetrics& c = chunked.metrics;
  EXPECT_EQ(m.events, c.events) << label;
  EXPECT_EQ(m.emissions, c.emissions) << label;
  EXPECT_EQ(m.dnf_windows, c.dnf_windows) << label;
  EXPECT_EQ(m.decisions, c.decisions) << label;
  EXPECT_EQ(m.peak_memory_bytes, c.peak_memory_bytes) << label;
  EXPECT_EQ(m.hamlet.events, c.hamlet.events) << label;
  EXPECT_EQ(m.hamlet.bursts_total, c.hamlet.bursts_total) << label;
  EXPECT_EQ(m.hamlet.bursts_shared, c.hamlet.bursts_shared) << label;
  EXPECT_EQ(m.hamlet.graphlets_opened, c.hamlet.graphlets_opened) << label;
  EXPECT_EQ(m.hamlet.graphlets_shared, c.hamlet.graphlets_shared) << label;
  EXPECT_EQ(m.hamlet.snapshots_created, c.hamlet.snapshots_created) << label;
  EXPECT_EQ(m.hamlet.event_snapshots, c.hamlet.event_snapshots) << label;
  EXPECT_EQ(m.hamlet.splits, c.hamlet.splits) << label;
  EXPECT_EQ(m.hamlet.merges, c.hamlet.merges) << label;
  EXPECT_EQ(m.hamlet.ops, c.hamlet.ops) << label;
}

TEST(SessionChunkEquivalence, Workload1AllEngines) {
  BenchWorkload bw =
      MakeWorkload1("ridesharing", 6, /*window_ms=*/5 * kMillisPerSecond);
  GeneratorConfig gen;
  gen.seed = 77;
  gen.events_per_minute = 600;
  gen.duration_minutes = 1;
  gen.num_groups = 3;
  gen.burstiness = 0.6;
  gen.max_burst = 8;
  EventVector ev = bw.generator->Generate(gen);

  uint64_t chunk_seed = 1;
  for (EngineKind kind : kAllKinds) {
    RunConfig config;
    config.kind = kind;
    StreamExecutor executor(*bw.plan, config);
    RunOutput batch = executor.Run(ev);
    ASSERT_TRUE(batch.status.ok()) << batch.status.ToString();
    ASSERT_GT(batch.emissions.size(), 0u) << EngineKindName(kind);
    ChunkedResult chunked =
        RunChunked(*bw.plan, config, ev, /*chunk_seed=*/chunk_seed++);
    ExpectIdentical(batch, chunked, EngineKindName(kind));
  }
}

TEST(SessionChunkEquivalence, Workload2AllEngines) {
  BenchWorkload bw = MakeWorkload2(8);
  GeneratorConfig gen;
  gen.seed = 5;
  gen.events_per_minute = 100;
  gen.duration_minutes = 6;
  gen.num_groups = 2;
  gen.burstiness = 0.9;
  gen.max_burst = 40;
  EventVector ev = bw.generator->Generate(gen);

  uint64_t chunk_seed = 100;
  for (EngineKind kind : kAllKinds) {
    RunConfig config;
    config.kind = kind;
    // Bursty 5-20 min windows make full trend construction hopeless; a
    // small budget DNFs quickly and identically on both paths.
    config.two_step_budget = 5'000;
    StreamExecutor executor(*bw.plan, config);
    RunOutput batch = executor.Run(ev);
    ASSERT_TRUE(batch.status.ok()) << batch.status.ToString();
    ChunkedResult chunked =
        RunChunked(*bw.plan, config, ev, /*chunk_seed=*/chunk_seed++);
    ExpectIdentical(batch, chunked, EngineKindName(kind));
  }
}

// Sliding windows exercise the pane-replication path under chunked pushes.
TEST(SessionChunkEquivalence, SlidingWindows) {
  Schema schema;
  schema.AddAttr("v");
  schema.AddAttr("g");
  Workload workload(&schema);
  for (const char* text :
       {"RETURN COUNT(*) PATTERN SEQ(A, B+) WITHIN 30 ms SLIDE 10 ms",
        "RETURN SUM(B.v) PATTERN SEQ(C, B+) WITHIN 30 ms SLIDE 10 ms"}) {
    ASSERT_TRUE(workload.Add(ParseQuery(text).value()).ok());
  }
  WorkloadPlan plan = AnalyzeWorkload(workload).value();
  Rng rng(17);
  EventVector ev;
  Timestamp t = 1;
  const char* alphabet[] = {"A", "B", "C"};
  for (int i = 0; i < 120; ++i) {
    Event e(t, schema.AddType(alphabet[rng.NextBelow(3)]));
    e.set_attr(0, static_cast<double>(rng.NextInt(0, 9)));
    e.set_attr(1, 0.0);
    ev.push_back(e);
    t += 1 + static_cast<Timestamp>(rng.NextBelow(3));
  }
  for (EngineKind kind : kAllKinds) {
    RunConfig config;
    config.kind = kind;
    StreamExecutor executor(plan, config);
    RunOutput batch = executor.Run(ev);
    ChunkedResult chunked = RunChunked(plan, config, ev, /*chunk_seed=*/9);
    ExpectIdentical(batch, chunked,
                    std::string("sliding/") + EngineKindName(kind));
  }
}

class SessionContractTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_.AddAttr("v");
    schema_.AddAttr("g");
    ASSERT_TRUE(
        workload_
            .Add(ParseQuery(
                     "RETURN COUNT(*) PATTERN SEQ(A, B+) WITHIN 100 ms")
                     .value())
            .ok());
    plan_ = std::make_unique<WorkloadPlan>(
        AnalyzeWorkload(workload_).value());
  }

  Event Make(Timestamp t, const char* type) {
    Event e(t, schema_.AddType(type));
    e.set_attr(0, 1.0);
    e.set_attr(1, 0.0);
    return e;
  }

  Schema schema_;
  Workload workload_{&schema_};
  std::unique_ptr<WorkloadPlan> plan_;
};

TEST_F(SessionContractTest, OpenValidatesConfig) {
  RunConfig bad_sharon;
  bad_sharon.sharon_max_length = 0;
  Result<std::unique_ptr<Session>> r1 =
      Session::Open(*plan_, bad_sharon, nullptr);
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r1.status().message().find("sharon_max_length"),
            std::string::npos);

  RunConfig bad_budget;
  bad_budget.two_step_budget = 0;
  Result<std::unique_ptr<Session>> r2 =
      Session::Open(*plan_, bad_budget, nullptr);
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r2.status().message().find("two_step_budget"),
            std::string::npos);

  // Run() surfaces the same validation failure through RunOutput::status.
  StreamExecutor executor(*plan_, bad_sharon);
  RunOutput out = executor.Run({});
  EXPECT_EQ(out.status.code(), StatusCode::kInvalidArgument);
}

TEST_F(SessionContractTest, PushRejectsOutOfOrderNamingTimestamp) {
  CollectingSink sink;
  Result<std::unique_ptr<Session>> session =
      Session::Open(*plan_, RunConfig(), &sink);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session.value()->Push(Make(50, "A")).ok());
  Status s = session.value()->Push(Make(20, "B"));
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("t=20"), std::string::npos);
  // The engines require strictly increasing times, so duplicates are
  // rejected too — and the session remains usable after a rejected push.
  EXPECT_EQ(session.value()->Push(Make(50, "B")).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(session.value()->Push(Make(60, "B")).ok());
  RunMetrics m = session.value()->Close().value();
  EXPECT_EQ(m.events, 2);
}

TEST_F(SessionContractTest, RunReportsOutOfOrderStream) {
  EventVector ev = {Make(50, "A"), Make(20, "B")};
  StreamExecutor executor(*plan_, RunConfig());
  RunOutput out = executor.Run(ev);
  EXPECT_EQ(out.status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(out.status.message().find("t=20"), std::string::npos);
  EXPECT_EQ(out.metrics.events, 1);  // the valid prefix was processed
}

TEST_F(SessionContractTest, WatermarkContracts) {
  Result<std::unique_ptr<Session>> session =
      Session::Open(*plan_, RunConfig(), nullptr);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session.value()->AdvanceTo(500).ok());
  // Watermarks must not regress, and events may not arrive behind one.
  EXPECT_EQ(session.value()->AdvanceTo(400).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(session.value()->Push(Make(499, "A")).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(session.value()->Push(Make(500, "A")).ok());
}

TEST_F(SessionContractTest, AdvanceToClosesWindowsWithoutEvents) {
  std::vector<Emission> seen;
  CallbackSink sink([&](const Emission& e) { seen.push_back(e); });
  Result<std::unique_ptr<Session>> session =
      Session::Open(*plan_, RunConfig(), &sink);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session.value()->Push(Make(10, "A")).ok());
  ASSERT_TRUE(session.value()->Push(Make(20, "B")).ok());
  EXPECT_TRUE(seen.empty());  // window [0, 100) still open
  ASSERT_TRUE(session.value()->AdvanceTo(100).ok());
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].window_start, 0);
  EXPECT_EQ(seen[0].window_end, 100);
  EXPECT_EQ(seen[0].query_name, workload_.query(seen[0].query).name);
  EXPECT_DOUBLE_EQ(seen[0].value, 1.0);
  ASSERT_TRUE(session.value()->Close().ok());
}

// Everything after Close — a second Close included — fails fast with
// kFailedPrecondition instead of relying on caller discipline; the final
// metrics stay readable through MetricsSnapshot.
TEST_F(SessionContractTest, UseAfterCloseIsFailedPrecondition) {
  Result<std::unique_ptr<Session>> session =
      Session::Open(*plan_, RunConfig(), nullptr);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session.value()->Push(Make(10, "A")).ok());
  Result<RunMetrics> first = session.value()->Close();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(session.value()->Push(Make(20, "B")).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(session.value()->PushBatch({}).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(session.value()->AdvanceTo(200).code(),
            StatusCode::kFailedPrecondition);
  Result<RunMetrics> second = session.value()->Close();
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kFailedPrecondition);
  RunMetrics snapshot = session.value()->MetricsSnapshot();
  EXPECT_EQ(first.value().events, snapshot.events);
  EXPECT_EQ(first.value().emissions, snapshot.emissions);
  EXPECT_EQ(first.value().elapsed_seconds, snapshot.elapsed_seconds);
}

TEST_F(SessionContractTest, CsvSinkStreamsRows) {
  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  {
    CsvSink sink(tmp);
    Result<std::unique_ptr<Session>> session =
        Session::Open(*plan_, RunConfig(), &sink);
    ASSERT_TRUE(session.ok());
    ASSERT_TRUE(session.value()->Push(Make(10, "A")).ok());
    ASSERT_TRUE(session.value()->Push(Make(20, "B")).ok());
    RunMetrics m = session.value()->Close().value();
    EXPECT_EQ(sink.rows_written(), m.emissions);
    EXPECT_GT(sink.rows_written(), 0);
  }
  std::rewind(tmp);
  char line[256];
  ASSERT_NE(std::fgets(line, sizeof(line), tmp), nullptr);
  EXPECT_EQ(std::string(line),
            "query,name,group,window_start,window_end,value\n");
  int data_rows = 0;
  while (std::fgets(line, sizeof(line), tmp) != nullptr) ++data_rows;
  EXPECT_GT(data_rows, 0);
  std::fclose(tmp);
}

// Rejected calls do no engine work, so they must not accrue busy time —
// otherwise a caller retrying after errors deflates reported throughput.
TEST_F(SessionContractTest, RejectedCallsAccrueNoBusyTime) {
  Result<std::unique_ptr<Session>> session =
      Session::Open(*plan_, RunConfig(), nullptr);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session.value()->Push(Make(50, "A")).ok());
  const double busy_after_accept =
      session.value()->MetricsSnapshot().elapsed_seconds;
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(session.value()->Push(Make(10, "B")).ok());
    EXPECT_FALSE(session.value()->AdvanceTo(5).ok());
  }
  EventVector behind = {Make(7, "B"), Make(8, "B")};
  EXPECT_FALSE(session.value()->PushBatch(behind).ok());
  // Bitwise-unchanged: none of the 401 rejections touched the accumulator.
  EXPECT_EQ(session.value()->MetricsSnapshot().elapsed_seconds,
            busy_after_accept);
}

// MergeRunMetrics must not sum per-shard rates: shards run concurrently
// over overlapping busy intervals, so a summed 4-shard merge would report
// ~4x the real rate. The merged rate is merged events / merged elapsed.
TEST(MergeRunMetricsTest, ThroughputRecomputedFromMergedTotals) {
  RunMetrics a;
  a.events = 3000;
  a.elapsed_seconds = 3.0;
  a.throughput_eps = 1000.0;
  a.emissions = 10;
  a.avg_latency_seconds = 0.5;
  a.max_latency_seconds = 1.0;
  a.evicted_compositions = 2;
  a.peak_memory_bytes = 100;
  a.current_memory_bytes = 40;
  RunMetrics b;
  b.events = 1000;
  b.elapsed_seconds = 2.0;
  b.throughput_eps = 500.0;
  b.emissions = 30;
  b.avg_latency_seconds = 0.1;
  b.max_latency_seconds = 2.0;
  b.evicted_compositions = 3;
  b.peak_memory_bytes = 60;
  b.current_memory_bytes = 25;
  RunMetrics merged;
  MergeRunMetrics(merged, a);
  MergeRunMetrics(merged, b);
  EXPECT_EQ(merged.events, 4000);
  EXPECT_DOUBLE_EQ(merged.elapsed_seconds, 3.0);
  // 4000 events over the 3.0s busy envelope — not 1500 (the old sum).
  EXPECT_DOUBLE_EQ(merged.throughput_eps, 4000 / 3.0);
  EXPECT_DOUBLE_EQ(merged.max_latency_seconds, 2.0);
  EXPECT_DOUBLE_EQ(merged.avg_latency_seconds, (0.5 * 10 + 0.1 * 30) / 40);
  EXPECT_EQ(merged.evicted_compositions, 5);
  // Peaks at different times never sum: the merge keeps the always-true
  // floor (the largest single peak, 100 — not 160, the old sum);
  // ShardedSession raises it with its sampled concurrent high-water mark.
  // Current footprints are simultaneous by definition, so they do sum.
  EXPECT_EQ(merged.peak_memory_bytes, 100);
  EXPECT_EQ(merged.current_memory_bytes, 65);
}

// A composition branch that never emits (here: a two-step window that DNFs
// on one OR branch while the other completes) must not leave its partial
// (query, group, window) entry in the pending map forever.
TEST(CompositionEviction, DeadBranchesEvictedAndMemoryBounded) {
  Schema schema;
  schema.AddAttr("v");
  schema.AddAttr("g");
  Workload workload(&schema);
  ASSERT_TRUE(workload
                  .Add(ParseQuery("RETURN COUNT(*) PATTERN SEQ(A, B+) OR "
                                  "SEQ(C, D+) GROUPBY g WITHIN 100 ms")
                           .value())
                  .ok());
  WorkloadPlan plan = AnalyzeWorkload(workload).value();
  RunConfig config;
  config.kind = EngineKind::kTwoStep;
  // Low enough that the 18-B burst below always blows the budget (~2^18
  // trends), high enough that the C/D+ branch (3 trends) completes.
  config.two_step_budget = 1000;
  auto run = [&](int windows) {
    EventVector ev;
    for (int w = 0; w < windows; ++w) {
      Timestamp t = static_cast<Timestamp>(w) * 100 + 1;
      auto add = [&](const char* type) {
        Event e(t++, schema.AddType(type));
        e.set_attr(0, 1.0);
        e.set_attr(1, 0.0);
        ev.push_back(e);
      };
      add("A");
      for (int i = 0; i < 18; ++i) add("B");
      add("C");
      add("D");
      add("D");
    }
    Result<std::unique_ptr<Session>> session =
        Session::Open(plan, config, nullptr);
    HAMLET_CHECK(session.ok());
    HAMLET_CHECK(session.value()->PushBatch(ev).ok());
    return session.value()->Close().value();
  };
  RunMetrics short_run = run(20);
  RunMetrics long_run = run(200);
  // Every window DNFs the A/B+ branch, so its C/D+ partial entry can never
  // compose; each closed window must evict exactly one entry and emit
  // nothing.
  EXPECT_EQ(short_run.dnf_windows, 20);
  EXPECT_EQ(short_run.evicted_compositions, 20);
  EXPECT_EQ(short_run.emissions, 0);
  EXPECT_EQ(long_run.evicted_compositions, 200);
  // The leak made session memory grow with stream length; with per-window
  // eviction the memory profile is periodic, so a 10x longer stream peaks
  // exactly where the short one did (pending entries are charged to
  // CurrentMemory, so a reintroduced leak shows up here).
  EXPECT_EQ(long_run.peak_memory_bytes, short_run.peak_memory_bytes);
}

// An event only resets the emission-latency clock of windows it can
// contribute to. Here C is relevant to the second query only: pushing it
// late must not mask how long the first query's result actually waited.
// Time comes from RunConfig::clock_override (the same hook the adaptive
// batch controller's tests use), so the asserted wait is exact and immune
// to sanitizer/CI scheduling jitter — the sleep-based original flaked.
TEST(LatencyAttribution, IrrelevantEventsDoNotResetArrivalClock) {
  Schema schema;
  schema.AddAttr("v");
  schema.AddAttr("g");
  Workload workload(&schema);
  for (const char* text :
       {"RETURN COUNT(*) PATTERN SEQ(A, B+) GROUPBY g WITHIN 100 ms",
        "RETURN COUNT(*) PATTERN SEQ(C, B+) GROUPBY g WITHIN 100 ms"}) {
    ASSERT_TRUE(workload.Add(ParseQuery(text).value()).ok());
  }
  WorkloadPlan plan = AnalyzeWorkload(workload).value();
  double fake_now = 100.0;  // seconds; arbitrary epoch
  RunConfig config;
  config.kind = EngineKind::kHamletDynamic;
  config.clock_override = [&fake_now] { return fake_now; };
  Result<std::unique_ptr<Session>> session =
      Session::Open(plan, config, nullptr);
  ASSERT_TRUE(session.ok());
  auto make = [&](Timestamp t, const char* type) {
    Event e(t, schema.AddType(type));
    e.set_attr(0, 1.0);
    e.set_attr(1, 0.0);
    return e;
  };
  ASSERT_TRUE(session.value()->Push(make(10, "A")).ok());
  ASSERT_TRUE(session.value()->Push(make(20, "B")).ok());
  // The first query's [0,100) window last saw a relevant event at
  // fake_now=100; its emission latency must include this 0.12 s wait.
  fake_now += 0.12;
  ASSERT_TRUE(session.value()->Push(make(30, "C")).ok());
  ASSERT_TRUE(session.value()->AdvanceTo(100).ok());
  RunMetrics m = session.value()->Close().value();
  // [0,100) for both queries, plus the watermark-opened [100,200) pair
  // flushed empty by Close.
  EXPECT_EQ(m.emissions, 4);
  // Pre-fix, the late C stamped the first query's window too, reporting
  // 0 latency for a result that waited 0.12 s. The whole run shares the
  // frozen fake clock, so the maximum is the injected wait (up to the
  // rounding of the 100.12 - 100.0 subtraction).
  EXPECT_NEAR(m.max_latency_seconds, 0.12, 1e-9);
}

// CollectingSink::Take matches the documented batch order even when windows
// close out of (query, group) order.
TEST_F(SessionContractTest, CollectingSinkSortsLikeBatchRun) {
  StreamBuilder sb(&schema_);
  sb.Add("A");
  for (int i = 0; i < 3; ++i) sb.Add("B");
  sb.Gap(200);
  sb.Add("A").Add("B");
  EventVector ev = sb.Take();
  StreamExecutor executor(*plan_, RunConfig());
  RunOutput out = executor.Run(ev);
  ASSERT_TRUE(out.status.ok());
  ASSERT_GE(out.emissions.size(), 2u);
  for (size_t i = 1; i < out.emissions.size(); ++i) {
    EXPECT_LE(out.emissions[i - 1].window_start,
              out.emissions[i].window_start);
  }
}

}  // namespace
}  // namespace hamlet
