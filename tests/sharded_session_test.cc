// ShardedSession tests.
//
// The core property is shard-count invariance: for every EngineKind, the
// emission set of a ShardedSession with N = 1/2/4 shards equals the
// single-threaded batch Run() on the same stream — a group's whole
// subsequence lands on one shard, so per-group results are bitwise
// identical and only cross-group interleaving (normalized away by
// CollectingSink::Take ordering) may differ. Also covered: deterministic
// merged count/memory metrics for a fixed shard count, watermark broadcast
// (windows close on shards that saw no events), backpressure under a tiny
// ingress queue, and the fail-fast Status contracts (out-of-order
// kInvalidArgument naming the timestamp, kFailedPrecondition after Close,
// num_shards validation, mixed group-by rejection).
//
// This suite is a primary TSan target (the `tsan` CMake preset / CI job,
// together with shard_batch_test): it drives every cross-thread path —
// SPSC batch hand-off, parking, the emission outbox fan-in, snapshot
// mirror — under real concurrency.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "src/benchlib/workloads.h"
#include "src/query/parser.h"
#include "src/runtime/executor.h"
#include "src/runtime/sharded_session.h"

namespace hamlet {
namespace {

constexpr EngineKind kAllKinds[] = {
    EngineKind::kHamletDynamic, EngineKind::kHamletStatic,
    EngineKind::kHamletNoShare, EngineKind::kGretaGraph,
    EngineKind::kGretaPrefix,   EngineKind::kTwoStep,
    EngineKind::kSharon};

struct ShardedResult {
  std::vector<Emission> emissions;
  RunMetrics metrics;
};

// Pushes `ev` through a ShardedSession in PushBatch(64) chunks with a
// trailing watermark, then Close. Emissions come back in Take()'s
// normalized (window_start, query, group) order.
ShardedResult RunSharded(const WorkloadPlan& plan, RunConfig config,
                         int num_shards, const EventVector& ev,
                         int queue_capacity = 8192) {
  config.num_shards = num_shards;
  config.shard_queue_capacity = queue_capacity;
  CollectingSink sink;
  Result<std::unique_ptr<ShardedSession>> session =
      ShardedSession::Open(plan, config, &sink);
  HAMLET_CHECK(session.ok());
  EXPECT_EQ(session.value()->num_shards(), num_shards);
  constexpr size_t kChunk = 64;
  for (size_t i = 0; i < ev.size(); i += kChunk) {
    const size_t len = std::min(kChunk, ev.size() - i);
    Status s = session.value()->PushBatch(
        std::span<const Event>(ev.data() + i, len));
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
  if (!ev.empty()) {
    EXPECT_TRUE(session.value()->AdvanceTo(ev.back().time).ok());
  }
  ShardedResult out;
  out.metrics = session.value()->Close().value();
  out.emissions = sink.Take();
  return out;
}

// Exact (bitwise) equality, except that two NaNs compare equal.
void ExpectSameValue(double a, double b, const std::string& label) {
  if (std::isnan(a) && std::isnan(b)) return;
  EXPECT_EQ(a, b) << label;
}

// Set equality via the shared normalized order: one emission per
// (query, group, window) makes the sorted sequences directly comparable.
void ExpectSameEmissionSet(const std::vector<Emission>& expected,
                           const std::vector<Emission>& actual,
                           const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    const Emission& a = expected[i];
    const Emission& b = actual[i];
    const std::string at = label + " emission #" + std::to_string(i);
    EXPECT_EQ(a.query, b.query) << at;
    EXPECT_EQ(a.query_name, b.query_name) << at;
    EXPECT_EQ(a.group_key, b.group_key) << at;
    EXPECT_EQ(a.window_start, b.window_start) << at;
    EXPECT_EQ(a.window_end, b.window_end) << at;
    ExpectSameValue(a.value, b.value, at);
  }
}

void ExpectSameCounters(const RunMetrics& a, const RunMetrics& b,
                        const std::string& label) {
  EXPECT_EQ(a.events, b.events) << label;
  EXPECT_EQ(a.emissions, b.emissions) << label;
  EXPECT_EQ(a.dnf_windows, b.dnf_windows) << label;
  EXPECT_EQ(a.evicted_compositions, b.evicted_compositions) << label;
  EXPECT_EQ(a.decisions, b.decisions) << label;
  EXPECT_EQ(a.hamlet.events, b.hamlet.events) << label;
  EXPECT_EQ(a.hamlet.bursts_total, b.hamlet.bursts_total) << label;
  EXPECT_EQ(a.hamlet.bursts_shared, b.hamlet.bursts_shared) << label;
  EXPECT_EQ(a.hamlet.graphlets_opened, b.hamlet.graphlets_opened) << label;
  EXPECT_EQ(a.hamlet.graphlets_shared, b.hamlet.graphlets_shared) << label;
  EXPECT_EQ(a.hamlet.snapshots_created, b.hamlet.snapshots_created) << label;
  EXPECT_EQ(a.hamlet.event_snapshots, b.hamlet.event_snapshots) << label;
  EXPECT_EQ(a.hamlet.splits, b.hamlet.splits) << label;
  EXPECT_EQ(a.hamlet.merges, b.hamlet.merges) << label;
  EXPECT_EQ(a.hamlet.ops, b.hamlet.ops) << label;
}

TEST(ShardCountInvariance, Workload1AllEnginesAllShardCounts) {
  BenchWorkload bw =
      MakeWorkload1("ridesharing", 6, /*window_ms=*/5 * kMillisPerSecond);
  GeneratorConfig gen;
  gen.seed = 77;
  gen.events_per_minute = 600;
  gen.duration_minutes = 1;
  gen.num_groups = 8;  // enough districts to occupy every shard
  gen.burstiness = 0.6;
  gen.max_burst = 8;
  EventVector ev = bw.generator->Generate(gen);

  for (EngineKind kind : kAllKinds) {
    RunConfig config;
    config.kind = kind;
    StreamExecutor executor(*bw.plan, config);
    RunOutput batch = executor.Run(ev);
    ASSERT_TRUE(batch.status.ok()) << batch.status.ToString();
    ASSERT_GT(batch.emissions.size(), 0u) << EngineKindName(kind);
    for (int shards : {1, 2, 4}) {
      ShardedResult sharded = RunSharded(*bw.plan, config, shards, ev);
      const std::string label = std::string(EngineKindName(kind)) + "/N=" +
                                std::to_string(shards);
      ExpectSameEmissionSet(batch.emissions, sharded.emissions, label);
      // Count metrics survive the shard fan-out: every event and burst is
      // processed exactly once, on exactly one shard.
      ExpectSameCounters(batch.metrics, sharded.metrics, label);
    }
  }
}

TEST(ShardCountInvariance, SlidingWindowsAcrossShards) {
  Schema schema;
  schema.AddAttr("v");
  schema.AddAttr("g");
  Workload workload(&schema);
  for (const char* text :
       {"RETURN COUNT(*) PATTERN SEQ(A, B+) GROUPBY g WITHIN 30 ms "
        "SLIDE 10 ms",
        "RETURN SUM(B.v) PATTERN SEQ(C, B+) GROUPBY g WITHIN 30 ms "
        "SLIDE 10 ms"}) {
    ASSERT_TRUE(workload.Add(ParseQuery(text).value()).ok());
  }
  WorkloadPlan plan = AnalyzeWorkload(workload).value();
  Rng rng(17);
  EventVector ev;
  Timestamp t = 1;
  const char* alphabet[] = {"A", "B", "C"};
  for (int i = 0; i < 200; ++i) {
    Event e(t, schema.AddType(alphabet[rng.NextBelow(3)]));
    e.set_attr(0, static_cast<double>(rng.NextInt(0, 9)));
    e.set_attr(1, static_cast<double>(rng.NextBelow(5)));
    ev.push_back(e);
    t += 1 + static_cast<Timestamp>(rng.NextBelow(3));
  }
  for (EngineKind kind : kAllKinds) {
    RunConfig config;
    config.kind = kind;
    StreamExecutor executor(plan, config);
    RunOutput batch = executor.Run(ev);
    ASSERT_TRUE(batch.status.ok());
    for (int shards : {2, 4}) {
      ShardedResult sharded = RunSharded(plan, config, shards, ev);
      ExpectSameEmissionSet(batch.emissions, sharded.emissions,
                            std::string("sliding/") + EngineKindName(kind) +
                                "/N=" + std::to_string(shards));
    }
  }
}

// A two-slot ingress queue forces the producer through the backpressure
// path on nearly every push; results must not change.
TEST(ShardCountInvariance, TinyQueueBackpressure) {
  BenchWorkload bw =
      MakeWorkload1("ridesharing", 4, /*window_ms=*/2 * kMillisPerSecond);
  GeneratorConfig gen;
  gen.seed = 3;
  gen.events_per_minute = 400;
  gen.duration_minutes = 1;
  gen.num_groups = 8;
  EventVector ev = bw.generator->Generate(gen);
  RunConfig config;
  config.kind = EngineKind::kHamletDynamic;
  StreamExecutor executor(*bw.plan, config);
  RunOutput batch = executor.Run(ev);
  ASSERT_TRUE(batch.status.ok());
  ShardedResult sharded =
      RunSharded(*bw.plan, config, /*num_shards=*/3, ev,
                 /*queue_capacity=*/2);
  ExpectSameEmissionSet(batch.emissions, sharded.emissions, "tiny-queue");
  ExpectSameCounters(batch.metrics, sharded.metrics, "tiny-queue");
}

// Two runs with the same shard count produce identical merged count and
// memory metrics — the per-shard subsequences are deterministic functions
// of (stream, shard count), never of thread timing.
TEST(ShardCountInvariance, MetricsDeterministicForFixedShardCount) {
  BenchWorkload bw =
      MakeWorkload1("ridesharing", 6, /*window_ms=*/5 * kMillisPerSecond);
  GeneratorConfig gen;
  gen.seed = 41;
  gen.events_per_minute = 500;
  gen.duration_minutes = 1;
  gen.num_groups = 8;
  EventVector ev = bw.generator->Generate(gen);
  RunConfig config;
  config.kind = EngineKind::kHamletDynamic;
  ShardedResult a = RunSharded(*bw.plan, config, /*num_shards=*/4, ev);
  ShardedResult b = RunSharded(*bw.plan, config, /*num_shards=*/4, ev);
  ExpectSameCounters(a.metrics, b.metrics, "deterministic");
  EXPECT_EQ(a.metrics.peak_memory_bytes, b.metrics.peak_memory_bytes);
  ExpectSameEmissionSet(a.emissions, b.emissions, "deterministic");
}

class ShardedContractTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_.AddAttr("v");
    schema_.AddAttr("g");
    ASSERT_TRUE(
        workload_
            .Add(ParseQuery("RETURN COUNT(*) PATTERN SEQ(A, B+) GROUPBY g "
                            "WITHIN 100 ms")
                     .value())
            .ok());
    plan_ = std::make_unique<WorkloadPlan>(
        AnalyzeWorkload(workload_).value());
  }

  Event Make(Timestamp t, const char* type, double group = 0.0) {
    Event e(t, schema_.AddType(type));
    e.set_attr(0, 1.0);
    e.set_attr(1, group);
    return e;
  }

  Result<std::unique_ptr<ShardedSession>> Open(int num_shards,
                                               EmissionSink* sink = nullptr) {
    RunConfig config;
    config.num_shards = num_shards;
    return ShardedSession::Open(*plan_, config, sink);
  }

  Schema schema_;
  Workload workload_{&schema_};
  std::unique_ptr<WorkloadPlan> plan_;
};

TEST_F(ShardedContractTest, OpenValidatesNumShards) {
  for (int bad : {0, -1, kMaxShards + 1}) {
    RunConfig config;
    config.num_shards = bad;
    Result<std::unique_ptr<ShardedSession>> r =
        ShardedSession::Open(*plan_, config, nullptr);
    ASSERT_FALSE(r.ok()) << bad;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(r.status().message().find("num_shards"), std::string::npos);
  }
  RunConfig bad_queue;
  bad_queue.shard_queue_capacity = 1;
  Result<std::unique_ptr<ShardedSession>> r =
      ShardedSession::Open(*plan_, bad_queue, nullptr);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("shard_queue_capacity"),
            std::string::npos);
}

TEST_F(ShardedContractTest, MixedGroupByIsUnsupportedWhenSharded) {
  // A second query without GROUPBY gives the plan two partition keys: no
  // single event->shard route exists, so only num_shards == 1 works.
  ASSERT_TRUE(
      workload_
          .Add(ParseQuery("RETURN COUNT(*) PATTERN SEQ(C, B+) WITHIN 100 ms")
                   .value())
          .ok());
  WorkloadPlan mixed = AnalyzeWorkload(workload_).value();
  RunConfig config;
  config.num_shards = 2;
  Result<std::unique_ptr<ShardedSession>> r =
      ShardedSession::Open(mixed, config, nullptr);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
  config.num_shards = 1;
  EXPECT_TRUE(ShardedSession::Open(mixed, config, nullptr).ok());
}

TEST_F(ShardedContractTest, PushRejectsOutOfOrderNamingTimestamp) {
  Result<std::unique_ptr<ShardedSession>> session = Open(/*num_shards=*/3);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session.value()->Push(Make(50, "A")).ok());
  Status s = session.value()->Push(Make(20, "B"));
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("t=20"), std::string::npos);
  // Duplicates are rejected too (strictly increasing contract), and the
  // session stays usable after a rejected push.
  EXPECT_EQ(session.value()->Push(Make(50, "B")).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(session.value()->Push(Make(60, "B")).ok());
  RunMetrics m = session.value()->Close().value();
  EXPECT_EQ(m.events, 2);
}

TEST_F(ShardedContractTest, WatermarkBroadcastClosesWindowsOnAllShards) {
  CollectingSink sink;
  Result<std::unique_ptr<ShardedSession>> session =
      Open(/*num_shards=*/4, &sink);
  ASSERT_TRUE(session.ok());
  // Two groups — they may land on different shards; the broadcast must
  // close both windows either way, with no further events.
  ASSERT_TRUE(session.value()->Push(Make(10, "A", /*group=*/0)).ok());
  ASSERT_TRUE(session.value()->Push(Make(15, "A", /*group=*/1)).ok());
  ASSERT_TRUE(session.value()->Push(Make(20, "B", /*group=*/0)).ok());
  ASSERT_TRUE(session.value()->Push(Make(25, "B", /*group=*/1)).ok());
  ASSERT_TRUE(session.value()->AdvanceTo(100).ok());
  // Delivery is asynchronous (worker threads); MetricsSnapshot is the
  // thread-safe probe. Poll until both [0,100) emissions are out or 5s
  // pass — they must arrive from the watermark alone, before Close.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (session.value()->MetricsSnapshot().emissions < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(session.value()->MetricsSnapshot().emissions, 2);
  RunMetrics m = session.value()->Close().value();
  // Same semantics as the single-threaded Session: the watermark also
  // opened the next pane's window [100,200) per group, which Close then
  // flushed empty — 4 emissions total.
  EXPECT_EQ(m.emissions, 4);
  std::vector<Emission> emissions = sink.Take();
  ASSERT_EQ(emissions.size(), 4u);
  int populated = 0;
  for (const Emission& e : emissions) {
    if (e.window_start == 0) {
      EXPECT_EQ(e.window_end, 100);
      EXPECT_DOUBLE_EQ(e.value, 1.0);
      ++populated;
    } else {
      EXPECT_EQ(e.window_start, 100);
      EXPECT_DOUBLE_EQ(e.value, 0.0);
    }
  }
  EXPECT_EQ(populated, 2);  // one closed window per group
}

TEST_F(ShardedContractTest, UseAfterCloseIsFailedPrecondition) {
  Result<std::unique_ptr<ShardedSession>> session = Open(/*num_shards=*/2);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session.value()->Push(Make(10, "A")).ok());
  Result<RunMetrics> first = session.value()->Close();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(session.value()->Push(Make(20, "B")).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(session.value()->PushBatch({}).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(session.value()->AdvanceTo(200).code(),
            StatusCode::kFailedPrecondition);
  Result<RunMetrics> second = session.value()->Close();
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(session.value()->MetricsSnapshot().events, first.value().events);
}

TEST_F(ShardedContractTest, DestructorJoinsWithoutClose) {
  CollectingSink sink;
  {
    Result<std::unique_ptr<ShardedSession>> session =
        Open(/*num_shards=*/4, &sink);
    ASSERT_TRUE(session.ok());
    ASSERT_TRUE(session.value()->Push(Make(10, "A")).ok());
    ASSERT_TRUE(session.value()->Push(Make(20, "B")).ok());
    // No Close: destruction must stop and join the workers cleanly.
  }
  // The implicit Close flushed the open window before the sink went away.
  EXPECT_EQ(sink.emissions().size(), 1u);
}

}  // namespace
}  // namespace hamlet
