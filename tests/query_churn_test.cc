// Query lifecycle (src/runtime/query_lifecycle.h) and online plan-swap
// tests.
//
// The core property is churn equivalence: AddQuery/RemoveQuery on a LIVE
// session partition the stream into activation intervals [P_i, P_{i+1})
// at pane boundaries, and within each interval the emission set must be
// bit-identical to a fresh session compiled with that interval's query
// set and fed the full stream — for every EngineKind, single-threaded and
// sharded (1/2/4 shards). The test streams keep every group dense (an
// event at least every 12 ticks against a 100 ms window), so window
// instantiation is boundary-driven on both sides and the comparison is
// exact, empty windows included.
//
// Also covers: plan hot swaps (explicit ApplySharingOverrides and the
// online re-optimizer under a burst-shifted stream, both columnar
// settings, with RunConfig::clock_override pinning the clock) leaving
// emissions identical to a frozen plan; the lifecycle error contracts
// (unnamed/duplicate adds, schema-extending adds, unknown/last-query
// removes, the kMaxLiveEpochs backpressure cap and recovery); the
// reoptimize knob validation matrix; and evict_idle_groups determinism
// plus the ShardRouter rebalance-map drain it enables.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include "src/query/parser.h"
#include "src/runtime/session.h"
#include "src/runtime/sharded_session.h"

namespace hamlet {
namespace {

constexpr EngineKind kAllKinds[] = {
    EngineKind::kHamletDynamic, EngineKind::kHamletStatic,
    EngineKind::kHamletNoShare, EngineKind::kGretaGraph,
    EngineKind::kGretaPrefix,   EngineKind::kTwoStep,
    EngineKind::kSharon};

// All share-eligible COUNT queries over one 100 ms / 50 ms sliding window,
// so every epoch's workload has the same pane size (50) and activation
// boundaries line up across epochs. qa and qb share the B+ Kleene
// sub-pattern (one share group, one component); qc is its own component.
constexpr char kQa[] =
    "RETURN COUNT(*) PATTERN SEQ(A, B+) GROUPBY g WITHIN 100 ms SLIDE 50 ms";
constexpr char kQb[] =
    "RETURN COUNT(*) PATTERN SEQ(C, B+) GROUPBY g WITHIN 100 ms SLIDE 50 ms";
constexpr char kQc[] =
    "RETURN COUNT(*) PATTERN SEQ(A, C+) GROUPBY g WITHIN 100 ms SLIDE 50 ms";

Query MakeQuery(const std::string& name, const std::string& text) {
  Result<Query> q = ParseQuery(text);
  HAMLET_CHECK(q.ok());
  Query out = std::move(q).value();
  out.name = name;
  return out;
}

// A workload + plan pair; the workload owns the queries the plan indexes.
struct Compiled {
  std::unique_ptr<Workload> workload;
  std::unique_ptr<WorkloadPlan> plan;
};

Compiled Compile(Schema* schema,
                 std::vector<std::pair<std::string, std::string>> queries) {
  Compiled c;
  c.workload = std::make_unique<Workload>(schema);
  for (auto& [name, text] : queries) {
    Result<QueryId> id = c.workload->Add(MakeQuery(name, text));
    HAMLET_CHECK(id.ok());
  }
  Result<WorkloadPlan> plan = AnalyzeWorkload(*c.workload);
  HAMLET_CHECK(plan.ok());
  c.plan = std::make_unique<WorkloadPlan>(std::move(plan).value());
  return c;
}

// Registers the fixed type/attr layout the streams below assume:
// types A=0, B=1, C=2; attrs v=0, g=1.
void SeedSchema(Schema* schema) {
  schema->AddAttr("v");
  schema->AddAttr("g");
  schema->AddType("A");
  schema->AddType("B");
  schema->AddType("C");
}

// Deterministic stream where every group (i % 4) gets an event at least
// every 12 ticks — dense against the 100 ms window, so no group ever goes
// idle around a churn boundary.
std::vector<Event> DenseStream(int n) {
  static constexpr TypeId kCycle[] = {0, 1, 1, 2, 1, 2};  // A B B C B C
  std::vector<Event> ev;
  ev.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    ev.emplace_back(Timestamp{1 + 3 * i}, kCycle[i % 6],
                    std::initializer_list<double>{
                        static_cast<double>(i % 7),
                        static_cast<double>(i % 4)});
  }
  return ev;
}

// B-heavy first half, C-heavy second half: shifts which Kleene type
// dominates mid-stream, the drift the online re-optimizer watches for.
std::vector<Event> BurstShiftStream(int n) {
  static constexpr TypeId kCalm[] = {0, 1, 1, 1, 1, 2};   // B bursts
  static constexpr TypeId kShift[] = {0, 2, 2, 2, 1, 2};  // C bursts
  std::vector<Event> ev;
  ev.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const TypeId* cycle = i < n / 2 ? kCalm : kShift;
    ev.emplace_back(Timestamp{1 + 3 * i}, cycle[i % 6],
                    std::initializer_list<double>{
                        static_cast<double>(i % 5),
                        static_cast<double>(i % 4)});
  }
  return ev;
}

// (query name, group, window start, window end, value bits): the identity
// of one emission across sessions whose QueryIds differ (ids shift when
// epochs recompile the workload, names do not).
using Tuple = std::tuple<std::string, int64_t, Timestamp, Timestamp, uint64_t>;

uint64_t ValueBits(double v) {
  if (std::isnan(v)) return 0x7ff8000000000000ULL;  // canonical NaN
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

constexpr Timestamp kMinTs = std::numeric_limits<Timestamp>::min();
constexpr Timestamp kMaxTs = std::numeric_limits<Timestamp>::max();

// Emissions with window_start in [lo, hi), as sortable tuples.
std::vector<Tuple> Tuples(const std::vector<Emission>& emissions,
                          Timestamp lo = kMinTs, Timestamp hi = kMaxTs) {
  std::vector<Tuple> out;
  for (const Emission& e : emissions) {
    if (e.window_start < lo || e.window_start >= hi) continue;
    out.emplace_back(e.query_name, e.group_key, e.window_start, e.window_end,
                     ValueBits(e.value));
  }
  std::sort(out.begin(), out.end());
  return out;
}

void ExpectSameTuples(const std::vector<Tuple>& want,
                      const std::vector<Tuple>& got,
                      const std::string& label) {
  ASSERT_EQ(want.size(), got.size()) << label;
  int mismatches = 0;
  for (size_t i = 0; i < want.size() && mismatches < 5; ++i) {
    if (want[i] == got[i]) continue;
    ++mismatches;
    ADD_FAILURE() << label << " tuple #" << i << ": want ("
                  << std::get<0>(want[i]) << ", g=" << std::get<1>(want[i])
                  << ", ws=" << std::get<2>(want[i])
                  << ", we=" << std::get<3>(want[i]) << ") got ("
                  << std::get<0>(got[i]) << ", g=" << std::get<1>(got[i])
                  << ", ws=" << std::get<2>(got[i])
                  << ", we=" << std::get<3>(got[i]) << ")";
  }
}

template <typename SessionT>
void PushRange(SessionT& s, const std::vector<Event>& ev, size_t from,
               size_t to) {
  size_t i = from;
  while (i < to) {
    const size_t len = std::min<size_t>(64, to - i);
    Status st = s.PushBatch(std::span<const Event>(ev.data() + i, len));
    HAMLET_CHECK(st.ok());
    i += len;
  }
}

struct RunOut {
  std::vector<Emission> emissions;
  RunMetrics metrics;
};

RunOut RunPlain(const WorkloadPlan& plan, const RunConfig& config,
                const std::vector<Event>& ev) {
  CollectingSink sink;
  Result<std::unique_ptr<Session>> s = Session::Open(plan, config, &sink);
  HAMLET_CHECK(s.ok());
  PushRange(*s.value(), ev, 0, ev.size());
  if (!ev.empty()) HAMLET_CHECK(s.value()->AdvanceTo(ev.back().time).ok());
  Result<RunMetrics> m = s.value()->Close();
  HAMLET_CHECK(m.ok());
  return {sink.Take(), m.value()};
}

struct ChurnOut {
  std::vector<Emission> emissions;
  RunMetrics metrics;
  Timestamp p1 = -1;  // activation boundary of the AddQuery
  Timestamp p2 = -1;  // activation boundary of the RemoveQuery
};

// Pushes the first third, adds `add`, pushes the second third, removes
// "qa", pushes the rest, then drains and closes.
template <typename SessionT>
ChurnOut DriveChurn(SessionT& s, CollectingSink& sink,
                    const std::vector<Event>& ev, const Query& add) {
  ChurnOut out;
  const size_t a = ev.size() / 3;
  const size_t b = 2 * ev.size() / 3;
  PushRange(s, ev, 0, a);
  Result<Timestamp> p1 = s.AddQuery(add);
  HAMLET_CHECK(p1.ok());
  out.p1 = p1.value();
  PushRange(s, ev, a, b);
  Result<Timestamp> p2 = s.RemoveQuery("qa");
  HAMLET_CHECK(p2.ok());
  out.p2 = p2.value();
  PushRange(s, ev, b, ev.size());
  HAMLET_CHECK(s.AdvanceTo(ev.back().time).ok());
  Result<RunMetrics> m = s.Close();
  HAMLET_CHECK(m.ok());
  out.metrics = m.value();
  out.emissions = sink.Take();
  return out;
}

// The tentpole property: per activation interval, churned emissions are
// bit-identical to a fresh session with that interval's query set, for
// every engine, single-threaded and under 1/2/4 shards.
TEST(QueryChurnEquivalence, AllEnginesAllShardCounts) {
  Schema schema;
  SeedSchema(&schema);
  const std::vector<Event> ev = DenseStream(600);
  const Query add = MakeQuery("qc", kQc);

  Compiled base = Compile(&schema, {{"qa", kQa}, {"qb", kQb}});
  Compiled mid = Compile(&schema, {{"qa", kQa}, {"qb", kQb}, {"qc", kQc}});
  Compiled tail = Compile(&schema, {{"qb", kQb}, {"qc", kQc}});

  for (EngineKind kind : kAllKinds) {
    const std::string kl = EngineKindName(kind);
    RunConfig config;
    config.kind = kind;

    // Fresh full-stream references, one per interval query set.
    const RunOut ref0 = RunPlain(*base.plan, config, ev);
    const RunOut ref1 = RunPlain(*mid.plan, config, ev);
    const RunOut ref2 = RunPlain(*tail.plan, config, ev);

    // Single-threaded churn run establishes the boundaries.
    CollectingSink st_sink;
    Result<std::unique_ptr<Session>> st =
        Session::Open(*base.plan, config, &st_sink);
    ASSERT_TRUE(st.ok()) << kl;
    const ChurnOut churned = DriveChurn(*st.value(), st_sink, ev, add);
    ASSERT_GT(churned.p1, 0) << kl;
    ASSERT_GT(churned.p2, churned.p1) << kl;

    std::vector<Tuple> want = Tuples(ref0.emissions, kMinTs, churned.p1);
    for (Tuple& t : Tuples(ref1.emissions, churned.p1, churned.p2)) {
      want.push_back(std::move(t));
    }
    for (Tuple& t : Tuples(ref2.emissions, churned.p2, kMaxTs)) {
      want.push_back(std::move(t));
    }
    std::sort(want.begin(), want.end());
    ASSERT_FALSE(want.empty()) << kl;
    // The added query does emit after activation, and the removed one
    // does not emit past its deactivation boundary.
    int added_emissions = 0;
    for (const Tuple& t : want) {
      if (std::get<0>(t) == "qc") ++added_emissions;
      if (std::get<0>(t) == "qa") {
        EXPECT_LT(std::get<2>(t), churned.p2) << kl;
      }
    }
    EXPECT_GT(added_emissions, 0) << kl;

    ExpectSameTuples(want, Tuples(churned.emissions), kl + " single-threaded");
    EXPECT_EQ(churned.metrics.queries_added, 1) << kl;
    EXPECT_EQ(churned.metrics.queries_removed, 1) << kl;
    EXPECT_EQ(churned.metrics.events, static_cast<int64_t>(ev.size())) << kl;

    for (int shards : {1, 2, 4}) {
      const std::string sl = kl + " shards=" + std::to_string(shards);
      RunConfig sharded_config = config;
      sharded_config.num_shards = shards;
      CollectingSink sink;
      Result<std::unique_ptr<ShardedSession>> s =
          ShardedSession::Open(*base.plan, sharded_config, &sink);
      ASSERT_TRUE(s.ok()) << sl;
      const ChurnOut out = DriveChurn(*s.value(), sink, ev, add);
      // The front computes activation from the same gate state, so the
      // boundaries must match the single-threaded run exactly.
      EXPECT_EQ(out.p1, churned.p1) << sl;
      EXPECT_EQ(out.p2, churned.p2) << sl;
      ExpectSameTuples(want, Tuples(out.emissions), sl);
      EXPECT_EQ(out.metrics.queries_added, 1) << sl;
      EXPECT_EQ(out.metrics.queries_removed, 1) << sl;
    }
  }
}

// Hot-swap under burst: with the re-optimizer checking every 2 panes over
// a stream whose dominant burst type flips mid-run, emissions stay
// bit-identical to a frozen plan (sharing never changes values), under
// both columnar settings, single-threaded and sharded. clock_override
// pins the clock so latency accounting cannot perturb scheduling-visible
// state under sanitizer load.
TEST(OnlineReoptimization, HotSwapUnderBurstMatchesFrozenPlan) {
  Schema schema;
  SeedSchema(&schema);
  const std::vector<Event> ev = BurstShiftStream(2400);
  Compiled w = Compile(&schema, {{"qa", kQa}, {"qb", kQb}, {"qc", kQc}});

  for (EngineKind kind :
       {EngineKind::kHamletDynamic, EngineKind::kHamletStatic}) {
    for (bool columnar : {true, false}) {
      const std::string label = std::string(EngineKindName(kind)) +
                                (columnar ? " columnar" : " row");
      RunConfig frozen;
      frozen.kind = kind;
      frozen.columnar = columnar;
      frozen.clock_override = [] { return 0.0; };
      RunConfig reopt = frozen;
      reopt.reoptimize_every_panes = 2;
      reopt.reoptimize_threshold = 0.05;

      const RunOut frozen_out = RunPlain(*w.plan, frozen, ev);

      CollectingSink sink;
      Result<std::unique_ptr<Session>> s =
          Session::Open(*w.plan, reopt, &sink);
      ASSERT_TRUE(s.ok()) << label;
      PushRange(*s.value(), ev, 0, ev.size());
      ASSERT_TRUE(s.value()->AdvanceTo(ev.back().time).ok()) << label;
      Result<RunMetrics> m = s.value()->Close();
      ASSERT_TRUE(m.ok()) << label;

      ExpectSameTuples(Tuples(frozen_out.emissions), Tuples(sink.Take()),
                       label);
      EXPECT_GT(m.value().reopt_checks, 0) << label;
      EXPECT_EQ(m.value().reopt_swaps,
                static_cast<int64_t>([&] {
                  int64_t swapped = 0;
                  for (const ReoptDecision& d : s.value()->reopt_log()) {
                    if (d.swapped) ++swapped;
                  }
                  return swapped;
                }()))
          << label;
      EXPECT_GE(m.value().plan_swaps, m.value().reopt_swaps) << label;

      // Sharded: only the front re-optimizes and broadcasts the swap. The
      // mid-stream watermark is the checkpoint where the front waits for
      // the shards' statistics, so the later drift checks are guaranteed
      // to see real evidence.
      RunConfig sharded = reopt;
      sharded.num_shards = 2;
      CollectingSink ssink;
      Result<std::unique_ptr<ShardedSession>> sh =
          ShardedSession::Open(*w.plan, sharded, &ssink);
      ASSERT_TRUE(sh.ok()) << label;
      PushRange(*sh.value(), ev, 0, ev.size() / 2);
      ASSERT_TRUE(sh.value()->AdvanceTo(ev[ev.size() / 2 - 1].time).ok())
          << label;
      PushRange(*sh.value(), ev, ev.size() / 2, ev.size());
      ASSERT_TRUE(sh.value()->AdvanceTo(ev.back().time).ok()) << label;
      Result<RunMetrics> sm = sh.value()->Close();
      ASSERT_TRUE(sm.ok()) << label;
      ExpectSameTuples(Tuples(frozen_out.emissions), Tuples(ssink.Take()),
                       label + " sharded");
      EXPECT_GT(sm.value().reopt_checks, 0) << label;
    }
  }
}

// Deterministic swap-path coverage: force a mid-stream plan swap that
// splits the B+ share group and check the swap is invisible in results.
TEST(PlanHotSwap, ForcedOverrideKeepsEmissionsIdentical) {
  Schema schema;
  SeedSchema(&schema);
  const std::vector<Event> ev = DenseStream(600);
  Compiled w = Compile(&schema, {{"qa", kQa}, {"qb", kQb}, {"qc", kQc}});
  ASSERT_FALSE(w.plan->share_groups.empty());
  const ShareGroup& sg = w.plan->share_groups.front();
  QueryId keep = -1;
  sg.members.ForEach([&](QueryId q) {
    if (keep < 0) keep = q;
  });
  ASSERT_GE(keep, 0);
  const SharingOverride unshare{sg.type, sg.members, QuerySet::Single(keep)};

  for (EngineKind kind : {EngineKind::kHamletDynamic,
                          EngineKind::kHamletStatic,
                          EngineKind::kGretaGraph}) {
    const std::string kl = EngineKindName(kind);
    RunConfig config;
    config.kind = kind;
    const RunOut ref = RunPlain(*w.plan, config, ev);

    CollectingSink sink;
    Result<std::unique_ptr<Session>> s =
        Session::Open(*w.plan, config, &sink);
    ASSERT_TRUE(s.ok()) << kl;
    PushRange(*s.value(), ev, 0, ev.size() / 2);
    Result<Timestamp> swapped =
        s.value()->ApplySharingOverrides(std::span(&unshare, 1));
    ASSERT_TRUE(swapped.ok()) << kl;
    EXPECT_GT(swapped.value(), 0) << kl;
    PushRange(*s.value(), ev, ev.size() / 2, ev.size());
    ASSERT_TRUE(s.value()->AdvanceTo(ev.back().time).ok()) << kl;
    Result<RunMetrics> m = s.value()->Close();
    ASSERT_TRUE(m.ok()) << kl;
    ExpectSameTuples(Tuples(ref.emissions), Tuples(sink.Take()), kl);
    EXPECT_EQ(m.value().plan_swaps, 1) << kl;

    RunConfig sharded_config = config;
    sharded_config.num_shards = 2;
    CollectingSink ssink;
    Result<std::unique_ptr<ShardedSession>> sh =
        ShardedSession::Open(*w.plan, sharded_config, &ssink);
    ASSERT_TRUE(sh.ok()) << kl;
    PushRange(*sh.value(), ev, 0, ev.size() / 2);
    Result<Timestamp> ssw =
        sh.value()->ApplySharingOverrides(std::span(&unshare, 1));
    ASSERT_TRUE(ssw.ok()) << kl;
    EXPECT_EQ(ssw.value(), swapped.value()) << kl;
    PushRange(*sh.value(), ev, ev.size() / 2, ev.size());
    ASSERT_TRUE(sh.value()->AdvanceTo(ev.back().time).ok()) << kl;
    Result<RunMetrics> sm = sh.value()->Close();
    ASSERT_TRUE(sm.ok()) << kl;
    ExpectSameTuples(Tuples(ref.emissions), Tuples(ssink.Take()),
                     kl + " sharded");
    EXPECT_EQ(sm.value().plan_swaps, 1) << kl;
  }
}

// Lifecycle error contracts: every rejected churn op leaves the session
// (and the schema) exactly as it was.
TEST(QueryLifecycleErrors, RejectedChurnLeavesSessionIntact) {
  Schema schema;
  SeedSchema(&schema);
  Compiled w = Compile(&schema, {{"qa", kQa}, {"qb", kQb}});
  RunConfig config;
  CollectingSink sink;
  Result<std::unique_ptr<Session>> s = Session::Open(*w.plan, config, &sink);
  ASSERT_TRUE(s.ok());
  Session& session = *s.value();

  Query unnamed = MakeQuery("", kQc);
  EXPECT_EQ(session.AddQuery(unnamed).status().code(),
            StatusCode::kInvalidArgument);
  Query duplicate = MakeQuery("qa", kQc);
  EXPECT_FALSE(session.AddQuery(duplicate).ok());
  // Validation must not register unknown names into the live schema.
  Query alien = MakeQuery(
      "qz", "RETURN COUNT(*) PATTERN SEQ(Z, B+) GROUPBY g WITHIN 100 ms");
  EXPECT_FALSE(session.AddQuery(alien).ok());
  EXPECT_EQ(schema.FindType("Z"), Schema::kInvalidId);

  EXPECT_EQ(session.RemoveQuery("nope").status().code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(session.RemoveQuery("qa").ok());
  // Removing the last query is rejected; Close is the way to stop.
  EXPECT_FALSE(session.RemoveQuery("qb").ok());
  EXPECT_EQ(static_cast<int>(session.queries().size()), 1);

  ASSERT_TRUE(session.Close().ok());
  EXPECT_EQ(session.AddQuery(MakeQuery("late", kQc)).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(session.RemoveQuery("qb").status().code(),
            StatusCode::kFailedPrecondition);

  // Sharded front pre-validates without disturbing the workers.
  RunConfig sharded_config;
  sharded_config.num_shards = 2;
  CollectingSink ssink;
  Result<std::unique_ptr<ShardedSession>> sh =
      ShardedSession::Open(*w.plan, sharded_config, &ssink);
  ASSERT_TRUE(sh.ok());
  EXPECT_FALSE(sh.value()->AddQuery(duplicate).ok());
  EXPECT_FALSE(sh.value()->RemoveQuery("nope").ok());
  EXPECT_TRUE(sh.value()->Push(Event(1, 0, {0.0, 0.0})).ok());
  EXPECT_TRUE(sh.value()->Close().ok());
}

// The kMaxLiveEpochs cap: churn faster than old epochs can drain their
// 1000 ms windows and AddQuery applies backpressure; draining the stream
// recovers.
TEST(QueryLifecycleErrors, EpochCapBackpressureAndRecovery) {
  constexpr char kLongA[] =
      "RETURN COUNT(*) PATTERN SEQ(A, B+) GROUPBY g WITHIN 1000 ms SLIDE 50 ms";
  constexpr char kLongC[] =
      "RETURN COUNT(*) PATTERN SEQ(A, C+) GROUPBY g WITHIN 1000 ms SLIDE 50 ms";
  Schema schema;
  SeedSchema(&schema);
  Compiled w = Compile(&schema, {{"qa", kLongA}});
  RunConfig config;
  CollectingSink sink;
  Result<std::unique_ptr<Session>> s = Session::Open(*w.plan, config, &sink);
  ASSERT_TRUE(s.ok());
  Session& session = *s.value();

  bool exhausted = false;
  Timestamp t = 0;
  for (int i = 0; i < 16 && !exhausted; ++i) {
    t = 1 + 60 * i;
    ASSERT_TRUE(session.Push(Event(t, /*B=*/1, {0.0, 0.0})).ok());
    Result<Timestamp> r =
        session.AddQuery(MakeQuery("add" + std::to_string(i), kLongC));
    if (r.ok()) continue;
    EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
    exhausted = true;
  }
  ASSERT_TRUE(exhausted);
  EXPECT_EQ(session.live_epochs(), QueryLifecycle::kMaxLiveEpochs);

  // Advancing past every open window drains the superseded epochs and
  // lifts the cap.
  ASSERT_TRUE(session.AdvanceTo(t + 5000).ok());
  EXPECT_EQ(session.live_epochs(), 1);
  EXPECT_TRUE(session.AddQuery(MakeQuery("late", kLongC)).ok());
  EXPECT_TRUE(session.Close().ok());
}

// The reoptimize knob validation matrix (see ValidateRunConfig).
TEST(RunConfigValidation, ReoptimizeKnobMatrix) {
  RunConfig config;

  RunConfig bad_threshold = config;
  bad_threshold.reoptimize_threshold = 0.0;
  // The threshold is checked even while re-optimization is off — a bad
  // value must not lie dormant until someone flips the cadence on.
  EXPECT_EQ(ValidateRunConfig(bad_threshold).code(),
            StatusCode::kInvalidArgument);
  bad_threshold.reoptimize_threshold = -0.5;
  EXPECT_EQ(ValidateRunConfig(bad_threshold).code(),
            StatusCode::kInvalidArgument);

  RunConfig bad_cadence = config;
  bad_cadence.reoptimize_every_panes = -1;
  EXPECT_EQ(ValidateRunConfig(bad_cadence).code(),
            StatusCode::kInvalidArgument);

  for (EngineKind kind : {EngineKind::kHamletNoShare, EngineKind::kGretaGraph,
                          EngineKind::kGretaPrefix, EngineKind::kTwoStep,
                          EngineKind::kSharon}) {
    RunConfig no_plan = config;
    no_plan.kind = kind;
    no_plan.reoptimize_every_panes = 2;
    EXPECT_EQ(ValidateRunConfig(no_plan).code(), StatusCode::kUnsupported)
        << EngineKindName(kind);
  }

  // Supported combinations, including re-optimization over the row path.
  for (EngineKind kind :
       {EngineKind::kHamletDynamic, EngineKind::kHamletStatic}) {
    for (bool columnar : {true, false}) {
      RunConfig ok = config;
      ok.kind = kind;
      ok.columnar = columnar;
      ok.reoptimize_every_panes = 4;
      EXPECT_TRUE(ValidateRunConfig(ok).ok())
          << EngineKindName(kind) << " columnar=" << columnar;
    }
  }
}

// evict_idle_groups drops exactly the zero-valued emissions of groups
// whose windows all closed, deterministically in event time — so plain
// and sharded runs agree bit-identically — and enables the ShardRouter
// rebalance-map drain surfaced by RunMetrics::rebalance_map_size.
TEST(IdleGroupEviction, DeterministicAcrossShardsAndDrainsRouter) {
  Schema schema;
  SeedSchema(&schema);
  Compiled w = Compile(&schema, {{"qa", kQa}, {"qb", kQb}});

  // Two key generations separated by a long quiet gap: groups 0..7 before
  // t=600, groups 8..15 after t=5000.
  std::vector<Event> ev;
  static constexpr TypeId kCycle[] = {0, 1, 1, 2, 1, 2};
  for (int i = 0; i < 200; ++i) {
    ev.emplace_back(Timestamp{1 + 3 * i}, kCycle[i % 6],
                    std::initializer_list<double>{0.0,
                                                  static_cast<double>(i % 8)});
  }
  for (int i = 0; i < 200; ++i) {
    ev.emplace_back(Timestamp{5001 + 3 * i}, kCycle[i % 6],
                    std::initializer_list<double>{
                        0.0, static_cast<double>(8 + i % 8)});
  }

  auto drive = [&](auto& session, CollectingSink& sink) -> RunOut {
    PushRange(session, ev, 0, 200);
    HAMLET_CHECK(session.AdvanceTo(3000).ok());
    PushRange(session, ev, 200, 400);
    HAMLET_CHECK(session.AdvanceTo(6000).ok());
    Result<RunMetrics> m = session.Close();
    HAMLET_CHECK(m.ok());
    return {sink.Take(), m.value()};
  };

  RunConfig evict;
  evict.evict_idle_groups = true;
  CollectingSink plain_sink;
  Result<std::unique_ptr<Session>> plain =
      Session::Open(*w.plan, evict, &plain_sink);
  ASSERT_TRUE(plain.ok());
  const RunOut plain_out = drive(*plain.value(), plain_sink);
  EXPECT_GT(plain_out.metrics.evicted_idle_groups, 0);

  // Eviction only ever removes emissions a non-evicting run would have
  // made (the idle groups' empty windows) — never adds or alters any.
  RunConfig keep;
  CollectingSink keep_sink;
  Result<std::unique_ptr<Session>> keep_s =
      Session::Open(*w.plan, keep, &keep_sink);
  ASSERT_TRUE(keep_s.ok());
  const RunOut keep_out = drive(*keep_s.value(), keep_sink);
  const std::vector<Tuple> evicted = Tuples(plain_out.emissions);
  const std::vector<Tuple> kept = Tuples(keep_out.emissions);
  EXPECT_LT(evicted.size(), kept.size());
  EXPECT_TRUE(std::includes(kept.begin(), kept.end(), evicted.begin(),
                            evicted.end()));

  for (int shards : {2, 4}) {
    RunConfig config = evict;
    config.num_shards = shards;
    CollectingSink sink;
    Result<std::unique_ptr<ShardedSession>> s =
        ShardedSession::Open(*w.plan, config, &sink);
    ASSERT_TRUE(s.ok());
    const RunOut out = drive(*s.value(), sink);
    ExpectSameTuples(evicted, Tuples(out.emissions),
                     "evict shards=" + std::to_string(shards));
    EXPECT_GT(out.metrics.evicted_idle_groups, 0);
  }

  // Rebalance-map drain: with skew routing on, the watermark checkpoints
  // retire assignments whose windows all closed, so the first key
  // generation is gone from the map by the mid-run checkpoint and the
  // final map never holds both generations.
  RunConfig routed = evict;
  routed.num_shards = 2;
  routed.shard_rebalance_threshold = 1;
  CollectingSink rsink;
  Result<std::unique_ptr<ShardedSession>> rs =
      ShardedSession::Open(*w.plan, routed, &rsink);
  ASSERT_TRUE(rs.ok());
  PushRange(*rs.value(), ev, 0, 200);
  ASSERT_TRUE(rs.value()->AdvanceTo(3000).ok());
  EXPECT_EQ(rs.value()->MetricsSnapshot().rebalance_map_size, 0);
  PushRange(*rs.value(), ev, 200, 400);
  EXPECT_GT(rs.value()->MetricsSnapshot().rebalance_map_size, 0);
  ASSERT_TRUE(rs.value()->AdvanceTo(6000).ok());
  Result<RunMetrics> rm = rs.value()->Close();
  ASSERT_TRUE(rm.ok());
  EXPECT_LE(rm.value().rebalance_map_size, 8);
  ExpectSameTuples(evicted, Tuples(rsink.Take()), "evict rebalanced");
}

}  // namespace
}  // namespace hamlet
