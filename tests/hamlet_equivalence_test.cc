// The central correctness property of the reproduction (DESIGN.md §3):
// for every workload and stream,
//   BruteForce == Greta == Hamlet(never) == Hamlet(always) == Hamlet(dynamic).
// Randomized sweeps over workload shapes, predicates, negation, aggregates
// and stream mixes; any mismatch prints the full repro (seed, stream).
#include <gtest/gtest.h>

#include <string>

#include "src/brute/enumerator.h"
#include "src/common/rng.h"
#include "src/greta/greta_engine.h"
#include "src/hamlet/batch_eval.h"
#include "src/optimizer/policies.h"
#include "src/query/parser.h"
#include "src/stream/stream_builder.h"

namespace hamlet {
namespace {

struct WorkloadCase {
  const char* name;
  std::vector<const char*> queries;
  std::vector<const char*> alphabet;
};

std::string StreamToScript(const EventVector& ev, const Schema& s) {
  std::string out;
  for (const Event& e : ev) {
    out += s.TypeName(e.type);
    out += "(v=" + std::to_string(e.attr(0)) +
           ",d=" + std::to_string(e.attr(1)) + ") ";
  }
  return out;
}

class HamletEquivTest : public ::testing::TestWithParam<WorkloadCase> {};

TEST_P(HamletEquivTest, AllEnginesAgree) {
  const WorkloadCase& c = GetParam();
  Rng rng(0xFEED ^ std::hash<std::string>{}(c.name));
  for (int trial = 0; trial < 60; ++trial) {
    Schema schema;
    // Attribute ids fixed: v=0, driver=1 (queries may reference them).
    schema.AddAttr("v");
    schema.AddAttr("driver");
    Workload workload(&schema);
    for (const char* text : c.queries) {
      Query q = ParseQuery(text).value();
      ASSERT_TRUE(workload.Add(q).ok());
    }
    WorkloadPlan plan = AnalyzeWorkload(workload).value();

    EventVector ev;
    const int len = static_cast<int>(rng.NextInt(1, 16));
    for (int i = 0; i < len; ++i) {
      Event e(i + 1,
              schema.AddType(c.alphabet[rng.NextBelow(c.alphabet.size())]));
      e.set_attr(0, static_cast<double>(rng.NextInt(0, 9)));
      e.set_attr(1, static_cast<double>(rng.NextInt(1, 2)));
      ev.push_back(e);
    }
    const std::string repro =
        std::string(c.name) + " trial " + std::to_string(trial) + ": " +
        StreamToScript(ev, schema);

    // Ground truth.
    std::vector<double> expected;
    for (const ExecQuery& eq : plan.exec_queries)
      expected.push_back(BruteForceEval(eq, ev).value().value);

    // GRETA.
    for (int i = 0; i < plan.num_exec(); ++i) {
      GretaEngine greta(plan.exec_queries[static_cast<size_t>(i)],
                        GretaMode::kGraph);
      for (const Event& e : ev) greta.OnEvent(e);
      EXPECT_DOUBLE_EQ(greta.Value(), expected[static_cast<size_t>(i)])
          << "greta " << repro;
    }

    // HAMLET under all three policies.
    NeverSharePolicy never;
    AlwaysSharePolicy always;
    DynamicBenefitPolicy dynamic;
    SharingPolicy* policies[] = {&never, &always, &dynamic};
    for (SharingPolicy* policy : policies) {
      BatchResult r = EvalHamletBatch(plan, ev, policy);
      for (int i = 0; i < plan.num_exec(); ++i) {
        EXPECT_DOUBLE_EQ(r.exec_values[static_cast<size_t>(i)],
                         expected[static_cast<size_t>(i)])
            << "hamlet(" << policy->name() << ") exec " << i << " " << repro;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, HamletEquivTest,
    ::testing::Values(
        WorkloadCase{"paper_pair",
                     {"RETURN COUNT(*) PATTERN SEQ(A, B+) WITHIN 1 min",
                      "RETURN COUNT(*) PATTERN SEQ(C, B+) WITHIN 1 min"},
                     {"A", "B", "C"}},
        WorkloadCase{"three_sharers",
                     {"RETURN COUNT(*) PATTERN SEQ(A, B+) WITHIN 1 min",
                      "RETURN COUNT(*) PATTERN SEQ(C, B+) WITHIN 1 min",
                      "RETURN COUNT(*) PATTERN B+ WITHIN 1 min"},
                     {"A", "B", "C"}},
        WorkloadCase{"suffix_differs",
                     {"RETURN COUNT(*) PATTERN SEQ(A, B+, C) WITHIN 1 min",
                      "RETURN COUNT(*) PATTERN SEQ(A, B+, D) WITHIN 1 min"},
                     {"A", "B", "C", "D"}},
        WorkloadCase{"two_shared_types",
                     {"RETURN COUNT(*) PATTERN SEQ(A, B+) WITHIN 1 min",
                      "RETURN COUNT(*) PATTERN SEQ(B+, D+) WITHIN 1 min",
                      "RETURN COUNT(*) PATTERN SEQ(C, D+) WITHIN 1 min"},
                     {"A", "B", "C", "D"}},
        WorkloadCase{"event_pred_divergence",
                     {"RETURN COUNT(*) PATTERN SEQ(A, B+) WHERE B.v > 4 "
                      "WITHIN 1 min",
                      "RETURN COUNT(*) PATTERN SEQ(C, B+) WITHIN 1 min"},
                     {"A", "B", "C"}},
        WorkloadCase{"both_preds_diverge",
                     {"RETURN COUNT(*) PATTERN SEQ(A, B+) WHERE B.v > 6 "
                      "WITHIN 1 min",
                      "RETURN COUNT(*) PATTERN SEQ(C, B+) WHERE B.v < 8 "
                      "WITHIN 1 min"},
                     {"A", "B", "C"}},
        WorkloadCase{"edge_pred_shared",
                     {"RETURN COUNT(*) PATTERN SEQ(A, B+) WHERE [driver] "
                      "WITHIN 1 min",
                      "RETURN COUNT(*) PATTERN SEQ(C, B+) WHERE "
                      "prev.v <= next.v WITHIN 1 min"},
                     {"A", "B", "C"}},
        WorkloadCase{"edge_pred_identical_scan",
                     {"RETURN COUNT(*) PATTERN SEQ(A, B+) WHERE [driver] "
                      "WITHIN 1 min",
                      "RETURN COUNT(*) PATTERN SEQ(C, B+) WHERE [driver] "
                      "WITHIN 1 min",
                      "RETURN COUNT(*) PATTERN B+ WHERE [driver] WITHIN 1 "
                      "min"},
                     {"A", "B", "C"}},
        WorkloadCase{"edge_pred_identical_with_event_divergence",
                     {"RETURN COUNT(*) PATTERN SEQ(A, B+) WHERE [driver] AND "
                      "B.v > 4 WITHIN 1 min",
                      "RETURN COUNT(*) PATTERN SEQ(C, B+) WHERE [driver] "
                      "WITHIN 1 min"},
                     {"A", "B", "C"}},
        WorkloadCase{"edge_pred_monotone_identical",
                     {"RETURN SUM(B.v) PATTERN SEQ(A, B+) WHERE prev.v <= "
                      "next.v WITHIN 1 min",
                      "RETURN SUM(B.v) PATTERN SEQ(C, B+) WHERE prev.v <= "
                      "next.v WITHIN 1 min"},
                     {"A", "B", "C"}},
        WorkloadCase{"negation_one_side",
                     {"RETURN COUNT(*) PATTERN SEQ(A, NOT N, B+) WITHIN 1 "
                      "min",
                      "RETURN COUNT(*) PATTERN SEQ(C, B+) WITHIN 1 min"},
                     {"A", "B", "C", "N"}},
        WorkloadCase{"negation_trailing_shared",
                     {"RETURN COUNT(*) PATTERN SEQ(A, B+, NOT N) WITHIN 1 "
                      "min",
                      "RETURN COUNT(*) PATTERN SEQ(C, B+) WITHIN 1 min"},
                     {"A", "B", "C", "N"}},
        WorkloadCase{"group_kleene_shared",
                     {"RETURN COUNT(*) PATTERN (SEQ(A, B+))+ WITHIN 1 min",
                      "RETURN COUNT(*) PATTERN (SEQ(C, B+))+ WITHIN 1 min"},
                     {"A", "B", "C"}},
        WorkloadCase{"avg_family_sharing",
                     {"RETURN AVG(B.v) PATTERN SEQ(A, B+) WITHIN 1 min",
                      "RETURN SUM(B.v) PATTERN SEQ(C, B+) WITHIN 1 min",
                      "RETURN COUNT(B) PATTERN B+ WITHIN 1 min"},
                     {"A", "B", "C"}},
        WorkloadCase{"minmax_sharing",
                     {"RETURN MIN(B.v) PATTERN SEQ(A, B+) WITHIN 1 min",
                      "RETURN MIN(B.v) PATTERN SEQ(C, B+) WITHIN 1 min",
                      "RETURN MAX(B.v) PATTERN SEQ(A, B+) WITHIN 1 min",
                      "RETURN MAX(B.v) PATTERN SEQ(C, B+) WITHIN 1 min"},
                     {"A", "B", "C"}},
        WorkloadCase{"min_with_event_pred_divergence",
                     {"RETURN MIN(B.v) PATTERN SEQ(A, B+) WHERE B.v > 2 "
                      "WITHIN 1 min",
                      "RETURN MIN(B.v) PATTERN SEQ(C, B+) WITHIN 1 min"},
                     {"A", "B", "C"}},
        WorkloadCase{"incompatible_aggregates_no_share",
                     {"RETURN COUNT(*) PATTERN SEQ(A, B+) WITHIN 1 min",
                      "RETURN MIN(B.v) PATTERN SEQ(C, B+) WITHIN 1 min"},
                     {"A", "B", "C"}},
        WorkloadCase{"or_composition",
                     {"RETURN COUNT(*) PATTERN SEQ(A,B+) OR SEQ(C,D+) WITHIN "
                      "1 min",
                      "RETURN COUNT(*) PATTERN SEQ(E, B+) WITHIN 1 min"},
                     {"A", "B", "C", "D", "E"}},
        WorkloadCase{"ten_query_fanout",
                     {"RETURN COUNT(*) PATTERN SEQ(A, B+) WITHIN 1 min",
                      "RETURN COUNT(*) PATTERN SEQ(C, B+) WITHIN 1 min",
                      "RETURN COUNT(*) PATTERN SEQ(D, B+) WITHIN 1 min",
                      "RETURN COUNT(*) PATTERN SEQ(E, B+) WITHIN 1 min",
                      "RETURN COUNT(*) PATTERN SEQ(F, B+) WITHIN 1 min",
                      "RETURN COUNT(*) PATTERN SEQ(A, B+, C) WITHIN 1 min",
                      "RETURN COUNT(*) PATTERN SEQ(C, B+, D) WITHIN 1 min",
                      "RETURN COUNT(*) PATTERN B+ WITHIN 1 min",
                      "RETURN COUNT(*) PATTERN SEQ(A, C) WITHIN 1 min",
                      "RETURN COUNT(*) PATTERN SEQ(B+, F) WITHIN 1 min"},
                     {"A", "B", "C", "D", "E", "F"}}),
    [](const ::testing::TestParamInfo<WorkloadCase>& info) {
      return info.param.name;
    });

// Composition of query values must also agree with the brute-force composed
// value (OR/AND queries).
TEST(HamletCompositionTest, QueryValuesMatchBrute) {
  Rng rng(123);
  for (int trial = 0; trial < 40; ++trial) {
    Schema schema;
    schema.AddAttr("v");
    Workload workload(&schema);
    Query q1 = ParseQuery(
                   "RETURN COUNT(*) PATTERN SEQ(A,B+) OR SEQ(C,D+) WITHIN 1 "
                   "min")
                   .value();
    Query q2 =
        ParseQuery(
            "RETURN COUNT(*) PATTERN SEQ(A,B+) AND SEQ(A,B+) WITHIN 1 min")
            .value();
    ASSERT_TRUE(workload.Add(q1).ok());
    ASSERT_TRUE(workload.Add(q2).ok());
    WorkloadPlan plan = AnalyzeWorkload(workload).value();
    const char* alphabet[] = {"A", "B", "C", "D"};
    EventVector ev;
    int len = static_cast<int>(rng.NextInt(1, 12));
    for (int i = 0; i < len; ++i) {
      Event e(i + 1, schema.AddType(alphabet[rng.NextBelow(4)]));
      e.set_attr(0, 1.0);
      ev.push_back(e);
    }
    AlwaysSharePolicy always;
    BatchResult r = EvalHamletBatch(plan, ev, &always);
    for (QueryId q = 0; q < workload.size(); ++q) {
      EXPECT_DOUBLE_EQ(r.query_values[static_cast<size_t>(q)],
                       BruteForceQueryValue(plan, q, ev).value())
          << "query " << q << " trial " << trial;
    }
  }
}

}  // namespace
}  // namespace hamlet
