// GRETA engine tests: hand-worked propagation (paper Example 4) plus
// randomized equivalence against the brute-force enumerator in both graph
// and prefix-sum modes.
#include <gtest/gtest.h>

#include "src/brute/enumerator.h"
#include "src/common/rng.h"
#include "src/greta/greta_engine.h"
#include "src/query/parser.h"
#include "src/stream/stream_builder.h"

namespace hamlet {
namespace {

class GretaFixture : public ::testing::Test {
 protected:
  WorkloadPlan Plan(std::initializer_list<const char*> queries) {
    for (const char* text : queries) {
      Query q = ParseQuery(text).value();
      HAMLET_CHECK(workload_.Add(q).ok());
    }
    Result<WorkloadPlan> plan = AnalyzeWorkload(workload_);
    HAMLET_CHECK(plan.ok());
    return std::move(plan).value();
  }
  double Run(const ExecQuery& eq, const EventVector& ev, GretaMode mode) {
    GretaEngine engine(eq, mode);
    for (const Event& e : ev) engine.OnEvent(e);
    return engine.Value();
  }
  Schema schema_;
  Workload workload_{&schema_};
};

TEST_F(GretaFixture, PaperExample4Counts) {
  // Example 4 / Fig. 4(a): q1 = SEQ(A,B+), q2 = SEQ(C,B+) over a stream
  // where b3 follows a1, a2, c1: count(b3,q1) = 2, count(b3,q2) = 1.
  WorkloadPlan plan = Plan({
      "RETURN COUNT(*) PATTERN SEQ(A, B+) WITHIN 1 min",
      "RETURN COUNT(*) PATTERN SEQ(C, B+) WITHIN 1 min",
  });
  EventVector ev = ParseStreamScript("A A C B", &schema_);
  EXPECT_DOUBLE_EQ(Run(plan.exec_queries[0], ev, GretaMode::kGraph), 2.0);
  EXPECT_DOUBLE_EQ(Run(plan.exec_queries[1], ev, GretaMode::kGraph), 1.0);
}

TEST_F(GretaFixture, DoublingWithinBurst) {
  // Table 3's doubling: counts x, 2x, 4x, 8x within a burst of 4 B's after
  // predecessors worth x = 2.
  WorkloadPlan plan =
      Plan({"RETURN COUNT(*) PATTERN SEQ(A, B+) WITHIN 1 min"});
  EventVector ev = ParseStreamScript("A A B B B B", &schema_);
  // Final count = 2 + 4 + 8 + 16 = 30.
  EXPECT_DOUBLE_EQ(Run(plan.exec_queries[0], ev, GretaMode::kGraph), 30.0);
  EXPECT_DOUBLE_EQ(Run(plan.exec_queries[0], ev, GretaMode::kPrefixSum), 30.0);
}

TEST_F(GretaFixture, PrefixSumFallsBackOnEdgePredicates) {
  WorkloadPlan plan = Plan(
      {"RETURN COUNT(*) PATTERN SEQ(A, B+) WHERE [driver] WITHIN 1 min"});
  GretaEngine engine(plan.exec_queries[0], GretaMode::kPrefixSum);
  EXPECT_EQ(engine.mode(), GretaMode::kGraph);
}

TEST_F(GretaFixture, GraphModeIsQuadraticPrefixSumLinear) {
  WorkloadPlan plan = Plan({"RETURN COUNT(*) PATTERN B+ WITHIN 1 min"});
  StreamBuilder b(&schema_);
  b.AddRun(64, "B");
  EventVector ev = b.Take();
  GretaEngine graph(plan.exec_queries[0], GretaMode::kGraph);
  GretaEngine prefix(plan.exec_queries[0], GretaMode::kPrefixSum);
  for (const Event& e : ev) {
    graph.OnEvent(e);
    prefix.OnEvent(e);
  }
  EXPECT_DOUBLE_EQ(graph.Value(), prefix.Value());
  // 64 events: graph visits ~ n(n-1)/2 = 2016 predecessors; prefix reads one
  // accumulator per event.
  EXPECT_EQ(graph.ops(), 64 * 63 / 2);
  EXPECT_EQ(prefix.ops(), 64);
  EXPECT_GT(graph.MemoryBytes(), prefix.MemoryBytes());
}

// ---- Randomized equivalence: GRETA == brute force ----

struct EquivCase {
  const char* name;
  const char* query;
  std::vector<const char*> alphabet;
};

class GretaEquivTest : public ::testing::TestWithParam<EquivCase> {};

TEST_P(GretaEquivTest, MatchesBruteForceOnRandomStreams) {
  const EquivCase& c = GetParam();
  Rng rng(0xC0FFEE ^ std::hash<std::string>{}(c.name));
  for (int trial = 0; trial < 40; ++trial) {
    Schema schema;
    Workload workload(&schema);
    Query q = ParseQuery(c.query).value();
    ASSERT_TRUE(workload.Add(q).ok());
    WorkloadPlan plan = AnalyzeWorkload(workload).value();

    // Random stream over the alphabet with random attrs.
    AttrId v = schema.AddAttr("v");
    AttrId driver = schema.AddAttr("driver");
    EventVector ev;
    const int len = static_cast<int>(rng.NextInt(1, 14));
    for (int i = 0; i < len; ++i) {
      const char* t =
          c.alphabet[rng.NextBelow(c.alphabet.size())];
      Event e(i + 1, schema.AddType(t));
      e.set_attr(v, static_cast<double>(rng.NextInt(0, 9)));
      e.set_attr(driver, static_cast<double>(rng.NextInt(1, 2)));
      ev.push_back(e);
    }

    for (const ExecQuery& eq : plan.exec_queries) {
      BruteResult brute = BruteForceEval(eq, ev).value();
      for (GretaMode mode : {GretaMode::kGraph, GretaMode::kPrefixSum}) {
        GretaEngine engine(eq, mode);
        for (const Event& e : ev) engine.OnEvent(e);
        EXPECT_DOUBLE_EQ(engine.Value(), brute.value)
            << c.name << " trial " << trial << " mode "
            << (mode == GretaMode::kGraph ? "graph" : "prefix");
        EXPECT_DOUBLE_EQ(engine.final_agg().count, brute.agg.count);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, GretaEquivTest,
    ::testing::Values(
        EquivCase{"kleene", "RETURN COUNT(*) PATTERN B+ WITHIN 1 min",
                  {"A", "B"}},
        EquivCase{"seq_kleene",
                  "RETURN COUNT(*) PATTERN SEQ(A, B+) WITHIN 1 min",
                  {"A", "B", "C"}},
        EquivCase{"seq_kleene_suffix",
                  "RETURN COUNT(*) PATTERN SEQ(A, B+, C) WITHIN 1 min",
                  {"A", "B", "C"}},
        EquivCase{"two_kleene",
                  "RETURN COUNT(*) PATTERN SEQ(A+, B+) WITHIN 1 min",
                  {"A", "B", "C"}},
        EquivCase{"negation_mid",
                  "RETURN COUNT(*) PATTERN SEQ(A, NOT N, B+) WITHIN 1 min",
                  {"A", "B", "N"}},
        EquivCase{"negation_trailing",
                  "RETURN COUNT(*) PATTERN SEQ(A, B+, NOT N) WITHIN 1 min",
                  {"A", "B", "N"}},
        EquivCase{"negation_leading",
                  "RETURN COUNT(*) PATTERN SEQ(NOT N, A, B+) WITHIN 1 min",
                  {"A", "B", "N"}},
        EquivCase{"group_kleene",
                  "RETURN COUNT(*) PATTERN (SEQ(A, B+))+ WITHIN 1 min",
                  {"A", "B"}},
        EquivCase{"sum",
                  "RETURN SUM(B.v) PATTERN SEQ(A, B+) WITHIN 1 min",
                  {"A", "B"}},
        EquivCase{"avg",
                  "RETURN AVG(B.v) PATTERN SEQ(A, B+, C) WITHIN 1 min",
                  {"A", "B", "C"}},
        EquivCase{"count_events",
                  "RETURN COUNT(B) PATTERN SEQ(A, B+) WITHIN 1 min",
                  {"A", "B"}},
        EquivCase{"min",
                  "RETURN MIN(B.v) PATTERN SEQ(A, B+) WITHIN 1 min",
                  {"A", "B"}},
        EquivCase{"max",
                  "RETURN MAX(B.v) PATTERN SEQ(A, B+, C) WITHIN 1 min",
                  {"A", "B", "C"}},
        EquivCase{"edge_equality",
                  "RETURN COUNT(*) PATTERN SEQ(A, B+) WHERE [driver] WITHIN "
                  "1 min",
                  {"A", "B"}},
        EquivCase{"edge_monotone",
                  "RETURN COUNT(*) PATTERN B+ WHERE prev.v <= next.v WITHIN "
                  "1 min",
                  {"A", "B"}},
        EquivCase{"event_pred",
                  "RETURN COUNT(*) PATTERN SEQ(A, B+) WHERE B.v > 4 WITHIN 1 "
                  "min",
                  {"A", "B"}},
        EquivCase{"pred_and_neg",
                  "RETURN SUM(B.v) PATTERN SEQ(A, NOT N, B+) WHERE B.v > 2 "
                  "WITHIN 1 min",
                  {"A", "B", "N"}},
        EquivCase{"min_with_edge",
                  "RETURN MIN(B.v) PATTERN SEQ(A, B+) WHERE [driver] WITHIN "
                  "1 min",
                  {"A", "B"}}),
    [](const ::testing::TestParamInfo<EquivCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace hamlet
