// Unit tests for src/query: pattern AST, aggregates, predicates, parser,
// agg-value propagation helpers.
#include <gtest/gtest.h>

#include <cmath>

#include "src/query/agg_value.h"
#include "src/query/parser.h"
#include "src/query/query.h"

namespace hamlet {
namespace {

TEST(PatternTest, FactoriesAndToString) {
  Pattern p = Pattern::Seq({Pattern::Type("A"), Pattern::KleeneType("B"),
                            Pattern::Not(Pattern::Type("C")),
                            Pattern::Type("D")});
  EXPECT_EQ(p.ToString(), "SEQ(A, B+, NOT C, D)");
  EXPECT_TRUE(p.ContainsKleene());
  Pattern nested = Pattern::Kleene(
      Pattern::Seq({Pattern::Type("A"), Pattern::KleeneType("B")}));
  EXPECT_EQ(nested.ToString(), "(SEQ(A, B+))+");
}

TEST(PatternTest, ResolveBindsTypes) {
  Schema s;
  Pattern p = Pattern::Seq({Pattern::Type("A"), Pattern::KleeneType("B")});
  ASSERT_TRUE(p.Resolve(&s).ok());
  EXPECT_EQ(p.children[0].type, s.FindType("A"));
  EXPECT_EQ(p.CollectTypes().size(), 2u);
}

TEST(PatternTest, ResolveRejectsMalformed) {
  Schema s;
  Pattern bad = Pattern::Seq({});
  EXPECT_FALSE(bad.Resolve(&s).ok());
}

TEST(AggregateTest, ToStringForms) {
  EXPECT_EQ(AggregateSpec::CountTrends().ToString(), "COUNT(*)");
  EXPECT_EQ(AggregateSpec::CountEvents("B").ToString(), "COUNT(B)");
  EXPECT_EQ(AggregateSpec::Sum("B", "price").ToString(), "SUM(B.price)");
  EXPECT_EQ(AggregateSpec::Avg("B", "price").ToString(), "AVG(B.price)");
}

TEST(AggregateTest, ShareabilityMatrix) {
  auto count_star = AggregateSpec::CountTrends();
  auto count_b = AggregateSpec::CountEvents("B");
  auto sum_bp = AggregateSpec::Sum("B", "price");
  auto avg_bp = AggregateSpec::Avg("B", "price");
  auto avg_bv = AggregateSpec::Avg("B", "volume");
  auto min_bp = AggregateSpec::Min("B", "price");

  // Identical always shares.
  EXPECT_TRUE(AggregatesShareable(count_star, count_star));
  EXPECT_TRUE(AggregatesShareable(min_bp, min_bp));
  // The AVG family (paper §3.1): AVG = SUM / COUNT.
  EXPECT_TRUE(AggregatesShareable(avg_bp, sum_bp));
  EXPECT_TRUE(AggregatesShareable(avg_bp, count_b));
  EXPECT_TRUE(AggregatesShareable(sum_bp, count_b));
  // Not across attributes (except via COUNT(E) which has none).
  EXPECT_FALSE(AggregatesShareable(avg_bp, avg_bv));
  // COUNT(*) and MIN share only with identical.
  EXPECT_FALSE(AggregatesShareable(count_star, count_b));
  EXPECT_FALSE(AggregatesShareable(min_bp, sum_bp));
}

TEST(PredicateTest, EventPredicateEval) {
  Schema s;
  EventPredicate p("T", "speed", CmpOp::kLt, 10.0);
  ASSERT_TRUE(p.Resolve(&s).ok());
  Event slow(1, s.FindType("T"));
  slow.set_attr(p.attr, 5.0);
  Event fast(2, s.FindType("T"));
  fast.set_attr(p.attr, 20.0);
  Event other(3, s.AddType("U"));
  EXPECT_TRUE(p.Eval(slow));
  EXPECT_FALSE(p.Eval(fast));
  EXPECT_TRUE(p.Eval(other));  // applies only to its type
}

TEST(PredicateTest, EdgePredicateEval) {
  Schema s;
  EdgePredicate eq("driver", CmpOp::kEq);
  ASSERT_TRUE(eq.Resolve(&s).ok());
  Event a(1, 0), b(2, 0), c(3, 0);
  a.set_attr(eq.attr, 7);
  b.set_attr(eq.attr, 7);
  c.set_attr(eq.attr, 8);
  EXPECT_TRUE(eq.Eval(a, b));
  EXPECT_FALSE(eq.Eval(a, c));
}

TEST(PredicateTest, AllCmpOps) {
  EXPECT_TRUE(EvalCmp(CmpOp::kLt, 1, 2));
  EXPECT_TRUE(EvalCmp(CmpOp::kLe, 2, 2));
  EXPECT_TRUE(EvalCmp(CmpOp::kGt, 3, 2));
  EXPECT_TRUE(EvalCmp(CmpOp::kGe, 2, 2));
  EXPECT_TRUE(EvalCmp(CmpOp::kEq, 2, 2));
  EXPECT_TRUE(EvalCmp(CmpOp::kNe, 1, 2));
  EXPECT_FALSE(EvalCmp(CmpOp::kLt, 2, 2));
}

TEST(ParserTest, FullQuery) {
  Result<Query> r = ParseQuery(
      "RETURN COUNT(*) PATTERN SEQ(R, T+, NOT P, D) "
      "WHERE T.speed < 10 AND [driver, rider] AND prev.price <= next.price "
      "GROUPBY district WITHIN 10 min SLIDE 5 min");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Query& q = r.value();
  EXPECT_EQ(q.aggregate.kind, AggKind::kCountTrends);
  EXPECT_EQ(q.pattern.ToString(), "SEQ(R, T+, NOT P, D)");
  ASSERT_EQ(q.event_predicates.size(), 1u);
  EXPECT_EQ(q.event_predicates[0].ToString(), "T.speed < 10");
  ASSERT_EQ(q.edge_predicates.size(), 3u);
  EXPECT_EQ(q.edge_predicates[2].op, CmpOp::kLe);
  EXPECT_EQ(q.group_by_name, "district");
  EXPECT_EQ(q.window.within, 10 * kMillisPerMinute);
  EXPECT_EQ(q.window.slide, 5 * kMillisPerMinute);
}

TEST(ParserTest, AggregateForms) {
  EXPECT_EQ(ParseQuery("RETURN SUM(T.price) PATTERN T+ WITHIN 1 min")
                .value()
                .aggregate.kind,
            AggKind::kSum);
  EXPECT_EQ(ParseQuery("RETURN AVG(T.price) PATTERN T+ WITHIN 1 min")
                .value()
                .aggregate.kind,
            AggKind::kAvg);
  EXPECT_EQ(ParseQuery("RETURN MIN(T.price) PATTERN T+ WITHIN 1 min")
                .value()
                .aggregate.kind,
            AggKind::kMin);
  EXPECT_EQ(ParseQuery("RETURN MAX(T.price) PATTERN T+ WITHIN 1 min")
                .value()
                .aggregate.kind,
            AggKind::kMax);
  EXPECT_EQ(ParseQuery("RETURN COUNT(T) PATTERN T+ WITHIN 1 min")
                .value()
                .aggregate.kind,
            AggKind::kCountEvents);
}

TEST(ParserTest, PatternForms) {
  EXPECT_EQ(ParsePattern("SEQ(A, B+)").value().ToString(), "SEQ(A, B+)");
  EXPECT_EQ(ParsePattern("(SEQ(A, B+))+").value().ToString(),
            "(SEQ(A, B+))+");
  EXPECT_EQ(ParsePattern("SEQ(A, B+)+").value().ToString(), "(SEQ(A, B+))+");
  EXPECT_EQ(ParsePattern("A OR B").value().kind, PatternKind::kOr);
  EXPECT_EQ(ParsePattern("SEQ(A,B) AND SEQ(C,D)").value().kind,
            PatternKind::kAnd);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseQuery("PATTERN A WITHIN 1 min").ok());       // no RETURN
  EXPECT_FALSE(ParseQuery("RETURN COUNT(*) WITHIN 1 min").ok()); // no PATTERN
  EXPECT_FALSE(ParseQuery("RETURN COUNT(*) PATTERN A").ok());    // no WITHIN
  EXPECT_FALSE(ParseQuery("RETURN SUM(T) PATTERN T+ WITHIN 1 min").ok());
  EXPECT_FALSE(
      ParseQuery("RETURN COUNT(*) PATTERN SEQ(A,B) WHERE prev.x < next.y "
                 "WITHIN 1 min")
          .ok());  // mismatched edge attributes
}

TEST(ParserTest, RoundTrip) {
  const char* queries[] = {
      "RETURN COUNT(*) PATTERN SEQ(A, B+) WITHIN 5 min",
      "RETURN SUM(B.price) PATTERN SEQ(A, B+, C) WHERE B.price > 3 GROUPBY "
      "district WITHIN 10 min SLIDE 5 min",
      "RETURN COUNT(*) PATTERN (SEQ(A, B+))+ WITHIN 2 min",
      "RETURN COUNT(*) PATTERN SEQ(A, B+, NOT N, C) WHERE [driver] WITHIN 1 "
      "min",
  };
  for (const char* text : queries) {
    Result<Query> first = ParseQuery(text);
    ASSERT_TRUE(first.ok()) << text;
    std::string printed = first.value().ToString();
    Result<Query> second = ParseQuery(printed);
    ASSERT_TRUE(second.ok()) << printed;
    EXPECT_EQ(second.value().ToString(), printed);
    EXPECT_TRUE(second.value().pattern == first.value().pattern);
  }
}

TEST(QueryTest, ResolveValidatesWindow) {
  Schema s;
  Query q = ParseQuery("RETURN COUNT(*) PATTERN A WITHIN 10 min SLIDE 3 min")
                .value();
  EXPECT_FALSE(q.Resolve(&s).ok());  // 10 not a multiple of 3
}

TEST(WorkloadTest, AddAndNames) {
  Schema s;
  Workload w(&s);
  Query q = ParseQuery("RETURN COUNT(*) PATTERN SEQ(A,B+) WITHIN 1 min").value();
  Result<QueryId> id = w.Add(q);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(id.value(), 0);
  EXPECT_EQ(w.query(0).name, "q1");
  EXPECT_EQ(w.size(), 1);
}

// --- AggValue propagation unit checks (the Eq. 1-3 recurrences) ---

TEST(AggValueTest, FinishNodeCountPropagation) {
  AggProfile profile;  // COUNT(*) only
  Event e(1, 0);
  AggValue start = FinishNode(AggValue::Zero(), /*is_start=*/true, e, profile);
  EXPECT_DOUBLE_EQ(start.count, 1.0);
  AggValue acc;
  acc.count = 3.0;
  AggValue mid = FinishNode(acc, /*is_start=*/false, e, profile);
  EXPECT_DOUBLE_EQ(mid.count, 3.0);
  AggValue both = FinishNode(acc, /*is_start=*/true, e, profile);
  EXPECT_DOUBLE_EQ(both.count, 4.0);
}

TEST(AggValueTest, TargetEventFolds) {
  AggProfile p;
  p.need_sum = p.need_count_e = p.need_min = p.need_max = true;
  p.target_type = 2;
  p.target_attr = 0;
  Event e(1, 2, {7.5});
  AggValue acc;
  acc.count = 2.0;
  acc.sum = 10.0;
  acc.count_e = 3.0;
  AggValue v = FinishNode(acc, /*is_start=*/false, e, p);
  EXPECT_DOUBLE_EQ(v.count, 2.0);
  EXPECT_DOUBLE_EQ(v.count_e, 3.0 + 2.0);        // acc + count
  EXPECT_DOUBLE_EQ(v.sum, 10.0 + 7.5 * 2.0);     // acc + val*count
  EXPECT_DOUBLE_EQ(v.min, 7.5);
  EXPECT_DOUBLE_EQ(v.max, 7.5);
  // Non-target type leaves folds untouched.
  Event other(2, 1, {9.0});
  AggValue u = FinishNode(acc, false, other, p);
  EXPECT_DOUBLE_EQ(u.sum, 10.0);
  EXPECT_DOUBLE_EQ(u.count_e, 3.0);
}

TEST(AggValueTest, ZeroCountExcludesMinMax) {
  AggProfile p;
  p.need_min = true;
  p.target_type = 0;
  p.target_attr = 0;
  Event e(1, 0, {4.0});
  AggValue v = FinishNode(AggValue::Zero(), /*is_start=*/false, e, p);
  EXPECT_TRUE(std::isinf(v.min));  // no trend ends here
}

TEST(AggValueTest, ExtractResultPerKind) {
  AggValue v;
  v.count = 5;
  v.sum = 20;
  v.count_e = 4;
  v.min = 1;
  v.max = 9;
  EXPECT_DOUBLE_EQ(ExtractResult(v, AggKind::kCountTrends), 5);
  EXPECT_DOUBLE_EQ(ExtractResult(v, AggKind::kCountEvents), 4);
  EXPECT_DOUBLE_EQ(ExtractResult(v, AggKind::kSum), 20);
  EXPECT_DOUBLE_EQ(ExtractResult(v, AggKind::kAvg), 5);
  EXPECT_DOUBLE_EQ(ExtractResult(v, AggKind::kMin), 1);
  EXPECT_DOUBLE_EQ(ExtractResult(v, AggKind::kMax), 9);
  EXPECT_DOUBLE_EQ(ExtractResult(AggValue::Zero(), AggKind::kAvg), 0.0);
}

}  // namespace
}  // namespace hamlet
