// White-box behaviour tests of the HAMLET engine beyond value equivalence:
// split/merge mechanics, snapshot lifecycle and GC, horizon pruning,
// window-scoped negation, divergent-membership snapshots, memory accounting.
#include <gtest/gtest.h>

#include "src/brute/enumerator.h"
#include "src/hamlet/batch_eval.h"
#include "src/optimizer/policies.h"
#include "src/query/parser.h"
#include "src/stream/stream_builder.h"

namespace hamlet {
namespace {

class BehaviorFixture : public ::testing::Test {
 protected:
  WorkloadPlan Plan(std::initializer_list<const char*> queries) {
    for (const char* text : queries) {
      Query q = ParseQuery(text).value();
      HAMLET_CHECK(workload_.Add(q).ok());
    }
    Result<WorkloadPlan> plan = AnalyzeWorkload(workload_);
    HAMLET_CHECK(plan.ok());
    return std::move(plan).value();
  }
  Schema schema_;
  Workload workload_{&schema_};
};

// A policy that alternates share/split per decision, forcing the Fig. 6
// split-then-merge machinery to execute.
class AlternatingPolicy : public SharingPolicy {
 public:
  SharingDecision Decide(const std::vector<int>& members,
                         const BurstStats& stats) override {
    (void)stats;
    SharingDecision d;
    if (++calls_ % 2 == 0) {
      for (int q : members) d.shared.Insert(q);
    }
    return d;
  }
  const char* name() const override { return "alternating"; }

 private:
  int calls_ = 0;
};

TEST_F(BehaviorFixture, SplitMergeCycleStaysCorrect) {
  WorkloadPlan plan = Plan({
      "RETURN COUNT(*) PATTERN SEQ(A, B+) WITHIN 1 min",
      "RETURN COUNT(*) PATTERN SEQ(C, B+) WITHIN 1 min",
  });
  StreamBuilder sb(&schema_);
  for (int i = 0; i < 4; ++i) sb.Add("A").Add("C").AddRun(3, "B");
  EventVector ev = sb.Take();

  AlternatingPolicy alternating;
  BatchResult alt = EvalHamletBatch(plan, ev, &alternating);
  // The forced alternation exercises merge (solo -> shared, creating a
  // consolidating snapshot, Fig. 6(f)) and split (shared -> solo, Fig. 6(d)).
  EXPECT_GT(alt.stats.splits, 0);
  EXPECT_GT(alt.stats.merges, 0);
  for (int i = 0; i < plan.num_exec(); ++i) {
    EXPECT_DOUBLE_EQ(alt.exec_values[static_cast<size_t>(i)],
                     BruteForceEval(plan.exec_queries[static_cast<size_t>(i)],
                                    ev)
                         .value()
                         .value);
  }
}

TEST_F(BehaviorFixture, DivergentMembershipCreatesZeroValuedSnapshots) {
  // q1 filters B.v > 5; a burst mixing passing and failing B's forces
  // event-level snapshots whose value is zero for the non-matching query.
  WorkloadPlan plan = Plan({
      "RETURN COUNT(*) PATTERN SEQ(A, B+) WHERE B.v > 5 WITHIN 1 min",
      "RETURN COUNT(*) PATTERN SEQ(C, B+) WITHIN 1 min",
  });
  AttrId v = schema_.FindAttr("v");
  TypeId A = schema_.FindType("A"), B = schema_.FindType("B"),
         C = schema_.FindType("C");
  EventVector ev;
  Event a(1, A);
  a.set_attr(v, 0);
  Event c(2, C);
  c.set_attr(v, 0);
  ev = {a, c};
  double vals[] = {9, 2, 7};  // middle one diverges
  for (int i = 0; i < 3; ++i) {
    Event b(3 + i, B);
    b.set_attr(v, vals[i]);
    ev.push_back(b);
  }
  AlwaysSharePolicy always;
  BatchResult r = EvalHamletBatch(plan, ev, &always);
  EXPECT_GT(r.stats.event_snapshots, 0);
  // q1 sees only b(9) and b(7): trends (a,b9),(a,b7),(a,b9,b7).
  EXPECT_DOUBLE_EQ(r.exec_values[0], 3.0);
  // q2 sees all three: 2^3 - 1 = 7.
  EXPECT_DOUBLE_EQ(r.exec_values[1], 7.0);
}

TEST_F(BehaviorFixture, HorizonPruningBoundsMemoryAcrossPanes) {
  WorkloadPlan plan = Plan({
      "RETURN COUNT(*) PATTERN SEQ(A, B+) WHERE [driver] WITHIN 100 ms",
      "RETURN COUNT(*) PATTERN SEQ(C, B+) WHERE [driver] WITHIN 100 ms",
  });
  AlwaysSharePolicy always;
  HamletEngine engine(plan, plan.AllExec(), &always);
  AttrId driver = schema_.FindAttr("driver");
  TypeId A = schema_.FindType("A"), B = schema_.FindType("B");
  Timestamp t = 0;
  int64_t mem_after_5 = 0;
  std::vector<ContextId> open;
  for (int pane = 0; pane < 40; ++pane) {
    const Timestamp start = pane * 100;
    open.push_back(engine.OpenContext(0, start, start + 100));
    open.push_back(engine.OpenContext(1, start, start + 100));
    engine.OnPaneStart(start);
    for (int i = 0; i < 20; ++i) {
      Event e(++t + start * 0, i == 0 ? A : B);
      e.time = start + i + 1;
      e.set_attr(driver, i % 3);
      engine.OnEvent(e);
    }
    engine.OnPaneEnd();
    // Close the pane's windows (tumbling: both contexts of this pane).
    engine.CloseContext(open[open.size() - 2]);
    engine.CloseContext(open[open.size() - 1]);
    if (pane == 5) mem_after_5 = engine.MemoryBytes();
  }
  // Retained scan history is pruned to the window horizon, so memory must
  // not grow unboundedly with the number of processed panes.
  EXPECT_LT(engine.MemoryBytes(), 3 * mem_after_5);
}

TEST_F(BehaviorFixture, SnapshotStoreDropsClosedContexts) {
  WorkloadPlan plan = Plan({
      "RETURN COUNT(*) PATTERN SEQ(A, B+) WITHIN 1 min",
      "RETURN COUNT(*) PATTERN SEQ(C, B+) WITHIN 1 min",
  });
  AlwaysSharePolicy always;
  HamletEngine engine(plan, plan.AllExec(), &always);
  ContextId c0 = engine.OpenContext(0, 0, 1000);
  ContextId c1 = engine.OpenContext(1, 0, 1000);
  engine.OnPaneStart(0);
  EventVector ev = ParseStreamScript("A C B B B", &schema_);
  for (const Event& e : ev) engine.OnEvent(e);
  engine.OnPaneEnd();
  EXPECT_GT(engine.snapshot_store().num_entries(), 0);
  engine.CloseContext(c0);
  engine.CloseContext(c1);
  EXPECT_EQ(engine.snapshot_store().num_entries(), 0);
}

TEST_F(BehaviorFixture, LeadingNegationIsWindowScoped) {
  // A leading-N before a window's start must not block starts inside it.
  WorkloadPlan plan =
      Plan({"RETURN COUNT(*) PATTERN SEQ(NOT N, A, B+) WITHIN 1 min"});
  NeverSharePolicy never;
  HamletEngine engine(plan, plan.AllExec(), &never);
  TypeId N = schema_.FindType("N"), A = schema_.FindType("A"),
         B = schema_.FindType("B");
  // Pane 1: an N arrives (blocks starts for contexts open now).
  ContextId c_old = engine.OpenContext(0, 0, 100);
  engine.OnPaneStart(0);
  engine.OnEvent(Event(10, N));
  engine.OnEvent(Event(11, A));
  engine.OnEvent(Event(12, B));
  engine.OnPaneEnd();
  EXPECT_DOUBLE_EQ(engine.CloseContext(c_old).value, 0.0);  // blocked
  // Pane 2: a fresh window starts after the N; its A may start trends.
  ContextId c_new = engine.OpenContext(0, 100, 200);
  engine.OnPaneStart(100);
  engine.OnEvent(Event(110, A));
  engine.OnEvent(Event(111, B));
  engine.OnPaneEnd();
  EXPECT_DOUBLE_EQ(engine.CloseContext(c_new).value, 1.0);  // not blocked
}

TEST_F(BehaviorFixture, UnmatchedEventsDoNotEndBursts) {
  // An event failing every member's predicates is invisible (Definition 10:
  // bursts end on *matched* events of other types).
  WorkloadPlan plan = Plan({
      "RETURN COUNT(*) PATTERN SEQ(A, B+) WHERE A.v < 100 WITHIN 1 min",
      "RETURN COUNT(*) PATTERN SEQ(C, B+) WITHIN 1 min",
  });
  AttrId v = schema_.FindAttr("v");
  TypeId A = schema_.FindType("A"), B = schema_.FindType("B"),
         C = schema_.FindType("C");
  EventVector ev;
  Event a1(1, A);
  a1.set_attr(v, 1);
  Event c1(2, C);
  c1.set_attr(v, 1);
  ev = {a1, c1};
  Event b1(3, B), b2(5, B);
  b1.set_attr(v, 1);
  b2.set_attr(v, 1);
  Event a_filtered(4, A);
  a_filtered.set_attr(v, 500);  // fails A.v < 100: must not split the burst
  ev.push_back(b1);
  ev.push_back(a_filtered);
  ev.push_back(b2);
  AlwaysSharePolicy always;
  BatchResult r = EvalHamletBatch(plan, ev, &always);
  // One shared B-burst (not two): the filtered A never closed it.
  EXPECT_EQ(r.stats.graphlets_shared, 1);
  EXPECT_DOUBLE_EQ(r.exec_values[0], 3.0);
  EXPECT_DOUBLE_EQ(r.exec_values[1], 3.0);
}

TEST_F(BehaviorFixture, MemoryAccountingTracksGrowth) {
  WorkloadPlan plan = Plan({
      "RETURN COUNT(*) PATTERN SEQ(A, B+) WITHIN 1 min",
      "RETURN COUNT(*) PATTERN SEQ(C, B+) WITHIN 1 min",
  });
  AlwaysSharePolicy always;
  HamletEngine engine(plan, plan.AllExec(), &always);
  engine.OpenContext(0, 0, 100000);
  engine.OpenContext(1, 0, 100000);
  engine.OnPaneStart(0);
  const int64_t empty = engine.MemoryBytes();
  StreamBuilder sb(&schema_);
  sb.Add("A").Add("C").AddRun(50, "B");
  for (const Event& e : sb.events()) engine.OnEvent(e);
  EXPECT_GT(engine.MemoryBytes(), empty);
}

TEST_F(BehaviorFixture, StatsCountersAreConsistent) {
  WorkloadPlan plan = Plan({
      "RETURN COUNT(*) PATTERN SEQ(A, B+) WITHIN 1 min",
      "RETURN COUNT(*) PATTERN SEQ(C, B+) WITHIN 1 min",
  });
  StreamBuilder sb(&schema_);
  for (int i = 0; i < 5; ++i) sb.Add("A").Add("C").AddRun(3, "B");
  EventVector ev = sb.Take();
  DynamicBenefitPolicy dynamic;
  BatchResult r = EvalHamletBatch(plan, ev, &dynamic);
  EXPECT_EQ(r.stats.events, static_cast<int64_t>(ev.size()));
  EXPECT_LE(r.stats.bursts_shared, r.stats.bursts_total);
  EXPECT_LE(r.stats.graphlets_shared, r.stats.graphlets_opened);
  EXPECT_GE(r.stats.snapshots_created, r.stats.event_snapshots);
  EXPECT_EQ(dynamic.decisions(), r.stats.bursts_total);
}

}  // namespace
}  // namespace hamlet
