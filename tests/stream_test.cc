// Unit tests for src/stream: events, schema, generators, stream builder.
#include <gtest/gtest.h>

#include <map>

#include "src/stream/generators.h"
#include "src/stream/stream_builder.h"

namespace hamlet {
namespace {

TEST(SchemaTest, RegistersAndLooksUp) {
  Schema s;
  TypeId a = s.AddType("A");
  TypeId b = s.AddType("B");
  EXPECT_EQ(s.AddType("A"), a);  // idempotent
  EXPECT_EQ(s.FindType("B"), b);
  EXPECT_EQ(s.FindType("Z"), Schema::kInvalidId);
  EXPECT_EQ(s.TypeName(a), "A");
  AttrId x = s.AddAttr("price");
  EXPECT_EQ(s.FindAttr("price"), x);
  EXPECT_EQ(s.num_types(), 2);
  EXPECT_EQ(s.num_attrs(), 1);
}

TEST(EventTest, AttrAccess) {
  Event e(5, 2, {1.0, 2.5});
  EXPECT_EQ(e.time, 5);
  EXPECT_EQ(e.num_attrs, 2);
  EXPECT_DOUBLE_EQ(e.attr(1), 2.5);
  e.set_attr(4, 9.0);
  EXPECT_EQ(e.num_attrs, 5);
  EXPECT_DOUBLE_EQ(e.attr(4), 9.0);
}

TEST(StreamBuilderTest, AutoTimestampsAndRuns) {
  Schema s;
  EventVector ev = StreamBuilder(&s)
                       .Add("A")
                       .AddRun(3, "B")
                       .Gap(100)
                       .Add("C")
                       .Take();
  ASSERT_EQ(ev.size(), 5u);
  EXPECT_TRUE(IsTimeOrdered(ev));
  EXPECT_EQ(ev[0].type, s.FindType("A"));
  EXPECT_EQ(ev[1].type, s.FindType("B"));
  EXPECT_EQ(ev[3].type, s.FindType("B"));
  EXPECT_EQ(ev[4].time, ev[3].time + 101);
}

TEST(StreamBuilderTest, ScriptParsing) {
  Schema s;
  EventVector ev = ParseStreamScript("A B B C B", &s);
  ASSERT_EQ(ev.size(), 5u);
  EXPECT_EQ(ev[2].type, s.FindType("B"));
  EXPECT_EQ(ev[4].time, 4);
}

class GeneratorParamTest : public ::testing::TestWithParam<const char*> {};

TEST_P(GeneratorParamTest, ProducesOrderedDeterministicStreams) {
  auto gen = MakeGenerator(GetParam());
  ASSERT_NE(gen, nullptr);
  GeneratorConfig cfg;
  cfg.seed = 99;
  cfg.events_per_minute = 2000;
  cfg.duration_minutes = 1;
  cfg.num_groups = 3;
  EventVector a = gen->Generate(cfg);
  EXPECT_EQ(a.size(), 2000u);
  EXPECT_TRUE(IsTimeOrdered(a));
  // Strictly increasing (engines require it).
  for (size_t i = 1; i < a.size(); ++i) EXPECT_LT(a[i - 1].time, a[i].time);
  // Deterministic per seed.
  auto gen2 = MakeGenerator(GetParam());
  EventVector b = gen2->Generate(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].type, b[i].type);
  }
  // Types and groups within bounds.
  for (const Event& e : a) {
    EXPECT_GE(e.type, 0);
    EXPECT_LT(e.type, gen->schema().num_types());
    EXPECT_GE(e.attr(0), 0.0);
    EXPECT_LT(e.attr(0), cfg.num_groups);
  }
}

TEST_P(GeneratorParamTest, BurstinessControlsRunLengths) {
  auto gen = MakeGenerator(GetParam());
  GeneratorConfig smooth;
  smooth.seed = 5;
  smooth.events_per_minute = 4000;
  smooth.burstiness = 0.1;
  smooth.num_groups = 1;
  GeneratorConfig bursty = smooth;
  bursty.burstiness = 0.95;
  auto mean_run = [](const EventVector& ev) {
    double runs = 1, events = static_cast<double>(ev.size());
    for (size_t i = 1; i < ev.size(); ++i) {
      if (ev[i].type != ev[i - 1].type) ++runs;
    }
    return events / runs;
  };
  EXPECT_GT(mean_run(gen->Generate(bursty)),
            2.0 * mean_run(gen->Generate(smooth)));
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, GeneratorParamTest,
                         ::testing::Values("ridesharing", "nyc_taxi",
                                           "smart_home", "stock"));

TEST(GeneratorTest, UnknownDatasetReturnsNull) {
  EXPECT_EQ(MakeGenerator("no_such_dataset"), nullptr);
}

TEST(GeneratorTest, GroupsAreBalancedRoughly) {
  auto gen = MakeGenerator("stock");
  GeneratorConfig cfg;
  cfg.events_per_minute = 8000;
  cfg.num_groups = 4;
  EventVector ev = gen->Generate(cfg);
  std::map<int, int> counts;
  for (const Event& e : ev) counts[static_cast<int>(e.attr(0))]++;
  ASSERT_EQ(counts.size(), 4u);
  for (const auto& [g, c] : counts) {
    EXPECT_GT(c, 8000 / 4 / 2) << "group " << g;
  }
}

}  // namespace
}  // namespace hamlet
