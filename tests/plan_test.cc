// Unit tests for src/plan: pattern compilation, templates (paper Fig. 3/8),
// merged template, sharability analysis (Definitions 4/5), pane gcd.
#include <gtest/gtest.h>

#include "src/plan/workload_plan.h"
#include "src/query/parser.h"

namespace hamlet {
namespace {

Pattern Parse(const std::string& text, Schema* s) {
  Pattern p = ParsePattern(text).value();
  HAMLET_CHECK(p.Resolve(s).ok());
  return p;
}

TEST(CompilePatternTest, LinearForms) {
  Schema s;
  CompiledPattern c = CompilePattern(Parse("SEQ(A, B+, C)", &s), s).value();
  EXPECT_EQ(c.composition, CompositionKind::kSingle);
  ASSERT_EQ(c.branches.size(), 1u);
  const LinearPattern& p = c.branches[0];
  EXPECT_EQ(p.num_positions(), 3);
  EXPECT_FALSE(p.elements[0].kleene);
  EXPECT_TRUE(p.elements[1].kleene);
  EXPECT_FALSE(p.group_kleene);
}

TEST(CompilePatternTest, NegationPositions) {
  Schema s;
  LinearPattern p =
      CompilePattern(Parse("SEQ(NOT L, A, NOT N, B+, NOT T)", &s), s)
          .value()
          .branches[0];
  ASSERT_EQ(p.negations.size(), 3u);
  EXPECT_EQ(p.negations[0].after_position, -1);  // leading
  EXPECT_EQ(p.negations[1].after_position, 0);   // between A and B+
  EXPECT_EQ(p.negations[2].after_position, 1);   // trailing
}

TEST(CompilePatternTest, GroupKleene) {
  Schema s;
  LinearPattern p =
      CompilePattern(Parse("(SEQ(A, B+))+", &s), s).value().branches[0];
  EXPECT_TRUE(p.group_kleene);
  EXPECT_EQ(p.num_positions(), 2);
}

TEST(CompilePatternTest, RejectsUnsupported) {
  Schema s;
  // Duplicate type.
  EXPECT_FALSE(CompilePattern(Parse("SEQ(A, B+, A)", &s), s).ok());
  // Nested Kleene below top level.
  EXPECT_FALSE(CompilePattern(Parse("SEQ(A, (SEQ(B, C+))+)", &s), s).ok());
  // OR with overlapping non-identical branches.
  EXPECT_FALSE(CompilePattern(Parse("SEQ(A,B) OR SEQ(B,C)", &s), s).ok());
  // Negation inside group Kleene.
  EXPECT_FALSE(CompilePattern(Parse("(SEQ(A, NOT N, B+))+", &s), s).ok());
}

TEST(CompilePatternTest, OrAndBranches) {
  Schema s;
  CompiledPattern c =
      CompilePattern(Parse("SEQ(A,B+) OR SEQ(C,D+)", &s), s).value();
  EXPECT_EQ(c.composition, CompositionKind::kOr);
  EXPECT_EQ(c.branches.size(), 2u);
  EXPECT_FALSE(c.branches_identical);
  CompiledPattern same =
      CompilePattern(Parse("SEQ(A,B+) AND SEQ(A,B+)", &s), s).value();
  EXPECT_TRUE(same.branches_identical);
}

TEST(TemplateTest, PredecessorTypesMatchPaperExample2) {
  // Paper Example 2: q1 = SEQ(A, B+): pt(B) = {A, B}, pt(A) = {},
  // start(q1) = {A}, end(q1) = {B}.
  Schema s;
  LinearPattern p =
      CompilePattern(Parse("SEQ(A, B+)", &s), s).value().branches[0];
  TemplateInfo t = BuildTemplate(p);
  EXPECT_EQ(t.start_type(), s.FindType("A"));
  EXPECT_EQ(t.end_type(), s.FindType("B"));
  EXPECT_TRUE(t.PredTypesOf(0).empty());
  std::vector<TypeId> pt_b = t.PredTypesOf(1);
  ASSERT_EQ(pt_b.size(), 2u);
  EXPECT_EQ(pt_b[0], s.FindType("A"));
  EXPECT_EQ(pt_b[1], s.FindType("B"));
}

TEST(TemplateTest, GroupKleeneLoopMatchesPaperExample10) {
  // Paper Example 10: (SEQ(A,B+))+ adds pt(A) = {B}.
  Schema s;
  LinearPattern p =
      CompilePattern(Parse("(SEQ(A, B+))+", &s), s).value().branches[0];
  TemplateInfo t = BuildTemplate(p);
  std::vector<TypeId> pt_a = t.PredTypesOf(0);
  ASSERT_EQ(pt_a.size(), 1u);
  EXPECT_EQ(pt_a[0], s.FindType("B"));
}

TEST(TemplateTest, BoundaryNegationLookup) {
  Schema s;
  LinearPattern p =
      CompilePattern(Parse("SEQ(A, NOT N, B+)", &s), s).value().branches[0];
  TemplateInfo t = BuildTemplate(p);
  EXPECT_TRUE(t.BoundaryBlockedBy(1, s.FindType("N")));
  EXPECT_FALSE(t.BoundaryBlockedBy(1, s.FindType("A")));
}

class PlanFixture : public ::testing::Test {
 protected:
  void Add(const std::string& text) {
    Query q = ParseQuery(text).value();
    HAMLET_CHECK(workload_.Add(q).ok());
  }
  WorkloadPlan Analyze() {
    Result<WorkloadPlan> plan = AnalyzeWorkload(workload_);
    HAMLET_CHECK(plan.ok());
    return std::move(plan).value();
  }
  Schema schema_;
  Workload workload_{&schema_};
};

TEST_F(PlanFixture, MergedTemplateMatchesPaperExample3) {
  // Fig. 3(b): q1 = SEQ(A,B+), q2 = SEQ(C,B+); B->B is labeled {q1,q2}.
  Add("RETURN COUNT(*) PATTERN SEQ(A, B+) WITHIN 1 min");
  Add("RETURN COUNT(*) PATTERN SEQ(C, B+) WITHIN 1 min");
  WorkloadPlan plan = Analyze();
  TypeId b = schema_.FindType("B");
  EXPECT_EQ(plan.merged.KleeneQueriesOf(b).Count(), 2);
  EXPECT_EQ(plan.merged.TransitionLabel(schema_.FindType("A"), b).Count(), 1);
  std::vector<TypeId> shareable = plan.merged.ShareableKleeneTypes();
  ASSERT_EQ(shareable.size(), 1u);
  EXPECT_EQ(shareable[0], b);
  ASSERT_EQ(plan.share_groups.size(), 1u);
  EXPECT_EQ(plan.share_groups[0].members.Count(), 2);
  EXPECT_EQ(plan.share_groups[0].mode, PropagationMode::kFastSum);
}

TEST_F(PlanFixture, AggregateCompatibilitySplitsGroups) {
  Add("RETURN COUNT(*) PATTERN SEQ(A, B+) WITHIN 1 min");
  Add("RETURN COUNT(*) PATTERN SEQ(C, B+) WITHIN 1 min");
  Add("RETURN MIN(B.price) PATTERN SEQ(D, B+) WITHIN 1 min");
  Add("RETURN MIN(B.price) PATTERN SEQ(E, B+) WITHIN 1 min");
  WorkloadPlan plan = Analyze();
  // Two separate groups on B+: {q1,q2} COUNT(*) and {q3,q4} MIN.
  ASSERT_EQ(plan.share_groups.size(), 2u);
  EXPECT_EQ(plan.share_groups[0].members.Count(), 2);
  EXPECT_EQ(plan.share_groups[1].members.Count(), 2);
}

TEST_F(PlanFixture, GroupByMustMatchForSharing) {
  Add("RETURN COUNT(*) PATTERN SEQ(A, B+) GROUPBY district WITHIN 1 min");
  Add("RETURN COUNT(*) PATTERN SEQ(C, B+) WITHIN 1 min");
  WorkloadPlan plan = Analyze();
  EXPECT_TRUE(plan.share_groups.empty());
}

TEST_F(PlanFixture, EdgePredicatesForcePerEventSnapshotMode) {
  Add("RETURN COUNT(*) PATTERN SEQ(A, B+) WHERE [driver] WITHIN 1 min");
  Add("RETURN COUNT(*) PATTERN SEQ(C, B+) WITHIN 1 min");
  WorkloadPlan plan = Analyze();
  ASSERT_EQ(plan.share_groups.size(), 1u);
  EXPECT_EQ(plan.share_groups[0].mode, PropagationMode::kPerEventSnapshot);
}

TEST_F(PlanFixture, IdenticalEdgePredicatesUseSharedScanMode) {
  Add("RETURN COUNT(*) PATTERN SEQ(A, B+) WHERE [driver] WITHIN 1 min");
  Add("RETURN COUNT(*) PATTERN SEQ(C, B+) WHERE [driver] WITHIN 1 min");
  WorkloadPlan plan = Analyze();
  ASSERT_EQ(plan.share_groups.size(), 1u);
  EXPECT_EQ(plan.share_groups[0].mode, PropagationMode::kSharedScan);
}

TEST_F(PlanFixture, OrQueryCompilesToTwoExecBranches) {
  Add("RETURN COUNT(*) PATTERN SEQ(A,B+) OR SEQ(C,D+) WITHIN 1 min");
  WorkloadPlan plan = Analyze();
  EXPECT_EQ(plan.num_exec(), 2);
  ASSERT_EQ(plan.compositions.size(), 1u);
  EXPECT_EQ(plan.compositions[0].kind, CompositionKind::kOr);
  EXPECT_EQ(plan.compositions[0].exec_ids.size(), 2u);
}

TEST_F(PlanFixture, OrRequiresCountStar) {
  Query q =
      ParseQuery("RETURN SUM(B.price) PATTERN SEQ(A,B+) OR SEQ(C,D+) WITHIN "
                 "1 min")
          .value();
  ASSERT_TRUE(workload_.Add(q).ok());
  EXPECT_FALSE(AnalyzeWorkload(workload_).ok());
}

TEST_F(PlanFixture, PaneIsGcdOfWindowsAndSlides) {
  Add("RETURN COUNT(*) PATTERN SEQ(A, B+) WITHIN 10 min SLIDE 5 min");
  Add("RETURN COUNT(*) PATTERN SEQ(C, B+) WITHIN 15 min SLIDE 5 min");
  WorkloadPlan plan = Analyze();
  // Paper §3.1's example: gcd(10, 5, 15, 5) minutes = 5 minutes.
  EXPECT_EQ(plan.pane_size, 5 * kMillisPerMinute);
}

TEST(PaneGcdTest, Direct) {
  EXPECT_EQ(PaneGcd({WindowSpec::Tumbling(6), WindowSpec::Sliding(10, 4)}), 2);
  EXPECT_EQ(PaneGcd({WindowSpec::Tumbling(7)}), 7);
}

TEST_F(PlanFixture, ComposeValues) {
  CompositionRule orr;
  orr.kind = CompositionKind::kOr;
  orr.exec_ids = {0, 1};
  EXPECT_DOUBLE_EQ(ComposeQueryValue(orr, {3, 4}), 7);
  orr.branches_identical = true;
  EXPECT_DOUBLE_EQ(ComposeQueryValue(orr, {3, 3}), 3);
  CompositionRule andd;
  andd.kind = CompositionKind::kAnd;
  andd.exec_ids = {0, 1};
  EXPECT_DOUBLE_EQ(ComposeQueryValue(andd, {3, 4}), 12);
  andd.branches_identical = true;
  EXPECT_DOUBLE_EQ(ComposeQueryValue(andd, {4, 4}), 6);  // C(4,2)
}

TEST_F(PlanFixture, DescribeMentionsSharing) {
  Add("RETURN COUNT(*) PATTERN SEQ(A, B+) WITHIN 1 min");
  Add("RETURN COUNT(*) PATTERN SEQ(C, B+) WITHIN 1 min");
  WorkloadPlan plan = Analyze();
  std::string desc = plan.Describe();
  EXPECT_NE(desc.find("share B+"), std::string::npos);
  EXPECT_NE(desc.find("fast_sum"), std::string::npos);
}

}  // namespace
}  // namespace hamlet
