// Burst-adaptive shard ingress + skew-aware routing tests.
//
// Three layers, mirroring the feature's stack:
//  * AdaptiveBatchController unit behavior under a synthetic clock — grow
//    on queue depth, jump on deep occupancy, shrink on opening gaps, decay
//    when drained, bounds always respected. The controller takes time as an
//    argument, so these tests are fully deterministic.
//  * End-to-end equivalence: for every EngineKind and shard count
//    (1/2/4/8), a ShardedSession with adaptive batching (driven by a
//    deliberately erratic fake clock) and one with skew-aware rebalancing
//    (on a hot-key stream) emit exactly the batch Run() result — batch
//    boundaries and key placement may change, WHAT is computed may not.
//  * The new ingress metrics (batch-size histogram, max queue depth,
//    per-shard events, rebalanced keys) and the concurrent-peak-memory
//    merge fix (sequential phases must not sum into a fictitious peak).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <functional>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "src/benchlib/workloads.h"
#include "src/query/parser.h"
#include "src/runtime/executor.h"
#include "src/runtime/sharded_session.h"
#include "src/stream/adaptive_batcher.h"
#include "src/stream/shard_router.h"

namespace hamlet {
namespace {

constexpr EngineKind kAllKinds[] = {
    EngineKind::kHamletDynamic, EngineKind::kHamletStatic,
    EngineKind::kHamletNoShare, EngineKind::kGretaGraph,
    EngineKind::kGretaPrefix,   EngineKind::kTwoStep,
    EngineKind::kSharon};

// ---------------------------------------------------------------------------
// AdaptiveBatchController units (synthetic clock; no threads, no timers).
// ---------------------------------------------------------------------------

TEST(AdaptiveBatchControllerTest, StartsInHandOffPosture) {
  AdaptiveBatchController c(/*max_batch=*/128);
  EXPECT_EQ(c.target(), 1);
  EXPECT_EQ(c.max_batch(), 128);
}

TEST(AdaptiveBatchControllerTest, GrowsWhileQueueBusyAndCapsAtMax) {
  AdaptiveBatchController c(/*max_batch=*/64);
  double t = 0.0;
  // Steady arrivals with a non-empty queue: the worker is behind, so the
  // target must ramp multiplicatively to the ceiling and stay there.
  int last = c.target();
  for (int i = 0; i < 20; ++i) {
    t += 0.001;
    int target = c.Observe(t, /*queue_depth=*/1, /*queue_capacity=*/1024);
    EXPECT_GE(target, last);
    EXPECT_LE(target, 64);
    last = target;
  }
  EXPECT_EQ(last, 64);
}

TEST(AdaptiveBatchControllerTest, DeepQueueJumpsStraightToMax) {
  AdaptiveBatchController c(/*max_batch=*/512);
  // Occupancy >= kDeepOccupancy on the very first gap observation.
  c.Observe(0.0, 0, 1024);
  EXPECT_EQ(c.Observe(0.001, /*queue_depth=*/256, /*queue_capacity=*/1024),
            512);
}

TEST(AdaptiveBatchControllerTest, ShrinksWhenArrivalGapOpens) {
  AdaptiveBatchController c(/*max_batch=*/256);
  double t = 0.0;
  // Burst: establish a small EWMA gap and a maxed target.
  for (int i = 0; i < 20; ++i) {
    t += 0.0001;
    c.Observe(t, 4, 1024);
  }
  ASSERT_EQ(c.target(), 256);
  // Lull: queue drained, gaps far beyond the EWMA. Halving per event must
  // walk the target back to hand-off.
  int prev = c.target();
  for (int i = 0; i < 12; ++i) {
    t += 0.05;  // 500x the burst gap
    int target = c.Observe(t, /*queue_depth=*/0, /*queue_capacity=*/1024);
    EXPECT_LE(target, prev);
    prev = target;
  }
  EXPECT_EQ(prev, 1);
}

TEST(AdaptiveBatchControllerTest, DrainedSteadyArrivalsDecayGently) {
  AdaptiveBatchController c(/*max_batch=*/64);
  double t = 0.0;
  // 100 us cadence: fast enough that a drained queue is not a lull (below
  // kLullGapSeconds, and steady relative to its own EWMA).
  for (int i = 0; i < 12; ++i) {
    t += 0.0001;
    c.Observe(t, 2, 1024);
  }
  ASSERT_EQ(c.target(), 64);
  // Same cadence, queue now drained: no lull gap, so only the gentle decay
  // applies — down, but far slower than halving.
  t += 0.0001;
  const int after_one = c.Observe(t, 0, 1024);
  EXPECT_LE(after_one, 64);
  EXPECT_GT(after_one, 32);
}

TEST(AdaptiveBatchControllerTest, MaxBatchOneIsAlwaysHandOff) {
  AdaptiveBatchController c(/*max_batch=*/1);
  double t = 0.0;
  for (int i = 0; i < 10; ++i) {
    t += 0.001;
    EXPECT_EQ(c.Observe(t, 512, 1024), 1);
  }
}

// ---------------------------------------------------------------------------
// Skew-aware ShardRouter units.
// ---------------------------------------------------------------------------

Event GroupEvent(Timestamp t, int64_t group) {
  Event e(t, /*type=*/0);
  e.set_attr(0, static_cast<double>(group));
  return e;
}

TEST(SkewRouterTest, PureRouterIsUnchangedByRouteCalls) {
  ShardRouter router(/*partition_attr=*/0, /*num_shards=*/4);
  EXPECT_FALSE(router.rebalancing());
  for (int64_t g = 0; g < 32; ++g) {
    Event e = GroupEvent(10 + g, g);
    EXPECT_EQ(router.Route(e), router.ShardOf(e));
    EXPECT_EQ(router.AssignedShard(e), router.ShardOf(e));
  }
  EXPECT_EQ(router.rebalanced_keys(), 0);
}

TEST(SkewRouterTest, HotShardShedsNewKeysAndAssignmentsStick) {
  ShardRouter router(/*partition_attr=*/0, /*num_shards=*/4);
  router.EnableRebalancing(/*threshold_events=*/8);
  ASSERT_TRUE(router.rebalancing());
  const int64_t hot = 7;
  const size_t hot_shard = router.ShardOf(GroupEvent(0, hot));
  // Pin one shard with a hot group.
  for (int i = 0; i < 200; ++i) router.Route(GroupEvent(i, hot));
  EXPECT_EQ(router.AssignedShard(GroupEvent(0, hot)), hot_shard)
      << "existing keys never move";
  // Every NEW key that hashes onto the hot shard must now be diverted
  // (the load lead is 200 >> threshold 8), and its assignment must stick.
  int diverted = 0;
  for (int64_t g = 1000; g < 1100; ++g) {
    Event e = GroupEvent(2000 + g, g);
    const size_t hashed = router.ShardOf(e);
    const size_t routed = router.Route(e);
    if (hashed == hot_shard) {
      EXPECT_NE(routed, hot_shard) << "new key pinned to the hot shard";
      ++diverted;
    }
    EXPECT_EQ(router.AssignedShard(e), routed);
    EXPECT_EQ(router.Route(GroupEvent(5000 + g, g)), routed)
        << "assignment must be sticky";
  }
  EXPECT_GT(diverted, 0) << "no new key hashed onto the hot shard — "
                            "test stream too small";
  EXPECT_EQ(router.rebalanced_keys(), diverted);
}

TEST(SkewRouterTest, CopiesShareRebalanceState) {
  ShardRouter router(/*partition_attr=*/0, /*num_shards=*/4);
  router.EnableRebalancing(/*threshold_events=*/4);
  for (int i = 0; i < 100; ++i) router.Route(GroupEvent(i, 3));
  ShardRouter copy = router;  // a PartitionedBatchCursor holds such a copy
  for (int64_t g = 50; g < 80; ++g) {
    Event e = GroupEvent(1000 + g, g);
    // Route first (it decides the new key's assignment), THEN read the
    // assignment back through the other copy.
    const size_t routed = copy.Route(e);
    EXPECT_EQ(router.AssignedShard(e), routed)
        << "cursor copy diverged from the session's assignments";
  }
  EXPECT_EQ(copy.rebalanced_keys(), router.rebalanced_keys());
}

// ---------------------------------------------------------------------------
// End-to-end equivalence + metrics.
// ---------------------------------------------------------------------------

// Set equality via the shared normalized order (one emission per
// (query, group, window)).
void ExpectSameEmissionSet(const std::vector<Emission>& expected,
                           const std::vector<Emission>& actual,
                           const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    const Emission& a = expected[i];
    const Emission& b = actual[i];
    const std::string at = label + " emission #" + std::to_string(i);
    EXPECT_EQ(a.query, b.query) << at;
    EXPECT_EQ(a.group_key, b.group_key) << at;
    EXPECT_EQ(a.window_start, b.window_start) << at;
    EXPECT_EQ(a.window_end, b.window_end) << at;
    if (!(std::isnan(a.value) && std::isnan(b.value))) {
      EXPECT_EQ(a.value, b.value) << at;
    }
  }
}

struct ShardedResult {
  std::vector<Emission> emissions;
  RunMetrics metrics;
};

// Pushes `ev` through a ShardedSession in mixed granularity with occasional
// interleaved watermarks and a trailing one, then Close. `config` arrives
// fully prepared (shard count, batching mode, rebalance threshold, clock).
ShardedResult RunSharded(const WorkloadPlan& plan, const RunConfig& config,
                         const EventVector& ev, uint64_t chunk_seed) {
  CollectingSink sink;
  Result<std::unique_ptr<ShardedSession>> session =
      ShardedSession::Open(plan, config, &sink);
  HAMLET_CHECK(session.ok());
  Rng rng(chunk_seed);
  size_t i = 0;
  while (i < ev.size()) {
    size_t len = 1 + static_cast<size_t>(rng.NextBelow(100));
    len = std::min(len, ev.size() - i);
    Status s = len == 1 ? session.value()->Push(ev[i])
                        : session.value()->PushBatch(
                              std::span<const Event>(ev.data() + i, len));
    EXPECT_TRUE(s.ok()) << s.ToString();
    i += len;
    if (i < ev.size() && rng.NextBelow(8) == 0) {
      EXPECT_TRUE(session.value()->AdvanceTo(ev[i].time - 1).ok());
    }
  }
  if (!ev.empty()) {
    EXPECT_TRUE(session.value()->AdvanceTo(ev.back().time).ok());
  }
  ShardedResult out;
  out.metrics = session.value()->Close().value();
  out.emissions = sink.Take();
  return out;
}

EventVector RidesharingStream(uint64_t seed, int num_groups) {
  GeneratorConfig gen;
  gen.seed = seed;
  gen.events_per_minute = 600;
  gen.duration_minutes = 1;
  gen.num_groups = num_groups;
  gen.burstiness = 0.6;
  gen.max_burst = 8;
  return MakeGenerator("ridesharing")->Generate(gen);
}

/// A deliberately erratic fake clock: mostly tight 100 us steps with a long
/// 50 ms "lull" gap every 97th read. The call counter is shared and atomic
/// — the RunConfig (and its clock) is copied into every per-shard Session,
/// whose worker threads read the clock concurrently with the front — and
/// the timestamp is a pure function of the counter, so every reader sees a
/// monotonic timeline. Exercises the controller's grow, shrink and decay
/// paths inside a real session.
std::function<double()> ErraticClock() {
  auto calls = std::make_shared<std::atomic<int64_t>>(0);
  return [calls] {
    const int64_t n = calls->fetch_add(1, std::memory_order_relaxed) + 1;
    return 0.0001 * static_cast<double>(n) +
           0.05 * static_cast<double>(n / 97);
  };
}

// The acceptance property: adaptive batching changes only WHERE batch
// boundaries fall, never what is computed — for every engine and shard
// count, against both the batch Run() reference and the fixed-batch run.
TEST(AdaptiveIngressEquivalence, AllEnginesAllShardCounts) {
  BenchWorkload bw =
      MakeWorkload1("ridesharing", 6, /*window_ms=*/5 * kMillisPerSecond);
  EventVector ev = RidesharingStream(/*seed=*/191, /*num_groups=*/8);
  for (EngineKind kind : kAllKinds) {
    RunConfig config;
    config.kind = kind;
    StreamExecutor executor(*bw.plan, config);
    RunOutput batch = executor.Run(ev);
    ASSERT_TRUE(batch.status.ok()) << batch.status.ToString();
    ASSERT_GT(batch.emissions.size(), 0u) << EngineKindName(kind);
    for (int shards : {1, 2, 4, 8}) {
      RunConfig fixed = config;
      fixed.num_shards = shards;
      fixed.shard_batch_size = 32;
      RunConfig adaptive = fixed;
      adaptive.adaptive_batching = true;
      adaptive.clock_override = ErraticClock();
      const std::string label = std::string(EngineKindName(kind)) + "/N=" +
                                std::to_string(shards);
      ShardedResult fixed_run = RunSharded(*bw.plan, fixed, ev, 7);
      ShardedResult adaptive_run = RunSharded(*bw.plan, adaptive, ev, 7);
      ExpectSameEmissionSet(batch.emissions, fixed_run.emissions,
                            label + "/fixed");
      ExpectSameEmissionSet(batch.emissions, adaptive_run.emissions,
                            label + "/adaptive");
      EXPECT_EQ(fixed_run.metrics.events, adaptive_run.metrics.events)
          << label;
      EXPECT_EQ(fixed_run.metrics.emissions, adaptive_run.metrics.emissions)
          << label;
    }
  }
}

// Same property for skew-aware routing on a hot-key stream: rebalancing
// moves whole groups, so every per-group result is untouched.
TEST(RebalancedRoutingEquivalence, AllEnginesAllShardCounts) {
  BenchWorkload bw =
      MakeWorkload1("ridesharing", 6, /*window_ms=*/5 * kMillisPerSecond);
  EventVector ev = RidesharingStream(/*seed=*/193, /*num_groups=*/8);
  const AttrId group_attr = bw.plan->exec_queries[0].group_by;
  ASSERT_NE(group_attr, Schema::kInvalidId);
  SkewGroups(ev, group_attr, /*num_groups=*/24, /*hot_fraction=*/0.5,
             /*seed=*/5);
  for (EngineKind kind : kAllKinds) {
    RunConfig config;
    config.kind = kind;
    StreamExecutor executor(*bw.plan, config);
    RunOutput batch = executor.Run(ev);
    ASSERT_TRUE(batch.status.ok()) << batch.status.ToString();
    for (int shards : {1, 2, 4, 8}) {
      RunConfig rebal = config;
      rebal.num_shards = shards;
      rebal.shard_batch_size = 16;
      rebal.shard_rebalance_threshold = 4;  // aggressive: maximize diversions
      const std::string label = std::string(EngineKindName(kind)) +
                                "/rebal/N=" + std::to_string(shards);
      ShardedResult run = RunSharded(*bw.plan, rebal, ev, 11);
      ExpectSameEmissionSet(batch.emissions, run.emissions, label);
      EXPECT_EQ(batch.metrics.events, run.metrics.events) << label;
      if (shards == 1) {
        EXPECT_EQ(run.metrics.rebalanced_keys, 0) << label;
      }
    }
  }
}

// The hot-key stream must actually trigger diversions at >1 shard, and the
// merged metrics must expose them alongside the per-shard event counts.
TEST(RebalancedRoutingEquivalence, SkewedStreamRebalancesAndReportsShares) {
  BenchWorkload bw =
      MakeWorkload1("ridesharing", 6, /*window_ms=*/5 * kMillisPerSecond);
  EventVector ev = RidesharingStream(/*seed=*/197, /*num_groups=*/8);
  const AttrId group_attr = bw.plan->exec_queries[0].group_by;
  SkewGroups(ev, group_attr, /*num_groups=*/24, /*hot_fraction=*/0.5,
             /*seed=*/9);
  RunConfig config;
  config.kind = EngineKind::kHamletDynamic;
  config.num_shards = 4;
  config.shard_rebalance_threshold = 4;
  ShardedResult run = RunSharded(*bw.plan, config, ev, 13);
  EXPECT_GT(run.metrics.rebalanced_keys, 0)
      << "a 50% hot key over 24 progressively introduced groups must divert "
         "at least one new key";
  ASSERT_EQ(run.metrics.shard_events.size(), 4u);
  EXPECT_EQ(std::accumulate(run.metrics.shard_events.begin(),
                            run.metrics.shard_events.end(), int64_t{0}),
            run.metrics.events);
}

// PushPrePartitioned under rebalancing: the caller's placement binds a key
// on first sight, but must AGREE with existing assignments — a chunk built
// with a pure-hash router that contradicts a rebalanced assignment would
// split one group across two shards (duplicate per-window results), so it
// is rejected before anything commits.
TEST(RebalancedRoutingEquivalence, PrePartitionedRespectsBindings) {
  Schema schema;
  schema.AddAttr("v");
  schema.AddAttr("g");
  Workload workload(&schema);
  ASSERT_TRUE(workload
                  .Add(ParseQuery("RETURN COUNT(*) PATTERN SEQ(A, B+) "
                                  "GROUPBY g WITHIN 100 ms")
                           .value())
                  .ok());
  WorkloadPlan plan = AnalyzeWorkload(workload).value();
  const TypeId type_a = schema.AddType("A");
  auto make = [&](Timestamp t, int64_t g) {
    Event e(t, type_a);
    e.set_attr(0, 1.0);
    e.set_attr(1, static_cast<double>(g));
    return e;
  };
  RunConfig config;
  config.num_shards = 4;
  config.shard_rebalance_threshold = 1;
  Result<std::unique_ptr<ShardedSession>> session =
      ShardedSession::Open(plan, config, nullptr);
  ASSERT_TRUE(session.ok());
  const ShardRouter& router = session.value()->router();
  ShardRouter pure = ShardedSession::RouterFor(plan, 4).value();
  // Load one shard with a hot key so the rebalancer has a reason to divert.
  const int64_t hot = 5;
  Timestamp t = 1;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(session.value()->Push(make(t++, hot)).ok());
  }
  const size_t hot_shard = router.AssignedShard(make(0, hot));
  // A fresh key hashing onto the hot shard gets diverted by Push traffic.
  int64_t diverted = -1;
  for (int64_t g = 100; g < 200; ++g) {
    if (pure.ShardOf(make(0, g)) == hot_shard) {
      diverted = g;
      break;
    }
  }
  ASSERT_NE(diverted, -1);
  ASSERT_TRUE(session.value()->Push(make(t++, diverted)).ok());
  ASSERT_NE(router.AssignedShard(make(0, diverted)), hot_shard);
  // A pure-hash chunk would put the diverted key back on its hash shard:
  // kInvalidArgument, nothing committed.
  PartitionedBatch bad(4);
  bad[hot_shard].push_back(make(t, diverted));
  Status split = session.value()->PushPrePartitioned(std::move(bad));
  ASSERT_FALSE(split.ok());
  EXPECT_EQ(split.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(split.message().find("already-routed"), std::string::npos);
  // A brand-new key placed by the caller binds on first sight — even on
  // the hot shard, where the rebalancer itself would not have put it —
  // and later Push traffic follows the binding.
  int64_t fresh = -1;
  for (int64_t g = 200; g < 300; ++g) {
    if (pure.ShardOf(make(0, g)) == hot_shard) {
      fresh = g;
      break;
    }
  }
  ASSERT_NE(fresh, -1);
  PartitionedBatch good(4);
  good[hot_shard].push_back(make(t++, fresh));
  ASSERT_TRUE(session.value()->PushPrePartitioned(std::move(good)).ok());
  EXPECT_EQ(router.AssignedShard(make(0, fresh)), hot_shard);
  ASSERT_TRUE(session.value()->Push(make(t++, fresh)).ok());
  EXPECT_EQ(router.AssignedShard(make(0, fresh)), hot_shard);
  ASSERT_TRUE(session.value()->Close().ok());
}

TEST(IngressMetricsTest, BatchHistogramCountsFlushes) {
  BenchWorkload bw =
      MakeWorkload1("ridesharing", 4, /*window_ms=*/2 * kMillisPerSecond);
  EventVector ev = RidesharingStream(/*seed=*/199, /*num_groups=*/8);
  RunConfig config;
  config.kind = EngineKind::kHamletDynamic;
  config.num_shards = 3;
  config.shard_batch_size = 8;
  ShardedResult run = RunSharded(*bw.plan, config, ev, 17);
  ASSERT_FALSE(run.metrics.shard_batch_hist.empty());
  int64_t batches = 0;
  for (size_t b = 0; b < run.metrics.shard_batch_hist.size(); ++b) {
    batches += run.metrics.shard_batch_hist[b];
    // batch_size=8 caps every flush at 8 events: buckets past [8,16) must
    // stay empty.
    if (b > 3) {
      EXPECT_EQ(run.metrics.shard_batch_hist[b], 0) << b;
    }
  }
  // Every event left staging in exactly one flushed batch of <= 8 events.
  EXPECT_GE(batches,
            run.metrics.events / config.shard_batch_size);
  EXPECT_LE(batches, run.metrics.events);
}

TEST(IngressMetricsTest, QueueDepthObservedUnderBackpressure) {
  BenchWorkload bw =
      MakeWorkload1("ridesharing", 4, /*window_ms=*/2 * kMillisPerSecond);
  EventVector ev = RidesharingStream(/*seed=*/211, /*num_groups=*/8);
  RunConfig config;
  config.kind = EngineKind::kHamletDynamic;
  config.num_shards = 2;
  config.shard_batch_size = 1;  // one message per event: maximal traffic
  config.shard_queue_capacity = 2;
  ShardedResult run = RunSharded(*bw.plan, config, ev, 19);
  // A 2-slot queue fed per-event batches must have been observed non-empty
  // (and at most at capacity).
  EXPECT_GE(run.metrics.max_queue_depth_msgs, 1);
  EXPECT_LE(run.metrics.max_queue_depth_msgs, 2);
}

// The concurrent-peak fix: groups active in disjoint phases (windows closed
// and workers drained between phases) must NOT have their per-shard peaks
// summed — the merged peak is the footprint that actually coexisted, which
// here equals the single-threaded run's peak exactly.
TEST(ConcurrentPeakMemoryTest, SequentialPhasesDoNotSumIntoThePeak) {
  Schema schema;
  schema.AddAttr("v");
  schema.AddAttr("g");
  Workload workload(&schema);
  ASSERT_TRUE(workload
                  .Add(ParseQuery("RETURN COUNT(*) PATTERN SEQ(A, B+) "
                                  "GROUPBY g WITHIN 500 ms")
                           .value())
                  .ok());
  WorkloadPlan plan = AnalyzeWorkload(workload).value();
  const TypeId type_a = schema.AddType("A");
  const TypeId type_b = schema.AddType("B");
  // 8 groups, each alive in its own 1000 ms phase: one A, then 280 Bs.
  // Identical per-group structure => identical per-group engine peaks.
  constexpr int kPhaseEvents = 281;
  EventVector ev;
  std::vector<Timestamp> phase_ends;
  for (int64_t g = 0; g < 8; ++g) {
    const Timestamp base = g * 1000;
    Event a(base + 10, type_a);
    a.set_attr(0, 1.0);
    a.set_attr(1, static_cast<double>(g));
    ev.push_back(a);
    for (int i = 0; i < kPhaseEvents - 1; ++i) {
      Event b(base + 11 + i, type_b);
      b.set_attr(0, 1.0);
      b.set_attr(1, static_cast<double>(g));
      ev.push_back(b);
    }
    phase_ends.push_back(base + 700);
  }
  // GRETA graph mode holds one node per in-window event, all inside the
  // window slot, which is destroyed at window close — a phase's ~281-node
  // footprint dwarfs the tiny empty slots that linger for known groups, and
  // it genuinely vanishes between phases.
  RunConfig config;
  config.kind = EngineKind::kGretaGraph;

  // Reference: the true total high-water over the whole stream.
  Result<std::unique_ptr<Session>> single =
      Session::Open(plan, config, nullptr);
  ASSERT_TRUE(single.ok());
  {
    size_t i = 0;
    for (int64_t g = 0; g < 8; ++g) {
      for (int k = 0; k < 281; ++k) {
        ASSERT_TRUE(single.value()->Push(ev[i++]).ok());
      }
      ASSERT_TRUE(
          single.value()->AdvanceTo(phase_ends[static_cast<size_t>(g)]).ok());
    }
  }
  const int64_t single_peak =
      single.value()->Close().value().peak_memory_bytes;
  ASSERT_GT(single_peak, 0);

  config.num_shards = 4;
  Result<std::unique_ptr<ShardedSession>> sharded =
      ShardedSession::Open(plan, config, nullptr);
  ASSERT_TRUE(sharded.ok());
  {
    size_t i = 0;
    int64_t pushed = 0;
    for (int64_t g = 0; g < 8; ++g) {
      for (int k = 0; k < 281; ++k) {
        ASSERT_TRUE(sharded.value()->Push(ev[i++]).ok());
        ++pushed;
      }
      ASSERT_TRUE(
          sharded.value()->AdvanceTo(phase_ends[static_cast<size_t>(g)]).ok());
      // Drain to quiescence between phases: every event AND the watermark
      // processed (the phase's full windows closed, footprint back to the
      // small empty-slot floor), so no two phases' big states coexist.
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(10);
      for (;;) {
        RunMetrics m = sharded.value()->MetricsSnapshot();
        if (m.events == pushed &&
            m.current_memory_bytes <= single_peak / 2) {
          break;
        }
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "shards never drained";
        std::this_thread::yield();
      }
    }
  }
  RunMetrics merged = sharded.value()->Close().value();
  // Pre-fix this was the SUM of per-shard peaks — with 8 identical groups
  // over 4 shards, ~4x the single-threaded peak. The phases never overlap,
  // so the sampled concurrent high-water mark must stay in the same
  // ballpark as the single-threaded peak (slack for the empty-slot floor
  // and one phase of snapshot-publication lag), far below the sum.
  EXPECT_LE(merged.peak_memory_bytes, single_peak + single_peak / 2);
  EXPECT_GE(merged.peak_memory_bytes, single_peak / 2);
}

}  // namespace
}  // namespace hamlet
