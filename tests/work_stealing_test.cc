// Pane-boundary work stealing tests (RunConfig::work_stealing).
//
// The skew stream is CONSTRUCTED so steals provably occur: three hot keys
// whose hash shard (probed through ShardedSession::RouterFor) is shard 0
// and one key on shard 1, at equal per-key rates, give shard 0 three
// quarters of the load — past steal_imbalance_ratio x the min + floor
// within the first sliding half-window. The suite asserts the steal
// actually executed (RunMetrics::stolen_panes > 0, and 0 with the knob
// off) and that the emission set is bitwise invariant: stealing on ==
// stealing off == single-threaded batch Run, and two stealing runs agree
// with each other including the steal count (the controller sees the
// deterministic staged stream, so its decisions must replay exactly).
//
// Also covered: the knob's compatibility matrix (evict_idle_groups and
// online re-optimization rejected at Open, live churn and
// PushPrePartitioned rejected per call), config validation, the inert
// single-shard case, and stealing under concurrent multi-producer ingest.
//
// Runs under TSan and ASan in CI: the fence/adopt hand-off and the
// fence-ack spin are cross-thread protocol steps.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/query/parser.h"
#include "src/runtime/executor.h"
#include "src/runtime/sharded_session.h"

namespace hamlet {
namespace {

constexpr EngineKind kAllKinds[] = {
    EngineKind::kHamletDynamic, EngineKind::kHamletStatic,
    EngineKind::kHamletNoShare, EngineKind::kGretaGraph,
    EngineKind::kGretaPrefix,   EngineKind::kTwoStep,
    EngineKind::kSharon};

struct ShardedResult {
  std::vector<Emission> emissions;
  RunMetrics metrics;
};

void ExpectSameValue(double a, double b, const std::string& label) {
  if (std::isnan(a) && std::isnan(b)) return;
  EXPECT_EQ(a, b) << label;
}

void ExpectSameEmissionSet(const std::vector<Emission>& expected,
                           const std::vector<Emission>& actual,
                           const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    const Emission& a = expected[i];
    const Emission& b = actual[i];
    const std::string at = label + " emission #" + std::to_string(i);
    EXPECT_EQ(a.query, b.query) << at;
    EXPECT_EQ(a.group_key, b.group_key) << at;
    EXPECT_EQ(a.window_start, b.window_start) << at;
    EXPECT_EQ(a.window_end, b.window_end) << at;
    ExpectSameValue(a.value, b.value, at);
  }
}

class WorkStealingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_.AddAttr("v");
    schema_.AddAttr("g");
    type_a_ = schema_.AddType("A");
    type_b_ = schema_.AddType("B");
    workload_ = std::make_unique<Workload>(&schema_);
    for (const char* text :
         {"RETURN COUNT(*) PATTERN SEQ(A, B+) GROUPBY g WITHIN 30 ms "
          "SLIDE 10 ms",
          "RETURN SUM(B.v) PATTERN SEQ(A, B+) GROUPBY g WITHIN 20 ms "
          "SLIDE 10 ms"}) {
      ASSERT_TRUE(workload_->Add(ParseQuery(text).value()).ok());
    }
    // The plan keeps a pointer into the workload, so both live on the
    // fixture.
    plan_ =
        std::make_unique<WorkloadPlan>(AnalyzeWorkload(*workload_).value());
  }

  Event Make(Timestamp t, TypeId type, int64_t group) {
    Event e(t, type);
    e.set_attr(0, static_cast<double>(t % 7));
    e.set_attr(1, static_cast<double>(group));
    return e;
  }

  // Three keys hashing to shard 0 of a 2-shard router plus one key on
  // shard 1, probed through the session's own route so the skew is real
  // on every platform.
  void FindSkewKeys(std::vector<int64_t>* hot, int64_t* cold) {
    ShardRouter probe = ShardedSession::RouterFor(*plan_, 2).value();
    *cold = -1;
    for (int64_t k = 0; k < 256 && (hot->size() < 3 || *cold < 0); ++k) {
      if (probe.ShardOfKey(k) == 0) {
        if (hot->size() < 3) hot->push_back(k);
      } else if (*cold < 0) {
        *cold = k;
      }
    }
    ASSERT_EQ(hot->size(), 3u);
    ASSERT_GE(*cold, 0);
  }

  // Round-robin over {hot0, hot1, hot2, cold} at one event per ms: shard 0
  // carries 3/4 of the staged load, forever.
  EventVector SkewStream(const std::vector<int64_t>& hot, int64_t cold,
                         int rounds) {
    EventVector ev;
    Timestamp t = 1;
    for (int r = 0; r < rounds; ++r) {
      const TypeId type = (r % 5 == 0) ? type_a_ : type_b_;
      for (int64_t k : {hot[0], hot[1], hot[2], cold}) {
        ev.push_back(Make(t++, type, k));
      }
    }
    return ev;
  }

  ShardedResult RunSharded(RunConfig config, int num_shards,
                           const EventVector& ev) {
    config.num_shards = num_shards;
    CollectingSink sink;
    Result<std::unique_ptr<ShardedSession>> session =
        ShardedSession::Open(*plan_, config, &sink);
    HAMLET_CHECK(session.ok());
    constexpr size_t kChunk = 64;
    for (size_t i = 0; i < ev.size(); i += kChunk) {
      const size_t len = std::min(kChunk, ev.size() - i);
      Status s = session.value()->PushBatch(
          std::span<const Event>(ev.data() + i, len));
      EXPECT_TRUE(s.ok()) << s.ToString();
    }
    EXPECT_TRUE(session.value()->AdvanceTo(ev.back().time).ok());
    ShardedResult out;
    out.metrics = session.value()->Close().value();
    out.emissions = sink.Take();
    return out;
  }

  Schema schema_;
  TypeId type_a_ = 0;
  TypeId type_b_ = 0;
  std::unique_ptr<Workload> workload_;
  std::unique_ptr<WorkloadPlan> plan_;
};

TEST_F(WorkStealingTest, StealsFireAndEmissionsAreInvariantAllEngines) {
  std::vector<int64_t> hot;
  int64_t cold = -1;
  FindSkewKeys(&hot, &cold);
  EventVector ev = SkewStream(hot, cold, /*rounds=*/1200);
  for (EngineKind kind : kAllKinds) {
    RunConfig config;
    config.kind = kind;
    StreamExecutor executor(*plan_, config);
    RunOutput batch = executor.Run(ev);
    ASSERT_TRUE(batch.status.ok()) << batch.status.ToString();
    ASSERT_GT(batch.emissions.size(), 0u) << EngineKindName(kind);

    const std::string label = EngineKindName(kind);
    ShardedResult off = RunSharded(config, 2, ev);
    ExpectSameEmissionSet(batch.emissions, off.emissions, label + "/off");
    EXPECT_EQ(off.metrics.stolen_panes, 0) << label;

    config.work_stealing = true;
    ShardedResult on = RunSharded(config, 2, ev);
    ExpectSameEmissionSet(batch.emissions, on.emissions, label + "/on");
    EXPECT_GT(on.metrics.stolen_panes, 0)
        << label << ": the constructed skew must force at least one steal";
    EXPECT_EQ(batch.metrics.emissions, on.metrics.emissions) << label;

    // Determinism: the controller reads the deterministic staged stream,
    // so a replay reproduces the steals exactly — count included.
    ShardedResult again = RunSharded(config, 2, ev);
    ExpectSameEmissionSet(on.emissions, again.emissions, label + "/replay");
    EXPECT_EQ(on.metrics.stolen_panes, again.metrics.stolen_panes) << label;
  }
}

TEST_F(WorkStealingTest, FourShardsStayInvariant) {
  std::vector<int64_t> hot;
  int64_t cold = -1;
  FindSkewKeys(&hot, &cold);
  EventVector ev = SkewStream(hot, cold, 1200);
  RunConfig config;
  config.kind = EngineKind::kHamletDynamic;
  StreamExecutor executor(*plan_, config);
  RunOutput batch = executor.Run(ev);
  ASSERT_TRUE(batch.status.ok());
  config.work_stealing = true;
  ShardedResult on = RunSharded(config, 4, ev);
  ExpectSameEmissionSet(batch.emissions, on.emissions, "N=4/on");
}

TEST_F(WorkStealingTest, SingleShardIsInert) {
  std::vector<int64_t> hot;
  int64_t cold = -1;
  FindSkewKeys(&hot, &cold);
  EventVector ev = SkewStream(hot, cold, 300);
  RunConfig config;
  config.kind = EngineKind::kGretaGraph;
  config.work_stealing = true;
  StreamExecutor executor(*plan_, config);
  RunOutput batch = executor.Run(ev);
  ASSERT_TRUE(batch.status.ok());
  ShardedResult one = RunSharded(config, 1, ev);
  ExpectSameEmissionSet(batch.emissions, one.emissions, "N=1");
  EXPECT_EQ(one.metrics.stolen_panes, 0);
}

TEST_F(WorkStealingTest, StealingUnderMultiProducerIngest) {
  std::vector<int64_t> hot;
  int64_t cold = -1;
  FindSkewKeys(&hot, &cold);
  EventVector ev = SkewStream(hot, cold, 1200);
  RunConfig config;
  config.kind = EngineKind::kHamletDynamic;
  StreamExecutor executor(*plan_, config);
  RunOutput batch = executor.Run(ev);
  ASSERT_TRUE(batch.status.ok());

  config.work_stealing = true;
  config.num_shards = 2;
  CollectingSink sink;
  auto session = ShardedSession::Open(*plan_, config, &sink).value();
  constexpr int kProducers = 2;
  std::vector<std::unique_ptr<ShardedSession::Producer>> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.push_back(session->AddProducer().value());
  }
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (size_t i = static_cast<size_t>(p); i < ev.size(); i += kProducers) {
        ASSERT_TRUE(producers[static_cast<size_t>(p)]->Push(ev[i]).ok());
      }
      ASSERT_TRUE(producers[static_cast<size_t>(p)]
                      ->AdvanceTo(ev.back().time)
                      .ok());
      ASSERT_TRUE(producers[static_cast<size_t>(p)]->Close().ok());
    });
  }
  for (std::thread& t : threads) t.join();
  RunMetrics metrics = session->Close().value();
  ExpectSameEmissionSet(batch.emissions, sink.Take(), "mp+steal");
  EXPECT_GT(metrics.stolen_panes, 0);
}

TEST_F(WorkStealingTest, CompatibilityMatrixRejectedAtOpen) {
  CollectingSink sink;
  RunConfig config;
  config.kind = EngineKind::kHamletDynamic;
  config.num_shards = 2;
  config.work_stealing = true;

  RunConfig evict = config;
  evict.evict_idle_groups = true;
  auto r1 = ShardedSession::Open(*plan_, evict, &sink);
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kUnsupported)
      << r1.status().ToString();

  RunConfig reopt = config;
  reopt.reoptimize_every_panes = 4;
  auto r2 = ShardedSession::Open(*plan_, reopt, &sink);
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kUnsupported)
      << r2.status().ToString();

  // The ratio is validated even with stealing off, so a latent bad value
  // can never bite when the knob is flipped on later.
  RunConfig ratio;
  ratio.kind = EngineKind::kHamletDynamic;
  ratio.steal_imbalance_ratio = 1.0;
  auto r3 = ShardedSession::Open(*plan_, ratio, &sink);
  ASSERT_FALSE(r3.ok());
  EXPECT_EQ(r3.status().code(), StatusCode::kInvalidArgument);

  RunConfig ring;
  ring.kind = EngineKind::kHamletDynamic;
  ring.producer_queue_capacity = 1;
  auto r4 = ShardedSession::Open(*plan_, ring, &sink);
  ASSERT_FALSE(r4.ok());
  EXPECT_EQ(r4.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(WorkStealingTest, ChurnAndPrePartitionedRejectedWhileStealing) {
  CollectingSink sink;
  RunConfig config;
  config.kind = EngineKind::kHamletDynamic;
  config.num_shards = 2;
  config.work_stealing = true;
  auto session = ShardedSession::Open(*plan_, config, &sink).value();
  ASSERT_TRUE(session->Push(Make(1, type_a_, 1)).ok());

  Query q = ParseQuery("RETURN COUNT(*) PATTERN SEQ(A, B+) GROUPBY g "
                       "WITHIN 10 ms")
                .value();
  auto add = session->AddQuery(q);
  ASSERT_FALSE(add.ok());
  EXPECT_EQ(add.status().code(), StatusCode::kUnsupported)
      << add.status().ToString();
  auto remove = session->RemoveQuery("q0");
  ASSERT_FALSE(remove.ok());
  EXPECT_EQ(remove.status().code(), StatusCode::kUnsupported);

  std::vector<EventVector> chunk(2);
  chunk[0].push_back(Make(2, type_b_, 1));
  Status pre = session->PushPrePartitioned(chunk);
  EXPECT_EQ(pre.code(), StatusCode::kFailedPrecondition) << pre.ToString();

  EXPECT_TRUE(session->Close().ok());
}

}  // namespace
}  // namespace hamlet
