// Optimizer tests: the benefit model reproduces the paper's worked decision
// numbers (Eq. 9-11) exactly; the pruned plan search (Theorems 4.1/4.2)
// matches exhaustive search; policies steer the engine as §4.2 describes.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/hamlet/batch_eval.h"
#include "src/optimizer/plan_search.h"
#include "src/optimizer/policies.h"
#include "src/query/parser.h"
#include "src/stream/stream_builder.h"

namespace hamlet {
namespace {

// ---- Eq. 9-11: the split/merge decision numbers of §4.2 (Fig. 6) ----

TEST(CostModelTest, Equation9ShareIsBeneficial) {
  // Shared(B3) = 4*7*1 + 1*2*4*2 = 44; NonShared = 2*4*7 = 56; benefit 12.
  CostInputs in;
  in.k = 2;
  in.b = 4;
  in.n = 7;
  in.g = 4;
  in.t = 2;
  in.sc = 1;
  in.sp = 1;
  EXPECT_DOUBLE_EQ(SharedCost(in, CostModelVariant::kSimple), 44.0);
  EXPECT_DOUBLE_EQ(NonSharedCost(in, CostModelVariant::kSimple), 56.0);
  EXPECT_DOUBLE_EQ(SharingBenefit(in, CostModelVariant::kSimple), 12.0);
}

TEST(CostModelTest, Equation10SplitDecision) {
  // Shared = 4*11*2 + 1*2*8*2 = 120; NonShared = 2*4*11 = 88; benefit -32.
  CostInputs in;
  in.k = 2;
  in.b = 4;
  in.n = 11;
  in.g = 8;
  in.t = 2;
  in.sc = 1;
  in.sp = 2;
  EXPECT_DOUBLE_EQ(SharedCost(in, CostModelVariant::kSimple), 120.0);
  EXPECT_DOUBLE_EQ(NonSharedCost(in, CostModelVariant::kSimple), 88.0);
  EXPECT_DOUBLE_EQ(SharingBenefit(in, CostModelVariant::kSimple), -32.0);
}

TEST(CostModelTest, Equation11MergeDecision) {
  // Shared(B6) = 4*15*1 + 1*2*4*2 = 76; NonShared = 2*4*15 = 120; benefit 44.
  CostInputs in;
  in.k = 2;
  in.b = 4;
  in.n = 15;
  in.g = 4;
  in.t = 2;
  in.sc = 1;
  in.sp = 1;
  EXPECT_DOUBLE_EQ(SharedCost(in, CostModelVariant::kSimple), 76.0);
  EXPECT_DOUBLE_EQ(NonSharedCost(in, CostModelVariant::kSimple), 120.0);
  EXPECT_DOUBLE_EQ(SharingBenefit(in, CostModelVariant::kSimple), 44.0);
}

TEST(CostModelTest, RefinedVariantAddsLookupCosts) {
  CostInputs in;
  in.k = 2;
  in.b = 4;
  in.n = 7;
  in.g = 4;
  in.p = 2;
  in.sc = 1;
  in.sp = 1;
  // Shared = 1*2*4*2 + 4*(2 + 7) = 52; NonShared = 2*4*(2+7) = 72.
  EXPECT_DOUBLE_EQ(SharedCost(in, CostModelVariant::kRefined), 52.0);
  EXPECT_DOUBLE_EQ(NonSharedCost(in, CostModelVariant::kRefined), 72.0);
}

TEST(CostModelTest, BenefitGrowsWithQueriesAndShrinksWithSnapshots) {
  // Definition 12's qualitative reading: more sharing queries -> more
  // benefit; more snapshots -> less benefit.
  CostInputs in;
  in.k = 2;
  in.b = 8;
  in.n = 100;
  in.g = 8;
  in.t = 3;
  in.sc = 1;
  in.sp = 1;
  double base = SharingBenefit(in, CostModelVariant::kRefined);
  CostInputs more_queries = in;
  more_queries.k = 10;
  EXPECT_GT(SharingBenefit(more_queries, CostModelVariant::kRefined), base);
  CostInputs more_snapshots = in;
  more_snapshots.sc = 50;
  more_snapshots.sp = 20;
  EXPECT_LT(SharingBenefit(more_snapshots, CostModelVariant::kRefined), base);
}

// ---- §4.3 plan search: pruned == exhaustive ----

class PlanSearchSweep : public ::testing::TestWithParam<int> {};

TEST_P(PlanSearchSweep, PrunedMatchesExhaustiveCost) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919);
  for (int trial = 0; trial < 200; ++trial) {
    const int k = static_cast<int>(rng.NextInt(2, 8));
    PlanSearchInputs in;
    in.base.b = static_cast<double>(rng.NextInt(1, 16));
    in.base.n = static_cast<double>(rng.NextInt(1, 200));
    in.base.g = static_cast<double>(rng.NextInt(1, 32));
    in.base.p = static_cast<int>(rng.NextInt(1, 3));
    in.base.t = static_cast<int>(rng.NextInt(1, 4));
    in.base.sp = static_cast<double>(rng.NextInt(1, 6));
    in.variant = GetParam() == 0 ? CostModelVariant::kSimple
                                 : CostModelVariant::kRefined;
    for (int q = 0; q < k; ++q) {
      // Half the queries introduce no snapshots (Theorem 4.1 candidates).
      in.sc_q.push_back(rng.NextBool(0.5)
                            ? 0.0
                            : static_cast<double>(rng.NextInt(1, 40)));
    }
    SharingPlan exhaustive = ExhaustivePlanSearch(in, k);
    SharingPlan pruned = PrunedPlanSearch(in, k);
    // The pruned search must find an equally cheap plan (Theorems 4.1/4.2
    // guarantee optimality over the Level-1/2 space).
    EXPECT_NEAR(pruned.cost, exhaustive.cost, 1e-9)
        << "k=" << k << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Variants, PlanSearchSweep, ::testing::Values(0, 1));

TEST(PlanSearchTest, SnapshotFreeQueriesAlwaysShared) {
  // Theorem 4.1: zero-snapshot queries belong in the shared set.
  PlanSearchInputs in;
  in.base.b = 8;
  in.base.n = 100;
  in.base.g = 8;
  in.sc_q = {0.0, 0.0, 1000.0};
  SharingPlan plan = PrunedPlanSearch(in, 3);
  EXPECT_TRUE(plan.shared.Contains(0));
  EXPECT_TRUE(plan.shared.Contains(1));
  EXPECT_FALSE(plan.shared.Contains(2));  // hugely snapshot-heavy
}

TEST(PlanSearchTest, Figure7SpaceSizeIsTwelveForFourQueries) {
  // 1 all-shared + 4 triples + 6 pairs + 1 all-solo = 12 plans (Fig. 7).
  int plans = 0;
  for (uint32_t mask = 0; mask < 16; ++mask) {
    if (__builtin_popcount(mask) == 1) continue;
    ++plans;
  }
  EXPECT_EQ(plans, 12);
}

// ---- policies driving the engine ----

class PolicyFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    for (const char* text :
         {"RETURN COUNT(*) PATTERN SEQ(A, B+) WITHIN 1 min",
          "RETURN COUNT(*) PATTERN SEQ(C, B+) WITHIN 1 min"}) {
      Query q = ParseQuery(text).value();
      ASSERT_TRUE(workload_.Add(q).ok());
    }
  }
  EventVector BurstyStream(int bursts, int burst_len) {
    StreamBuilder b(&schema_);
    for (int i = 0; i < bursts; ++i) {
      b.Add("A").Add("C").AddRun(burst_len, "B");
    }
    return b.Take();
  }
  Schema schema_;
  Workload workload_{&schema_};
};

TEST_F(PolicyFixture, DynamicSharesBeneficialBursts) {
  WorkloadPlan plan = AnalyzeWorkload(workload_).value();
  DynamicBenefitPolicy dynamic;
  BatchResult r = EvalHamletBatch(plan, BurstyStream(20, 10), &dynamic);
  // No predicates, two queries, long bursts: sharing is beneficial and the
  // optimizer should share (nearly) all bursts after warm-up.
  EXPECT_GT(r.stats.bursts_shared, r.stats.bursts_total / 2);
  EXPECT_GT(dynamic.decisions(), 0);
}

TEST_F(PolicyFixture, PoliciesAgreeOnValues) {
  WorkloadPlan plan = AnalyzeWorkload(workload_).value();
  EventVector ev = BurstyStream(6, 5);
  NeverSharePolicy never;
  AlwaysSharePolicy always;
  DynamicBenefitPolicy dynamic;
  BatchResult a = EvalHamletBatch(plan, ev, &never);
  BatchResult b = EvalHamletBatch(plan, ev, &always);
  BatchResult c = EvalHamletBatch(plan, ev, &dynamic);
  for (int i = 0; i < plan.num_exec(); ++i) {
    EXPECT_DOUBLE_EQ(a.exec_values[static_cast<size_t>(i)],
                     b.exec_values[static_cast<size_t>(i)]);
    EXPECT_DOUBLE_EQ(a.exec_values[static_cast<size_t>(i)],
                     c.exec_values[static_cast<size_t>(i)]);
  }
}

TEST_F(PolicyFixture, SharedExecutionDoesLessWorkThanNonShared) {
  // The point of the paper: with k sharable queries and long bursts, shared
  // propagation does roughly k times less per-event work. Sharing has
  // per-burst overhead (snapshot creation), so the win needs k > 2.
  for (const char* text : {"RETURN COUNT(*) PATTERN SEQ(D, B+) WITHIN 1 min",
                           "RETURN COUNT(*) PATTERN SEQ(E, B+) WITHIN 1 min",
                           "RETURN COUNT(*) PATTERN SEQ(F, B+) WITHIN 1 min",
                           "RETURN COUNT(*) PATTERN SEQ(G, B+) WITHIN 1 min"}) {
    Query q = ParseQuery(text).value();
    ASSERT_TRUE(workload_.Add(q).ok());
  }
  WorkloadPlan plan = AnalyzeWorkload(workload_).value();
  EventVector ev = BurstyStream(50, 40);
  NeverSharePolicy never;
  AlwaysSharePolicy always;
  BatchResult solo = EvalHamletBatch(plan, ev, &never);
  BatchResult shared = EvalHamletBatch(plan, ev, &always);
  EXPECT_LT(shared.stats.ops, solo.stats.ops);
}

TEST(PolicyUnitTest, DynamicRespectsMarginalTests) {
  DynamicBenefitPolicy policy;
  BurstStats stats;
  stats.k = 3;
  stats.b = 8;
  stats.n = 50;
  stats.g = 8;
  stats.sp = 1;
  stats.sc_per_member = {0.0, 0.0, 500.0};  // member 2 is snapshot-heavy
  SharingDecision d = policy.Decide({0, 1, 2}, stats);
  EXPECT_TRUE(d.shared.Contains(0));
  EXPECT_TRUE(d.shared.Contains(1));
  EXPECT_FALSE(d.shared.Contains(2));
}

TEST(PolicyUnitTest, DynamicRefusesUnbeneficialSharing) {
  DynamicBenefitPolicy policy;
  BurstStats stats;
  stats.k = 2;
  stats.b = 1;     // tiny bursts
  stats.n = 1;     // nearly empty window
  stats.g = 100;   // huge graphlets to maintain
  stats.p = 3;
  stats.sp = 1;
  stats.sc_per_member = {0.0, 0.0};
  // Shared fixed cost sc*k*g*p = 600 dwarfs NonShared = 2*1*(log+1).
  SharingDecision d = policy.Decide({0, 1}, stats);
  EXPECT_TRUE(d.shared.Empty());
}

TEST(PolicyUnitTest, NeverAndAlwaysAreConstant) {
  BurstStats stats;
  stats.k = 2;
  NeverSharePolicy never;
  EXPECT_TRUE(never.Decide({0, 1}, stats).shared.Empty());
  AlwaysSharePolicy always;
  EXPECT_EQ(always.Decide({0, 1}, stats).shared.Count(), 2);
}

}  // namespace
}  // namespace hamlet
