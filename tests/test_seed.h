// Shared --seed= plumbing for the randomized suites.
//
// A suite that includes this header and defines
//
//   int main(int argc, char** argv) {
//     return hamlet::test::RunSeededSuite(argc, argv);
//   }
//
// (linking GTest::gtest instead of GTest::gtest_main) accepts
// `--seed=<value>` on its command line (or the HAMLET_TEST_SEED
// environment variable; the flag wins) and logs the effective seeding
// mode on entry. Test bodies draw their seeds through SeedOr(default):
// without an override each test keeps its baked-in default, so recorded
// failures stay reproducible; with one, every SeedOr call returns the
// override and logs it, so a failure seen once can be replayed exactly —
// e.g. `./differential_stress_test --seed=0xBADF00D`.
#ifndef HAMLET_TESTS_TEST_SEED_H_
#define HAMLET_TESTS_TEST_SEED_H_

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace hamlet::test {

inline uint64_t g_seed_override = 0;
inline bool g_seed_overridden = false;

/// The test's seed: the suite-wide --seed= override when one was given,
/// else `default_seed`. Logged either way, so every run's seeds are in
/// the output before any failure.
inline uint64_t SeedOr(uint64_t default_seed) {
  const uint64_t seed = g_seed_overridden ? g_seed_override : default_seed;
  std::fprintf(stderr, "[seed] using %llu (0x%llx)%s\n",
               static_cast<unsigned long long>(seed),
               static_cast<unsigned long long>(seed),
               g_seed_overridden ? " [overridden]" : "");
  return seed;
}

/// InitGoogleTest + seed-flag parsing + RUN_ALL_TESTS.
inline int RunSeededSuite(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      g_seed_override = std::strtoull(argv[i] + 7, nullptr, 0);
      g_seed_overridden = true;
    }
  }
  if (!g_seed_overridden) {
    if (const char* env = std::getenv("HAMLET_TEST_SEED")) {
      g_seed_override = std::strtoull(env, nullptr, 0);
      g_seed_overridden = true;
    }
  }
  if (g_seed_overridden) {
    std::fprintf(stderr, "[seed] override active: %llu (0x%llx)\n",
                 static_cast<unsigned long long>(g_seed_override),
                 static_cast<unsigned long long>(g_seed_override));
  } else {
    std::fprintf(stderr,
                 "[seed] no --seed= / HAMLET_TEST_SEED override; using "
                 "per-test default seeds\n");
  }
  return RUN_ALL_TESTS();
}

}  // namespace hamlet::test

#endif  // HAMLET_TESTS_TEST_SEED_H_
