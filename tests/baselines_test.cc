// Baseline engine tests: the MCEP-style two-step engine and the
// SHARON-style flattening engine must agree with the brute force / GRETA
// on every supported configuration, and must exhibit the structural
// properties the paper measures (trend construction, expansion counts).
#include <gtest/gtest.h>

#include "src/baselines/sharon_engine.h"
#include "src/baselines/two_step_engine.h"
#include "src/brute/enumerator.h"
#include "src/common/rng.h"
#include "src/query/parser.h"
#include "src/stream/stream_builder.h"

namespace hamlet {
namespace {

class BaselineFixture : public ::testing::Test {
 protected:
  WorkloadPlan Plan(std::initializer_list<const char*> queries) {
    for (const char* text : queries) {
      Query q = ParseQuery(text).value();
      HAMLET_CHECK(workload_.Add(q).ok());
    }
    Result<WorkloadPlan> plan = AnalyzeWorkload(workload_);
    HAMLET_CHECK(plan.ok());
    return std::move(plan).value();
  }
  Schema schema_;
  Workload workload_{&schema_};
};

TEST_F(BaselineFixture, TwoStepMatchesBruteAndConstructsTrends) {
  WorkloadPlan plan = Plan({
      "RETURN COUNT(*) PATTERN SEQ(A, B+) WITHIN 1 min",
      "RETURN SUM(B.v) PATTERN SEQ(A, B+) WITHIN 1 min",
      "RETURN COUNT(*) PATTERN SEQ(C, B+) WITHIN 1 min",
  });
  AttrId v = schema_.FindAttr("v");
  StreamBuilder sb(&schema_);
  EventVector ev;
  {
    TypeId A = schema_.FindType("A"), B = schema_.FindType("B"),
           C = schema_.FindType("C");
    Event a(1, A), c(2, C);
    ev = {a, c};
    for (int i = 0; i < 5; ++i) {
      Event b(3 + i, B);
      b.set_attr(v, i + 1.0);
      ev.push_back(b);
    }
  }
  TwoStepEngine engine(plan, plan.AllExec());
  for (const Event& e : ev) engine.OnEvent(e);
  ASSERT_TRUE(engine.Finish().ok());
  for (int i = 0; i < plan.num_exec(); ++i) {
    EXPECT_DOUBLE_EQ(engine.Value(i),
                     BruteForceEval(plan.exec_queries[static_cast<size_t>(i)],
                                    ev)
                         .value()
                         .value)
        << "exec " << i;
  }
  // q1 and q2 share the pattern signature: one construction pass serves
  // both, so trends == trends(q1) + trends(q3), not 2x + x.
  const int64_t q1_trends = 31;  // 2^5 - 1 per the single A
  EXPECT_EQ(engine.trends_constructed(), q1_trends + q1_trends);
  EXPECT_GT(engine.MemoryBytes(), 0);
}

TEST_F(BaselineFixture, TwoStepBudgetExhaustion) {
  WorkloadPlan plan = Plan({"RETURN COUNT(*) PATTERN B+ WITHIN 1 min"});
  StreamBuilder sb(&schema_);
  sb.AddRun(24, "B");
  TwoStepEngine engine(plan, plan.AllExec(), /*max_trends=*/1000);
  for (const Event& e : sb.events()) engine.OnEvent(e);
  Status s = engine.Finish();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
}

TEST_F(BaselineFixture, SharonMatchesBruteWithinProvisionedLength) {
  WorkloadPlan plan = Plan({
      "RETURN COUNT(*) PATTERN SEQ(A, B+) WITHIN 1 min",
      "RETURN SUM(B.v) PATTERN SEQ(C, B+) WITHIN 1 min",
      "RETURN COUNT(*) PATTERN SEQ(A, B+, NOT N, C) WITHIN 1 min",
  });
  Rng rng(42);
  const char* alphabet[] = {"A", "B", "C", "N"};
  AttrId v = schema_.AddAttr("v");
  for (int trial = 0; trial < 40; ++trial) {
    EventVector ev;
    int len = static_cast<int>(rng.NextInt(1, 14));
    for (int i = 0; i < len; ++i) {
      Event e(i + 1, schema_.AddType(alphabet[rng.NextBelow(4)]));
      e.set_attr(v, static_cast<double>(rng.NextInt(0, 9)));
      ev.push_back(e);
    }
    SharonEngine engine(plan, plan.AllExec(), /*max_kleene_length=*/16);
    for (const Event& e : ev) engine.OnEvent(e);
    for (int i = 0; i < plan.num_exec(); ++i) {
      ASSERT_TRUE(engine.Supported(i));
      EXPECT_DOUBLE_EQ(
          engine.Value(i),
          BruteForceEval(plan.exec_queries[static_cast<size_t>(i)], ev)
              .value()
              .value)
          << "exec " << i << " trial " << trial;
    }
  }
}

TEST_F(BaselineFixture, SharonExpansionCountsAreLinearInLength) {
  WorkloadPlan plan = Plan({"RETURN COUNT(*) PATTERN SEQ(A, B+) WITHIN 1 min"});
  SharonEngine small(plan, plan.AllExec(), 8);
  SharonEngine large(plan, plan.AllExec(), 32);
  EXPECT_EQ(small.expanded_queries(), 8);
  EXPECT_EQ(large.expanded_queries(), 32);
  // The flattened state is the paper's memory overhead: once a stream has
  // touched the DP, state grows quadratically with the provisioned length
  // (sum of expanded arities).
  StreamBuilder sb(&schema_);
  sb.Add("A").AddRun(4, "B");
  for (const Event& e : sb.events()) {
    small.OnEvent(e);
    large.OnEvent(e);
  }
  EXPECT_GT(large.MemoryBytes(), 5 * small.MemoryBytes());
}

TEST_F(BaselineFixture, SharonUndercountsBeyondProvisionedLength) {
  // The paper's flattening covers lengths up to l; longer matches are lost.
  WorkloadPlan plan = Plan({"RETURN COUNT(*) PATTERN B+ WITHIN 1 min"});
  StreamBuilder sb(&schema_);
  sb.AddRun(6, "B");
  SharonEngine engine(plan, plan.AllExec(), /*max_kleene_length=*/3);
  for (const Event& e : sb.events()) engine.OnEvent(e);
  // C(6,1)+C(6,2)+C(6,3) = 6+15+20 = 41 < 63.
  EXPECT_DOUBLE_EQ(engine.Value(0), 41.0);
}

TEST_F(BaselineFixture, SharonRejectsUnsupportedShapes) {
  WorkloadPlan plan = Plan({
      "RETURN COUNT(*) PATTERN (SEQ(A, B+))+ WITHIN 1 min",
      "RETURN COUNT(*) PATTERN SEQ(A, B+) WHERE prev.v <= next.v WITHIN 1 "
      "min",
      "RETURN COUNT(*) PATTERN SEQ(A, B+) WHERE [driver] WITHIN 1 min",
  });
  SharonEngine engine(plan, plan.AllExec(), 8);
  EXPECT_FALSE(engine.Supported(0));  // group Kleene
  EXPECT_FALSE(engine.Supported(1));  // non-equality edge predicate
  EXPECT_TRUE(engine.Supported(2));   // [driver] partitions the DP
}

TEST_F(BaselineFixture, SharonEqualityPartitioningMatchesBrute) {
  WorkloadPlan plan = Plan({
      "RETURN COUNT(*) PATTERN SEQ(A, B+) WHERE [driver] WITHIN 1 min",
      "RETURN SUM(B.v) PATTERN SEQ(A, B+) WHERE [driver, rider] WITHIN 1 min",
  });
  AttrId v = schema_.FindAttr("v");
  AttrId driver = schema_.FindAttr("driver");
  AttrId rider = schema_.FindAttr("rider");
  Rng rng(77);
  const char* alphabet[] = {"A", "B", "C"};
  for (int trial = 0; trial < 30; ++trial) {
    EventVector ev;
    int len = static_cast<int>(rng.NextInt(1, 12));
    for (int i = 0; i < len; ++i) {
      Event e(i + 1, schema_.AddType(alphabet[rng.NextBelow(3)]));
      e.set_attr(v, static_cast<double>(rng.NextInt(0, 9)));
      e.set_attr(driver, static_cast<double>(rng.NextInt(1, 2)));
      e.set_attr(rider, static_cast<double>(rng.NextInt(1, 2)));
      ev.push_back(e);
    }
    SharonEngine engine(plan, plan.AllExec(), 16);
    for (const Event& e : ev) engine.OnEvent(e);
    for (int i = 0; i < plan.num_exec(); ++i) {
      ASSERT_TRUE(engine.Supported(i));
      EXPECT_DOUBLE_EQ(
          engine.Value(i),
          BruteForceEval(plan.exec_queries[static_cast<size_t>(i)], ev)
              .value()
              .value)
          << "exec " << i << " trial " << trial;
    }
  }
}

TEST_F(BaselineFixture, SharonHandlesMultiKleenePatterns) {
  WorkloadPlan plan =
      Plan({"RETURN COUNT(*) PATTERN SEQ(A+, B+) WITHIN 1 min"});
  Rng rng(7);
  for (int trial = 0; trial < 25; ++trial) {
    EventVector ev;
    int len = static_cast<int>(rng.NextInt(1, 10));
    const char* alphabet[] = {"A", "B"};
    for (int i = 0; i < len; ++i) {
      Event e(i + 1, schema_.AddType(alphabet[rng.NextBelow(2)]));
      ev.push_back(e);
    }
    SharonEngine engine(plan, plan.AllExec(), 10);
    for (const Event& e : ev) engine.OnEvent(e);
    EXPECT_DOUBLE_EQ(engine.Value(0),
                     BruteForceEval(plan.exec_queries[0], ev).value().value)
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace hamlet
