// Unit tests for the brute-force enumerator against hand-computed counts.
// This module is the ground truth for everything else, so its own tests are
// fully worked by hand.
#include <gtest/gtest.h>

#include "src/brute/enumerator.h"
#include "src/query/parser.h"
#include "src/stream/stream_builder.h"

namespace hamlet {
namespace {

class BruteFixture : public ::testing::Test {
 protected:
  WorkloadPlan Plan(std::initializer_list<const char*> queries) {
    for (const char* text : queries) {
      Query q = ParseQuery(text).value();
      HAMLET_CHECK(workload_.Add(q).ok());
    }
    Result<WorkloadPlan> plan = AnalyzeWorkload(workload_);
    HAMLET_CHECK(plan.ok());
    return std::move(plan).value();
  }
  EventVector Stream(const std::string& script) {
    return ParseStreamScript(script, &schema_);
  }
  Schema schema_;
  Workload workload_{&schema_};
};

TEST_F(BruteFixture, KleeneCountPowersOfTwo) {
  // SEQ(A, B+) over "A B B B": trends per A = 2^3 - 1 = 7.
  WorkloadPlan plan =
      Plan({"RETURN COUNT(*) PATTERN SEQ(A, B+) WITHIN 1 min"});
  EventVector ev = Stream("A B B B");
  BruteResult r = BruteForceEval(plan.exec_queries[0], ev).value();
  EXPECT_EQ(r.num_trends, 7);
  // Two A's double the leading choices: each B-subset pairs with either A
  // only if the A precedes every chosen B. A1 before all: 7; A2 (after the
  // first B): subsets of the last two B's: 3. Total 10.
  EventVector ev2 = Stream("A B A B B");
  BruteResult r2 = BruteForceEval(plan.exec_queries[0], ev2).value();
  EXPECT_EQ(r2.num_trends, 7 + 3);
}

TEST_F(BruteFixture, PureKleene) {
  // B+ over "B B B B": all non-empty subsequences = 2^4 - 1.
  WorkloadPlan plan = Plan({"RETURN COUNT(*) PATTERN B+ WITHIN 1 min"});
  BruteResult r =
      BruteForceEval(plan.exec_queries[0], Stream("B B B B")).value();
  EXPECT_EQ(r.num_trends, 15);
}

TEST_F(BruteFixture, SequenceWithSuffix) {
  // SEQ(A, B+, C) over "A B B C": subsets of {b1,b2} (3) x one C.
  WorkloadPlan plan =
      Plan({"RETURN COUNT(*) PATTERN SEQ(A, B+, C) WITHIN 1 min"});
  BruteResult r =
      BruteForceEval(plan.exec_queries[0], Stream("A B B C")).value();
  EXPECT_EQ(r.num_trends, 3);
}

TEST_F(BruteFixture, EventPredicateFiltersEvents) {
  WorkloadPlan plan = Plan(
      {"RETURN COUNT(*) PATTERN SEQ(A, B+) WHERE B.v > 5 WITHIN 1 min"});
  AttrId v = schema_.FindAttr("v");
  StreamBuilder b(&schema_);
  b.Add("A");
  Event e1(1, schema_.FindType("B"));
  e1.set_attr(v, 10);  // passes
  Event e2(2, schema_.FindType("B"));
  e2.set_attr(v, 1);  // filtered
  EventVector ev = b.Take();
  ev.push_back(e1);
  ev.push_back(e2);
  BruteResult r = BruteForceEval(plan.exec_queries[0], ev).value();
  EXPECT_EQ(r.num_trends, 1);
}

TEST_F(BruteFixture, EdgePredicateEquality) {
  // [driver]: all trend events share driver id (attribute "driver").
  WorkloadPlan plan = Plan(
      {"RETURN COUNT(*) PATTERN SEQ(A, B+) WHERE [driver] WITHIN 1 min"});
  AttrId d = schema_.FindAttr("driver");
  TypeId A = schema_.FindType("A"), B = schema_.FindType("B");
  EventVector ev;
  Event a(0, A);
  a.set_attr(d, 1);
  Event b1(1, B);
  b1.set_attr(d, 1);
  Event b2(2, B);
  b2.set_attr(d, 2);  // different driver: breaks adjacency with a and b1
  Event b3(3, B);
  b3.set_attr(d, 1);
  ev = {a, b1, b2, b3};
  // Valid trends: (a,b1), (a,b3), (a,b1,b3).
  BruteResult r = BruteForceEval(plan.exec_queries[0], ev).value();
  EXPECT_EQ(r.num_trends, 3);
}

TEST_F(BruteFixture, BoundaryNegationBlocksBetween) {
  WorkloadPlan plan =
      Plan({"RETURN COUNT(*) PATTERN SEQ(A, NOT N, B+) WITHIN 1 min"});
  // N between a and b1 blocks a->b1 but not a->(nothing else); b's after N
  // can still pair with A's after N... here only one A before N.
  BruteResult r =
      BruteForceEval(plan.exec_queries[0], Stream("A N B B")).value();
  // a->b1 blocked, a->b2 blocked (N is between a and b2 as well).
  EXPECT_EQ(r.num_trends, 0);
  BruteResult r2 =
      BruteForceEval(plan.exec_queries[0], Stream("A B N B")).value();
  // (a,b1) ok; (a,b2) blocked (N between); (a,b1,b2): boundary edge a->b1
  // ok, b1->b2 is within the Kleene (not negation-guarded) => valid.
  EXPECT_EQ(r2.num_trends, 2);
}

TEST_F(BruteFixture, TrailingNegationKillsEarlierTrends) {
  WorkloadPlan plan =
      Plan({"RETURN COUNT(*) PATTERN SEQ(A, B+, NOT N) WITHIN 1 min"});
  BruteResult r =
      BruteForceEval(plan.exec_queries[0], Stream("A B N B")).value();
  // Trends ending before N die: (a,b1) blocked. (a,b2) and (a,b1,b2) end
  // after N: valid.
  EXPECT_EQ(r.num_trends, 2);
}

TEST_F(BruteFixture, LeadingNegationBlocksLaterStarts) {
  WorkloadPlan plan =
      Plan({"RETURN COUNT(*) PATTERN SEQ(NOT N, A, B+) WITHIN 1 min"});
  BruteResult r =
      BruteForceEval(plan.exec_queries[0], Stream("A N A B")).value();
  // a1 started before N: (a1, b) valid. a2 after N: blocked.
  EXPECT_EQ(r.num_trends, 1);
}

TEST_F(BruteFixture, GroupKleeneMatchesPaperExample10Semantics) {
  WorkloadPlan plan =
      Plan({"RETURN COUNT(*) PATTERN (SEQ(A, B+))+ WITHIN 1 min"});
  // Stream a1 b1 a2 b2 (worked in DESIGN notes): 5 trends:
  // (a1,b1), (a1,b2), (a1,b1,b2), (a2,b2), (a1,b1,a2,b2).
  BruteResult r =
      BruteForceEval(plan.exec_queries[0], Stream("A B A B")).value();
  EXPECT_EQ(r.num_trends, 5);
}

TEST_F(BruteFixture, AggregatesOverTrends) {
  WorkloadPlan plan = Plan({
      "RETURN COUNT(B) PATTERN SEQ(A, B+) WITHIN 1 min",
      "RETURN SUM(B.v) PATTERN SEQ(A, B+) WITHIN 1 min",
      "RETURN MIN(B.v) PATTERN SEQ(A, B+) WITHIN 1 min",
      "RETURN MAX(B.v) PATTERN SEQ(A, B+) WITHIN 1 min",
      "RETURN AVG(B.v) PATTERN SEQ(A, B+) WITHIN 1 min",
  });
  AttrId v = schema_.FindAttr("v");
  TypeId A = schema_.FindType("A"), B = schema_.FindType("B");
  Event a(0, A);
  Event b1(1, B);
  b1.set_attr(v, 10);
  Event b2(2, B);
  b2.set_attr(v, 20);
  EventVector ev = {a, b1, b2};
  // Trends: (a,b1):v=10, (a,b2):v=20, (a,b1,b2):v=30.
  EXPECT_DOUBLE_EQ(
      BruteForceEval(plan.exec_queries[0], ev).value().value, 4);   // COUNT(B)
  EXPECT_DOUBLE_EQ(
      BruteForceEval(plan.exec_queries[1], ev).value().value, 60);  // SUM
  EXPECT_DOUBLE_EQ(
      BruteForceEval(plan.exec_queries[2], ev).value().value, 10);  // MIN
  EXPECT_DOUBLE_EQ(
      BruteForceEval(plan.exec_queries[3], ev).value().value, 20);  // MAX
  EXPECT_DOUBLE_EQ(
      BruteForceEval(plan.exec_queries[4], ev).value().value, 15);  // AVG
}

TEST_F(BruteFixture, TrendBudgetEnforced) {
  WorkloadPlan plan = Plan({"RETURN COUNT(*) PATTERN B+ WITHIN 1 min"});
  BruteOptions opt;
  opt.max_trends = 10;
  Result<BruteResult> r =
      BruteForceEval(plan.exec_queries[0], Stream("B B B B B"), opt);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(BruteFixture, OrAndComposition) {
  WorkloadPlan plan = Plan({
      "RETURN COUNT(*) PATTERN SEQ(A,B+) OR SEQ(C,D+) WITHIN 1 min",
      "RETURN COUNT(*) PATTERN SEQ(A,B+) AND SEQ(C,D+) WITHIN 1 min",
  });
  EventVector ev = Stream("A B C D");
  // C1 = 1 ((a,b)), C2 = 1 ((c,d)).
  EXPECT_DOUBLE_EQ(BruteForceQueryValue(plan, 0, ev).value(), 2);
  EXPECT_DOUBLE_EQ(BruteForceQueryValue(plan, 1, ev).value(), 1);
}

TEST_F(BruteFixture, OnTrendCallbackSeesIndices) {
  WorkloadPlan plan =
      Plan({"RETURN COUNT(*) PATTERN SEQ(A, B+) WITHIN 1 min"});
  EventVector ev = Stream("A B");
  std::vector<std::vector<int>> trends;
  BruteOptions opt;
  opt.on_trend = [&](const std::vector<int>& t) { trends.push_back(t); };
  BruteForceEval(plan.exec_queries[0], ev, opt).value();
  ASSERT_EQ(trends.size(), 1u);
  EXPECT_EQ(trends[0], (std::vector<int>{0, 1}));
}

}  // namespace
}  // namespace hamlet
