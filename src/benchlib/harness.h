// Shared bench harness: scaling, single-run helper, table output.
//
// Every bench binary regenerates one paper table/figure: it sweeps the
// figure's x-axis, runs the relevant engines and prints the series as an
// aligned table plus CSV. Absolute numbers differ from the paper's testbed
// (see DESIGN.md §2); the reproduced quantity is the *shape*.
//
// Default parameters finish the full suite in minutes on a small machine;
// set HAMLET_BENCH_SCALE=full for paper-scale rates.
#ifndef HAMLET_BENCHLIB_HARNESS_H_
#define HAMLET_BENCHLIB_HARNESS_H_

#include <string>

#include "src/benchlib/workloads.h"
#include "src/common/table.h"
#include "src/runtime/session.h"

namespace hamlet {
namespace bench {

/// True when HAMLET_BENCH_SCALE=full.
bool FullScale();

/// Picks the fast or full value of a parameter.
int Scale(int fast, int full);

/// Streams the generator through a push Session (no sink, no O(stream)
/// input buffer — paper-scale rates fit in O(rate) memory) and returns the
/// run's metrics. peak_memory_bytes therefore charges engine state only,
/// never an input buffer.
RunMetrics RunOnce(const BenchWorkload& bw, const GeneratorConfig& gen_config,
                   RunConfig run_config);

/// Prints a figure header, the aligned table and its CSV form.
void PrintFigure(const std::string& figure, const std::string& caption,
                 const Table& table);

/// Formats seconds/bytes/eps compactly for table cells.
std::string Seconds(double s);
std::string Bytes(int64_t b);
std::string Eps(double eps);

}  // namespace bench
}  // namespace hamlet

#endif  // HAMLET_BENCHLIB_HARNESS_H_
