// Shared bench harness: scaling, single-run helper, table output.
//
// Every bench binary regenerates one paper table/figure: it sweeps the
// figure's x-axis, runs the relevant engines and prints the series as an
// aligned table plus CSV. Absolute numbers differ from the paper's testbed
// (see DESIGN.md §2); the reproduced quantity is the *shape*.
//
// Default parameters finish the full suite in minutes on a small machine;
// set HAMLET_BENCH_SCALE=full for paper-scale rates.
#ifndef HAMLET_BENCHLIB_HARNESS_H_
#define HAMLET_BENCHLIB_HARNESS_H_

#include <string>

#include "src/benchlib/workloads.h"
#include "src/common/table.h"
#include "src/runtime/session.h"
#include "src/runtime/sharded_session.h"

namespace hamlet {
namespace bench {

/// True when HAMLET_BENCH_SCALE=full.
bool FullScale();

/// Picks the fast or full value of a parameter.
int Scale(int fast, int full);

/// Parses `--threads=N` (or `--threads N`) from argv; returns `fallback`
/// when absent. Benches pass the result into RunConfig::num_shards, so any
/// figure can be re-run sharded without editing code.
int ThreadsFlag(int argc, char** argv, int fallback = 1);

/// Parses `--producers=N` (or `--producers N`) from argv; returns
/// `fallback` when absent. Benches with a concurrent-ingest figure drive
/// that many Producer handles (ShardedSession::AddProducer) in parallel;
/// 0 disables the figure.
int ProducersFlag(int argc, char** argv, int fallback = 0);

/// True when `--json` is in argv. Benches that support it append one
/// `JSON: {...}` line per figure so scripts can track numbers across PRs
/// without scraping the aligned tables.
bool JsonFlag(int argc, char** argv);

/// Streams the generator through a push session (no sink, no O(stream)
/// input buffer — paper-scale rates fit in O(rate) memory) and returns the
/// run's metrics. peak_memory_bytes therefore charges engine state only,
/// never an input buffer. Runs a ShardedSession when
/// run_config.num_shards > 1, a plain Session otherwise.
RunMetrics RunOnce(const BenchWorkload& bw, const GeneratorConfig& gen_config,
                   RunConfig run_config);

/// Prints a figure header, the aligned table and its CSV form.
void PrintFigure(const std::string& figure, const std::string& caption,
                 const Table& table);

/// Formats seconds/bytes/eps compactly for table cells.
std::string Seconds(double s);
std::string Bytes(int64_t b);
std::string Eps(double eps);

}  // namespace bench
}  // namespace hamlet

#endif  // HAMLET_BENCHLIB_HARNESS_H_
