#include "src/benchlib/workloads.h"

#include <vector>

#include "src/common/check.h"
#include "src/query/parser.h"

namespace hamlet {

namespace {

/// Enumerates distinct patterns sharing `kleene`+ : SEQ(P1, K+),
/// SEQ(P1, K+, S1), SEQ(P1, P2, K+), SEQ(P1, P2, K+, S1), ... in a stable
/// order, over the `others` type alphabet.
std::vector<std::string> EnumerateSharedPatterns(
    const std::string& kleene, const std::vector<std::string>& others,
    int count) {
  std::vector<std::string> out;
  auto push = [&](const std::string& p) {
    if (static_cast<int>(out.size()) < count) out.push_back(p);
  };
  // Depth 1: SEQ(X, K+).
  for (const auto& x : others) push("SEQ(" + x + ", " + kleene + "+)");
  // Depth 2: SEQ(X, K+, Y).
  for (const auto& x : others) {
    for (const auto& y : others) {
      if (y == x) continue;
      push("SEQ(" + x + ", " + kleene + "+, " + y + ")");
    }
  }
  // Depth 3: SEQ(X, Y, K+).
  for (const auto& x : others) {
    for (const auto& y : others) {
      if (y == x) continue;
      push("SEQ(" + x + ", " + y + ", " + kleene + "+)");
    }
  }
  // Depth 4: SEQ(X, Y, K+, Z).
  for (const auto& x : others) {
    for (const auto& y : others) {
      if (y == x) continue;
      for (const auto& z : others) {
        if (z == x || z == y) continue;
        push("SEQ(" + x + ", " + y + ", " + kleene + "+, " + z + ")");
      }
    }
  }
  HAMLET_CHECK(static_cast<int>(out.size()) >= count);
  return out;
}

}  // namespace

BenchWorkload MakeWorkload1(const std::string& dataset, int num_queries,
                            Timestamp window_ms, bool with_predicate) {
  BenchWorkload bw;
  bw.generator = MakeGenerator(dataset);
  HAMLET_CHECK(bw.generator != nullptr);
  // The workload registers types against the generator's schema; copy it so
  // the BenchWorkload owns everything.
  bw.workload = std::make_unique<Workload>(
      const_cast<Schema*>(&bw.generator->schema()));

  std::string kleene;
  std::vector<std::string> others;
  std::string group_attr;
  std::string pred;
  // The predicate variant adds the paper's Figure-1-style [driver, rider]
  // equivalence clause, identical across queries (workload 1, §6.1). It
  // constrains trends to same-id chains, which is what lets the two-step
  // baseline terminate in the paper's "low setting" — and puts HAMLET's
  // shared-scan propagation (one stored-node scan for all k queries) to
  // work.
  if (dataset == "ridesharing") {
    kleene = "Travel";
    others = {"Request", "Pickup", "Dropoff", "Cancel", "Accept",
              "Pool",    "Surge",  "Idle",    "Move"};
    group_attr = "district";
    pred = "[driver]";
  } else if (dataset == "nyc_taxi") {
    kleene = "Travel";
    others = {"Request", "Pickup", "Dropoff", "Cancel"};
    group_attr = "zone";
    pred = "[driver]";
  } else if (dataset == "smart_home") {
    kleene = "Load";
    others = {"Work", "Switch", "Spike", "Idle"};
    group_attr = "house";
    pred = "[plug]";
  } else {
    HAMLET_CHECK(false && "W1 supports ridesharing/nyc_taxi/smart_home");
  }

  std::vector<std::string> patterns =
      EnumerateSharedPatterns(kleene, others, num_queries);
  const std::string window =
      " WITHIN " + std::to_string(window_ms) + " ms";
  for (int i = 0; i < num_queries; ++i) {
    std::string text = "RETURN COUNT(*) PATTERN " +
                       patterns[static_cast<size_t>(i)];
    if (with_predicate) text += " WHERE " + pred;
    text += " GROUPBY " + group_attr + window;
    Result<Query> q = ParseQuery(text);
    HAMLET_CHECK(q.ok());
    HAMLET_CHECK(bw.workload->Add(q.value()).ok());
  }
  Result<WorkloadPlan> plan = AnalyzeWorkload(*bw.workload);
  HAMLET_CHECK(plan.ok());
  bw.plan = std::make_unique<WorkloadPlan>(std::move(plan).value());
  return bw;
}

BenchWorkload MakeWorkload2(int num_queries) {
  BenchWorkload bw;
  bw.generator = MakeGenerator("stock");
  bw.workload = std::make_unique<Workload>(
      const_cast<Schema*>(&bw.generator->schema()));

  const std::vector<std::string> prefixes = {"Flat", "Spike", "Volume"};
  for (int i = 0; i < num_queries; ++i) {
    const std::string kleene = (i % 2 == 0) ? "Up" : "Down";
    // Sharable Kleene sub-patterns of length 1-3 around the shared run type.
    std::string pattern;
    switch ((i / 2) % 3) {
      case 0:
        pattern = "SEQ(" + prefixes[static_cast<size_t>(i % 3)] + ", " +
                  kleene + "+)";
        break;
      case 1:
        pattern = "SEQ(" + prefixes[static_cast<size_t>(i % 3)] + ", " +
                  kleene + "+, " +
                  prefixes[static_cast<size_t>((i + 1) % 3)] + ")";
        break;
      default:
        pattern = "SEQ(" + prefixes[static_cast<size_t>(i % 3)] + ", " +
                  prefixes[static_cast<size_t>((i + 1) % 3)] + ", " + kleene +
                  "+)";
        break;
    }
    // Windows 5-20 min (paper §6.1), tumbling, pane = 5 min.
    const int window_min = 5 + 5 * (i % 4);
    // Aggregates: the AVG family shares; COUNT(*) and MAX form their own
    // groups (Definition 5).
    std::string agg;
    switch (i % 5) {
      case 0:
        agg = "COUNT(*)";
        break;
      case 1:
        agg = "SUM(" + kleene + ".price)";
        break;
      case 2:
        agg = "AVG(" + kleene + ".price)";
        break;
      case 3:
        agg = "COUNT(" + kleene + ")";
        break;
      default:
        agg = "MAX(" + kleene + ".price)";
        break;
    }
    std::string text = "RETURN " + agg + " PATTERN " + pattern;
    // Predicates on a variety of event types (§6.1): event predicates with
    // varying selectivity (membership divergence -> event snapshots), and
    // edge predicates on a fraction of queries (per-event snapshots).
    if (i % 3 == 1) {
      text += " WHERE " + kleene + ".price > " + std::to_string(20 + i % 30);
    } else if (i % 7 == 3) {
      text += " WHERE prev.price <= next.price";
    }
    text += " GROUPBY company WITHIN " + std::to_string(window_min) + " min";
    Result<Query> q = ParseQuery(text);
    HAMLET_CHECK(q.ok());
    HAMLET_CHECK(bw.workload->Add(q.value()).ok());
  }
  Result<WorkloadPlan> plan = AnalyzeWorkload(*bw.workload);
  HAMLET_CHECK(plan.ok());
  bw.plan = std::make_unique<WorkloadPlan>(std::move(plan).value());
  return bw;
}

void SkewGroups(EventVector& events, AttrId group_attr, int num_groups,
                double hot_fraction, uint64_t seed) {
  HAMLET_CHECK(num_groups >= 2);
  HAMLET_CHECK(hot_fraction >= 0.0 && hot_fraction <= 1.0);
  Rng rng(seed);
  const size_t n = events.size();
  const int cold_keys = num_groups - 1;
  for (size_t i = 0; i < n; ++i) {
    int64_t key;
    if (rng.NextBelow(1'000'000) <
        static_cast<uint64_t>(hot_fraction * 1'000'000)) {
      key = 0;
    } else {
      // Progressive introduction: by position i, only the first
      // ceil((i+1)/n * cold_keys) cold keys exist yet.
      const int available = n == 0 ? cold_keys
                                   : static_cast<int>(((i + 1) *
                                                       static_cast<size_t>(
                                                           cold_keys) +
                                                       n - 1) /
                                                      n);
      key = 1 + static_cast<int64_t>(rng.NextBelow(
                    static_cast<uint64_t>(available < 1 ? 1 : available)));
    }
    events[i].set_attr(group_attr, static_cast<double>(key));
  }
}

}  // namespace hamlet
