// Query workload factories for the paper's two evaluation workloads (§6.1).
//
//  * Workload 1 ("W1"): k queries sharing one Kleene sub-pattern; identical
//    window/group-by/predicates/aggregate, different patterns (like
//    Examples 2-9). Used in Figs. 9-11.
//  * Workload 2 ("W2"): diverse — Kleene prefixes of length 1-3, windows
//    5-20 min, COUNT/SUM/AVG/MAX aggregates, event and edge predicates on
//    various types. Used in Figs. 12-13.
#ifndef HAMLET_BENCHLIB_WORKLOADS_H_
#define HAMLET_BENCHLIB_WORKLOADS_H_

#include <memory>
#include <string>

#include "src/plan/workload_plan.h"
#include "src/stream/generators.h"

namespace hamlet {

/// A workload bound to its dataset generator and schema. Movable handle that
/// owns everything the plan references.
struct BenchWorkload {
  std::unique_ptr<StreamGenerator> generator;
  std::unique_ptr<Workload> workload;
  std::unique_ptr<WorkloadPlan> plan;

  const Schema& schema() const { return *workload->schema(); }
};

/// Workload 1 on a dataset: `num_queries` trend-count queries over patterns
/// SEQ(X_i, T+) with the dataset's dominant burst type as shared T+, same
/// window and (optional) an identical event predicate.
/// Datasets: "ridesharing", "nyc_taxi", "smart_home".
BenchWorkload MakeWorkload1(const std::string& dataset, int num_queries,
                            Timestamp window_ms, bool with_predicate = false);

/// Workload 2 on the stock dataset: diverse Kleene patterns over Up/Down
/// runs, windows 5-20 min, mixed aggregates (COUNT/SUM/AVG/MAX on the AVG
/// family split into compatible share groups), predicates on price/volume,
/// and edge predicates on a fraction of queries (the snapshot drivers).
BenchWorkload MakeWorkload2(int num_queries);

/// Rewrites `events`' group-by attribute into a hot-key distribution: a
/// `hot_fraction` share of events carries group key 0, the rest spreads
/// uniformly over keys [1, num_groups). Cold keys are INTRODUCED
/// PROGRESSIVELY — cold event i may only draw keys whose first possible
/// occurrence is before i — modeling new groups appearing over the stream's
/// lifetime, which is the case skew-aware shard routing can fix (keys that
/// all appear in the first instant give the rebalancer no load history to
/// react to). Deterministic in `seed`; timestamps are untouched.
void SkewGroups(EventVector& events, AttrId group_attr, int num_groups,
                double hot_fraction, uint64_t seed);

}  // namespace hamlet

#endif  // HAMLET_BENCHLIB_WORKLOADS_H_
