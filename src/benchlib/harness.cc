#include "src/benchlib/harness.h"

#include <cstdio>
#include <cstdlib>

namespace hamlet {
namespace bench {

bool FullScale() {
  const char* env = std::getenv("HAMLET_BENCH_SCALE");
  return env != nullptr && std::string(env) == "full";
}

int Scale(int fast, int full) { return FullScale() ? full : fast; }

RunMetrics RunOnce(const BenchWorkload& bw, const GeneratorConfig& gen_config,
                   RunConfig run_config) {
  std::unique_ptr<EventCursor> cursor = bw.generator->Stream(gen_config);
  Result<std::unique_ptr<Session>> session =
      Session::Open(*bw.plan, run_config, /*sink=*/nullptr);
  HAMLET_CHECK(session.ok());
  // Small fixed-size batches amortize the per-call timing overhead while
  // keeping ingest memory constant.
  constexpr size_t kBatch = 512;
  EventVector batch;
  batch.reserve(kBatch);
  Event e;
  while (cursor->Next(&e)) {
    batch.push_back(e);
    if (batch.size() == kBatch) {
      HAMLET_CHECK(session.value()->PushBatch(batch).ok());
      batch.clear();
    }
  }
  HAMLET_CHECK(session.value()->PushBatch(batch).ok());
  return session.value()->Close();
}

void PrintFigure(const std::string& figure, const std::string& caption,
                 const Table& table) {
  std::printf("\n=== %s — %s ===\n%s\nCSV:\n%s", figure.c_str(),
              caption.c_str(), table.ToAligned().c_str(),
              table.ToCsv().c_str());
  std::fflush(stdout);
}

std::string Seconds(double s) {
  char buf[64];
  if (s < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1fus", s * 1e6);
  } else if (s < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", s);
  }
  return buf;
}

std::string Bytes(int64_t b) {
  char buf[64];
  if (b < 1024) {
    std::snprintf(buf, sizeof(buf), "%lldB", static_cast<long long>(b));
  } else if (b < 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1fKB", static_cast<double>(b) / 1024);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fMB",
                  static_cast<double>(b) / (1024 * 1024));
  }
  return buf;
}

std::string Eps(double eps) {
  char buf[64];
  if (eps >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM/s", eps / 1e6);
  } else if (eps >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fK/s", eps / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f/s", eps);
  }
  return buf;
}

}  // namespace bench
}  // namespace hamlet
