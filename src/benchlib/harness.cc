#include "src/benchlib/harness.h"

#include <cstdio>
#include <cstdlib>

namespace hamlet {
namespace bench {

bool FullScale() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once at bench startup,
  // before any worker thread exists; nothing ever calls setenv.
  const char* env = std::getenv("HAMLET_BENCH_SCALE");
  return env != nullptr && std::string(env) == "full";
}

int Scale(int fast, int full) { return FullScale() ? full : fast; }

int ThreadsFlag(int argc, char** argv, int fallback) {
  int threads = fallback;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      threads = std::atoi(arg.c_str() + std::string("--threads=").size());
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    }
  }
  if (threads < 1) {
    std::fprintf(stderr, "--threads must be >= 1; using 1\n");
    threads = 1;
  }
  return threads;
}

int ProducersFlag(int argc, char** argv, int fallback) {
  int producers = fallback;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--producers=", 0) == 0) {
      producers = std::atoi(arg.c_str() + std::string("--producers=").size());
    } else if (arg == "--producers" && i + 1 < argc) {
      producers = std::atoi(argv[++i]);
    }
  }
  if (producers < 0) {
    std::fprintf(stderr, "--producers must be >= 0; using 0\n");
    producers = 0;
  }
  return producers;
}

bool JsonFlag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") return true;
  }
  return false;
}

namespace {

/// Session and ShardedSession share the push surface but no base class;
/// the drain loop is identical for both. Small fixed-size batches amortize
/// the per-call timing overhead while keeping ingest memory constant.
template <typename SessionT>
RunMetrics DrainCursor(EventCursor& cursor, SessionT& session) {
  constexpr size_t kBatch = 512;
  EventVector batch;
  batch.reserve(kBatch);
  Event e;
  while (cursor.Next(&e)) {
    batch.push_back(e);
    if (batch.size() == kBatch) {
      HAMLET_CHECK(session.PushBatch(batch).ok());
      batch.clear();
    }
  }
  HAMLET_CHECK(session.PushBatch(batch).ok());
  return session.Close().value();
}

}  // namespace

RunMetrics RunOnce(const BenchWorkload& bw, const GeneratorConfig& gen_config,
                   RunConfig run_config) {
  std::unique_ptr<EventCursor> cursor = bw.generator->Stream(gen_config);
  if (run_config.num_shards > 1) {
    Result<std::unique_ptr<ShardedSession>> session =
        ShardedSession::Open(*bw.plan, run_config, /*sink=*/nullptr);
    HAMLET_CHECK(session.ok());
    return DrainCursor(*cursor, *session.value());
  }
  Result<std::unique_ptr<Session>> session =
      Session::Open(*bw.plan, run_config, /*sink=*/nullptr);
  HAMLET_CHECK(session.ok());
  return DrainCursor(*cursor, *session.value());
}

void PrintFigure(const std::string& figure, const std::string& caption,
                 const Table& table) {
  std::printf("\n=== %s — %s ===\n%s\nCSV:\n%s", figure.c_str(),
              caption.c_str(), table.ToAligned().c_str(),
              table.ToCsv().c_str());
  std::fflush(stdout);
}

std::string Seconds(double s) {
  char buf[64];
  if (s < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1fus", s * 1e6);
  } else if (s < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", s);
  }
  return buf;
}

std::string Bytes(int64_t b) {
  char buf[64];
  if (b < 1024) {
    std::snprintf(buf, sizeof(buf), "%lldB", static_cast<long long>(b));
  } else if (b < 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1fKB", static_cast<double>(b) / 1024);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fMB",
                  static_cast<double>(b) / (1024 * 1024));
  }
  return buf;
}

std::string Eps(double eps) {
  char buf[64];
  if (eps >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM/s", eps / 1e6);
  } else if (eps >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fK/s", eps / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f/s", eps);
  }
  return buf;
}

}  // namespace bench
}  // namespace hamlet
