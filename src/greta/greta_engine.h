// GRETA-style non-shared online trend aggregation (paper §3.2, [33]).
//
// One engine instance evaluates ONE exec query over ONE window of ONE
// group's events. Trend aggregates propagate along the (implicit) event
// graph without trend construction:
//   count(e) = start(e) + sum_{e' in pe(e,q)} count(e')        (Eq. 2)
//   fcount   = sum over end-type events                        (Eq. 3)
//
// Two execution modes:
//  * kGraph     — faithful to the paper's cost model: stores every matched
//                 event and scans all predecessor events per new event
//                 (O(n^2) per window). Required when edge predicates are
//                 present; used by default in benches for baseline fidelity.
//  * kPrefixSum — maintains per-position running payload totals, O(p) per
//                 event. Only valid without edge predicates (negation is
//                 handled via resettable boundary accumulators). Provided as
//                 the tuned-baseline ablation (DESIGN.md §6.2).
#ifndef HAMLET_GRETA_GRETA_ENGINE_H_
#define HAMLET_GRETA_GRETA_ENGINE_H_

#include <cstdint>
#include <vector>

#include "src/plan/workload_plan.h"
#include "src/query/agg_value.h"

namespace hamlet {

enum class GretaMode {
  kGraph,
  kPrefixSum,
};

/// Per-window, per-group evaluator for one exec query.
class GretaEngine {
 public:
  /// `eq` must outlive the engine. kPrefixSum with edge predicates falls
  /// back to kGraph (checked, documented).
  GretaEngine(const ExecQuery& eq, GretaMode mode);

  /// Feeds the next event (strictly increasing time). Events of types
  /// foreign to the query are ignored.
  void OnEvent(const Event& e);

  /// Folded end-type payload so far (trailing negation applied).
  const AggValue& final_agg() const { return final_; }

  /// Final value per the query's aggregate kind.
  double Value() const { return ExtractResult(final_, eq_->aggregate.kind); }

  /// Logical memory footprint in bytes (paper's memory metric).
  int64_t MemoryBytes() const;

  /// Predecessor visits / accumulator reads — the unit of the paper's cost
  /// model (used by cost-model validation tests).
  int64_t ops() const { return ops_; }

  GretaMode mode() const { return mode_; }

 private:
  struct Node {
    Event event;
    AggValue agg;
  };

  void OnNegativeEvent(const Event& e);
  void OnPositiveEvent(const Event& e, int position);
  AggValue AccumulateGraph(const Event& e, int position);
  AggValue AccumulatePrefix(const Event& e, int position);

  const ExecQuery* eq_;
  GretaMode mode_;
  AggProfile profile_;
  int num_positions_;

  /// kGraph: stored nodes per position.
  std::vector<std::vector<Node>> nodes_;
  /// kPrefixSum: per-position payload totals.
  std::vector<AggValue> totals_;
  /// Per-position chain-boundary accumulator, reset when a boundary-negated
  /// event arrives (equals totals_[pos-1] when the boundary has no negation).
  std::vector<AggValue> boundary_totals_;
  /// kGraph: last arrival time of a negated event per boundary position
  /// (edges from events at or before this time are blocked).
  std::vector<Timestamp> last_negation_;

  bool leading_blocked_ = false;
  AggValue final_;
  Timestamp last_time_ = -1;
  int64_t ops_ = 0;
  int64_t num_nodes_ = 0;
};

}  // namespace hamlet

#endif  // HAMLET_GRETA_GRETA_ENGINE_H_
