#include "src/greta/greta_engine.h"

namespace hamlet {

GretaEngine::GretaEngine(const ExecQuery& eq, GretaMode mode)
    : eq_(&eq),
      mode_(mode),
      profile_(AggProfile::For(eq.aggregate)),
      num_positions_(eq.tmpl.pattern.num_positions()) {
  // Prefix sums cannot apply per-edge predicates; fall back to the graph.
  if (mode_ == GretaMode::kPrefixSum && eq.has_edge_predicates())
    mode_ = GretaMode::kGraph;
  nodes_.resize(static_cast<size_t>(num_positions_));
  totals_.resize(static_cast<size_t>(num_positions_));
  boundary_totals_.resize(static_cast<size_t>(num_positions_));
  last_negation_.resize(static_cast<size_t>(num_positions_), -1);
}

void GretaEngine::OnEvent(const Event& e) {
  HAMLET_DCHECK(e.time > last_time_);
  last_time_ = e.time;
  const LinearPattern& pattern = eq_->tmpl.pattern;
  int position = pattern.PositionOf(e.type);
  if (position >= 0) {
    if (!PassesEventPredicates(eq_->event_predicates, e)) return;
    OnPositiveEvent(e, position);
    return;
  }
  if (pattern.IsNegated(e.type)) {
    if (!PassesEventPredicates(eq_->event_predicates, e)) return;
    OnNegativeEvent(e);
  }
}

void GretaEngine::OnNegativeEvent(const Event& e) {
  const TemplateInfo& tmpl = eq_->tmpl;
  for (TypeId t : tmpl.leading_negations) {
    if (t == e.type) leading_blocked_ = true;
  }
  for (TypeId t : tmpl.trailing_negations) {
    if (t == e.type) final_ = AggValue::Zero();
  }
  for (int p = 1; p < num_positions_; ++p) {
    if (tmpl.BoundaryBlockedBy(p, e.type)) {
      last_negation_[static_cast<size_t>(p)] = e.time;
      boundary_totals_[static_cast<size_t>(p)] = AggValue::Zero();
    }
  }
}

AggValue GretaEngine::AccumulateGraph(const Event& e, int position) {
  AggValue acc;
  for (int pred : eq_->tmpl.pred_positions[static_cast<size_t>(position)]) {
    const bool chain = pred == position - 1;
    const Timestamp blocked_until =
        chain ? last_negation_[static_cast<size_t>(position)] : -1;
    for (const Node& node : nodes_[static_cast<size_t>(pred)]) {
      ++ops_;
      if (node.event.time <= blocked_until) continue;
      if (!PassesEdgePredicates(eq_->edge_predicates, node.event, e)) continue;
      acc.Accumulate(node.agg);
    }
  }
  return acc;
}

AggValue GretaEngine::AccumulatePrefix(const Event& e, int position) {
  (void)e;
  AggValue acc;
  const TemplateInfo& tmpl = eq_->tmpl;
  for (int pred : tmpl.pred_positions[static_cast<size_t>(position)]) {
    ++ops_;
    if (pred == position - 1 &&
        !tmpl.boundary_negations[static_cast<size_t>(position)].empty()) {
      acc.Accumulate(boundary_totals_[static_cast<size_t>(position)]);
    } else {
      acc.Accumulate(totals_[static_cast<size_t>(pred)]);
    }
  }
  return acc;
}

void GretaEngine::OnPositiveEvent(const Event& e, int position) {
  AggValue acc = mode_ == GretaMode::kGraph ? AccumulateGraph(e, position)
                                            : AccumulatePrefix(e, position);
  const bool is_start = position == 0 && !leading_blocked_;
  AggValue agg = FinishNode(acc, is_start, e, profile_);
  if (mode_ == GretaMode::kGraph) {
    nodes_[static_cast<size_t>(position)].push_back({e, agg});
  } else {
    totals_[static_cast<size_t>(position)].Accumulate(agg);
    // Feed chain-boundary accumulators of the next position when negated.
    int next = position + 1;
    if (next < num_positions_ &&
        !eq_->tmpl.boundary_negations[static_cast<size_t>(next)].empty()) {
      boundary_totals_[static_cast<size_t>(next)].Accumulate(agg);
    }
  }
  ++num_nodes_;
  if (position == eq_->tmpl.end_position()) final_.Accumulate(agg);
}

int64_t GretaEngine::MemoryBytes() const {
  if (mode_ == GretaMode::kGraph) {
    return num_nodes_ * static_cast<int64_t>(sizeof(Node)) +
           static_cast<int64_t>(sizeof(AggValue));
  }
  return static_cast<int64_t>(totals_.size() + boundary_totals_.size() + 1) *
         static_cast<int64_t>(sizeof(AggValue));
}

}  // namespace hamlet
