#include "src/hamlet/expr.h"

#include <algorithm>
#include <cstdio>

#include "src/hamlet/snapshot_store.h"

namespace hamlet {

Expr Expr::Var(SnapshotId var) {
  Expr e;
  e.AddVar(var, 1.0);
  return e;
}

void Expr::AddVar(SnapshotId var, double alpha) {
  auto it = std::lower_bound(
      terms_.begin(), terms_.end(), var,
      [](const ExprTerm& t, SnapshotId v) { return t.var < v; });
  if (it != terms_.end() && it->var == var) {
    it->alpha += alpha;
    return;
  }
  ExprTerm t;
  t.var = var;
  t.alpha = alpha;
  terms_.insert(it, t);
}

void Expr::AddExpr(const Expr& other) {
  c0_.Add(other.c0_);
  if (other.terms_.empty()) return;
  // Merge two sorted term lists.
  std::vector<ExprTerm> merged;
  merged.reserve(terms_.size() + other.terms_.size());
  size_t i = 0, j = 0;
  while (i < terms_.size() || j < other.terms_.size()) {
    if (j >= other.terms_.size() ||
        (i < terms_.size() && terms_[i].var < other.terms_[j].var)) {
      merged.push_back(terms_[i++]);
    } else if (i >= terms_.size() || other.terms_[j].var < terms_[i].var) {
      merged.push_back(other.terms_[j++]);
    } else {
      ExprTerm t = terms_[i];
      t.alpha += other.terms_[j].alpha;
      t.gamma += other.terms_[j].gamma;
      t.delta += other.terms_[j].delta;
      merged.push_back(t);
      ++i;
      ++j;
    }
  }
  terms_ = std::move(merged);
}

void Expr::ApplyTargetEvent(double val, bool need_sum, bool need_count_e) {
  // count(this) = c0.count + sum alpha_i * V_i.count. Folding
  // sum += val * count and count_e += count therefore shifts the constant
  // and the cross coefficients.
  if (need_sum) {
    c0_.sum += val * c0_.count;
    for (ExprTerm& t : terms_) t.gamma += val * t.alpha;
  }
  if (need_count_e) {
    c0_.count_e += c0_.count;
    for (ExprTerm& t : terms_) t.delta += t.alpha;
  }
}

LinAgg Expr::Eval(const SnapshotStore& store, ContextId ctx) const {
  LinAgg out = c0_;
  for (const ExprTerm& t : terms_) {
    LinAgg v = store.Get(t.var, ctx);
    out.count += t.alpha * v.count;
    out.sum += t.alpha * v.sum + t.gamma * v.count;
    out.count_e += t.alpha * v.count_e + t.delta * v.count;
  }
  return out;
}

double Expr::EvalCount(const SnapshotStore& store, ContextId ctx) const {
  double count = c0_.count;
  for (const ExprTerm& t : terms_)
    count += t.alpha * store.Get(t.var, ctx).count;
  return count;
}

std::string Expr::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", c0_.count);
  std::string out = buf;
  for (const ExprTerm& t : terms_) {
    std::snprintf(buf, sizeof(buf), " + %g*x%d", t.alpha, t.var);
    out += buf;
  }
  return out;
}

}  // namespace hamlet
