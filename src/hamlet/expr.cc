#include "src/hamlet/expr.h"

#include <algorithm>
#include <cstdio>

#include "src/hamlet/snapshot_store.h"

namespace hamlet {

namespace {

/// Merges two var-sorted term lists into `out` (capacity >= n1 + n2),
/// summing coefficients on matching vars. Returns the merged length.
int MergeTerms(const ExprTerm* a, int n1, const ExprTerm* b, int n2,
               ExprTerm* out) {
  int i = 0, j = 0, m = 0;
  while (i < n1 || j < n2) {
    if (j >= n2 || (i < n1 && a[i].var < b[j].var)) {
      out[m++] = a[i++];
    } else if (i >= n1 || b[j].var < a[i].var) {
      out[m++] = b[j++];
    } else {
      ExprTerm t = a[i];
      t.alpha += b[j].alpha;
      t.gamma += b[j].gamma;
      t.delta += b[j].delta;
      out[m++] = t;
      ++i;
      ++j;
    }
  }
  return m;
}

}  // namespace

Expr Expr::Var(SnapshotId var) {
  Expr e;
  e.AddVar(var, 1.0);
  return e;
}

void Expr::AssignTerms(const ExprTerm* src, int n) {
  if (n <= kInlineTerms) {
    std::copy(src, src + n, inline_.begin());
    num_inline_ = n;
    spill_.clear();
    return;
  }
  spill_.assign(src, src + n);
  num_inline_ = 0;
}

void Expr::InsertTerm(int pos, const ExprTerm& t) {
  if (!spill_.empty()) {
    spill_.insert(spill_.begin() + pos, t);
    return;
  }
  if (num_inline_ < kInlineTerms) {
    for (int i = num_inline_; i > pos; --i)
      inline_[static_cast<size_t>(i)] = inline_[static_cast<size_t>(i - 1)];
    inline_[static_cast<size_t>(pos)] = t;
    ++num_inline_;
    return;
  }
  // Inline buffer full: spill, preserving sorted order.
  spill_.reserve(static_cast<size_t>(num_inline_) + 1);
  spill_.assign(inline_.begin(), inline_.begin() + pos);
  spill_.push_back(t);
  spill_.insert(spill_.end(), inline_.begin() + pos,
                inline_.begin() + num_inline_);
  num_inline_ = 0;
}

void Expr::AddVar(SnapshotId var, double alpha) {
  const ExprTerm* data = terms_data();
  const int n = num_terms();
  const ExprTerm* it = std::lower_bound(
      data, data + n, var,
      [](const ExprTerm& t, SnapshotId v) { return t.var < v; });
  const int pos = static_cast<int>(it - data);
  if (pos < n && data[pos].var == var) {
    mutable_terms()[pos].alpha += alpha;
    return;
  }
  ExprTerm t;
  t.var = var;
  t.alpha = alpha;
  InsertTerm(pos, t);
}

void Expr::AddExpr(const Expr& other) {
  c0_.Add(other.c0_);
  const int n2 = other.num_terms();
  if (n2 == 0) return;
  const int n1 = num_terms();
  const ExprTerm* a = terms_data();
  const ExprTerm* b = other.terms_data();
  if (n1 + n2 <= kInlineTerms * 2) {
    // Hot path (FastSum nodes: 2 + 2 terms): merge on the stack, no heap.
    ExprTerm tmp[kInlineTerms * 2];
    const int m = MergeTerms(a, n1, b, n2, tmp);
    AssignTerms(tmp, m);
    return;
  }
  std::vector<ExprTerm> merged(static_cast<size_t>(n1 + n2));
  const int m = MergeTerms(a, n1, b, n2, merged.data());
  merged.resize(static_cast<size_t>(m));
  spill_ = std::move(merged);
  num_inline_ = 0;
}

int Expr::AppendFastSumEvent(SnapshotId start_var, SnapshotId entry_var,
                             bool is_target, double val, bool need_sum,
                             bool need_count_e) {
  // The virtual node lives entirely in Expr's inline buffer: a FastSum
  // running sum carries the two vars {u, x}, so the merge below never spills
  // and the steady-state run loop stays heap-allocation-free.
  Expr node;
  node.AddVar(start_var, 1.0);
  node.AddVar(entry_var, 1.0);
  node.AddExpr(*this);
  if (is_target) node.ApplyTargetEvent(val, need_sum, need_count_e);
  AddExpr(node);
  return node.num_terms();
}

void Expr::ApplyTargetEvent(double val, bool need_sum, bool need_count_e) {
  // count(this) = c0.count + sum alpha_i * V_i.count. Folding
  // sum += val * count and count_e += count therefore shifts the constant
  // and the cross coefficients.
  ExprTerm* data = mutable_terms();
  const int n = num_terms();
  if (need_sum) {
    c0_.sum += val * c0_.count;
    for (int i = 0; i < n; ++i) data[i].gamma += val * data[i].alpha;
  }
  if (need_count_e) {
    c0_.count_e += c0_.count;
    for (int i = 0; i < n; ++i) data[i].delta += data[i].alpha;
  }
}

LinAgg Expr::Eval(const SnapshotStore& store, ContextId ctx) const {
  LinAgg out = c0_;
  const ExprTerm* data = terms_data();
  const int n = num_terms();
  for (int i = 0; i < n; ++i) {
    const ExprTerm& t = data[i];
    LinAgg v = store.Get(t.var, ctx);
    out.count += t.alpha * v.count;
    out.sum += t.alpha * v.sum + t.gamma * v.count;
    out.count_e += t.alpha * v.count_e + t.delta * v.count;
  }
  return out;
}

double Expr::EvalCount(const SnapshotStore& store, ContextId ctx) const {
  double count = c0_.count;
  const ExprTerm* data = terms_data();
  const int n = num_terms();
  for (int i = 0; i < n; ++i)
    count += data[i].alpha * store.Get(data[i].var, ctx).count;
  return count;
}

std::string Expr::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", c0_.count);
  std::string out = buf;
  const ExprTerm* data = terms_data();
  const int n = num_terms();
  for (int i = 0; i < n; ++i) {
    std::snprintf(buf, sizeof(buf), " + %g*x%d", data[i].alpha, data[i].var);
    out += buf;
  }
  return out;
}

}  // namespace hamlet
