#include "src/hamlet/hamlet_engine.h"

#include <algorithm>

namespace hamlet {

HamletEngine::HamletEngine(const WorkloadPlan& plan, QuerySet members,
                           SharingPolicy* policy, Options options)
    : plan_(&plan),
      members_(members),
      policy_(policy),
      options_(options),
      num_types_(plan.workload->schema()->num_types()) {
  positive_of_type_.resize(static_cast<size_t>(num_types_));
  negated_of_type_.resize(static_cast<size_t>(num_types_));
  type_relevant_.resize(static_cast<size_t>(num_types_), false);
  lane_of_.assign(static_cast<size_t>(plan.num_exec()),
                  std::vector<int>(static_cast<size_t>(num_types_), -1));
  last_leading_.assign(static_cast<size_t>(plan.num_exec()), -1);
  last_boundary_neg_.resize(static_cast<size_t>(plan.num_exec()));
  open_ctxs_.resize(static_cast<size_t>(plan.num_exec()));

  members_.ForEach([&](QueryId q) {
    const ExecQuery& eq = Exec(q);
    for (const SeqElement& el : eq.tmpl.pattern.elements) {
      positive_of_type_[static_cast<size_t>(el.type)].Insert(q);
      type_relevant_[static_cast<size_t>(el.type)] = true;
    }
    for (const NegationMark& n : eq.tmpl.pattern.negations) {
      negated_of_type_[static_cast<size_t>(n.type)].Insert(q);
      type_relevant_[static_cast<size_t>(n.type)] = true;
    }
    last_boundary_neg_[static_cast<size_t>(q)].assign(
        static_cast<size_t>(eq.tmpl.pattern.num_positions()), -1);
    horizon_ = std::max(horizon_, eq.window.within);
  });
  BuildLanes();
}

void HamletEngine::BuildLanes() {
  // Shared lanes from the plan's share groups (restricted to this engine's
  // members); remaining (query, type) uses become solo lanes.
  std::vector<std::vector<bool>> covered(
      static_cast<size_t>(plan_->num_exec()),
      std::vector<bool>(static_cast<size_t>(num_types_), false));

  auto finish_lane = [&](Lane& lane) {
    lane.relevant.assign(static_cast<size_t>(num_types_), false);
    lane.static_members.ForEach([&](QueryId q) {
      const ExecQuery& eq = Exec(q);
      for (TypeId t : eq.tmpl.pattern.AllTypes())
        lane.relevant[static_cast<size_t>(t)] = true;
      lane.profile.MergeWith(AggProfile::For(eq.aggregate));
      lane.member_list.push_back(q);
      if (eq.has_edge_predicates()) lane.retain_history = true;
      if (lane.shared_edge_preds == nullptr) {
        lane.shared_edge_preds = &eq.edge_predicates;
        lane.scan_all_equality = !eq.edge_predicates.empty();
        for (const EdgePredicate& p : eq.edge_predicates) {
          if (p.op != CmpOp::kEq) lane.scan_all_equality = false;
        }
      }
      const int pos = eq.tmpl.pattern.PositionOf(lane.type);
      if (pos >= 0) {
        for (int pp : eq.tmpl.pred_positions[static_cast<size_t>(pos)]) {
          if (eq.tmpl.pattern.elements[static_cast<size_t>(pp)].type !=
              lane.type)
            lane.scan_has_cross = true;
        }
      }
    });
    lane.avg_sc_member.assign(lane.member_list.size(), 0.0);
  };

  for (const ShareGroup& group : plan_->share_groups) {
    QuerySet local = group.members.Intersect(members_);
    if (local.Count() < 2) continue;
    Lane lane;
    lane.type = group.type;
    lane.static_members = local;
    lane.shareable = true;
    lane.mode = group.mode;
    finish_lane(lane);
    // MIN/MAX cannot ride the per-event-snapshot LinAgg path; fall back to
    // solo processing for such groups (documented in DESIGN.md).
    if ((lane.profile.need_min || lane.profile.need_max) &&
        lane.mode != PropagationMode::kFastSum)
      continue;
    local.ForEach([&](QueryId q) {
      covered[static_cast<size_t>(q)][static_cast<size_t>(group.type)] = true;
      lane_of_[static_cast<size_t>(q)][static_cast<size_t>(group.type)] =
          static_cast<int>(lanes_.size());
    });
    lanes_.push_back(std::move(lane));
  }

  members_.ForEach([&](QueryId q) {
    const ExecQuery& eq = Exec(q);
    for (const SeqElement& el : eq.tmpl.pattern.elements) {
      if (covered[static_cast<size_t>(q)][static_cast<size_t>(el.type)])
        continue;
      covered[static_cast<size_t>(q)][static_cast<size_t>(el.type)] = true;
      Lane lane;
      lane.type = el.type;
      lane.static_members = QuerySet::Single(q);
      lane.shareable = false;
      lane.mode = eq.has_edge_predicates()
                      ? PropagationMode::kPerEventSnapshot
                      : PropagationMode::kFastSum;
      finish_lane(lane);
      lane_of_[static_cast<size_t>(q)][static_cast<size_t>(el.type)] =
          static_cast<int>(lanes_.size());
      lanes_.push_back(std::move(lane));
    }
  });

  if (options_.force_retain_history) {
    for (Lane& lane : lanes_) lane.retain_history = true;
  } else {
    // A query that participates in any scan path (edge predicates, or
    // membership of a per-event-snapshot share group) reads stored nodes of
    // all its predecessor-type lanes, so those lanes must retain closed
    // graphlets within the window horizon.
    QuerySet scanners;
    members_.ForEach([&](QueryId q) {
      if (Exec(q).has_edge_predicates()) scanners.Insert(q);
    });
    for (const Lane& lane : lanes_) {
      if (lane.mode != PropagationMode::kFastSum)
        scanners = scanners.Union(lane.static_members);
    }
    scanners.ForEach([&](QueryId q) {
      for (TypeId t : Exec(q).tmpl.pattern.AllTypes()) {
        int lane_idx = lane_of_[static_cast<size_t>(q)][static_cast<size_t>(t)];
        if (lane_idx >= 0)
          lanes_[static_cast<size_t>(lane_idx)].retain_history = true;
      }
    });
  }
}

const HamletEngine::Lane* HamletEngine::LaneOf(int exec_id,
                                               TypeId type) const {
  int idx = lane_of_[static_cast<size_t>(exec_id)][static_cast<size_t>(type)];
  return idx < 0 ? nullptr : &lanes_[static_cast<size_t>(idx)];
}

ContextId HamletEngine::OpenContext(int exec_id, Timestamp window_start,
                                    Timestamp window_end) {
  HAMLET_CHECK(members_.Contains(exec_id));
  ContextId id = static_cast<ContextId>(contexts_.size());
  contexts_.emplace_back();
  ContextState& ctx = contexts_.back();
  ctx.id = id;
  ctx.ResetFor(exec_id, num_types_, Exec(exec_id).tmpl.pattern.num_positions(),
               window_start, window_end);
  open_ctxs_[static_cast<size_t>(exec_id)].push_back(id);
  return id;
}

ContextResult HamletEngine::CloseContext(ContextId ctx_id) {
  ContextState& ctx = contexts_[static_cast<size_t>(ctx_id)];
  HAMLET_CHECK(ctx.open);
  const ExecQuery& eq = Exec(ctx.exec_id);
  ContextResult result;
  result.exec_id = ctx.exec_id;
  result.window_start = ctx.window_start;
  result.agg.count = ctx.final_lin.count;
  result.agg.sum = ctx.final_lin.sum;
  result.agg.count_e = ctx.final_lin.count_e;
  result.agg.min = ctx.final_mm.min;
  result.agg.max = ctx.final_mm.max;
  result.value = ExtractResult(result.agg, eq.aggregate.kind);
  ctx.open = false;
  auto& open = open_ctxs_[static_cast<size_t>(ctx.exec_id)];
  open.erase(std::remove(open.begin(), open.end(), ctx_id), open.end());
  store_.DropContext(ctx_id);
  for (Lane& lane : lanes_) {
    for (auto& [key, totals] : lane.key_totals) totals.Erase(ctx_id);
  }
  // Release the per-context vectors eagerly; the slot itself stays (ids are
  // never reused, so stale CtxMap entries in retained nodes cannot alias).
  ctx.type_totals.clear();
  ctx.type_totals.shrink_to_fit();
  ctx.type_mm.clear();
  ctx.type_mm.shrink_to_fit();
  ctx.boundary_totals.clear();
  ctx.boundary_totals.shrink_to_fit();
  ctx.boundary_mm.clear();
  ctx.boundary_mm.shrink_to_fit();
  return result;
}

void HamletEngine::OnPaneStart(Timestamp pane_start) {
  const Timestamp cutoff = pane_start - horizon_;
  if (pane_start != pane_start_ || events_this_pane_ > 0) {
    pane_event_counts_.emplace_back(pane_start_, events_this_pane_);
    events_this_pane_ = 0;
    while (!pane_event_counts_.empty() &&
           pane_event_counts_.front().first < cutoff) {
      pane_event_counts_.erase(pane_event_counts_.begin());
    }
  }
  pane_start_ = pane_start;
  for (Lane& lane : lanes_) {
    auto& h = lane.history;
    size_t keep = 0;
    for (Graphlet* g : h) {
      if (g->open_time < cutoff) {
        graphlet_pool_.Release(g);
      } else {
        h[keep++] = g;
      }
    }
    h.resize(keep);
  }
}

void HamletEngine::OnPaneEnd() {
  for (int idx : active_lanes_) {
    Lane& lane = lanes_[static_cast<size_t>(idx)];
    CloseLaneGraphlets(lane);
    lane.active = false;
  }
  active_lanes_.clear();
}

void HamletEngine::OnEvent(const Event& e) {
  // Row path: evaluate this event's predicates here, then join the shared
  // body. The columnar path computed the same passes-set batch-wide and
  // calls OnEventFiltered directly; keeping one body is what makes the two
  // paths bit-identical.
  if (e.type < 0 || e.type >= num_types_ ||
      !type_relevant_[static_cast<size_t>(e.type)]) {
    HAMLET_DCHECK(e.time > last_time_);
    last_time_ = e.time;
    return;
  }
  QuerySet passes;
  positive_of_type_[static_cast<size_t>(e.type)]
      .Union(negated_of_type_[static_cast<size_t>(e.type)])
      .ForEach([&](QueryId q) {
        if (PassesEventPredicates(Exec(q).event_predicates, e))
          passes.Insert(q);
      });
  OnEventFiltered(e, passes);
}

void HamletEngine::OnEventFiltered(const Event& e, const QuerySet& passes) {
  // A single-row run: ProcessRun is exactly the old per-event body, which
  // is what keeps the row and run paths one body and their emissions
  // bit-identical.
  ProcessRun(e, passes);
}

void HamletEngine::OnRunFiltered(const EventBatch& batch, const RunSpan& run) {
  const int n = run.row_end - run.row_begin;
  if (n <= 0) return;
  run_scratch_valid_ = false;
  Event e0;
  batch.CopyRow(run.row_begin, &e0);
  if (n == 1) {
    ProcessRun(e0, run.passes);
    return;
  }
  // Precondition: the run-granular dispatchers (run segmenter + Session's
  // component type gate, EvalHamletBatchColumnar's relevance filter) drop
  // irrelevant types before calling.
  HAMLET_DCHECK(e0.type >= 0 && e0.type < num_types_ &&
                type_relevant_[static_cast<size_t>(e0.type)]);

  QuerySet matched =
      positive_of_type_[static_cast<size_t>(e0.type)].Intersect(run.passes);
  QuerySet neg_matched =
      negated_of_type_[static_cast<size_t>(e0.type)].Intersect(run.passes);
  QuerySet touched = matched.Union(neg_matched);

  if (!matched.Intersect(neg_matched).Empty()) {
    // Some query both matches this type positively and negates it: its
    // negation state interleaves with its own appends row by row, so the
    // run decomposition below would not be exact. Replay per row (checked
    // before any state is touched, so each row is counted once).
    const Event* rows = MaterializedRows(batch, run.row_begin, run.row_end);
    for (int i = 0; i < n; ++i) ProcessRun(rows[i], run.passes);
    return;
  }

  HAMLET_DCHECK(e0.time > last_time_);
  last_time_ = batch.time(run.row_end - 1);
  stats_.events += n;
  if (touched.Empty()) {
    events_this_pane_ += n;
    return;
  }
  // Stage the pane counter the way the row path observes it: the only
  // mid-run reader is WindowEventsEstimate() at the burst open (row 0),
  // which the row path reaches with exactly one event counted.
  ++events_this_pane_;

  // One lane transition per run: after row 0 no foreign lane can become
  // active (only lanes of the run's type activate), so the remaining rows'
  // sweeps are no-ops in the row path.
  CloseForeignLanes(e0, touched);
  ApplyNegation(e0, neg_matched);

  if (!matched.Empty()) {
    for (Lane& lane : lanes_) {
      if (lane.type != e0.type) continue;
      QuerySet m = lane.static_members.Intersect(matched);
      if (m.Empty()) continue;
      InsertIntoLane(lane, e0, m);
    }
  }

  // matched and neg_matched are disjoint here, so negation writes (per
  // negated query) and appends (per matched query) touch disjoint state
  // and commute: applying the last row's negation stamp now leaves every
  // per-query timestamp and context clear exactly as the row-by-row
  // interleaving would.
  if (!neg_matched.Empty()) {
    Event e_last;
    batch.CopyRow(run.row_end - 1, &e_last);
    ApplyNegation(e_last, neg_matched);
  }
  if (!matched.Empty()) {
    for (Lane& lane : lanes_) {
      if (lane.type != e0.type) continue;
      QuerySet m = lane.static_members.Intersect(matched);
      if (m.Empty()) continue;
      AppendRun(lane, batch, run.row_begin + 1, run.row_end, m);
    }
  }
  events_this_pane_ += n - 1;
}

void HamletEngine::ProcessRun(const Event& e, const QuerySet& passes) {
  // Precondition: OnEvent and the run-granular dispatchers drop irrelevant
  // types before calling.
  HAMLET_DCHECK(e.type >= 0 && e.type < num_types_ &&
                type_relevant_[static_cast<size_t>(e.type)]);

  QuerySet matched =
      positive_of_type_[static_cast<size_t>(e.type)].Intersect(passes);
  QuerySet neg_matched =
      negated_of_type_[static_cast<size_t>(e.type)].Intersect(passes);
  QuerySet touched = matched.Union(neg_matched);

  HAMLET_DCHECK(e.time > last_time_);
  last_time_ = e.time;
  ++stats_.events;
  if (touched.Empty()) {
    ++events_this_pane_;
    return;
  }
  ++events_this_pane_;

  CloseForeignLanes(e, touched);
  ApplyNegation(e, neg_matched);

  if (!matched.Empty()) {
    for (Lane& lane : lanes_) {
      if (lane.type != e.type) continue;
      QuerySet m = lane.static_members.Intersect(matched);
      if (m.Empty()) continue;
      InsertIntoLane(lane, e, m);
    }
  }
}

const Event* HamletEngine::MaterializedRows(const EventBatch& batch,
                                            int begin, int end) {
  if (!run_scratch_valid_) {
    run_scratch_.resize(static_cast<size_t>(end - begin));
    for (int i = begin; i < end; ++i)
      batch.CopyRow(i, &run_scratch_[static_cast<size_t>(i - begin)]);
    run_scratch_valid_ = true;
  }
  return run_scratch_.data();
}

void HamletEngine::AppendRun(Lane& lane, const EventBatch& batch, int begin,
                             int end, const QuerySet& matched) {
  const int n = end - begin;
  // Row 0 already went through InsertIntoLane: the burst is open, the
  // sharing decision is made, and every graphlet this run appends to exists.
  // Classify each append sub-target as fast (write-only: provably never
  // scanned, no min/max, not retained -> node materialization and per-row
  // dispatch overhead can be skipped) or slow (replayed row-major below).
  const bool lane_mm = lane.profile.need_min || lane.profile.need_max;
  const bool is_target = lane.type == lane.profile.target_type;
  const AttrId target_attr = lane.profile.target_attr;

  Graphlet* shared = lane.shared_graphlet;
  bool shared_fast = false;
  if (shared != nullptr) {
    const bool divergent = matched.Intersect(shared->sharers) !=
                           shared->sharers;
    shared_fast = shared->mode == PropagationMode::kFastSum && !divergent &&
                  !lane_mm && !lane.retain_history;
  }
  if (shared_fast) {
    const double* vals = (target_attr == Schema::kInvalidId || !is_target)
                             ? nullptr
                             : batch.column(target_attr).data();
    for (int i = begin; i < end; ++i) {
      const double val = vals == nullptr ? 0.0 : vals[i];
      stats_.ops += shared->running_sum.AppendFastSumEvent(
          shared->start_var, shared->entry_var, is_target, val,
          lane.profile.need_sum, lane.profile.need_count_e);
    }
    shared->extra_events += n;
  }

  QuerySet slow_solo;
  matched.Minus(lane.current_shared).ForEach([&](QueryId q) {
    const ExecQuery& eq = Exec(q);
    const AggProfile profile = AggProfile::For(eq.aggregate);
    if (eq.has_edge_predicates() || profile.need_min || profile.need_max ||
        lane.retain_history) {
      slow_solo.Insert(q);
      return;
    }
    Graphlet* g = nullptr;
    for (auto& [id, gl] : lane.solo_graphlets) {
      if (id == q) g = gl;
    }
    // Hoisted AppendSolo fast path: context-outer, run-inner, with the
    // per-context lookups lifted out of the row loop. The FP operation
    // sequence per row is identical to AppendSolo's, so the running sums
    // are bit-identical.
    const bool q_target = lane.type == profile.target_type;
    const double* vals = profile.target_attr == Schema::kInvalidId
                             ? nullptr
                             : batch.column(profile.target_attr).data();
    for (ContextId c : open_ctxs_[static_cast<size_t>(q)]) {
      const LinAgg entry = g->solo_entry.Get(c, LinAgg());
      const double start = g->solo_start.Get(c, 0.0);
      LinAgg running = g->solo_sums.Get(c, LinAgg());
      for (int i = begin; i < end; ++i) {
        LinAgg v = entry;
        if (g->self_loop) v.Add(running);
        v.count += start;
        if (q_target) {
          const double val = vals == nullptr ? 0.0 : vals[i];
          v.count_e += v.count;
          v.sum += val * v.count;
        }
        running.Add(v);
      }
      g->solo_sums.Mut(c) = running;
      stats_.ops += n;
    }
    g->extra_events += n;
  });

  // Slow sub-targets replay row-major, preserving the row path's within-row
  // order (shared append, then solos in id order): a scanning append reads
  // this lane's live graphlet nodes with no future-time filter, so it must
  // never observe rows later than its own.
  const bool shared_slow = shared != nullptr && !shared_fast;
  if (shared_slow || !slow_solo.Empty()) {
    const Event* rows = MaterializedRows(batch, begin, end);
    for (int i = 0; i < n; ++i) {
      const Event& e = rows[i];
      if (shared_slow) AppendShared(lane, *shared, e, matched);
      slow_solo.ForEach([&](QueryId q) {
        Graphlet* g = nullptr;
        for (auto& [id, gl] : lane.solo_graphlets) {
          if (id == q) g = gl;
        }
        AppendSolo(lane, *g, e, q);
      });
    }
  }
}

void HamletEngine::CloseForeignLanes(const Event& e, const QuerySet& touched) {
  size_t keep = 0;
  for (size_t i = 0; i < active_lanes_.size(); ++i) {
    Lane& lane = lanes_[static_cast<size_t>(active_lanes_[i])];
    if (!lane.active) continue;  // compact stale entries
    if (lane.type != e.type &&
        lane.relevant[static_cast<size_t>(e.type)] &&
        !lane.static_members.Intersect(touched).Empty()) {
      CloseLaneGraphlets(lane);
      lane.active = false;
      continue;
    }
    active_lanes_[keep++] = active_lanes_[i];
  }
  active_lanes_.resize(keep);
}

void HamletEngine::ApplyNegation(const Event& e, const QuerySet& neg_matched) {
  neg_matched.ForEach([&](QueryId q) {
    const TemplateInfo& tmpl = Exec(q).tmpl;
    for (TypeId t : tmpl.leading_negations) {
      if (t == e.type) last_leading_[static_cast<size_t>(q)] = e.time;
    }
    bool trailing = false;
    for (TypeId t : tmpl.trailing_negations) trailing |= t == e.type;
    for (int pos = 1; pos < tmpl.pattern.num_positions(); ++pos) {
      if (!tmpl.BoundaryBlockedBy(pos, e.type)) continue;
      last_boundary_neg_[static_cast<size_t>(q)][static_cast<size_t>(pos)] =
          e.time;
      for (ContextId c : open_ctxs_[static_cast<size_t>(q)]) {
        ContextState& ctx = contexts_[static_cast<size_t>(c)];
        ctx.boundary_totals[static_cast<size_t>(pos)] = LinAgg();
        ctx.boundary_mm[static_cast<size_t>(pos)] = MinMax();
      }
    }
    if (trailing) {
      for (ContextId c : open_ctxs_[static_cast<size_t>(q)]) {
        ContextState& ctx = contexts_[static_cast<size_t>(c)];
        ctx.final_lin = LinAgg();
        ctx.final_mm = MinMax();
      }
    }
  });
}

double HamletEngine::StartValue(int exec_id, TypeId type,
                                const ContextState& ctx) const {
  const ExecQuery& eq = Exec(exec_id);
  if (eq.tmpl.pattern.PositionOf(type) != 0) return 0.0;
  if (last_leading_[static_cast<size_t>(exec_id)] >= ctx.window_start)
    return 0.0;
  return 1.0;
}

LinAgg HamletEngine::EntryValue(int exec_id, TypeId type,
                                const ContextState& ctx) const {
  const ExecQuery& eq = Exec(exec_id);
  const int pos = eq.tmpl.pattern.PositionOf(type);
  LinAgg out;
  for (int pp : eq.tmpl.pred_positions[static_cast<size_t>(pos)]) {
    const TypeId ptype =
        eq.tmpl.pattern.elements[static_cast<size_t>(pp)].type;
    if (pp == pos - 1 &&
        !eq.tmpl.boundary_negations[static_cast<size_t>(pos)].empty()) {
      out.Add(ctx.boundary_totals[static_cast<size_t>(pos)]);
    } else {
      out.Add(ctx.type_totals[static_cast<size_t>(ptype)]);
    }
  }
  return out;
}

MinMax HamletEngine::EntryMinMax(int exec_id, TypeId type,
                                 const ContextState& ctx) const {
  const ExecQuery& eq = Exec(exec_id);
  const int pos = eq.tmpl.pattern.PositionOf(type);
  MinMax out;
  for (int pp : eq.tmpl.pred_positions[static_cast<size_t>(pos)]) {
    const TypeId ptype =
        eq.tmpl.pattern.elements[static_cast<size_t>(pp)].type;
    if (pp == pos - 1 &&
        !eq.tmpl.boundary_negations[static_cast<size_t>(pos)].empty()) {
      out.Fold(ctx.boundary_mm[static_cast<size_t>(pos)]);
    } else {
      out.Fold(ctx.type_mm[static_cast<size_t>(ptype)]);
    }
  }
  return out;
}

void HamletEngine::InsertIntoLane(Lane& lane, const Event& e,
                                  const QuerySet& matched) {
  const bool burst_start =
      lane.shared_graphlet == nullptr && lane.solo_graphlets.empty();
  if (burst_start) {
    // Graphlet-entry snapshots read predecessor running totals (Eq. 5), so
    // every feeder lane of any member must be folded before the open. An
    // event matched by only a subset of members does not close the other
    // members' lanes in CloseForeignLanes, hence the explicit sweep here.
    size_t keep = 0;
    for (size_t i = 0; i < active_lanes_.size(); ++i) {
      Lane& other = lanes_[static_cast<size_t>(active_lanes_[i])];
      if (!other.active) continue;
      if (other.type != lane.type &&
          !other.static_members.Intersect(lane.static_members).Empty()) {
        CloseLaneGraphlets(other);
        other.active = false;
        continue;
      }
      active_lanes_[keep++] = active_lanes_[i];
    }
    active_lanes_.resize(keep);
    OpenGraphlets(lane, e);
  }

  if (lane.shared_graphlet != nullptr)
    AppendShared(lane, *lane.shared_graphlet, e, matched);

  QuerySet solo = matched.Minus(lane.current_shared);
  solo.ForEach([&](QueryId q) {
    Graphlet* g = nullptr;
    for (auto& [id, gl] : lane.solo_graphlets) {
      if (id == q) g = gl;
    }
    if (g == nullptr) g = OpenSoloGraphlet(lane, e, q);
    AppendSolo(lane, *g, e, q);
  });
  if (!lane.active &&
      (lane.shared_graphlet != nullptr || !lane.solo_graphlets.empty())) {
    lane.active = true;
    active_lanes_.push_back(
        static_cast<int>(&lane - lanes_.data()));
  }
}

void HamletEngine::OpenGraphlets(Lane& lane, const Event& e) {
  QuerySet shared;
  if (lane.shareable) {
    ++stats_.bursts_total;
    BurstStats bs;
    bs.k = lane.static_members.Count();
    bs.b = std::max(1.0, lane.avg_burst);
    bs.n = std::max(1.0, WindowEventsEstimate());
    bs.g = std::max(1.0, lane.avg_graphlet);
    bs.sc = lane.avg_sc + 1.0;  // +1: the graphlet-level snapshot itself
    bs.sp = std::max(1.0, lane.avg_sp);
    bs.sc_per_member = lane.avg_sc_member;
    int p = 1;
    int t = 1;
    lane.static_members.ForEach([&](QueryId q) {
      const ExecQuery& eq = Exec(q);
      int pos = eq.tmpl.pattern.PositionOf(lane.type);
      p = std::max(
          p, static_cast<int>(
                 eq.tmpl.pred_positions[static_cast<size_t>(pos)].size()));
      t = std::max(t, eq.tmpl.pattern.num_positions());
    });
    bs.p = p;
    bs.t = t;
    SharingDecision decision = policy_->Decide(lane.member_list, bs);
    shared = decision.shared.Intersect(lane.static_members);
    if (shared.Count() < 2) shared = QuerySet();
  }
  if (lane.shareable) {
    const bool was_shared = !lane.current_shared.Empty();
    const bool now_shared = !shared.Empty();
    if (was_shared && !now_shared) ++stats_.splits;
    if (!was_shared && now_shared && stats_.bursts_total > 1) ++stats_.merges;
  }
  lane.current_shared = shared;
  if (!shared.Empty()) {
    ++stats_.bursts_shared;
    lane.shared_graphlet = OpenSharedGraphlet(lane, e, shared);
  }
}

Graphlet* HamletEngine::OpenSharedGraphlet(Lane& lane, const Event& e,
                                           QuerySet sharers) {
  Graphlet* g = graphlet_pool_.Acquire();
  g->type = lane.type;
  g->sharers = sharers;
  g->shared = true;
  g->mode = lane.mode;
  g->self_loop = true;
  g->open_time = e.time;
  g->start_var = store_.Create();
  ++stats_.snapshots_created;
  const bool fast = lane.mode == PropagationMode::kFastSum;
  if (fast) {
    g->entry_var = store_.Create();
    ++stats_.snapshots_created;
  }
  const bool need_mm = lane.profile.need_min || lane.profile.need_max;
  sharers.ForEach([&](QueryId q) {
    for (ContextId c : open_ctxs_[static_cast<size_t>(q)]) {
      const ContextState& ctx = contexts_[static_cast<size_t>(c)];
      LinAgg start;
      start.count = StartValue(q, lane.type, ctx);
      if (start.count != 0.0) store_.Set(g->start_var, c, start);
      if (fast) {
        LinAgg entry = EntryValue(q, lane.type, ctx);
        if (!entry.IsZero()) store_.Set(g->entry_var, c, entry);
      }
      if (need_mm) g->entry_mm.Mut(c) = EntryMinMax(q, lane.type, ctx);
      ++stats_.ops;
    }
  });
  ++stats_.graphlets_opened;
  ++stats_.graphlets_shared;
  return g;
}

Graphlet* HamletEngine::OpenSoloGraphlet(Lane& lane, const Event& e,
                                         int exec_id) {
  Graphlet* g = graphlet_pool_.Acquire();
  g->type = lane.type;
  g->sharers = QuerySet::Single(exec_id);
  g->shared = false;
  g->open_time = e.time;
  const ExecQuery& eq = Exec(exec_id);
  const int pos = eq.tmpl.pattern.PositionOf(lane.type);
  bool self = false;
  for (int pp : eq.tmpl.pred_positions[static_cast<size_t>(pos)])
    self |= pp == pos;
  g->self_loop = self;
  const AggProfile profile = AggProfile::For(eq.aggregate);
  const bool need_mm = profile.need_min || profile.need_max;
  for (ContextId c : open_ctxs_[static_cast<size_t>(exec_id)]) {
    const ContextState& ctx = contexts_[static_cast<size_t>(c)];
    g->solo_start.Mut(c) = StartValue(exec_id, lane.type, ctx);
    g->solo_entry.Mut(c) = EntryValue(exec_id, lane.type, ctx);
    if (need_mm) g->entry_mm.Mut(c) = EntryMinMax(exec_id, lane.type, ctx);
    ++stats_.ops;
  }
  ++stats_.graphlets_opened;
  lane.solo_graphlets.emplace_back(exec_id, g);
  return g;
}

NodeValue HamletEngine::ScanPredecessors(int exec_id, const Event& e,
                                         ContextId ctx_id,
                                         const ContextState& ctx,
                                         const Lane& own_lane,
                                         bool exclude_own_type) {
  (void)ctx;
  const ExecQuery& eq = Exec(exec_id);
  const int pos = eq.tmpl.pattern.PositionOf(e.type);
  NodeValue out;
  auto scan_graphlet = [&](const Graphlet& g, Timestamp blocked_after) {
    for (const GraphletNode& n : g.nodes) {
      ++stats_.ops;
      if (!n.members.Contains(exec_id)) continue;
      if (n.event.time <= blocked_after) continue;
      if (!PassesEdgePredicates(eq.edge_predicates, n.event, e)) continue;
      out.lin.Add(n.EvalLin(store_, ctx_id));
      if (n.numeric) out.mm.Fold(n.values.Get(ctx_id, NodeValue()).mm);
    }
  };
  for (int pp : eq.tmpl.pred_positions[static_cast<size_t>(pos)]) {
    const TypeId ptype =
        eq.tmpl.pattern.elements[static_cast<size_t>(pp)].type;
    if (exclude_own_type && ptype == e.type) continue;
    const Timestamp blocked_after =
        (pp == pos - 1)
            ? last_boundary_neg_[static_cast<size_t>(exec_id)]
                                [static_cast<size_t>(pos)]
            : -1;
    const Lane* lane2 = ptype == own_lane.type ? &own_lane
                                               : LaneOf(exec_id, ptype);
    if (lane2 == nullptr) continue;
    for (const Graphlet* g : lane2->history) scan_graphlet(*g, blocked_after);
    if (lane2->shared_graphlet)
      scan_graphlet(*lane2->shared_graphlet, blocked_after);
    for (const auto& [id, g] : lane2->solo_graphlets) {
      if (id == exec_id) scan_graphlet(*g, blocked_after);
    }
  }
  return out;
}

void HamletEngine::AppendShared(Lane& lane, Graphlet& g, const Event& e,
                                const QuerySet& matched) {
  const QuerySet members = matched.Intersect(g.sharers);
  const bool need_mm = lane.profile.need_min || lane.profile.need_max;
  const bool divergent = members != g.sharers;
  const double val = lane.profile.target_attr == Schema::kInvalidId
                         ? 0.0
                         : (e.type == lane.profile.target_type
                                ? e.attr(lane.profile.target_attr)
                                : 0.0);
  const bool is_target = e.type == lane.profile.target_type;

  if (g.mode == PropagationMode::kFastSum && !divergent && !need_mm &&
      !lane.retain_history) {
    // Node-free append: nothing will ever read this event's node (no
    // scanner reaches a !retain_history lane, no min/max fold), so fold its
    // count(e) = u + x + R straight into the running sum. Keeping the
    // per-event path node-free here is what makes engine memory a function
    // of burst structure alone, independent of ingestion chunking — the
    // run path (AppendRun) applies the same rule for rows past the head.
    stats_.ops += g.running_sum.AppendFastSumEvent(
        g.start_var, g.entry_var, is_target, val, lane.profile.need_sum,
        lane.profile.need_count_e);
    ++g.extra_events;
    return;
  }

  GraphletNode node;
  node.event = e;
  node.members = members;

  if (g.mode == PropagationMode::kFastSum && !divergent) {
    // count(e) = u + x + R (Algorithm 1, Line 18 — shared propagation).
    node.expr.AddVar(g.start_var, 1.0);
    node.expr.AddVar(g.entry_var, 1.0);
    node.expr.AddExpr(g.running_sum);
    if (is_target)
      node.expr.ApplyTargetEvent(val, lane.profile.need_sum,
                                 lane.profile.need_count_e);
    stats_.ops += node.expr.num_terms();
  } else if (g.mode == PropagationMode::kSharedScan && !divergent) {
    // Shared scan: same-type predecessor validity is query-agnostic
    // (identical edge predicates), so ONE pass serves every sharer at once.
    // Cross-type predecessors stay per query and ride one event-level
    // snapshot. With equality-only predicates the same-type side uses
    // per-key running sums (O(terms) per event); otherwise it scans the
    // stored nodes.
    node.expr.AddVar(g.start_var, 1.0);
    if (lane.scan_has_cross || lane.history_has_numeric) {
      SnapshotId z = store_.Create();
      ++stats_.snapshots_created;
      ++stats_.event_snapshots;
      g.sharers.Intersect(node.members).ForEach([&](QueryId q) {
        for (ContextId c : open_ctxs_[static_cast<size_t>(q)]) {
          const ContextState& cs = contexts_[static_cast<size_t>(c)];
          NodeValue scanned = ScanPredecessors(q, e, c, cs, lane,
                                               /*exclude_own_type=*/true);
          // Solo-era (numeric) own-type nodes are invisible to the symbolic
          // scan below; fold them into the per-query snapshot.
          if (lane.history_has_numeric) {
            for (const Graphlet* gg : lane.history) {
              for (const GraphletNode& n : gg->nodes) {
                ++stats_.ops;
                if (!n.numeric || !n.members.Contains(q)) continue;
                if (!PassesEdgePredicates(Exec(q).edge_predicates, n.event,
                                          e))
                  continue;
                scanned.lin.Add(n.values.Get(c, NodeValue()).lin);
              }
            }
          }
          if (!scanned.lin.IsZero()) store_.Set(z, c, scanned.lin);
        }
      });
      node.expr.AddVar(z, 1.0);
    }
    if (lane.scan_all_equality) {
      // Equality partition key of this event.
      std::vector<double> key;
      key.reserve(lane.shared_edge_preds->size());
      for (const EdgePredicate& p : *lane.shared_edge_preds)
        key.push_back(e.attr(p.attr));
      // Lazy per-key entry variable covering closed graphlets' same-key
      // contributions (exact: equality is transitive).
      SnapshotId x_key = -1;
      for (const auto& [k, var] : g.key_entry) {
        if (k == key) x_key = var;
      }
      if (x_key < 0) {
        x_key = store_.Create();
        ++stats_.snapshots_created;
        g.key_entry.emplace_back(key, x_key);
        for (const auto& [k, totals] : lane.key_totals) {
          if (k != key) continue;
          for (const auto& [c, v] : totals) {
            if (!v.IsZero()) store_.Set(x_key, c, v);
            ++stats_.ops;
          }
        }
      }
      node.expr.AddVar(x_key, 1.0);
      Expr* running = nullptr;
      for (auto& [k, r] : g.key_running) {
        if (k == key) running = &r;
      }
      if (running == nullptr) {
        g.key_running.emplace_back(key, Expr());
        running = &g.key_running.back().second;
      }
      node.expr.AddExpr(*running);
      if (is_target)
        node.expr.ApplyTargetEvent(val, lane.profile.need_sum,
                                   lane.profile.need_count_e);
      running->AddExpr(node.expr);
      stats_.ops += node.expr.num_terms();
    } else {
      auto scan = [&](const Graphlet& gg) {
        for (const GraphletNode& n : gg.nodes) {
          ++stats_.ops;
          if (n.numeric) continue;  // folded into the per-query snapshot
          // Partial-membership nodes went through the event-snapshot path,
          // so their expressions already evaluate to 0 for non-member
          // contexts.
          if (!PassesEdgePredicates(*lane.shared_edge_preds, n.event, e))
            continue;
          node.expr.AddExpr(n.expr);
        }
      };
      for (const Graphlet* gg : lane.history) scan(*gg);
      scan(g);
      if (is_target)
        node.expr.ApplyTargetEvent(val, lane.profile.need_sum,
                                   lane.profile.need_count_e);
      stats_.ops += node.expr.num_terms();
    }
  } else {
    // Event-level snapshot (Algorithm 1, Lines 19-20 / Definition 9):
    // evaluate per (query, context) and publish as a fresh variable.
    SnapshotId z = store_.Create();
    ++stats_.snapshots_created;
    ++stats_.event_snapshots;
    g.sharers.Intersect(node.members).ForEach([&](QueryId q) {
      for (ContextId c : open_ctxs_[static_cast<size_t>(q)]) {
        const ContextState& cs = contexts_[static_cast<size_t>(c)];
        LinAgg lin;
        if (g.mode == PropagationMode::kFastSum) {
          lin = store_.Get(g.start_var, c);
          lin.Add(store_.Get(g.entry_var, c));
          lin.Add(g.running_sum.Eval(store_, c));
          stats_.ops += g.running_sum.num_terms();
        } else {
          NodeValue scanned = ScanPredecessors(q, e, c, cs, lane);
          lin = scanned.lin;
          lin.count += StartValue(q, lane.type, cs);
        }
        if (is_target) {
          if (lane.profile.need_count_e) lin.count_e += lin.count;
          if (lane.profile.need_sum) lin.sum += val * lin.count;
        }
        store_.Set(z, c, lin);
      }
    });
    node.expr.AddVar(z, 1.0);
    // In equality-partitioned scan lanes, divergent nodes must still feed
    // their key's running sum so later same-key events see them.
    if (g.mode == PropagationMode::kSharedScan && lane.scan_all_equality) {
      std::vector<double> key;
      for (const EdgePredicate& p : *lane.shared_edge_preds)
        key.push_back(e.attr(p.attr));
      Expr* running = nullptr;
      for (auto& [k, r] : g.key_running) {
        if (k == key) running = &r;
      }
      if (running == nullptr) {
        g.key_running.emplace_back(key, Expr());
        running = &g.key_running.back().second;
      }
      running->AddExpr(node.expr);
    }
  }

  if (need_mm) FoldNodeMinMax(lane, g, node, e);
  g.running_sum.AddExpr(node.expr);
  g.nodes.push_back(std::move(node));
  // Snapshot-attribution statistics for Theorem 4.1's pruning: queries on
  // the minority side of a divergence "introduce" the snapshot.
  if (divergent) {
    for (size_t i = 0; i < lane.member_list.size(); ++i) {
      int q = lane.member_list[i];
      if (!g.sharers.Contains(q)) continue;
      if (!node.members.Contains(q)) lane.avg_sc_member[i] += 1.0;
    }
  } else if (g.mode == PropagationMode::kPerEventSnapshot) {
    for (size_t i = 0; i < lane.member_list.size(); ++i) {
      int q = lane.member_list[i];
      if (g.sharers.Contains(q) && Exec(q).has_edge_predicates())
        lane.avg_sc_member[i] += 1.0;
    }
  }
}

void HamletEngine::FoldNodeMinMax(Lane& lane, Graphlet& g,
                                  const GraphletNode& node, const Event& e) {
  const bool is_target = e.type == lane.profile.target_type;
  const double val = lane.profile.target_attr == Schema::kInvalidId
                         ? 0.0
                         : (is_target ? e.attr(lane.profile.target_attr)
                                      : 0.0);
  g.sharers.Intersect(node.members).ForEach([&](QueryId q) {
    for (ContextId c : open_ctxs_[static_cast<size_t>(q)]) {
      MinMax m = g.entry_mm.Get(c, MinMax());
      if (g.self_loop) m.Fold(g.run_mm.Get(c, MinMax()));
      if (is_target) {
        const double count = node.expr.EvalCount(store_, c);
        stats_.ops += node.expr.num_terms();
        if (count > 0.0) m.FoldValue(val);
      }
      g.run_mm.Mut(c).Fold(m);
    }
  });
}

void HamletEngine::AppendSolo(Lane& lane, Graphlet& g, const Event& e,
                              int exec_id) {
  const ExecQuery& eq = Exec(exec_id);
  const AggProfile profile = AggProfile::For(eq.aggregate);
  const bool need_mm = profile.need_min || profile.need_max;
  const bool is_target = e.type == profile.target_type;
  const double val =
      profile.target_attr == Schema::kInvalidId
          ? 0.0
          : (is_target ? e.attr(profile.target_attr) : 0.0);

  if (!eq.has_edge_predicates() && !need_mm && !lane.retain_history) {
    // Node-free append, mirroring AppendShared's fast branch: the numeric
    // per-context values land in solo_sums only. Same conditions as
    // AppendRun's hoisted solo loop, so head rows and run tails make
    // identical materialization decisions.
    for (ContextId c : open_ctxs_[static_cast<size_t>(exec_id)]) {
      LinAgg v = g.solo_entry.Get(c, LinAgg());
      if (g.self_loop) v.Add(g.solo_sums.Get(c, LinAgg()));
      ++stats_.ops;
      v.count += g.solo_start.Get(c, 0.0);
      if (is_target) {
        v.count_e += v.count;
        v.sum += val * v.count;
      }
      g.solo_sums.Mut(c).Add(v);
    }
    ++g.extra_events;
    return;
  }

  GraphletNode node;
  node.event = e;
  node.members = QuerySet::Single(exec_id);
  node.numeric = true;
  for (ContextId c : open_ctxs_[static_cast<size_t>(exec_id)]) {
    const ContextState& ctx = contexts_[static_cast<size_t>(c)];
    NodeValue v;
    MinMax pred_mm = g.entry_mm.Get(c, MinMax());
    if (!eq.has_edge_predicates()) {
      v.lin = g.solo_entry.Get(c, LinAgg());
      if (g.self_loop) v.lin.Add(g.solo_sums.Get(c, LinAgg()));
      if (g.self_loop) pred_mm.Fold(g.run_mm.Get(c, MinMax()));
      ++stats_.ops;
    } else {
      NodeValue scanned = ScanPredecessors(exec_id, e, c, ctx, lane);
      v.lin = scanned.lin;
      pred_mm = scanned.mm;
    }
    v.lin.count += g.solo_start.Get(c, 0.0);
    if (is_target) {
      v.lin.count_e += v.lin.count;
      v.lin.sum += val * v.lin.count;
    }
    if (need_mm) {
      v.mm = pred_mm;
      if (is_target && v.lin.count > 0.0) v.mm.FoldValue(val);
      g.run_mm.Mut(c).Fold(v.mm);
    }
    g.solo_sums.Mut(c).Add(v.lin);
    node.values.Mut(c) = v;
  }
  g.nodes.push_back(std::move(node));
}

void HamletEngine::AddToContext(ContextState& ctx, int exec_id, TypeId type,
                                const LinAgg& lin, const MinMax& mm) {
  const ExecQuery& eq = Exec(exec_id);
  ctx.type_totals[static_cast<size_t>(type)].Add(lin);
  ctx.type_mm[static_cast<size_t>(type)].Fold(mm);
  const int pos = eq.tmpl.pattern.PositionOf(type);
  const int next = pos + 1;
  if (next < eq.tmpl.pattern.num_positions() &&
      !eq.tmpl.boundary_negations[static_cast<size_t>(next)].empty()) {
    ctx.boundary_totals[static_cast<size_t>(next)].Add(lin);
    ctx.boundary_mm[static_cast<size_t>(next)].Fold(mm);
  }
  if (pos == eq.tmpl.end_position()) {
    ctx.final_lin.Add(lin);
    ctx.final_mm.Fold(mm);
  }
}

void HamletEngine::FoldGraphlet(Lane& lane, Graphlet& g) {
  // num_events(), not nodes.empty(): the run path's fast appends skip node
  // materialization, leaving their contribution only in the running sums.
  if (g.num_events() == 0) return;
  g.sharers.ForEach([&](QueryId q) {
    for (ContextId c : open_ctxs_[static_cast<size_t>(q)]) {
      ContextState& ctx = contexts_[static_cast<size_t>(c)];
      LinAgg v = g.shared ? g.running_sum.Eval(store_, c)
                          : g.solo_sums.Get(c, LinAgg());
      MinMax mm = g.run_mm.Get(c, MinMax());
      AddToContext(ctx, q, g.type, v, mm);
      stats_.ops += g.shared ? g.running_sum.num_terms() : 1;
      // Keyed cross-graphlet totals for the equality-partitioned scan.
      for (const auto& [key, running] : g.key_running) {
        CtxMap<LinAgg>* totals = nullptr;
        for (auto& [k, t] : lane.key_totals) {
          if (k == key) totals = &t;
        }
        if (totals == nullptr) {
          lane.key_totals.emplace_back(key, CtxMap<LinAgg>());
          totals = &lane.key_totals.back().second;
        }
        totals->Mut(c).Add(running.Eval(store_, c));
        stats_.ops += running.num_terms();
      }
    }
  });
  // Update the lane's moving averages feeding the optimizer.
  const double d = options_.stats_decay;
  lane.avg_graphlet =
      (1 - d) * lane.avg_graphlet + d * static_cast<double>(g.num_events());
  lane.avg_burst = lane.avg_graphlet;
  lane.avg_sp = (1 - d) * lane.avg_sp +
                d * static_cast<double>(std::max(1, g.running_sum.num_terms()));
}

void HamletEngine::CloseLaneGraphlets(Lane& lane) {
  bool had_any = false;
  if (lane.shared_graphlet != nullptr) {
    had_any = true;
    FoldGraphlet(lane, *lane.shared_graphlet);
    if (lane.retain_history)
      lane.history.push_back(lane.shared_graphlet);
    else
      graphlet_pool_.Release(lane.shared_graphlet);
    lane.shared_graphlet = nullptr;
  }
  for (auto& [id, g] : lane.solo_graphlets) {
    (void)id;
    had_any = true;
    FoldGraphlet(lane, *g);
    if (lane.retain_history) {
      if (!g->nodes.empty()) lane.history_has_numeric = true;
      lane.history.push_back(g);
    } else {
      graphlet_pool_.Release(g);
    }
  }
  lane.solo_graphlets.clear();
  if (had_any) {
    // Decay the per-member snapshot attribution into a per-burst average.
    const double d = options_.stats_decay;
    double sc_total = 0.0;
    for (double& v : lane.avg_sc_member) {
      sc_total += v;
      v *= (1 - d);
    }
    lane.avg_sc = (1 - d) * lane.avg_sc + d * sc_total;
  }
}

double HamletEngine::WindowEventsEstimate() const {
  double n = static_cast<double>(events_this_pane_);
  for (const auto& [start, count] : pane_event_counts_) {
    (void)start;
    n += static_cast<double>(count);
  }
  return n;
}

int64_t HamletEngine::MemoryBytes() const {
  // Graphlet objects live in the pool's arena: charge the BLOCK RESERVATION
  // (what the allocator actually holds) once, then each object's dynamic
  // payload — free-listed graphlets keep their warmed capacities, which are
  // real memory, so the sweep covers live and recycled objects alike.
  int64_t bytes = static_cast<int64_t>(sizeof(HamletEngine));
  bytes += graphlet_pool_.bytes_reserved();
  for (const Graphlet* g : graphlet_pool_.objects()) bytes += g->MemoryBytes();
  bytes += store_.MemoryBytes();
  for (const ContextState& ctx : contexts_) {
    if (ctx.open) bytes += ctx.MemoryBytes();
  }
  return bytes;
}

std::vector<HamletLaneStats> HamletEngine::ExportLaneStats() const {
  std::vector<HamletLaneStats> out;
  out.reserve(lanes_.size());
  for (const Lane& lane : lanes_) {
    HamletLaneStats s;
    s.type = lane.type;
    s.avg_burst = lane.avg_burst;
    s.avg_graphlet = lane.avg_graphlet;
    s.avg_sc = lane.avg_sc;
    s.avg_sp = lane.avg_sp;
    out.push_back(s);
  }
  return out;
}

void HamletEngine::SeedLaneStats(std::span<const HamletLaneStats> stats) {
  const size_t n = std::min(lanes_.size(), stats.size());
  for (size_t i = 0; i < n; ++i) {
    Lane& lane = lanes_[i];
    if (stats[i].type != lane.type) continue;
    lane.avg_burst = stats[i].avg_burst;
    lane.avg_graphlet = stats[i].avg_graphlet;
    lane.avg_sc = stats[i].avg_sc;
    lane.avg_sp = stats[i].avg_sp;
  }
}

}  // namespace hamlet
