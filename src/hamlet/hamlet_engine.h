// The HAMLET shared online trend aggregation engine (paper §3.3, Algorithm 1,
// and the §4.2 split/merge mechanics).
//
// One engine instance serves one *component* of exec queries (queries
// connected through share groups) over one group-by partition of the stream.
// Within the component:
//   * events are organised into lanes, one per (type, share group) plus one
//     per (type, solo query);
//   * each lane maintains graphlets — maximal same-type runs, closed when an
//     event of a different relevant type arrives or the pane ends;
//   * shared graphlets propagate symbolic expressions over snapshot
//     variables (graphlet-entry x, start u, event-level z); per-(query,
//     window) values live in the snapshot store and context tables;
//   * at every burst start the engine consults a SharingPolicy, enabling the
//     dynamic split/merge behaviour of the paper's optimizer.
//
// Correctness contract (enforced by property tests): for every supported
// workload and stream, the per-context results equal GretaEngine's and the
// brute-force enumerator's.
#ifndef HAMLET_HAMLET_HAMLET_ENGINE_H_
#define HAMLET_HAMLET_HAMLET_ENGINE_H_

#include <memory>
#include <span>
#include <vector>

#include "src/common/arena.h"
#include "src/hamlet/graphlet.h"
#include "src/hamlet/sharing_policy.h"
#include "src/query/run_segmenter.h"

namespace hamlet {

/// Aggregated runtime counters (drives the paper's §6.2 diagnostics:
/// snapshot counts, shared-burst fraction, decision latency).
struct HamletStats {
  int64_t events = 0;
  int64_t bursts_total = 0;
  int64_t bursts_shared = 0;
  int64_t graphlets_opened = 0;
  int64_t graphlets_shared = 0;
  int64_t snapshots_created = 0;
  int64_t event_snapshots = 0;
  int64_t splits = 0;
  int64_t merges = 0;
  int64_t ops = 0;  ///< node visits + expr term ops (cost-model unit)
};

/// One lane's moving-average sharing statistics, exportable for the
/// sharded runtime's work-stealing hand-off: when a group migrates shards,
/// the thief's fresh engine seeds these instead of re-learning the burst
/// shape from the defaults. Sharing decisions never change emission
/// values, so the seed is purely a performance warm-start.
struct HamletLaneStats {
  TypeId type = Schema::kInvalidId;
  double avg_burst = 4.0;
  double avg_graphlet = 4.0;
  double avg_sc = 0.0;
  double avg_sp = 1.0;
};

/// Result of a closed window instance.
struct ContextResult {
  int exec_id = -1;
  Timestamp window_start = 0;
  double value = 0.0;
  AggValue agg;
};

/// See file comment.
class HamletEngine {
 public:
  struct Options {
    /// Retain closed graphlets (needed for scan modes; the engine enables
    /// this automatically when any member has edge predicates).
    bool force_retain_history = false;
    /// Exponential moving-average factor for burst statistics.
    double stats_decay = 0.3;
  };

  /// `plan` and `policy` must outlive the engine. `members` selects the exec
  /// queries this engine evaluates (a component).
  HamletEngine(const WorkloadPlan& plan, QuerySet members,
               SharingPolicy* policy, Options options);
  HamletEngine(const WorkloadPlan& plan, QuerySet members,
               SharingPolicy* policy)
      : HamletEngine(plan, members, policy, Options()) {}

  /// Opens a window instance for `exec_id` at [ws, we). Call at pane
  /// boundaries before feeding the pane's events.
  ContextId OpenContext(int exec_id, Timestamp window_start,
                        Timestamp window_end);

  /// Closes a window instance and returns its final aggregate. Call after
  /// OnPaneEnd of the window's last pane.
  ContextResult CloseContext(ContextId ctx);

  /// Pane lifecycle. Events must arrive strictly increasing in time and
  /// within [pane start, pane end).
  void OnPaneStart(Timestamp pane_start);
  void OnEvent(const Event& e);
  /// Columnar dispatch: like OnEvent, but event-predicate evaluation already
  /// happened batch-wide (src/query/columnar_predicate.h) — `passes` holds
  /// every exec query whose predicates `e` satisfies (bits for queries
  /// outside this engine's members are ignored). OnEvent is a thin wrapper
  /// computing `passes` per row, so the two paths are bit-identical.
  void OnEventFiltered(const Event& e, const QuerySet& passes);
  /// Run-granular dispatch: feeds one segmented run (same type, same
  /// pass-set, one pane — see src/query/run_segmenter.h) in a single call.
  /// Lane transitions (CloseForeignLanes / ApplyNegation / burst open +
  /// sharing decision) happen once per run, and write-only graphlets take
  /// hoisted snapshot-count propagation loops over the whole run instead of
  /// per-event dispatch. Emissions are bit-identical to feeding the span's
  /// rows through OnEventFiltered one by one: both are the same ProcessRun
  /// body, and every hoist replays the row path's exact FP op sequence.
  void OnRunFiltered(const EventBatch& batch, const RunSpan& run);
  void OnPaneEnd();

  /// Logical memory footprint (paper's metric: stored events, snapshot
  /// expressions and values, per-context tables).
  int64_t MemoryBytes() const;

  const HamletStats& stats() const { return stats_; }
  const SnapshotStore& snapshot_store() const { return store_; }

  /// Work-stealing hand-off: the per-lane sharing statistics, in the
  /// engine's deterministic lane order (BuildLanes is a pure function of
  /// plan + members, so two engines over the same component agree).
  std::vector<HamletLaneStats> ExportLaneStats() const;
  /// Seeds this engine's lanes from a sibling engine's ExportLaneStats.
  /// Lanes match by index; an entry whose type disagrees (layouts from
  /// different plans) is skipped rather than misapplied.
  void SeedLaneStats(std::span<const HamletLaneStats> stats);

 private:
  /// One per (type, share group) and per (type, solo query).
  struct Lane {
    TypeId type = Schema::kInvalidId;
    QuerySet static_members;
    bool shareable = false;
    PropagationMode mode = PropagationMode::kFastSum;
    AggProfile profile;
    /// Types whose matched events close this lane's graphlets.
    std::vector<bool> relevant;
    /// Dynamic decision for the current burst round.
    QuerySet current_shared;
    /// Graphlets are pool-owned (graphlet_pool_); lanes hold raw pointers.
    /// Non-retained graphlets recycle at burst/pane boundaries, retained
    /// ones when they age past the window horizon in OnPaneStart.
    Graphlet* shared_graphlet = nullptr;
    std::vector<std::pair<int, Graphlet*>> solo_graphlets;
    std::vector<Graphlet*> history;
    /// Moving averages for the optimizer.
    double avg_burst = 4.0;
    double avg_graphlet = 4.0;
    double avg_sc = 0.0;
    double avg_sp = 1.0;
    std::vector<double> avg_sc_member;  ///< parallel to member_list
    std::vector<int> member_list;
    bool retain_history = false;
    /// kSharedScan: whether any member has cross-type predecessors for this
    /// lane's type (they ride the per-event cross snapshot).
    bool scan_has_cross = false;
    /// kSharedScan: retained history contains solo-era numeric nodes.
    bool history_has_numeric = false;
    /// kSharedScan: all edge predicates are equality -> partitioned running
    /// sums replace per-event stored-node scans (O(terms) per event).
    bool scan_all_equality = false;
    /// Cross-graphlet per-equality-key payload totals, per context.
    std::vector<std::pair<std::vector<double>, CtxMap<LinAgg>>> key_totals;
    /// kSharedScan: the members' (identical) edge predicates.
    const std::vector<EdgePredicate>* shared_edge_preds = nullptr;
    /// Whether this lane currently has open graphlets (tracked in
    /// active_lanes_ so the per-event closure sweep touches only lanes with
    /// live graphlets instead of every lane).
    bool active = false;
  };

  // --- construction helpers ---
  void BuildLanes();

  // --- event path ---
  /// One filtered event through the full per-event pipeline (transition,
  /// negation, lane inserts): the old OnEventFiltered body, shared with
  /// OnRunFiltered's run-head row and its per-row fallback.
  void ProcessRun(const Event& e, const QuerySet& passes);
  /// Appends batch rows [begin, end) (the run's tail: the head row went
  /// through InsertIntoLane) to the lane's open graphlets. Write-only
  /// sub-targets are hoisted and read the batch columns directly — no
  /// per-row Event materialization; slow sub-targets replay row-major over
  /// MaterializedRows().
  void AppendRun(Lane& lane, const EventBatch& batch, int begin, int end,
                 const QuerySet& matched);
  /// Lazily materializes batch rows [begin, end) into run_scratch_ (at most
  /// once per OnRunFiltered call) and returns the rows, shifted so index 0
  /// is row `begin`.
  const Event* MaterializedRows(const EventBatch& batch, int begin, int end);
  void CloseForeignLanes(const Event& e, const QuerySet& touched);
  void ApplyNegation(const Event& e, const QuerySet& neg_matched);
  void InsertIntoLane(Lane& lane, const Event& e, const QuerySet& matched);
  void OpenGraphlets(Lane& lane, const Event& e);
  Graphlet* OpenSharedGraphlet(Lane& lane, const Event& e, QuerySet sharers);
  Graphlet* OpenSoloGraphlet(Lane& lane, const Event& e, int exec_id);
  void AppendShared(Lane& lane, Graphlet& g, const Event& e,
                    const QuerySet& matched);
  void AppendSolo(Lane& lane, Graphlet& g, const Event& e, int exec_id);
  void CloseLaneGraphlets(Lane& lane);
  void FoldGraphlet(Lane& lane, Graphlet& g);

  // --- evaluation helpers ---
  /// Entry payload for a new graphlet of `type` for (exec, ctx): the sum of
  /// predecessor-type totals with negation-guarded boundaries (Eq. 5).
  LinAgg EntryValue(int exec_id, TypeId type, const ContextState& ctx) const;
  MinMax EntryMinMax(int exec_id, TypeId type, const ContextState& ctx) const;
  double StartValue(int exec_id, TypeId type, const ContextState& ctx) const;
  /// Scan-based predecessor accumulation for query `exec_id` (per-event
  /// snapshot mode and solo lanes with edge predicates). With
  /// `exclude_own_type`, only cross-type predecessors are folded (the
  /// per-query part of shared-scan propagation).
  NodeValue ScanPredecessors(int exec_id, const Event& e, ContextId ctx_id,
                             const ContextState& ctx, const Lane& own_lane,
                             bool exclude_own_type = false);
  /// Folds min/max of a new node for every (sharer, ctx) eagerly.
  void FoldNodeMinMax(Lane& lane, Graphlet& g, const GraphletNode& node,
                      const Event& e);
  void AddToContext(ContextState& ctx, int exec_id, TypeId type,
                    const LinAgg& lin, const MinMax& mm);

  const Lane* LaneOf(int exec_id, TypeId type) const;
  const ExecQuery& Exec(int exec_id) const {
    return plan_->exec_queries[static_cast<size_t>(exec_id)];
  }

  // --- members ---
  const WorkloadPlan* plan_;
  QuerySet members_;
  SharingPolicy* policy_;
  Options options_;
  int num_types_;

  /// Arena-backed graphlet storage (see src/common/arena.h): steady-state
  /// opens recycle pool objects — with warmed vector capacities — instead of
  /// hitting the heap. Declared before lanes_ so the raw pointers in lanes
  /// never outlive the pool.
  ObjectPool<Graphlet> graphlet_pool_;
  std::vector<Lane> lanes_;
  /// Indices of lanes with open graphlets (compacted lazily).
  std::vector<int> active_lanes_;
  /// lane index per (exec, type); -1 when unused.
  std::vector<std::vector<int>> lane_of_;
  /// Exec ids having each type positive / negated.
  std::vector<QuerySet> positive_of_type_;
  std::vector<QuerySet> negated_of_type_;
  /// Union of member types (positive or negated).
  std::vector<bool> type_relevant_;

  SnapshotStore store_;
  std::vector<ContextState> contexts_;
  std::vector<std::vector<ContextId>> open_ctxs_;  ///< per exec id
  std::vector<ContextId> free_ctx_slots_;

  /// Last arrival of a leading-negated event per exec (blocks starts for
  /// contexts whose window began before it).
  std::vector<Timestamp> last_leading_;
  /// Last arrival of a boundary-negated event per (exec, position).
  std::vector<std::vector<Timestamp>> last_boundary_neg_;

  Timestamp pane_start_ = 0;
  Timestamp last_time_ = -1;
  Timestamp horizon_ = 0;  ///< max window span over members
  /// Events per recent pane within the horizon; feeds the benefit model's
  /// "events per window" factor n.
  std::vector<std::pair<Timestamp, int64_t>> pane_event_counts_;
  int64_t events_this_pane_ = 0;
  HamletStats stats_;
  /// OnRunFiltered's row materialization scratch (capacity reused); valid
  /// for the current run only when run_scratch_valid_ — reset per call so
  /// slow sub-targets across multiple lanes materialize at most once.
  std::vector<Event> run_scratch_;
  bool run_scratch_valid_ = false;

  double WindowEventsEstimate() const;
};

}  // namespace hamlet

#endif  // HAMLET_HAMLET_HAMLET_ENGINE_H_
