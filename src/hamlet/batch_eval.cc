#include "src/hamlet/batch_eval.h"

namespace hamlet {

BatchResult EvalHamletBatch(const WorkloadPlan& plan,
                            const EventVector& events, SharingPolicy* policy) {
  return EvalHamletBatch(plan, events, policy, HamletEngine::Options());
}

namespace {

/// Shared epilogue: close contexts, compose query values, fold stats.
BatchResult FinishBatch(const WorkloadPlan& plan, HamletEngine& engine,
                        const std::vector<ContextId>& ctxs) {
  BatchResult out;
  out.memory_bytes = engine.MemoryBytes();
  out.exec_values.resize(static_cast<size_t>(plan.num_exec()));
  out.exec_aggs.resize(static_cast<size_t>(plan.num_exec()));
  for (int e = 0; e < plan.num_exec(); ++e) {
    ContextResult r = engine.CloseContext(ctxs[static_cast<size_t>(e)]);
    out.exec_values[static_cast<size_t>(e)] = r.value;
    out.exec_aggs[static_cast<size_t>(e)] = r.agg;
  }
  for (const CompositionRule& rule : plan.compositions) {
    std::vector<double> branch_values;
    for (int id : rule.exec_ids)
      branch_values.push_back(out.exec_values[static_cast<size_t>(id)]);
    out.query_values.push_back(ComposeQueryValue(rule, branch_values));
  }
  out.stats = engine.stats();
  return out;
}

}  // namespace

BatchResult EvalHamletBatch(const WorkloadPlan& plan,
                            const EventVector& events, SharingPolicy* policy,
                            HamletEngine::Options options) {
  HamletEngine engine(plan, QuerySet::FirstN(plan.num_exec()), policy,
                      options);
  const Timestamp start = events.empty() ? 0 : events.front().time;
  const Timestamp end = events.empty() ? 1 : events.back().time + 1;
  std::vector<ContextId> ctxs;
  for (int e = 0; e < plan.num_exec(); ++e)
    ctxs.push_back(engine.OpenContext(e, start, end));
  engine.OnPaneStart(start);
  for (const Event& ev : events) engine.OnEvent(ev);
  engine.OnPaneEnd();
  return FinishBatch(plan, engine, ctxs);
}

BatchResult EvalHamletBatchColumnar(const WorkloadPlan& plan,
                                    const EventBatch& batch,
                                    SharingPolicy* policy) {
  return EvalHamletBatchColumnar(plan, batch, policy,
                                 HamletEngine::Options());
}

BatchResult EvalHamletBatchColumnar(const WorkloadPlan& plan,
                                    const EventBatch& batch,
                                    SharingPolicy* policy,
                                    HamletEngine::Options options) {
  Result<PredicateProgram> program = CompilePredicateProgram(plan);
  HAMLET_CHECK(program.ok());
  const PredicateProgram& prog = program.value();
  BatchSelection selection;
  prog.EvalBatch(batch, &selection);
  const QuerySet all = QuerySet::FirstN(plan.num_exec());

  HamletEngine engine(plan, all, policy, options);
  const Timestamp start = batch.empty() ? 0 : batch.time(0);
  const Timestamp end = batch.empty() ? 1 : batch.time(batch.size() - 1) + 1;
  std::vector<ContextId> ctxs;
  for (int e = 0; e < plan.num_exec(); ++e)
    ctxs.push_back(engine.OpenContext(e, start, end));
  engine.OnPaneStart(start);
  Event row;
  const std::vector<int>& pq = prog.predicated_queries();
  for (int i = 0; i < batch.size(); ++i) {
    batch.CopyRow(i, &row);
    QuerySet passes = all;
    for (size_t k = 0; k < pq.size(); ++k) {
      if (!selection.masks[k].Test(i))
        passes.Erase(pq[static_cast<size_t>(k)]);
    }
    engine.OnEventFiltered(row, passes);
  }
  engine.OnPaneEnd();
  return FinishBatch(plan, engine, ctxs);
}

}  // namespace hamlet
