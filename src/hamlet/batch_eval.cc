#include "src/hamlet/batch_eval.h"

namespace hamlet {

BatchResult EvalHamletBatch(const WorkloadPlan& plan,
                            const EventVector& events, SharingPolicy* policy) {
  return EvalHamletBatch(plan, events, policy, HamletEngine::Options());
}

namespace {

/// Shared epilogue: close contexts, compose query values, fold stats.
BatchResult FinishBatch(const WorkloadPlan& plan, HamletEngine& engine,
                        const std::vector<ContextId>& ctxs) {
  BatchResult out;
  out.memory_bytes = engine.MemoryBytes();
  out.exec_values.resize(static_cast<size_t>(plan.num_exec()));
  out.exec_aggs.resize(static_cast<size_t>(plan.num_exec()));
  for (int e = 0; e < plan.num_exec(); ++e) {
    ContextResult r = engine.CloseContext(ctxs[static_cast<size_t>(e)]);
    out.exec_values[static_cast<size_t>(e)] = r.value;
    out.exec_aggs[static_cast<size_t>(e)] = r.agg;
  }
  for (const CompositionRule& rule : plan.compositions) {
    std::vector<double> branch_values;
    for (int id : rule.exec_ids)
      branch_values.push_back(out.exec_values[static_cast<size_t>(id)]);
    out.query_values.push_back(ComposeQueryValue(rule, branch_values));
  }
  out.stats = engine.stats();
  return out;
}

}  // namespace

BatchResult EvalHamletBatch(const WorkloadPlan& plan,
                            const EventVector& events, SharingPolicy* policy,
                            HamletEngine::Options options) {
  HamletEngine engine(plan, QuerySet::FirstN(plan.num_exec()), policy,
                      options);
  const Timestamp start = events.empty() ? 0 : events.front().time;
  const Timestamp end = events.empty() ? 1 : events.back().time + 1;
  std::vector<ContextId> ctxs;
  for (int e = 0; e < plan.num_exec(); ++e)
    ctxs.push_back(engine.OpenContext(e, start, end));
  engine.OnPaneStart(start);
  for (const Event& ev : events) engine.OnEvent(ev);
  engine.OnPaneEnd();
  return FinishBatch(plan, engine, ctxs);
}

BatchResult EvalHamletBatchColumnar(const WorkloadPlan& plan,
                                    const EventBatch& batch,
                                    SharingPolicy* policy) {
  return EvalHamletBatchColumnar(plan, batch, policy,
                                 HamletEngine::Options());
}

BatchResult EvalHamletBatchColumnar(const WorkloadPlan& plan,
                                    const EventBatch& batch,
                                    SharingPolicy* policy,
                                    HamletEngine::Options options) {
  Result<PredicateProgram> program = CompilePredicateProgram(plan);
  HAMLET_CHECK(program.ok());
  const PredicateProgram& prog = program.value();
  BatchSelection selection;
  prog.EvalBatch(batch, &selection);
  const QuerySet all = QuerySet::FirstN(plan.num_exec());

  HamletEngine engine(plan, all, policy, options);
  const Timestamp start = batch.empty() ? 0 : batch.time(0);
  const Timestamp end = batch.empty() ? 1 : batch.time(batch.size() - 1) + 1;
  std::vector<ContextId> ctxs;
  for (int e = 0; e < plan.num_exec(); ++e)
    ctxs.push_back(engine.OpenContext(e, start, end));
  engine.OnPaneStart(start);
  // Run-granular dispatch: segment the selection bitmaps + type column into
  // maximal same-type, same-pass-set runs (pane_size <= 0: single pane, no
  // pane splits) and feed each through the engine's run entry point — the
  // same code path Session's batch ingress uses.
  std::vector<RunSpan> runs;
  SegmentRuns(batch, batch.size(), /*pane_size=*/0, all,
              prog.predicated_queries(), selection.masks, &runs);
  // The per-row loop used to rely on the engine dropping irrelevant types;
  // the run entry point makes that filter the dispatcher's job.
  const int num_types = plan.workload->schema()->num_types();
  std::vector<bool> relevant(static_cast<size_t>(num_types), false);
  for (const ExecQuery& eq : plan.exec_queries) {
    for (TypeId t : eq.tmpl.pattern.AllTypes())
      relevant[static_cast<size_t>(t)] = true;
  }
  for (const RunSpan& run : runs) {
    if (run.type < 0 || run.type >= num_types ||
        !relevant[static_cast<size_t>(run.type)])
      continue;
    engine.OnRunFiltered(batch, run);
  }
  engine.OnPaneEnd();
  return FinishBatch(plan, engine, ctxs);
}

}  // namespace hamlet
