#include "src/hamlet/batch_eval.h"

namespace hamlet {

BatchResult EvalHamletBatch(const WorkloadPlan& plan,
                            const EventVector& events, SharingPolicy* policy) {
  return EvalHamletBatch(plan, events, policy, HamletEngine::Options());
}

BatchResult EvalHamletBatch(const WorkloadPlan& plan,
                            const EventVector& events, SharingPolicy* policy,
                            HamletEngine::Options options) {
  BatchResult out;
  HamletEngine engine(plan, QuerySet::FirstN(plan.num_exec()), policy,
                      options);
  const Timestamp start = events.empty() ? 0 : events.front().time;
  const Timestamp end = events.empty() ? 1 : events.back().time + 1;
  std::vector<ContextId> ctxs;
  for (int e = 0; e < plan.num_exec(); ++e)
    ctxs.push_back(engine.OpenContext(e, start, end));
  engine.OnPaneStart(start);
  for (const Event& ev : events) engine.OnEvent(ev);
  engine.OnPaneEnd();
  out.memory_bytes = engine.MemoryBytes();
  out.exec_values.resize(static_cast<size_t>(plan.num_exec()));
  out.exec_aggs.resize(static_cast<size_t>(plan.num_exec()));
  for (int e = 0; e < plan.num_exec(); ++e) {
    ContextResult r = engine.CloseContext(ctxs[static_cast<size_t>(e)]);
    out.exec_values[static_cast<size_t>(e)] = r.value;
    out.exec_aggs[static_cast<size_t>(e)] = r.agg;
  }
  for (const CompositionRule& rule : plan.compositions) {
    std::vector<double> branch_values;
    for (int id : rule.exec_ids)
      branch_values.push_back(out.exec_values[static_cast<size_t>(id)]);
    out.query_values.push_back(ComposeQueryValue(rule, branch_values));
  }
  out.stats = engine.stats();
  return out;
}

}  // namespace hamlet
