// Single-window batch evaluation helper.
//
// Evaluates a full workload over one finite, pre-grouped event sequence:
// one pane, one window instance per exec query covering the whole stream.
// This is the unit tests and single-window benches operate on (the paper's
// evaluation axis is "events per window"); the streaming runtime in
// src/runtime adds panes, sliding windows and group-by partitioning.
#ifndef HAMLET_HAMLET_BATCH_EVAL_H_
#define HAMLET_HAMLET_BATCH_EVAL_H_

#include <vector>

#include "src/hamlet/hamlet_engine.h"
#include "src/query/columnar_predicate.h"
#include "src/stream/event_batch.h"

namespace hamlet {

/// Result of a batch evaluation.
struct BatchResult {
  /// Final value per exec query.
  std::vector<double> exec_values;
  /// Folded end-type payload per exec query.
  std::vector<AggValue> exec_aggs;
  /// Composed value per source query.
  std::vector<double> query_values;
  HamletStats stats;
  int64_t memory_bytes = 0;
};

/// Runs one HamletEngine over the whole stream (single pane & window).
BatchResult EvalHamletBatch(const WorkloadPlan& plan, const EventVector& events,
                            SharingPolicy* policy,
                            HamletEngine::Options options);
BatchResult EvalHamletBatch(const WorkloadPlan& plan, const EventVector& events,
                            SharingPolicy* policy);

/// Columnar variant: evaluates the plan's event predicates batch-wide over
/// the SoA `batch` (one kernel pass per predicate over contiguous columns),
/// then feeds each row with its precomputed pass-set through
/// HamletEngine::OnEventFiltered. Results are bit-identical to
/// EvalHamletBatch over the same rows; the plan's predicate lists must have
/// compiled (they did if Session::Open would accept the plan) — CHECK-fails
/// otherwise.
BatchResult EvalHamletBatchColumnar(const WorkloadPlan& plan,
                                    const EventBatch& batch,
                                    SharingPolicy* policy,
                                    HamletEngine::Options options);
BatchResult EvalHamletBatchColumnar(const WorkloadPlan& plan,
                                    const EventBatch& batch,
                                    SharingPolicy* policy);

}  // namespace hamlet

#endif  // HAMLET_HAMLET_BATCH_EVAL_H_
