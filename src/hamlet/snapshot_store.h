// Snapshot table (paper §3.3, data structure (3)): maps a snapshot variable
// and an evaluation context to its value.
//
// The paper stores value(x, q) per query; we key by ContextId = one open
// (exec query, window instance), which generalises the same idea to sliding
// and per-query windows. Values are LinAgg payloads (count/sum/count_e).
#ifndef HAMLET_HAMLET_SNAPSHOT_STORE_H_
#define HAMLET_HAMLET_SNAPSHOT_STORE_H_

#include <cstdint>
#include <vector>

#include "src/common/check.h"
#include "src/hamlet/expr.h"

namespace hamlet {

/// Per-variable, per-context value storage with small flat maps.
class SnapshotStore {
 public:
  /// Allocates a fresh snapshot variable.
  SnapshotId Create() {
    values_.emplace_back();
    ++total_created_;
    return static_cast<SnapshotId>(values_.size() - 1);
  }

  /// Sets the value of `var` for `ctx` (inserts or overwrites).
  void Set(SnapshotId var, ContextId ctx, const LinAgg& value) {
    auto& column = values_[static_cast<size_t>(var)];
    for (auto& [c, v] : column) {
      if (c == ctx) {
        v = value;
        return;
      }
    }
    column.emplace_back(ctx, value);
  }

  /// Value of `var` in `ctx`; zero when never set (e.g. a membership
  /// snapshot for a query the event is invisible to).
  LinAgg Get(SnapshotId var, ContextId ctx) const {
    const auto& column = values_[static_cast<size_t>(var)];
    for (const auto& [c, v] : column) {
      if (c == ctx) return v;
    }
    return LinAgg();
  }

  /// Drops all values of a closed context.
  void DropContext(ContextId ctx) {
    for (auto& column : values_) {
      for (size_t i = 0; i < column.size();) {
        if (column[i].first == ctx) {
          column[i] = column.back();
          column.pop_back();
        } else {
          ++i;
        }
      }
    }
  }

  /// Number of variables ever created (the paper's snapshot-count metric).
  int64_t total_created() const { return total_created_; }

  /// Current (variable, context) value entries.
  int64_t num_entries() const {
    int64_t n = 0;
    for (const auto& column : values_) n += static_cast<int64_t>(column.size());
    return n;
  }

  int64_t MemoryBytes() const {
    int64_t bytes = static_cast<int64_t>(values_.capacity()) *
                    static_cast<int64_t>(sizeof(values_[0]));
    for (const auto& column : values_) {
      bytes += static_cast<int64_t>(column.capacity()) *
               static_cast<int64_t>(sizeof(column[0]));
    }
    return bytes;
  }

 private:
  std::vector<std::vector<std::pair<ContextId, LinAgg>>> values_;
  int64_t total_created_ = 0;
};

}  // namespace hamlet

#endif  // HAMLET_HAMLET_SNAPSHOT_STORE_H_
