// Symbolic intermediate aggregates: linear expressions over snapshots.
//
// HAMLET decouples the *shared* propagation structure from *per-query,
// per-window* values by writing every intermediate aggregate as a linear
// expression over snapshot variables (paper §3.3, data structure (2): the
// per-event hash table of snapshot coefficients — e.g. count(b6) = 4x + z).
//
// The linear payload components (count / sum / count_e) propagate with two
// twists relative to plain scaling:
//   sum(e)     gains val(e) * count(e)  -> a count->sum cross coefficient
//   count_e(e) gains count(e)           -> a count->count_e cross coefficient
// so a term carries three coefficients (alpha, gamma, delta). MIN/MAX do not
// linearise; they are folded numerically per context by the engine.
#ifndef HAMLET_HAMLET_EXPR_H_
#define HAMLET_HAMLET_EXPR_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/query/agg_value.h"

namespace hamlet {

/// Snapshot variable id (paper's x, y, z...).
using SnapshotId = int32_t;

/// Dense id of an open (exec query, window instance) pair. Snapshot *values*
/// are per context: the paper stores value(x, q) per query; contexts refine
/// that to per (query, window instance), which is what makes panes sharable
/// across overlapping and differing windows.
using ContextId = int32_t;

/// The linear payload components.
struct LinAgg {
  double count = 0.0;
  double sum = 0.0;
  double count_e = 0.0;

  void Add(const LinAgg& o) {
    count += o.count;
    sum += o.sum;
    count_e += o.count_e;
  }
  bool IsZero() const { return count == 0 && sum == 0 && count_e == 0; }
  bool operator==(const LinAgg& o) const {
    return count == o.count && sum == o.sum && count_e == o.count_e;
  }
};

/// One term of an expression: coefficients applied to a snapshot's value V.
///   count   += alpha * V.count
///   sum     += alpha * V.sum + gamma * V.count
///   count_e += alpha * V.count_e + delta * V.count
struct ExprTerm {
  SnapshotId var = -1;
  double alpha = 0.0;
  double gamma = 0.0;
  double delta = 0.0;
};

class SnapshotStore;

/// c0 + sum of terms. Terms are kept sorted by var id.
///
/// Small-buffer layout: up to kInlineTerms terms live inline, spilling to a
/// heap vector only beyond that. FastSum node expressions carry exactly two
/// terms (start u + entry x), so the steady-state hot loop builds and merges
/// expressions with ZERO heap allocations — the invariant the columnar
/// allocation-regression test pins down.
class Expr {
 public:
  static constexpr int kInlineTerms = 4;

  Expr() = default;

  /// The expression that is just one snapshot variable.
  static Expr Var(SnapshotId var);

  void Clear() {
    c0_ = LinAgg();
    num_inline_ = 0;
    spill_.clear();
  }

  /// this += other.
  void AddExpr(const Expr& other);

  /// this += coefficient alpha on `var`.
  void AddVar(SnapshotId var, double alpha);

  /// this += constant payload.
  void AddConst(const LinAgg& c) { c0_.Add(c); }

  /// Applies FinishNode's target-event folds symbolically:
  ///   if need_count_e: count_e += count(this)
  ///   if need_sum:     sum     += val * count(this)
  void ApplyTargetEvent(double val, bool need_sum, bool need_count_e);

  /// Appends one FastSum event to this running sum IN PLACE:
  ///   node(e) = u + x + this;  node(e).ApplyTargetEvent(...);  this += node(e)
  /// — exactly the per-event sequence of the engine's shared kFastSum branch
  /// (count(e) = u + x + R, Algorithm 1 Line 18), performed without
  /// materializing a stored GraphletNode. The run-granular propagation path
  /// calls this once per row of a run; because the virtual node is built with
  /// the same AddVar/AddExpr/ApplyTargetEvent calls the row path uses, the
  /// resulting running sum is bit-identical to appending row by row. Returns
  /// the virtual node's term count (the row path's ops charge).
  int AppendFastSumEvent(SnapshotId start_var, SnapshotId entry_var,
                         bool is_target, double val, bool need_sum,
                         bool need_count_e);

  /// Evaluates against the snapshot values of `ctx`.
  LinAgg Eval(const SnapshotStore& store, ContextId ctx) const;

  /// Evaluates only the trend count (used by MIN/MAX guards).
  double EvalCount(const SnapshotStore& store, ContextId ctx) const;

  const LinAgg& const_term() const { return c0_; }
  int num_terms() const {
    return spill_.empty() ? num_inline_ : static_cast<int>(spill_.size());
  }

  /// Contiguous term storage (inline buffer until it spills).
  const ExprTerm* terms_data() const {
    return spill_.empty() ? inline_.data() : spill_.data();
  }
  /// Terms as a copyable vector (tests/diagnostics; not on the hot path).
  std::vector<ExprTerm> terms() const {
    return std::vector<ExprTerm>(terms_data(), terms_data() + num_terms());
  }

  /// Logical size for the memory metric (heap-held spill only; the inline
  /// buffer is part of sizeof(Expr)).
  int64_t MemoryBytes() const {
    return static_cast<int64_t>(sizeof(Expr)) +
           static_cast<int64_t>(spill_.capacity() * sizeof(ExprTerm));
  }

  /// "2 + 4*x3 + 1*x7" (coefficients on count only, for diagnostics).
  std::string ToString() const;

 private:
  ExprTerm* mutable_terms() {
    return spill_.empty() ? inline_.data() : spill_.data();
  }
  /// Replaces the term list with `src[0..n)` (sorted by var).
  void AssignTerms(const ExprTerm* src, int n);
  /// Inserts a term at `pos`, growing inline or spilling as needed.
  void InsertTerm(int pos, const ExprTerm& t);

  LinAgg c0_;
  std::array<ExprTerm, kInlineTerms> inline_{};
  int num_inline_ = 0;  ///< valid only while spill_ is empty
  std::vector<ExprTerm> spill_;
};

}  // namespace hamlet

#endif  // HAMLET_HAMLET_EXPR_H_
