// Symbolic intermediate aggregates: linear expressions over snapshots.
//
// HAMLET decouples the *shared* propagation structure from *per-query,
// per-window* values by writing every intermediate aggregate as a linear
// expression over snapshot variables (paper §3.3, data structure (2): the
// per-event hash table of snapshot coefficients — e.g. count(b6) = 4x + z).
//
// The linear payload components (count / sum / count_e) propagate with two
// twists relative to plain scaling:
//   sum(e)     gains val(e) * count(e)  -> a count->sum cross coefficient
//   count_e(e) gains count(e)           -> a count->count_e cross coefficient
// so a term carries three coefficients (alpha, gamma, delta). MIN/MAX do not
// linearise; they are folded numerically per context by the engine.
#ifndef HAMLET_HAMLET_EXPR_H_
#define HAMLET_HAMLET_EXPR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/query/agg_value.h"

namespace hamlet {

/// Snapshot variable id (paper's x, y, z...).
using SnapshotId = int32_t;

/// Dense id of an open (exec query, window instance) pair. Snapshot *values*
/// are per context: the paper stores value(x, q) per query; contexts refine
/// that to per (query, window instance), which is what makes panes sharable
/// across overlapping and differing windows.
using ContextId = int32_t;

/// The linear payload components.
struct LinAgg {
  double count = 0.0;
  double sum = 0.0;
  double count_e = 0.0;

  void Add(const LinAgg& o) {
    count += o.count;
    sum += o.sum;
    count_e += o.count_e;
  }
  bool IsZero() const { return count == 0 && sum == 0 && count_e == 0; }
  bool operator==(const LinAgg& o) const {
    return count == o.count && sum == o.sum && count_e == o.count_e;
  }
};

/// One term of an expression: coefficients applied to a snapshot's value V.
///   count   += alpha * V.count
///   sum     += alpha * V.sum + gamma * V.count
///   count_e += alpha * V.count_e + delta * V.count
struct ExprTerm {
  SnapshotId var = -1;
  double alpha = 0.0;
  double gamma = 0.0;
  double delta = 0.0;
};

class SnapshotStore;

/// c0 + sum of terms. Terms are kept sorted by var id.
class Expr {
 public:
  Expr() = default;

  /// The expression that is just one snapshot variable.
  static Expr Var(SnapshotId var);

  void Clear() {
    c0_ = LinAgg();
    terms_.clear();
  }

  /// this += other.
  void AddExpr(const Expr& other);

  /// this += coefficient alpha on `var`.
  void AddVar(SnapshotId var, double alpha);

  /// this += constant payload.
  void AddConst(const LinAgg& c) { c0_.Add(c); }

  /// Applies FinishNode's target-event folds symbolically:
  ///   if need_count_e: count_e += count(this)
  ///   if need_sum:     sum     += val * count(this)
  void ApplyTargetEvent(double val, bool need_sum, bool need_count_e);

  /// Evaluates against the snapshot values of `ctx`.
  LinAgg Eval(const SnapshotStore& store, ContextId ctx) const;

  /// Evaluates only the trend count (used by MIN/MAX guards).
  double EvalCount(const SnapshotStore& store, ContextId ctx) const;

  const LinAgg& const_term() const { return c0_; }
  const std::vector<ExprTerm>& terms() const { return terms_; }
  int num_terms() const { return static_cast<int>(terms_.size()); }

  /// Logical size for the memory metric.
  int64_t MemoryBytes() const {
    return static_cast<int64_t>(sizeof(Expr)) +
           static_cast<int64_t>(terms_.capacity() * sizeof(ExprTerm));
  }

  /// "2 + 4*x3 + 1*x7" (coefficients on count only, for diagnostics).
  std::string ToString() const;

 private:
  LinAgg c0_;
  std::vector<ExprTerm> terms_;
};

}  // namespace hamlet

#endif  // HAMLET_HAMLET_EXPR_H_
