// Graphlets: the unit of HAMLET's sharing (paper Definitions 6/7).
//
// A graphlet is a maximal run of same-type events, closed when an event of a
// different relevant type arrives or the pane ends. Shared graphlets carry
// symbolic node expressions over snapshot variables; solo (per-query)
// graphlets carry numeric per-context payloads.
#ifndef HAMLET_HAMLET_GRAPHLET_H_
#define HAMLET_HAMLET_GRAPHLET_H_

#include <vector>

#include "src/common/query_set.h"
#include "src/hamlet/context_state.h"
#include "src/hamlet/ctx_map.h"
#include "src/hamlet/snapshot_store.h"
#include "src/plan/workload_plan.h"

namespace hamlet {

/// Numeric per-context payload of a solo node (LinAgg + guarded min/max).
struct NodeValue {
  LinAgg lin;
  MinMax mm;
};

/// One matched event inside a graphlet.
struct GraphletNode {
  Event event;
  /// Queries this event is matched by (event predicates applied).
  QuerySet members;
  /// Symbolic payload (shared graphlets). Zero-const invariant: start
  /// contributions go through the graphlet's start variable, so evaluating
  /// in a context that predates none of the referenced variables yields 0 —
  /// this is what scopes stored nodes to window instances for free.
  Expr expr;
  /// Numeric payload per context (solo graphlets).
  CtxMap<NodeValue> values;
  bool numeric = false;

  LinAgg EvalLin(const SnapshotStore& store, ContextId ctx) const {
    if (numeric) return values.Get(ctx, NodeValue()).lin;
    return expr.Eval(store, ctx);
  }

  double EvalCount(const SnapshotStore& store, ContextId ctx) const {
    if (numeric) return values.Get(ctx, NodeValue()).lin.count;
    return expr.EvalCount(store, ctx);
  }

  int64_t MemoryBytes() const {
    return static_cast<int64_t>(sizeof(GraphletNode)) + expr.MemoryBytes() +
           values.MemoryBytes();
  }
};

/// One graphlet (active or closed-and-retained).
struct Graphlet {
  TypeId type = Schema::kInvalidId;
  /// Queries sharing this graphlet (>= 2 for shared, == 1 for solo).
  QuerySet sharers;
  bool shared = false;
  PropagationMode mode = PropagationMode::kFastSum;
  /// Whether in-graphlet events precede each other (Kleene self-loop).
  /// Always true for shared graphlets (only Kleene sub-patterns share).
  bool self_loop = true;

  /// Graphlet-level snapshot x (Definition 8) and the start variable u.
  /// u's value is 1 for contexts where the type starts trends (and no
  /// leading negation blocked it), 0 otherwise.
  SnapshotId entry_var = -1;
  SnapshotId start_var = -1;

  /// Sum of all node expressions (shared path): evaluates per context to the
  /// graphlet's payload contribution sum(G,q) of Eq. 5.
  Expr running_sum;

  /// Equality-partitioned shared scan (kSharedScan with equality-only edge
  /// predicates): per equality-key running sums and lazily created per-key
  /// entry variables (valued from the lane's cross-graphlet key totals).
  std::vector<std::pair<std::vector<double>, Expr>> key_running;
  std::vector<std::pair<std::vector<double>, SnapshotId>> key_entry;

  /// Numeric per-context running sums (solo path).
  CtxMap<LinAgg> solo_sums;
  /// Numeric per-context start/entry values (solo path), fixed at open.
  CtxMap<LinAgg> solo_entry;
  CtxMap<double> solo_start;

  /// Min/max folds per context: entry (from predecessor totals, fixed at
  /// open) and running over node m-values.
  CtxMap<MinMax> entry_mm;
  CtxMap<MinMax> run_mm;

  std::vector<GraphletNode> nodes;
  /// Events appended WITHOUT a stored node: the run-granular fast paths skip
  /// node materialization when the graphlet is provably write-only (never
  /// scanned, no min/max, not retained). num_events() must still count them
  /// — the burst-size averages and FoldGraphlet's empty guard depend on it.
  int extra_events = 0;
  Timestamp open_time = 0;

  int num_events() const {
    return static_cast<int>(nodes.size()) + extra_events;
  }

  /// Resets logical state while KEEPING heap capacities (nodes vector, Expr
  /// spill, CtxMap spill) — the ObjectPool<Graphlet> recycling contract
  /// (src/common/arena.h): a graphlet released at a pane boundary is re-
  /// opened later without re-growing its buffers.
  void Recycle() {
    type = Schema::kInvalidId;
    sharers = QuerySet();
    shared = false;
    mode = PropagationMode::kFastSum;
    self_loop = true;
    entry_var = -1;
    start_var = -1;
    running_sum.Clear();
    key_running.clear();
    key_entry.clear();
    solo_sums.Clear();
    solo_entry.Clear();
    solo_start.Clear();
    entry_mm.Clear();
    run_mm.Clear();
    nodes.clear();
    extra_events = 0;
    open_time = 0;
  }

  /// Heap-held payload only. The Graphlet object itself lives in the
  /// engine's arena, whose BLOCK RESERVATION is charged separately
  /// (HamletEngine::MemoryBytes) — charging sizeof(Graphlet) here would
  /// double-count it against the arena blocks.
  int64_t MemoryBytes() const {
    int64_t bytes = running_sum.MemoryBytes() + solo_sums.MemoryBytes() +
                    solo_entry.MemoryBytes() + entry_mm.MemoryBytes() +
                    run_mm.MemoryBytes();
    for (const GraphletNode& n : nodes) bytes += n.MemoryBytes();
    for (const auto& [key, running] : key_running) {
      bytes += running.MemoryBytes() +
               static_cast<int64_t>(key.size() * sizeof(double));
    }
    return bytes;
  }
};

}  // namespace hamlet

#endif  // HAMLET_HAMLET_GRAPHLET_H_
