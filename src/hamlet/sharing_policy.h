// Sharing-policy interface consulted at every burst start (paper §4).
//
// When a lane is about to open a new graphlet, the engine reports the
// locally available stream statistics (Definition 12's cost factors) and the
// policy answers which member queries should share the graphlet. The
// concrete policies live in src/optimizer: DynamicBenefitPolicy (the paper's
// optimizer), AlwaysSharePolicy (the static optimizer of Figs. 12/13),
// NeverSharePolicy (non-shared execution).
#ifndef HAMLET_HAMLET_SHARING_POLICY_H_
#define HAMLET_HAMLET_SHARING_POLICY_H_

#include <vector>

#include "src/common/query_set.h"
#include "src/stream/event.h"

namespace hamlet {

/// Locally observed statistics for one burst decision (Definition 12's
/// notation: b, n, g, k, p, sc, sp).
struct BurstStats {
  /// Number of member queries of the lane (k).
  int k = 0;
  /// Estimated events in the upcoming burst (b): moving average of recent
  /// burst lengths of this lane.
  double b = 1.0;
  /// Events currently in the window (n): stored nodes within the horizon.
  double n = 1.0;
  /// Events per graphlet (g): moving average of recent graphlet sizes.
  double g = 1.0;
  /// Predecessor types per type per query (p).
  int p = 1;
  /// Types per query (t).
  int t = 1;
  /// Estimated snapshots created per burst, total (sc).
  double sc = 1.0;
  /// Estimated snapshots propagated per intermediate count (sp).
  double sp = 1.0;
  /// Estimated snapshots created per burst attributable to each member
  /// (parallel to the member list the engine passes): drives the
  /// snapshot-driven pruning of Theorem 4.1.
  std::vector<double> sc_per_member;
};

/// The subset of the lane's members that should share the next graphlet;
/// everyone else is processed in per-query (split) graphlets.
struct SharingDecision {
  QuerySet shared;
};

/// Consulted once per burst (graphlet open). Implementations must be cheap:
/// the paper requires decisions in O(m) for m snapshot-introducing queries.
class SharingPolicy {
 public:
  virtual ~SharingPolicy() = default;

  /// `members` lists the lane's member exec ids (the QuerySet expansion of
  /// the candidate sharers); `stats.sc_per_member` is parallel to it.
  virtual SharingDecision Decide(const std::vector<int>& members,
                                 const BurstStats& stats) = 0;

  /// Policy name for reports.
  virtual const char* name() const = 0;
};

}  // namespace hamlet

#endif  // HAMLET_HAMLET_SHARING_POLICY_H_
