// Small flat map keyed by ContextId.
//
// The number of simultaneously open contexts is small (one per open window
// instance per exec query), so linear probing over a flat vector beats
// hashing for every table in the HAMLET engine.
#ifndef HAMLET_HAMLET_CTX_MAP_H_
#define HAMLET_HAMLET_CTX_MAP_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/hamlet/expr.h"

namespace hamlet {

template <typename T>
class CtxMap {
 public:
  /// Value for `ctx`, default-constructed and inserted when absent.
  T& Mut(ContextId ctx) {
    for (auto& [c, v] : entries_) {
      if (c == ctx) return v;
    }
    entries_.emplace_back(ctx, T());
    return entries_.back().second;
  }

  /// Value for `ctx`, or `fallback` when absent.
  const T& Get(ContextId ctx, const T& fallback) const {
    for (const auto& [c, v] : entries_) {
      if (c == ctx) return v;
    }
    return fallback;
  }

  bool Contains(ContextId ctx) const {
    for (const auto& [c, v] : entries_) {
      if (c == ctx) return true;
    }
    return false;
  }

  void Erase(ContextId ctx) {
    for (size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].first == ctx) {
        entries_[i] = entries_.back();
        entries_.pop_back();
        return;
      }
    }
  }

  void Clear() { entries_.clear(); }
  size_t size() const { return entries_.size(); }
  auto begin() { return entries_.begin(); }
  auto end() { return entries_.end(); }
  auto begin() const { return entries_.begin(); }
  auto end() const { return entries_.end(); }

  int64_t MemoryBytes() const {
    return static_cast<int64_t>(entries_.capacity() * sizeof(entries_[0]));
  }

 private:
  std::vector<std::pair<ContextId, T>> entries_;
};

}  // namespace hamlet

#endif  // HAMLET_HAMLET_CTX_MAP_H_
