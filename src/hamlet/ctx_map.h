// Small flat map keyed by ContextId.
//
// The number of simultaneously open contexts is small (one per open window
// instance per exec query), so linear probing over a flat array beats
// hashing for every table in the HAMLET engine.
//
// Small-buffer layout: up to kInlineEntries entries live inline, spilling to
// a heap vector only beyond that. A tumbling-window workload keeps ONE open
// context per exec query, so solo node payloads and per-graphlet running
// sums never touch the heap — part of the hot loop's zero-steady-state-
// allocation contract (see tests/columnar_test.cc).
#ifndef HAMLET_HAMLET_CTX_MAP_H_
#define HAMLET_HAMLET_CTX_MAP_H_

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/hamlet/expr.h"

namespace hamlet {

template <typename T>
class CtxMap {
 public:
  static constexpr int kInlineEntries = 2;

  using Entry = std::pair<ContextId, T>;

  /// Value for `ctx`, default-constructed and inserted when absent.
  T& Mut(ContextId ctx) {
    Entry* data = mutable_data();
    const int n = size_int();
    for (int i = 0; i < n; ++i) {
      if (data[i].first == ctx) return data[i].second;
    }
    return Push(ctx);
  }

  /// Value for `ctx`, or `fallback` when absent.
  const T& Get(ContextId ctx, const T& fallback) const {
    const Entry* data = this->data();
    const int n = size_int();
    for (int i = 0; i < n; ++i) {
      if (data[i].first == ctx) return data[i].second;
    }
    return fallback;
  }

  bool Contains(ContextId ctx) const {
    const Entry* data = this->data();
    const int n = size_int();
    for (int i = 0; i < n; ++i) {
      if (data[i].first == ctx) return true;
    }
    return false;
  }

  void Erase(ContextId ctx) {
    Entry* data = mutable_data();
    const int n = size_int();
    for (int i = 0; i < n; ++i) {
      if (data[i].first == ctx) {
        data[i] = std::move(data[n - 1]);
        Pop();
        return;
      }
    }
  }

  void Clear() {
    num_inline_ = 0;
    spill_.clear();
  }

  size_t size() const { return static_cast<size_t>(size_int()); }

  const Entry* begin() const { return data(); }
  const Entry* end() const { return data() + size_int(); }
  Entry* begin() { return mutable_data(); }
  Entry* end() { return mutable_data() + size_int(); }

  /// Heap-held spill capacity only; the inline buffer is part of
  /// sizeof(CtxMap) and is charged by whoever owns the map.
  int64_t MemoryBytes() const {
    return static_cast<int64_t>(spill_.capacity() * sizeof(Entry));
  }

 private:
  int size_int() const {
    return spill_.empty() ? num_inline_ : static_cast<int>(spill_.size());
  }
  const Entry* data() const {
    return spill_.empty() ? inline_.data() : spill_.data();
  }
  Entry* mutable_data() {
    return spill_.empty() ? inline_.data() : spill_.data();
  }

  T& Push(ContextId ctx) {
    if (!spill_.empty()) {
      spill_.emplace_back(ctx, T());
      return spill_.back().second;
    }
    if (num_inline_ < kInlineEntries) {
      Entry& e = inline_[static_cast<size_t>(num_inline_)];
      e.first = ctx;
      e.second = T();
      ++num_inline_;
      return e.second;
    }
    spill_.reserve(static_cast<size_t>(num_inline_) + 1);
    for (int i = 0; i < num_inline_; ++i)
      spill_.push_back(std::move(inline_[static_cast<size_t>(i)]));
    num_inline_ = 0;
    spill_.emplace_back(ctx, T());
    return spill_.back().second;
  }

  void Pop() {
    if (spill_.empty()) {
      --num_inline_;
    } else {
      spill_.pop_back();
      if (spill_.empty()) num_inline_ = 0;
    }
  }

  std::array<Entry, kInlineEntries> inline_{};
  int num_inline_ = 0;  ///< valid only while spill_ is empty
  std::vector<Entry> spill_;
};

}  // namespace hamlet

#endif  // HAMLET_HAMLET_CTX_MAP_H_
