// Per-(exec query, window instance) numeric state.
//
// All shared computation in the HAMLET engine is symbolic; everything
// numeric lives here, keyed by context: per-type running payload totals
// (the basis of graphlet-level snapshot values, Eq. 5), negation-guarded
// boundary accumulators, MIN/MAX folds, and the final end-type accumulation
// (Eq. 3).
#ifndef HAMLET_HAMLET_CONTEXT_STATE_H_
#define HAMLET_HAMLET_CONTEXT_STATE_H_

#include <limits>
#include <vector>

#include "src/hamlet/expr.h"
#include "src/stream/event.h"

namespace hamlet {

/// Order-payload fold (min/max are not linear; kept numeric per context).
struct MinMax {
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  void Fold(const MinMax& o) {
    if (o.min < min) min = o.min;
    if (o.max > max) max = o.max;
  }
  void FoldValue(double v) {
    if (v < min) min = v;
    if (v > max) max = v;
  }
};

/// State of one open window instance of one exec query.
struct ContextState {
  ContextId id = -1;
  int exec_id = -1;
  Timestamp window_start = 0;
  Timestamp window_end = 0;  ///< exclusive
  bool open = false;

  /// Running payload totals per event type (sum of count(e) payloads of all
  /// folded events of that type within this window).
  std::vector<LinAgg> type_totals;
  std::vector<MinMax> type_mm;

  /// Chain-boundary accumulators per pattern position; reset when a
  /// boundary-negated event arrives (feeds snapshot values instead of
  /// type_totals for negated boundaries).
  std::vector<LinAgg> boundary_totals;
  std::vector<MinMax> boundary_mm;

  /// Folded end-type payload (reset by trailing negation).
  LinAgg final_lin;
  MinMax final_mm;

  void ResetFor(int exec, int num_types, int num_positions, Timestamp ws,
                Timestamp we) {
    exec_id = exec;
    window_start = ws;
    window_end = we;
    open = true;
    type_totals.assign(static_cast<size_t>(num_types), LinAgg());
    type_mm.assign(static_cast<size_t>(num_types), MinMax());
    boundary_totals.assign(static_cast<size_t>(num_positions), LinAgg());
    boundary_mm.assign(static_cast<size_t>(num_positions), MinMax());
    final_lin = LinAgg();
    final_mm = MinMax();
  }

  int64_t MemoryBytes() const {
    return static_cast<int64_t>(
        sizeof(ContextState) + type_totals.capacity() * sizeof(LinAgg) +
        type_mm.capacity() * sizeof(MinMax) +
        boundary_totals.capacity() * sizeof(LinAgg) +
        boundary_mm.capacity() * sizeof(MinMax));
  }
};

}  // namespace hamlet

#endif  // HAMLET_HAMLET_CONTEXT_STATE_H_
