#include "src/runtime/query_lifecycle.h"

#include <algorithm>
#include <utility>

namespace hamlet {

void QueryLifecycle::Init(const Workload& initial) {
  schema_ = initial.schema();
  queries_ = initial.queries();
}

bool QueryLifecycle::Contains(const std::string& name) const {
  return std::any_of(queries_.begin(), queries_.end(),
                     [&](const Query& q) { return q.name == name; });
}

Status QueryLifecycle::ValidateAdd(const Query& q) const {
  if (schema_ == nullptr)
    return Status::FailedPrecondition("lifecycle not initialized");
  if (q.name.empty()) {
    return Status::InvalidArgument(
        "queries added to a live session must be named");
  }
  if (Contains(q.name))
    return Status::InvalidArgument("duplicate query name: " + q.name);
  // Resolve a copy WITHOUT registering missing names: validation must not
  // mutate the schema the running epochs (and sibling shards) read.
  Query probe = q;
  Status s = probe.Resolve(schema_, /*register_missing=*/false);
  if (!s.ok()) return s;
  return Status::Ok();
}

Status QueryLifecycle::ValidateRemove(const std::string& name) const {
  if (schema_ == nullptr)
    return Status::FailedPrecondition("lifecycle not initialized");
  if (!Contains(name))
    return Status::NotFound("unknown query name: " + name);
  if (queries_.size() == 1) {
    return Status::InvalidArgument(
        "cannot remove the last query (an empty workload has no pane grid); "
        "Close() the session instead");
  }
  return Status::Ok();
}

Result<QueryLifecycle::CompiledEpoch> QueryLifecycle::TryAdd(
    const Query& q, std::span<const SharingOverride> overrides) {
  Status s = ValidateAdd(q);
  if (!s.ok()) return s;
  queries_.push_back(q);
  Result<CompiledEpoch> epoch = Compile(overrides);
  if (!epoch.ok()) queries_.pop_back();
  return epoch;
}

Result<QueryLifecycle::CompiledEpoch> QueryLifecycle::TryRemove(
    const std::string& name, std::span<const SharingOverride> overrides) {
  Status s = ValidateRemove(name);
  if (!s.ok()) return s;
  std::vector<Query> saved = queries_;
  queries_.erase(std::remove_if(queries_.begin(), queries_.end(),
                                [&](const Query& q) { return q.name == name; }),
                 queries_.end());
  Result<CompiledEpoch> epoch = Compile(overrides);
  if (!epoch.ok()) queries_ = std::move(saved);
  return epoch;
}

Result<QueryLifecycle::CompiledEpoch> QueryLifecycle::Compile(
    std::span<const SharingOverride> overrides) const {
  if (schema_ == nullptr)
    return Status::FailedPrecondition("lifecycle not initialized");
  auto workload = std::make_shared<Workload>(schema_);
  for (const Query& q : queries_) {
    // Re-resolving is a pure lookup here: every name was registered when
    // the query first entered the workload (or passed ValidateAdd).
    Result<QueryId> id = workload->Add(q);
    if (!id.ok()) return id.status();
  }
  Result<WorkloadPlan> plan = AnalyzeWorkload(*workload);
  if (!plan.ok()) return plan.status();
  CompiledEpoch epoch;
  epoch.plan = std::make_unique<WorkloadPlan>(std::move(plan).value());
  epoch.potential_groups = epoch.plan->share_groups;
  RestrictShareGroups(*epoch.plan, overrides);
  epoch.applied.assign(overrides.begin(), overrides.end());
  epoch.workload = std::move(workload);
  return epoch;
}

}  // namespace hamlet
