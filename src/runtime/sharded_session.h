// Sharded parallel Session: the same push API, spread across worker threads.
//
// The paper's pre-processing step (§3.1) partitions each component's stream
// by its group-by attribute precisely because groups never interact: a
// trend, window, graphlet or snapshot only ever involves events of one
// group. ShardedSession exploits that independence for parallelism: it
// hash-partitions incoming events by group-by key across
// RunConfig::num_shards worker shards, each running the unmodified
// single-threaded Session machinery over the subsequence of events whose
// groups it owns. Because a group's whole stream lands on one shard, every
// per-group result is bitwise identical to a single-threaded run — only the
// interleaving of emissions across groups differs.
//
// A drop-in superset of Session (src/runtime/session.h):
//   Result<std::unique_ptr<ShardedSession>> s =
//       ShardedSession::Open(plan, config, &sink);   // config.num_shards
//   s.value()->Push(event);                          // staged to one shard
//   s.value()->AdvanceTo(watermark);                 // flush + broadcast
//   RunMetrics m = s.value()->Close().value();       // join + merged metrics
//
// Mechanics (batch-granular end to end):
//  * Ingress: Push/PushBatch validate ordering once at the front, then
//    stage each event into its shard's staging buffer; a buffer reaching
//    RunConfig::shard_batch_size is handed to that shard's bounded SPSC
//    ring (src/common/spsc_queue.h) as ONE batch message, so the per-event
//    hot path is a hash plus an append — no queue traffic. Watermarks,
//    Close and PushPrePartitioned flush all staging first (they are
//    barriers), so results never depend on the batch size. A full queue
//    applies backpressure by spinning the caller; idle workers park on a
//    condition variable with a timed wait. Consumed batch buffers are
//    recycled back to the producer through a second SPSC ring, so
//    steady-state ingest allocates nothing.
//  * Pre-partitioned ingress: PushPrePartitioned accepts per-shard
//    sub-batches built ahead of time with the session's ShardRouter
//    (src/stream/shard_router.h) — e.g. by a shard-aware generator cursor —
//    and enqueues each directly, skipping the per-event hash entirely.
//  * Watermarks: AdvanceTo validates once, flushes staging, then broadcasts
//    the watermark to every shard so pane-aligned window closure happens on
//    all shards — including those that saw no recent events.
//  * Emissions: each shard buffers its emissions locally and publishes them
//    to a per-shard outbox at message boundaries (batch/watermark/stop);
//    the caller thread fans them in to the user sink during subsequent
//    Push/PushBatch/AdvanceTo calls and at Close. No cross-shard lock
//    exists on the emission path, every OnEmission call happens on the
//    caller thread, and per-group emissions arrive in window order
//    (cross-group interleaving is unspecified). Any single-threaded sink
//    works unmodified — including thread-local-keyed ones, which the old
//    worker-side serialized delivery broke.
//  * Metrics: Close() joins the workers and merges per-shard RunMetrics via
//    MergeRunMetrics — counters and peak memory sum, latency max/avg
//    combine, elapsed is the max, and throughput is recomputed from merged
//    events / elapsed (shards overlap in time, so rates never sum). Count
//    and memory fields are deterministic for a fixed shard count.
//
// Threading contract: Open/Push/PushBatch/PushPrePartitioned/AdvanceTo/
// Close must all be called from one thread at a time (single producer —
// matching the SPSC ingress). MetricsSnapshot may be called concurrently
// with pushes.
//
// Requirement: all exec queries in the plan must share one group-by
// attribute (true for every paper workload; Definition 5 gives it per
// component). Open returns kUnsupported for num_shards > 1 otherwise,
// since a consistent event->shard route would not exist.
#ifndef HAMLET_RUNTIME_SHARDED_SESSION_H_
#define HAMLET_RUNTIME_SHARDED_SESSION_H_

#include <atomic>
#include <memory>
#include <span>
#include <vector>

#include "src/runtime/session.h"
#include "src/stream/shard_router.h"

namespace hamlet {

/// See file comment. The plan must outlive the session; the sink (if any)
/// must outlive every Push/AdvanceTo/Close call.
class ShardedSession {
 public:
  /// Validates `config` (including num_shards/shard_queue_capacity/
  /// shard_batch_size), builds one Session per shard and starts the
  /// workers. `sink` may be nullptr to drop emissions; otherwise it
  /// receives OnEmission calls on the caller thread (see file comment,
  /// "Emissions").
  static Result<std::unique_ptr<ShardedSession>> Open(
      const WorkloadPlan& plan, const RunConfig& config, EmissionSink* sink);

  /// The event->shard map Open derived from the plan, without building a
  /// session — for shard-aware stream sources that pre-partition batches.
  /// Fails exactly when Open would: invalid num_shards, or num_shards > 1
  /// on a plan whose exec queries mix group-by attributes.
  static Result<ShardRouter> RouterFor(const WorkloadPlan& plan,
                                       int num_shards);

  /// Stops and joins the workers (an implicit Close when still open;
  /// the metrics of an implicit Close are discarded, its emissions are
  /// still delivered).
  ~ShardedSession();

  ShardedSession(const ShardedSession&) = delete;
  ShardedSession& operator=(const ShardedSession&) = delete;

  /// Same contract as Session::Push: strictly increasing event times, never
  /// behind the last watermark; violations return kInvalidArgument naming
  /// the offending timestamp. After Close: kFailedPrecondition. A valid
  /// event is staged to the shard owning its group; the staging buffer is
  /// enqueued when it reaches shard_batch_size (backpressure blocks here
  /// when that shard's queue is full).
  Status Push(const Event& event);

  /// Ingests a time-ordered batch; stops at the first invalid event.
  Status PushBatch(std::span<const Event> events);

  /// Ingests one pre-partitioned chunk: batches[i] is shard i's
  /// subsequence, in stream order (build with router() — e.g. via
  /// PartitionedBatchCursor / PartitionBatches). Requires
  /// batches.size() == num_shards(), each sub-batch strictly
  /// time-increasing, and every event after the previous call's events and
  /// watermark. Events of *different* shards may carry equal timestamps
  /// (the per-shard sessions never compare them). Takes ownership so each
  /// sub-batch moves into its shard's queue without copying.
  Status PushPrePartitioned(PartitionedBatch batches);

  /// Validates the watermark once, flushes all staged events, then
  /// broadcasts it to every shard so all panes/windows ending at or before
  /// it close. Same contract as Session::AdvanceTo.
  Status AdvanceTo(Timestamp watermark);

  /// Flushes staging, sends stop to every shard, joins the workers,
  /// delivers all remaining emissions to the sink, and returns the merged
  /// final metrics. A second Close returns kFailedPrecondition (the first
  /// call's metrics remain available through MetricsSnapshot).
  Result<RunMetrics> Close();

  /// Merged metrics over what the shards have processed so far (staged or
  /// queued but unprocessed events are not yet counted). Safe to call while
  /// pushing.
  RunMetrics MetricsSnapshot() const;

  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// The session's event->shard map (identical to RouterFor on the same
  /// plan and shard count).
  const ShardRouter& router() const { return router_; }

 private:
  struct Shard;

  ShardedSession() = default;

  void StageEvent(const Event& event);
  /// Hands the shard's staged events to its queue as one batch message.
  void FlushShard(Shard& shard);
  void FlushAllShards();
  /// Fans shard outboxes in to the user sink (caller thread only).
  void DrainEmissions();
  static void WorkerLoop(Shard* shard);

  const WorkloadPlan* plan_ = nullptr;
  RunConfig config_;
  EmissionSink* sink_ = nullptr;
  ShardRouter router_;
  std::vector<std::unique_ptr<Shard>> shards_;
  OrderingGate gate_;
  /// Reused scratch for DrainEmissions, so steady-state fan-in allocates
  /// nothing.
  std::vector<Emission> drain_scratch_;
  /// Reentrancy guard: a sink that calls Push/AdvanceTo from OnEmission
  /// recurses into DrainEmissions while drain_scratch_ is mid-iteration;
  /// the nested drain must no-op (its emissions leave on the next drain).
  bool draining_ = false;
  /// Set by any worker publishing to its outbox, cleared by the front when
  /// it drains: the per-push "anything to drain?" check is one load
  /// regardless of shard count.
  std::atomic<bool> any_outbox_ready_{false};
  /// Atomic (release on Close, acquire in MetricsSnapshot) so a monitor
  /// thread polling MetricsSnapshot during Close sees final_metrics_ fully
  /// written, never a half-merged value.
  std::atomic<bool> closed_{false};
  RunMetrics final_metrics_;
};

}  // namespace hamlet

#endif  // HAMLET_RUNTIME_SHARDED_SESSION_H_
