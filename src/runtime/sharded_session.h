// Sharded parallel Session: the same push API, spread across worker threads.
//
// The paper's pre-processing step (§3.1) partitions each component's stream
// by its group-by attribute precisely because groups never interact: a
// trend, window, graphlet or snapshot only ever involves events of one
// group. ShardedSession exploits that independence for parallelism: it
// hash-partitions incoming events by group-by key across
// RunConfig::num_shards worker shards, each running the unmodified
// single-threaded Session machinery over the subsequence of events whose
// groups it owns. Because a group's whole stream lands on one shard, every
// per-group result is bitwise identical to a single-threaded run — only the
// interleaving of emissions across groups differs.
//
// A drop-in superset of Session (src/runtime/session.h):
//   Result<std::unique_ptr<ShardedSession>> s =
//       ShardedSession::Open(plan, config, &sink);   // config.num_shards
//   s.value()->Push(event);                          // staged to one shard
//   s.value()->AdvanceTo(watermark);                 // flush + broadcast
//   RunMetrics m = s.value()->Close().value();       // join + merged metrics
//
// Mechanics (batch-granular end to end):
//  * Ingress: Push/PushBatch validate ordering once at the front, then
//    stage each event into its shard's staging buffer; a buffer reaching
//    the shard's batch threshold is handed to that shard's bounded SPSC
//    ring (src/common/spsc_queue.h) as ONE batch message, so the per-event
//    hot path is a hash plus an append — no queue traffic. The threshold is
//    RunConfig::shard_batch_size, or — with RunConfig::adaptive_batching —
//    a per-shard AdaptiveBatchController (src/stream/adaptive_batcher.h)
//    that grows toward shard_batch_size while the shard's queue is
//    deep/busy (burst: amortize messages) and shrinks toward 1 as arrival
//    gaps open or the queue drains (lull: cut delivery latency), one
//    decision per staged event, no timers or extra threads. Watermarks,
//    Close and PushPrePartitioned flush all staging first (they are
//    barriers), so results never depend on either batching mode. A full
//    queue applies backpressure by spinning the caller; idle workers park
//    on a condition variable with a timed wait. Consumed batch buffers are
//    recycled back to the producer through a second SPSC ring, so
//    steady-state ingest allocates nothing.
//  * Routing: events route to shards by group-by hash. With
//    RunConfig::shard_rebalance_threshold > 0 the router is skew-aware: a
//    NEW group key whose hash shard is overloaded (by more than the
//    threshold over a sliding window of staged events) lands on the
//    least-loaded shard instead. Assignments are sticky — a group's whole
//    stream stays on one shard — so per-group results and ordering are
//    unchanged; only the placement of newly appearing groups adapts.
//  * Pre-partitioned ingress: PushPrePartitioned accepts per-shard
//    sub-batches built ahead of time with the session's ShardRouter
//    (src/stream/shard_router.h) — e.g. by a shard-aware generator cursor —
//    and enqueues each directly, skipping the per-event hash entirely.
//  * Watermarks: AdvanceTo validates once, flushes staging, then broadcasts
//    the watermark to every shard so pane-aligned window closure happens on
//    all shards — including those that saw no recent events.
//  * Emissions: each shard buffers its emissions locally and publishes them
//    to a per-shard outbox at message boundaries (batch/watermark/stop);
//    the caller thread fans them in to the user sink during subsequent
//    Push/PushBatch/AdvanceTo calls and at Close. No cross-shard lock
//    exists on the emission path, every OnEmission call happens on the
//    caller thread, and per-group emissions arrive in window order
//    (cross-group interleaving is unspecified). Any single-threaded sink
//    works unmodified — including thread-local-keyed ones, which the old
//    worker-side serialized delivery broke.
//  * Metrics: Close() joins the workers and merges per-shard RunMetrics via
//    MergeRunMetrics — counters sum, latency max/avg combine, elapsed is
//    the max, and throughput is recomputed from merged events / elapsed
//    (shards overlap in time, so rates never sum). Merged peak memory is a
//    sampled CONCURRENT high-water mark: workers publish their current
//    footprint, the front samples the sum at flush boundaries, and the
//    result is max(samples, max per-shard peak) — never the sum of
//    per-shard peaks, which overstates the concurrent footprint when
//    shards peak at different times. The ingress layer also reports a
//    batch-size histogram, the max queue depth, per-shard event counts and
//    the rebalanced-key count (RunMetrics ingress fields). Count fields
//    are deterministic for a fixed shard count; the sampled peak is not.
//
//  * Query churn + plan swaps: AddQuery/RemoveQuery (and the front's online
//    re-optimizer) pre-validate and compile on the front thread, flush all
//    staging (the churn op is a barrier in stream order), then broadcast a
//    churn message carrying ONE explicit pane-aligned activation boundary —
//    computed from the front gate, which has seen every event — so all
//    shards swap epochs at the identical boundary and the union of shard
//    emissions stays bit-identical to a single-threaded session (all
//    lifecycle failure modes fire on the front; a worker-side failure would
//    desynchronize the shards' query sets and is a CHECK). Per-shard
//    self-reoptimization is disabled (shards get reoptimize_every_panes =
//    0); only the front decides, from merged MetricsSnapshot statistics.
//    Worker snapshots lag under sustained load, so an explicit AdvanceTo
//    doubles as the re-optimizer's synchronization checkpoint: each worker
//    publishes fresh metrics before acknowledging the watermark and the
//    re-optimizing front waits for all acknowledgements, guaranteeing that
//    every drift check after a watermark sees statistics covering the
//    whole stream before it (only paid when reoptimize_every_panes > 0).
//    With RunConfig::evict_idle_groups, AdvanceTo also drains router
//    rebalance-map entries whose groups' windows have provably all closed
//    (cutoff = current pane boundary minus the largest WITHIN ever
//    compiled), and Close broadcasts a final watermark carrying the front's
//    max seen time before stop so every shard's eviction horizon matches
//    the single-threaded reference during the final flush.
//
// Threading contract: Open/Push/PushBatch/PushPrePartitioned/AdvanceTo/
// AddQuery/RemoveQuery/ApplySharingOverrides/Close must all be called from
// one thread at a time (single producer — matching the SPSC ingress).
// MetricsSnapshot may be called concurrently with pushes.
//
// Requirement: all exec queries in the plan must share one group-by
// attribute (true for every paper workload; Definition 5 gives it per
// component). Open returns kUnsupported for num_shards > 1 otherwise,
// since a consistent event->shard route would not exist.
#ifndef HAMLET_RUNTIME_SHARDED_SESSION_H_
#define HAMLET_RUNTIME_SHARDED_SESSION_H_

#include <atomic>
#include <memory>
#include <span>
#include <vector>

#include "src/runtime/session.h"
#include "src/stream/shard_router.h"

namespace hamlet {

/// See file comment. The plan must outlive the session; the sink (if any)
/// must outlive every Push/AdvanceTo/Close call.
class ShardedSession {
 public:
  /// Validates `config` (including num_shards/shard_queue_capacity/
  /// shard_batch_size), builds one Session per shard and starts the
  /// workers. `sink` may be nullptr to drop emissions; otherwise it
  /// receives OnEmission calls on the caller thread (see file comment,
  /// "Emissions").
  static Result<std::unique_ptr<ShardedSession>> Open(
      const WorkloadPlan& plan, const RunConfig& config, EmissionSink* sink);

  /// The event->shard map Open derived from the plan, without building a
  /// session — for shard-aware stream sources that pre-partition batches.
  /// Fails exactly when Open would: invalid num_shards, or num_shards > 1
  /// on a plan whose exec queries mix group-by attributes.
  static Result<ShardRouter> RouterFor(const WorkloadPlan& plan,
                                       int num_shards);

  /// Stops and joins the workers (an implicit Close when still open;
  /// the metrics of an implicit Close are discarded, its emissions are
  /// still delivered).
  ~ShardedSession();

  ShardedSession(const ShardedSession&) = delete;
  ShardedSession& operator=(const ShardedSession&) = delete;

  /// Same contract as Session::Push: strictly increasing event times, never
  /// behind the last watermark; violations return kInvalidArgument naming
  /// the offending timestamp. After Close: kFailedPrecondition. A valid
  /// event is staged to the shard owning its group; the staging buffer is
  /// enqueued when it reaches shard_batch_size (backpressure blocks here
  /// when that shard's queue is full).
  Status Push(const Event& event);

  /// Ingests a time-ordered batch; stops at the first invalid event.
  Status PushBatch(std::span<const Event> events);

  /// Ingests one pre-partitioned chunk: batches[i] is shard i's
  /// subsequence, in stream order (build with router() — e.g. via
  /// PartitionedBatchCursor / PartitionBatches). Requires
  /// batches.size() == num_shards(), each sub-batch strictly
  /// time-increasing, and every event after the previous call's events and
  /// watermark. Events of *different* shards may carry equal timestamps
  /// (the per-shard sessions never compare them). Takes ownership so each
  /// sub-batch moves into its shard's queue without copying.
  Status PushPrePartitioned(PartitionedBatch batches);

  /// Validates the watermark once, flushes all staged events, then
  /// broadcasts it to every shard so all panes/windows ending at or before
  /// it close. Same contract as Session::AdvanceTo. Also the checkpoint at
  /// which stale router rebalance-map entries drain, and — when online
  /// re-optimization is enabled — the barrier at which the front waits for
  /// every shard's statistics before drift checks (see file comment).
  Status AdvanceTo(Timestamp watermark);

  /// Registers `query` on every shard at one shared pane-aligned activation
  /// boundary (returned). Same validation as Session::AddQuery — performed
  /// once, on the front — plus churn backpressure: while the merged
  /// snapshot reports QueryLifecycle::kMaxLiveEpochs draining epochs, new
  /// churn returns kResourceExhausted (the snapshot lags bounded-ly, so the
  /// throttle is approximate but always recovers as shards drain).
  Result<Timestamp> AddQuery(const Query& query);

  /// Deactivates `name` on every shard at one shared pane boundary; its
  /// open windows drain and emit before the old epoch's state is evicted.
  Result<Timestamp> RemoveQuery(const std::string& name);

  /// Hot-swaps the sharing plan (unchanged query set) on every shard — the
  /// broadcast the front's online re-optimizer uses, exposed for tests and
  /// manual plan pinning.
  Result<Timestamp> ApplySharingOverrides(
      std::span<const SharingOverride> overrides);

  /// The front re-optimizer's decision log (empty when
  /// RunConfig::reoptimize_every_panes == 0).
  const std::vector<ReoptDecision>& reopt_log() const {
    return reoptimizer_.log();
  }

  /// Flushes staging, sends stop to every shard, joins the workers,
  /// delivers all remaining emissions to the sink, and returns the merged
  /// final metrics. A second Close returns kFailedPrecondition (the first
  /// call's metrics remain available through MetricsSnapshot).
  Result<RunMetrics> Close();

  /// Merged metrics over what the shards have processed so far (staged or
  /// queued but unprocessed events are not yet counted). Safe to call while
  /// pushing.
  RunMetrics MetricsSnapshot() const;

  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// The session's event->shard map (identical to RouterFor on the same
  /// plan and shard count).
  const ShardRouter& router() const { return router_; }

 private:
  struct Shard;
  enum class ChurnKind { kAddQuery, kRemoveQuery, kSwapPlan };

  ShardedSession() = default;

  /// Shared tail of every churn op: front-side validate + compile, flush
  /// staging, broadcast one message per shard with the shared activation
  /// boundary, re-bind the front re-optimizer. Exactly one of query / name
  /// / overrides is meaningful, per `kind`.
  Result<Timestamp> BroadcastChurn(ChurnKind kind, const Query* query,
                                   const std::string* name,
                                   std::vector<SharingOverride> overrides);
  /// Front-side re-optimization check at the configured pane cadence
  /// (no-op unless RunConfig::reoptimize_every_panes > 0).
  void MaybeReoptimizeFront();
  /// Drains router rebalance-map entries whose diverted groups can no
  /// longer have open windows anywhere (requires evict_idle_groups — the
  /// group's engine state is then also gone from its old shard, so a
  /// re-appearing key may re-route freely).
  void MaybeDrainRouter();

  /// `now_seconds` feeds the shard's adaptive batch controller; pass 0 when
  /// adaptive batching is off (the value is ignored).
  void StageEvent(const Event& event, double now_seconds);
  /// Hands the shard's staged events to its queue as one batch message.
  void FlushShard(Shard& shard);
  void FlushAllShards();
  /// Samples the sum of worker-published current footprints into
  /// mem_high_water_ (called every kMemSampleEveryFlushes staging flushes —
  /// cheap, amortized even at batch size 1).
  void SampleConcurrentMemory();
  /// Reads the ingest clock (RunConfig::clock_override or the monotonic
  /// clock) — only when adaptive batching needs it.
  double IngestNow() const;
  /// Fills the merged metrics' ingress fields (batch histogram, queue
  /// depth, per-shard events, rebalanced keys, concurrent peak).
  void FillIngressMetrics(RunMetrics& merged) const;
  /// Fans shard outboxes in to the user sink (caller thread only).
  void DrainEmissions();
  static void WorkerLoop(Shard* shard);

  const WorkloadPlan* plan_ = nullptr;
  RunConfig config_;
  EmissionSink* sink_ = nullptr;
  ShardRouter router_;
  /// Front-side query set + compiler (the single source of churn truth —
  /// workers only ever apply pre-validated ops).
  QueryLifecycle lifecycle_;
  /// The front's own compiled copy of the current epoch after the first
  /// churn op (before that, `plan_` is current). Kept alive because the
  /// front re-optimizer is bound to it; workers compile their own copies.
  QueryLifecycle::CompiledEpoch front_epoch_;
  OnlineReoptimizer reoptimizer_;
  BurstStatsCollector collector_;
  bool reopt_enabled_ = false;
  /// Pane size of the CURRENT front epoch — the grid activation boundaries
  /// and the re-optimization cadence are computed on.
  Timestamp front_pane_size_ = 1;
  /// Largest WITHIN across every epoch ever compiled (old epochs' windows
  /// may still be draining) — the router-drain safety margin.
  Timestamp within_high_water_ = 0;
  Timestamp last_reopt_pane_ = 0;
  bool reopt_pane_seen_ = false;
  std::vector<std::unique_ptr<Shard>> shards_;
  OrderingGate gate_;
  /// Reused scratch for DrainEmissions, so steady-state fan-in allocates
  /// nothing.
  std::vector<Emission> drain_scratch_;
  /// Reentrancy guard: a sink that calls Push/AdvanceTo from OnEmission
  /// recurses into DrainEmissions while drain_scratch_ is mid-iteration;
  /// the nested drain must no-op (its emissions leave on the next drain).
  bool draining_ = false;
  /// Set by any worker publishing to its outbox, cleared by the front when
  /// it drains: the per-push "anything to drain?" check is one load
  /// regardless of shard count.
  std::atomic<bool> any_outbox_ready_{false};
  /// Atomic (release on Close, acquire in MetricsSnapshot) so a monitor
  /// thread polling MetricsSnapshot during Close sees final_metrics_ fully
  /// written, never a half-merged value.
  std::atomic<bool> closed_{false};
  RunMetrics final_metrics_;
  /// Largest observed sum of simultaneous per-shard footprints (see
  /// SampleConcurrentMemory). Atomic so MetricsSnapshot may read it from a
  /// monitor thread while the front samples.
  std::atomic<int64_t> mem_high_water_{0};
  /// Front-thread throttle for SampleConcurrentMemory.
  int flushes_since_mem_sample_ = 0;
};

}  // namespace hamlet

#endif  // HAMLET_RUNTIME_SHARDED_SESSION_H_
