// Sharded parallel Session: the same push API, spread across worker threads.
//
// The paper's pre-processing step (§3.1) partitions each component's stream
// by its group-by attribute precisely because groups never interact: a
// trend, window, graphlet or snapshot only ever involves events of one
// group. ShardedSession exploits that independence for parallelism: it
// hash-partitions incoming events by group-by key across
// RunConfig::num_shards worker shards, each running the unmodified
// single-threaded Session machinery over the subsequence of events whose
// groups it owns. Because a group's whole stream lands on one shard, every
// per-group result is bitwise identical to a single-threaded run — only the
// interleaving of emissions across groups differs.
//
// A drop-in superset of Session (src/runtime/session.h):
//   Result<std::unique_ptr<ShardedSession>> s =
//       ShardedSession::Open(plan, config, &sink);   // config.num_shards
//   s.value()->Push(event);                          // routed to one shard
//   s.value()->AdvanceTo(watermark);                 // broadcast to all
//   RunMetrics m = s.value()->Close().value();       // join + merged metrics
//
// Mechanics:
//  * Ingress: one bounded SPSC ring (src/common/spsc_queue.h) per shard.
//    Push is wait-free while the queue has space; a full queue applies
//    backpressure by spinning the caller (the shard is saturated). Idle
//    workers park on a condition variable with a timed wait, so an idle
//    ShardedSession burns (almost) no CPU.
//  * Watermarks: AdvanceTo validates once at the front, then broadcasts the
//    watermark to every shard so pane-aligned window closure happens on all
//    shards — including those that saw no recent events.
//  * Emissions: every shard delivers through one shared mutex, so any
//    EmissionSink written for the single-threaded Session works unmodified.
//    Calls are serialized but arrive on worker threads; sinks keying on
//    thread identity (thread-locals, TLS caches) are the one exception.
//  * Metrics: Close() joins the workers and merges per-shard RunMetrics via
//    MergeRunMetrics — counters and peak memory sum, throughput sums,
//    latency max/avg combine. Count and memory fields are deterministic for
//    a fixed shard count.
//
// Threading contract: Open/Push/PushBatch/AdvanceTo/Close must all be
// called from one thread at a time (single producer — matching the SPSC
// ingress). MetricsSnapshot may be called concurrently with pushes.
//
// Requirement: all exec queries in the plan must share one group-by
// attribute (true for every paper workload; Definition 5 gives it per
// component). Open returns kUnsupported for num_shards > 1 otherwise,
// since a consistent event->shard route would not exist.
#ifndef HAMLET_RUNTIME_SHARDED_SESSION_H_
#define HAMLET_RUNTIME_SHARDED_SESSION_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "src/runtime/session.h"

namespace hamlet {

/// See file comment. The plan must outlive the session; the sink (if any)
/// must outlive every Push/AdvanceTo/Close call.
class ShardedSession {
 public:
  /// Validates `config` (including num_shards/shard_queue_capacity), builds
  /// one Session per shard and starts the workers. `sink` may be nullptr to
  /// drop emissions; otherwise it receives serialized OnEmission calls from
  /// worker threads.
  static Result<std::unique_ptr<ShardedSession>> Open(
      const WorkloadPlan& plan, const RunConfig& config, EmissionSink* sink);

  /// Stops and joins the workers (an implicit Close when still open;
  /// the metrics of an implicit Close are discarded).
  ~ShardedSession();

  ShardedSession(const ShardedSession&) = delete;
  ShardedSession& operator=(const ShardedSession&) = delete;

  /// Same contract as Session::Push: strictly increasing event times, never
  /// behind the last watermark; violations return kInvalidArgument naming
  /// the offending timestamp. After Close: kFailedPrecondition. A valid
  /// event is enqueued to the shard owning its group (backpressure blocks
  /// here when that shard's queue is full).
  Status Push(const Event& event);

  /// Ingests a time-ordered batch; stops at the first invalid event.
  Status PushBatch(std::span<const Event> events);

  /// Validates the watermark once, then broadcasts it to every shard so all
  /// panes/windows ending at or before it close. Same contract as
  /// Session::AdvanceTo.
  Status AdvanceTo(Timestamp watermark);

  /// Sends stop to every shard, joins the workers, and returns the merged
  /// final metrics. A second Close returns kFailedPrecondition (the first
  /// call's metrics remain available through MetricsSnapshot).
  Result<RunMetrics> Close();

  /// Merged metrics over what the shards have processed so far (queued but
  /// unprocessed events are not yet counted). Safe to call while pushing.
  RunMetrics MetricsSnapshot() const;

  int num_shards() const { return static_cast<int>(shards_.size()); }

 private:
  struct Shard;

  ShardedSession() = default;

  size_t ShardOf(const Event& event) const;
  void Enqueue(const Event& event);
  static void WorkerLoop(Shard* shard);

  const WorkloadPlan* plan_ = nullptr;
  RunConfig config_;
  /// Serializes sink delivery across shards (file comment, "Emissions").
  std::mutex emission_mu_;
  /// Group-by attribute shared by all exec queries; Schema::kInvalidId when
  /// the workload has no GROUPBY (every event then routes to shard 0).
  AttrId partition_attr_ = -1;
  std::vector<std::unique_ptr<Shard>> shards_;
  OrderingGate gate_;
  /// Atomic (release on Close, acquire in MetricsSnapshot) so a monitor
  /// thread polling MetricsSnapshot during Close sees final_metrics_ fully
  /// written, never a half-merged value.
  std::atomic<bool> closed_{false};
  RunMetrics final_metrics_;
};

}  // namespace hamlet

#endif  // HAMLET_RUNTIME_SHARDED_SESSION_H_
