// Sharded parallel Session: the same push API, spread across worker threads.
//
// The paper's pre-processing step (§3.1) partitions each component's stream
// by its group-by attribute precisely because groups never interact: a
// trend, window, graphlet or snapshot only ever involves events of one
// group. ShardedSession exploits that independence for parallelism: it
// hash-partitions incoming events by group-by key across
// RunConfig::num_shards worker shards, each running the unmodified
// single-threaded Session machinery over the subsequence of events whose
// groups it owns. Because a group's whole stream lands on one shard, every
// per-group result is bitwise identical to a single-threaded run — only the
// interleaving of emissions across groups differs.
//
// A drop-in superset of Session (src/runtime/session.h):
//   Result<std::unique_ptr<ShardedSession>> s =
//       ShardedSession::Open(plan, config, &sink);   // config.num_shards
//   s.value()->Push(event);                          // staged to one shard
//   s.value()->AdvanceTo(watermark);                 // flush + broadcast
//   RunMetrics m = s.value()->Close().value();       // join + merged metrics
//
// Mechanics (batch-granular end to end):
//  * Ingress: Push/PushBatch validate ordering once at the front, then
//    stage each event into its shard's staging buffer; a buffer reaching
//    the shard's batch threshold is handed to that shard's bounded SPSC
//    ring (src/common/spsc_queue.h) as ONE batch message, so the per-event
//    hot path is a hash plus an append — no queue traffic. The threshold is
//    RunConfig::shard_batch_size, or — with RunConfig::adaptive_batching —
//    a per-shard AdaptiveBatchController (src/stream/adaptive_batcher.h)
//    that grows toward shard_batch_size while the shard's queue is
//    deep/busy (burst: amortize messages) and shrinks toward 1 as arrival
//    gaps open or the queue drains (lull: cut delivery latency), one
//    decision per staged event, no timers or extra threads. Watermarks,
//    Close and PushPrePartitioned flush all staging first (they are
//    barriers), so results never depend on either batching mode. A full
//    queue applies backpressure by spinning the caller; idle workers park
//    on a condition variable with a timed wait. Consumed batch buffers are
//    recycled back to the producer through a second SPSC ring, so
//    steady-state ingest allocates nothing.
//  * Routing: events route to shards by group-by hash. With
//    RunConfig::shard_rebalance_threshold > 0 the router is skew-aware: a
//    NEW group key whose hash shard is overloaded (by more than the
//    threshold over a sliding window of staged events) lands on the
//    least-loaded shard instead. Assignments are sticky — a group's whole
//    stream stays on one shard — so per-group results and ordering are
//    unchanged; only the placement of newly appearing groups adapts.
//  * Pre-partitioned ingress: PushPrePartitioned accepts per-shard
//    sub-batches built ahead of time with the session's ShardRouter
//    (src/stream/shard_router.h) — e.g. by a shard-aware generator cursor —
//    and enqueues each directly, skipping the per-event hash entirely.
//  * Watermarks: AdvanceTo validates once, flushes staging, then broadcasts
//    the watermark to every shard so pane-aligned window closure happens on
//    all shards — including those that saw no recent events.
//  * Emissions: each shard buffers its emissions locally and publishes them
//    to a per-shard outbox at message boundaries (batch/watermark/stop);
//    the caller thread fans them in to the user sink during subsequent
//    Push/PushBatch/AdvanceTo calls and at Close. No cross-shard lock
//    exists on the emission path, every OnEmission call happens on the
//    caller thread, and per-group emissions arrive in window order
//    (cross-group interleaving is unspecified). Any single-threaded sink
//    works unmodified — including thread-local-keyed ones, which the old
//    worker-side serialized delivery broke.
//  * Metrics: Close() joins the workers and merges per-shard RunMetrics via
//    MergeRunMetrics — counters sum, latency max/avg combine, elapsed is
//    the max, and throughput is recomputed from merged events / elapsed
//    (shards overlap in time, so rates never sum). Merged peak memory is a
//    sampled CONCURRENT high-water mark: workers publish their current
//    footprint, the front samples the sum at flush boundaries, and the
//    result is max(samples, max per-shard peak) — never the sum of
//    per-shard peaks, which overstates the concurrent footprint when
//    shards peak at different times. The ingress layer also reports a
//    batch-size histogram, the max queue depth, per-shard event counts and
//    the rebalanced-key count (RunMetrics ingress fields). Count fields
//    are deterministic for a fixed shard count; the sampled peak is not.
//
//  * Query churn + plan swaps: AddQuery/RemoveQuery (and the front's online
//    re-optimizer) pre-validate and compile on the front thread, flush all
//    staging (the churn op is a barrier in stream order), then broadcast a
//    churn message carrying ONE explicit pane-aligned activation boundary —
//    computed from the front gate, which has seen every event — so all
//    shards swap epochs at the identical boundary and the union of shard
//    emissions stays bit-identical to a single-threaded session (all
//    lifecycle failure modes fire on the front; a worker-side failure would
//    desynchronize the shards' query sets and is a CHECK). Per-shard
//    self-reoptimization is disabled (shards get reoptimize_every_panes =
//    0); only the front decides, from merged MetricsSnapshot statistics.
//    Worker snapshots lag under sustained load, so an explicit AdvanceTo
//    doubles as the re-optimizer's synchronization checkpoint: each worker
//    publishes fresh metrics before acknowledging the watermark and the
//    re-optimizing front waits for all acknowledgements, guaranteeing that
//    every drift check after a watermark sees statistics covering the
//    whole stream before it (only paid when reoptimize_every_panes > 0).
//    With RunConfig::evict_idle_groups, AdvanceTo also drains router
//    rebalance-map entries whose groups' windows have provably all closed
//    (cutoff = current pane boundary minus the largest WITHIN ever
//    compiled), and Close broadcasts a final watermark carrying the front's
//    max seen time before stop so every shard's eviction horizon matches
//    the single-threaded reference during the final flush.
//
//  * Concurrent ingest (AddProducer): N producer threads may ingest
//    concurrently through per-producer handles instead of the single
//    front thread. Each Producer owns a private SPSC ring plus a published
//    lower bound inside an MpscIngestHub (src/common/mpsc_ingest.h); an
//    internal sequencer thread k-way-merges the rings back into ONE
//    time-ordered stream and becomes the front — it runs the same
//    gate/stage/flush machinery, so everything downstream of the merge is
//    identical to single-producer ingest and the emission SET is invariant
//    across producer counts. Per-producer watermarks (Producer::AdvanceTo)
//    merge through the hub frontier — min over producers of (buffered
//    front event, or published bound) — which the sequencer broadcasts as
//    the session watermark whenever it crosses a pane boundary. Producer
//    handles enforce their OWN ordering gates (each producer's stream must
//    be strictly increasing and respect the handle's admission bound, so a
//    late joiner cannot push below what was already broadcast);
//    cross-producer violations the handle gates cannot see — two producers
//    pushing the same timestamp — poison the session with a sticky error
//    instead of feeding engines a misordered stream. Once AddProducer is
//    called, session-level Push/PushBatch/PushPrePartitioned/AdvanceTo and
//    query churn return kFailedPrecondition for the session's lifetime
//    (one ingest mode per session), and sink emissions are delivered on
//    the sequencer thread. Close requires every producer handle closed
//    first. Producers may join and leave mid-stream (AddProducer /
//    Producer::Close) — the admission bound makes churn safe.
//  * Pane-boundary work stealing (RunConfig::work_stealing): closes the
//    skew gap sticky routing leaves open — rebalancing only places NEW
//    keys, so a group that becomes hot after placement pins its shard
//    forever. With stealing, the front tracks per-shard and per-group
//    staged-event loads over a sliding window; when an event-time pane
//    crossing finds the max-loaded shard above steal_imbalance_ratio x the
//    min-loaded shard plus a floor, whole established groups migrate at
//    that pane boundary B: the router reassigns the key, the victim shard
//    gets a FENCE message (bound the key's runners to windows starting
//    before B, cancel its unfed windows at/after B, schedule the runner
//    drop at B + max WITHIN), the front synchronously collects the fence's
//    hand-off payload (which components had runners, plus HAMLET lane
//    statistics as a warm start) and sends the thief an ADOPT message
//    (advance panes to B, eagerly re-create exactly the victim's runners
//    bounded to windows from B on). Events of a migrating key are staged
//    to BOTH shards while windows still span the boundary (time < B + max
//    WITHIN), so victim windows finish with full data; such events count
//    twice in RunMetrics::events but never produce duplicate emissions
//    (window ownership is partitioned by start time at B). Every steal
//    decision derives from the event stream alone — never wall-clock or
//    watermark arrival timing — so emissions stay bit-identical across
//    producer counts and stealing on/off, for a fixed shard count.
//    RunMetrics::stolen_panes counts executed migrations. Incompatible
//    with evict_idle_groups and online re-optimization (Open rejects the
//    combinations), and with query churn and PushPrePartitioned (rejected
//    per call); see docs/API.md's knob matrix.
//
// Threading contract: Open/Push/PushBatch/PushPrePartitioned/AdvanceTo/
// AddQuery/RemoveQuery/ApplySharingOverrides/Close must all be called from
// one thread at a time (single producer — matching the SPSC ingress).
// AddProducer may be called from any thread; each Producer handle is
// single-threaded, but DIFFERENT handles may run on different threads
// concurrently — that is the point of the hub. MetricsSnapshot may be
// called concurrently with pushes from any mode.
//
// The contract is statically checked (Clang Thread Safety Analysis, see
// src/common/mutex.h and docs/STATIC_ANALYSIS.md): `front_role_` is the
// capability of "the front thread" — held by the caller in single-producer
// mode and by the sequencer in multi-producer mode — and every front-state
// field below is HAMLET_GUARDED_BY it; the per-shard mutexes in Shard guard
// the worker<->front hand-off state. A build with HAMLET_THREAD_SAFETY=ON
// rejects any new code path that touches front state without the role or
// shard hand-off state without its lock.
//
// Requirement: all exec queries in the plan must share one group-by
// attribute (true for every paper workload; Definition 5 gives it per
// component). Open returns kUnsupported for num_shards > 1 otherwise,
// since a consistent event->shard route would not exist.
#ifndef HAMLET_RUNTIME_SHARDED_SESSION_H_
#define HAMLET_RUNTIME_SHARDED_SESSION_H_

#include <atomic>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/common/mpsc_ingest.h"
#include "src/common/mutex.h"
#include "src/common/thread.h"
#include "src/runtime/session.h"
#include "src/stream/shard_router.h"

namespace hamlet {

/// See file comment. The plan must outlive the session; the sink (if any)
/// must outlive every Push/AdvanceTo/Close call.
class ShardedSession {
 public:
  /// Validates `config` (including num_shards/shard_queue_capacity/
  /// shard_batch_size), builds one Session per shard and starts the
  /// workers. `sink` may be nullptr to drop emissions; otherwise it
  /// receives OnEmission calls on the caller thread (see file comment,
  /// "Emissions").
  static Result<std::unique_ptr<ShardedSession>> Open(
      const WorkloadPlan& plan, const RunConfig& config, EmissionSink* sink);

  /// The event->shard map Open derived from the plan, without building a
  /// session — for shard-aware stream sources that pre-partition batches.
  /// Fails exactly when Open would: invalid num_shards, or num_shards > 1
  /// on a plan whose exec queries mix group-by attributes.
  static Result<ShardRouter> RouterFor(const WorkloadPlan& plan,
                                       int num_shards);

  /// Stops and joins the workers (an implicit Close when still open;
  /// the metrics of an implicit Close are discarded, its emissions are
  /// still delivered).
  ~ShardedSession();

  ShardedSession(const ShardedSession&) = delete;
  ShardedSession& operator=(const ShardedSession&) = delete;

  /// Same contract as Session::Push: strictly increasing event times, never
  /// behind the last watermark; violations return kInvalidArgument naming
  /// the offending timestamp. After Close: kFailedPrecondition. A valid
  /// event is staged to the shard owning its group; the staging buffer is
  /// enqueued when it reaches shard_batch_size (backpressure blocks here
  /// when that shard's queue is full).
  Status Push(const Event& event);

  /// Ingests a time-ordered batch; stops at the first invalid event.
  Status PushBatch(std::span<const Event> events);

  /// One concurrent-ingest handle (see file comment, "Concurrent
  /// ingest"). Single-threaded per handle; different handles may push from
  /// different threads concurrently. The handle must be closed (or
  /// destroyed) before the session's Close, and must not outlive the
  /// session.
  class Producer {
   public:
    /// Closes the handle if still open (closure status is discarded —
    /// close explicitly to observe it).
    ~Producer();

    Producer(const Producer&) = delete;
    Producer& operator=(const Producer&) = delete;

    /// Same per-stream contract as Session::Push, enforced per producer:
    /// this handle's event times must strictly increase, never regress
    /// behind its own watermark, and start at or after the handle's
    /// admission bound (the merged stream's frontier at AddProducer time —
    /// older events are already merged past). Blocks while the handle's
    /// ring is full (the sequencer is draining it). Returns the session's
    /// sticky poison error after a cross-producer ordering violation.
    Status Push(const Event& event);

    /// Push for each event, stopping at the first invalid one.
    Status PushBatch(std::span<const Event> events);

    /// Per-producer watermark: promises this handle will never push an
    /// event with time < `watermark`. The session watermark is the MERGED
    /// frontier over all producers, so one lagging producer holds
    /// everyone's window closure back until it advances (or closes).
    Status AdvanceTo(Timestamp watermark);

    /// Retires the handle: its bound pins at +infinity, so the merged
    /// frontier no longer waits on it. Events already pushed still drain.
    /// Idempotent-ish: a second Close returns kFailedPrecondition.
    Status Close();

   private:
    friend class ShardedSession;
    Producer(ShardedSession* owner, int slot) : owner_(owner), slot_(slot) {}

    ShardedSession* owner_;
    int slot_;
    OrderingGate gate_;
    bool closed_ = false;
  };

  /// Opens a concurrent-ingest handle, switching the session to
  /// multi-producer mode for good on first call (rejected once any
  /// session-level Push/AdvanceTo committed — one ingest mode per
  /// session). Callable from any thread, concurrently with other
  /// producers' traffic — this is how producers join mid-stream. Fails
  /// with kResourceExhausted when all MpscIngestHub::kMaxProducers slots
  /// are taken by open handles.
  Result<std::unique_ptr<Producer>> AddProducer();

  /// Ingests one pre-partitioned chunk: batches[i] is shard i's
  /// subsequence, in stream order (build with router() — e.g. via
  /// PartitionedBatchCursor / PartitionBatches). Requires
  /// batches.size() == num_shards(), each sub-batch strictly
  /// time-increasing, and every event after the previous call's events and
  /// watermark. Events of *different* shards may carry equal timestamps
  /// (the per-shard sessions never compare them). Takes ownership so each
  /// sub-batch moves into its shard's queue without copying.
  Status PushPrePartitioned(PartitionedBatch batches);

  /// Validates the watermark once, flushes all staged events, then
  /// broadcasts it to every shard so all panes/windows ending at or before
  /// it close. Same contract as Session::AdvanceTo. Also the checkpoint at
  /// which stale router rebalance-map entries drain, and — when online
  /// re-optimization is enabled — the barrier at which the front waits for
  /// every shard's statistics before drift checks (see file comment).
  Status AdvanceTo(Timestamp watermark);

  /// Registers `query` on every shard at one shared pane-aligned activation
  /// boundary (returned). Same validation as Session::AddQuery — performed
  /// once, on the front — plus churn backpressure: while the merged
  /// snapshot reports QueryLifecycle::kMaxLiveEpochs draining epochs, new
  /// churn returns kResourceExhausted (the snapshot lags bounded-ly, so the
  /// throttle is approximate but always recovers as shards drain).
  Result<Timestamp> AddQuery(const Query& query);

  /// Deactivates `name` on every shard at one shared pane boundary; its
  /// open windows drain and emit before the old epoch's state is evicted.
  Result<Timestamp> RemoveQuery(const std::string& name);

  /// Hot-swaps the sharing plan (unchanged query set) on every shard — the
  /// broadcast the front's online re-optimizer uses, exposed for tests and
  /// manual plan pinning.
  Result<Timestamp> ApplySharingOverrides(
      std::span<const SharingOverride> overrides);

  /// The front re-optimizer's decision log (empty when
  /// RunConfig::reoptimize_every_panes == 0).
  const std::vector<ReoptDecision>& reopt_log() const {
    return reoptimizer_.log();
  }

  /// Flushes staging, sends stop to every shard, joins the workers,
  /// delivers all remaining emissions to the sink, and returns the merged
  /// final metrics. A second Close returns kFailedPrecondition (the first
  /// call's metrics remain available through MetricsSnapshot).
  Result<RunMetrics> Close();

  /// Merged metrics over what the shards have processed so far (staged or
  /// queued but unprocessed events are not yet counted). Safe to call while
  /// pushing.
  RunMetrics MetricsSnapshot() const;

  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// The session's event->shard map (identical to RouterFor on the same
  /// plan and shard count).
  const ShardRouter& router() const { return router_; }

 private:
  struct Shard;
  enum class ChurnKind { kAddQuery, kRemoveQuery, kSwapPlan };

  ShardedSession() = default;

  /// Shared tail of every churn op: front-side validate + compile, flush
  /// staging, broadcast one message per shard with the shared activation
  /// boundary, re-bind the front re-optimizer. Exactly one of query / name
  /// / overrides is meaningful, per `kind`.
  Result<Timestamp> BroadcastChurn(ChurnKind kind, const Query* query,
                                   const std::string* name,
                                   std::vector<SharingOverride> overrides)
      HAMLET_REQUIRES(front_role_);
  /// Front-side re-optimization check at the configured pane cadence
  /// (no-op unless RunConfig::reoptimize_every_panes > 0).
  void MaybeReoptimizeFront() HAMLET_REQUIRES(front_role_);
  /// Drains router rebalance-map entries whose diverted groups can no
  /// longer have open windows anywhere (requires evict_idle_groups — the
  /// group's engine state is then also gone from its old shard, so a
  /// re-appearing key may re-route freely).
  void MaybeDrainRouter() HAMLET_REQUIRES(front_role_);

  /// Body of AdvanceTo after the closed/mode checks — shared with the
  /// sequencer's frontier broadcasts, which are ordinary watermarks.
  Status AdvanceToInternal(Timestamp watermark) HAMLET_REQUIRES(front_role_);
  /// Shared churn rejection for multi-producer mode and work stealing.
  Status ChurnGuard(const char* op) const;

  // --- multi-producer ingest (sequencer thread) ---
  /// The sequencer: drains the hub's merge until stuck, broadcasts the
  /// frontier at pane crossings, exits on seq_stop_ after a final drain.
  void SequencerLoop();
  /// Front-side handling of one merged event: gate (poison on
  /// cross-producer violations), stage, re-optimize, drain — the
  /// sequencer's equivalent of Push's body.
  void IngestReleased(const Event& event) HAMLET_REQUIRES(front_role_);
  /// Broadcasts the hub frontier as a session watermark when it crossed a
  /// pane boundary since the last broadcast (and raises the claim floor so
  /// joiners admit at or above it).
  void MaybeBroadcastFrontier() HAMLET_REQUIRES(front_role_);
  void StopSequencer();
  /// Sticky cross-producer ordering error (set once, then returned by
  /// every producer call).
  void Poison(Status status) HAMLET_EXCLUDES(producer_mu_);
  Status PoisonStatus() HAMLET_EXCLUDES(producer_mu_);

  // --- pane-boundary work stealing (front/sequencer thread) ---
  /// Steal-trigger evaluation at event-time pane boundary `boundary`:
  /// executes up to kMaxStealsPerBoundary migrations while the load
  /// imbalance persists and a candidate key improves it.
  void MaybeSteal(Timestamp boundary) HAMLET_REQUIRES(front_role_);
  /// One migration: reassign the key, fence the victim (synchronously
  /// collecting the hand-off payload), adopt on the thief, open the
  /// duplication window.
  void ExecuteSteal(int64_t key, size_t victim, size_t thief,
                    Timestamp boundary) HAMLET_REQUIRES(front_role_);
  /// Rolls the two-bucket sliding load window (per shard and per key).
  void RollStealWindow() HAMLET_REQUIRES(front_role_);

  /// `now_seconds` feeds the shard's adaptive batch controller; pass 0 when
  /// adaptive batching is off (the value is ignored).
  void StageEvent(const Event& event, double now_seconds)
      HAMLET_REQUIRES(front_role_);
  /// The single-shard tail of StageEvent: append to `shard`'s staging
  /// buffer and flush at the (adaptive) batch threshold.
  void StageTo(Shard& shard, const Event& event, double now_seconds)
      HAMLET_REQUIRES(front_role_);
  /// Hands the shard's staged events to its queue as one batch message.
  void FlushShard(Shard& shard) HAMLET_REQUIRES(front_role_);
  void FlushAllShards() HAMLET_REQUIRES(front_role_);
  /// Samples the sum of worker-published current footprints into
  /// mem_high_water_ (called every kMemSampleEveryFlushes staging flushes —
  /// cheap, amortized even at batch size 1).
  void SampleConcurrentMemory() HAMLET_REQUIRES(front_role_);
  /// Reads the ingest clock (RunConfig::clock_override or the monotonic
  /// clock) — only when adaptive batching needs it.
  double IngestNow() const;
  /// Fills the merged metrics' ingress fields (batch histogram, queue
  /// depth, per-shard events, rebalanced keys, concurrent peak).
  void FillIngressMetrics(RunMetrics& merged) const;
  /// Fans shard outboxes in to the user sink (caller thread only).
  void DrainEmissions() HAMLET_REQUIRES(front_role_);
  static void WorkerLoop(Shard* shard);

  /// THE front capability (see the threading contract above): held by the
  /// caller thread in single-producer mode, by the sequencer thread in
  /// multi-producer mode, and by Open until it returns. Public entry points
  /// acquire it with a ThreadRoleGuard (zero-cost — the capability is
  /// phantom); private helpers declare HAMLET_REQUIRES(front_role_).
  /// Mutable so const snapshots of role-guarded state could acquire it if
  /// ever needed (mirrors the usual mutable-mutex idiom).
  mutable ThreadRole front_role_;

  /// Set once by Open, read-only afterwards (any thread).
  const WorkloadPlan* plan_ = nullptr;
  RunConfig config_;
  EmissionSink* sink_ = nullptr;
  /// Front-mutated (Route/Reassign/DrainStale), but deliberately NOT
  /// role-guarded: MetricsSnapshot reads its counters from monitor threads
  /// through ShardRouter's internal atomics (rebalanced_keys/map_size).
  /// TSA cannot split one field by member, so the split lives in
  /// ShardRouter's own API contract.
  ShardRouter router_;
  /// Front-side query set + compiler (the single source of churn truth —
  /// workers only ever apply pre-validated ops).
  QueryLifecycle lifecycle_ HAMLET_GUARDED_BY(front_role_);
  /// The front's own compiled copy of the current epoch after the first
  /// churn op (before that, `plan_` is current). Kept alive because the
  /// front re-optimizer is bound to it; workers compile their own copies.
  QueryLifecycle::CompiledEpoch front_epoch_ HAMLET_GUARDED_BY(front_role_);
  /// Front-mutated, but NOT role-guarded for the same reason as router_:
  /// FillIngressMetrics reads the check/swap counters from monitor threads
  /// (they are atomics inside OnlineReoptimizer), and reopt_log() is a
  /// post-Close/test accessor. All *mutating* uses sit behind
  /// HAMLET_REQUIRES(front_role_) helpers.
  OnlineReoptimizer reoptimizer_;
  BurstStatsCollector collector_ HAMLET_GUARDED_BY(front_role_);
  bool reopt_enabled_ = false;  ///< set by Open, read-only afterwards
  /// Pane size of the CURRENT front epoch — the grid activation boundaries
  /// and the re-optimization cadence are computed on.
  Timestamp front_pane_size_ HAMLET_GUARDED_BY(front_role_) = 1;
  /// Largest WITHIN across every epoch ever compiled (old epochs' windows
  /// may still be draining) — the router-drain safety margin.
  Timestamp within_high_water_ HAMLET_GUARDED_BY(front_role_) = 0;
  Timestamp last_reopt_pane_ HAMLET_GUARDED_BY(front_role_) = 0;
  bool reopt_pane_seen_ HAMLET_GUARDED_BY(front_role_) = false;
  /// The vector itself is frozen by Open (workers receive raw Shard*);
  /// mutable cross-thread state lives INSIDE Shard behind its own locks.
  std::vector<std::unique_ptr<Shard>> shards_;
  OrderingGate gate_ HAMLET_GUARDED_BY(front_role_);
  /// Reused scratch for DrainEmissions, so steady-state fan-in allocates
  /// nothing.
  std::vector<Emission> drain_scratch_ HAMLET_GUARDED_BY(front_role_);
  /// Reentrancy guard: a sink that calls Push/AdvanceTo from OnEmission
  /// recurses into DrainEmissions while drain_scratch_ is mid-iteration;
  /// the nested drain must no-op (its emissions leave on the next drain).
  bool draining_ HAMLET_GUARDED_BY(front_role_) = false;
  /// Set by any worker publishing to its outbox, cleared by the front when
  /// it drains: the per-push "anything to drain?" check is one load
  /// regardless of shard count.
  std::atomic<bool> any_outbox_ready_{false};
  /// Atomic (release on Close, acquire in MetricsSnapshot) so a monitor
  /// thread polling MetricsSnapshot during Close sees final_metrics_ fully
  /// written, never a half-merged value.
  std::atomic<bool> closed_{false};
  /// Published through closed_'s release/acquire pair above — a
  /// write-once-then-read hand-off TSA has no vocabulary for, so it stays
  /// unannotated on purpose (the publication comment IS the contract).
  RunMetrics final_metrics_;
  /// Largest observed sum of simultaneous per-shard footprints (see
  /// SampleConcurrentMemory). Atomic so MetricsSnapshot may read it from a
  /// monitor thread while the front samples.
  std::atomic<int64_t> mem_high_water_{0};
  /// Front-thread throttle for SampleConcurrentMemory.
  int flushes_since_mem_sample_ HAMLET_GUARDED_BY(front_role_) = 0;

  // --- multi-producer ingest state ---
  /// Created once by the first AddProducer (under producer_mu_, before
  /// mp_mode_'s release store publishes it); producers and the sequencer
  /// then read the pointer lock-free. Init-once publication is another
  /// pattern TSA cannot express — the hub's own API is the thread-safe
  /// surface, so the pointer stays unannotated.
  std::unique_ptr<MpscIngestHub<Event>> hub_;
  /// Spawned with hub_ under producer_mu_; joined only by Close/~ after
  /// every producer handle closed. NOT guarded by producer_mu_: the
  /// sequencer itself takes producer_mu_ in Poison(), so a join under the
  /// lock could deadlock — the join-side exclusivity comes from the
  /// single-front Close contract instead.
  Thread sequencer_;
  std::atomic<bool> seq_stop_{false};
  /// Sticky: once true, session-level ingest entry points are rejected.
  std::atomic<bool> mp_mode_{false};
  std::atomic<int> producers_open_{0};
  /// Guards AddProducer's one-time switch and poison_status_.
  Mutex producer_mu_;
  Status poison_status_ HAMLET_GUARDED_BY(producer_mu_);
  std::atomic<bool> poisoned_{false};   ///< lock-free "is poisoned" hint
  /// Largest pane boundary the sequencer has broadcast the frontier at.
  Timestamp last_frontier_pane_ HAMLET_GUARDED_BY(front_role_) = -1;

  // --- work-stealing state (front-role state, except the atomic
  // counters) ---
  bool stealing_ = false;  ///< set by Open, read-only afterwards
  /// Two-bucket sliding window of per-shard staged-event counts (same
  /// half-window length as the router's rebalancer).
  std::vector<int64_t> steal_load_cur_ HAMLET_GUARDED_BY(front_role_);
  std::vector<int64_t> steal_load_prev_ HAMLET_GUARDED_BY(front_role_);
  struct KeyLoad {
    int64_t cur = 0;
    int64_t prev = 0;
  };
  /// Per-group-key staged-event counts over the same window; entries idle
  /// for two half-windows drop out, bounding the map by active keys.
  std::unordered_map<int64_t, KeyLoad> steal_key_load_
      HAMLET_GUARDED_BY(front_role_);
  int64_t steal_in_window_ HAMLET_GUARDED_BY(front_role_) = 0;
  /// Pane of the last staged event — steal triggers fire exactly when this
  /// advances (event-time pane crossings; never watermark-driven, which
  /// would be nondeterministic across producer counts).
  Timestamp last_staged_pane_ HAMLET_GUARDED_BY(front_role_) = 0;
  bool staged_any_ HAMLET_GUARDED_BY(front_role_) = false;
  /// One in-flight migration: events of the key with time < dup_until are
  /// staged to the victim too, so its fenced windows finish with full
  /// data. Entries retire at the first pane crossing past dup_until —
  /// BEFORE trigger evaluation, so a re-steal's boundary is always >= the
  /// previous fence's drop_after.
  struct ActiveMigration {
    size_t victim = 0;
    Timestamp dup_until = 0;
  };
  std::unordered_map<int64_t, ActiveMigration> active_migrations_
      HAMLET_GUARDED_BY(front_role_);
  /// Monotone fence-request sequence; each Shard acks the last one it
  /// served (steal_ack), which is what the front's synchronous wait spins
  /// on.
  uint64_t steal_seq_counter_ HAMLET_GUARDED_BY(front_role_) = 0;
  /// Executed migrations (RunMetrics::stolen_panes). Atomic so a monitor
  /// thread's MetricsSnapshot may read it while the front steals.
  std::atomic<int64_t> stolen_panes_{0};
  /// Events double-staged into a duplication window
  /// (RunMetrics::duplicated_events); same atomicity rationale.
  std::atomic<int64_t> dup_events_{0};
};

}  // namespace hamlet

#endif  // HAMLET_RUNTIME_SHARDED_SESSION_H_
