#include "src/runtime/sharded_session.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <string>
#include <thread>
#include <utility>

#include "src/common/rng.h"
#include "src/common/spsc_queue.h"

namespace hamlet {

namespace {

/// One ingress-queue entry: an event, a watermark, or the stop signal.
struct ShardMsg {
  enum class Kind : uint8_t { kEvent, kWatermark, kStop };
  Kind kind = Kind::kEvent;
  Event event;
  Timestamp watermark = 0;
};

/// Wraps the user's sink so all shards deliver under one mutex; see the
/// header's "Emissions" note.
class SerializedSink : public EmissionSink {
 public:
  SerializedSink(EmissionSink* target, std::mutex* mu)
      : target_(target), mu_(mu) {}

  void OnEmission(const Emission& emission) override {
    std::lock_guard<std::mutex> lock(*mu_);
    target_->OnEmission(emission);
  }

 private:
  EmissionSink* target_;
  std::mutex* mu_;
};

/// Deterministic group-key -> shard spreader (SplitMix64, the repo's
/// standard mixer). Adjacent group keys must not land on adjacent shards,
/// or workloads with few groups would pile onto a shard prefix.
uint64_t MixGroupKey(int64_t key) {
  return Rng(static_cast<uint64_t>(key)).NextU64();
}

/// How many processed messages between worker snapshot refreshes; idle
/// workers refresh immediately, so this only bounds snapshot staleness
/// under sustained load.
constexpr int kSnapshotEveryMsgs = 4096;
/// Consumer-side spin budget before parking on the condition variable.
constexpr int kIdleSpins = 64;
/// Parked workers re-poll at this interval even without a wake-up, which
/// bounds the cost of any missed notify to one period.
constexpr auto kParkInterval = std::chrono::microseconds(500);

}  // namespace

struct ShardedSession::Shard {
  explicit Shard(size_t queue_capacity) : queue(queue_capacity) {}

  SpscQueue<ShardMsg> queue;
  /// The unmodified single-threaded machinery; touched only by `worker`
  /// after the thread starts.
  std::unique_ptr<Session> session;
  std::unique_ptr<SerializedSink> sink;
  std::thread worker;

  /// Idle-parking handshake: the worker sets `parked` (then re-checks the
  /// queue) before a timed wait; the producer notifies when it observes it.
  std::mutex wake_mu;
  std::condition_variable wake_cv;
  std::atomic<bool> parked{false};

  /// Worker-maintained copy of session->MetricsSnapshot(), refreshed when
  /// idle and every kSnapshotEveryMsgs messages.
  mutable std::mutex snapshot_mu;
  RunMetrics snapshot;
  /// Written by the worker on stop, read by the front after join().
  RunMetrics final_metrics;

  /// Producer-side enqueue with backpressure and parked-consumer wake-up.
  void Send(ShardMsg msg) {
    if (!queue.TryPush(std::move(msg))) {
      // Bounded-queue backpressure: the shard is saturated; yield the
      // producer until the worker frees a slot.
      do {
        std::this_thread::yield();
      } while (!queue.TryPush(std::move(msg)));
    }
    if (parked.load(std::memory_order_seq_cst)) {
      // Taking wake_mu orders this notify against the worker's parked-store
      // / queue-recheck, so the worker sees either the message or the wake.
      std::lock_guard<std::mutex> lock(wake_mu);
      wake_cv.notify_one();
    }
  }
};

Result<std::unique_ptr<ShardedSession>> ShardedSession::Open(
    const WorkloadPlan& plan, const RunConfig& config, EmissionSink* sink) {
  Status valid = ValidateRunConfig(config);
  if (!valid.ok()) return valid;
  // A consistent event->shard route needs one partition attribute: with
  // mixed group-by attributes, the same event would belong to different
  // groups (hence shards) per component.
  AttrId partition_attr = Schema::kInvalidId;
  bool have_attr = false;
  for (const ExecQuery& eq : plan.exec_queries) {
    if (!have_attr) {
      partition_attr = eq.group_by;
      have_attr = true;
    } else if (eq.group_by != partition_attr && config.num_shards > 1) {
      return Status::Unsupported(
          "ShardedSession with num_shards > 1 requires all queries to share "
          "one group-by attribute; plan mixes attr " +
          std::to_string(partition_attr) + " and attr " +
          std::to_string(eq.group_by));
    }
  }
  std::unique_ptr<ShardedSession> s(new ShardedSession());
  s->plan_ = &plan;
  s->config_ = config;
  s->partition_attr_ = partition_attr;
  s->shards_.reserve(static_cast<size_t>(config.num_shards));
  for (int i = 0; i < config.num_shards; ++i) {
    auto shard = std::make_unique<Shard>(
        static_cast<size_t>(config.shard_queue_capacity));
    EmissionSink* shard_sink = nullptr;
    if (sink != nullptr) {
      shard->sink = std::make_unique<SerializedSink>(sink, &s->emission_mu_);
      shard_sink = shard->sink.get();
    }
    Result<std::unique_ptr<Session>> session =
        Session::Open(plan, config, shard_sink);
    if (!session.ok()) return session.status();
    shard->session = std::move(session).value();
    s->shards_.push_back(std::move(shard));
  }
  for (auto& shard : s->shards_) {
    shard->worker = std::thread(&ShardedSession::WorkerLoop, shard.get());
  }
  return s;
}

ShardedSession::~ShardedSession() {
  if (!closed_) Close();
}

void ShardedSession::WorkerLoop(Shard* shard) {
  auto refresh_snapshot = [shard] {
    RunMetrics m = shard->session->MetricsSnapshot();
    std::lock_guard<std::mutex> lock(shard->snapshot_mu);
    shard->snapshot = m;
  };
  int since_snapshot = 0;
  for (;;) {
    ShardMsg msg;
    if (!shard->queue.TryPop(&msg)) {
      // Refresh once when the queue drains, not on every idle poll — a
      // quiescent shard must not recompute identical metrics 2000x/s.
      if (since_snapshot > 0) {
        refresh_snapshot();
        since_snapshot = 0;
      }
      bool got = false;
      for (int i = 0; i < kIdleSpins && !got; ++i) {
        std::this_thread::yield();
        got = shard->queue.TryPop(&msg);
      }
      if (!got) {
        std::unique_lock<std::mutex> lock(shard->wake_mu);
        shard->parked.store(true, std::memory_order_seq_cst);
        // Re-check after publishing `parked`: a push that raced the store
        // either sees the flag (and notifies) or lands in this poll.
        if (shard->queue.Empty()) shard->wake_cv.wait_for(lock, kParkInterval);
        shard->parked.store(false, std::memory_order_relaxed);
        continue;
      }
    }
    switch (msg.kind) {
      case ShardMsg::Kind::kEvent: {
        // The front already validated ordering, and a subsequence of a
        // strictly increasing stream is strictly increasing.
        Status st = shard->session->Push(msg.event);
        HAMLET_CHECK(st.ok());
        break;
      }
      case ShardMsg::Kind::kWatermark: {
        Status st = shard->session->AdvanceTo(msg.watermark);
        HAMLET_CHECK(st.ok());
        break;
      }
      case ShardMsg::Kind::kStop: {
        Result<RunMetrics> final = shard->session->Close();
        HAMLET_CHECK(final.ok());
        shard->final_metrics = final.value();
        std::lock_guard<std::mutex> lock(shard->snapshot_mu);
        shard->snapshot = shard->final_metrics;
        return;
      }
    }
    if (++since_snapshot >= kSnapshotEveryMsgs) {
      refresh_snapshot();
      since_snapshot = 0;
    }
  }
}

size_t ShardedSession::ShardOf(const Event& event) const {
  if (shards_.size() == 1) return 0;
  int64_t key = 0;
  if (partition_attr_ != Schema::kInvalidId &&
      partition_attr_ < static_cast<AttrId>(event.num_attrs)) {
    key = static_cast<int64_t>(std::llround(event.attr(partition_attr_)));
  }
  return static_cast<size_t>(MixGroupKey(key) % shards_.size());
}

void ShardedSession::Enqueue(const Event& event) {
  ShardMsg msg;
  msg.kind = ShardMsg::Kind::kEvent;
  msg.event = event;
  shards_[ShardOf(event)]->Send(std::move(msg));
}

Status ShardedSession::Push(const Event& event) {
  if (closed_) {
    return Status::FailedPrecondition("Push on a closed session");
  }
  Status ordered = gate_.CheckEvent(event.time);
  if (!ordered.ok()) return ordered;
  gate_.CommitEvent(event.time);
  Enqueue(event);
  return Status::Ok();
}

Status ShardedSession::PushBatch(std::span<const Event> events) {
  if (closed_) {
    return Status::FailedPrecondition("PushBatch on a closed session");
  }
  for (const Event& e : events) {
    Status ordered = gate_.CheckEvent(e.time);
    if (!ordered.ok()) return ordered;
    gate_.CommitEvent(e.time);
    Enqueue(e);
  }
  return Status::Ok();
}

Status ShardedSession::AdvanceTo(Timestamp watermark) {
  if (closed_) {
    return Status::FailedPrecondition("AdvanceTo on a closed session");
  }
  Status ordered = gate_.CheckWatermark(watermark);
  if (!ordered.ok()) return ordered;
  gate_.CommitWatermark(watermark);
  for (auto& shard : shards_) {
    ShardMsg msg;
    msg.kind = ShardMsg::Kind::kWatermark;
    msg.watermark = watermark;
    shard->Send(std::move(msg));
  }
  return Status::Ok();
}

Result<RunMetrics> ShardedSession::Close() {
  if (closed_) {
    return Status::FailedPrecondition(
        "Close on a closed session (first Close already returned the final "
        "metrics; use MetricsSnapshot to re-read them)");
  }
  for (auto& shard : shards_) {
    ShardMsg msg;
    msg.kind = ShardMsg::Kind::kStop;
    shard->Send(std::move(msg));
  }
  RunMetrics merged;
  for (auto& shard : shards_) {
    shard->worker.join();
    MergeRunMetrics(merged, shard->final_metrics);
  }
  final_metrics_ = merged;
  closed_.store(true, std::memory_order_release);
  return merged;
}

RunMetrics ShardedSession::MetricsSnapshot() const {
  if (closed_.load(std::memory_order_acquire)) return final_metrics_;
  RunMetrics merged;
  for (const auto& shard : shards_) {
    RunMetrics m;
    {
      std::lock_guard<std::mutex> lock(shard->snapshot_mu);
      m = shard->snapshot;
    }
    MergeRunMetrics(merged, m);
  }
  return merged;
}

}  // namespace hamlet
