#include "src/runtime/sharded_session.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <limits>
#include <string>
#include <thread>  // std::this_thread only; threads spawn via common/thread.h
#include <utility>

#include "src/common/mutex.h"
#include "src/common/spsc_queue.h"
#include "src/common/thread.h"
#include "src/stream/adaptive_batcher.h"

namespace hamlet {

namespace {

/// One ingress-queue entry: a batch of events, a watermark, or the stop
/// signal. Batch-granular hand-off is the point — one queue slot (and one
/// wake-up check) per RunConfig::shard_batch_size events instead of per
/// event.
struct ShardMsg {
  enum class Kind : uint8_t {
    kBatch,
    kWatermark,
    kStop,
    kAddQuery,
    kRemoveQuery,
    kSwapPlan,
    kStealFence,
    kStealAdopt
  };
  Kind kind = Kind::kBatch;
  EventVector batch;
  Timestamp watermark = 0;
  /// Churn payload (kAddQuery/kRemoveQuery/kSwapPlan). The activation
  /// boundary is computed ONCE by the front — whose gate has seen every
  /// event — so all shards swap plan epochs at the identical pane boundary
  /// regardless of what subset of the stream each one saw.
  Timestamp activate_at = -1;
  Query query;                             ///< kAddQuery
  std::string query_name;                  ///< kRemoveQuery
  std::vector<SharingOverride> overrides;  ///< kSwapPlan
  /// Steal payload (kStealFence/kStealAdopt). `steal_boundary` is the pane
  /// boundary B: the victim fences to windows starting before it, the
  /// thief adopts windows starting at or after it.
  int64_t steal_key = 0;
  Timestamp steal_boundary = 0;
  Timestamp steal_drop_after = 0;          ///< kStealFence: B + max WITHIN
  uint64_t steal_seq = 0;                  ///< kStealFence: ack token
  Session::GroupMigration migration;       ///< kStealAdopt: fence's payload
};

/// Worker-local emission buffer. Only the shard's worker thread touches it
/// (via its Session); the worker publishes the contents to the shard's
/// outbox at message boundaries — see Shard::PublishEmissions.
class BufferingSink : public EmissionSink {
 public:
  void OnEmission(const Emission& emission) override {
    buffered_.push_back(emission);
  }

  std::vector<Emission>& buffered() { return buffered_; }

 private:
  std::vector<Emission> buffered_;
};

/// How many processed events between worker snapshot refreshes; idle
/// workers refresh immediately, so this only bounds snapshot staleness
/// under sustained load.
constexpr int kSnapshotEveryEvents = 4096;
/// Consumer-side spin budget before parking on the condition variable.
constexpr int kIdleSpins = 64;
/// Parked workers re-poll at this interval even without a wake-up, which
/// bounds the cost of any missed notify to one period.
constexpr auto kParkInterval = std::chrono::microseconds(500);

/// Batch-size histogram buckets: bucket i counts flushed batches of size in
/// [2^i, 2^(i+1)); the last bucket absorbs everything larger.
constexpr size_t kBatchHistBuckets = 16;

/// Concurrent-footprint sampling cadence, in staging flushes (see
/// FlushShard).
constexpr int kMemSampleEveryFlushes = 16;

/// Work stealing only triggers when the max-loaded shard exceeds
/// ratio * min + this floor: tiny absolute imbalances (a few events) never
/// justify a migration's fence/adopt round-trip.
constexpr int64_t kStealLoadFloor = 64;
/// Migrations per pane boundary are capped; persistent imbalance re-fires
/// at the next crossing.
constexpr int kMaxStealsPerBoundary = 8;
/// Sequencer idle backoff: after this many empty merge rounds, sleep
/// instead of yielding (bounds wake-up latency to ~the sleep length).
constexpr int kSequencerIdleSpins = 64;
constexpr auto kSequencerIdleSleep = std::chrono::microseconds(50);

size_t BatchHistBucket(size_t batch_size) {
  const size_t b = static_cast<size_t>(std::bit_width(batch_size)) - 1;
  return b < kBatchHistBuckets ? b : kBatchHistBuckets - 1;
}

}  // namespace

struct ShardedSession::Shard {
  Shard(size_t queue_capacity, int max_batch)
      : queue(queue_capacity), recycle(queue_capacity), batcher(max_batch) {}

  SpscQueue<ShardMsg> queue;
  /// Worker -> producer return path for consumed batch buffers: the
  /// producer reuses their capacity for the next staging flush, so
  /// steady-state ingest allocates nothing. Best-effort — a full recycle
  /// ring just lets the buffer deallocate.
  SpscQueue<EventVector> recycle;
  /// Producer-side staging buffer (front thread only): events accumulate
  /// here until the batch threshold or a barrier flushes them as one
  /// message.
  EventVector staging;
  /// Front-thread burst/lull controller: decides the staging threshold when
  /// RunConfig::adaptive_batching is on (capped at shard_batch_size).
  AdaptiveBatchController batcher;
  /// Histogram of this shard's flushed batch sizes (front thread writes at
  /// flush, a monitor thread may read through MetricsSnapshot — hence
  /// relaxed atomics).
  std::array<std::atomic<int64_t>, kBatchHistBuckets> batch_hist{};
  /// Deepest the ingress queue has been, in messages (producer-observed
  /// after each Send).
  std::atomic<int64_t> max_queue_depth{0};
  /// Worker-published current engine footprint, refreshed with the metrics
  /// snapshot; the front sums these to sample the concurrent footprint.
  std::atomic<int64_t> current_memory{0};
  /// The unmodified single-threaded machinery; touched only by `worker`
  /// after the thread starts (a thread-start/join hand-off TSA cannot
  /// express; the worker is the only caller by construction).
  std::unique_ptr<Session> session;
  std::unique_ptr<BufferingSink> sink;
  Thread worker;

  /// Idle-parking handshake: the worker sets `parked` (then re-checks the
  /// queue) before a timed wait; the producer notifies when it observes it.
  /// wake_mu guards no data — it exists to order the notify against the
  /// parked-store / queue-recheck (see Send and WorkerLoop).
  Mutex wake_mu;
  CondVar wake_cv;
  std::atomic<bool> parked{false};

  /// Worker-maintained copy of session->MetricsSnapshot(), refreshed when
  /// idle, every kSnapshotEveryEvents events, and at every watermark.
  mutable Mutex snapshot_mu;
  RunMetrics snapshot HAMLET_GUARDED_BY(snapshot_mu);
  /// Last watermark the worker has fully applied (after refreshing the
  /// snapshot) — the re-optimizing front's checkpoint acknowledgement.
  std::atomic<Timestamp> watermark_applied{-1};
  /// Steal-fence reply: the worker stores the hand-off payload under
  /// steal_mu, then acks the fence's sequence number; the front spins on
  /// steal_ack, then takes the payload. One fence is in flight at a time
  /// (the front is synchronous), so one reply slot suffices.
  Mutex steal_mu;
  Session::GroupMigration steal_payload HAMLET_GUARDED_BY(steal_mu);
  std::atomic<uint64_t> steal_ack{0};
  /// Written by the worker on stop, read by the front after Join() — the
  /// join IS the synchronization, which TSA cannot model; unannotated.
  RunMetrics final_metrics;

  /// Emission fan-in hand-off: the worker appends under outbox_mu, the
  /// front swaps the vector out under the same mutex. Contention is
  /// worker-vs-front within one shard only — shards never share a lock —
  /// and both sides take it once per *message*, not per emission.
  Mutex outbox_mu;
  std::vector<Emission> outbox HAMLET_GUARDED_BY(outbox_mu);
  /// Cheap "anything to drain?" hint so the front skips the lock when the
  /// outbox is empty (the common case on the per-push drain).
  std::atomic<bool> outbox_ready{false};
  /// Session-wide drain hint (ShardedSession::any_outbox_ready_): set after
  /// outbox_ready so the front's single load covers all shards.
  std::atomic<bool>* any_outbox_ready = nullptr;

  /// Producer-side enqueue with backpressure and parked-consumer wake-up.
  void Send(ShardMsg msg) {
    if (!queue.TryPush(std::move(msg))) {
      // Bounded-queue backpressure: the shard is saturated; yield the
      // producer until the worker frees a slot.
      max_queue_depth.store(static_cast<int64_t>(queue.capacity()),
                            std::memory_order_relaxed);
      do {
        std::this_thread::yield();
      } while (!queue.TryPush(std::move(msg)));
    }
    const int64_t depth = static_cast<int64_t>(queue.ApproxSize());
    if (depth > max_queue_depth.load(std::memory_order_relaxed)) {
      max_queue_depth.store(depth, std::memory_order_relaxed);
    }
    if (parked.load(std::memory_order_seq_cst)) {
      // Taking wake_mu orders this notify against the worker's parked-store
      // / queue-recheck, so the worker sees either the message or the wake.
      MutexLock lock(wake_mu);
      wake_cv.NotifyOne();
    }
  }

  /// Worker side: moves the locally buffered emissions into the outbox.
  void PublishEmissions() {
    if (sink == nullptr || sink->buffered().empty()) return;
    std::vector<Emission>& local = sink->buffered();
    MutexLock lock(outbox_mu);
    if (outbox.empty()) {
      outbox.swap(local);
    } else {
      outbox.insert(outbox.end(), std::make_move_iterator(local.begin()),
                    std::make_move_iterator(local.end()));
      local.clear();
    }
    outbox_ready.store(true, std::memory_order_release);
    any_outbox_ready->store(true, std::memory_order_release);
  }
};

Result<ShardRouter> ShardedSession::RouterFor(const WorkloadPlan& plan,
                                              int num_shards) {
  if (num_shards < 1 || num_shards > kMaxShards) {
    return Status::InvalidArgument(
        "num_shards must be in [1, " + std::to_string(kMaxShards) +
        "], got " + std::to_string(num_shards));
  }
  // A consistent event->shard route needs one partition attribute: with
  // mixed group-by attributes, the same event would belong to different
  // groups (hence shards) per component.
  AttrId partition_attr = Schema::kInvalidId;
  bool have_attr = false;
  for (const ExecQuery& eq : plan.exec_queries) {
    if (!have_attr) {
      partition_attr = eq.group_by;
      have_attr = true;
    } else if (eq.group_by != partition_attr && num_shards > 1) {
      return Status::Unsupported(
          "ShardedSession with num_shards > 1 requires all queries to share "
          "one group-by attribute; plan mixes attr " +
          std::to_string(partition_attr) + " and attr " +
          std::to_string(eq.group_by));
    }
  }
  return ShardRouter(partition_attr, num_shards);
}

Result<std::unique_ptr<ShardedSession>> ShardedSession::Open(
    const WorkloadPlan& plan, const RunConfig& config, EmissionSink* sink) {
  Status valid = ValidateRunConfig(config);
  if (!valid.ok()) return valid;
  Result<ShardRouter> router = RouterFor(plan, config.num_shards);
  if (!router.ok()) return router.status();
  std::unique_ptr<ShardedSession> s(new ShardedSession());
  // The opening thread is the front until Open returns: workers spawned
  // below only ever see their own Shard*, and no producer/sequencer can
  // exist yet, so holding the front role here is sound.
  ThreadRoleGuard role(s->front_role_);
  s->plan_ = &plan;
  s->config_ = config;
  s->sink_ = sink;
  s->router_ = router.value();
  // Skew-aware routing: sticky per-key assignments shared with every copy
  // of this router (incl. PartitionedBatchCursor built from router()).
  s->router_.EnableRebalancing(config.shard_rebalance_threshold);
  s->stealing_ = config.work_stealing && config.num_shards > 1;
  if (s->stealing_) {
    // The steal protocol moves ESTABLISHED keys, so the router must track
    // assignments even when skew-aware first-sight placement is off.
    s->router_.EnableReassignment();
    s->steal_load_cur_.assign(static_cast<size_t>(config.num_shards), 0);
    s->steal_load_prev_.assign(static_cast<size_t>(config.num_shards), 0);
  }
  s->lifecycle_.Init(*plan.workload);
  s->front_pane_size_ = plan.pane_size;
  for (const ExecQuery& eq : plan.exec_queries) {
    s->within_high_water_ = std::max(s->within_high_water_, eq.window.within);
  }
  s->reopt_enabled_ = config.reoptimize_every_panes > 0;
  if (s->reopt_enabled_) {
    s->collector_.Reset(plan.workload->schema()->num_types());
    OnlineReoptimizerOptions opts;
    opts.threshold = config.reoptimize_threshold;
    opts.variant = config.cost_variant;
    s->reoptimizer_.Bind(plan, plan.share_groups, {}, opts);
  }
  // Only the front re-optimizes: shards applying independent swaps from
  // their partial statistics would diverge the plan across shards. Workers
  // receive the front's decisions as kSwapPlan broadcasts instead.
  RunConfig shard_config = config;
  shard_config.reoptimize_every_panes = 0;
  s->shards_.reserve(static_cast<size_t>(config.num_shards));
  for (int i = 0; i < config.num_shards; ++i) {
    auto shard =
        std::make_unique<Shard>(static_cast<size_t>(config.shard_queue_capacity),
                                config.shard_batch_size);
    shard->staging.reserve(static_cast<size_t>(config.shard_batch_size));
    shard->any_outbox_ready = &s->any_outbox_ready_;
    EmissionSink* shard_sink = nullptr;
    if (sink != nullptr) {
      shard->sink = std::make_unique<BufferingSink>();
      shard_sink = shard->sink.get();
    }
    Result<std::unique_ptr<Session>> session =
        Session::Open(plan, shard_config, shard_sink);
    if (!session.ok()) return session.status();
    shard->session = std::move(session).value();
    s->shards_.push_back(std::move(shard));
  }
  for (auto& shard : s->shards_) {
    shard->worker = Thread(&ShardedSession::WorkerLoop, shard.get());
  }
  return s;
}

ShardedSession::~ShardedSession() {
  if (closed_.load(std::memory_order_acquire)) return;
  // A destructor cannot fail, so tear down even if producer handles are
  // still open (using them afterwards is the caller's bug — Close() is the
  // API that enforces handle closure). The sequencer drains what was
  // already pushed, then the normal close path runs.
  StopSequencer();
  mp_mode_.store(false, std::memory_order_relaxed);
  (void)Close();  // metrics discarded by documented contract
}

void ShardedSession::WorkerLoop(Shard* shard) {
  auto refresh_snapshot = [shard] {
    RunMetrics m = shard->session->MetricsSnapshot();
    // Published for the front's concurrent-footprint sampling, outside the
    // snapshot mutex (the front reads it on the flush path and must not
    // contend with a monitor thread holding snapshot_mu).
    shard->current_memory.store(m.current_memory_bytes,
                                std::memory_order_relaxed);
    MutexLock lock(shard->snapshot_mu);
    shard->snapshot = m;
  };
  int since_snapshot = 0;
  for (;;) {
    ShardMsg msg;
    if (!shard->queue.TryPop(&msg)) {
      // Refresh once when the queue drains, not on every idle poll — a
      // quiescent shard must not recompute identical metrics 2000x/s.
      if (since_snapshot > 0) {
        refresh_snapshot();
        since_snapshot = 0;
      }
      bool got = false;
      for (int i = 0; i < kIdleSpins && !got; ++i) {
        std::this_thread::yield();
        got = shard->queue.TryPop(&msg);
      }
      if (!got) {
        MutexLock lock(shard->wake_mu);
        shard->parked.store(true, std::memory_order_seq_cst);
        // Re-check after publishing `parked`: a push that raced the store
        // either sees the flag (and notifies) or lands in this poll.
        if (shard->queue.Empty()) shard->wake_cv.WaitFor(lock, kParkInterval);
        shard->parked.store(false, std::memory_order_relaxed);
        continue;
      }
    }
    switch (msg.kind) {
      case ShardMsg::Kind::kBatch: {
        // The front already validated ordering, and a subsequence of a
        // strictly increasing stream is strictly increasing.
        Status st = shard->session->PushBatch(msg.batch);
        HAMLET_CHECK(st.ok());
        since_snapshot += static_cast<int>(msg.batch.size());
        msg.batch.clear();
        // Return the buffer's capacity to the producer (best-effort).
        shard->recycle.TryPush(std::move(msg.batch));
        break;
      }
      case ShardMsg::Kind::kWatermark: {
        Status st = shard->session->AdvanceTo(msg.watermark);
        HAMLET_CHECK(st.ok());
        // A watermark is a checkpoint: publish fresh metrics BEFORE
        // acknowledging it, so a front that waits on the acknowledgement
        // (online re-optimization) reads statistics covering every event
        // logically before the watermark.
        refresh_snapshot();
        since_snapshot = 0;
        shard->watermark_applied.store(msg.watermark,
                                       std::memory_order_release);
        break;
      }
      case ShardMsg::Kind::kAddQuery: {
        // The front validated and compiled this exact op against the same
        // schema before broadcasting, so per-shard failure is impossible
        // short of a bug — and MUST be fatal: a shard skipping a churn op
        // would answer a different query set than its siblings. The
        // explicit activation boundary also bypasses the per-session epoch
        // cap (the front throttles churn; shards must not diverge).
        Result<Timestamp> r =
            shard->session->AddQuery(msg.query, msg.activate_at);
        HAMLET_CHECK(r.ok());
        ++since_snapshot;
        break;
      }
      case ShardMsg::Kind::kRemoveQuery: {
        Result<Timestamp> r =
            shard->session->RemoveQuery(msg.query_name, msg.activate_at);
        HAMLET_CHECK(r.ok());
        ++since_snapshot;
        break;
      }
      case ShardMsg::Kind::kSwapPlan: {
        Result<Timestamp> r = shard->session->ApplySharingOverrides(
            msg.overrides, msg.activate_at);
        HAMLET_CHECK(r.ok());
        ++since_snapshot;
        break;
      }
      case ShardMsg::Kind::kStealFence: {
        // Victim side of a migration: bound the key's runners, cancel its
        // unfed windows at/after the boundary, and hand the runner layout
        // + HAMLET lane statistics back to the front for the thief.
        Session::GroupMigration m = shard->session->FenceGroup(
            msg.steal_key, msg.steal_boundary, msg.steal_drop_after);
        {
          MutexLock lock(shard->steal_mu);
          shard->steal_payload = std::move(m);
        }
        shard->steal_ack.store(msg.steal_seq, std::memory_order_release);
        ++since_snapshot;
        break;
      }
      case ShardMsg::Kind::kStealAdopt: {
        shard->session->AdoptGroup(msg.steal_key, msg.steal_boundary,
                                   msg.migration);
        ++since_snapshot;
        break;
      }
      case ShardMsg::Kind::kStop: {
        Result<RunMetrics> final = shard->session->Close();
        HAMLET_CHECK(final.ok());
        shard->PublishEmissions();
        shard->final_metrics = final.value();
        shard->current_memory.store(final.value().current_memory_bytes,
                                    std::memory_order_relaxed);
        MutexLock lock(shard->snapshot_mu);
        shard->snapshot = shard->final_metrics;
        return;
      }
    }
    shard->PublishEmissions();
    if (since_snapshot >= kSnapshotEveryEvents) {
      refresh_snapshot();
      since_snapshot = 0;
    }
  }
}

double ShardedSession::IngestNow() const {
  return ClockNow(config_.clock_override);
}

void ShardedSession::StageEvent(const Event& event, double now_seconds) {
  if (!stealing_) {
    StageTo(*shards_[router_.Route(event)], event, now_seconds);
    return;
  }
  // Work-stealing staging path. Order matters for determinism: pane
  // crossings retire finished migrations and evaluate steal triggers
  // BEFORE this event is routed, so the triggering event itself already
  // lands on the thief — every decision is a pure function of the event
  // stream prefix.
  const Timestamp pane = front_pane_size_ > 0 ? front_pane_size_ : 1;
  const Timestamp event_pane = (event.time / pane) * pane;
  if (staged_any_ && event_pane > last_staged_pane_) {
    if (!active_migrations_.empty()) {
      std::erase_if(active_migrations_, [&](const auto& kv) {
        return kv.second.dup_until <= event_pane;
      });
    }
    MaybeSteal(event_pane);
  }
  last_staged_pane_ = event_pane;
  staged_any_ = true;
  const int64_t key = router_.GroupKeyOf(event);
  const size_t target = router_.Route(event);
  StageTo(*shards_[target], event, now_seconds);
  if (!active_migrations_.empty()) {
    // Migrating key inside its duplication window: the victim's fenced
    // windows (start < B, end > B) still need this event.
    auto it = active_migrations_.find(key);
    if (it != active_migrations_.end() &&
        event.time < it->second.dup_until) {
      StageTo(*shards_[it->second.victim], event, now_seconds);
      dup_events_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  ++steal_load_cur_[target];
  ++steal_key_load_[key].cur;
  if (++steal_in_window_ >= ShardRouter::kRebalanceHalfWindow) {
    RollStealWindow();
  }
}

void ShardedSession::RollStealWindow() {
  steal_in_window_ = 0;
  std::swap(steal_load_prev_, steal_load_cur_);
  std::fill(steal_load_cur_.begin(), steal_load_cur_.end(), 0);
  for (auto it = steal_key_load_.begin(); it != steal_key_load_.end();) {
    if (it->second.cur == 0 && it->second.prev == 0) {
      it = steal_key_load_.erase(it);
      continue;
    }
    it->second.prev = it->second.cur;
    it->second.cur = 0;
    ++it;
  }
}

void ShardedSession::MaybeSteal(Timestamp boundary) {
  for (int round = 0; round < kMaxStealsPerBoundary; ++round) {
    size_t victim = 0;
    size_t thief = 0;
    int64_t max_load = -1;
    int64_t min_load = std::numeric_limits<int64_t>::max();
    for (size_t s = 0; s < shards_.size(); ++s) {
      const int64_t load = steal_load_prev_[s] + steal_load_cur_[s];
      if (load > max_load) {
        max_load = load;
        victim = s;
      }
      if (load < min_load) {
        min_load = load;
        thief = s;
      }
    }
    if (victim == thief ||
        static_cast<double>(max_load) <=
            config_.steal_imbalance_ratio * static_cast<double>(min_load) +
                static_cast<double>(kStealLoadFloor)) {
      return;
    }
    // Candidate: the victim's heaviest key that actually improves the
    // balance (moving it must leave the thief below the victim's old
    // load, or keys ping-pong). Scanned with an explicit best-key rule —
    // heaviest, then smallest key — because unordered_map iteration order
    // must not leak into the (deterministic) decision.
    int64_t best_key = 0;
    int64_t best_load = -1;
    bool found = false;
    for (const auto& [key, kl] : steal_key_load_) {
      const int64_t c = kl.cur + kl.prev;
      if (c <= 0 || min_load + c >= max_load) continue;
      if (router_.AssignedShardOfKey(key) != victim) continue;
      // A key still inside a duplication window cannot re-steal: the next
      // fence's boundary must be >= the previous fence's drop_after.
      if (active_migrations_.count(key) != 0) continue;
      if (c > best_load || (c == best_load && key < best_key)) {
        best_key = key;
        best_load = c;
        found = true;
      }
    }
    if (!found) return;
    ExecuteSteal(best_key, victim, thief, boundary);
  }
}

void ShardedSession::ExecuteSteal(int64_t key, size_t victim, size_t thief,
                                  Timestamp boundary) {
  Shard& v = *shards_[victim];
  Shard& t = *shards_[thief];
  const Timestamp drop_after = boundary + within_high_water_;
  // From here on the key's events route to the thief; the duplication
  // window below keeps the victim fed until its fenced windows all close.
  router_.Reassign(key, thief, boundary);
  // The fence/adopt pair is a barrier in stream order on both shards:
  // staged events logically precede it.
  FlushShard(v);
  FlushShard(t);
  const uint64_t seq = ++steal_seq_counter_;
  ShardMsg fence;
  fence.kind = ShardMsg::Kind::kStealFence;
  fence.steal_key = key;
  fence.steal_boundary = boundary;
  fence.steal_drop_after = drop_after;
  fence.steal_seq = seq;
  v.Send(std::move(fence));
  // Synchronous wait for the victim's hand-off payload (it has to work
  // through its queued batches first). Emissions keep draining meanwhile
  // so no worker outbox backs up.
  while (v.steal_ack.load(std::memory_order_acquire) < seq) {
    DrainEmissions();
    std::this_thread::yield();
  }
  ShardMsg adopt;
  adopt.kind = ShardMsg::Kind::kStealAdopt;
  adopt.steal_key = key;
  adopt.steal_boundary = boundary;
  {
    MutexLock lock(v.steal_mu);
    adopt.migration = std::move(v.steal_payload);
    v.steal_payload = Session::GroupMigration{};
  }
  t.Send(std::move(adopt));
  active_migrations_[key] = ActiveMigration{victim, drop_after};
  // The key's window counts move with it so the next trigger evaluates
  // the post-steal balance (clamped: a key that migrated mid-window may
  // have contributed to more than one shard's buckets).
  KeyLoad& kl = steal_key_load_[key];
  const int64_t move_cur = std::min(kl.cur, steal_load_cur_[victim]);
  const int64_t move_prev = std::min(kl.prev, steal_load_prev_[victim]);
  steal_load_cur_[victim] -= move_cur;
  steal_load_cur_[thief] += move_cur;
  steal_load_prev_[victim] -= move_prev;
  steal_load_prev_[thief] += move_prev;
  stolen_panes_.fetch_add(1, std::memory_order_relaxed);
}

void ShardedSession::StageTo(Shard& shard, const Event& event,
                             double now_seconds) {
  shard.staging.push_back(event);
  size_t threshold = static_cast<size_t>(config_.shard_batch_size);
  if (config_.adaptive_batching) {
    // One burst/lull decision per staged event: deep/busy queue grows the
    // threshold (amortize), opening gaps or a drained queue shrink it
    // (deliver promptly). Capped at shard_batch_size either way.
    threshold = static_cast<size_t>(shard.batcher.Observe(
        now_seconds, shard.queue.ApproxSize(), shard.queue.capacity()));
  }
  if (shard.staging.size() >= threshold) FlushShard(shard);
}

void ShardedSession::FlushShard(Shard& shard) {
  if (shard.staging.empty()) return;
  const size_t bucket = BatchHistBucket(shard.staging.size());
  shard.batch_hist[bucket].fetch_add(1, std::memory_order_relaxed);
  ShardMsg msg;
  msg.kind = ShardMsg::Kind::kBatch;
  // Reuse a worker-returned buffer's capacity when one is available.
  if (shard.recycle.TryPop(&msg.batch)) msg.batch.clear();
  msg.batch.swap(shard.staging);
  shard.Send(std::move(msg));
  // Sample the concurrent footprint at flush boundaries, throttled: with
  // batch size 1 (hand-off baseline, or adaptive in lull posture) a flush
  // happens per event, and an O(num_shards) scan there would tax exactly
  // the per-event path the batching modes are measured against. The peak
  // is documented as sampled, so coarser sampling loses nothing.
  if (++flushes_since_mem_sample_ >= kMemSampleEveryFlushes) {
    flushes_since_mem_sample_ = 0;
    SampleConcurrentMemory();
  }
}

void ShardedSession::SampleConcurrentMemory() {
  int64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->current_memory.load(std::memory_order_relaxed);
  }
  if (total > mem_high_water_.load(std::memory_order_relaxed)) {
    mem_high_water_.store(total, std::memory_order_relaxed);
  }
}

void ShardedSession::FlushAllShards() {
  for (auto& shard : shards_) FlushShard(*shard);
}

void ShardedSession::DrainEmissions() {
  if (sink_ == nullptr) return;
  // One load covers all shards in the common nothing-to-drain case, so a
  // per-event Push ingest does not pay num_shards flag reads per event.
  // Clearing before the scan cannot lose a publication: any per-shard flag
  // set before the clear is still observed by the scan below, and one set
  // after it re-raises this hint for the next drain (Close drains
  // unconditionally).
  if (!any_outbox_ready_.load(std::memory_order_acquire)) return;
  // Sinks run on this thread, so a feedback-style sink may legally call
  // Push/AdvanceTo from OnEmission — which recurses into this function
  // while drain_scratch_ is mid-iteration. The guard turns the nested
  // drain into a no-op; whatever it would have delivered goes out with the
  // enclosing drain's next shard or the next call.
  if (draining_) return;
  draining_ = true;
  any_outbox_ready_.store(false, std::memory_order_relaxed);
  for (auto& shard : shards_) {
    if (!shard->outbox_ready.load(std::memory_order_acquire)) continue;
    drain_scratch_.clear();
    {
      MutexLock lock(shard->outbox_mu);
      drain_scratch_.swap(shard->outbox);
      shard->outbox_ready.store(false, std::memory_order_relaxed);
    }
    // Deliver outside the lock: a slow sink must not stall the worker.
    for (const Emission& emission : drain_scratch_) {
      sink_->OnEmission(emission);
    }
  }
  draining_ = false;
}

Status ShardedSession::Push(const Event& event) {
  if (closed_) {
    return Status::FailedPrecondition("Push on a closed session");
  }
  if (mp_mode_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition(
        "session-level Push on a multi-producer session; push through the "
        "Producer handles (AddProducer)");
  }
  // Single-producer mode: the calling thread is the front (see the
  // threading contract in the header).
  ThreadRoleGuard role(front_role_);
  Status ordered = gate_.CheckEvent(event.time);
  if (!ordered.ok()) return ordered;
  gate_.CommitEvent(event.time);
  if (reopt_enabled_) collector_.CountEvent(event.type);
  StageEvent(event, config_.adaptive_batching ? IngestNow() : 0.0);
  MaybeReoptimizeFront();
  DrainEmissions();
  return Status::Ok();
}

Status ShardedSession::PushBatch(std::span<const Event> events) {
  if (closed_) {
    return Status::FailedPrecondition("PushBatch on a closed session");
  }
  if (mp_mode_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition(
        "session-level PushBatch on a multi-producer session; push through "
        "the Producer handles (AddProducer)");
  }
  ThreadRoleGuard role(front_role_);
  // One clock read per call, not per event: events of one batch arrived
  // together, so they share an arrival instant (their inter-arrival gap is
  // ~0, which is exactly what the burst detector should see).
  const double now = config_.adaptive_batching ? IngestNow() : 0.0;
  for (const Event& e : events) {
    Status ordered = gate_.CheckEvent(e.time);
    if (!ordered.ok()) return ordered;
    gate_.CommitEvent(e.time);
    if (reopt_enabled_) collector_.CountEvent(e.type);
    StageEvent(e, now);
  }
  MaybeReoptimizeFront();
  DrainEmissions();
  return Status::Ok();
}

Status ShardedSession::PushPrePartitioned(PartitionedBatch batches) {
  if (closed_) {
    return Status::FailedPrecondition(
        "PushPrePartitioned on a closed session");
  }
  if (mp_mode_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition(
        "PushPrePartitioned on a multi-producer session; push through the "
        "Producer handles (AddProducer)");
  }
  if (stealing_) {
    return Status::FailedPrecondition(
        "PushPrePartitioned with work_stealing enabled: caller-side "
        "partitioning bypasses the steal controller's routing and "
        "duplication window; use Push/PushBatch");
  }
  if (batches.size() != shards_.size()) {
    return Status::InvalidArgument(
        "PushPrePartitioned got " + std::to_string(batches.size()) +
        " sub-batches for " + std::to_string(shards_.size()) + " shards");
  }
  ThreadRoleGuard role(front_role_);
  // Validate everything before committing anything: each sub-batch must be
  // internally strictly increasing and start after the previous call's
  // events and watermark. Cross-shard interleaving inside the chunk is
  // deliberately unconstrained — each shard's Session only ever compares
  // timestamps within its own subsequence.
  Timestamp max_time = 0;
  bool any = false;
  for (size_t i = 0; i < batches.size(); ++i) {
    const EventVector& batch = batches[i];
    if (batch.empty()) continue;
    Status ordered = gate_.CheckEvent(batch.front().time);
    if (!ordered.ok()) return ordered;
    for (size_t j = 1; j < batch.size(); ++j) {
      if (batch[j].time <= batch[j - 1].time) {
        return Status::InvalidArgument(
            "out-of-order event at t=" + std::to_string(batch[j].time) +
            " in shard " + std::to_string(i) +
            " sub-batch (previous at t=" +
            std::to_string(batch[j - 1].time) + ")");
      }
    }
#ifndef NDEBUG
    // Pure-hash routing has exactly one valid placement per event. With
    // rebalancing the binding pass below enforces the (looser) contract —
    // agreement with sticky assignments, first sight binding — in all
    // builds, so no DCHECK is needed there.
    if (!router_.rebalancing()) {
      for (const Event& e : batch) {
        HAMLET_DCHECK(router_.ShardOf(e) == i);
      }
    }
#endif
    max_time = any ? std::max(max_time, batch.back().time)
                   : batch.back().time;
    any = true;
  }
  if (!any) return Status::Ok();
  // With skew-aware routing the caller's placement is authoritative for
  // keys this session has not seen, but must agree with existing
  // assignments — otherwise one group's stream would be split across two
  // shards (two independent Sessions, duplicate per-window results). A
  // chunk built with a pure-hash RouterFor router while this session
  // rebalances is exactly that hazard. BindChunk validates the whole
  // chunk, then binds its new keys atomically — a rejected chunk commits
  // neither events nor routing state.
  if (router_.rebalancing()) {
    const int bad_shard = router_.BindChunk(batches);
    if (bad_shard >= 0) {
      return Status::InvalidArgument(
          "PushPrePartitioned sub-batch " + std::to_string(bad_shard) +
          " places an event of an already-routed group on the wrong shard; "
          "with shard_rebalance_threshold > 0, build chunks with this "
          "session's router(), not a standalone RouterFor");
    }
  }
  gate_.CommitEvent(max_time);
  if (reopt_enabled_) {
    for (const EventVector& batch : batches) {
      for (const Event& e : batch) collector_.CountEvent(e.type);
    }
  }
  // Staged events predate this chunk; flush them first so every shard's
  // queue stays in per-shard time order.
  FlushAllShards();
  for (size_t i = 0; i < batches.size(); ++i) {
    if (batches[i].empty()) continue;
    ShardMsg msg;
    msg.kind = ShardMsg::Kind::kBatch;
    msg.batch = std::move(batches[i]);
    shards_[i]->Send(std::move(msg));
  }
  MaybeReoptimizeFront();
  DrainEmissions();
  return Status::Ok();
}

Status ShardedSession::AdvanceTo(Timestamp watermark) {
  if (closed_) {
    return Status::FailedPrecondition("AdvanceTo on a closed session");
  }
  if (mp_mode_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition(
        "session-level AdvanceTo on a multi-producer session; use "
        "Producer::AdvanceTo (the session watermark is the merged "
        "frontier)");
  }
  ThreadRoleGuard role(front_role_);
  return AdvanceToInternal(watermark);
}

Status ShardedSession::AdvanceToInternal(Timestamp watermark) {
  Status ordered = gate_.CheckWatermark(watermark);
  if (!ordered.ok()) return ordered;
  gate_.CommitWatermark(watermark);
  // The watermark is a barrier: staged events logically precede it, so
  // they must reach their shards first.
  FlushAllShards();
  for (auto& shard : shards_) {
    ShardMsg msg;
    msg.kind = ShardMsg::Kind::kWatermark;
    msg.watermark = watermark;
    shard->Send(std::move(msg));
  }
  if (reopt_enabled_) {
    // With online re-optimization, an explicit watermark is the drift
    // check's synchronization point: wait until every shard acknowledged
    // it (publishing fresh metrics first), so the check below — and every
    // later one — reads statistics that cover the whole stream before the
    // watermark instead of snapshots lagging by a queue depth. Emissions
    // are drained while waiting so worker outboxes keep moving. Only the
    // re-optimizing front pays this barrier, and only at watermarks.
    for (auto& shard : shards_) {
      while (shard->watermark_applied.load(std::memory_order_acquire) <
             watermark) {
        DrainEmissions();
        std::this_thread::yield();
      }
    }
  }
  MaybeDrainRouter();
  MaybeReoptimizeFront();
  DrainEmissions();
  return Status::Ok();
}

Result<std::unique_ptr<ShardedSession::Producer>>
ShardedSession::AddProducer() {
  if (closed_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("AddProducer on a closed session");
  }
  MutexLock lock(producer_mu_);
  if (!poison_status_.ok()) return poison_status_;
  if (!mp_mode_.load(std::memory_order_relaxed)) {
    // First producer: the session switches to multi-producer mode for
    // good. The check against gate_ is safe here — the sequencer does not
    // exist yet, no session-level push can run concurrently (threading
    // contract), and once mp_mode_ is set this branch never re-runs — so
    // the calling thread still IS the front for the duration of the check.
    {
      ThreadRoleGuard role(front_role_);
      if (gate_.any_seen()) {
        return Status::FailedPrecondition(
            "AddProducer after session-level Push/AdvanceTo: a session uses "
            "ONE ingest mode — open the producers first");
      }
    }
    hub_ = std::make_unique<MpscIngestHub<Event>>(
        static_cast<size_t>(config_.producer_queue_capacity));
    seq_stop_.store(false, std::memory_order_relaxed);
    sequencer_ = Thread(&ShardedSession::SequencerLoop, this);
    mp_mode_.store(true, std::memory_order_release);
  }
  const int slot = hub_->ClaimSlot();
  if (slot < 0) {
    return Status::ResourceExhausted(
        "all " + std::to_string(MpscIngestHub<Event>::kMaxProducers) +
        " producer slots are claimed by open handles");
  }
  producers_open_.fetch_add(1, std::memory_order_acq_rel);
  std::unique_ptr<Producer> producer(new Producer(this, slot));
  // Seed the handle's gate with the slot's admission bound so a late
  // joiner pushing below the merged horizon gets a synchronous
  // kInvalidArgument from its own handle instead of poisoning the session.
  const Timestamp bound = hub_->slot_bound(slot);
  if (bound > MpscIngestHub<Event>::kTimeMin) {
    producer->gate_.CommitWatermark(bound);
  }
  return producer;
}

ShardedSession::Producer::~Producer() {
  // Dtor close is best-effort by documented contract; close explicitly to
  // observe the status.
  if (!closed_) (void)Close();
}

Status ShardedSession::Producer::Push(const Event& event) {
  if (closed_) {
    return Status::FailedPrecondition("Push on a closed producer handle");
  }
  if (owner_->poisoned_.load(std::memory_order_acquire)) {
    return owner_->PoisonStatus();
  }
  Status ordered = gate_.CheckEvent(event.time);
  if (!ordered.ok()) return ordered;
  gate_.CommitEvent(event.time);
  Event copy = event;
  while (!owner_->hub_->TryPush(slot_, std::move(copy))) {
    // Bounded-ring backpressure: the sequencer is behind; yield until it
    // frees a slot. A poisoned session aborts the wait (the sequencer
    // keeps draining, but delivering this event is pointless).
    if (owner_->poisoned_.load(std::memory_order_acquire)) {
      return owner_->PoisonStatus();
    }
    std::this_thread::yield();
  }
  return Status::Ok();
}

Status ShardedSession::Producer::PushBatch(std::span<const Event> events) {
  for (const Event& event : events) {
    Status st = Push(event);
    if (!st.ok()) return st;
  }
  return Status::Ok();
}

Status ShardedSession::Producer::AdvanceTo(Timestamp watermark) {
  if (closed_) {
    return Status::FailedPrecondition(
        "AdvanceTo on a closed producer handle");
  }
  if (owner_->poisoned_.load(std::memory_order_acquire)) {
    return owner_->PoisonStatus();
  }
  Status ordered = gate_.CheckWatermark(watermark);
  if (!ordered.ok()) return ordered;
  gate_.CommitWatermark(watermark);
  owner_->hub_->PublishBound(slot_, watermark);
  return Status::Ok();
}

Status ShardedSession::Producer::Close() {
  if (closed_) {
    return Status::FailedPrecondition("producer handle already closed");
  }
  closed_ = true;
  owner_->hub_->CloseSlot(slot_);
  owner_->producers_open_.fetch_sub(1, std::memory_order_acq_rel);
  return Status::Ok();
}

void ShardedSession::SequencerLoop() {
  // In multi-producer mode the sequencer IS the front: it owns the gate,
  // staging, steal bookkeeping, and emission fan-in until it exits (the
  // join in StopSequencer hands the role back to the closing thread).
  ThreadRoleGuard role(front_role_);
  int idle = 0;
  Event event;
  for (;;) {
    bool did_work = false;
    while (hub_->TryNext(&event)) {
      did_work = true;
      IngestReleased(event);
    }
    // Broadcast only after draining until stuck: the frontier then bounds
    // every released timestamp, so it is a legal watermark.
    MaybeBroadcastFrontier();
    if (seq_stop_.load(std::memory_order_acquire)) {
      // Close() guarantees every producer handle is closed before setting
      // the stop flag, so this final drain empties the hub completely
      // (closed slots' bounds are +inf — nothing blocks a release). The
      // frontier now rests at the hub's closed floor (the max final
      // producer bound) — broadcast it, so the producers' last watermarks
      // reach the shards DETERMINISTICALLY rather than only when the idle
      // loop happened to poll between the last AdvanceTo and the close.
      while (hub_->TryNext(&event)) IngestReleased(event);
      MaybeBroadcastFrontier();
      return;
    }
    if (did_work) {
      idle = 0;
      continue;
    }
    DrainEmissions();
    if (++idle < kSequencerIdleSpins) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(kSequencerIdleSleep);
    }
  }
}

void ShardedSession::IngestReleased(const Event& event) {
  // A poisoned session still drains the hub — abandoning it would leave
  // producers spinning on full rings — but discards the events.
  if (poisoned_.load(std::memory_order_relaxed)) return;
  Status ordered = gate_.CheckEvent(event.time);
  if (!ordered.ok()) {
    // A cross-producer violation the per-producer gates could not see
    // (e.g. two producers pushing the same timestamp). The session
    // poisons — a sticky error every producer observes — instead of
    // feeding the engines a misordered stream.
    Poison(std::move(ordered));
    return;
  }
  gate_.CommitEvent(event.time);
  if (reopt_enabled_) collector_.CountEvent(event.type);
  StageEvent(event, config_.adaptive_batching ? IngestNow() : 0.0);
  MaybeReoptimizeFront();
  DrainEmissions();
}

void ShardedSession::MaybeBroadcastFrontier() {
  if (poisoned_.load(std::memory_order_relaxed)) return;
  const Timestamp frontier = hub_->Frontier();
  // With every producer closed and drained the frontier rests at the
  // hub's closed floor (max final bound), so departed producers' last
  // watermarks still broadcast. <= 0 covers the pre-first-bound state;
  // +inf can only appear transiently mid-recycle.
  if (frontier >= MpscIngestHub<Event>::kTimeMax || frontier <= 0) return;
  if (front_pane_size_ <= 0) return;
  const Timestamp fpane = (frontier / front_pane_size_) * front_pane_size_;
  // Broadcast one LESS than the frontier pane (floored at the largest
  // released/committed time, which the gate requires). The raw frontier
  // must not go out: a push of event t publishes bound t+1, so a frontier
  // landing exactly on a pane boundary would open a pane the event stream
  // never reached — and whether that broadcast won the race against the
  // producer closing would decide the emission set. Both max_seen and
  // fpane-1 only ever advance panes a processed event or explicit
  // watermark already reached, so the broadcast is emission-neutral no
  // matter how the polling races; producer watermarks simply propagate
  // with up to one pane of lag (the shutdown broadcast and Close's flush
  // finish the tail).
  Timestamp watermark = fpane - 1;
  if (gate_.any_seen() && gate_.max_seen() > watermark) {
    watermark = gate_.max_seen();
  }
  if (watermark <= 0) return;
  // Throttle on the pane boundary the broadcast would ADVANCE TO (not the
  // raw frontier pane): watermarks sharing a boundary open and close the
  // same windows, so re-announcing one is pure per-shard queue overhead —
  // while a skipped boundary would change the emission set with timing.
  const Timestamp boundary =
      (watermark / front_pane_size_) * front_pane_size_;
  if (boundary <= last_frontier_pane_) return;
  last_frontier_pane_ = boundary;
  // Joiners admit at or above the broadcast so they can never drag the
  // frontier (or their own events) below what downstream already saw.
  hub_->SetClaimFloor(watermark);
  Status st = AdvanceToInternal(watermark);
  // The value is >= every committed event and watermark by construction,
  // so the gate can never reject it.
  HAMLET_CHECK(st.ok());
}

void ShardedSession::StopSequencer() {
  if (!sequencer_.Joinable()) return;
  seq_stop_.store(true, std::memory_order_release);
  sequencer_.Join();
}

void ShardedSession::Poison(Status status) {
  {
    MutexLock lock(producer_mu_);
    if (poison_status_.ok()) poison_status_ = std::move(status);
  }
  poisoned_.store(true, std::memory_order_release);
}

Status ShardedSession::PoisonStatus() {
  MutexLock lock(producer_mu_);
  return poison_status_;
}

Result<Timestamp> ShardedSession::AddQuery(const Query& query) {
  if (closed_) {
    return Status::FailedPrecondition("AddQuery on a closed session");
  }
  if (Status guard = ChurnGuard("AddQuery"); !guard.ok()) return guard;
  if (MetricsSnapshot().active_epochs >= QueryLifecycle::kMaxLiveEpochs) {
    return Status::ResourceExhausted(
        "too many plan epochs still draining across shards (max " +
        std::to_string(QueryLifecycle::kMaxLiveEpochs) +
        "); advance the stream before further churn");
  }
  // ChurnGuard rejected multi-producer mode above, so the caller is the
  // front.
  ThreadRoleGuard role(front_role_);
  return BroadcastChurn(ChurnKind::kAddQuery, &query, nullptr, {});
}

Result<Timestamp> ShardedSession::RemoveQuery(const std::string& name) {
  if (closed_) {
    return Status::FailedPrecondition("RemoveQuery on a closed session");
  }
  if (Status guard = ChurnGuard("RemoveQuery"); !guard.ok()) return guard;
  if (MetricsSnapshot().active_epochs >= QueryLifecycle::kMaxLiveEpochs) {
    return Status::ResourceExhausted(
        "too many plan epochs still draining across shards (max " +
        std::to_string(QueryLifecycle::kMaxLiveEpochs) +
        "); advance the stream before further churn");
  }
  ThreadRoleGuard role(front_role_);
  return BroadcastChurn(ChurnKind::kRemoveQuery, nullptr, &name, {});
}

Result<Timestamp> ShardedSession::ApplySharingOverrides(
    std::span<const SharingOverride> overrides) {
  if (closed_) {
    return Status::FailedPrecondition(
        "ApplySharingOverrides on a closed session");
  }
  if (Status guard = ChurnGuard("ApplySharingOverrides"); !guard.ok()) {
    return guard;
  }
  ThreadRoleGuard role(front_role_);
  return BroadcastChurn(ChurnKind::kSwapPlan, nullptr, nullptr,
                        {overrides.begin(), overrides.end()});
}

Status ShardedSession::ChurnGuard(const char* op) const {
  // Query churn from the caller thread would race the sequencer's front
  // state in multi-producer mode, and a plan-epoch swap would break the
  // steal protocol's single-epoch fence/adopt invariant (FenceGroup /
  // AdoptGroup CHECK one live runtime).
  if (mp_mode_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition(
        std::string(op) + " on a multi-producer session (query churn is "
        "front-thread only; close the producer handles first)");
  }
  if (stealing_) {
    return Status::Unsupported(
        std::string(op) +
        " with work_stealing enabled: plan epoch swaps would race the "
        "steal protocol's single-epoch fence/adopt invariant");
  }
  return Status::Ok();
}

Result<Timestamp> ShardedSession::BroadcastChurn(
    ChurnKind kind, const Query* query, const std::string* name,
    std::vector<SharingOverride> overrides) {
  // Validate + compile ONCE, on the front, before anything is broadcast: a
  // rejected op must leave every shard (and the front lifecycle) untouched,
  // and a broadcast op must be infallible on the workers.
  Result<QueryLifecycle::CompiledEpoch> epoch =
      kind == ChurnKind::kAddQuery    ? lifecycle_.TryAdd(*query, {})
      : kind == ChurnKind::kRemoveQuery ? lifecycle_.TryRemove(*name, {})
                                        : lifecycle_.Compile(overrides);
  if (!epoch.ok()) return epoch.status();
  // One activation boundary for everyone, on the grid of the epoch being
  // superseded (the front gate dominates every shard's view of time).
  const Timestamp activate = QueryLifecycle::ActivationBoundary(
      front_pane_size_, gate_.any_seen(), gate_.max_seen());
  // The churn op is a barrier in stream order: staged events precede it.
  FlushAllShards();
  for (auto& shard : shards_) {
    ShardMsg msg;
    switch (kind) {
      case ChurnKind::kAddQuery:
        msg.kind = ShardMsg::Kind::kAddQuery;
        msg.query = *query;
        break;
      case ChurnKind::kRemoveQuery:
        msg.kind = ShardMsg::Kind::kRemoveQuery;
        msg.query_name = *name;
        break;
      case ChurnKind::kSwapPlan:
        msg.kind = ShardMsg::Kind::kSwapPlan;
        msg.overrides = overrides;
        break;
    }
    msg.activate_at = activate;
    shard->Send(std::move(msg));
  }
  front_epoch_ = std::move(epoch).value();
  front_pane_size_ = front_epoch_.plan->pane_size;
  for (const ExecQuery& eq : front_epoch_.plan->exec_queries) {
    within_high_water_ = std::max(within_high_water_, eq.window.within);
  }
  if (reopt_enabled_) {
    OnlineReoptimizerOptions opts;
    opts.threshold = config_.reoptimize_threshold;
    opts.variant = config_.cost_variant;
    reoptimizer_.Bind(*front_epoch_.plan, front_epoch_.potential_groups,
                      front_epoch_.applied, opts);
    reopt_pane_seen_ = false;
  }
  DrainEmissions();
  return activate;
}

void ShardedSession::MaybeReoptimizeFront() {
  if (!reopt_enabled_ || !gate_.any_seen() || front_pane_size_ <= 0) return;
  const Timestamp boundary =
      (gate_.max_seen() / front_pane_size_) * front_pane_size_;
  const Timestamp every =
      front_pane_size_ *
      static_cast<Timestamp>(config_.reoptimize_every_panes);
  if (!reopt_pane_seen_) {
    // First boundary observation after (re)bind anchors the cadence.
    last_reopt_pane_ = boundary;
    reopt_pane_seen_ = true;
    return;
  }
  if (boundary < last_reopt_pane_ + every) return;
  last_reopt_pane_ = boundary;
  // Worker snapshots lag by at most kSnapshotEveryEvents events per shard;
  // stale statistics only delay a swap by one check interval (both the
  // baseline and the cumulative reading come from the same snapshots, so
  // the deltas stay consistent).
  OnlineReoptimizer::Outcome out =
      reoptimizer_.Check(boundary, MetricsSnapshot().hamlet, collector_);
  if (!out.swap) return;
  // Compilation failure keeps the running plan (never a hard error on the
  // re-optimization path) — hence the discarded result.
  (void)BroadcastChurn(ChurnKind::kSwapPlan, nullptr, nullptr,
                       std::move(out.overrides));
}

void ShardedSession::MaybeDrainRouter() {
  if (!config_.evict_idle_groups || !router_.rebalancing()) return;
  if (!gate_.any_seen() || front_pane_size_ <= 0) return;
  // A diverted key last seen at E <= boundary - W_max has every window that
  // could contain its events closed AND (via evict_idle_groups) its engine
  // state evicted from the old shard by that boundary, so if the key
  // re-appears, re-routing it elsewhere can neither split live state nor
  // duplicate a (window, query, group) emission: the old shard's windows
  // all ended before any window the new shard will open.
  const Timestamp boundary =
      (gate_.max_seen() / front_pane_size_) * front_pane_size_;
  router_.DrainStale(boundary - within_high_water_);
}

Result<RunMetrics> ShardedSession::Close() {
  if (closed_) {
    return Status::FailedPrecondition(
        "Close on a closed session (first Close already returned the final "
        "metrics; use MetricsSnapshot to re-read them)");
  }
  if (mp_mode_.load(std::memory_order_acquire)) {
    if (producers_open_.load(std::memory_order_acquire) > 0) {
      return Status::FailedPrecondition(
          "Close with " +
          std::to_string(producers_open_.load(std::memory_order_relaxed)) +
          " producer handle(s) still open; close every producer first");
    }
    // All handles closed: the sequencer's final drain empties the hub,
    // merges the tail, and the join makes its front state (gate_, staging,
    // steal bookkeeping) visible to this thread for the close path below.
    StopSequencer();
    HAMLET_CHECK(hub_->Quiescent());
  }
  // The sequencer (if one ever ran) has exited above, so the closing
  // thread is the front again for the final sweep.
  ThreadRoleGuard role(front_role_);
  FlushAllShards();
  // Idle-group eviction keys off each session's own max seen event time,
  // and shards each saw only a subset of the stream. Broadcasting the
  // front's max as a final watermark aligns every shard's eviction horizon
  // with the single-threaded reference before the Close flush sweep, so
  // the same groups evict at the same boundaries at any shard count.
  if (config_.evict_idle_groups && gate_.any_seen()) {
    for (auto& shard : shards_) {
      ShardMsg msg;
      msg.kind = ShardMsg::Kind::kWatermark;
      msg.watermark = gate_.max_seen();
      shard->Send(std::move(msg));
    }
  }
  for (auto& shard : shards_) {
    ShardMsg msg;
    msg.kind = ShardMsg::Kind::kStop;
    shard->Send(std::move(msg));
  }
  RunMetrics merged;
  for (auto& shard : shards_) {
    shard->worker.Join();
    MergeRunMetrics(merged, shard->final_metrics);
    merged.shard_events.push_back(shard->final_metrics.events);
  }
  FillIngressMetrics(merged);
  final_metrics_ = merged;
  closed_.store(true, std::memory_order_release);
  // Workers published every remaining emission before exiting; this final
  // fan-in empties all outboxes into the sink. It runs after the session
  // is marked closed, so a feedback sink pushing from OnEmission gets
  // kFailedPrecondition instead of staging events no worker will ever
  // process. It must NOT share DrainEmissions' guard/scratch: a sink may
  // call Close from OnEmission mid-drain, and a guarded no-op here would
  // silently lose the stop-flushed emissions of shards the interrupted
  // drain already passed (nothing drains after Close). A local buffer
  // keeps the interrupted drain's scratch intact.
  if (sink_ != nullptr) {
    for (auto& shard : shards_) {
      std::vector<Emission> remaining;
      {
        MutexLock lock(shard->outbox_mu);
        remaining.swap(shard->outbox);
        shard->outbox_ready.store(false, std::memory_order_relaxed);
      }
      for (const Emission& emission : remaining) {
        sink_->OnEmission(emission);
      }
    }
  }
  return merged;
}

void ShardedSession::FillIngressMetrics(RunMetrics& merged) const {
  merged.shard_batch_hist.assign(kBatchHistBuckets, 0);
  int64_t max_depth = 0;
  for (const auto& shard : shards_) {
    for (size_t b = 0; b < kBatchHistBuckets; ++b) {
      merged.shard_batch_hist[b] +=
          shard->batch_hist[b].load(std::memory_order_relaxed);
    }
    max_depth = std::max(
        max_depth, shard->max_queue_depth.load(std::memory_order_relaxed));
  }
  // Drop empty tail buckets so small-batch runs print compactly.
  while (!merged.shard_batch_hist.empty() &&
         merged.shard_batch_hist.back() == 0) {
    merged.shard_batch_hist.pop_back();
  }
  merged.max_queue_depth_msgs = max_depth;
  merged.rebalanced_keys = router_.rebalanced_keys();
  merged.rebalance_map_size = router_.map_size();
  // Shards never steal on their own; migrations execute on the front.
  merged.stolen_panes += stolen_panes_.load(std::memory_order_relaxed);
  // Duplication-window events were processed by two shards each, so the
  // summed per-shard counts overstate the ingested stream by exactly the
  // duplicate count. shard_events stays honest per shard (it reflects
  // real per-shard work); the merged total reverts to stream length.
  const int64_t dup = dup_events_.load(std::memory_order_relaxed);
  merged.duplicated_events += dup;
  merged.events -= std::min(dup, merged.events);
  // Shards never self-reoptimize (reoptimize_every_panes is forced to 0 in
  // their configs), so the check/swap counts live on the front.
  merged.reopt_checks = std::max(merged.reopt_checks, reoptimizer_.checks());
  merged.reopt_swaps = std::max(merged.reopt_swaps, reoptimizer_.swaps());
  // The merge left peak at max(per-shard peaks) — the always-true floor;
  // the sampled concurrent sum can only raise it toward the true
  // simultaneous footprint (and never past the sum of peaks).
  merged.peak_memory_bytes = std::max(
      merged.peak_memory_bytes, mem_high_water_.load(std::memory_order_relaxed));
}

RunMetrics ShardedSession::MetricsSnapshot() const {
  if (closed_.load(std::memory_order_acquire)) return final_metrics_;
  RunMetrics merged;
  for (const auto& shard : shards_) {
    RunMetrics m;
    {
      MutexLock lock(shard->snapshot_mu);
      m = shard->snapshot;
    }
    MergeRunMetrics(merged, m);
    merged.shard_events.push_back(m.events);
  }
  FillIngressMetrics(merged);
  return merged;
}

}  // namespace hamlet
