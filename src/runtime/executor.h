// Batch execution wrapper over the push-based Session.
//
// Responsibility split: Session (src/runtime/session.h) owns all stream-time
// machinery — pane advancement, window open/close, engine dispatch, branch
// composition, metrics. StreamExecutor is the backward-compatible batch
// surface: Run() materializes one Session with a CollectingSink, pushes the
// whole pre-buffered stream, and returns the buffered, sorted emissions.
// New code that ingests events incrementally (or cares about O(stream)
// buffer memory) should use Session directly.
#ifndef HAMLET_RUNTIME_EXECUTOR_H_
#define HAMLET_RUNTIME_EXECUTOR_H_

#include <vector>

#include "src/runtime/session.h"

namespace hamlet {

struct RunOutput {
  /// Not-OK when the config fails validation or the stream violates the
  /// time-ordering contract (kInvalidArgument naming the offending
  /// timestamp); emissions/metrics then cover the prefix processed before
  /// the error.
  Status status;
  std::vector<Emission> emissions;
  RunMetrics metrics;
};

/// See file comment. The plan must outlive the executor.
class StreamExecutor {
 public:
  StreamExecutor(const WorkloadPlan& plan, RunConfig config)
      : plan_(&plan), config_(config) {}

  /// Processes the whole stream (time-ordered) and returns emissions sorted
  /// by (window_start, query, group).
  RunOutput Run(const EventVector& events);

 private:
  const WorkloadPlan* plan_;
  RunConfig config_;
};

}  // namespace hamlet

#endif  // HAMLET_RUNTIME_EXECUTOR_H_
