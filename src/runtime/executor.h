// Streaming executor: evaluates a compiled workload over an event stream.
//
// Responsibilities (paper §3.1 pre-processing + §6.1 metrics):
//  * partitions exec queries into components connected by share groups;
//  * partitions each component's stream by its group-by attribute;
//  * divides time into panes (gcd of windows/slides) and manages
//    pane-aligned window instances (tumbling and sliding);
//  * dispatches to the selected engine: HAMLET (dynamic / static-always /
//    no-share), GRETA (graph or prefix-sum, one instance per window),
//    two-step (MCEP-style), or SHARON-style flattening;
//  * composes OR/AND branch values into query results;
//  * measures the paper's metrics: latency (result emission wall time minus
//    arrival wall time of the last contributing event), throughput
//    (events/second), and peak logical memory.
#ifndef HAMLET_RUNTIME_EXECUTOR_H_
#define HAMLET_RUNTIME_EXECUTOR_H_

#include <map>
#include <memory>
#include <vector>

#include "src/baselines/sharon_engine.h"
#include "src/baselines/two_step_engine.h"
#include "src/greta/greta_engine.h"
#include "src/hamlet/batch_eval.h"
#include "src/optimizer/policies.h"

namespace hamlet {

enum class EngineKind {
  kHamletDynamic,  ///< the paper's HAMLET: per-burst benefit decisions
  kHamletStatic,   ///< static optimizer: always share (Figs. 12/13 baseline)
  kHamletNoShare,  ///< HAMLET machinery, sharing disabled
  kGretaGraph,     ///< GRETA baseline, faithful O(n^2) graph mode
  kGretaPrefix,    ///< GRETA with running sums (tuned-baseline ablation)
  kTwoStep,        ///< MCEP-style construct-then-aggregate
  kSharon,         ///< SHARON-style fixed-length flattening
};

const char* EngineKindName(EngineKind kind);

struct RunConfig {
  EngineKind kind = EngineKind::kHamletDynamic;
  /// SHARON's provisioned longest-match length l.
  int sharon_max_length = 64;
  /// Two-step trend budget per window; exceeding it records a DNF.
  int64_t two_step_budget = 20'000'000;
  CostModelVariant cost_variant = CostModelVariant::kRefined;
  /// Keep per-window emissions (tests); disable for large benches.
  bool collect_emissions = true;
};

/// One query result for one (group, window).
struct Emission {
  QueryId query = -1;
  int64_t group_key = 0;
  Timestamp window_start = 0;
  double value = 0.0;
};

struct RunMetrics {
  int64_t events = 0;
  int64_t emissions = 0;
  double elapsed_seconds = 0.0;
  double avg_latency_seconds = 0.0;
  double max_latency_seconds = 0.0;
  double throughput_eps = 0.0;
  int64_t peak_memory_bytes = 0;
  /// Two-step windows that exceeded the trend budget.
  int64_t dnf_windows = 0;
  /// Aggregated HAMLET statistics (HAMLET kinds only).
  HamletStats hamlet;
  /// Sharing decisions taken (dynamic policy only).
  int64_t decisions = 0;
};

struct RunOutput {
  std::vector<Emission> emissions;
  RunMetrics metrics;
};

/// See file comment. The plan must outlive the executor.
class StreamExecutor {
 public:
  StreamExecutor(const WorkloadPlan& plan, RunConfig config);
  ~StreamExecutor();

  /// Processes the whole stream (time-ordered) and returns emissions sorted
  /// by (window_start, query, group).
  RunOutput Run(const EventVector& events);

 private:
  struct Component;
  struct GroupRunner;

  void AdvancePaneTo(Timestamp new_pane_start, RunOutput* out);
  void CloseExpiredWindows(GroupRunner& runner, Timestamp now,
                           RunOutput* out);
  void OpenDueWindows(GroupRunner& runner, Timestamp pane_start,
                      bool retroactive);
  void EmitExecValue(const Component& comp, int exec_id, int64_t group_key,
                     Timestamp window_start, double value, double arrival_wall,
                     RunOutput* out);
  int64_t CurrentMemory() const;

  const WorkloadPlan* plan_;
  RunConfig config_;
  std::vector<std::unique_ptr<Component>> components_;
  /// Branch values awaiting composition: (query, group, window) -> values.
  std::map<std::tuple<QueryId, int64_t, Timestamp>, std::vector<double>>
      pending_compositions_;
  /// Latency samples per emission.
  double latency_sum_ = 0.0;
  double latency_max_ = 0.0;
  int64_t latency_count_ = 0;
  int64_t peak_memory_ = 0;
  int64_t dnf_windows_ = 0;
  Timestamp pane_start_ = 0;
  bool pane_started_ = false;
  double run_start_wall_ = 0.0;
};

}  // namespace hamlet

#endif  // HAMLET_RUNTIME_EXECUTOR_H_
