// Push-based streaming session: the runtime's primary entry point.
//
// A Session evaluates a compiled workload incrementally: callers push events
// (singly or in batches) as they arrive, and every query result is delivered
// to a pluggable EmissionSink the moment its window closes — no O(stream)
// input buffer and no grow-forever output buffer on the hot path.
//
// Lifecycle:
//   Result<std::unique_ptr<Session>> s = Session::Open(plan, config, &sink);
//   s.value()->Push(event);              // or PushBatch(span)
//   s.value()->AdvanceTo(watermark);     // force window closure, no event
//   RunMetrics m = s.value()->Close().value();  // final flush + metrics
//
// After Close, every entry point (including a second Close) returns
// kFailedPrecondition instead of relying on caller discipline.
//
// The session owns all stream-time machinery (paper §3.1 pre-processing +
// §6.1 metrics): partitioning exec queries into components connected by
// share groups, partitioning each component's stream by its group-by
// attribute, pane-aligned window management (tumbling and sliding),
// dispatch to the selected engine (HAMLET dynamic/static/no-share, GRETA
// graph/prefix, two-step, SHARON), OR/AND branch composition, and the
// paper's latency / throughput / peak-memory accounting. The batch
// StreamExecutor::Run in src/runtime/executor.h is a thin wrapper over this
// class with a CollectingSink.
#ifndef HAMLET_RUNTIME_SESSION_H_
#define HAMLET_RUNTIME_SESSION_H_

#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/baselines/sharon_engine.h"
#include "src/baselines/two_step_engine.h"
#include "src/common/status.h"
#include "src/greta/greta_engine.h"
#include "src/hamlet/batch_eval.h"
#include "src/optimizer/online_optimizer.h"
#include "src/optimizer/policies.h"
#include "src/query/columnar_predicate.h"
#include "src/runtime/query_lifecycle.h"
#include "src/stream/event_batch.h"

namespace hamlet {

enum class EngineKind {
  kHamletDynamic,  ///< the paper's HAMLET: per-burst benefit decisions
  kHamletStatic,   ///< static optimizer: always share (Figs. 12/13 baseline)
  kHamletNoShare,  ///< HAMLET machinery, sharing disabled
  kGretaGraph,     ///< GRETA baseline, faithful O(n^2) graph mode
  kGretaPrefix,    ///< GRETA with running sums (tuned-baseline ablation)
  kTwoStep,        ///< MCEP-style construct-then-aggregate
  kSharon,         ///< SHARON-style fixed-length flattening
};

const char* EngineKindName(EngineKind kind);

struct RunConfig {
  EngineKind kind = EngineKind::kHamletDynamic;
  /// SHARON's provisioned longest-match length l. Must be >= 1.
  int sharon_max_length = 64;
  /// Two-step trend budget per window; exceeding it records a DNF.
  /// Must be > 0.
  int64_t two_step_budget = 20'000'000;
  CostModelVariant cost_variant = CostModelVariant::kRefined;
  /// Batch Run() only: keep per-window emissions (tests); disable for large
  /// benches. Sessions ignore this — the sink choice governs delivery.
  bool collect_emissions = true;
  /// Worker shards for ShardedSession (src/runtime/sharded_session.h):
  /// events are hash-partitioned by group-by key across this many threads.
  /// Must be in [1, kMaxShards]. Plain Session ignores it (always 1).
  int num_shards = 1;
  /// Per-shard ingress queue capacity in *MESSAGES* — event batches plus
  /// control messages, NOT events — before Push applies backpressure. Must
  /// be >= 2; rounded up to a power of two. The implied per-shard event
  /// buffer is therefore ~shard_queue_capacity * shard_batch_size events;
  /// Open rejects configs whose product exceeds kMaxQueuedEventsPerShard so
  /// the two knobs cannot silently compound into gigabytes of queue.
  int shard_queue_capacity = 8192;
  /// ShardedSession ingress granularity: events staged per shard before the
  /// producer hands one batch message to that shard's queue. 1 reproduces
  /// per-event hand-off; larger values amortize the queue traffic across the
  /// batch. Watermarks, Close and PushPrePartitioned flush staging, so
  /// results never depend on this knob. Must be >= 1. Plain Session ignores
  /// it. With adaptive_batching this is the CEILING the per-shard effective
  /// batch grows toward.
  int shard_batch_size = 128;
  /// Burst-adaptive ingress (ShardedSession only): each shard's effective
  /// staging batch adapts between 1 and shard_batch_size per staged event —
  /// growing while the shard's queue is deep/busy (burst: amortize
  /// messages), shrinking as arrival gaps open or the queue drains (lull:
  /// cut emission-delivery latency). Driven by
  /// stream/adaptive_batcher.h; emission sets are invariant either way.
  bool adaptive_batching = false;
  /// Skew-aware routing (ShardedSession only): when > 0, a group key seen
  /// for the FIRST time whose hash shard leads the least-loaded shard by
  /// more than this many recently staged events is routed to the
  /// least-loaded shard instead (ShardRouter::EnableRebalancing).
  /// Assignments are sticky, so per-group window order is preserved. 0
  /// disables (pure hash); must be >= 0.
  int64_t shard_rebalance_threshold = 0;
  /// Columnar hot path: stage pushed events into a structure-of-arrays
  /// EventBatch and evaluate every exec query's event predicates batch-wide
  /// through the compiled column kernels (src/query/columnar_predicate.h)
  /// before dispatch; HAMLET engines then receive pre-filtered events via
  /// OnEventFiltered. false forces the legacy per-event row path. Emission
  /// sets are BIT-IDENTICAL either way, for every engine kind
  /// (CTest-enforced by tests/columnar_test.cc) — the knob trades dispatch
  /// strategy, never results. Predicate names are resolved against the
  /// schema once at Session::Open under BOTH settings, so unknown
  /// attributes fail Open with kInvalidArgument instead of tripping a
  /// per-event DCHECK later.
  bool columnar = true;
  /// Run-granular propagation: segment each staged batch into maximal
  /// same-type, same-pass-set, pane-confined runs (src/query/
  /// run_segmenter.h) and dispatch each run through the engines in ONE call
  /// — one pane advance, one group lookup and one latency-stamp window scan
  /// per run, and HamletEngine::OnRunFiltered amortizes lane transitions
  /// and snapshot-count propagation across the run's rows. Valid for every
  /// engine kind (non-HAMLET engines keep per-row dispatch inside the run
  /// loop) and composes with shards, producers, churn and re-optimization.
  /// Emission sets are BIT-IDENTICAL on or off (CTest-enforced by
  /// tests/run_propagation_test.cc): the run body replays the row path's
  /// exact FP op sequence. Requires `columnar` (the segmenter consumes the
  /// staged batch + selection bitmaps); ignored on the row path. Affects
  /// PushBatch-fed ingestion (ShardedSession workers included); single-row
  /// Push stays on per-event dispatch, which is the same body.
  bool run_propagation = true;
  /// Online plan re-optimization cadence, in panes: every this many pane
  /// boundaries the session re-derives the cost-model inputs from live
  /// statistics (src/optimizer/online_optimizer.h), re-runs the pruned plan
  /// search, and hot-swaps the sharing plan at the next pane boundary when
  /// the observed cost drifts past reoptimize_threshold. 0 (default)
  /// freezes the plan chosen at Open. Requires a HAMLET engine kind with a
  /// sharing plan to act on (kHamletDynamic or kHamletStatic); works under
  /// BOTH columnar settings (each plan epoch compiles its own predicate
  /// program). In a ShardedSession only the FRONT re-optimizes and
  /// broadcasts the swap, so all shards always run the identical plan.
  int reoptimize_every_panes = 0;
  /// Relative cost drift that triggers a plan swap: swap when
  /// (observed - best) / observed exceeds this. Must be > 0 — a zero or
  /// negative threshold would swap on every check and thrash epochs.
  /// Ignored while reoptimize_every_panes == 0.
  double reoptimize_threshold = 0.2;
  /// Evict a group's engine state once a pane boundary passes its last
  /// event by the component's largest WITHIN: all windows that could hold
  /// any of its events have closed, so the state can only produce
  /// empty-window results. Eviction therefore DROPS the zero-valued
  /// emissions idle groups would otherwise produce every slide — that is
  /// the (documented, opt-in) trade for bounded state under high group-key
  /// cardinality. Deterministic in event time, so single-threaded and
  /// sharded runs with the knob ON stay emission-identical; it is also the
  /// prerequisite for ShardedSession draining stale rebalance-map entries
  /// (RunMetrics::rebalance_map_size).
  bool evict_idle_groups = false;
  /// Pane-boundary work stealing (ShardedSession only): when an existing
  /// group key's shard is overloaded (by more than steal_imbalance_ratio x
  /// the least-loaded shard over a sliding window of staged events), the
  /// front migrates whole group keys to the least-loaded shard at the next
  /// event-time pane boundary — the victim's runner is fenced (emits only
  /// windows starting before the boundary), the thief adopts the group
  /// (emits windows from the boundary on, graphlet sharing statistics
  /// handed over), and events near the boundary are duplicated to both
  /// sides so every window sees its full event set. This closes the gap
  /// that shard_rebalance_threshold only places NEW keys. Steal decisions
  /// derive purely from the merged event stream, so emission sets stay
  /// bit-identical across stealing on/off, shard counts and producer
  /// counts. Incompatible with evict_idle_groups, online re-optimization
  /// and query churn (see ValidateRunConfig / docs/API.md knob matrix).
  bool work_stealing = false;
  /// Work-stealing trigger: steal when the hottest shard's windowed load
  /// exceeds this multiple of the coldest shard's (plus a small absolute
  /// floor, so near-idle streams never thrash). Must be > 1.0 — checked
  /// even while work_stealing is off, so flipping the knob on later can
  /// never trip a latent bad value. Ignored while work_stealing is false.
  double steal_imbalance_ratio = 2.0;
  /// Multi-producer ingest (ShardedSession::AddProducer only): capacity,
  /// in events, of each producer's SPSC staging ring feeding the sequencer
  /// (src/common/mpsc_ingest.h). Must be >= 2; rounded up to a power of
  /// two. Plain Session and the single-producer sharded path ignore it.
  int producer_queue_capacity = 16384;
  /// Test hook: overrides the monotonic wall clock (in seconds) used for
  /// latency attribution, busy-time accounting and adaptive batching, so
  /// timing-sensitive tests run deterministically under sanitizer/CI load.
  /// Null (the default) uses MonotonicSeconds().
  std::function<double()> clock_override;
};

/// Upper bound on RunConfig::num_shards — far above any sane core count,
/// low enough to catch garbage (e.g. an uninitialized int) at Open.
inline constexpr int kMaxShards = 1024;

/// Upper bound on shard_queue_capacity * shard_batch_size, the per-shard
/// buffered-event footprint a config may imply (~200 MB of Events at the
/// default Event size). Catches knob combinations that each look sane alone.
inline constexpr int64_t kMaxQueuedEventsPerShard = int64_t{1} << 22;

/// Monotonic wall clock in seconds (steady_clock) — the default behind
/// RunConfig::clock_override, shared by Session, ShardedSession and the
/// benches so all latency numbers are on one timebase.
double MonotonicSeconds();

/// Reads a session clock: the given override when set, MonotonicSeconds()
/// otherwise. The single dispatch point for RunConfig::clock_override, so
/// the front thread and the per-shard workers can never drift onto
/// different timebases.
double ClockNow(const std::function<double()>& override_fn);

/// Checks the config invariants documented above; Session::Open (and thus
/// Run) fails fast with kInvalidArgument instead of tripping deep inside an
/// engine.
Status ValidateRunConfig(const RunConfig& config);

/// One query result for one (group, window). Self-describing: carries the
/// window bounds and the query's name so sinks can render results without
/// holding the Workload.
struct Emission {
  QueryId query = -1;
  int64_t group_key = 0;
  Timestamp window_start = 0;
  Timestamp window_end = 0;
  double value = 0.0;
  std::string query_name;
};

/// Tracks the ingestion-side ordering contract shared by Session and
/// ShardedSession: event times strictly increase, watermarks never regress,
/// and no event arrives behind a watermark. Check* report kInvalidArgument
/// naming the offending timestamp; Commit* record an accepted call.
class OrderingGate {
 public:
  Status CheckEvent(Timestamp event_time) const;
  void CommitEvent(Timestamp event_time) {
    last_event_time_ = event_time;
    has_event_ = true;
  }

  Status CheckWatermark(Timestamp watermark) const;
  void CommitWatermark(Timestamp watermark) {
    watermark_ = watermark;
    has_watermark_ = true;
  }

  /// True once any event or watermark was committed.
  bool any_seen() const { return has_event_ || has_watermark_; }
  /// Largest committed event time or watermark (0 before any_seen()).
  /// Query churn activates at the first pane boundary strictly after this.
  Timestamp max_seen() const {
    Timestamp m = has_event_ ? last_event_time_ : 0;
    if (has_watermark_ && watermark_ > m) m = watermark_;
    return m;
  }

 private:
  Timestamp last_event_time_ = 0;
  bool has_event_ = false;
  Timestamp watermark_ = 0;
  bool has_watermark_ = false;
};

struct RunMetrics {
  int64_t events = 0;
  int64_t emissions = 0;
  /// Time spent inside session calls (push/advance/close), excluding the
  /// caller's time between pushes — so streaming and batch ingestion report
  /// comparable engine throughput.
  double elapsed_seconds = 0.0;
  double avg_latency_seconds = 0.0;
  double max_latency_seconds = 0.0;
  double throughput_eps = 0.0;
  /// Peak engine-state footprint. Per Session: the exact high-water mark.
  /// Merged (ShardedSession): a sampled CONCURRENT high-water mark — the
  /// largest observed sum of simultaneous per-shard footprints, never the
  /// sum of per-shard peaks (shards peak at different times, so that sum
  /// overstated the concurrent footprint by up to the shard count).
  int64_t peak_memory_bytes = 0;
  /// Engine-state footprint at the time of the snapshot; per-shard workers
  /// publish it so the sharded front can sample the concurrent sum.
  int64_t current_memory_bytes = 0;
  /// Two-step windows that exceeded the trend budget.
  int64_t dnf_windows = 0;
  /// Partial OR/AND composition entries discarded because their window
  /// closed with at least one branch never emitting (two-step DNF, SHARON
  /// unsupported queries). Nonzero values flag dropped composed results.
  int64_t evicted_compositions = 0;
  /// Aggregated HAMLET statistics (HAMLET kinds only).
  HamletStats hamlet;
  /// Sharing decisions taken (dynamic policy only).
  int64_t decisions = 0;
  /// Runs dispatched by RunConfig::run_propagation (0 when off or on the
  /// per-event row path): the number of segmented batch spans fed through
  /// the engines in one call each. events / runs is the mean amortization
  /// the run path achieved.
  int64_t runs = 0;
  /// Histogram of dispatched run lengths: bucket i counts runs of length in
  /// [2^i, 2^(i+1)). Bucket 0 dominating means the stream interleaves types
  /// too finely for run propagation to pay; mass in higher buckets is the
  /// paper's bursty regime. Merged across shards by bucket-wise sum.
  std::vector<int64_t> run_len_hist;
  /// Sharded ingress only (empty/0 for plain Sessions) — the burst-adaptive
  /// ingress surface:
  /// Histogram of flushed staging-batch sizes across all shards: bucket i
  /// counts batch messages of size in [2^i, 2^(i+1)). Under adaptive
  /// batching the spread shows how the controller moved between hand-off
  /// (bucket 0) and full batches.
  std::vector<int64_t> shard_batch_hist;
  /// Group keys the skew-aware router diverted off their hash shard.
  int64_t rebalanced_keys = 0;
  /// Deepest any shard's ingress queue got, in messages (producer-observed).
  int64_t max_queue_depth_msgs = 0;
  /// Events processed per shard (index = shard id) — the imbalance surface
  /// the rebalancer optimizes.
  std::vector<int64_t> shard_events;
  /// Sticky key->shard assignments the rebalancing router currently holds
  /// (0 when rebalancing is off). With evict_idle_groups the front drains
  /// entries whose windows all closed, bounding this under key churn.
  int64_t rebalance_map_size = 0;
  /// Query-lifecycle counters (src/runtime/query_lifecycle.h). In a
  /// ShardedSession every shard applies the same broadcast churn ops, so
  /// the merge takes the MAX across shards instead of summing.
  int64_t queries_added = 0;
  int64_t queries_removed = 0;
  /// Pane-aligned sharing-plan hot swaps (explicit ApplySharingOverrides
  /// calls plus online re-optimizer swaps).
  int64_t plan_swaps = 0;
  /// Online re-optimizer activity (front/session only; shard workers run
  /// with re-optimization disabled and report 0).
  int64_t reopt_checks = 0;
  int64_t reopt_swaps = 0;
  /// Plan epochs live at snapshot time (1 = no churn in flight; higher
  /// values mean superseded epochs are still draining their open windows).
  int64_t active_epochs = 0;
  /// Group runners evicted by RunConfig::evict_idle_groups.
  int64_t evicted_idle_groups = 0;
  /// Group-key migrations executed by pane-boundary work stealing
  /// (RunConfig::work_stealing; counted on the ShardedSession front, 0
  /// elsewhere). Deterministic for a fixed stream and shard count.
  int64_t stolen_panes = 0;
  /// Events staged to BOTH the victim and the thief during a steal's
  /// duplication window (the victim's fenced windows still need them).
  /// The front subtracts this from the summed per-shard `events` so that
  /// counter always equals the ingested stream length; this field keeps
  /// the double-processing cost visible.
  int64_t duplicated_events = 0;
};

/// Folds `from` into `into` the way ShardedSession combines per-shard
/// metrics: counters (events, emissions, DNFs, evictions, decisions,
/// rebalanced keys, HAMLET stats, batch histogram buckets) and CURRENT
/// memory are summed; peak memory takes the max — shards peak at different
/// times, so summing per-shard peaks overstated the concurrent footprint
/// exactly the way summing per-shard rates overstated throughput, and the
/// max is the always-true lower bound which ShardedSession then raises with
/// its sampled concurrent high-water mark (see RunMetrics::
/// peak_memory_bytes); lifecycle counters (queries_added/removed,
/// plan_swaps, reopt_checks/swaps, active_epochs, rebalance_map_size) take
/// the MAX — churn ops are broadcast to and mirrored by every shard, so
/// summing would multiply them by the shard count; evicted idle groups are
/// per-shard state and sum; elapsed and max queue depth are the max over shards
/// (shards run concurrently over overlapping busy intervals, so summing
/// busy time would double-count wall time); throughput is recomputed as
/// merged events / merged elapsed — never summed, since summing per-shard
/// rates over overlapping intervals inflates the merge by up to the shard
/// count; avg latency is re-weighted by emission count and max latency is
/// the max; shard_events concatenates. Count fields stay deterministic for
/// a fixed shard count.
void MergeRunMetrics(RunMetrics& into, const RunMetrics& from);

/// Receives query results as their windows close. Implementations must not
/// retain the reference past the call.
class EmissionSink {
 public:
  virtual ~EmissionSink() = default;
  virtual void OnEmission(const Emission& emission) = 0;
};

/// Buffers every emission; Take() returns them sorted by
/// (window_start, query, group) — the historical batch Run() order.
class CollectingSink : public EmissionSink {
 public:
  void OnEmission(const Emission& emission) override {
    emissions_.push_back(emission);
  }

  /// Emissions in arrival (window-close) order.
  const std::vector<Emission>& emissions() const { return emissions_; }

  /// Moves the buffer out, sorted by (window_start, query, group).
  std::vector<Emission> Take();

 private:
  std::vector<Emission> emissions_;
};

/// Invokes a callback per emission (live dashboards, tests).
class CallbackSink : public EmissionSink {
 public:
  explicit CallbackSink(std::function<void(const Emission&)> fn)
      : fn_(std::move(fn)) {}

  void OnEmission(const Emission& emission) override { fn_(emission); }

 private:
  std::function<void(const Emission&)> fn_;
};

/// Streams emissions as CSV rows ("query,name,group,window_start,
/// window_end,value") to a FILE* the caller owns; writes the header on
/// construction. Constant memory — the bench-friendly sink.
class CsvSink : public EmissionSink {
 public:
  explicit CsvSink(std::FILE* out);

  void OnEmission(const Emission& emission) override;

  int64_t rows_written() const { return rows_written_; }

 private:
  std::FILE* out_;
  int64_t rows_written_ = 0;
};

/// See file comment. The plan must outlive the session; the sink (if any)
/// must outlive every Push/AdvanceTo/Close call.
class Session {
 public:
  /// Validates `config` and builds the component/engine state. `sink` may be
  /// nullptr to drop emissions (metrics-only runs, e.g. throughput benches).
  static Result<std::unique_ptr<Session>> Open(const WorkloadPlan& plan,
                                               const RunConfig& config,
                                               EmissionSink* sink);

  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Ingests one event. Events must be strictly increasing in time (the
  /// engines' contract) and at or after the last AdvanceTo watermark;
  /// violations return kInvalidArgument naming the offending timestamp and
  /// leave the session state untouched. After Close: kFailedPrecondition.
  Status Push(const Event& event);

  /// Ingests a time-ordered batch; stops at the first invalid event.
  Status PushBatch(std::span<const Event> events);

  /// Declares that no event before `watermark` will arrive, closing every
  /// pane/window that ends at or before it without waiting for an event.
  /// The watermark must not regress below prior events or watermarks.
  Status AdvanceTo(Timestamp watermark);

  /// Adds a named query to the LIVE session (query lifecycle subsystem, see
  /// src/runtime/query_lifecycle.h). The query starts emitting at the
  /// returned pane boundary — the first boundary strictly after everything
  /// already pushed — and queries that were already running keep their open
  /// trend aggregations: existing windows drain under the old plan epoch
  /// while windows from the boundary on run under the new one, so
  /// per-interval emissions match a fresh session (query_churn_test).
  /// `activate_at` < 0 (default) computes the boundary internally and
  /// enforces the kMaxLiveEpochs cap; ShardedSession passes an explicit
  /// front-computed boundary so every shard activates identically.
  /// The query's event types and attributes must already exist in the
  /// schema; unknown names are rejected (validation never registers names).
  Result<Timestamp> AddQuery(const Query& query, Timestamp activate_at = -1);

  /// Removes a query by name at the returned pane boundary: its windows
  /// open before the boundary drain and emit normally, then the old epoch's
  /// state is evicted. Removing the last query is rejected — Close instead.
  Result<Timestamp> RemoveQuery(const std::string& name,
                                Timestamp activate_at = -1);

  /// Hot-swaps the sharing plan of the CURRENT query set (merged template,
  /// predicate program and cohort masks rebuilt) at the returned boundary.
  /// Sharing never changes emission values, so the swap is invisible in
  /// results. This is the online re-optimizer's apply path, public for
  /// tests/tools.
  Result<Timestamp> ApplySharingOverrides(
      std::span<const SharingOverride> overrides, Timestamp activate_at = -1);

  /// Online re-optimizer decision log (empty unless
  /// RunConfig::reoptimize_every_panes > 0).
  const std::vector<ReoptDecision>& reopt_log() const {
    return reoptimizer_.log();
  }

  /// Plan epochs currently live (1 = steady state; >1 while churn drains).
  int live_epochs() const { return static_cast<int>(runtimes_.size()); }

  /// The session's CURRENT query set (reflects Add/RemoveQuery).
  const std::vector<Query>& queries() const { return lifecycle_.queries(); }

  /// Work-stealing hand-off payload for one group key: per component (in
  /// the session's deterministic component order), whether the victim held
  /// a runner — the thief eagerly creates runners exactly for those, so
  /// retroactive window opening matches the single-threaded reference —
  /// plus the runner's HAMLET per-type sharing statistics, which warm-start
  /// the thief's burst/graphlet moving averages (sharing decisions never
  /// change emission values, so the seed is a pure performance carry-over).
  struct GroupMigration {
    struct ComponentState {
      bool runner_exists = false;
      std::vector<HamletLaneStats> lane_stats;
    };
    std::vector<ComponentState> components;
  };

  /// Victim side of a pane-boundary group steal (ShardedSession steal
  /// protocol; requires a single live plan epoch — stealing excludes query
  /// churn). Bounds the key's existing runners to windows starting before
  /// `emit_until` (windows already open at/after it are cancelled unemitted
  /// — they hold no events yet and the thief re-opens them), blocks NEW
  /// runner creation for the key until `drop_after` (events near the
  /// boundary are duplicated to both shards; a fresh victim-side runner
  /// would double the thief's retroactive windows), and schedules the
  /// fenced runners to be dropped once a pane boundary reaches
  /// `drop_after`, by which time all their windows have closed. Returns
  /// the hand-off payload for AdoptGroup.
  GroupMigration FenceGroup(int64_t group_key, Timestamp emit_until,
                            Timestamp drop_after);

  /// Thief side: first advances panes to `emit_from` (every window the
  /// victim still owns is then already open or closed here, and any
  /// previously fenced incarnation of the key has dropped), then eagerly
  /// creates runners for exactly the components the victim had, emitting
  /// windows from `emit_from` on. Components without a victim runner are
  /// left to create naturally on their first event — unbounded, exactly
  /// like the reference.
  void AdoptGroup(int64_t group_key, Timestamp emit_from,
                  const GroupMigration& migration);

  /// Flushes all remaining open windows and returns the final metrics.
  /// A second Close returns kFailedPrecondition (the first call's metrics
  /// remain available through MetricsSnapshot).
  Result<RunMetrics> Close();

  /// Metrics accumulated so far, without flushing open windows (live
  /// dashboards; emission-dependent fields lag until windows close).
  RunMetrics MetricsSnapshot() const;

 private:
  struct Component;
  struct GroupRunner;
  /// One plan epoch: a compiled plan plus ALL state that depends on it
  /// (predicate program, components, engines, columnar staging, pane
  /// clock), bounded to emitting windows starting in [emit_from,
  /// emit_until). Query churn and plan swaps append a new epoch activated
  /// at a pane boundary; superseded epochs drain and retire.
  struct Runtime;

  Session(const WorkloadPlan& plan, const RunConfig& config,
          EmissionSink* sink);

  /// Builds components/engines/masks for rt.plan (shared by Open and churn).
  void InitRuntime(Runtime& rt);
  /// Activates `epoch` as a new runtime at `activate_at` (< 0: next pane
  /// boundary after the gate's max_seen), superseding the current runtimes.
  Result<Timestamp> Swap(QueryLifecycle::CompiledEpoch epoch,
                         Timestamp activate_at);
  /// Retires superseded runtimes whose emitting windows all closed.
  void ReapRuntimes();
  void RetireRuntime(size_t index);
  /// Runs the pane-cadenced re-optimization check and hot-swaps on drift.
  void MaybeReoptimize();
  HamletStats AggregateHamletStats() const;

  /// `arrival` is the event's arrival wall time; pass a negative value to
  /// sample it internally (batch path). `passes` (columnar path) carries the
  /// batch-computed predicate pass-set for `e` — HAMLET engines then skip
  /// their per-event predicate loop; nullptr (row path) lets them
  /// self-filter. Non-HAMLET engines always self-filter, so `passes` only
  /// changes where the same predicate math runs, never the results.
  void ProcessEvent(Runtime& rt, const Event& e, double arrival,
                    const QuerySet* passes = nullptr);
  /// True when pushes should flow through the columnar batch path.
  bool UseColumnar(const Runtime& rt) const;
  /// True when PushBatch should flow through run-granular dispatch
  /// (requires columnar staging; see RunConfig::run_propagation).
  bool UseRunPath() const;
  /// Run-granular batch dispatch: segments staged rows [0, rows) of
  /// `rt.batch_scratch` into runs and feeds each through the engines in one
  /// call (`events` are the same rows, used where whole Events are needed).
  void DispatchRuns(Runtime& rt, std::span<const Event> events, int rows);
  /// Pass-set for staged row `i` after EvalBatch: all exec queries, minus
  /// predicated ones whose selection bit for `i` is clear.
  QuerySet PassesForRow(const Runtime& rt, int i) const;
  void AdvancePaneTo(Runtime& rt, Timestamp new_pane_start);
  void CloseExpiredWindows(Runtime& rt, GroupRunner& runner, Timestamp now);
  void OpenDueWindows(Runtime& rt, GroupRunner& runner, Timestamp pane_start,
                      bool retroactive);
  void EmitExecValue(Runtime& rt, int exec_id, int64_t group_key,
                     Timestamp window_start, Timestamp window_end,
                     double value, double arrival_wall);
  /// Drops pending composition entries whose window closed at or before
  /// `boundary` with a branch missing — they can never complete (see
  /// RunMetrics::evicted_compositions).
  void EvictDeadCompositions(Runtime& rt, Timestamp boundary);
  void FillMetrics(RunMetrics* m) const;
  int64_t CurrentMemory() const;

  RunConfig config_;
  EmissionSink* sink_;
  /// Live query set + epoch compiler (tentpole subsystem).
  QueryLifecycle lifecycle_;
  /// Live plan epochs, oldest first; back() is the lead (newest) epoch.
  /// Steady state holds exactly one.
  std::vector<std::unique_ptr<Runtime>> runtimes_;
  OnlineReoptimizer reoptimizer_;
  BurstStatsCollector collector_;
  bool reopt_enabled_ = false;
  Timestamp last_reopt_pane_ = 0;
  bool reopt_pane_seen_ = false;
  /// Fenced group keys (victim side of a steal): while a key is present,
  /// ProcessEvent creates NO new runner for it — duplicated boundary
  /// events feed only the fenced runners that already exist. The value is
  /// the fence's drop_after; entries sweep once a pane boundary reaches
  /// it. Empty except on steal victims, so the hot path pays one
  /// empty-check.
  std::map<int64_t, Timestamp> group_bounds_;
  /// Accumulators for state that no longer exists: retired epochs' and
  /// evicted idle groups' engine stats and policy decisions.
  HamletStats retired_stats_;
  int64_t retired_decisions_ = 0;
  int64_t evicted_idle_groups_ = 0;
  int64_t queries_added_ = 0;
  int64_t queries_removed_ = 0;
  int64_t plan_swaps_ = 0;
  int64_t evicted_compositions_ = 0;
  /// Latency samples per emission.
  double latency_sum_ = 0.0;
  double latency_max_ = 0.0;
  int64_t latency_count_ = 0;
  int64_t peak_memory_ = 0;
  int64_t dnf_windows_ = 0;
  int64_t events_ = 0;
  /// Run-shape counters behind RunMetrics::runs / run_len_hist.
  int64_t runs_ = 0;
  std::vector<int64_t> run_len_hist_;
  OrderingGate gate_;
  /// Sum of wall time spent inside session calls.
  double busy_seconds_ = 0.0;
  bool closed_ = false;
  RunMetrics final_metrics_;
};

}  // namespace hamlet

#endif  // HAMLET_RUNTIME_SESSION_H_
