// Push-based streaming session: the runtime's primary entry point.
//
// A Session evaluates a compiled workload incrementally: callers push events
// (singly or in batches) as they arrive, and every query result is delivered
// to a pluggable EmissionSink the moment its window closes — no O(stream)
// input buffer and no grow-forever output buffer on the hot path.
//
// Lifecycle:
//   Result<std::unique_ptr<Session>> s = Session::Open(plan, config, &sink);
//   s.value()->Push(event);              // or PushBatch(span)
//   s.value()->AdvanceTo(watermark);     // force window closure, no event
//   RunMetrics m = s.value()->Close().value();  // final flush + metrics
//
// After Close, every entry point (including a second Close) returns
// kFailedPrecondition instead of relying on caller discipline.
//
// The session owns all stream-time machinery (paper §3.1 pre-processing +
// §6.1 metrics): partitioning exec queries into components connected by
// share groups, partitioning each component's stream by its group-by
// attribute, pane-aligned window management (tumbling and sliding),
// dispatch to the selected engine (HAMLET dynamic/static/no-share, GRETA
// graph/prefix, two-step, SHARON), OR/AND branch composition, and the
// paper's latency / throughput / peak-memory accounting. The batch
// StreamExecutor::Run in src/runtime/executor.h is a thin wrapper over this
// class with a CollectingSink.
#ifndef HAMLET_RUNTIME_SESSION_H_
#define HAMLET_RUNTIME_SESSION_H_

#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/baselines/sharon_engine.h"
#include "src/baselines/two_step_engine.h"
#include "src/common/status.h"
#include "src/greta/greta_engine.h"
#include "src/hamlet/batch_eval.h"
#include "src/optimizer/policies.h"

namespace hamlet {

enum class EngineKind {
  kHamletDynamic,  ///< the paper's HAMLET: per-burst benefit decisions
  kHamletStatic,   ///< static optimizer: always share (Figs. 12/13 baseline)
  kHamletNoShare,  ///< HAMLET machinery, sharing disabled
  kGretaGraph,     ///< GRETA baseline, faithful O(n^2) graph mode
  kGretaPrefix,    ///< GRETA with running sums (tuned-baseline ablation)
  kTwoStep,        ///< MCEP-style construct-then-aggregate
  kSharon,         ///< SHARON-style fixed-length flattening
};

const char* EngineKindName(EngineKind kind);

struct RunConfig {
  EngineKind kind = EngineKind::kHamletDynamic;
  /// SHARON's provisioned longest-match length l. Must be >= 1.
  int sharon_max_length = 64;
  /// Two-step trend budget per window; exceeding it records a DNF.
  /// Must be > 0.
  int64_t two_step_budget = 20'000'000;
  CostModelVariant cost_variant = CostModelVariant::kRefined;
  /// Batch Run() only: keep per-window emissions (tests); disable for large
  /// benches. Sessions ignore this — the sink choice governs delivery.
  bool collect_emissions = true;
  /// Worker shards for ShardedSession (src/runtime/sharded_session.h):
  /// events are hash-partitioned by group-by key across this many threads.
  /// Must be in [1, kMaxShards]. Plain Session ignores it (always 1).
  int num_shards = 1;
  /// Per-shard ingress queue capacity in *messages* (event batches + control
  /// messages) before Push applies backpressure. Must be >= 2. Rounded up to
  /// a power of two.
  int shard_queue_capacity = 8192;
  /// ShardedSession ingress granularity: events staged per shard before the
  /// producer hands one batch message to that shard's queue. 1 reproduces
  /// per-event hand-off; larger values amortize the queue traffic across the
  /// batch. Watermarks, Close and PushPrePartitioned flush staging, so
  /// results never depend on this knob. Must be >= 1. Plain Session ignores
  /// it.
  int shard_batch_size = 128;
};

/// Upper bound on RunConfig::num_shards — far above any sane core count,
/// low enough to catch garbage (e.g. an uninitialized int) at Open.
inline constexpr int kMaxShards = 1024;

/// Checks the config invariants documented above; Session::Open (and thus
/// Run) fails fast with kInvalidArgument instead of tripping deep inside an
/// engine.
Status ValidateRunConfig(const RunConfig& config);

/// One query result for one (group, window). Self-describing: carries the
/// window bounds and the query's name so sinks can render results without
/// holding the Workload.
struct Emission {
  QueryId query = -1;
  int64_t group_key = 0;
  Timestamp window_start = 0;
  Timestamp window_end = 0;
  double value = 0.0;
  std::string query_name;
};

/// Tracks the ingestion-side ordering contract shared by Session and
/// ShardedSession: event times strictly increase, watermarks never regress,
/// and no event arrives behind a watermark. Check* report kInvalidArgument
/// naming the offending timestamp; Commit* record an accepted call.
class OrderingGate {
 public:
  Status CheckEvent(Timestamp event_time) const;
  void CommitEvent(Timestamp event_time) {
    last_event_time_ = event_time;
    has_event_ = true;
  }

  Status CheckWatermark(Timestamp watermark) const;
  void CommitWatermark(Timestamp watermark) {
    watermark_ = watermark;
    has_watermark_ = true;
  }

 private:
  Timestamp last_event_time_ = 0;
  bool has_event_ = false;
  Timestamp watermark_ = 0;
  bool has_watermark_ = false;
};

struct RunMetrics {
  int64_t events = 0;
  int64_t emissions = 0;
  /// Time spent inside session calls (push/advance/close), excluding the
  /// caller's time between pushes — so streaming and batch ingestion report
  /// comparable engine throughput.
  double elapsed_seconds = 0.0;
  double avg_latency_seconds = 0.0;
  double max_latency_seconds = 0.0;
  double throughput_eps = 0.0;
  int64_t peak_memory_bytes = 0;
  /// Two-step windows that exceeded the trend budget.
  int64_t dnf_windows = 0;
  /// Partial OR/AND composition entries discarded because their window
  /// closed with at least one branch never emitting (two-step DNF, SHARON
  /// unsupported queries). Nonzero values flag dropped composed results.
  int64_t evicted_compositions = 0;
  /// Aggregated HAMLET statistics (HAMLET kinds only).
  HamletStats hamlet;
  /// Sharing decisions taken (dynamic policy only).
  int64_t decisions = 0;
};

/// Folds `from` into `into` the way ShardedSession combines per-shard
/// metrics: counters (events, emissions, DNFs, evictions, decisions, HAMLET
/// stats) and peak memory are summed — shards hold their state
/// simultaneously, so the aggregate footprint is the sum of per-shard
/// peaks; elapsed is the max over shards (shards run concurrently over
/// overlapping busy intervals, so summing busy time would double-count
/// wall time); throughput is recomputed as merged events / merged elapsed —
/// never summed, since summing per-shard rates over overlapping intervals
/// inflates the merge by up to the shard count; avg latency is re-weighted
/// by emission count and max latency is the max. All non-wall-clock fields
/// stay deterministic for a fixed shard count.
void MergeRunMetrics(RunMetrics& into, const RunMetrics& from);

/// Receives query results as their windows close. Implementations must not
/// retain the reference past the call.
class EmissionSink {
 public:
  virtual ~EmissionSink() = default;
  virtual void OnEmission(const Emission& emission) = 0;
};

/// Buffers every emission; Take() returns them sorted by
/// (window_start, query, group) — the historical batch Run() order.
class CollectingSink : public EmissionSink {
 public:
  void OnEmission(const Emission& emission) override {
    emissions_.push_back(emission);
  }

  /// Emissions in arrival (window-close) order.
  const std::vector<Emission>& emissions() const { return emissions_; }

  /// Moves the buffer out, sorted by (window_start, query, group).
  std::vector<Emission> Take();

 private:
  std::vector<Emission> emissions_;
};

/// Invokes a callback per emission (live dashboards, tests).
class CallbackSink : public EmissionSink {
 public:
  explicit CallbackSink(std::function<void(const Emission&)> fn)
      : fn_(std::move(fn)) {}

  void OnEmission(const Emission& emission) override { fn_(emission); }

 private:
  std::function<void(const Emission&)> fn_;
};

/// Streams emissions as CSV rows ("query,name,group,window_start,
/// window_end,value") to a FILE* the caller owns; writes the header on
/// construction. Constant memory — the bench-friendly sink.
class CsvSink : public EmissionSink {
 public:
  explicit CsvSink(std::FILE* out);

  void OnEmission(const Emission& emission) override;

  int64_t rows_written() const { return rows_written_; }

 private:
  std::FILE* out_;
  int64_t rows_written_ = 0;
};

/// See file comment. The plan must outlive the session; the sink (if any)
/// must outlive every Push/AdvanceTo/Close call.
class Session {
 public:
  /// Validates `config` and builds the component/engine state. `sink` may be
  /// nullptr to drop emissions (metrics-only runs, e.g. throughput benches).
  static Result<std::unique_ptr<Session>> Open(const WorkloadPlan& plan,
                                               const RunConfig& config,
                                               EmissionSink* sink);

  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Ingests one event. Events must be strictly increasing in time (the
  /// engines' contract) and at or after the last AdvanceTo watermark;
  /// violations return kInvalidArgument naming the offending timestamp and
  /// leave the session state untouched. After Close: kFailedPrecondition.
  Status Push(const Event& event);

  /// Ingests a time-ordered batch; stops at the first invalid event.
  Status PushBatch(std::span<const Event> events);

  /// Declares that no event before `watermark` will arrive, closing every
  /// pane/window that ends at or before it without waiting for an event.
  /// The watermark must not regress below prior events or watermarks.
  Status AdvanceTo(Timestamp watermark);

  /// Flushes all remaining open windows and returns the final metrics.
  /// A second Close returns kFailedPrecondition (the first call's metrics
  /// remain available through MetricsSnapshot).
  Result<RunMetrics> Close();

  /// Metrics accumulated so far, without flushing open windows (live
  /// dashboards; emission-dependent fields lag until windows close).
  RunMetrics MetricsSnapshot() const;

 private:
  struct Component;
  struct GroupRunner;

  Session(const WorkloadPlan& plan, const RunConfig& config,
          EmissionSink* sink);

  /// `arrival` is the event's arrival wall time; pass a negative value to
  /// sample it internally (batch path).
  void ProcessEvent(const Event& e, double arrival);
  void AdvancePaneTo(Timestamp new_pane_start);
  void CloseExpiredWindows(GroupRunner& runner, Timestamp now);
  void OpenDueWindows(GroupRunner& runner, Timestamp pane_start,
                      bool retroactive);
  void EmitExecValue(int exec_id, int64_t group_key, Timestamp window_start,
                     Timestamp window_end, double value, double arrival_wall);
  /// Drops pending composition entries whose window closed at or before
  /// `boundary` with a branch missing — they can never complete (see
  /// RunMetrics::evicted_compositions).
  void EvictDeadCompositions(Timestamp boundary);
  void FillMetrics(RunMetrics* m) const;
  int64_t CurrentMemory() const;

  const WorkloadPlan* plan_;
  RunConfig config_;
  EmissionSink* sink_;
  std::vector<std::unique_ptr<Component>> components_;
  /// Per exec query: which event types its pattern mentions. Drives latency
  /// attribution — only events a query can react to stamp its windows'
  /// arrival clocks.
  std::vector<std::vector<bool>> exec_type_masks_;
  /// Branch values awaiting composition: (query, group, window) -> values.
  std::map<std::tuple<QueryId, int64_t, Timestamp>, std::vector<double>>
      pending_compositions_;
  int64_t evicted_compositions_ = 0;
  /// Latency samples per emission.
  double latency_sum_ = 0.0;
  double latency_max_ = 0.0;
  int64_t latency_count_ = 0;
  int64_t peak_memory_ = 0;
  int64_t dnf_windows_ = 0;
  int64_t events_ = 0;
  Timestamp pane_start_ = 0;
  bool pane_started_ = false;
  OrderingGate gate_;
  /// Sum of wall time spent inside session calls.
  double busy_seconds_ = 0.0;
  bool closed_ = false;
  RunMetrics final_metrics_;
};

}  // namespace hamlet

#endif  // HAMLET_RUNTIME_SESSION_H_
