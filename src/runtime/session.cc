#include "src/runtime/session.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <functional>
#include <limits>
#include <tuple>
#include <utility>

namespace hamlet {

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double ClockNow(const std::function<double()>& override_fn) {
  return override_fn ? override_fn() : MonotonicSeconds();
}

namespace {

/// RAII accumulator for the session's busy-time metric.
class BusyScope {
 public:
  BusyScope(double* total, const std::function<double()>& clock)
      : total_(total), clock_(clock), start_(ClockNow(clock)) {}
  ~BusyScope() { *total_ += ClockNow(clock_) - start_; }

  double start() const { return start_; }

 private:
  double* total_;
  const std::function<double()>& clock_;
  double start_;
};

}  // namespace

const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kHamletDynamic:
      return "hamlet";
    case EngineKind::kHamletStatic:
      return "hamlet_static";
    case EngineKind::kHamletNoShare:
      return "hamlet_noshare";
    case EngineKind::kGretaGraph:
      return "greta";
    case EngineKind::kGretaPrefix:
      return "greta_prefix";
    case EngineKind::kTwoStep:
      return "two_step(mcep)";
    case EngineKind::kSharon:
      return "sharon";
  }
  return "?";
}

Status ValidateRunConfig(const RunConfig& config) {
  if (config.sharon_max_length < 1) {
    return Status::InvalidArgument(
        "sharon_max_length must be >= 1, got " +
        std::to_string(config.sharon_max_length));
  }
  if (config.two_step_budget <= 0) {
    return Status::InvalidArgument(
        "two_step_budget must be > 0, got " +
        std::to_string(config.two_step_budget));
  }
  if (config.num_shards < 1 || config.num_shards > kMaxShards) {
    return Status::InvalidArgument(
        "num_shards must be in [1, " + std::to_string(kMaxShards) +
        "], got " + std::to_string(config.num_shards));
  }
  if (config.shard_queue_capacity < 2) {
    return Status::InvalidArgument(
        "shard_queue_capacity must be >= 2, got " +
        std::to_string(config.shard_queue_capacity));
  }
  if (config.shard_batch_size < 1) {
    return Status::InvalidArgument(
        "shard_batch_size must be >= 1, got " +
        std::to_string(config.shard_batch_size));
  }
  // shard_queue_capacity counts MESSAGES; the event footprint a full queue
  // implies is capacity * batch_size, so two individually-sane knobs can
  // compound into gigabytes of buffered events. Relate them explicitly —
  // against the power-of-two capacity the ring actually allocates, not the
  // requested one, so the enforced cap matches the runtime footprint.
  const int64_t ring_capacity = static_cast<int64_t>(std::bit_ceil(
      static_cast<uint64_t>(std::max(config.shard_queue_capacity, 2))));
  const int64_t implied_events =
      ring_capacity * static_cast<int64_t>(config.shard_batch_size);
  if (implied_events > kMaxQueuedEventsPerShard) {
    return Status::InvalidArgument(
        "shard_queue_capacity is counted in messages, so shard_queue_capacity"
        " (" +
        std::to_string(config.shard_queue_capacity) + ", ring-rounded to " +
        std::to_string(ring_capacity) + ") * shard_batch_size (" +
        std::to_string(config.shard_batch_size) + ") = " +
        std::to_string(implied_events) +
        " buffered events per shard exceeds the " +
        std::to_string(kMaxQueuedEventsPerShard) +
        " cap; shrink one of the two knobs");
  }
  if (config.shard_rebalance_threshold < 0) {
    return Status::InvalidArgument(
        "shard_rebalance_threshold must be >= 0 (0 disables rebalancing), "
        "got " +
        std::to_string(config.shard_rebalance_threshold));
  }
  return Status::Ok();
}

Status OrderingGate::CheckEvent(Timestamp event_time) const {
  // The engines require strictly increasing event times; watermarks only
  // promise no event before them.
  if (has_event_ && event_time <= last_event_time_) {
    return Status::InvalidArgument(
        "out-of-order event at t=" + std::to_string(event_time) +
        " (last event at t=" + std::to_string(last_event_time_) + ")");
  }
  if (has_watermark_ && event_time < watermark_) {
    return Status::InvalidArgument(
        "out-of-order event at t=" + std::to_string(event_time) +
        " (watermark at t=" + std::to_string(watermark_) + ")");
  }
  return Status::Ok();
}

Status OrderingGate::CheckWatermark(Timestamp watermark) const {
  if ((has_event_ && watermark < last_event_time_) ||
      (has_watermark_ && watermark < watermark_)) {
    return Status::InvalidArgument(
        "watermark t=" + std::to_string(watermark) + " regresses behind t=" +
        std::to_string(has_watermark_
                           ? std::max(watermark_, last_event_time_)
                           : last_event_time_));
  }
  return Status::Ok();
}

void MergeRunMetrics(RunMetrics& into, const RunMetrics& from) {
  const int64_t emissions = into.emissions + from.emissions;
  if (emissions > 0) {
    into.avg_latency_seconds =
        (into.avg_latency_seconds * static_cast<double>(into.emissions) +
         from.avg_latency_seconds * static_cast<double>(from.emissions)) /
        static_cast<double>(emissions);
  }
  into.events += from.events;
  into.emissions = emissions;
  into.elapsed_seconds = std::max(into.elapsed_seconds, from.elapsed_seconds);
  into.max_latency_seconds =
      std::max(into.max_latency_seconds, from.max_latency_seconds);
  // Shards run concurrently over overlapping busy intervals: summing their
  // rates would report ~N x the real rate at N shards. Recompute the merged
  // rate from the merged totals instead.
  into.throughput_eps =
      into.elapsed_seconds <= 0
          ? 0.0
          : static_cast<double>(into.events) / into.elapsed_seconds;
  // Shards peak at different times: summing per-shard peaks overstates the
  // concurrent footprint the same way summing rates overstated throughput.
  // The max is the always-true lower bound; ShardedSession raises it with a
  // sampled concurrent high-water mark over the sum of live footprints.
  into.peak_memory_bytes =
      std::max(into.peak_memory_bytes, from.peak_memory_bytes);
  into.current_memory_bytes += from.current_memory_bytes;
  into.dnf_windows += from.dnf_windows;
  into.evicted_compositions += from.evicted_compositions;
  into.hamlet.events += from.hamlet.events;
  into.hamlet.bursts_total += from.hamlet.bursts_total;
  into.hamlet.bursts_shared += from.hamlet.bursts_shared;
  into.hamlet.graphlets_opened += from.hamlet.graphlets_opened;
  into.hamlet.graphlets_shared += from.hamlet.graphlets_shared;
  into.hamlet.snapshots_created += from.hamlet.snapshots_created;
  into.hamlet.event_snapshots += from.hamlet.event_snapshots;
  into.hamlet.splits += from.hamlet.splits;
  into.hamlet.merges += from.hamlet.merges;
  into.hamlet.ops += from.hamlet.ops;
  into.decisions += from.decisions;
  if (into.shard_batch_hist.size() < from.shard_batch_hist.size()) {
    into.shard_batch_hist.resize(from.shard_batch_hist.size(), 0);
  }
  for (size_t i = 0; i < from.shard_batch_hist.size(); ++i) {
    into.shard_batch_hist[i] += from.shard_batch_hist[i];
  }
  into.rebalanced_keys += from.rebalanced_keys;
  into.max_queue_depth_msgs =
      std::max(into.max_queue_depth_msgs, from.max_queue_depth_msgs);
  into.shard_events.insert(into.shard_events.end(), from.shard_events.begin(),
                           from.shard_events.end());
}

std::vector<Emission> CollectingSink::Take() {
  std::sort(emissions_.begin(), emissions_.end(),
            [](const Emission& a, const Emission& b) {
              return std::tie(a.window_start, a.query, a.group_key) <
                     std::tie(b.window_start, b.query, b.group_key);
            });
  return std::move(emissions_);
}

CsvSink::CsvSink(std::FILE* out) : out_(out) {
  std::fprintf(out_, "query,name,group,window_start,window_end,value\n");
}

void CsvSink::OnEmission(const Emission& emission) {
  std::fprintf(out_, "%d,%s,%lld,%lld,%lld,%.17g\n", emission.query,
               emission.query_name.c_str(),
               static_cast<long long>(emission.group_key),
               static_cast<long long>(emission.window_start),
               static_cast<long long>(emission.window_end), emission.value);
  ++rows_written_;
}

/// One open window instance inside a group runner.
struct WindowSlot {
  /// Exec id (HAMLET/GRETA kinds) or cohort index (two-step/SHARON).
  int owner = -1;
  Timestamp ws = 0;
  Timestamp we = 0;
  ContextId ctx = -1;
  double last_arrival_wall = 0.0;
  std::unique_ptr<GretaEngine> greta;
  std::unique_ptr<TwoStepEngine> two_step;
  std::unique_ptr<SharonEngine> sharon;
};

struct Session::Component {
  QuerySet members;
  AttrId group_by = Schema::kInvalidId;
  std::vector<bool> type_mask;  ///< relevant event types
  /// Unique window specs with the members using each; two-step/SHARON run
  /// one engine per (cohort, window instance).
  std::vector<std::pair<WindowSpec, QuerySet>> cohorts;
  /// Union of the member exec queries' type masks, per cohort — the
  /// cohort-kind analogue of Session::exec_type_masks_.
  std::vector<std::vector<bool>> cohort_type_masks;
  std::unique_ptr<SharingPolicy> policy;
  std::map<int64_t, std::unique_ptr<GroupRunner>> groups;
};

struct Session::GroupRunner {
  Component* comp = nullptr;
  int64_t group_key = 0;
  std::unique_ptr<HamletEngine> hamlet;
  std::vector<WindowSlot> windows;
};

Result<std::unique_ptr<Session>> Session::Open(const WorkloadPlan& plan,
                                               const RunConfig& config,
                                               EmissionSink* sink) {
  Status valid = ValidateRunConfig(config);
  if (!valid.ok()) return valid;
  // Resolve every event predicate against the schema ONCE, regardless of the
  // columnar setting: an unresolved type/attribute name fails Open with
  // kInvalidArgument here instead of tripping a per-event DCHECK (or reading
  // a zero) deep inside an engine.
  Result<PredicateProgram> program = CompilePredicateProgram(plan);
  if (!program.ok()) return program.status();
  auto session = std::unique_ptr<Session>(new Session(plan, config, sink));
  session->pred_program_ = std::move(program).value();
  return session;
}

Session::Session(const WorkloadPlan& plan, const RunConfig& config,
                 EmissionSink* sink)
    : plan_(&plan), config_(config), sink_(sink) {
  // Connected components over share groups (union-find).
  const int n = plan.num_exec();
  std::vector<int> parent(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) parent[static_cast<size_t>(i)] = i;
  std::function<int(int)> find = [&](int x) {
    while (parent[static_cast<size_t>(x)] != x) {
      parent[static_cast<size_t>(x)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
      x = parent[static_cast<size_t>(x)];
    }
    return x;
  };
  for (const ShareGroup& g : plan.share_groups) {
    int root = -1;
    g.members.ForEach([&](QueryId q) {
      if (root < 0) {
        root = find(q);
      } else {
        parent[static_cast<size_t>(find(q))] = root;
      }
    });
  }
  std::map<int, Component*> by_root;
  for (int i = 0; i < n; ++i) {
    int root = find(i);
    auto it = by_root.find(root);
    Component* comp;
    if (it == by_root.end()) {
      components_.push_back(std::make_unique<Component>());
      comp = components_.back().get();
      by_root[root] = comp;
    } else {
      comp = it->second;
    }
    comp->members.Insert(i);
  }
  all_execs_ = QuerySet::FirstN(n);
  batch_scratch_.ResetSchema(plan.workload->schema()->num_attrs());
  const int num_types = plan.workload->schema()->num_types();
  exec_type_masks_.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    exec_type_masks_[static_cast<size_t>(i)].assign(
        static_cast<size_t>(num_types), false);
    for (TypeId t :
         plan.exec_queries[static_cast<size_t>(i)].tmpl.pattern.AllTypes()) {
      exec_type_masks_[static_cast<size_t>(i)][static_cast<size_t>(t)] = true;
    }
  }
  for (auto& comp : components_) {
    comp->type_mask.assign(static_cast<size_t>(num_types), false);
    comp->members.ForEach([&](QueryId q) {
      const ExecQuery& eq = plan.exec_queries[static_cast<size_t>(q)];
      // Members of a component share the group-by attribute (Definition 5).
      comp->group_by = eq.group_by;
      const std::vector<bool>& qm = exec_type_masks_[static_cast<size_t>(q)];
      for (size_t t = 0; t < qm.size(); ++t) {
        if (qm[t]) comp->type_mask[t] = true;
      }
      bool found = false;
      for (auto& [spec, set] : comp->cohorts) {
        if (spec == eq.window) {
          set.Insert(q);
          found = true;
        }
      }
      if (!found) comp->cohorts.push_back({eq.window, QuerySet::Single(q)});
    });
    comp->cohort_type_masks.resize(comp->cohorts.size());
    for (size_t c = 0; c < comp->cohorts.size(); ++c) {
      std::vector<bool>& mask = comp->cohort_type_masks[c];
      mask.assign(static_cast<size_t>(num_types), false);
      comp->cohorts[c].second.ForEach([&](QueryId q) {
        const std::vector<bool>& qm = exec_type_masks_[static_cast<size_t>(q)];
        for (size_t t = 0; t < qm.size(); ++t) {
          if (qm[t]) mask[t] = true;
        }
      });
    }
    switch (config_.kind) {
      case EngineKind::kHamletDynamic:
        comp->policy =
            std::make_unique<DynamicBenefitPolicy>(config_.cost_variant);
        break;
      case EngineKind::kHamletStatic:
        comp->policy = std::make_unique<AlwaysSharePolicy>();
        break;
      default:
        comp->policy = std::make_unique<NeverSharePolicy>();
        break;
    }
  }
}

Session::~Session() = default;

void Session::OpenDueWindows(GroupRunner& runner, Timestamp pane_start,
                             bool retroactive) {
  Component& comp = *runner.comp;
  const bool hamlet_kind = runner.hamlet != nullptr;
  const bool cohort_kind = config_.kind == EngineKind::kTwoStep ||
                           config_.kind == EngineKind::kSharon;
  auto open_one = [&](int owner, Timestamp ws, Timestamp within) {
    WindowSlot slot;
    slot.owner = owner;
    slot.ws = ws;
    slot.we = ws + within;
    slot.last_arrival_wall = ClockNow(config_.clock_override);
    if (cohort_kind) {
      const QuerySet& cohort_members =
          comp.cohorts[static_cast<size_t>(owner)].second;
      if (config_.kind == EngineKind::kTwoStep) {
        slot.two_step = std::make_unique<TwoStepEngine>(
            *plan_, cohort_members, config_.two_step_budget);
      } else {
        slot.sharon = std::make_unique<SharonEngine>(
            *plan_, cohort_members, config_.sharon_max_length);
      }
    } else if (hamlet_kind) {
      slot.ctx = runner.hamlet->OpenContext(owner, ws, slot.we);
    } else {
      slot.greta = std::make_unique<GretaEngine>(
          plan_->exec_queries[static_cast<size_t>(owner)],
          config_.kind == EngineKind::kGretaPrefix ? GretaMode::kPrefixSum
                                                   : GretaMode::kGraph);
    }
    runner.windows.push_back(std::move(slot));
  };
  auto open_for = [&](int owner, const WindowSpec& spec) {
    if (retroactive) {
      // New runner: open every slide-aligned instance covering this pane.
      // The group had no earlier events, so the retroactive spans are empty
      // and the counts exact.
      Timestamp first = (pane_start / spec.slide) * spec.slide;
      for (Timestamp ws = first; ws > pane_start - spec.within && ws >= 0;
           ws -= spec.slide) {
        open_one(owner, ws, spec.within);
      }
    } else if (pane_start % spec.slide == 0) {
      open_one(owner, pane_start, spec.within);
    }
  };
  if (cohort_kind) {
    for (size_t c = 0; c < comp.cohorts.size(); ++c)
      open_for(static_cast<int>(c), comp.cohorts[c].first);
  } else {
    comp.members.ForEach([&](QueryId q) {
      open_for(q, plan_->exec_queries[static_cast<size_t>(q)].window);
    });
  }
}

void Session::EmitExecValue(int exec_id, int64_t group_key,
                            Timestamp window_start, Timestamp window_end,
                            double value, double arrival_wall) {
  const ExecQuery& eq = plan_->exec_queries[static_cast<size_t>(exec_id)];
  const CompositionRule& rule =
      plan_->compositions[static_cast<size_t>(eq.source)];
  double final_value = value;
  if (rule.kind != CompositionKind::kSingle) {
    auto key = std::make_tuple(eq.source, group_key, window_start);
    auto& values = pending_compositions_[key];
    values.resize(rule.exec_ids.size(),
                  std::numeric_limits<double>::quiet_NaN());
    for (size_t b = 0; b < rule.exec_ids.size(); ++b) {
      if (rule.exec_ids[b] == exec_id) values[b] = value;
    }
    for (double v : values) {
      if (std::isnan(v)) return;  // waiting for the other branch
    }
    final_value = ComposeQueryValue(rule, values);
    pending_compositions_.erase(key);
  }
  const double latency = ClockNow(config_.clock_override) - arrival_wall;
  latency_sum_ += latency;
  latency_max_ = std::max(latency_max_, latency);
  ++latency_count_;
  if (sink_ != nullptr) {
    Emission emission;
    emission.query = eq.source;
    emission.group_key = group_key;
    emission.window_start = window_start;
    emission.window_end = window_end;
    emission.value = final_value;
    emission.query_name = plan_->workload->query(eq.source).name;
    sink_->OnEmission(emission);
  }
}

void Session::CloseExpiredWindows(GroupRunner& runner, Timestamp now) {
  Component& comp = *runner.comp;
  for (size_t i = 0; i < runner.windows.size();) {
    WindowSlot& w = runner.windows[i];
    if (w.we > now) {
      ++i;
      continue;
    }
    if (runner.hamlet != nullptr) {
      ContextResult r = runner.hamlet->CloseContext(w.ctx);
      EmitExecValue(w.owner, runner.group_key, w.ws, w.we, r.value,
                    w.last_arrival_wall);
    } else if (w.greta != nullptr) {
      EmitExecValue(w.owner, runner.group_key, w.ws, w.we, w.greta->Value(),
                    w.last_arrival_wall);
    } else if (w.two_step != nullptr) {
      Status s = w.two_step->Finish();
      if (!s.ok()) {
        ++dnf_windows_;
      } else {
        comp.cohorts[static_cast<size_t>(w.owner)].second.ForEach(
            [&](QueryId q) {
              EmitExecValue(q, runner.group_key, w.ws, w.we,
                            w.two_step->Value(q), w.last_arrival_wall);
            });
      }
    } else if (w.sharon != nullptr) {
      comp.cohorts[static_cast<size_t>(w.owner)].second.ForEach(
          [&](QueryId q) {
            if (!w.sharon->Supported(q)) return;
            EmitExecValue(q, runner.group_key, w.ws, w.we, w.sharon->Value(q),
                          w.last_arrival_wall);
          });
    }
    runner.windows[i] = std::move(runner.windows.back());
    runner.windows.pop_back();
  }
}

void Session::EvictDeadCompositions(Timestamp boundary) {
  for (auto it = pending_compositions_.begin();
       it != pending_compositions_.end();) {
    // Every branch of a source query shares its window spec, so the entry's
    // window is [ws, ws + within). Once that window closed (all branch
    // engines emitted or gave up at `boundary`), a still-pending entry has a
    // branch that will never arrive — DNF'd two-step windows and
    // SHARON-unsupported queries emit nothing.
    const QueryId source = std::get<0>(it->first);
    const Timestamp ws = std::get<2>(it->first);
    const Timestamp within =
        plan_->workload->query(source).window.within;
    if (ws + within <= boundary) {
      ++evicted_compositions_;
      it = pending_compositions_.erase(it);
    } else {
      ++it;
    }
  }
}

int64_t Session::CurrentMemory() const {
  int64_t bytes = 0;
  for (const auto& comp : components_) {
    for (const auto& [key, runner] : comp->groups) {
      if (runner->hamlet) bytes += runner->hamlet->MemoryBytes();
      for (const WindowSlot& w : runner->windows) {
        if (w.greta) bytes += w.greta->MemoryBytes();
        if (w.two_step) bytes += w.two_step->MemoryBytes();
        if (w.sharon) bytes += w.sharon->MemoryBytes();
      }
    }
  }
  // Pending branch values awaiting OR/AND composition are runtime state
  // too; charging them here is what makes a composition leak visible in
  // peak_memory_bytes.
  for (const auto& [key, values] : pending_compositions_) {
    bytes += static_cast<int64_t>(sizeof(key) + sizeof(values) +
                                  values.capacity() * sizeof(double));
  }
  return bytes;
}

void Session::AdvancePaneTo(Timestamp new_pane_start) {
  const Timestamp pane = plan_->pane_size;
  while (!pane_started_ || pane_start_ < new_pane_start) {
    const Timestamp boundary =
        pane_started_ ? pane_start_ + pane : new_pane_start;
    // Sample before closures so full windows count toward the peak.
    peak_memory_ = std::max(peak_memory_, CurrentMemory());
    for (auto& comp : components_) {
      for (auto& [key, runner] : comp->groups) {
        if (runner->hamlet && pane_started_) runner->hamlet->OnPaneEnd();
        CloseExpiredWindows(*runner, boundary);
        OpenDueWindows(*runner, boundary, /*retroactive=*/false);
        if (runner->hamlet) runner->hamlet->OnPaneStart(boundary);
      }
    }
    // All engines for windows ending at `boundary` have now emitted or
    // declined; whatever composition entries remain for them are dead.
    EvictDeadCompositions(boundary);
    pane_start_ = boundary;
    pane_started_ = true;
    peak_memory_ = std::max(peak_memory_, CurrentMemory());
  }
}

QuerySet Session::PassesForRow(int i) const {
  QuerySet passes = all_execs_;
  const std::vector<int>& pq = pred_program_.predicated_queries();
  for (size_t k = 0; k < pq.size(); ++k) {
    if (!selection_.masks[k].Test(i)) passes.Erase(pq[k]);
  }
  return passes;
}

void Session::ProcessEvent(const Event& e, double arrival,
                           const QuerySet* passes) {
  const Timestamp pane = plan_->pane_size;
  const Timestamp event_pane = (e.time / pane) * pane;
  if (!pane_started_ || event_pane > pane_start_) AdvancePaneTo(event_pane);
  ++events_;
  if (arrival < 0) arrival = ClockNow(config_.clock_override);
  for (auto& compp : components_) {
    Component& comp = *compp;
    if (e.type < 0 || e.type >= static_cast<TypeId>(comp.type_mask.size()) ||
        !comp.type_mask[static_cast<size_t>(e.type)])
      continue;
    const int64_t key =
        comp.group_by == Schema::kInvalidId
            ? 0
            : static_cast<int64_t>(std::llround(e.attr(comp.group_by)));
    auto it = comp.groups.find(key);
    GroupRunner* runner;
    if (it == comp.groups.end()) {
      auto created = std::make_unique<GroupRunner>();
      created->comp = &comp;
      created->group_key = key;
      if (config_.kind == EngineKind::kHamletDynamic ||
          config_.kind == EngineKind::kHamletStatic ||
          config_.kind == EngineKind::kHamletNoShare) {
        created->hamlet = std::make_unique<HamletEngine>(
            *plan_, comp.members, comp.policy.get());
      }
      runner = created.get();
      comp.groups[key] = std::move(created);
      OpenDueWindows(*runner, pane_start_, /*retroactive=*/true);
      if (runner->hamlet) runner->hamlet->OnPaneStart(pane_start_);
    } else {
      runner = it->second.get();
    }
    // Latency attribution: an event resets the arrival clock only of
    // windows it can contribute to — it must fall inside the window span
    // and its type must appear in the owner query's (or cohort's) pattern.
    // Stamping every open slot would under-report the emission latency of
    // sibling queries and sliding instances the event does not belong to.
    const bool cohort_kind = config_.kind == EngineKind::kTwoStep ||
                             config_.kind == EngineKind::kSharon;
    auto stamp_if_relevant = [&](WindowSlot& w) {
      const std::vector<bool>& owner_mask =
          cohort_kind ? comp.cohort_type_masks[static_cast<size_t>(w.owner)]
                      : exec_type_masks_[static_cast<size_t>(w.owner)];
      if (owner_mask[static_cast<size_t>(e.type)]) {
        w.last_arrival_wall = arrival;
      }
    };
    if (runner->hamlet) {
      for (WindowSlot& w : runner->windows) {
        if (e.time < w.ws || e.time >= w.we) continue;
        stamp_if_relevant(w);
      }
      if (passes != nullptr) {
        runner->hamlet->OnEventFiltered(e, *passes);
      } else {
        runner->hamlet->OnEvent(e);
      }
    } else {
      // One pass: stamp and dispatch share the window-span check.
      for (WindowSlot& w : runner->windows) {
        if (e.time < w.ws || e.time >= w.we) continue;
        stamp_if_relevant(w);
        if (w.greta) w.greta->OnEvent(e);
        if (w.two_step) w.two_step->OnEvent(e);
        if (w.sharon) w.sharon->OnEvent(e);
      }
    }
  }
}

Status Session::Push(const Event& event) {
  // Rejected calls accrue no busy time: they do no engine work, and
  // charging them would deflate the reported throughput of a caller that
  // retries after errors.
  if (closed_) {
    return Status::FailedPrecondition("Push on a closed session");
  }
  Status ordered = gate_.CheckEvent(event.time);
  if (!ordered.ok()) return ordered;
  BusyScope busy(&busy_seconds_, config_.clock_override);
  gate_.CommitEvent(event.time);
  // The scope-entry wall doubles as the event's arrival time, keeping the
  // per-event Push hot path at two clock reads total.
  if (UseColumnar()) {
    // Thin wrapper over the batch machinery: a single-row batch through the
    // same staging + kernels as PushBatch, so both entry points share one
    // predicate code path.
    batch_scratch_.Clear();
    batch_scratch_.Append(event);
    pred_program_.EvalBatch(batch_scratch_, &selection_);
    QuerySet passes = PassesForRow(0);
    ProcessEvent(event, busy.start(), &passes);
  } else {
    ProcessEvent(event, busy.start());
  }
  return Status::Ok();
}

Status Session::PushBatch(std::span<const Event> events) {
  if (closed_) {
    return Status::FailedPrecondition("PushBatch on a closed session");
  }
  if (events.empty()) return Status::Ok();
  // A batch rejected at its first event accrues no busy time; a mid-batch
  // rejection keeps the time already spent on the valid prefix (that work
  // was real and its effects stand).
  Status first = gate_.CheckEvent(events.front().time);
  if (!first.ok()) return first;
  BusyScope busy(&busy_seconds_, config_.clock_override);
  if (UseColumnar()) {
    // Columnar hot path: transpose the run into the SoA staging batch, run
    // every predicate kernel batch-wide, then dispatch each row with its
    // precomputed pass-set. A mid-batch ordering violation stops exactly
    // where the row path would — kernels touched the invalid suffix but no
    // engine did.
    batch_scratch_.Clear();
    batch_scratch_.AppendRows(events);
    pred_program_.EvalBatch(batch_scratch_, &selection_);
    for (size_t i = 0; i < events.size(); ++i) {
      const Event& e = events[i];
      Status ordered = gate_.CheckEvent(e.time);
      if (!ordered.ok()) return ordered;
      gate_.CommitEvent(e.time);
      QuerySet passes = PassesForRow(static_cast<int>(i));
      ProcessEvent(e, /*arrival=*/-1.0, &passes);
    }
    return Status::Ok();
  }
  for (const Event& e : events) {
    Status ordered = gate_.CheckEvent(e.time);
    if (!ordered.ok()) return ordered;
    gate_.CommitEvent(e.time);
    ProcessEvent(e, /*arrival=*/-1.0);
  }
  return Status::Ok();
}

Status Session::AdvanceTo(Timestamp watermark) {
  if (closed_) {
    return Status::FailedPrecondition("AdvanceTo on a closed session");
  }
  Status ordered = gate_.CheckWatermark(watermark);
  if (!ordered.ok()) return ordered;
  BusyScope busy(&busy_seconds_, config_.clock_override);
  gate_.CommitWatermark(watermark);
  const Timestamp pane = plan_->pane_size;
  const Timestamp target = (watermark / pane) * pane;
  if (!pane_started_ || target > pane_start_) AdvancePaneTo(target);
  return Status::Ok();
}

void Session::FillMetrics(RunMetrics* m) const {
  m->events = events_;
  m->elapsed_seconds = busy_seconds_;
  m->emissions = latency_count_;
  m->avg_latency_seconds =
      latency_count_ == 0 ? 0.0 : latency_sum_ / latency_count_;
  m->max_latency_seconds = latency_max_;
  m->throughput_eps = m->elapsed_seconds <= 0
                          ? 0
                          : static_cast<double>(events_) / m->elapsed_seconds;
  m->peak_memory_bytes = std::max(peak_memory_, CurrentMemory());
  m->current_memory_bytes = CurrentMemory();
  m->dnf_windows = dnf_windows_;
  m->evicted_compositions = evicted_compositions_;
  for (const auto& comp : components_) {
    for (const auto& [key, runner] : comp->groups) {
      if (!runner->hamlet) continue;
      const HamletStats& s = runner->hamlet->stats();
      m->hamlet.events += s.events;
      m->hamlet.bursts_total += s.bursts_total;
      m->hamlet.bursts_shared += s.bursts_shared;
      m->hamlet.graphlets_opened += s.graphlets_opened;
      m->hamlet.graphlets_shared += s.graphlets_shared;
      m->hamlet.snapshots_created += s.snapshots_created;
      m->hamlet.event_snapshots += s.event_snapshots;
      m->hamlet.splits += s.splits;
      m->hamlet.merges += s.merges;
      m->hamlet.ops += s.ops;
    }
    if (config_.kind == EngineKind::kHamletDynamic) {
      auto* dyn = static_cast<DynamicBenefitPolicy*>(comp->policy.get());
      m->decisions += dyn->decisions();
    }
  }
}

RunMetrics Session::MetricsSnapshot() const {
  if (closed_) return final_metrics_;
  RunMetrics m;
  FillMetrics(&m);
  return m;
}

Result<RunMetrics> Session::Close() {
  if (closed_) {
    return Status::FailedPrecondition(
        "Close on a closed session (first Close already returned the final "
        "metrics; use MetricsSnapshot to re-read them)");
  }
  {
    BusyScope busy(&busy_seconds_, config_.clock_override);
    // Flush: advance to the last window end (window ends are pane-aligned).
    Timestamp flush_to = pane_started_ ? pane_start_ : 0;
    for (const auto& comp : components_) {
      for (const auto& [key, runner] : comp->groups) {
        for (const WindowSlot& w : runner->windows)
          flush_to = std::max(flush_to, w.we);
      }
    }
    AdvancePaneTo(flush_to);
  }
  closed_ = true;
  FillMetrics(&final_metrics_);
  return final_metrics_;
}

}  // namespace hamlet
