#include "src/runtime/session.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <functional>
#include <limits>
#include <tuple>
#include <utility>

#include "src/query/run_segmenter.h"

namespace hamlet {

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double ClockNow(const std::function<double()>& override_fn) {
  return override_fn ? override_fn() : MonotonicSeconds();
}

namespace {

/// RAII accumulator for the session's busy-time metric.
class BusyScope {
 public:
  BusyScope(double* total, const std::function<double()>& clock)
      : total_(total), clock_(clock), start_(ClockNow(clock)) {}
  ~BusyScope() { *total_ += ClockNow(clock_) - start_; }

  double start() const { return start_; }

 private:
  double* total_;
  const std::function<double()>& clock_;
  double start_;
};

void AddStats(HamletStats& into, const HamletStats& s) {
  into.events += s.events;
  into.bursts_total += s.bursts_total;
  into.bursts_shared += s.bursts_shared;
  into.graphlets_opened += s.graphlets_opened;
  into.graphlets_shared += s.graphlets_shared;
  into.snapshots_created += s.snapshots_created;
  into.event_snapshots += s.event_snapshots;
  into.splits += s.splits;
  into.merges += s.merges;
  into.ops += s.ops;
}

}  // namespace

const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kHamletDynamic:
      return "hamlet";
    case EngineKind::kHamletStatic:
      return "hamlet_static";
    case EngineKind::kHamletNoShare:
      return "hamlet_noshare";
    case EngineKind::kGretaGraph:
      return "greta";
    case EngineKind::kGretaPrefix:
      return "greta_prefix";
    case EngineKind::kTwoStep:
      return "two_step(mcep)";
    case EngineKind::kSharon:
      return "sharon";
  }
  return "?";
}

Status ValidateRunConfig(const RunConfig& config) {
  if (config.sharon_max_length < 1) {
    return Status::InvalidArgument(
        "sharon_max_length must be >= 1, got " +
        std::to_string(config.sharon_max_length));
  }
  if (config.two_step_budget <= 0) {
    return Status::InvalidArgument(
        "two_step_budget must be > 0, got " +
        std::to_string(config.two_step_budget));
  }
  if (config.num_shards < 1 || config.num_shards > kMaxShards) {
    return Status::InvalidArgument(
        "num_shards must be in [1, " + std::to_string(kMaxShards) +
        "], got " + std::to_string(config.num_shards));
  }
  if (config.shard_queue_capacity < 2) {
    return Status::InvalidArgument(
        "shard_queue_capacity must be >= 2, got " +
        std::to_string(config.shard_queue_capacity));
  }
  if (config.shard_batch_size < 1) {
    return Status::InvalidArgument(
        "shard_batch_size must be >= 1, got " +
        std::to_string(config.shard_batch_size));
  }
  // shard_queue_capacity counts MESSAGES; the event footprint a full queue
  // implies is capacity * batch_size, so two individually-sane knobs can
  // compound into gigabytes of buffered events. Relate them explicitly —
  // against the power-of-two capacity the ring actually allocates, not the
  // requested one, so the enforced cap matches the runtime footprint.
  const int64_t ring_capacity = static_cast<int64_t>(std::bit_ceil(
      static_cast<uint64_t>(std::max(config.shard_queue_capacity, 2))));
  const int64_t implied_events =
      ring_capacity * static_cast<int64_t>(config.shard_batch_size);
  if (implied_events > kMaxQueuedEventsPerShard) {
    return Status::InvalidArgument(
        "shard_queue_capacity is counted in messages, so shard_queue_capacity"
        " (" +
        std::to_string(config.shard_queue_capacity) + ", ring-rounded to " +
        std::to_string(ring_capacity) + ") * shard_batch_size (" +
        std::to_string(config.shard_batch_size) + ") = " +
        std::to_string(implied_events) +
        " buffered events per shard exceeds the " +
        std::to_string(kMaxQueuedEventsPerShard) +
        " cap; shrink one of the two knobs");
  }
  if (config.shard_rebalance_threshold < 0) {
    return Status::InvalidArgument(
        "shard_rebalance_threshold must be >= 0 (0 disables rebalancing), "
        "got " +
        std::to_string(config.shard_rebalance_threshold));
  }
  // ---- Lifecycle / re-optimization knob matrix (the single source of
  // truth; docs/API.md carries the prose version) ----
  // reoptimize_every_panes: 0 freezes the Open-time plan; > 0 additionally
  //   requires reoptimize_threshold > 0 and a HAMLET kind with a sharing
  //   plan the optimizer can act on (dynamic or static — no-share and the
  //   baselines have no share groups to re-plan, so reopt is Unsupported).
  //   Re-optimization IS supported under both columnar settings (each plan
  //   epoch compiles its own predicate program / self-filters on the row
  //   path) and any shard count (only the ShardedSession front decides;
  //   shards mirror its swaps) — neither combination is rejected.
  // reoptimize_threshold: checked even while reopt is off, so flipping
  //   reoptimize_every_panes on later can never trip a latent bad value.
  // evict_idle_groups: engine-agnostic, no cross-checks; together with
  //   shard_rebalance_threshold > 0 it enables router-map draining
  //   (RunMetrics::rebalance_map_size).
  // run_propagation: no cross-checks — valid for every engine kind, shard
  //   count, producer count, churn and re-optimization. It only takes
  //   effect on columnar-staged PushBatch ingestion (columnar == false or
  //   the row path make it inert, never invalid), and emission sets are
  //   bit-identical either way.
  // work_stealing: requires steal_imbalance_ratio > 1.0 (checked even
  //   while off, mirroring reoptimize_threshold). Unsupported with
  //   evict_idle_groups — eviction erases the very runner state the steal
  //   fence/adopt hand-off reasons about, and a key evicted on the victim
  //   but live on the thief would re-route ambiguously — and with online
  //   re-optimization (reoptimize_every_panes > 0), whose epoch swaps
  //   would race the fence's single-epoch invariant. Query churn on a
  //   stealing ShardedSession is rejected per call, not here. Allowed at
  //   num_shards == 1, where it is inert (no second shard to steal to).
  // producer_queue_capacity: only the multi-producer sharded ingest reads
  //   it, but it is validated unconditionally so AddProducer can never
  //   trip a latent bad value.
  if (config.reoptimize_every_panes < 0) {
    return Status::InvalidArgument(
        "reoptimize_every_panes must be >= 0 (0 disables online "
        "re-optimization), got " +
        std::to_string(config.reoptimize_every_panes));
  }
  if (!(config.reoptimize_threshold > 0)) {
    return Status::InvalidArgument(
        "reoptimize_threshold must be > 0, got " +
        std::to_string(config.reoptimize_threshold));
  }
  if (config.reoptimize_every_panes > 0 &&
      config.kind != EngineKind::kHamletDynamic &&
      config.kind != EngineKind::kHamletStatic) {
    return Status::Unsupported(
        "online re-optimization requires a HAMLET engine with a sharing "
        "plan to act on (kHamletDynamic or kHamletStatic); " +
        std::string(EngineKindName(config.kind)) +
        " has no share groups to re-plan");
  }
  if (!(config.steal_imbalance_ratio > 1.0)) {
    return Status::InvalidArgument(
        "steal_imbalance_ratio must be > 1.0 (the hottest shard must lead "
        "the coldest by a real factor before stealing pays), got " +
        std::to_string(config.steal_imbalance_ratio));
  }
  if (config.producer_queue_capacity < 2) {
    return Status::InvalidArgument(
        "producer_queue_capacity must be >= 2, got " +
        std::to_string(config.producer_queue_capacity));
  }
  if (config.work_stealing && config.evict_idle_groups) {
    return Status::Unsupported(
        "work_stealing is incompatible with evict_idle_groups: eviction "
        "erases the runner state the steal fence/adopt hand-off migrates, "
        "and an evicted-then-reappearing key would re-route ambiguously");
  }
  if (config.work_stealing && config.reoptimize_every_panes > 0) {
    return Status::Unsupported(
        "work_stealing is incompatible with online re-optimization: plan "
        "epoch swaps would race the steal protocol's single-epoch "
        "fence/adopt invariant");
  }
  return Status::Ok();
}

Status OrderingGate::CheckEvent(Timestamp event_time) const {
  // The engines require strictly increasing event times; watermarks only
  // promise no event before them.
  if (has_event_ && event_time <= last_event_time_) {
    return Status::InvalidArgument(
        "out-of-order event at t=" + std::to_string(event_time) +
        " (last event at t=" + std::to_string(last_event_time_) + ")");
  }
  if (has_watermark_ && event_time < watermark_) {
    return Status::InvalidArgument(
        "out-of-order event at t=" + std::to_string(event_time) +
        " (watermark at t=" + std::to_string(watermark_) + ")");
  }
  return Status::Ok();
}

Status OrderingGate::CheckWatermark(Timestamp watermark) const {
  if ((has_event_ && watermark < last_event_time_) ||
      (has_watermark_ && watermark < watermark_)) {
    return Status::InvalidArgument(
        "watermark t=" + std::to_string(watermark) + " regresses behind t=" +
        std::to_string(has_watermark_
                           ? std::max(watermark_, last_event_time_)
                           : last_event_time_));
  }
  return Status::Ok();
}

void MergeRunMetrics(RunMetrics& into, const RunMetrics& from) {
  const int64_t emissions = into.emissions + from.emissions;
  if (emissions > 0) {
    into.avg_latency_seconds =
        (into.avg_latency_seconds * static_cast<double>(into.emissions) +
         from.avg_latency_seconds * static_cast<double>(from.emissions)) /
        static_cast<double>(emissions);
  }
  into.events += from.events;
  into.emissions = emissions;
  into.elapsed_seconds = std::max(into.elapsed_seconds, from.elapsed_seconds);
  into.max_latency_seconds =
      std::max(into.max_latency_seconds, from.max_latency_seconds);
  // Shards run concurrently over overlapping busy intervals: summing their
  // rates would report ~N x the real rate at N shards. Recompute the merged
  // rate from the merged totals instead.
  into.throughput_eps =
      into.elapsed_seconds <= 0
          ? 0.0
          : static_cast<double>(into.events) / into.elapsed_seconds;
  // Shards peak at different times: summing per-shard peaks overstates the
  // concurrent footprint the same way summing rates overstated throughput.
  // The max is the always-true lower bound; ShardedSession raises it with a
  // sampled concurrent high-water mark over the sum of live footprints.
  into.peak_memory_bytes =
      std::max(into.peak_memory_bytes, from.peak_memory_bytes);
  into.current_memory_bytes += from.current_memory_bytes;
  into.dnf_windows += from.dnf_windows;
  into.evicted_compositions += from.evicted_compositions;
  AddStats(into.hamlet, from.hamlet);
  into.decisions += from.decisions;
  into.runs += from.runs;
  if (into.run_len_hist.size() < from.run_len_hist.size()) {
    into.run_len_hist.resize(from.run_len_hist.size(), 0);
  }
  for (size_t i = 0; i < from.run_len_hist.size(); ++i) {
    into.run_len_hist[i] += from.run_len_hist[i];
  }
  if (into.shard_batch_hist.size() < from.shard_batch_hist.size()) {
    into.shard_batch_hist.resize(from.shard_batch_hist.size(), 0);
  }
  for (size_t i = 0; i < from.shard_batch_hist.size(); ++i) {
    into.shard_batch_hist[i] += from.shard_batch_hist[i];
  }
  into.rebalanced_keys += from.rebalanced_keys;
  into.max_queue_depth_msgs =
      std::max(into.max_queue_depth_msgs, from.max_queue_depth_msgs);
  into.shard_events.insert(into.shard_events.end(), from.shard_events.begin(),
                           from.shard_events.end());
  // Lifecycle counters are broadcast to and mirrored by every shard, so the
  // merged value is the max, not the sum (summing would multiply each churn
  // op by the shard count). Idle-group evictions are genuine per-shard
  // state and sum like the other per-shard counters.
  into.rebalance_map_size =
      std::max(into.rebalance_map_size, from.rebalance_map_size);
  into.queries_added = std::max(into.queries_added, from.queries_added);
  into.queries_removed = std::max(into.queries_removed, from.queries_removed);
  into.plan_swaps = std::max(into.plan_swaps, from.plan_swaps);
  into.reopt_checks = std::max(into.reopt_checks, from.reopt_checks);
  into.reopt_swaps = std::max(into.reopt_swaps, from.reopt_swaps);
  into.active_epochs = std::max(into.active_epochs, from.active_epochs);
  into.evicted_idle_groups += from.evicted_idle_groups;
  into.stolen_panes += from.stolen_panes;
  into.duplicated_events += from.duplicated_events;
}

std::vector<Emission> CollectingSink::Take() {
  std::sort(emissions_.begin(), emissions_.end(),
            [](const Emission& a, const Emission& b) {
              return std::tie(a.window_start, a.query, a.group_key) <
                     std::tie(b.window_start, b.query, b.group_key);
            });
  return std::move(emissions_);
}

CsvSink::CsvSink(std::FILE* out) : out_(out) {
  std::fprintf(out_, "query,name,group,window_start,window_end,value\n");
}

void CsvSink::OnEmission(const Emission& emission) {
  std::fprintf(out_, "%d,%s,%lld,%lld,%lld,%.17g\n", emission.query,
               emission.query_name.c_str(),
               static_cast<long long>(emission.group_key),
               static_cast<long long>(emission.window_start),
               static_cast<long long>(emission.window_end), emission.value);
  ++rows_written_;
}

/// One open window instance inside a group runner.
struct WindowSlot {
  /// Exec id (HAMLET/GRETA kinds) or cohort index (two-step/SHARON).
  int owner = -1;
  Timestamp ws = 0;
  Timestamp we = 0;
  ContextId ctx = -1;
  double last_arrival_wall = 0.0;
  std::unique_ptr<GretaEngine> greta;
  std::unique_ptr<TwoStepEngine> two_step;
  std::unique_ptr<SharonEngine> sharon;
};

struct Session::Component {
  QuerySet members;
  AttrId group_by = Schema::kInvalidId;
  std::vector<bool> type_mask;  ///< relevant event types
  /// Largest member WITHIN — once a pane boundary passes a group's last
  /// event by this much, no window can still hold any of its events
  /// (drives RunConfig::evict_idle_groups).
  Timestamp max_within = 0;
  /// Unique window specs with the members using each; two-step/SHARON run
  /// one engine per (cohort, window instance).
  std::vector<std::pair<WindowSpec, QuerySet>> cohorts;
  /// Union of the member exec queries' type masks, per cohort — the
  /// cohort-kind analogue of Runtime::exec_type_masks.
  std::vector<std::vector<bool>> cohort_type_masks;
  std::unique_ptr<SharingPolicy> policy;
  std::map<int64_t, std::unique_ptr<GroupRunner>> groups;
};

struct Session::GroupRunner {
  Component* comp = nullptr;
  int64_t group_key = 0;
  /// Time of the group's last relevant event (seeded by the creating
  /// event); idle eviction compares pane boundaries against it.
  Timestamp last_event_time = 0;
  /// Work-stealing emission bounds (the per-RUNNER analogue of
  /// Runtime::emit_from/emit_until): the runner only OPENS windows with ws
  /// in [emit_from, emit_until). A stolen key's victim runner fences at
  /// the steal boundary, the thief's adopted runner starts there, so each
  /// window belongs to exactly one shard. Defaults cover everything.
  Timestamp emit_from = 0;
  Timestamp emit_until = std::numeric_limits<Timestamp>::max();
  /// Pane boundary at which a fenced runner's windows have provably all
  /// closed; AdvancePaneTo then folds its stats and erases it.
  Timestamp drop_after = std::numeric_limits<Timestamp>::max();
  std::unique_ptr<HamletEngine> hamlet;
  std::vector<WindowSlot> windows;
};

/// One plan epoch (see the declaration in session.h). Epoch 0 borrows the
/// caller's plan (owned_plan null); churn/swap epochs own plan + workload.
struct Session::Runtime {
  std::shared_ptr<const Workload> workload_keepalive;
  std::unique_ptr<WorkloadPlan> owned_plan;
  const WorkloadPlan* plan = nullptr;
  /// Schema-resolved predicate kernels, compiled once per epoch (for both
  /// paths: compile-time validation is how unresolved names surface early).
  PredicateProgram pred_program;
  /// All exec query ids — the starting pass-set every row narrows down.
  QuerySet all_execs;
  /// Reused columnar staging (SoA batch + per-query selection bitmaps);
  /// capacities persist across pushes so staging allocates only while a
  /// batch is growing past all previous sizes.
  EventBatch batch_scratch;
  BatchSelection selection;
  /// Staged run list over batch_scratch (RunConfig::run_propagation);
  /// capacity reused across batches like the staging scratch above.
  std::vector<RunSpan> run_spans;
  std::vector<std::unique_ptr<Component>> components;
  /// Per exec query: which event types its pattern mentions. Drives latency
  /// attribution — only events a query can react to stamp its windows'
  /// arrival clocks.
  std::vector<std::vector<bool>> exec_type_masks;
  /// Branch values awaiting composition: (query, group, window) -> values.
  std::map<std::tuple<QueryId, int64_t, Timestamp>, std::vector<double>>
      pending_compositions;
  /// The UNRESTRICTED share groups for this epoch's query set (the online
  /// reoptimizer's search space) and the overrides currently applied.
  std::vector<ShareGroup> potential_groups;
  std::vector<SharingOverride> applied;
  Timestamp pane_start = 0;
  bool pane_started = false;
  /// The epoch emits exactly the windows with ws in [emit_from,
  /// emit_until). A window starting at/after the activation boundary only
  /// holds events at/after it, so the bounds make epoch handover exact.
  Timestamp emit_from = 0;
  Timestamp emit_until = std::numeric_limits<Timestamp>::max();
  /// Set when a newer epoch activated; the runtime drains, then retires.
  bool superseded = false;
};

Result<std::unique_ptr<Session>> Session::Open(const WorkloadPlan& plan,
                                               const RunConfig& config,
                                               EmissionSink* sink) {
  Status valid = ValidateRunConfig(config);
  if (!valid.ok()) return valid;
  // Resolve every event predicate against the schema ONCE, regardless of the
  // columnar setting: an unresolved type/attribute name fails Open with
  // kInvalidArgument here instead of tripping a per-event DCHECK (or reading
  // a zero) deep inside an engine.
  Result<PredicateProgram> program = CompilePredicateProgram(plan);
  if (!program.ok()) return program.status();
  auto session = std::unique_ptr<Session>(new Session(plan, config, sink));
  session->runtimes_.back()->pred_program = std::move(program).value();
  return session;
}

Session::Session(const WorkloadPlan& plan, const RunConfig& config,
                 EmissionSink* sink)
    : config_(config), sink_(sink) {
  lifecycle_.Init(*plan.workload);
  auto rt = std::make_unique<Runtime>();
  rt->plan = &plan;
  rt->potential_groups = plan.share_groups;
  InitRuntime(*rt);
  runtimes_.push_back(std::move(rt));
  reopt_enabled_ = config_.reoptimize_every_panes > 0;
  if (reopt_enabled_) {
    collector_.Reset(plan.workload->schema()->num_types());
  }
}

void Session::InitRuntime(Runtime& rt) {
  const WorkloadPlan& plan = *rt.plan;
  // Connected components over share groups (union-find).
  const int n = plan.num_exec();
  std::vector<int> parent(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) parent[static_cast<size_t>(i)] = i;
  std::function<int(int)> find = [&](int x) {
    while (parent[static_cast<size_t>(x)] != x) {
      parent[static_cast<size_t>(x)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
      x = parent[static_cast<size_t>(x)];
    }
    return x;
  };
  for (const ShareGroup& g : plan.share_groups) {
    int root = -1;
    g.members.ForEach([&](QueryId q) {
      if (root < 0) {
        root = find(q);
      } else {
        parent[static_cast<size_t>(find(q))] = root;
      }
    });
  }
  std::map<int, Component*> by_root;
  for (int i = 0; i < n; ++i) {
    int root = find(i);
    auto it = by_root.find(root);
    Component* comp;
    if (it == by_root.end()) {
      rt.components.push_back(std::make_unique<Component>());
      comp = rt.components.back().get();
      by_root[root] = comp;
    } else {
      comp = it->second;
    }
    comp->members.Insert(i);
  }
  rt.all_execs = QuerySet::FirstN(n);
  rt.batch_scratch.ResetSchema(plan.workload->schema()->num_attrs());
  const int num_types = plan.workload->schema()->num_types();
  rt.exec_type_masks.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    rt.exec_type_masks[static_cast<size_t>(i)].assign(
        static_cast<size_t>(num_types), false);
    for (TypeId t :
         plan.exec_queries[static_cast<size_t>(i)].tmpl.pattern.AllTypes()) {
      rt.exec_type_masks[static_cast<size_t>(i)][static_cast<size_t>(t)] =
          true;
    }
  }
  for (auto& comp : rt.components) {
    comp->type_mask.assign(static_cast<size_t>(num_types), false);
    comp->members.ForEach([&](QueryId q) {
      const ExecQuery& eq = plan.exec_queries[static_cast<size_t>(q)];
      // Members of a component share the group-by attribute (Definition 5).
      comp->group_by = eq.group_by;
      comp->max_within = std::max(comp->max_within, eq.window.within);
      const std::vector<bool>& qm =
          rt.exec_type_masks[static_cast<size_t>(q)];
      for (size_t t = 0; t < qm.size(); ++t) {
        if (qm[t]) comp->type_mask[t] = true;
      }
      bool found = false;
      for (auto& [spec, set] : comp->cohorts) {
        if (spec == eq.window) {
          set.Insert(q);
          found = true;
        }
      }
      if (!found) comp->cohorts.push_back({eq.window, QuerySet::Single(q)});
    });
    comp->cohort_type_masks.resize(comp->cohorts.size());
    for (size_t c = 0; c < comp->cohorts.size(); ++c) {
      std::vector<bool>& mask = comp->cohort_type_masks[c];
      mask.assign(static_cast<size_t>(num_types), false);
      comp->cohorts[c].second.ForEach([&](QueryId q) {
        const std::vector<bool>& qm =
            rt.exec_type_masks[static_cast<size_t>(q)];
        for (size_t t = 0; t < qm.size(); ++t) {
          if (qm[t]) mask[t] = true;
        }
      });
    }
    switch (config_.kind) {
      case EngineKind::kHamletDynamic:
        comp->policy =
            std::make_unique<DynamicBenefitPolicy>(config_.cost_variant);
        break;
      case EngineKind::kHamletStatic:
        comp->policy = std::make_unique<AlwaysSharePolicy>();
        break;
      default:
        comp->policy = std::make_unique<NeverSharePolicy>();
        break;
    }
  }
}

Session::~Session() = default;

bool Session::UseColumnar(const Runtime& rt) const {
  return config_.columnar && !rt.pred_program.trivial();
}

bool Session::UseRunPath() const {
  // Unlike UseColumnar, a trivial predicate program does NOT opt out: run
  // dispatch pays for the staging even with nothing to filter (every run
  // then passes all_execs), because the amortized engine calls are the win.
  return config_.columnar && config_.run_propagation;
}

void Session::OpenDueWindows(Runtime& rt, GroupRunner& runner,
                             Timestamp pane_start, bool retroactive) {
  Component& comp = *runner.comp;
  const bool hamlet_kind = runner.hamlet != nullptr;
  const bool cohort_kind = config_.kind == EngineKind::kTwoStep ||
                           config_.kind == EngineKind::kSharon;
  auto open_one = [&](int owner, Timestamp ws, Timestamp within) {
    // Epoch emission bounds: windows starting outside [emit_from,
    // emit_until) belong to another epoch — the handover invariant.
    if (ws < rt.emit_from || ws >= rt.emit_until) return;
    // Runner emission bounds: windows outside a stolen key's ownership
    // interval belong to the other shard (see GroupRunner::emit_from).
    if (ws < runner.emit_from || ws >= runner.emit_until) return;
    WindowSlot slot;
    slot.owner = owner;
    slot.ws = ws;
    slot.we = ws + within;
    slot.last_arrival_wall = ClockNow(config_.clock_override);
    if (cohort_kind) {
      const QuerySet& cohort_members =
          comp.cohorts[static_cast<size_t>(owner)].second;
      if (config_.kind == EngineKind::kTwoStep) {
        slot.two_step = std::make_unique<TwoStepEngine>(
            *rt.plan, cohort_members, config_.two_step_budget);
      } else {
        slot.sharon = std::make_unique<SharonEngine>(
            *rt.plan, cohort_members, config_.sharon_max_length);
      }
    } else if (hamlet_kind) {
      slot.ctx = runner.hamlet->OpenContext(owner, ws, slot.we);
    } else {
      slot.greta = std::make_unique<GretaEngine>(
          rt.plan->exec_queries[static_cast<size_t>(owner)],
          config_.kind == EngineKind::kGretaPrefix ? GretaMode::kPrefixSum
                                                   : GretaMode::kGraph);
    }
    runner.windows.push_back(std::move(slot));
  };
  auto open_for = [&](int owner, const WindowSpec& spec) {
    if (retroactive) {
      // New runner: open every slide-aligned instance covering this pane.
      // The group had no earlier events, so the retroactive spans are empty
      // and the counts exact.
      Timestamp first = (pane_start / spec.slide) * spec.slide;
      for (Timestamp ws = first; ws > pane_start - spec.within && ws >= 0;
           ws -= spec.slide) {
        open_one(owner, ws, spec.within);
      }
    } else if (pane_start % spec.slide == 0) {
      open_one(owner, pane_start, spec.within);
    }
  };
  if (cohort_kind) {
    for (size_t c = 0; c < comp.cohorts.size(); ++c)
      open_for(static_cast<int>(c), comp.cohorts[c].first);
  } else {
    comp.members.ForEach([&](QueryId q) {
      open_for(q, rt.plan->exec_queries[static_cast<size_t>(q)].window);
    });
  }
}

void Session::EmitExecValue(Runtime& rt, int exec_id, int64_t group_key,
                            Timestamp window_start, Timestamp window_end,
                            double value, double arrival_wall) {
  // Belt-and-braces epoch bound: windows outside the emission range are
  // never opened, so this only fires if that invariant breaks.
  if (window_start < rt.emit_from || window_start >= rt.emit_until) return;
  const ExecQuery& eq = rt.plan->exec_queries[static_cast<size_t>(exec_id)];
  const CompositionRule& rule =
      rt.plan->compositions[static_cast<size_t>(eq.source)];
  double final_value = value;
  if (rule.kind != CompositionKind::kSingle) {
    auto key = std::make_tuple(eq.source, group_key, window_start);
    auto& values = rt.pending_compositions[key];
    values.resize(rule.exec_ids.size(),
                  std::numeric_limits<double>::quiet_NaN());
    for (size_t b = 0; b < rule.exec_ids.size(); ++b) {
      if (rule.exec_ids[b] == exec_id) values[b] = value;
    }
    for (double v : values) {
      if (std::isnan(v)) return;  // waiting for the other branch
    }
    final_value = ComposeQueryValue(rule, values);
    rt.pending_compositions.erase(key);
  }
  const double latency = ClockNow(config_.clock_override) - arrival_wall;
  latency_sum_ += latency;
  latency_max_ = std::max(latency_max_, latency);
  ++latency_count_;
  if (sink_ != nullptr) {
    Emission emission;
    emission.query = eq.source;
    emission.group_key = group_key;
    emission.window_start = window_start;
    emission.window_end = window_end;
    emission.value = final_value;
    emission.query_name = rt.plan->workload->query(eq.source).name;
    sink_->OnEmission(emission);
  }
}

void Session::CloseExpiredWindows(Runtime& rt, GroupRunner& runner,
                                  Timestamp now) {
  Component& comp = *runner.comp;
  for (size_t i = 0; i < runner.windows.size();) {
    WindowSlot& w = runner.windows[i];
    if (w.we > now) {
      ++i;
      continue;
    }
    if (runner.hamlet != nullptr) {
      ContextResult r = runner.hamlet->CloseContext(w.ctx);
      EmitExecValue(rt, w.owner, runner.group_key, w.ws, w.we, r.value,
                    w.last_arrival_wall);
    } else if (w.greta != nullptr) {
      EmitExecValue(rt, w.owner, runner.group_key, w.ws, w.we,
                    w.greta->Value(), w.last_arrival_wall);
    } else if (w.two_step != nullptr) {
      Status s = w.two_step->Finish();
      if (!s.ok()) {
        ++dnf_windows_;
      } else {
        comp.cohorts[static_cast<size_t>(w.owner)].second.ForEach(
            [&](QueryId q) {
              EmitExecValue(rt, q, runner.group_key, w.ws, w.we,
                            w.two_step->Value(q), w.last_arrival_wall);
            });
      }
    } else if (w.sharon != nullptr) {
      comp.cohorts[static_cast<size_t>(w.owner)].second.ForEach(
          [&](QueryId q) {
            if (!w.sharon->Supported(q)) return;
            EmitExecValue(rt, q, runner.group_key, w.ws, w.we,
                          w.sharon->Value(q), w.last_arrival_wall);
          });
    }
    runner.windows[i] = std::move(runner.windows.back());
    runner.windows.pop_back();
  }
}

void Session::EvictDeadCompositions(Runtime& rt, Timestamp boundary) {
  for (auto it = rt.pending_compositions.begin();
       it != rt.pending_compositions.end();) {
    // Every branch of a source query shares its window spec, so the entry's
    // window is [ws, ws + within). Once that window closed (all branch
    // engines emitted or gave up at `boundary`), a still-pending entry has a
    // branch that will never arrive — DNF'd two-step windows and
    // SHARON-unsupported queries emit nothing.
    const QueryId source = std::get<0>(it->first);
    const Timestamp ws = std::get<2>(it->first);
    const Timestamp within =
        rt.plan->workload->query(source).window.within;
    if (ws + within <= boundary) {
      ++evicted_compositions_;
      it = rt.pending_compositions.erase(it);
    } else {
      ++it;
    }
  }
}

int64_t Session::CurrentMemory() const {
  int64_t bytes = 0;
  for (const auto& rtp : runtimes_) {
    for (const auto& comp : rtp->components) {
      for (const auto& [key, runner] : comp->groups) {
        if (runner->hamlet) bytes += runner->hamlet->MemoryBytes();
        for (const WindowSlot& w : runner->windows) {
          if (w.greta) bytes += w.greta->MemoryBytes();
          if (w.two_step) bytes += w.two_step->MemoryBytes();
          if (w.sharon) bytes += w.sharon->MemoryBytes();
        }
      }
    }
    // Pending branch values awaiting OR/AND composition are runtime state
    // too; charging them here is what makes a composition leak visible in
    // peak_memory_bytes.
    for (const auto& [key, values] : rtp->pending_compositions) {
      bytes += static_cast<int64_t>(sizeof(key) + sizeof(values) +
                                    values.capacity() * sizeof(double));
    }
  }
  return bytes;
}

void Session::AdvancePaneTo(Runtime& rt, Timestamp new_pane_start) {
  const Timestamp pane = rt.plan->pane_size;
  // Idle-group eviction applies only at boundaries supported by observed
  // event time (committed events/watermarks). The synthetic Close flush
  // sweeps past real time and must not evict: a shard whose flush horizon
  // is local would otherwise evict at different boundaries than the
  // single-threaded reference, changing which empty windows get dropped.
  const Timestamp evict_horizon =
      config_.evict_idle_groups && gate_.any_seen()
          ? (gate_.max_seen() / pane) * pane
          : Timestamp{-1};
  while (!rt.pane_started || rt.pane_start < new_pane_start) {
    const Timestamp boundary =
        rt.pane_started ? rt.pane_start + pane : new_pane_start;
    // Sample before closures so full windows count toward the peak.
    peak_memory_ = std::max(peak_memory_, CurrentMemory());
    for (auto& comp : rt.components) {
      for (auto it = comp->groups.begin(); it != comp->groups.end();) {
        GroupRunner& runner = *it->second;
        if (runner.hamlet && rt.pane_started) runner.hamlet->OnPaneEnd();
        CloseExpiredWindows(rt, runner, boundary);
        // Evict BEFORE opening this boundary's windows: every window that
        // could hold any of the group's events has closed above (boundary
        // >= last_event + max member WITHIN), so all remaining and future
        // state could only produce empty-window results. A later event
        // recreates the runner with retroactive windows that provably
        // contain no evicted events (events are strictly increasing past
        // the boundary), so eviction timing is deterministic in event time.
        if (evict_horizon >= 0 && boundary <= evict_horizon &&
            boundary >= runner.last_event_time + comp->max_within) {
          if (runner.hamlet) AddStats(retired_stats_, runner.hamlet->stats());
          ++evicted_idle_groups_;
          it = comp->groups.erase(it);
          continue;
        }
        // A steal-fenced runner whose last possible window end has passed:
        // everything it owned emitted above, so fold its stats and erase.
        // Unlike idle eviction this is driven purely by the steal
        // protocol's boundaries, hence deterministic in event time.
        if (runner.drop_after <= boundary) {
          HAMLET_DCHECK(runner.windows.empty());
          if (runner.hamlet) AddStats(retired_stats_, runner.hamlet->stats());
          it = comp->groups.erase(it);
          continue;
        }
        OpenDueWindows(rt, runner, boundary, /*retroactive=*/false);
        if (runner.hamlet) runner.hamlet->OnPaneStart(boundary);
        ++it;
      }
    }
    // All engines for windows ending at `boundary` have now emitted or
    // declined; whatever composition entries remain for them are dead.
    EvictDeadCompositions(rt, boundary);
    // Steal fences whose duplication interval has fully passed: the key's
    // events now arrive on the thief only, so a future steal BACK may
    // create a fresh runner here.
    if (!group_bounds_.empty()) {
      std::erase_if(group_bounds_,
                    [&](const auto& kv) { return kv.second <= boundary; });
    }
    rt.pane_start = boundary;
    rt.pane_started = true;
    peak_memory_ = std::max(peak_memory_, CurrentMemory());
  }
}

QuerySet Session::PassesForRow(const Runtime& rt, int i) const {
  QuerySet passes = rt.all_execs;
  const std::vector<int>& pq = rt.pred_program.predicated_queries();
  for (size_t k = 0; k < pq.size(); ++k) {
    if (!rt.selection.masks[k].Test(i)) passes.Erase(pq[k]);
  }
  return passes;
}

void Session::ProcessEvent(Runtime& rt, const Event& e, double arrival,
                           const QuerySet* passes) {
  const Timestamp pane = rt.plan->pane_size;
  const Timestamp event_pane = (e.time / pane) * pane;
  if (!rt.pane_started || event_pane > rt.pane_start) {
    AdvancePaneTo(rt, event_pane);
  }
  if (arrival < 0) arrival = ClockNow(config_.clock_override);
  for (auto& compp : rt.components) {
    Component& comp = *compp;
    if (e.type < 0 || e.type >= static_cast<TypeId>(comp.type_mask.size()) ||
        !comp.type_mask[static_cast<size_t>(e.type)])
      continue;
    const int64_t key =
        comp.group_by == Schema::kInvalidId
            ? 0
            : static_cast<int64_t>(std::llround(e.attr(comp.group_by)));
    auto it = comp.groups.find(key);
    GroupRunner* runner;
    if (it == comp.groups.end()) {
      // Steal-fenced key (victim side): boundary events duplicated to this
      // shard feed only runners that already exist — a fresh runner would
      // open retroactive windows the thief already owns.
      if (!group_bounds_.empty() &&
          group_bounds_.find(key) != group_bounds_.end()) {
        continue;
      }
      auto created = std::make_unique<GroupRunner>();
      created->comp = &comp;
      created->group_key = key;
      created->last_event_time = e.time;
      if (config_.kind == EngineKind::kHamletDynamic ||
          config_.kind == EngineKind::kHamletStatic ||
          config_.kind == EngineKind::kHamletNoShare) {
        created->hamlet = std::make_unique<HamletEngine>(
            *rt.plan, comp.members, comp.policy.get());
      }
      runner = created.get();
      comp.groups[key] = std::move(created);
      OpenDueWindows(rt, *runner, rt.pane_start, /*retroactive=*/true);
      if (runner->hamlet) runner->hamlet->OnPaneStart(rt.pane_start);
    } else {
      runner = it->second.get();
      runner->last_event_time = e.time;
    }
    // Latency attribution: an event resets the arrival clock only of
    // windows it can contribute to — it must fall inside the window span
    // and its type must appear in the owner query's (or cohort's) pattern.
    // Stamping every open slot would under-report the emission latency of
    // sibling queries and sliding instances the event does not belong to.
    const bool cohort_kind = config_.kind == EngineKind::kTwoStep ||
                             config_.kind == EngineKind::kSharon;
    auto stamp_if_relevant = [&](WindowSlot& w) {
      const std::vector<bool>& owner_mask =
          cohort_kind ? comp.cohort_type_masks[static_cast<size_t>(w.owner)]
                      : rt.exec_type_masks[static_cast<size_t>(w.owner)];
      if (owner_mask[static_cast<size_t>(e.type)]) {
        w.last_arrival_wall = arrival;
      }
    };
    if (runner->hamlet) {
      for (WindowSlot& w : runner->windows) {
        if (e.time < w.ws || e.time >= w.we) continue;
        stamp_if_relevant(w);
      }
      if (passes != nullptr) {
        runner->hamlet->OnEventFiltered(e, *passes);
      } else {
        runner->hamlet->OnEvent(e);
      }
    } else {
      // One pass: stamp and dispatch share the window-span check.
      for (WindowSlot& w : runner->windows) {
        if (e.time < w.ws || e.time >= w.we) continue;
        stamp_if_relevant(w);
        if (w.greta) w.greta->OnEvent(e);
        if (w.two_step) w.two_step->OnEvent(e);
        if (w.sharon) w.sharon->OnEvent(e);
      }
    }
  }
}

Status Session::Push(const Event& event) {
  // Rejected calls accrue no busy time: they do no engine work, and
  // charging them would deflate the reported throughput of a caller that
  // retries after errors.
  if (closed_) {
    return Status::FailedPrecondition("Push on a closed session");
  }
  Status ordered = gate_.CheckEvent(event.time);
  if (!ordered.ok()) return ordered;
  BusyScope busy(&busy_seconds_, config_.clock_override);
  gate_.CommitEvent(event.time);
  ++events_;
  if (reopt_enabled_) collector_.CountEvent(event.type);
  // The scope-entry wall doubles as the event's arrival time, keeping the
  // per-event Push hot path at two clock reads total.
  for (auto& rtp : runtimes_) {
    Runtime& rt = *rtp;
    if (UseColumnar(rt)) {
      // Thin wrapper over the batch machinery: a single-row batch through
      // the same staging + kernels as PushBatch, so both entry points share
      // one predicate code path.
      rt.batch_scratch.Clear();
      rt.batch_scratch.Append(event);
      rt.pred_program.EvalBatch(rt.batch_scratch, &rt.selection);
      QuerySet passes = PassesForRow(rt, 0);
      ProcessEvent(rt, event, busy.start(), &passes);
    } else {
      ProcessEvent(rt, event, busy.start());
    }
  }
  ReapRuntimes();
  MaybeReoptimize();
  return Status::Ok();
}

Status Session::PushBatch(std::span<const Event> events) {
  if (closed_) {
    return Status::FailedPrecondition("PushBatch on a closed session");
  }
  if (events.empty()) return Status::Ok();
  // A batch rejected at its first event accrues no busy time; a mid-batch
  // rejection keeps the time already spent on the valid prefix (that work
  // was real and its effects stand).
  Status first = gate_.CheckEvent(events.front().time);
  if (!first.ok()) return first;
  BusyScope busy(&busy_seconds_, config_.clock_override);
  // Columnar epochs: transpose the run into each epoch's SoA staging batch
  // and run its predicate kernels batch-wide up front. A mid-batch ordering
  // violation stops exactly where the row path would — kernels touched the
  // invalid suffix but no engine did. The run path stages even
  // trivial-program epochs: the segmenter consumes the staged batch.
  for (auto& rtp : runtimes_) {
    Runtime& rt = *rtp;
    if (!UseColumnar(rt) && !UseRunPath()) continue;
    rt.batch_scratch.Clear();
    rt.batch_scratch.AppendRows(events);
    rt.pred_program.EvalBatch(rt.batch_scratch, &rt.selection);
  }
  Status result = Status::Ok();
  if (UseRunPath()) {
    // Ordering-gate pre-pass: commit the valid prefix before dispatch. The
    // final gate state, counters and engine-visible events are identical to
    // the per-event interleaving (engines never see the invalid suffix
    // either way; the only mid-batch gate reader is the idle-eviction
    // horizon, whose event-triggered checks are insensitive to it).
    int valid = 0;
    for (const Event& e : events) {
      Status ordered = gate_.CheckEvent(e.time);
      if (!ordered.ok()) {
        result = ordered;
        break;
      }
      gate_.CommitEvent(e.time);
      ++events_;
      if (reopt_enabled_) collector_.CountEvent(e.type);
      ++valid;
    }
    for (auto& rtp : runtimes_) DispatchRuns(*rtp, events, valid);
  } else {
    for (size_t i = 0; i < events.size(); ++i) {
      const Event& e = events[i];
      Status ordered = gate_.CheckEvent(e.time);
      if (!ordered.ok()) {
        result = ordered;
        break;
      }
      gate_.CommitEvent(e.time);
      ++events_;
      if (reopt_enabled_) collector_.CountEvent(e.type);
      for (auto& rtp : runtimes_) {
        Runtime& rt = *rtp;
        if (UseColumnar(rt)) {
          QuerySet passes = PassesForRow(rt, static_cast<int>(i));
          ProcessEvent(rt, e, /*arrival=*/-1.0, &passes);
        } else {
          ProcessEvent(rt, e, /*arrival=*/-1.0);
        }
      }
    }
  }
  ReapRuntimes();
  MaybeReoptimize();
  return result;
}

void Session::DispatchRuns(Runtime& rt, std::span<const Event> events,
                           int rows) {
  if (rows <= 0) return;
  SegmentRuns(rt.batch_scratch, rows, rt.plan->pane_size, rt.all_execs,
              rt.pred_program.predicated_queries(), rt.selection.masks,
              &rt.run_spans);
  const Timestamp pane = rt.plan->pane_size;
  const bool cohort_kind = config_.kind == EngineKind::kTwoStep ||
                           config_.kind == EngineKind::kSharon;
  for (const RunSpan& run : rt.run_spans) {
    // Run-shape metrics: bucket i counts runs of length [2^i, 2^(i+1)).
    ++runs_;
    const int len = run.row_end - run.row_begin;
    const size_t bucket =
        static_cast<size_t>(std::bit_width(static_cast<uint64_t>(len)) - 1);
    if (run_len_hist_.size() <= bucket) run_len_hist_.resize(bucket + 1, 0);
    ++run_len_hist_[bucket];

    // One pane advance per run: runs are pane-confined, so the first row's
    // pane is every row's pane.
    const Event& first = events[static_cast<size_t>(run.row_begin)];
    const Timestamp event_pane = (first.time / pane) * pane;
    if (!rt.pane_started || event_pane > rt.pane_start) {
      AdvancePaneTo(rt, event_pane);
    }
    // One arrival sample per run (the row path samples per event; latency
    // attribution is a wall-clock metric, not part of emission values).
    const double arrival = ClockNow(config_.clock_override);
    for (auto& compp : rt.components) {
      Component& comp = *compp;
      if (run.type < 0 ||
          run.type >= static_cast<TypeId>(comp.type_mask.size()) ||
          !comp.type_mask[static_cast<size_t>(run.type)])
        continue;
      // Sub-split at group-key changes: runs are segmented globally, group
      // partitioning is per component (group-by attrs differ), so the
      // per-group spans are carved here, straight off the key column.
      const double* key_col = comp.group_by == Schema::kInvalidId
                                  ? nullptr
                                  : rt.batch_scratch.column_data(comp.group_by);
      int sub = run.row_begin;
      while (sub < run.row_end) {
        int64_t key = 0;
        int sub_end = run.row_end;
        if (comp.group_by != Schema::kInvalidId) {
          key = static_cast<int64_t>(
              std::llround(key_col == nullptr
                               ? 0.0
                               : key_col[static_cast<size_t>(sub)]));
          sub_end = sub + 1;
          while (sub_end < run.row_end &&
                 static_cast<int64_t>(std::llround(
                     key_col == nullptr
                         ? 0.0
                         : key_col[static_cast<size_t>(sub_end)])) == key) {
            ++sub_end;
          }
        }
        const Event& e0 = events[static_cast<size_t>(sub)];
        auto it = comp.groups.find(key);
        GroupRunner* runner = nullptr;
        if (it == comp.groups.end()) {
          // Steal-fenced key (victim side): duplicated boundary events feed
          // only runners that already exist — same rule as ProcessEvent.
          if (!group_bounds_.empty() &&
              group_bounds_.find(key) != group_bounds_.end()) {
            sub = sub_end;
            continue;
          }
          auto created = std::make_unique<GroupRunner>();
          created->comp = &comp;
          created->group_key = key;
          created->last_event_time = e0.time;
          if (config_.kind == EngineKind::kHamletDynamic ||
              config_.kind == EngineKind::kHamletStatic ||
              config_.kind == EngineKind::kHamletNoShare) {
            created->hamlet = std::make_unique<HamletEngine>(
                *rt.plan, comp.members, comp.policy.get());
          }
          runner = created.get();
          comp.groups[key] = std::move(created);
          OpenDueWindows(rt, *runner, rt.pane_start, /*retroactive=*/true);
          if (runner->hamlet) runner->hamlet->OnPaneStart(rt.pane_start);
        } else {
          runner = it->second.get();
        }
        runner->last_event_time = events[static_cast<size_t>(sub_end - 1)].time;
        auto stamp_if_relevant = [&](WindowSlot& w, TypeId type) {
          const std::vector<bool>& owner_mask =
              cohort_kind
                  ? comp.cohort_type_masks[static_cast<size_t>(w.owner)]
                  : rt.exec_type_masks[static_cast<size_t>(w.owner)];
          if (owner_mask[static_cast<size_t>(type)]) {
            w.last_arrival_wall = arrival;
          }
        };
        if (runner->hamlet) {
          // The latency-stamp window scan, hoisted to once per run: windows
          // are pane-aligned and the run is pane-confined, so a window
          // containing the first row contains every row.
          for (WindowSlot& w : runner->windows) {
            if (e0.time < w.ws || e0.time >= w.we) continue;
            stamp_if_relevant(w, run.type);
          }
          RunSpan group_run;
          group_run.type = run.type;
          group_run.row_begin = sub;
          group_run.row_end = sub_end;
          group_run.passes = run.passes;
          runner->hamlet->OnRunFiltered(rt.batch_scratch, group_run);
        } else {
          // Non-HAMLET engines are per-window and consume rows one at a
          // time; the run path still amortizes the pane advance, type gate
          // and group lookup across the span.
          for (int i = sub; i < sub_end; ++i) {
            const Event& e = events[static_cast<size_t>(i)];
            for (WindowSlot& w : runner->windows) {
              if (e.time < w.ws || e.time >= w.we) continue;
              stamp_if_relevant(w, e.type);
              if (w.greta) w.greta->OnEvent(e);
              if (w.two_step) w.two_step->OnEvent(e);
              if (w.sharon) w.sharon->OnEvent(e);
            }
          }
        }
        sub = sub_end;
      }
    }
  }
}

Status Session::AdvanceTo(Timestamp watermark) {
  if (closed_) {
    return Status::FailedPrecondition("AdvanceTo on a closed session");
  }
  Status ordered = gate_.CheckWatermark(watermark);
  if (!ordered.ok()) return ordered;
  BusyScope busy(&busy_seconds_, config_.clock_override);
  gate_.CommitWatermark(watermark);
  for (auto& rtp : runtimes_) {
    Runtime& rt = *rtp;
    const Timestamp pane = rt.plan->pane_size;
    const Timestamp target = (watermark / pane) * pane;
    if (!rt.pane_started || target > rt.pane_start) AdvancePaneTo(rt, target);
  }
  ReapRuntimes();
  MaybeReoptimize();
  return Status::Ok();
}

Result<Timestamp> Session::Swap(QueryLifecycle::CompiledEpoch epoch,
                                Timestamp activate_at) {
  Result<PredicateProgram> program = CompilePredicateProgram(*epoch.plan);
  if (!program.ok()) return program.status();
  Timestamp activate = activate_at;
  if (activate < 0) {
    // Next boundary on the CURRENT lead epoch's grid strictly after
    // everything seen. Adding a query can only shrink the pane gcd, and
    // removing can only grow it to a multiple, so every boundary of the
    // outgoing grid is also a boundary of the incoming one.
    activate = QueryLifecycle::ActivationBoundary(
        runtimes_.back()->plan->pane_size, gate_.any_seen(),
        gate_.max_seen());
  }
  auto rt = std::make_unique<Runtime>();
  rt->workload_keepalive = epoch.workload;
  rt->owned_plan = std::move(epoch.plan);
  rt->plan = rt->owned_plan.get();
  rt->pred_program = std::move(program).value();
  rt->potential_groups = std::move(epoch.potential_groups);
  rt->applied = std::move(epoch.applied);
  rt->emit_from = activate;
  InitRuntime(*rt);
  for (auto& old : runtimes_) {
    old->superseded = true;
    if (old->emit_until > activate) old->emit_until = activate;
  }
  runtimes_.push_back(std::move(rt));
  // Epochs whose emission range collapsed (double churn inside one pane)
  // or that never started retire immediately.
  ReapRuntimes();
  if (reopt_enabled_) {
    Runtime& lead = *runtimes_.back();
    OnlineReoptimizerOptions opts;
    opts.threshold = config_.reoptimize_threshold;
    opts.variant = config_.cost_variant;
    reoptimizer_.Bind(*lead.plan, lead.potential_groups, lead.applied, opts);
    reopt_pane_seen_ = false;
  }
  return activate;
}

void Session::RetireRuntime(size_t index) {
  Runtime& rt = *runtimes_[index];
  for (auto& comp : rt.components) {
    for (auto& [key, runner] : comp->groups) {
      if (runner->hamlet) AddStats(retired_stats_, runner->hamlet->stats());
    }
    if (config_.kind == EngineKind::kHamletDynamic) {
      retired_decisions_ +=
          static_cast<DynamicBenefitPolicy*>(comp->policy.get())->decisions();
    }
  }
  // In-range windows all closed before retirement, so leftovers here are
  // entries whose sibling branch never arrived.
  evicted_compositions_ +=
      static_cast<int64_t>(rt.pending_compositions.size());
  runtimes_.erase(runtimes_.begin() + static_cast<std::ptrdiff_t>(index));
}

void Session::ReapRuntimes() {
  for (size_t i = 0; i < runtimes_.size();) {
    Runtime& rt = *runtimes_[i];
    bool dead = false;
    if (rt.superseded) {
      if (!rt.pane_started) {
        dead = true;  // never saw an event/watermark: nothing to drain
      } else if (rt.emit_from >= rt.emit_until) {
        dead = true;  // emission range collapsed: can never emit
      } else if (rt.pane_start >= rt.emit_until) {
        bool open_windows = false;
        for (const auto& comp : rt.components) {
          for (const auto& [key, runner] : comp->groups) {
            if (!runner->windows.empty()) open_windows = true;
          }
        }
        dead = !open_windows;  // past the cutoff and fully drained
      }
    }
    if (dead) {
      RetireRuntime(i);
    } else {
      ++i;
    }
  }
}

Result<Timestamp> Session::AddQuery(const Query& query,
                                    Timestamp activate_at) {
  if (closed_) {
    return Status::FailedPrecondition("AddQuery on a closed session");
  }
  if (activate_at < 0 &&
      live_epochs() >= QueryLifecycle::kMaxLiveEpochs) {
    return Status::ResourceExhausted(
        "too many plan epochs still draining (max " +
        std::to_string(QueryLifecycle::kMaxLiveEpochs) +
        "); advance the stream before further churn");
  }
  BusyScope busy(&busy_seconds_, config_.clock_override);
  std::vector<Query> prev = lifecycle_.queries();
  Result<QueryLifecycle::CompiledEpoch> epoch = lifecycle_.TryAdd(query, {});
  if (!epoch.ok()) return epoch.status();
  Result<Timestamp> activated = Swap(std::move(epoch).value(), activate_at);
  if (!activated.ok()) {
    lifecycle_.Reset(std::move(prev));
    return activated;
  }
  ++queries_added_;
  return activated;
}

Result<Timestamp> Session::RemoveQuery(const std::string& name,
                                       Timestamp activate_at) {
  if (closed_) {
    return Status::FailedPrecondition("RemoveQuery on a closed session");
  }
  if (activate_at < 0 &&
      live_epochs() >= QueryLifecycle::kMaxLiveEpochs) {
    return Status::ResourceExhausted(
        "too many plan epochs still draining (max " +
        std::to_string(QueryLifecycle::kMaxLiveEpochs) +
        "); advance the stream before further churn");
  }
  BusyScope busy(&busy_seconds_, config_.clock_override);
  std::vector<Query> prev = lifecycle_.queries();
  Result<QueryLifecycle::CompiledEpoch> epoch =
      lifecycle_.TryRemove(name, {});
  if (!epoch.ok()) return epoch.status();
  Result<Timestamp> activated = Swap(std::move(epoch).value(), activate_at);
  if (!activated.ok()) {
    lifecycle_.Reset(std::move(prev));
    return activated;
  }
  ++queries_removed_;
  return activated;
}

Result<Timestamp> Session::ApplySharingOverrides(
    std::span<const SharingOverride> overrides, Timestamp activate_at) {
  if (closed_) {
    return Status::FailedPrecondition(
        "ApplySharingOverrides on a closed session");
  }
  BusyScope busy(&busy_seconds_, config_.clock_override);
  Result<QueryLifecycle::CompiledEpoch> epoch = lifecycle_.Compile(overrides);
  if (!epoch.ok()) return epoch.status();
  Result<Timestamp> activated = Swap(std::move(epoch).value(), activate_at);
  if (activated.ok()) ++plan_swaps_;
  return activated;
}

Session::GroupMigration Session::FenceGroup(int64_t group_key,
                                            Timestamp emit_until,
                                            Timestamp drop_after) {
  // Stealing excludes query churn and re-optimization, so exactly one plan
  // epoch can be live — the fence/adopt hand-off reasons about one
  // component list on both shards.
  HAMLET_CHECK(runtimes_.size() == 1);
  Runtime& rt = *runtimes_.back();
  GroupMigration migration;
  migration.components.resize(rt.components.size());
  for (size_t c = 0; c < rt.components.size(); ++c) {
    Component& comp = *rt.components[c];
    auto it = comp.groups.find(group_key);
    if (it == comp.groups.end()) continue;
    GroupRunner& runner = *it->second;
    migration.components[c].runner_exists = true;
    if (runner.hamlet != nullptr) {
      migration.components[c].lane_stats = runner.hamlet->ExportLaneStats();
    }
    runner.emit_until = std::min(runner.emit_until, emit_until);
    runner.drop_after = std::min(runner.drop_after, drop_after);
    // Cancel windows already open at/after the fence, unemitted: the
    // victim has processed nothing at or past the boundary (a watermark
    // may merely have opened them early), so they hold no events, and the
    // thief opens its own instances — emitting here would double them.
    for (size_t i = 0; i < runner.windows.size();) {
      WindowSlot& w = runner.windows[i];
      if (w.ws < emit_until) {
        ++i;
        continue;
      }
      if (runner.hamlet != nullptr) runner.hamlet->CloseContext(w.ctx);
      runner.windows[i] = std::move(runner.windows.back());
      runner.windows.pop_back();
    }
  }
  group_bounds_[group_key] = drop_after;
  return migration;
}

void Session::AdoptGroup(int64_t group_key, Timestamp emit_from,
                         const GroupMigration& migration) {
  HAMLET_CHECK(runtimes_.size() == 1);
  Runtime& rt = *runtimes_.back();
  // Advance to the handover boundary BEFORE creating the adopted runners:
  // every window this shard previously owned is then already open or
  // closed (boundaries in between are visited while any old fenced
  // incarnation of the key is still bounded, so no window leaks open in
  // the gap), and that incarnation — whose drop_after provably precedes a
  // re-steal boundary — has dropped. Pane advancement is deterministic in
  // event time, so doing it at the adopt point just moves work the next
  // event would trigger anyway.
  if (!rt.pane_started || rt.pane_start < emit_from) {
    AdvancePaneTo(rt, emit_from);
  }
  HAMLET_DCHECK(rt.pane_start == emit_from);
  group_bounds_.erase(group_key);
  const size_t n =
      std::min(rt.components.size(), migration.components.size());
  for (size_t c = 0; c < n; ++c) {
    if (!migration.components[c].runner_exists) continue;
    Component& comp = *rt.components[c];
    // The router owned the key elsewhere until this boundary, so no live
    // runner can exist here (a fenced leftover dropped during the advance
    // above).
    HAMLET_CHECK(comp.groups.find(group_key) == comp.groups.end());
    auto created = std::make_unique<GroupRunner>();
    created->comp = &comp;
    created->group_key = group_key;
    created->last_event_time = emit_from;
    created->emit_from = emit_from;
    if (config_.kind == EngineKind::kHamletDynamic ||
        config_.kind == EngineKind::kHamletStatic ||
        config_.kind == EngineKind::kHamletNoShare) {
      created->hamlet = std::make_unique<HamletEngine>(*rt.plan, comp.members,
                                                       comp.policy.get());
      created->hamlet->SeedLaneStats(migration.components[c].lane_stats);
    }
    GroupRunner* runner = created.get();
    comp.groups[group_key] = std::move(created);
    OpenDueWindows(rt, *runner, rt.pane_start, /*retroactive=*/true);
    if (runner->hamlet) runner->hamlet->OnPaneStart(rt.pane_start);
  }
}

HamletStats Session::AggregateHamletStats() const {
  HamletStats s = retired_stats_;
  for (const auto& rtp : runtimes_) {
    for (const auto& comp : rtp->components) {
      for (const auto& [key, runner] : comp->groups) {
        if (runner->hamlet) AddStats(s, runner->hamlet->stats());
      }
    }
  }
  return s;
}

void Session::MaybeReoptimize() {
  if (!reopt_enabled_ || closed_) return;
  // Only in steady state: while a churn epoch drains, the statistics mix
  // two plans and a swap would stack a third.
  if (runtimes_.size() != 1) return;
  Runtime& lead = *runtimes_.back();
  if (!lead.pane_started) return;
  const Timestamp every =
      lead.plan->pane_size *
      static_cast<Timestamp>(config_.reoptimize_every_panes);
  if (!reopt_pane_seen_) {
    // First boundary observation after (re)bind anchors the cadence.
    last_reopt_pane_ = lead.pane_start;
    reopt_pane_seen_ = true;
    return;
  }
  if (lead.pane_start < last_reopt_pane_ + every) return;
  last_reopt_pane_ = lead.pane_start;
  if (!reoptimizer_.bound()) {
    OnlineReoptimizerOptions opts;
    opts.threshold = config_.reoptimize_threshold;
    opts.variant = config_.cost_variant;
    reoptimizer_.Bind(*lead.plan, lead.potential_groups, lead.applied, opts);
  }
  OnlineReoptimizer::Outcome out =
      reoptimizer_.Check(lead.pane_start, AggregateHamletStats(), collector_);
  if (!out.swap) return;
  Result<QueryLifecycle::CompiledEpoch> epoch =
      lifecycle_.Compile(out.overrides);
  if (!epoch.ok()) return;  // keep the running plan
  Result<Timestamp> activated = Swap(std::move(epoch).value(), -1);
  if (activated.ok()) ++plan_swaps_;
}

void Session::FillMetrics(RunMetrics* m) const {
  m->events = events_;
  m->elapsed_seconds = busy_seconds_;
  m->emissions = latency_count_;
  m->avg_latency_seconds =
      latency_count_ == 0 ? 0.0 : latency_sum_ / latency_count_;
  m->max_latency_seconds = latency_max_;
  m->throughput_eps = m->elapsed_seconds <= 0
                          ? 0
                          : static_cast<double>(events_) / m->elapsed_seconds;
  m->peak_memory_bytes = std::max(peak_memory_, CurrentMemory());
  m->current_memory_bytes = CurrentMemory();
  m->dnf_windows = dnf_windows_;
  m->evicted_compositions = evicted_compositions_;
  m->hamlet = AggregateHamletStats();
  m->decisions = retired_decisions_;
  if (config_.kind == EngineKind::kHamletDynamic) {
    for (const auto& rtp : runtimes_) {
      for (const auto& comp : rtp->components) {
        auto* dyn = static_cast<DynamicBenefitPolicy*>(comp->policy.get());
        m->decisions += dyn->decisions();
      }
    }
  }
  m->queries_added = queries_added_;
  m->queries_removed = queries_removed_;
  m->plan_swaps = plan_swaps_;
  m->reopt_checks = reoptimizer_.checks();
  m->reopt_swaps = reoptimizer_.swaps();
  m->active_epochs = static_cast<int64_t>(runtimes_.size());
  m->evicted_idle_groups = evicted_idle_groups_;
  m->runs = runs_;
  m->run_len_hist = run_len_hist_;
}

RunMetrics Session::MetricsSnapshot() const {
  if (closed_) return final_metrics_;
  RunMetrics m;
  FillMetrics(&m);
  return m;
}

Result<RunMetrics> Session::Close() {
  if (closed_) {
    return Status::FailedPrecondition(
        "Close on a closed session (first Close already returned the final "
        "metrics; use MetricsSnapshot to re-read them)");
  }
  {
    BusyScope busy(&busy_seconds_, config_.clock_override);
    // Flush every epoch (draining ones included) to its last window end —
    // window ends are pane-aligned on the epoch's own grid.
    for (auto& rtp : runtimes_) {
      Runtime& rt = *rtp;
      Timestamp flush_to = rt.pane_started ? rt.pane_start : 0;
      for (const auto& comp : rt.components) {
        for (const auto& [key, runner] : comp->groups) {
          for (const WindowSlot& w : runner->windows)
            flush_to = std::max(flush_to, w.we);
        }
      }
      AdvancePaneTo(rt, flush_to);
    }
  }
  closed_ = true;
  FillMetrics(&final_metrics_);
  return final_metrics_;
}

}  // namespace hamlet
