#include "src/runtime/executor.h"

namespace hamlet {

RunOutput StreamExecutor::Run(const EventVector& events) {
  RunOutput out;
  CollectingSink sink;
  Result<std::unique_ptr<Session>> session = Session::Open(
      *plan_, config_, config_.collect_emissions ? &sink : nullptr);
  if (!session.ok()) {
    out.status = session.status();
    return out;
  }
  out.status = session.value()->PushBatch(events);
  // The first Close on an open session always succeeds.
  out.metrics = session.value()->Close().value();
  out.emissions = sink.Take();
  return out;
}

}  // namespace hamlet
