#include "src/runtime/executor.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>
#include <limits>
#include <tuple>

namespace hamlet {

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kHamletDynamic:
      return "hamlet";
    case EngineKind::kHamletStatic:
      return "hamlet_static";
    case EngineKind::kHamletNoShare:
      return "hamlet_noshare";
    case EngineKind::kGretaGraph:
      return "greta";
    case EngineKind::kGretaPrefix:
      return "greta_prefix";
    case EngineKind::kTwoStep:
      return "two_step(mcep)";
    case EngineKind::kSharon:
      return "sharon";
  }
  return "?";
}

/// One open window instance inside a group runner.
struct WindowSlot {
  /// Exec id (HAMLET/GRETA kinds) or cohort index (two-step/SHARON).
  int owner = -1;
  Timestamp ws = 0;
  Timestamp we = 0;
  ContextId ctx = -1;
  double last_arrival_wall = 0.0;
  std::unique_ptr<GretaEngine> greta;
  std::unique_ptr<TwoStepEngine> two_step;
  std::unique_ptr<SharonEngine> sharon;
};

struct StreamExecutor::Component {
  QuerySet members;
  AttrId group_by = Schema::kInvalidId;
  std::vector<bool> type_mask;  ///< relevant event types
  /// Unique window specs with the members using each; two-step/SHARON run
  /// one engine per (cohort, window instance).
  std::vector<std::pair<WindowSpec, QuerySet>> cohorts;
  std::unique_ptr<SharingPolicy> policy;
  std::map<int64_t, std::unique_ptr<GroupRunner>> groups;
};

struct StreamExecutor::GroupRunner {
  Component* comp = nullptr;
  int64_t group_key = 0;
  std::unique_ptr<HamletEngine> hamlet;
  std::vector<WindowSlot> windows;
};

StreamExecutor::StreamExecutor(const WorkloadPlan& plan, RunConfig config)
    : plan_(&plan), config_(config) {
  // Connected components over share groups (union-find).
  const int n = plan.num_exec();
  std::vector<int> parent(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) parent[static_cast<size_t>(i)] = i;
  std::function<int(int)> find = [&](int x) {
    while (parent[static_cast<size_t>(x)] != x) {
      parent[static_cast<size_t>(x)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
      x = parent[static_cast<size_t>(x)];
    }
    return x;
  };
  for (const ShareGroup& g : plan.share_groups) {
    int root = -1;
    g.members.ForEach([&](QueryId q) {
      if (root < 0) {
        root = find(q);
      } else {
        parent[static_cast<size_t>(find(q))] = root;
      }
    });
  }
  std::map<int, Component*> by_root;
  for (int i = 0; i < n; ++i) {
    int root = find(i);
    auto it = by_root.find(root);
    Component* comp;
    if (it == by_root.end()) {
      components_.push_back(std::make_unique<Component>());
      comp = components_.back().get();
      by_root[root] = comp;
    } else {
      comp = it->second;
    }
    comp->members.Insert(i);
  }
  const int num_types = plan.workload->schema()->num_types();
  for (auto& comp : components_) {
    comp->type_mask.assign(static_cast<size_t>(num_types), false);
    comp->members.ForEach([&](QueryId q) {
      const ExecQuery& eq = plan.exec_queries[static_cast<size_t>(q)];
      // Members of a component share the group-by attribute (Definition 5).
      comp->group_by = eq.group_by;
      for (TypeId t : eq.tmpl.pattern.AllTypes())
        comp->type_mask[static_cast<size_t>(t)] = true;
      bool found = false;
      for (auto& [spec, set] : comp->cohorts) {
        if (spec == eq.window) {
          set.Insert(q);
          found = true;
        }
      }
      if (!found) comp->cohorts.push_back({eq.window, QuerySet::Single(q)});
    });
    switch (config_.kind) {
      case EngineKind::kHamletDynamic:
        comp->policy =
            std::make_unique<DynamicBenefitPolicy>(config_.cost_variant);
        break;
      case EngineKind::kHamletStatic:
        comp->policy = std::make_unique<AlwaysSharePolicy>();
        break;
      default:
        comp->policy = std::make_unique<NeverSharePolicy>();
        break;
    }
  }
}

StreamExecutor::~StreamExecutor() = default;

void StreamExecutor::OpenDueWindows(GroupRunner& runner, Timestamp pane_start,
                                    bool retroactive) {
  Component& comp = *runner.comp;
  const bool hamlet_kind = runner.hamlet != nullptr;
  const bool cohort_kind = config_.kind == EngineKind::kTwoStep ||
                           config_.kind == EngineKind::kSharon;
  auto open_one = [&](int owner, Timestamp ws, Timestamp within) {
    WindowSlot slot;
    slot.owner = owner;
    slot.ws = ws;
    slot.we = ws + within;
    slot.last_arrival_wall = NowSeconds();
    if (cohort_kind) {
      const QuerySet& cohort_members =
          comp.cohorts[static_cast<size_t>(owner)].second;
      if (config_.kind == EngineKind::kTwoStep) {
        slot.two_step = std::make_unique<TwoStepEngine>(
            *plan_, cohort_members, config_.two_step_budget);
      } else {
        slot.sharon = std::make_unique<SharonEngine>(
            *plan_, cohort_members, config_.sharon_max_length);
      }
    } else if (hamlet_kind) {
      slot.ctx = runner.hamlet->OpenContext(owner, ws, slot.we);
    } else {
      slot.greta = std::make_unique<GretaEngine>(
          plan_->exec_queries[static_cast<size_t>(owner)],
          config_.kind == EngineKind::kGretaPrefix ? GretaMode::kPrefixSum
                                                   : GretaMode::kGraph);
    }
    runner.windows.push_back(std::move(slot));
  };
  auto open_for = [&](int owner, const WindowSpec& spec) {
    if (retroactive) {
      // New runner: open every slide-aligned instance covering this pane.
      // The group had no earlier events, so the retroactive spans are empty
      // and the counts exact.
      Timestamp first = (pane_start / spec.slide) * spec.slide;
      for (Timestamp ws = first; ws > pane_start - spec.within && ws >= 0;
           ws -= spec.slide) {
        open_one(owner, ws, spec.within);
      }
    } else if (pane_start % spec.slide == 0) {
      open_one(owner, pane_start, spec.within);
    }
  };
  if (cohort_kind) {
    for (size_t c = 0; c < comp.cohorts.size(); ++c)
      open_for(static_cast<int>(c), comp.cohorts[c].first);
  } else {
    comp.members.ForEach([&](QueryId q) {
      open_for(q, plan_->exec_queries[static_cast<size_t>(q)].window);
    });
  }
}

void StreamExecutor::EmitExecValue(const Component& comp, int exec_id,
                                   int64_t group_key, Timestamp window_start,
                                   double value, double arrival_wall,
                                   RunOutput* out) {
  (void)comp;
  const ExecQuery& eq = plan_->exec_queries[static_cast<size_t>(exec_id)];
  const CompositionRule& rule =
      plan_->compositions[static_cast<size_t>(eq.source)];
  double final_value = value;
  if (rule.kind != CompositionKind::kSingle) {
    auto key = std::make_tuple(eq.source, group_key, window_start);
    auto& values = pending_compositions_[key];
    values.resize(rule.exec_ids.size(),
                  std::numeric_limits<double>::quiet_NaN());
    for (size_t b = 0; b < rule.exec_ids.size(); ++b) {
      if (rule.exec_ids[b] == exec_id) values[b] = value;
    }
    for (double v : values) {
      if (std::isnan(v)) return;  // waiting for the other branch
    }
    final_value = ComposeQueryValue(rule, values);
    pending_compositions_.erase(key);
  }
  const double latency = NowSeconds() - arrival_wall;
  latency_sum_ += latency;
  latency_max_ = std::max(latency_max_, latency);
  ++latency_count_;
  if (config_.collect_emissions) {
    out->emissions.push_back(
        {eq.source, group_key, window_start, final_value});
  }
}

void StreamExecutor::CloseExpiredWindows(GroupRunner& runner, Timestamp now,
                                         RunOutput* out) {
  Component& comp = *runner.comp;
  for (size_t i = 0; i < runner.windows.size();) {
    WindowSlot& w = runner.windows[i];
    if (w.we > now) {
      ++i;
      continue;
    }
    if (runner.hamlet != nullptr) {
      ContextResult r = runner.hamlet->CloseContext(w.ctx);
      EmitExecValue(comp, w.owner, runner.group_key, w.ws, r.value,
                    w.last_arrival_wall, out);
    } else if (w.greta != nullptr) {
      EmitExecValue(comp, w.owner, runner.group_key, w.ws, w.greta->Value(),
                    w.last_arrival_wall, out);
    } else if (w.two_step != nullptr) {
      Status s = w.two_step->Finish();
      if (!s.ok()) {
        ++dnf_windows_;
      } else {
        comp.cohorts[static_cast<size_t>(w.owner)].second.ForEach(
            [&](QueryId q) {
              EmitExecValue(comp, q, runner.group_key, w.ws,
                            w.two_step->Value(q), w.last_arrival_wall, out);
            });
      }
    } else if (w.sharon != nullptr) {
      comp.cohorts[static_cast<size_t>(w.owner)].second.ForEach(
          [&](QueryId q) {
            if (!w.sharon->Supported(q)) return;
            EmitExecValue(comp, q, runner.group_key, w.ws, w.sharon->Value(q),
                          w.last_arrival_wall, out);
          });
    }
    runner.windows[i] = std::move(runner.windows.back());
    runner.windows.pop_back();
  }
}

int64_t StreamExecutor::CurrentMemory() const {
  int64_t bytes = 0;
  for (const auto& comp : components_) {
    for (const auto& [key, runner] : comp->groups) {
      if (runner->hamlet) bytes += runner->hamlet->MemoryBytes();
      for (const WindowSlot& w : runner->windows) {
        if (w.greta) bytes += w.greta->MemoryBytes();
        if (w.two_step) bytes += w.two_step->MemoryBytes();
        if (w.sharon) bytes += w.sharon->MemoryBytes();
      }
    }
  }
  return bytes;
}

void StreamExecutor::AdvancePaneTo(Timestamp new_pane_start, RunOutput* out) {
  const Timestamp pane = plan_->pane_size;
  while (!pane_started_ || pane_start_ < new_pane_start) {
    const Timestamp boundary =
        pane_started_ ? pane_start_ + pane : new_pane_start;
    // Sample before closures so full windows count toward the peak.
    peak_memory_ = std::max(peak_memory_, CurrentMemory());
    for (auto& comp : components_) {
      for (auto& [key, runner] : comp->groups) {
        if (runner->hamlet && pane_started_) runner->hamlet->OnPaneEnd();
        CloseExpiredWindows(*runner, boundary, out);
        OpenDueWindows(*runner, boundary, /*retroactive=*/false);
        if (runner->hamlet) runner->hamlet->OnPaneStart(boundary);
      }
    }
    pane_start_ = boundary;
    pane_started_ = true;
    peak_memory_ = std::max(peak_memory_, CurrentMemory());
  }
}

RunOutput StreamExecutor::Run(const EventVector& events) {
  RunOutput out;
  run_start_wall_ = NowSeconds();
  const Timestamp pane = plan_->pane_size;
  int64_t processed = 0;
  for (const Event& e : events) {
    const Timestamp event_pane = (e.time / pane) * pane;
    if (!pane_started_ || event_pane > pane_start_)
      AdvancePaneTo(event_pane, &out);
    ++processed;
    const double arrival = NowSeconds();
    for (auto& compp : components_) {
      Component& comp = *compp;
      if (e.type < 0 ||
          e.type >= static_cast<TypeId>(comp.type_mask.size()) ||
          !comp.type_mask[static_cast<size_t>(e.type)])
        continue;
      const int64_t key =
          comp.group_by == Schema::kInvalidId
              ? 0
              : static_cast<int64_t>(std::llround(e.attr(comp.group_by)));
      auto it = comp.groups.find(key);
      GroupRunner* runner;
      if (it == comp.groups.end()) {
        auto created = std::make_unique<GroupRunner>();
        created->comp = &comp;
        created->group_key = key;
        if (config_.kind == EngineKind::kHamletDynamic ||
            config_.kind == EngineKind::kHamletStatic ||
            config_.kind == EngineKind::kHamletNoShare) {
          created->hamlet = std::make_unique<HamletEngine>(
              *plan_, comp.members, comp.policy.get());
        }
        runner = created.get();
        comp.groups[key] = std::move(created);
        OpenDueWindows(*runner, pane_start_, /*retroactive=*/true);
        if (runner->hamlet) runner->hamlet->OnPaneStart(pane_start_);
      } else {
        runner = it->second.get();
      }
      for (WindowSlot& w : runner->windows) w.last_arrival_wall = arrival;
      if (runner->hamlet) {
        runner->hamlet->OnEvent(e);
      } else {
        for (WindowSlot& w : runner->windows) {
          if (e.time < w.ws || e.time >= w.we) continue;
          if (w.greta) w.greta->OnEvent(e);
          if (w.two_step) w.two_step->OnEvent(e);
          if (w.sharon) w.sharon->OnEvent(e);
        }
      }
    }
  }
  // Flush: advance to the last window end (window ends are pane-aligned).
  Timestamp flush_to = pane_started_ ? pane_start_ : 0;
  for (const auto& comp : components_) {
    for (const auto& [key, runner] : comp->groups) {
      for (const WindowSlot& w : runner->windows)
        flush_to = std::max(flush_to, w.we);
    }
  }
  AdvancePaneTo(flush_to, &out);

  out.metrics.events = processed;
  out.metrics.elapsed_seconds = NowSeconds() - run_start_wall_;
  out.metrics.emissions = latency_count_;
  out.metrics.avg_latency_seconds =
      latency_count_ == 0 ? 0.0 : latency_sum_ / latency_count_;
  out.metrics.max_latency_seconds = latency_max_;
  out.metrics.throughput_eps =
      out.metrics.elapsed_seconds <= 0
          ? 0
          : static_cast<double>(processed) / out.metrics.elapsed_seconds;
  out.metrics.peak_memory_bytes = std::max(peak_memory_, CurrentMemory());
  out.metrics.dnf_windows = dnf_windows_;
  for (const auto& comp : components_) {
    for (const auto& [key, runner] : comp->groups) {
      if (!runner->hamlet) continue;
      const HamletStats& s = runner->hamlet->stats();
      out.metrics.hamlet.events += s.events;
      out.metrics.hamlet.bursts_total += s.bursts_total;
      out.metrics.hamlet.bursts_shared += s.bursts_shared;
      out.metrics.hamlet.graphlets_opened += s.graphlets_opened;
      out.metrics.hamlet.graphlets_shared += s.graphlets_shared;
      out.metrics.hamlet.snapshots_created += s.snapshots_created;
      out.metrics.hamlet.event_snapshots += s.event_snapshots;
      out.metrics.hamlet.splits += s.splits;
      out.metrics.hamlet.merges += s.merges;
      out.metrics.hamlet.ops += s.ops;
    }
    if (config_.kind == EngineKind::kHamletDynamic) {
      auto* dyn = static_cast<DynamicBenefitPolicy*>(comp->policy.get());
      out.metrics.decisions += dyn->decisions();
    }
  }
  std::sort(out.emissions.begin(), out.emissions.end(),
            [](const Emission& a, const Emission& b) {
              return std::tie(a.window_start, a.query, a.group_key) <
                     std::tie(b.window_start, b.query, b.group_key);
            });
  return out;
}

}  // namespace hamlet
