// Query lifecycle for live sessions (the paper assumes a FIXED workload,
// §2.1 — this subsystem lifts that assumption for the runtime).
//
// A QueryLifecycle tracks the CURRENT query set of a running session and
// compiles it — plus any online-optimizer SharingOverrides — into a fresh
// plan "epoch" (workload copy + WorkloadPlan + PredicateProgram inputs)
// that the session activates at a pane boundary:
//
//   AddQuery    -> new epoch; the added query starts emitting at the first
//                  pane boundary strictly after everything already pushed
//                  (windows starting earlier are suppressed — they would
//                  miss events the session consumed before the add).
//   RemoveQuery -> new epoch without the query; the old epoch keeps running
//                  until every window opened under it has closed and
//                  emitted (drain), then its state is evicted.
//   Plan swap   -> same mechanism with an unchanged query set but a
//                  restricted share-group structure (online_optimizer.h).
//
// Correctness: sharing never changes emission values, and an epoch only
// emits windows [emit_from, emit_until) on its own grid, so the union of
// epochs' emissions equals a fresh session per activation interval
// (tests/query_churn_test.cc proves this bit-identically for all engines).
//
// Validation is two-phase so ShardedSession can pre-validate on the front
// thread and then apply infallibly on every shard worker.
#ifndef HAMLET_RUNTIME_QUERY_LIFECYCLE_H_
#define HAMLET_RUNTIME_QUERY_LIFECYCLE_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/plan/workload_plan.h"
#include "src/query/query.h"

namespace hamlet {

class QueryLifecycle {
 public:
  /// Upper bound on concurrently live plan epochs in one session. AddQuery/
  /// RemoveQuery fail with kResourceExhausted once this many epochs are
  /// still draining — a natural backpressure against churn storms. (Plan
  /// swaps broadcast by a ShardedSession front bypass the cap: the front
  /// already throttles, and shards must not diverge.)
  static constexpr int kMaxLiveEpochs = 8;

  /// One compiled plan generation. `plan->workload` points at `workload`,
  /// which the epoch keeps alive; `potential_groups` is the UNRESTRICTED
  /// share-group search space captured before overrides were applied (the
  /// online reoptimizer needs it so split groups can re-merge).
  struct CompiledEpoch {
    std::shared_ptr<const Workload> workload;
    std::unique_ptr<WorkloadPlan> plan;
    std::vector<ShareGroup> potential_groups;
    std::vector<SharingOverride> applied;
  };

  /// Seeds the live query list from the session's opening workload. The
  /// queries are copied; `initial.schema()` must outlive the lifecycle.
  void Init(const Workload& initial);

  Schema* schema() const { return schema_; }
  int size() const { return static_cast<int>(queries_.size()); }
  const std::vector<Query>& queries() const { return queries_; }
  bool Contains(const std::string& name) const;

  /// Rejects unnamed queries (mid-run auto-naming could collide), duplicate
  /// names, and queries that do not resolve against the CURRENT schema
  /// (validation never registers new names — a rejected add must leave the
  /// schema untouched).
  Status ValidateAdd(const Query& q) const;
  /// Rejects unknown names and removing the last query (an empty workload
  /// has no pane grid; close the session instead).
  Status ValidateRemove(const std::string& name) const;

  /// Validates, tentatively applies the mutation, compiles the new query
  /// set with `overrides`, and rolls the mutation back if compilation
  /// fails — so a rejected churn op leaves the lifecycle exactly as it was.
  Result<CompiledEpoch> TryAdd(const Query& q,
                               std::span<const SharingOverride> overrides);
  Result<CompiledEpoch> TryRemove(const std::string& name,
                                  std::span<const SharingOverride> overrides);

  /// Recompiles the CURRENT query set under `overrides` (plan hot swap).
  Result<CompiledEpoch> Compile(
      std::span<const SharingOverride> overrides) const;

  /// Restores a previously captured query list — the session's rollback
  /// hook for failures that happen AFTER TryAdd/TryRemove committed (e.g.
  /// predicate-program compilation of the new epoch).
  void Reset(std::vector<Query> queries) { queries_ = std::move(queries); }

  /// First pane boundary strictly after `max_seen` on the pane grid of the
  /// epoch being superseded — where the new epoch starts emitting. 0 when
  /// the session has not seen any event or watermark yet (the swap is then
  /// immediate and the old epoch never starts).
  static Timestamp ActivationBoundary(Timestamp pane_size, bool any_seen,
                                      Timestamp max_seen) {
    if (!any_seen || pane_size <= 0) return 0;
    return (max_seen / pane_size + 1) * pane_size;
  }

 private:
  Schema* schema_ = nullptr;
  std::vector<Query> queries_;
};

}  // namespace hamlet

#endif  // HAMLET_RUNTIME_QUERY_LIFECYCLE_H_
