// Thread wrapper: the only place in src/ allowed to spawn OS threads.
//
// Runtime code outside src/common/ must use hamlet::Thread instead of raw
// std::thread (enforced by tools/lint/). Centralizing thread creation keeps
// the concurrency surface enumerable: every thread in the system is either
// a ShardedSession worker, the MpscIngestHub sequencer, or a test/bench
// driver — and each one's role shows up in the thread-safety capability map
// (see docs/STATIC_ANALYSIS.md).
//
// The wrapper is intentionally thin: same move semantics as std::thread,
// but join-on-destruction (std::jthread's sane default, without requiring
// C++20's stop_token machinery) so a detached-thread leak can't be written
// by accident.
#ifndef HAMLET_COMMON_THREAD_H_
#define HAMLET_COMMON_THREAD_H_

#include <thread>
#include <utility>

namespace hamlet {

/// Joinable-by-default thread. No Detach() on purpose: every thread in the
/// runtime has an owner that outlives it and shuts it down explicitly.
class Thread {
 public:
  Thread() = default;

  template <typename Fn, typename... Args>
  explicit Thread(Fn&& fn, Args&&... args)
      : thread_(std::forward<Fn>(fn), std::forward<Args>(args)...) {}

  Thread(Thread&&) = default;
  Thread& operator=(Thread&& other) {
    if (this != &other) {
      if (thread_.joinable()) thread_.join();
      thread_ = std::move(other.thread_);
    }
    return *this;
  }

  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;

  ~Thread() {
    if (thread_.joinable()) thread_.join();
  }

  bool Joinable() const { return thread_.joinable(); }
  void Join() { thread_.join(); }

 private:
  std::thread thread_;
};

}  // namespace hamlet

#endif  // HAMLET_COMMON_THREAD_H_
