// Bounded single-producer / single-consumer ring queue.
//
// The ShardedSession ingress path (src/runtime/sharded_session.h) moves one
// batch message per staging flush from the caller thread to a shard worker;
// this queue keeps that hand-off wait-free in the common case: one release store per
// TryPush, one release store per TryPop, no locks, no allocation after
// construction. Exactly one thread may call TryPush and exactly one thread
// may call TryPop; the queue itself never blocks — callers decide how to
// wait when it is full (backpressure) or empty (parking).
//
// Layout follows the classic Lamport ring: head_ (next slot to pop) and
// tail_ (next slot to push) monotonically increase and are reduced modulo a
// power-of-two capacity. Each index lives on its own cache line so the
// producer and consumer do not false-share.
//
// Memory-order contract (the whole correctness argument — keep in sync with
// any change to the loads/stores below):
//
//   tail_  is written ONLY by the producer. Its release store in TryPush
//          publishes the slot write that precedes it; the consumer's acquire
//          loads (TryPop/Peek/Empty) synchronize with it, so observing
//          `tail_ > head` implies the slot's payload is fully constructed.
//          The producer's own loads of tail_ are relaxed — it is the only
//          writer, so it always sees its own latest value.
//
//   head_  is the mirror image: written ONLY by the consumer, release store
//          in TryPop publishing the slot RESET (the T{} assignment), so the
//          producer's acquire load in TryPush knows the slot's old payload
//          has been moved out before it overwrites it. The consumer's own
//          loads of head_ are relaxed.
//
//   Neither index ever needs seq_cst: each side spins on the OTHER side's
//   index, and a stale read only under-reports available slots/items —
//   conservative in both directions (a spurious "full"/"empty" retries; it
//   can never fabricate a slot).
//
//   ApproxSize is producer-exact / consumer-approximate by the same
//   argument, and clamps to 0 against the (possible) torn head>tail view a
//   third observer could see — it is a load-only metric, never a publisher.
#ifndef HAMLET_COMMON_SPSC_QUEUE_H_
#define HAMLET_COMMON_SPSC_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/check.h"

namespace hamlet {

template <typename T>
class SpscQueue {
 public:
  /// Capacity is rounded up to the next power of two (minimum 2).
  explicit SpscQueue(size_t min_capacity) {
    size_t cap = 2;
    while (cap < min_capacity) cap *= 2;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Producer side. Returns false when full, in which case `v` is left
  /// intact so the caller can retry.
  bool TryPush(T&& v) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) > mask_) return false;
    slots_[tail & mask_] = std::move(v);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when empty.
  bool TryPop(T* out) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return false;
    *out = std::move(slots_[head & mask_]);
    // Reset the slot: a moved-from T may legally keep its heap storage
    // (std::vector does), and without the reset up to `capacity` popped
    // payloads would stay alive inside the ring — invisible retained
    // memory for heap-backed message types like event batches.
    slots_[head & mask_] = T{};
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: pointer to the front element without popping it, or
  /// nullptr when empty. The slot stays owned by the queue until TryPop —
  /// the k-way merge in the multi-producer sequencer peeks every producer
  /// ring to find the minimum timestamp before committing to a pop.
  const T* Peek() const {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return nullptr;
    return &slots_[head & mask_];
  }

  /// Consumer-side view; the producer may have pushed more already.
  bool Empty() const {
    return head_.load(std::memory_order_relaxed) ==
           tail_.load(std::memory_order_acquire);
  }

  /// Number of occupied slots at some recent instant. Exact from the
  /// producer thread between its own pushes (the consumer can only have
  /// drained more); the adaptive batcher uses it as its queue-occupancy
  /// signal.
  size_t ApproxSize() const {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    const uint64_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? static_cast<size_t>(tail - head) : 0;
  }

  size_t capacity() const { return mask_ + 1; }

 private:
  // The hot path is two atomic uint64 ops per message; a type change that
  // demoted either index to a locking atomic would silently serialize every
  // shard hand-off, so lock-freeness is a compile-time invariant.
  static_assert(std::atomic<uint64_t>::is_always_lock_free,
                "SpscQueue's ring indices must be lock-free atomics");

  std::vector<T> slots_;
  size_t mask_ = 0;
  alignas(64) std::atomic<uint64_t> head_{0};
  alignas(64) std::atomic<uint64_t> tail_{0};
};

}  // namespace hamlet

#endif  // HAMLET_COMMON_SPSC_QUEUE_H_
