// Aligned-table / CSV printer for bench output.
//
// Every bench binary prints the series a paper figure reports, both as an
// aligned human-readable table and as CSV (for plotting).
#ifndef HAMLET_COMMON_TABLE_H_
#define HAMLET_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace hamlet {

/// Collects rows of string cells and renders them.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void AddRow(std::vector<std::string> cells);

  /// Formats a double with `precision` significant decimal digits.
  static std::string Num(double v, int precision = 3);

  /// Renders with padded columns, `|` separators and a header rule.
  std::string ToAligned() const;

  /// Renders as CSV (header first).
  std::string ToCsv() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hamlet

#endif  // HAMLET_COMMON_TABLE_H_
