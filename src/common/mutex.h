// Annotated synchronization primitives: Clang Thread Safety Analysis made
// mandatory for the concurrent runtime.
//
// Every lock in src/ outside this directory must be one of these wrappers,
// never a raw std::mutex/std::scoped_lock (enforced by tools/lint/). The
// wrappers carry Clang's thread-safety capability attributes, so a build
// with -Wthread-safety (CMake option HAMLET_THREAD_SAFETY, preset
// `thread-safety`) proves at compile time that:
//
//  * every field marked HAMLET_GUARDED_BY(mu) is only touched while `mu`
//    is held (MutexLock in scope, or a function annotated
//    HAMLET_REQUIRES(mu));
//  * a function annotated HAMLET_REQUIRES(cap) is only called from
//    contexts that hold `cap`;
//  * scoped locks are not double-acquired or leaked across paths.
//
// On non-Clang compilers (the tier-1 GCC build) every attribute expands to
// nothing and the wrappers compile to the std primitives they wrap — zero
// runtime or codegen difference either way.
//
// Capability aliases for thread roles
// -----------------------------------
// Not all single-writer state is guarded by a runtime lock: the sharded
// runtime has state owned by "whichever thread is the front" (the caller
// thread in single-producer mode, the sequencer thread in multi-producer
// mode) that is never locked because exactly one thread can be the front at
// a time. ThreadRole gives that ownership discipline a *static* identity:
// it is a phantom capability with no runtime state — Acquire()/Release()
// compile to nothing — but fields marked HAMLET_GUARDED_BY(role) and
// helpers marked HAMLET_REQUIRES(role) are checked exactly like
// mutex-guarded state. Entry points that ARE the role's thread take a
// ThreadRoleGuard; everything downstream is then proven to run only on
// that thread's call paths. (The analysis is static: it cannot catch two
// threads calling the same entry point at runtime — that contract stays
// dynamic, see the TSan preset — but it rejects the bug class we actually
// shipped: a new code path reaching role-owned state from the wrong side.)
#ifndef HAMLET_COMMON_MUTEX_H_
#define HAMLET_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

namespace hamlet {

// ---------------------------------------------------------------------------
// Clang Thread Safety Analysis attribute macros.
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
// ---------------------------------------------------------------------------
#if defined(__clang__)
#define HAMLET_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define HAMLET_THREAD_ANNOTATION_(x)  // no-op off Clang
#endif

/// Marks a type as a capability (lockable). The string names the kind in
/// diagnostics ("mutex", "role").
#define HAMLET_CAPABILITY(x) HAMLET_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases a
/// capability.
#define HAMLET_SCOPED_CAPABILITY HAMLET_THREAD_ANNOTATION_(scoped_lockable)

/// Field may only be accessed while holding the given capability.
#define HAMLET_GUARDED_BY(x) HAMLET_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer field: the *pointee* may only be accessed while holding the
/// capability (the pointer itself is unguarded).
#define HAMLET_PT_GUARDED_BY(x) HAMLET_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function requires the capability to be held on entry (and does not
/// release it).
#define HAMLET_REQUIRES(...) \
  HAMLET_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function must NOT be called with the capability held (deadlock guard).
#define HAMLET_EXCLUDES(...) \
  HAMLET_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function acquires the capability and holds it past return.
#define HAMLET_ACQUIRE(...) \
  HAMLET_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define HAMLET_RELEASE(...) \
  HAMLET_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `ret`.
#define HAMLET_TRY_ACQUIRE(ret, ...) \
  HAMLET_THREAD_ANNOTATION_(try_acquire_capability(ret, __VA_ARGS__))

/// Declares lock acquisition order (deadlock prevention documentation;
/// checked when -Wthread-safety-beta is on).
#define HAMLET_ACQUIRED_BEFORE(...) \
  HAMLET_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define HAMLET_ACQUIRED_AFTER(...) \
  HAMLET_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Asserts (without acquiring) that the capability is held — for call paths
/// the analysis cannot follow, e.g. a callback invoked under a lock.
#define HAMLET_ASSERT_CAPABILITY(x) \
  HAMLET_THREAD_ANNOTATION_(assert_capability(x))

/// Returns a reference to the given capability (getter annotations).
#define HAMLET_RETURN_CAPABILITY(x) HAMLET_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch. Every use MUST carry an inline comment justifying why the
/// analysis cannot see the invariant (tools/lint/ flags bare uses... by
/// review convention; the analysis itself cannot).
#define HAMLET_NO_THREAD_SAFETY_ANALYSIS \
  HAMLET_THREAD_ANNOTATION_(no_thread_safety_analysis)

// ---------------------------------------------------------------------------
// Wrappers
// ---------------------------------------------------------------------------

class CondVar;

/// std::mutex with a capability identity. Prefer MutexLock over manual
/// Lock/Unlock — the scoped form is what the analysis checks best.
class HAMLET_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() HAMLET_ACQUIRE() { mu_.lock(); }
  void Unlock() HAMLET_RELEASE() { mu_.unlock(); }
  bool TryLock() HAMLET_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  friend class CondVar;
  std::mutex mu_;
};

/// Scoped lock over a Mutex (the std::lock_guard/std::unique_lock
/// replacement). Holds from construction to destruction; CondVar::Wait*
/// may release and reacquire it in between, which preserves the scoped
/// capability as far as the analysis is concerned (the lock is held again
/// whenever user code runs).
class HAMLET_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) HAMLET_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() HAMLET_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable bound to Mutex/MutexLock. Wait/WaitFor take the live
/// MutexLock; the caller must hold it on the condvar's own mutex — the
/// analysis enforces that indirectly (any guarded state consulted in the
/// wait predicate needs the lock in scope), and the std layer enforces it
/// dynamically (undefined behavior otherwise, caught by TSan).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  template <typename Rep, typename Period>
  std::cv_status WaitFor(MutexLock& lock,
                         const std::chrono::duration<Rep, Period>& timeout) {
    return cv_.wait_for(lock.lock_, timeout);
  }

 private:
  std::condition_variable cv_;
};

/// Phantom capability naming a logical thread role (see file comment).
/// Acquire/Release compile to nothing; the value is purely the static
/// check that role-guarded state is only reached from role-holding paths.
class HAMLET_CAPABILITY("role") ThreadRole {
 public:
  ThreadRole() = default;
  ThreadRole(const ThreadRole&) = delete;
  ThreadRole& operator=(const ThreadRole&) = delete;

  void Acquire() HAMLET_ACQUIRE() {}
  void Release() HAMLET_RELEASE() {}
};

/// Scoped role occupancy: construct at the top of an entry point that runs
/// on the role's thread. Zero-cost (the "lock" is a no-op); exists so the
/// analysis can tie the scope to HAMLET_GUARDED_BY(role) fields.
class HAMLET_SCOPED_CAPABILITY ThreadRoleGuard {
 public:
  explicit ThreadRoleGuard(ThreadRole& role) HAMLET_ACQUIRE(role)
      : role_(role) {
    role_.Acquire();
  }
  ~ThreadRoleGuard() HAMLET_RELEASE() { role_.Release(); }

  ThreadRoleGuard(const ThreadRoleGuard&) = delete;
  ThreadRoleGuard& operator=(const ThreadRoleGuard&) = delete;

 private:
  ThreadRole& role_;
};

}  // namespace hamlet

#endif  // HAMLET_COMMON_MUTEX_H_
