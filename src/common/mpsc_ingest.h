// Multi-producer ingest hub: N per-producer SPSC rings merged into ONE
// time-ordered stream by a single sequencer thread.
//
// The sharded runtime's ingress contract is single-producer: one caller
// thread validates global event order and stages events to shard queues.
// MpscIngestHub lifts that to N concurrent producers WITHOUT a global lock
// or a CAS-contended MPSC ring: each producer owns a private SPSC ring
// (src/common/spsc_queue.h) plus one atomic lower bound, and the sequencer
// runs a k-way merge across the rings. The merge never blocks a producer
// and producers never synchronize with each other — the only shared state
// per producer is its ring indices and its bound.
//
// The bound is the whole trick. Every producer slot publishes `next_min`:
// the smallest timestamp that producer may still push. It advances on every
// push (to t+1, since a producer's own stream is strictly increasing) and
// on every producer-side watermark (to max(next_min, w)); closing a slot
// pins it at +inf. The sequencer may release the globally smallest buffered
// event e exactly when e.time <= the bound of every OTHER active slot: no
// producer can later push anything earlier, so the release order equals the
// order of a single merged stream. The same scan yields the FRONTIER —
//     min over active slots of (front event time, or next_min when empty)
// — which is simultaneously (a) the release horizon and (b) the merged
// watermark the session may safely broadcast: after the sequencer drains
// until stuck, frontier >= every released timestamp, so advancing the
// downstream gate to the frontier can never regress it.
//
// Both monotone by construction: each slot's bound only grows (max-stores
// by a single writer), a freed slot leaves at +inf, and a newly claimed
// slot starts at max(released_max + 1, claim floor) — it can constrain the
// future, never un-release the past.
//
// Ordering discipline (the two loads/stores that make the merge sound):
//  * producer: ring push FIRST, then publish next_min (release). A bound
//    of t+1 therefore proves event t is already visible in the ring.
//  * sequencer: load next_min (acquire) BEFORE peeking the ring. A stale
//    bound is merely conservative (delays a release); the acquire pairs
//    with the producer's release so a bound of t+1 guarantees the peek
//    sees event t if it is still queued.
//
// Per-atomic memory-order contract (keep in sync with the code):
//
//   Slot::next_min   Single writer (the owning producer; plus claim-time
//                    init while the slot is kReserved, i.e. owned by the
//                    claimer). Release stores publish "everything at times
//                    < bound is already in the ring"; the sequencer's
//                    acquire loads pair with them (the bound-before-peek
//                    rule above). Owner-side reads are relaxed — the owner
//                    sees its own stores. Monotone except the kTimeMax pin
//                    on close.
//
//   Slot::state      The slot lifecycle CAS ring: kFree -CAS(acq_rel)->
//                    kReserved -> kOpen (release, publishing ring + bound
//                    init) -> kClosing (release, after the closed-floor
//                    latch) -> kFree (sequencer release, after the drain).
//                    Sequencer reads are acquire so a kOpen/kClosing
//                    observation implies the slot's ring pointer and bound
//                    are visible.
//
//   released_max_    Written only by the sequencer (release); claimers
//                    acquire-read it so a new slot's bound starts above
//                    every released timestamp THEY can observe. Relaxed
//                    sequencer self-reads.
//
//   claim_floor_     Monotone max, sequencer release-stores (after a
//                    watermark broadcast), claimers acquire-read. A stale
//                    read is conservative: the per-producer gate and the
//                    downstream ordering gate still reject anything below
//                    the broadcast horizon.
//
//   closed_floor_    Monotone max via CAS(release) in CloseSlot — the
//                    latch that makes a departing producer's final
//                    watermark deterministic; Frontier acquire-reads it
//                    only when no slot contributes.
//
//   active_          Claim/recycle counter, acq_rel RMWs; Quiescent's
//                    acquire load pairs with the recycling fetch_sub so
//                    "0 active" implies every ring drain is visible.
//
// What the hub does NOT do: validate. Producers enforce their own per-
// producer ordering gates upstream; cross-producer violations (duplicate
// timestamps, a late joiner pushing below the released horizon) surface as
// ordinary ordering-gate rejections on the merged stream downstream —
// never as silent misordering.
//
// Threading: ClaimSlot may be called from any thread (slot acquisition is
// a CAS). After a claim, exactly ONE thread may use that slot's TryPush /
// PublishBound / CloseSlot. Exactly one thread (the sequencer) may call
// TryNext / Frontier / Quiescent / released_max.
#ifndef HAMLET_COMMON_MPSC_INGEST_H_
#define HAMLET_COMMON_MPSC_INGEST_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>

#include "src/common/check.h"
#include "src/common/spsc_queue.h"

namespace hamlet {

/// See file comment. `T` needs a public integral `.time` member (the merge
/// key) and must be movable; the sharded runtime instantiates it with
/// Event. `TimeT` is the timestamp type.
template <typename T, typename TimeT = int64_t>
class MpscIngestHub {
 public:
  static constexpr int kMaxProducers = 64;
  static constexpr TimeT kTimeMax = std::numeric_limits<TimeT>::max();
  static constexpr TimeT kTimeMin = std::numeric_limits<TimeT>::min();

  /// `ring_capacity` is each producer ring's capacity (rounded up to a
  /// power of two, minimum 2). Rings allocate lazily on first claim of
  /// their slot and are reused across claim/close cycles.
  explicit MpscIngestHub(size_t ring_capacity)
      : ring_capacity_(ring_capacity < 2 ? 2 : ring_capacity) {}

  MpscIngestHub(const MpscIngestHub&) = delete;
  MpscIngestHub& operator=(const MpscIngestHub&) = delete;

  // ------------------------------------------------------------------
  // Producer side (one thread per claimed slot)
  // ------------------------------------------------------------------

  /// Claims a free slot, or returns -1 when all kMaxProducers are taken.
  /// The new slot's bound starts at max(released_max + 1, claim floor):
  /// anything this producer pushes below that is already merged past and
  /// will be rejected downstream, so the bound excludes it up front and
  /// the joiner can never stall the frontier behind history.
  int ClaimSlot() {
    for (int i = 0; i < kMaxProducers; ++i) {
      Slot& s = slots_[i];
      uint32_t expect = kFree;
      if (!s.state.compare_exchange_strong(expect, kReserved,
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed)) {
        continue;
      }
      if (s.ring == nullptr) {
        s.ring = std::make_unique<SpscQueue<T>>(ring_capacity_);
      }
      const TimeT released = released_max_.load(std::memory_order_acquire);
      const TimeT floor = claim_floor_.load(std::memory_order_acquire);
      TimeT bound = released == kTimeMin ? kTimeMin : released + 1;
      if (floor > bound) bound = floor;
      s.next_min.store(bound, std::memory_order_release);
      s.state.store(kOpen, std::memory_order_release);
      active_.fetch_add(1, std::memory_order_acq_rel);
      return i;
    }
    return -1;
  }

  /// Pushes one element into `slot`'s ring. Returns false when the ring is
  /// full (element intact — the caller decides how to wait; the sequencer
  /// draining guarantees progress). The slot's bound advances to time+1
  /// AFTER the push is visible (see file comment, ordering discipline).
  bool TryPush(int slot, T&& v) {
    Slot& s = slots_[static_cast<size_t>(slot)];
    HAMLET_DCHECK(s.state.load(std::memory_order_relaxed) == kOpen);
    const TimeT t = v.time;
    if (!s.ring->TryPush(std::move(v))) return false;
    const TimeT bound = t == kTimeMax ? kTimeMax : t + 1;
    if (bound > s.next_min.load(std::memory_order_relaxed)) {
      s.next_min.store(bound, std::memory_order_release);
    }
    return true;
  }

  /// Producer-side watermark: promises this slot will never push an
  /// element with time < `w`. Lets the frontier advance past an idle
  /// producer. Monotone (a lower bound is ignored).
  void PublishBound(int slot, TimeT w) {
    Slot& s = slots_[static_cast<size_t>(slot)];
    HAMLET_DCHECK(s.state.load(std::memory_order_relaxed) == kOpen);
    if (w > s.next_min.load(std::memory_order_relaxed)) {
      s.next_min.store(w, std::memory_order_release);
    }
  }

  /// The slot's current bound — callable by the slot's owning thread, e.g.
  /// right after ClaimSlot to seed the producer's own ordering gate with
  /// the admission bound (events below it would be rejected downstream
  /// anyway; rejecting them at the handle is synchronous and per-producer).
  TimeT slot_bound(int slot) const {
    return slots_[static_cast<size_t>(slot)].next_min.load(
        std::memory_order_acquire);
  }

  /// Retires the slot: bound pins at +inf and the state moves to kClosing.
  /// The sequencer frees the slot for reuse once it drains the remaining
  /// ring contents; the producer must not touch the slot afterwards. The
  /// slot's final bound is latched into the closed floor FIRST, so the
  /// producer's last watermark survives its departure (see Frontier) —
  /// without the latch, whether a final watermark took effect would race
  /// against the close.
  void CloseSlot(int slot) {
    Slot& s = slots_[static_cast<size_t>(slot)];
    HAMLET_DCHECK(s.state.load(std::memory_order_relaxed) == kOpen);
    const TimeT final_bound = s.next_min.load(std::memory_order_relaxed);
    TimeT floor = closed_floor_.load(std::memory_order_relaxed);
    while (floor < final_bound &&
           !closed_floor_.compare_exchange_weak(floor, final_bound,
                                                std::memory_order_release,
                                                std::memory_order_relaxed)) {
    }
    s.next_min.store(kTimeMax, std::memory_order_release);
    s.state.store(kClosing, std::memory_order_release);
  }

  // ------------------------------------------------------------------
  // Sequencer side (exactly one thread)
  // ------------------------------------------------------------------

  /// Pops the globally smallest releasable element into `*out`. Returns
  /// false when nothing is releasable RIGHT NOW — either every ring is
  /// empty, or the smallest buffered element is still blocked by an
  /// emptier slot's bound (that producer might yet push something
  /// earlier). Also garbage-collects drained kClosing slots back to kFree.
  bool TryNext(T* out) {
    int best = -1;
    TimeT best_time = kTimeMax;
    // min over active slots' bounds, plus the runner-up so "min over the
    // OTHER slots" needs no second scan.
    TimeT min1 = kTimeMax, min2 = kTimeMax;
    int min1_slot = -1;
    for (int i = 0; i < kMaxProducers; ++i) {
      Slot& s = slots_[i];
      const uint32_t state = s.state.load(std::memory_order_acquire);
      if (state == kFree || state == kReserved) continue;
      const TimeT nm = s.next_min.load(std::memory_order_acquire);
      const T* front = s.ring->Peek();
      TimeT bound;
      if (front != nullptr) {
        bound = front->time;
        if (bound < best_time) {
          best_time = bound;
          best = i;
        }
      } else if (state == kClosing) {
        // Closed and drained: recycle. The slot leaves the scan at +inf,
        // so the frontier only ever grows from its departure.
        s.state.store(kFree, std::memory_order_release);
        active_.fetch_sub(1, std::memory_order_acq_rel);
        continue;
      } else {
        bound = nm;
      }
      if (bound < min1) {
        min2 = min1;
        min1 = bound;
        min1_slot = i;
      } else if (bound < min2) {
        min2 = bound;
      }
    }
    if (best < 0) return false;
    const TimeT min_others = min1_slot == best ? min2 : min1;
    if (best_time > min_others) return false;  // an emptier slot may still
                                               // produce something earlier
    const bool popped = slots_[best].ring->TryPop(out);
    HAMLET_DCHECK(popped);
    (void)popped;
    if (out->time > released_max_.load(std::memory_order_relaxed)) {
      released_max_.store(out->time, std::memory_order_release);
    }
    return true;
  }

  /// The merge horizon: min over active slots of (front element time, or
  /// the slot's bound when its ring is empty). When NO slot contributes —
  /// every producer closed and drained — the horizon is the closed floor:
  /// the largest final bound any departed producer latched in CloseSlot.
  /// A producer's last watermark therefore reaches the merge even if it
  /// closes before the sequencer's next poll; kTimeMin before any slot
  /// ever closed. After TryNext returns false, Frontier() >=
  /// released_max(), so it is always a legal watermark for the merged
  /// stream.
  TimeT Frontier() const {
    TimeT frontier = kTimeMax;
    for (int i = 0; i < kMaxProducers; ++i) {
      const Slot& s = slots_[i];
      const uint32_t state = s.state.load(std::memory_order_acquire);
      if (state == kFree || state == kReserved) continue;
      const TimeT nm = s.next_min.load(std::memory_order_acquire);
      const T* front = s.ring->Peek();
      const TimeT bound = front != nullptr ? front->time : nm;
      if (bound < frontier) frontier = bound;
    }
    if (frontier == kTimeMax) {
      return closed_floor_.load(std::memory_order_acquire);
    }
    return frontier;
  }

  /// Raises the floor a future ClaimSlot starts its bound at — the
  /// sequencer sets this to each broadcast watermark so a joiner can never
  /// drag the frontier back below what downstream already saw.
  void SetClaimFloor(TimeT floor) {
    if (floor > claim_floor_.load(std::memory_order_relaxed)) {
      claim_floor_.store(floor, std::memory_order_release);
    }
  }

  /// True when every slot is kFree: all producers closed AND their rings
  /// fully drained by TryNext. (A reserved/open slot counts as active even
  /// if it never pushes.)
  bool Quiescent() const {
    return active_.load(std::memory_order_acquire) == 0;
  }

  /// Largest timestamp ever released by TryNext (kTimeMin before the
  /// first).
  TimeT released_max() const {
    return released_max_.load(std::memory_order_acquire);
  }

  /// Claimed-but-not-yet-recycled slots (producers still attached, or
  /// closed with undrained rings).
  int active_producers() const {
    return active_.load(std::memory_order_acquire);
  }

  size_t ring_capacity() const { return ring_capacity_; }

 private:
  // Producers spin on these atomics while pushing and the sequencer scans
  // all 64 slots per merge round; a TimeT (or a platform) whose atomic
  // degrades to a lock would turn every scan into 64 lock acquisitions.
  static_assert(std::atomic<TimeT>::is_always_lock_free,
                "MpscIngestHub bounds must be lock-free atomics; use an "
                "integral TimeT with native atomic support");
  static_assert(std::atomic<uint32_t>::is_always_lock_free,
                "slot lifecycle states must be lock-free atomics");
  static_assert(std::atomic<int>::is_always_lock_free,
                "the active-producer counter must be a lock-free atomic");

  enum : uint32_t { kFree = 0, kReserved = 1, kOpen = 2, kClosing = 3 };

  struct Slot {
    /// Lazily allocated on first claim, reused across claim/close cycles.
    std::unique_ptr<SpscQueue<T>> ring;
    /// Smallest time this slot may still push (see file comment). Written
    /// only by the owning producer (plus claim-time init), read by the
    /// sequencer.
    alignas(64) std::atomic<TimeT> next_min{kTimeMin};
    std::atomic<uint32_t> state{kFree};
  };

  const size_t ring_capacity_;
  std::array<Slot, kMaxProducers> slots_;
  /// Sequencer-written; claimers read it to start above the released past.
  std::atomic<TimeT> released_max_{kTimeMin};
  std::atomic<TimeT> claim_floor_{kTimeMin};
  /// Max final bound over all closed slots — the frontier's resting value
  /// once every producer has left (see CloseSlot / Frontier).
  std::atomic<TimeT> closed_floor_{kTimeMin};
  std::atomic<int> active_{0};
};

}  // namespace hamlet

#endif  // HAMLET_COMMON_MPSC_INGEST_H_
