// Minimal Status/Result error-propagation types (absl::StatusOr-like).
//
// The library avoids exceptions; fallible public entry points (e.g. the query
// parser, workload analysis) return Status or Result<T>.
#ifndef HAMLET_COMMON_STATUS_H_
#define HAMLET_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "src/common/check.h"

namespace hamlet {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kUnsupported,
  kResourceExhausted,
  /// The operation is valid in general but not in the object's current
  /// state (e.g. Push on a closed Session).
  kFailedPrecondition,
  kInternal,
};

/// Returns a short human-readable name for `code` ("ok", "invalid_argument"…).
const char* StatusCodeName(StatusCode code);

/// Success-or-error result of an operation, carrying a message on failure.
/// [[nodiscard]] at class level: every function returning Status is flagged
/// when its result is ignored — silently dropped errors were a repeat bug
/// class before the static-analysis pass. Intentional discards (e.g. a
/// best-effort Close in a destructor) must say so with `(void)` + a comment.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats as "code: message" for diagnostics.
  std::string ToString() const {
    if (ok()) return "ok";
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Value-or-Status. `value()` aborts if the result holds an error; callers
/// must test `ok()` first (or use `value_or`-style access patterns).
/// [[nodiscard]] for the same reason as Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT
  /// Implicit from error status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    HAMLET_CHECK(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    HAMLET_CHECK(ok());
    return *value_;
  }
  T& value() & {
    HAMLET_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    HAMLET_CHECK(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  const T* operator->() const { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kUnsupported:
      return "unsupported";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kInternal:
      return "internal";
  }
  return "unknown";
}

}  // namespace hamlet

#endif  // HAMLET_COMMON_STATUS_H_
