// Peak-memory accounting, mirroring the paper's memory metric (§6.1):
// "maximal memory required to store snapshot expressions (HAMLET), the
// current event trend (MCEP), aggregates (SHARON), and matched events (all)".
//
// Engines report their logical footprint in bytes through this meter; the
// runtime tracks the peak across the run. Logical (rather than RSS-based)
// accounting keeps the metric deterministic and comparable across engines.
#ifndef HAMLET_COMMON_MEMORY_METER_H_
#define HAMLET_COMMON_MEMORY_METER_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>

namespace hamlet {

/// Tracks a current and peak byte count.
class MemoryMeter {
 public:
  void Add(int64_t bytes) {
    current_ += bytes;
    peak_ = std::max(peak_, current_);
  }

  void Sub(int64_t bytes) { current_ -= bytes; }

  /// Replaces the current footprint (used by engines that recompute their
  /// footprint per pane instead of tracking increments).
  void SetCurrent(int64_t bytes) {
    current_ = bytes;
    peak_ = std::max(peak_, current_);
  }

  int64_t current() const { return current_; }
  int64_t peak() const { return peak_; }

  void Reset() {
    current_ = 0;
    peak_ = 0;
  }

 private:
  int64_t current_ = 0;
  int64_t peak_ = 0;
};

}  // namespace hamlet

#endif  // HAMLET_COMMON_MEMORY_METER_H_
