// Deterministic pseudo-random number generation for generators and tests.
//
// All stream generators and property tests derive their randomness from
// SplitMix64 so every experiment is reproducible from a single seed.
#ifndef HAMLET_COMMON_RNG_H_
#define HAMLET_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

namespace hamlet {

/// One SplitMix64 output step as a stateless mixer: the repo's standard
/// integer hash (shard routing, key spreading). Statistically equivalent to
/// drawing the first value of `Rng(x)` without constructing an Rng.
inline uint64_t SplitMix64Mix(uint64_t x) {
  uint64_t z = x + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// SplitMix64 PRNG: tiny state, good statistical quality for workload
/// synthesis, and fully deterministic across platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) : state_(seed) {}

  /// Uniform 64-bit value.
  uint64_t NextU64() {
    const uint64_t out = SplitMix64Mix(state_);
    state_ += 0x9E3779B97F4A7C15ull;
    return out;
  }

  /// Uniform integer in [0, bound). `bound` must be positive.
  uint64_t NextBelow(uint64_t bound) { return NextU64() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi) {
    return lo +
           static_cast<int64_t>(NextBelow(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) {
    return lo + NextDouble() * (hi - lo);
  }

  /// Bernoulli draw with probability `p`.
  bool NextBool(double p) { return NextDouble() < p; }

  /// Burst length: 1 + geometric(continuation probability `cont`), capped at
  /// `max_len`; models the bursty same-type event runs of Definition 10.
  int NextBurstLength(double cont, int max_len) {
    int len = 1;
    while (len < max_len && NextBool(cont)) ++len;
    return len;
  }

  /// Poisson draw (Knuth's multiplication method); fine for the small means
  /// used by the per-tick arrival processes.
  int NextPoisson(double mean) {
    const double limit = std::exp(-mean);
    double prod = NextDouble();
    int k = 0;
    while (prod > limit) {
      ++k;
      prod *= NextDouble();
    }
    return k;
  }

 private:
  uint64_t state_;
};

}  // namespace hamlet

#endif  // HAMLET_COMMON_RNG_H_
