// Fixed-capacity bitset over query ids.
//
// The merged workload template labels every transition with the set of
// queries it holds for (paper Section 3.1); graphlets record which queries
// share them (Definition 7). Workloads in the paper's evaluation reach 100
// queries; we support up to kMaxQueries = 256.
#ifndef HAMLET_COMMON_QUERY_SET_H_
#define HAMLET_COMMON_QUERY_SET_H_

#include <array>
#include <cstdint>
#include <string>

#include "src/common/check.h"

namespace hamlet {

/// Dense id of a query within a workload (index into Workload::queries()).
using QueryId = int;

/// A set of query ids, stored as a 256-bit mask.
class QuerySet {
 public:
  static constexpr int kMaxQueries = 256;

  QuerySet() : words_{} {}

  /// Returns the set {q}.
  static QuerySet Single(QueryId q) {
    QuerySet s;
    s.Insert(q);
    return s;
  }

  /// Returns {0, 1, ..., n-1}.
  static QuerySet FirstN(int n) {
    QuerySet s;
    for (QueryId q = 0; q < n; ++q) s.Insert(q);
    return s;
  }

  void Insert(QueryId q) {
    HAMLET_DCHECK(q >= 0 && q < kMaxQueries);
    words_[q >> 6] |= uint64_t{1} << (q & 63);
  }

  void Erase(QueryId q) {
    HAMLET_DCHECK(q >= 0 && q < kMaxQueries);
    words_[q >> 6] &= ~(uint64_t{1} << (q & 63));
  }

  bool Contains(QueryId q) const {
    HAMLET_DCHECK(q >= 0 && q < kMaxQueries);
    return (words_[q >> 6] >> (q & 63)) & 1;
  }

  bool Empty() const {
    for (uint64_t w : words_)
      if (w != 0) return false;
    return true;
  }

  int Count() const {
    int c = 0;
    for (uint64_t w : words_) c += __builtin_popcountll(w);
    return c;
  }

  QuerySet Union(const QuerySet& o) const {
    QuerySet r;
    for (int i = 0; i < kWords; ++i) r.words_[i] = words_[i] | o.words_[i];
    return r;
  }

  QuerySet Intersect(const QuerySet& o) const {
    QuerySet r;
    for (int i = 0; i < kWords; ++i) r.words_[i] = words_[i] & o.words_[i];
    return r;
  }

  QuerySet Minus(const QuerySet& o) const {
    QuerySet r;
    for (int i = 0; i < kWords; ++i) r.words_[i] = words_[i] & ~o.words_[i];
    return r;
  }

  bool IsSubsetOf(const QuerySet& o) const {
    for (int i = 0; i < kWords; ++i)
      if ((words_[i] & ~o.words_[i]) != 0) return false;
    return true;
  }

  bool operator==(const QuerySet& o) const { return words_ == o.words_; }
  bool operator!=(const QuerySet& o) const { return !(*this == o); }

  /// Calls `fn(QueryId)` for every member, in increasing id order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (int i = 0; i < kWords; ++i) {
      uint64_t w = words_[i];
      while (w != 0) {
        int bit = __builtin_ctzll(w);
        fn(static_cast<QueryId>(i * 64 + bit));
        w &= w - 1;
      }
    }
  }

  /// Smallest member; the set must be non-empty.
  QueryId First() const {
    for (int i = 0; i < kWords; ++i) {
      if (words_[i] != 0)
        return static_cast<QueryId>(i * 64 + __builtin_ctzll(words_[i]));
    }
    HAMLET_CHECK(false && "First() on empty QuerySet");
    return -1;
  }

  /// Formats as "{0,3,7}" for diagnostics.
  std::string ToString() const {
    std::string out = "{";
    bool first = true;
    ForEach([&](QueryId q) {
      if (!first) out += ',';
      out += std::to_string(q);
      first = false;
    });
    out += '}';
    return out;
  }

 private:
  static constexpr int kWords = kMaxQueries / 64;
  std::array<uint64_t, kWords> words_;
};

}  // namespace hamlet

#endif  // HAMLET_COMMON_QUERY_SET_H_
