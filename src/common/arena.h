// Pane-scoped bump allocation for engine hot-loop state.
//
// The HAMLET hot loop opens and closes graphlets at burst and pane
// boundaries; allocating each one from the global heap made steady-state
// evaluation pay one malloc/free pair per graphlet (and, before the Expr /
// CtxMap small buffers, several more per event). Arena reserves memory in
// large blocks and hands out bump-pointer chunks; ObjectPool layers a
// free-list of recycled objects on top, so graphlets released at pane
// boundaries are reused — with their internal vector capacities intact —
// instead of churning the allocator.
//
// Metering contract (RunMetrics::current_memory_bytes): arena-backed state
// is charged by BLOCK RESERVATION (bytes_reserved), never by summing live
// object sizes. Reservations are what the process actually holds from the
// OS-facing allocator, they are stable while the pool recycles, and they
// keep the sharded runtime's concurrent high-water sampling truthful — a
// sum of per-object sizes would dip at every pane boundary even though no
// memory was returned.
#ifndef HAMLET_COMMON_ARENA_H_
#define HAMLET_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "src/common/check.h"

namespace hamlet {

/// Block bump allocator. Allocate() never fails over to per-object heap
/// allocations: requests larger than the block size get a dedicated block.
/// Reset() rewinds every block without releasing it (the "pane-scoped"
/// lifecycle: reserve once, reuse every pane). Not thread-safe; each engine
/// owns its own arena, matching the one-engine-per-shard runtime.
class Arena {
 public:
  static constexpr size_t kDefaultBlockBytes = 64 * 1024;

  explicit Arena(size_t block_bytes = kDefaultBlockBytes)
      : block_bytes_(block_bytes == 0 ? kDefaultBlockBytes : block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `size` bytes aligned to `align` (a power of two). The memory is
  /// uninitialized and stays valid until Reset() or destruction.
  void* Allocate(size_t size, size_t align) {
    HAMLET_DCHECK(align != 0 && (align & (align - 1)) == 0);
    if (size == 0) size = 1;
    while (active_ < blocks_.size()) {
      Block& b = blocks_[active_];
      // Align the absolute address, not the block offset: operator new[]
      // only guarantees max_align_t for the block base itself.
      size_t base = reinterpret_cast<size_t>(b.data.get());
      size_t offset = AlignUp(base + b.used, align) - base;
      if (offset + size <= b.size) {
        b.used = offset + size;
        used_bytes_ += size;
        return b.data.get() + offset;
      }
      ++active_;
    }
    // No block fits: reserve a new one (oversize requests get an exact
    // block; alignment slack is covered by operator new's guarantee for
    // std::max_align_t and the AlignUp below for stricter requests).
    size_t want = size + align;
    size_t block_size = want > block_bytes_ ? want : block_bytes_;
    Block b;
    b.data.reset(new char[block_size]);
    b.size = block_size;
    reserved_ += static_cast<int64_t>(block_size);
    size_t base = reinterpret_cast<size_t>(b.data.get());
    size_t offset = AlignUp(base, align) - base;
    b.used = offset + size;
    used_bytes_ += size;
    blocks_.push_back(std::move(b));
    active_ = blocks_.size() - 1;
    return blocks_.back().data.get() + offset;
  }

  /// Rewinds every block without releasing memory. Invalidates everything
  /// previously allocated; bytes_reserved() is unchanged.
  void Reset() {
    for (Block& b : blocks_) b.used = 0;
    active_ = 0;
    used_bytes_ = 0;
  }

  /// Total block bytes held from the heap — the metering unit (see file
  /// comment). Monotone over the arena's lifetime.
  int64_t bytes_reserved() const { return reserved_; }

  /// Bytes handed out since the last Reset (diagnostics only).
  int64_t bytes_used() const { return static_cast<int64_t>(used_bytes_); }

  int num_blocks() const { return static_cast<int>(blocks_.size()); }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t size = 0;
    size_t used = 0;
  };

  static size_t AlignUp(size_t v, size_t align) {
    return (v + align - 1) & ~(align - 1);
  }

  std::vector<Block> blocks_;
  size_t block_bytes_;
  size_t active_ = 0;  ///< first block with free space
  size_t used_bytes_ = 0;
  int64_t reserved_ = 0;
};

/// Arena-backed object pool. Acquire() returns a default-constructed T
/// placed in the arena (or a recycled one); Release() calls T::Recycle() —
/// which must reset logical state while KEEPING internal capacities — and
/// free-lists the object. Destruction runs ~T() on every object ever
/// acquired, then the arena drops its blocks.
template <typename T>
class ObjectPool {
 public:
  explicit ObjectPool(size_t block_bytes = Arena::kDefaultBlockBytes)
      : arena_(block_bytes) {}

  ~ObjectPool() {
    for (T* o : all_) o->~T();
  }

  ObjectPool(const ObjectPool&) = delete;
  ObjectPool& operator=(const ObjectPool&) = delete;

  T* Acquire() {
    if (!free_.empty()) {
      T* o = free_.back();
      free_.pop_back();
      return o;
    }
    void* mem = arena_.Allocate(sizeof(T), alignof(T));
    T* o = new (mem) T();
    all_.push_back(o);
    return o;
  }

  void Release(T* o) {
    HAMLET_DCHECK(o != nullptr);
    o->Recycle();
    free_.push_back(o);
  }

  /// Arena block reservations backing the pooled objects (the metering
  /// unit); excludes the objects' own heap-held members, which callers
  /// charge per object via objects().
  int64_t bytes_reserved() const { return arena_.bytes_reserved(); }

  /// Every object ever acquired (live and free-listed) — recycled objects
  /// keep their internal capacities, so both populations hold real memory.
  const std::vector<T*>& objects() const { return all_; }

  int64_t num_live() const {
    return static_cast<int64_t>(all_.size() - free_.size());
  }
  int64_t num_free() const { return static_cast<int64_t>(free_.size()); }

 private:
  Arena arena_;
  std::vector<T*> all_;
  std::vector<T*> free_;
};

}  // namespace hamlet

#endif  // HAMLET_COMMON_ARENA_H_
