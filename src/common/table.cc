#include "src/common/table.h"

#include <algorithm>
#include <cstdio>

#include "src/common/check.h"

namespace hamlet {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> cells) {
  HAMLET_CHECK(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Num(double v, int precision) {
  char buf[64];
  if (v != 0 && (v >= 1e7 || v < 1e-3)) {
    std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  }
  return buf;
}

std::string Table::ToAligned() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < row.size(); ++c) {
      line += ' ';
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
      line += " |";
    }
    line += '\n';
    return line;
  };
  std::string out = render_row(header_);
  std::string rule = "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    rule.append(widths[c] + 2, '-');
    rule += '|';
  }
  out += rule + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string Table::ToCsv() const {
  auto join = [](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) line += ',';
      line += row[c];
    }
    line += '\n';
    return line;
  };
  std::string out = join(header_);
  for (const auto& row : rows_) out += join(row);
  return out;
}

}  // namespace hamlet
