// Invariant-checking macros used across the HAMLET library.
//
// Library code does not use exceptions (see DESIGN.md §7); programming errors
// abort with a diagnostic, recoverable errors travel through Status/Result.
#ifndef HAMLET_COMMON_CHECK_H_
#define HAMLET_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace hamlet {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "HAMLET_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace internal
}  // namespace hamlet

/// Aborts the process when `cond` is false. Active in all build types: the
/// invariants guarded by this macro are cheap relative to the work they guard
/// and catching them in release benchmarks is worth the branch.
#define HAMLET_CHECK(cond)                                         \
  do {                                                             \
    if (!(cond)) {                                                 \
      ::hamlet::internal::CheckFailed(__FILE__, __LINE__, #cond);  \
    }                                                              \
  } while (0)

/// Debug-only variant for hot loops.
#ifndef NDEBUG
#define HAMLET_DCHECK(cond) HAMLET_CHECK(cond)
#else
#define HAMLET_DCHECK(cond) \
  do {                      \
  } while (0)
#endif

#endif  // HAMLET_COMMON_CHECK_H_
