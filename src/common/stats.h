// Lightweight running statistics used by the metrics layer and benches.
#ifndef HAMLET_COMMON_STATS_H_
#define HAMLET_COMMON_STATS_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

namespace hamlet {

/// Accumulates count/sum/min/max/mean of a double-valued series.
class RunningStats {
 public:
  void Add(double v) {
    ++count_;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }

  int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  void Reset() { *this = RunningStats(); }

 private:
  int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Stores samples to answer percentile queries; used for latency reporting.
class Percentiles {
 public:
  void Add(double v) { samples_.push_back(v); }

  /// p in [0,100]. Returns 0 when no samples were recorded.
  double Percentile(double p) const {
    if (samples_.empty()) return 0.0;
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    double idx = (p / 100.0) * static_cast<double>(sorted.size() - 1);
    auto lo = static_cast<size_t>(idx);
    size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = idx - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  }

  size_t count() const { return samples_.size(); }

 private:
  std::vector<double> samples_;
};

}  // namespace hamlet

#endif  // HAMLET_COMMON_STATS_H_
