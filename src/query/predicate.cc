#include "src/query/predicate.h"

#include <cstdio>

namespace hamlet {

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
    case CmpOp::kEq:
      return "==";
    case CmpOp::kNe:
      return "!=";
  }
  return "?";
}

bool EvalCmp(CmpOp op, double lhs, double rhs) {
  switch (op) {
    case CmpOp::kLt:
      return lhs < rhs;
    case CmpOp::kLe:
      return lhs <= rhs;
    case CmpOp::kGt:
      return lhs > rhs;
    case CmpOp::kGe:
      return lhs >= rhs;
    case CmpOp::kEq:
      return lhs == rhs;
    case CmpOp::kNe:
      return lhs != rhs;
  }
  return false;
}

Status EventPredicate::Resolve(Schema* schema, bool register_missing) {
  type = register_missing ? schema->AddType(type_name)
                          : schema->FindType(type_name);
  if (type == Schema::kInvalidId)
    return Status::NotFound("unknown predicate type: " + type_name);
  attr = register_missing ? schema->AddAttr(attr_name)
                          : schema->FindAttr(attr_name);
  if (attr == Schema::kInvalidId)
    return Status::NotFound("unknown predicate attribute: " + attr_name);
  return Status::Ok();
}

std::string EventPredicate::ToString() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", constant);
  return type_name + "." + attr_name + " " + CmpOpName(op) + " " + buf;
}

Status EdgePredicate::Resolve(Schema* schema, bool register_missing) {
  attr = register_missing ? schema->AddAttr(attr_name)
                          : schema->FindAttr(attr_name);
  if (attr == Schema::kInvalidId)
    return Status::NotFound("unknown edge attribute: " + attr_name);
  return Status::Ok();
}

std::string EdgePredicate::ToString() const {
  if (op == CmpOp::kEq) return "[" + attr_name + "]";
  return "prev." + attr_name + " " + CmpOpName(op) + " next." + attr_name;
}

bool PassesEventPredicates(const std::vector<EventPredicate>& preds,
                           const Event& e) {
  for (const EventPredicate& p : preds) {
    if (!p.Eval(e)) return false;
  }
  return true;
}

bool PassesEdgePredicates(const std::vector<EdgePredicate>& preds,
                          const Event& prev, const Event& next) {
  for (const EdgePredicate& p : preds) {
    if (!p.Eval(prev, next)) return false;
  }
  return true;
}

}  // namespace hamlet
