#include "src/query/query.h"

namespace hamlet {

namespace {
std::string FormatDuration(Timestamp ms) {
  if (ms % kMillisPerMinute == 0)
    return std::to_string(ms / kMillisPerMinute) + " min";
  if (ms % kMillisPerSecond == 0)
    return std::to_string(ms / kMillisPerSecond) + " sec";
  return std::to_string(ms) + " ms";
}
}  // namespace

std::string WindowSpec::ToString() const {
  std::string out = "WITHIN " + FormatDuration(within);
  if (!tumbling()) out += " SLIDE " + FormatDuration(slide);
  return out;
}

Status Query::Resolve(Schema* schema, bool register_missing) {
  Status s = pattern.Resolve(schema, register_missing);
  if (!s.ok()) return s;
  s = aggregate.Resolve(schema, register_missing);
  if (!s.ok()) return s;
  for (EventPredicate& p : event_predicates) {
    s = p.Resolve(schema, register_missing);
    if (!s.ok()) return s;
  }
  for (EdgePredicate& p : edge_predicates) {
    s = p.Resolve(schema, register_missing);
    if (!s.ok()) return s;
  }
  if (!group_by_name.empty()) {
    group_by = register_missing ? schema->AddAttr(group_by_name)
                                : schema->FindAttr(group_by_name);
    if (group_by == Schema::kInvalidId)
      return Status::NotFound("unknown group-by attribute: " + group_by_name);
  }
  if (window.within <= 0 || window.slide <= 0)
    return Status::InvalidArgument("window sizes must be positive");
  if (window.within % window.slide != 0)
    return Status::Unsupported(
        "WITHIN must be a multiple of SLIDE (pane-aligned windows)");
  return Status::Ok();
}

std::string Query::ToString() const {
  std::string out = "RETURN " + aggregate.ToString() + " PATTERN " +
                    pattern.ToString();
  if (!event_predicates.empty() || !edge_predicates.empty()) {
    out += " WHERE ";
    bool first = true;
    for (const EventPredicate& p : event_predicates) {
      if (!first) out += " AND ";
      out += p.ToString();
      first = false;
    }
    for (const EdgePredicate& p : edge_predicates) {
      if (!first) out += " AND ";
      out += p.ToString();
      first = false;
    }
  }
  if (!group_by_name.empty()) out += " GROUPBY " + group_by_name;
  out += " " + window.ToString();
  return out;
}

Result<QueryId> Workload::Add(Query query) {
  if (size() >= QuerySet::kMaxQueries)
    return Status::ResourceExhausted("workload exceeds max query count");
  Status s = query.Resolve(schema_);
  if (!s.ok()) return s;
  if (query.name.empty()) query.name = "q" + std::to_string(size() + 1);
  queries_.push_back(std::move(query));
  return static_cast<QueryId>(size() - 1);
}

}  // namespace hamlet
