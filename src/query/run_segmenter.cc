#include "src/query/run_segmenter.h"

#include <cstdint>

namespace hamlet {

namespace {

/// boundary_words bit i (i >= 1) = 1 iff any mask's bit differs between rows
/// i-1 and i. Word-parallel: d = w ^ (w << 1 | carry of previous word's top
/// bit), OR-accumulated across masks. Bit 0 is never set (row 0 starts a run
/// unconditionally).
void BuildFlipBitmap(const std::vector<SelectionMask>& masks, int rows,
                     std::vector<uint64_t>* boundary_words) {
  const size_t num_words = (static_cast<size_t>(rows) + 63) / 64;
  boundary_words->assign(num_words, 0);
  for (const SelectionMask& mask : masks) {
    std::span<const uint64_t> w = mask.words();
    uint64_t carry = 0;  // previous word's top bit, shifted into bit 0
    for (size_t j = 0; j < num_words; ++j) {
      const uint64_t cur = w[j];
      (*boundary_words)[j] |= cur ^ ((cur << 1) | carry);
      carry = cur >> 63;
    }
  }
  if (num_words > 0) (*boundary_words)[0] &= ~uint64_t{1};
}

inline bool TestBit(const std::vector<uint64_t>& words, int i) {
  return (words[static_cast<size_t>(i) >> 6] >>
          (static_cast<size_t>(i) & 63)) &
         1u;
}

}  // namespace

void SegmentRuns(const EventBatch& batch, int rows, Timestamp pane_size,
                 const QuerySet& all_execs,
                 const std::vector<int>& predicated_queries,
                 const std::vector<SelectionMask>& masks,
                 std::vector<RunSpan>* out) {
  out->clear();
  if (rows <= 0) return;

  // Pre-merge all mask flips into one boundary bitmap so the row scan below
  // does one bit test instead of one Test() per predicated query.
  static thread_local std::vector<uint64_t> flip_words;
  BuildFlipBitmap(masks, rows, &flip_words);

  std::span<const TypeId> types = batch.types();
  std::span<const Timestamp> times = batch.times();

  auto passes_at = [&](int i) {
    QuerySet passes = all_execs;
    for (size_t k = 0; k < predicated_queries.size(); ++k) {
      if (!masks[k].Test(i)) passes.Erase(predicated_queries[k]);
    }
    return passes;
  };

  int begin = 0;
  TypeId run_type = types[0];
  Timestamp run_pane = pane_size > 0 ? times[0] / pane_size : 0;
  for (int i = 1; i < rows; ++i) {
    const bool type_break = types[static_cast<size_t>(i)] != run_type;
    const bool pane_break =
        pane_size > 0 &&
        times[static_cast<size_t>(i)] / pane_size != run_pane;
    if (type_break || pane_break || TestBit(flip_words, i)) {
      RunSpan& run = out->emplace_back();
      run.type = run_type;
      run.row_begin = begin;
      run.row_end = i;
      run.passes = passes_at(begin);
      begin = i;
      run_type = types[static_cast<size_t>(i)];
      if (pane_size > 0) run_pane = times[static_cast<size_t>(i)] / pane_size;
    }
  }
  RunSpan& run = out->emplace_back();
  run.type = run_type;
  run.row_begin = begin;
  run.row_end = rows;
  run.passes = passes_at(begin);
}

}  // namespace hamlet
