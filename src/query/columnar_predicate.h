// Columnar predicate evaluation: compiled kernels over EventBatch columns.
//
// The row path evaluates EventPredicate lists per event, per query, with a
// branchy CmpOp switch per predicate. This layer compiles each exec query's
// event predicates ONCE (at plan-compile / Session::Open time) into
// {type id, column id, op, constant} kernels and evaluates them over whole
// batches: one branch-free pass per predicate over a contiguous `double`
// column into a 0/1 byte mask, AND-combined under the type gate
// (a predicate constrains only events of its own type; others pass), then
// packed into per-query selection bitmaps.
//
// Semantics are EXACTLY EvalCmp's IEEE-754 comparisons — NaN fails every op
// except kNe — so row and columnar paths select bit-identical event sets.
// Compile() also surfaces unresolved predicate type/attribute names as
// kInvalidArgument, turning what the row path deferred to a per-event
// DCHECK into an Open-time error.
#ifndef HAMLET_QUERY_COLUMNAR_PREDICATE_H_
#define HAMLET_QUERY_COLUMNAR_PREDICATE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/status.h"
#include "src/query/predicate.h"
#include "src/stream/event_batch.h"

namespace hamlet {

/// One schema-resolved predicate: ids only, no names on the hot path.
struct CompiledPredicate {
  TypeId type = Schema::kInvalidId;
  AttrId attr = Schema::kInvalidId;
  CmpOp op = CmpOp::kLt;
  double constant = 0.0;
};

/// Per-row selection as packed 64-bit words (bit i = row i selected).
class SelectionMask {
 public:
  void AssignAll(int rows);
  void AssignNone(int rows);

  int rows() const { return rows_; }

  bool Test(int i) const {
    return (words_[static_cast<size_t>(i) >> 6] >>
            (static_cast<size_t>(i) & 63)) &
           1u;
  }

  int CountSelected() const;

  std::span<const uint64_t> words() const { return words_; }

 private:
  friend void PackMask(const uint8_t* bytes01, int rows, SelectionMask* out);

  std::vector<uint64_t> words_;
  int rows_ = 0;
};

/// out01[i] = EvalCmp(op, col[i], constant) ? 1 : 0. One tight loop per op —
/// no per-element branches, auto-vectorizable over the double column. NaN
/// semantics are IEEE, identical to EvalCmp.
void CmpColumnKernel(CmpOp op, const double* col, int rows, double constant,
                     uint8_t* out01);

/// acc01[i] &= (types[i] != type) | pass01[i] — the type gate: a predicate
/// constrains only events of its own type.
void TypeGateAnd(const TypeId* types, int rows, TypeId type,
                 const uint8_t* pass01, uint8_t* acc01);

/// Packs a 0/1 byte mask into SelectionMask words.
void PackMask(const uint8_t* bytes01, int rows, SelectionMask* out);

/// Masked linear-aggregate kernel: count/sum over the selected rows of one
/// column (branchless; the columnar analogue of the row path's
/// `if (passes) { ++count; sum += e.attr(a); }`).
void MaskedLinAggKernel(const double* col, const uint8_t* mask01, int rows,
                        double* count, double* sum);

/// Reusable output + scratch for PredicateProgram::EvalBatch. One mask per
/// predicated query (see PredicateProgram::predicated_queries()).
struct BatchSelection {
  std::vector<SelectionMask> masks;
  std::vector<uint8_t> acc;  ///< scratch: running conjunction, 0/1 per row
  std::vector<uint8_t> tmp;  ///< scratch: per-predicate kernel output
};

/// One exec query's predicate list, as handed to PredicateProgram::Compile.
/// (The plan layer's CompilePredicateProgram builds these from a
/// WorkloadPlan; the query layer cannot see WorkloadPlan without a cycle.)
struct PredicateList {
  int exec_id = -1;
  const std::vector<EventPredicate>* preds = nullptr;
};

/// See file comment.
class PredicateProgram {
 public:
  /// Compiles the given per-exec-query predicate lists against `schema`.
  /// Fails with kInvalidArgument naming the first predicate whose type or
  /// attribute id is unresolved or out of schema range.
  static Result<PredicateProgram> Compile(const Schema& schema,
                                          std::span<const PredicateList> lists);

  /// True when no exec query has event predicates (EvalBatch is a no-op).
  bool trivial() const { return queries_.empty(); }

  /// Exec ids with at least one predicate, in mask order.
  const std::vector<int>& predicated_queries() const { return pred_execs_; }

  /// Evaluates every predicated query over `batch`. out->masks[k] selects
  /// the rows passing ALL predicates of predicated_queries()[k].
  void EvalBatch(const EventBatch& batch, BatchSelection* out) const;

  /// Row-path check against the compiled predicates of predicated query
  /// index `k` (tests; semantics identical to PassesEventPredicates).
  bool EvalRow(int k, const Event& e) const;

 private:
  struct QueryPreds {
    int first = 0;  ///< range in preds_
    int count = 0;
  };

  std::vector<CompiledPredicate> preds_;
  std::vector<QueryPreds> queries_;  ///< parallel to pred_execs_
  std::vector<int> pred_execs_;
};

}  // namespace hamlet

#endif  // HAMLET_QUERY_COLUMNAR_PREDICATE_H_
