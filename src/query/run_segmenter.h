// Run segmentation: turning selection bitmaps + type columns into runs.
//
// A *run* is a maximal contiguous span of same-type rows within one pane
// whose predicated pass-sets are identical on every row (paper §4: a burst
// of same-type events inside a pane shares one snapshot, so trend counts
// propagate per run, not per event). The segmenter is the bridge between
// the columnar predicate layer (SelectionMask bitmaps over an EventBatch)
// and the run-granular engine entry point HamletEngine::OnRunFiltered:
//
//   EvalBatch bitmaps + type column + pane grid  ->  {type, [begin,end), passes}
//
// Boundaries are placed where (a) the type column changes, (b) any
// predicated query's selection bit flips (detected word-parallel via
// shifted-XOR over the packed mask words), or (c) the row crosses a pane
// boundary (runs never span panes — pane state transitions stay per-pane).
#ifndef HAMLET_QUERY_RUN_SEGMENTER_H_
#define HAMLET_QUERY_RUN_SEGMENTER_H_

#include <vector>

#include "src/common/query_set.h"
#include "src/query/columnar_predicate.h"
#include "src/stream/event_batch.h"

namespace hamlet {

/// One maximal same-type, same-pass-set, pane-confined span of batch rows.
struct RunSpan {
  TypeId type = Schema::kInvalidId;
  int row_begin = 0;
  int row_end = 0;  ///< exclusive
  /// Exec queries whose event predicates pass on EVERY row of the run
  /// (constant across the run by construction — a flip ends the run).
  QuerySet passes;
};

/// Segments rows [0, rows) of `batch` into runs, appending to `*out` (which
/// is cleared first; capacity is reused across calls — steady-state
/// allocation-free once warm).
///
/// `masks` / `predicated_queries` are PredicateProgram::EvalBatch output and
/// PredicateProgram::predicated_queries() (both may be empty for a trivial
/// program: every run then passes `all_execs`). Each run's `passes` is
/// `all_execs` minus the predicated queries whose mask is 0 on the run —
/// bit-identical to the per-row PassesForRow computation, hoisted to once
/// per run.
///
/// `pane_size` > 0 splits runs at pane boundaries using the same integer
/// quotient the runtime's pane advance uses (`time / pane_size`);
/// `pane_size` <= 0 disables pane splitting (single-pane batch evaluation).
void SegmentRuns(const EventBatch& batch, int rows, Timestamp pane_size,
                 const QuerySet& all_execs,
                 const std::vector<int>& predicated_queries,
                 const std::vector<SelectionMask>& masks,
                 std::vector<RunSpan>* out);

}  // namespace hamlet

#endif  // HAMLET_QUERY_RUN_SEGMENTER_H_
