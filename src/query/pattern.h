// Kleene pattern AST (paper Definition 1).
//
//   P := E | P+ | NOT P | SEQ(P1,...,Pn) | P1 OR P2 | P1 AND P2
//
// Patterns are built by factory functions (or the text parser) with type
// *names*, then resolved against a Schema to dense TypeIds.
#ifndef HAMLET_QUERY_PATTERN_H_
#define HAMLET_QUERY_PATTERN_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/stream/schema.h"

namespace hamlet {

/// AST node kind.
enum class PatternKind {
  kType,    ///< a single event type E
  kKleene,  ///< P+ (one or more)
  kSeq,     ///< SEQ(P1, ..., Pn)
  kNot,     ///< NOT P (only valid inside SEQ, between positions)
  kOr,      ///< P1 OR P2
  kAnd,     ///< P1 AND P2
};

/// Value-type pattern tree.
struct Pattern {
  PatternKind kind = PatternKind::kType;
  /// For kType: the event type (name pre-resolution, id post-resolution).
  std::string type_name;
  TypeId type = Schema::kInvalidId;
  std::vector<Pattern> children;

  /// --- factories ---
  static Pattern Type(std::string name);
  static Pattern Kleene(Pattern inner);
  /// Convenience: E+ for a type name.
  static Pattern KleeneType(std::string name);
  static Pattern Seq(std::vector<Pattern> parts);
  static Pattern Not(Pattern inner);
  static Pattern Or(Pattern lhs, Pattern rhs);
  static Pattern And(Pattern lhs, Pattern rhs);

  /// Binds every type name to its Schema id (registering unseen names when
  /// `register_missing`). Fails on empty SEQs and malformed NOT placement.
  Status Resolve(Schema* schema, bool register_missing = true);

  /// True if any node below (incl. this) is a Kleene plus (=> Kleene query,
  /// Definition 1).
  bool ContainsKleene() const;

  /// Collects every distinct event type id in the pattern (positive and
  /// negative positions).
  std::vector<TypeId> CollectTypes() const;

  /// Canonical text form, e.g. "SEQ(A, B+, NOT C, D)".
  std::string ToString() const;

  bool operator==(const Pattern& other) const;
};

}  // namespace hamlet

#endif  // HAMLET_QUERY_PATTERN_H_
