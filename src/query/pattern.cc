#include "src/query/pattern.h"

#include <algorithm>

namespace hamlet {

Pattern Pattern::Type(std::string name) {
  Pattern p;
  p.kind = PatternKind::kType;
  p.type_name = std::move(name);
  return p;
}

Pattern Pattern::Kleene(Pattern inner) {
  Pattern p;
  p.kind = PatternKind::kKleene;
  p.children.push_back(std::move(inner));
  return p;
}

Pattern Pattern::KleeneType(std::string name) {
  return Kleene(Type(std::move(name)));
}

Pattern Pattern::Seq(std::vector<Pattern> parts) {
  Pattern p;
  p.kind = PatternKind::kSeq;
  p.children = std::move(parts);
  return p;
}

Pattern Pattern::Not(Pattern inner) {
  Pattern p;
  p.kind = PatternKind::kNot;
  p.children.push_back(std::move(inner));
  return p;
}

Pattern Pattern::Or(Pattern lhs, Pattern rhs) {
  Pattern p;
  p.kind = PatternKind::kOr;
  p.children.push_back(std::move(lhs));
  p.children.push_back(std::move(rhs));
  return p;
}

Pattern Pattern::And(Pattern lhs, Pattern rhs) {
  Pattern p;
  p.kind = PatternKind::kAnd;
  p.children.push_back(std::move(lhs));
  p.children.push_back(std::move(rhs));
  return p;
}

Status Pattern::Resolve(Schema* schema, bool register_missing) {
  switch (kind) {
    case PatternKind::kType: {
      if (type_name.empty())
        return Status::InvalidArgument("pattern type with empty name");
      type = register_missing ? schema->AddType(type_name)
                              : schema->FindType(type_name);
      if (type == Schema::kInvalidId)
        return Status::NotFound("unknown event type: " + type_name);
      return Status::Ok();
    }
    case PatternKind::kSeq:
      if (children.empty())
        return Status::InvalidArgument("SEQ with no sub-patterns");
      break;
    case PatternKind::kKleene:
    case PatternKind::kNot:
      if (children.size() != 1)
        return Status::InvalidArgument("unary pattern operator arity != 1");
      break;
    case PatternKind::kOr:
    case PatternKind::kAnd:
      if (children.size() != 2)
        return Status::InvalidArgument("binary pattern operator arity != 2");
      break;
  }
  for (Pattern& c : children) {
    Status s = c.Resolve(schema, register_missing);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

bool Pattern::ContainsKleene() const {
  if (kind == PatternKind::kKleene) return true;
  return std::any_of(children.begin(), children.end(),
                     [](const Pattern& c) { return c.ContainsKleene(); });
}

namespace {
void CollectTypesInto(const Pattern& p, std::vector<TypeId>* out) {
  if (p.kind == PatternKind::kType) {
    if (std::find(out->begin(), out->end(), p.type) == out->end())
      out->push_back(p.type);
  }
  for (const Pattern& c : p.children) CollectTypesInto(c, out);
}
}  // namespace

std::vector<TypeId> Pattern::CollectTypes() const {
  std::vector<TypeId> out;
  CollectTypesInto(*this, &out);
  return out;
}

std::string Pattern::ToString() const {
  switch (kind) {
    case PatternKind::kType:
      return type_name;
    case PatternKind::kKleene: {
      const Pattern& inner = children[0];
      std::string out;
      if (inner.kind == PatternKind::kType) {
        out = inner.ToString();
      } else {
        out = "(";
        out += inner.ToString();
        out += ")";
      }
      out += "+";
      return out;
    }
    case PatternKind::kNot: {
      std::string out = "NOT ";
      out += children[0].ToString();
      return out;
    }
    case PatternKind::kSeq: {
      std::string out = "SEQ(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i) out += ", ";
        out += children[i].ToString();
      }
      out += ")";
      return out;
    }
    case PatternKind::kOr:
    case PatternKind::kAnd: {
      std::string out = "(";
      out += children[0].ToString();
      out += kind == PatternKind::kOr ? " OR " : " AND ";
      out += children[1].ToString();
      out += ")";
      return out;
    }
  }
  return "?";
}

bool Pattern::operator==(const Pattern& other) const {
  return kind == other.kind && type_name == other.type_name &&
         children == other.children;
}

}  // namespace hamlet
