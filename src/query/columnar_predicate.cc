#include "src/query/columnar_predicate.h"

#include <bit>
#include <cstring>
#include <string>

namespace hamlet {

void SelectionMask::AssignAll(int rows) {
  rows_ = rows;
  const size_t words = (static_cast<size_t>(rows) + 63) / 64;
  words_.assign(words, ~uint64_t{0});
  // Clear the tail bits past the last row so CountSelected stays exact.
  const int tail = rows & 63;
  if (tail != 0 && !words_.empty())
    words_.back() &= (uint64_t{1} << tail) - 1;
}

void SelectionMask::AssignNone(int rows) {
  rows_ = rows;
  words_.assign((static_cast<size_t>(rows) + 63) / 64, 0);
}

int SelectionMask::CountSelected() const {
  int n = 0;
  for (uint64_t w : words_) n += std::popcount(w);
  return n;
}

void CmpColumnKernel(CmpOp op, const double* col, int rows, double constant,
                     uint8_t* out01) {
  // One loop per op: the comparison compiles to a vector compare + mask
  // narrow, with no per-element branch. IEEE semantics (NaN fails all ops
  // except !=) fall out of the native compares, matching EvalCmp exactly.
  switch (op) {
    case CmpOp::kLt:
      for (int i = 0; i < rows; ++i) out01[i] = col[i] < constant ? 1 : 0;
      break;
    case CmpOp::kLe:
      for (int i = 0; i < rows; ++i) out01[i] = col[i] <= constant ? 1 : 0;
      break;
    case CmpOp::kGt:
      for (int i = 0; i < rows; ++i) out01[i] = col[i] > constant ? 1 : 0;
      break;
    case CmpOp::kGe:
      for (int i = 0; i < rows; ++i) out01[i] = col[i] >= constant ? 1 : 0;
      break;
    case CmpOp::kEq:
      for (int i = 0; i < rows; ++i) out01[i] = col[i] == constant ? 1 : 0;
      break;
    case CmpOp::kNe:
      for (int i = 0; i < rows; ++i) out01[i] = col[i] != constant ? 1 : 0;
      break;
  }
}

void TypeGateAnd(const TypeId* types, int rows, TypeId type,
                 const uint8_t* pass01, uint8_t* acc01) {
  for (int i = 0; i < rows; ++i) {
    acc01[i] &= static_cast<uint8_t>((types[i] != type) ? 1 : pass01[i]);
  }
}

void PackMask(const uint8_t* bytes01, int rows, SelectionMask* out) {
  out->AssignNone(rows);
  for (int i = 0; i < rows; ++i) {
    out->words_[static_cast<size_t>(i) >> 6] |=
        static_cast<uint64_t>(bytes01[i] & 1) << (static_cast<size_t>(i) & 63);
  }
}

void MaskedLinAggKernel(const double* col, const uint8_t* mask01, int rows,
                        double* count, double* sum) {
  double c = 0.0;
  double s = 0.0;
  for (int i = 0; i < rows; ++i) {
    const double m = static_cast<double>(mask01[i]);
    c += m;
    s += m * col[i];
  }
  *count = c;
  *sum = s;
}

Result<PredicateProgram> PredicateProgram::Compile(
    const Schema& schema, std::span<const PredicateList> lists) {
  PredicateProgram program;
  for (const PredicateList& list : lists) {
    if (list.preds == nullptr || list.preds->empty()) continue;
    QueryPreds qp;
    qp.first = static_cast<int>(program.preds_.size());
    for (const EventPredicate& p : *list.preds) {
      if (p.type == Schema::kInvalidId || p.type < 0 ||
          p.type >= schema.num_types()) {
        return Status::InvalidArgument(
            "predicate \"" + p.ToString() + "\" of exec query " +
            std::to_string(list.exec_id) +
            " references a type unknown to the schema (resolve predicates "
            "before Open)");
      }
      if (p.attr == Schema::kInvalidId || p.attr < 0 ||
          p.attr >= schema.num_attrs()) {
        return Status::InvalidArgument(
            "predicate \"" + p.ToString() + "\" of exec query " +
            std::to_string(list.exec_id) +
            " references an attribute unknown to the schema (resolve "
            "predicates before Open)");
      }
      CompiledPredicate cp;
      cp.type = p.type;
      cp.attr = p.attr;
      cp.op = p.op;
      cp.constant = p.constant;
      program.preds_.push_back(cp);
    }
    qp.count = static_cast<int>(program.preds_.size()) - qp.first;
    program.queries_.push_back(qp);
    program.pred_execs_.push_back(list.exec_id);
  }
  return program;
}

void PredicateProgram::EvalBatch(const EventBatch& batch,
                                 BatchSelection* out) const {
  const int rows = batch.size();
  out->masks.resize(queries_.size());
  if (queries_.empty()) return;
  out->acc.resize(static_cast<size_t>(rows));
  out->tmp.resize(static_cast<size_t>(rows));
  const TypeId* types = batch.types().data();
  for (size_t k = 0; k < queries_.size(); ++k) {
    const QueryPreds& qp = queries_[k];
    if (rows > 0) std::memset(out->acc.data(), 1, static_cast<size_t>(rows));
    for (int pi = qp.first; pi < qp.first + qp.count; ++pi) {
      const CompiledPredicate& p = preds_[static_cast<size_t>(pi)];
      const double* col = batch.column_data(p.attr);
      if (col != nullptr) {
        CmpColumnKernel(p.op, col, rows, p.constant, out->tmp.data());
      } else {
        // No row ever carried this attribute: the row path reads the
        // zero-initialized attrs slot, so compare 0.0 once and broadcast.
        const uint8_t pass = EvalCmp(p.op, 0.0, p.constant) ? 1 : 0;
        if (rows > 0)
          std::memset(out->tmp.data(), pass, static_cast<size_t>(rows));
      }
      TypeGateAnd(types, rows, p.type, out->tmp.data(), out->acc.data());
    }
    PackMask(out->acc.data(), rows, &out->masks[k]);
  }
}

bool PredicateProgram::EvalRow(int k, const Event& e) const {
  const QueryPreds& qp = queries_[static_cast<size_t>(k)];
  for (int pi = qp.first; pi < qp.first + qp.count; ++pi) {
    const CompiledPredicate& p = preds_[static_cast<size_t>(pi)];
    if (e.type != p.type) continue;
    const double v = p.attr < e.num_attrs
                         ? e.attrs[static_cast<size_t>(p.attr)]
                         : 0.0;
    if (!EvalCmp(p.op, v, p.constant)) return false;
  }
  return true;
}

}  // namespace hamlet
