// Event trend aggregation query (paper Definition 2) and workload.
#ifndef HAMLET_QUERY_QUERY_H_
#define HAMLET_QUERY_QUERY_H_

#include <string>
#include <vector>

#include "src/common/query_set.h"
#include "src/common/status.h"
#include "src/query/aggregate.h"
#include "src/query/pattern.h"
#include "src/query/predicate.h"
#include "src/stream/schema.h"

namespace hamlet {

/// WITHIN/SLIDE clause. `slide == within` means a tumbling window.
struct WindowSpec {
  Timestamp within = 0;
  Timestamp slide = 0;

  static WindowSpec Tumbling(Timestamp w) { return {w, w}; }
  static WindowSpec Sliding(Timestamp w, Timestamp s) { return {w, s}; }

  bool tumbling() const { return within == slide; }
  std::string ToString() const;
  bool operator==(const WindowSpec& o) const {
    return within == o.within && slide == o.slide;
  }
};

/// One query: RETURN aggregate, PATTERN, optional WHERE predicates,
/// optional GROUPBY attribute, WITHIN/SLIDE window.
struct Query {
  std::string name;
  AggregateSpec aggregate;
  Pattern pattern;
  std::vector<EventPredicate> event_predicates;
  std::vector<EdgePredicate> edge_predicates;
  /// Group-by attribute; kInvalidId when absent.
  std::string group_by_name;
  AttrId group_by = Schema::kInvalidId;
  WindowSpec window = WindowSpec::Tumbling(kMillisPerMinute);

  /// Binds all names against `schema`.
  Status Resolve(Schema* schema, bool register_missing = true);

  /// Canonical text form (parsable by ParseQuery).
  std::string ToString() const;

  bool has_group_by() const { return group_by != Schema::kInvalidId; }
};

/// A static workload of queries over one schema (paper assumes the workload
/// is fixed; §2.1).
class Workload {
 public:
  explicit Workload(Schema* schema) : schema_(schema) {}

  /// Resolves and appends; returns the dense QueryId or error.
  Result<QueryId> Add(Query query);

  const Query& query(QueryId id) const {
    HAMLET_CHECK(id >= 0 && id < size());
    return queries_[static_cast<size_t>(id)];
  }
  int size() const { return static_cast<int>(queries_.size()); }
  const std::vector<Query>& queries() const { return queries_; }
  Schema* schema() const { return schema_; }

  /// All query ids as a QuerySet.
  QuerySet AllQueries() const { return QuerySet::FirstN(size()); }

 private:
  Schema* schema_;
  std::vector<Query> queries_;
};

}  // namespace hamlet

#endif  // HAMLET_QUERY_QUERY_H_
