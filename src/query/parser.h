// SASE-style text syntax for trend aggregation queries.
//
//   RETURN COUNT(*) PATTERN SEQ(R, T+, NOT P, D)
//   WHERE T.speed < 10 AND [driver, rider] AND prev.price <= next.price
//   GROUPBY district WITHIN 10 min SLIDE 5 min
//
// Pattern grammar: event types, `E+`, `NOT E`, `SEQ(...)`, parenthesised
// groups, group Kleene `(SEQ(A,B+))+`, and binary OR/AND composition.
// Keywords are case-insensitive. Queries printed by Query::ToString() parse
// back to an equivalent query (round-trip property, tested).
#ifndef HAMLET_QUERY_PARSER_H_
#define HAMLET_QUERY_PARSER_H_

#include <string>

#include "src/common/status.h"
#include "src/query/query.h"

namespace hamlet {

/// Parses one query. Names are not resolved against a schema; callers
/// resolve via Workload::Add / Query::Resolve.
Result<Query> ParseQuery(const std::string& text);

/// Parses a pattern expression alone (handy in tests).
Result<Pattern> ParsePattern(const std::string& text);

}  // namespace hamlet

#endif  // HAMLET_QUERY_PARSER_H_
