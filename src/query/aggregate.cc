#include "src/query/aggregate.h"

namespace hamlet {

const char* AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kCountTrends:
      return "COUNT";
    case AggKind::kCountEvents:
      return "COUNT";
    case AggKind::kSum:
      return "SUM";
    case AggKind::kAvg:
      return "AVG";
    case AggKind::kMin:
      return "MIN";
    case AggKind::kMax:
      return "MAX";
  }
  return "?";
}

AggregateSpec AggregateSpec::CountEvents(std::string type) {
  AggregateSpec a;
  a.kind = AggKind::kCountEvents;
  a.type_name = std::move(type);
  return a;
}

namespace {
AggregateSpec MakeAttrAgg(AggKind kind, std::string type, std::string attr) {
  AggregateSpec a;
  a.kind = kind;
  a.type_name = std::move(type);
  a.attr_name = std::move(attr);
  return a;
}
}  // namespace

AggregateSpec AggregateSpec::Sum(std::string type, std::string attr) {
  return MakeAttrAgg(AggKind::kSum, std::move(type), std::move(attr));
}
AggregateSpec AggregateSpec::Avg(std::string type, std::string attr) {
  return MakeAttrAgg(AggKind::kAvg, std::move(type), std::move(attr));
}
AggregateSpec AggregateSpec::Min(std::string type, std::string attr) {
  return MakeAttrAgg(AggKind::kMin, std::move(type), std::move(attr));
}
AggregateSpec AggregateSpec::Max(std::string type, std::string attr) {
  return MakeAttrAgg(AggKind::kMax, std::move(type), std::move(attr));
}

Status AggregateSpec::Resolve(Schema* schema, bool register_missing) {
  if (kind == AggKind::kCountTrends) return Status::Ok();
  type = register_missing ? schema->AddType(type_name)
                          : schema->FindType(type_name);
  if (type == Schema::kInvalidId)
    return Status::NotFound("unknown aggregate type: " + type_name);
  if (kind == AggKind::kCountEvents) return Status::Ok();
  attr = register_missing ? schema->AddAttr(attr_name)
                          : schema->FindAttr(attr_name);
  if (attr == Schema::kInvalidId)
    return Status::NotFound("unknown aggregate attribute: " + attr_name);
  return Status::Ok();
}

std::string AggregateSpec::ToString() const {
  if (kind == AggKind::kCountTrends) return "COUNT(*)";
  if (kind == AggKind::kCountEvents)
    return std::string(AggKindName(kind)) + "(" + type_name + ")";
  return std::string(AggKindName(kind)) + "(" + type_name + "." + attr_name +
         ")";
}

bool AggregatesShareable(const AggregateSpec& a, const AggregateSpec& b) {
  if (a == b) return true;
  // AVG(E.attr) decomposes into SUM(E.attr) and COUNT(E), so it shares with
  // either over the same target (paper §3.1).
  auto is_avg_family = [](const AggregateSpec& x) {
    return x.kind == AggKind::kAvg || x.kind == AggKind::kSum ||
           x.kind == AggKind::kCountEvents;
  };
  if (is_avg_family(a) && is_avg_family(b) && a.type_name == b.type_name) {
    // COUNT(E) carries no attribute; SUM/AVG must agree on the attribute.
    if (a.kind == AggKind::kCountEvents || b.kind == AggKind::kCountEvents)
      return true;
    return a.attr_name == b.attr_name;
  }
  return false;
}

}  // namespace hamlet
