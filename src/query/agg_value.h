// Aggregate payload propagated through the GRETA/HAMLET graphs.
//
// All supported aggregates (COUNT(*), COUNT(E), SUM, AVG, MIN, MAX) ride on
// the same trend-count propagation (paper Eq. 1-3), extended per target
// event:
//   count(e)   = start(e) + sum_{e' in pe(e)} count(e')
//   count_e(e) = sum count_e(e') + [e.type==E] * count(e)
//   sum(e)     = sum sum(e')    + [e.type==E] * val(e) * count(e)
//   min(e)     = min(min over e' min(e'), [e.type==E && count(e)>0] val(e))
// Final values fold the payloads of end-type events (Eq. 3); AVG divides
// SUM by COUNT(E) at emission.
#ifndef HAMLET_QUERY_AGG_VALUE_H_
#define HAMLET_QUERY_AGG_VALUE_H_

#include <limits>

#include "src/query/aggregate.h"
#include "src/stream/event.h"

namespace hamlet {

/// Which payload fields a query (or share group) maintains, and the target
/// type/attribute for the per-event folds.
struct AggProfile {
  bool need_sum = false;
  bool need_count_e = false;
  bool need_min = false;
  bool need_max = false;
  TypeId target_type = Schema::kInvalidId;
  AttrId target_attr = Schema::kInvalidId;

  /// Profile for one aggregate.
  static AggProfile For(const AggregateSpec& agg);

  /// Union profile for a share group. All aggregates in a group are mutually
  /// shareable (Definition 5), hence target the same event type.
  void MergeWith(const AggProfile& other);
};

/// The propagated payload. Unused fields stay at their identities.
struct AggValue {
  double count = 0.0;
  double sum = 0.0;
  double count_e = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  static AggValue Zero() { return AggValue(); }

  /// Linear parts add; min/max fold. Used both for predecessor accumulation
  /// (Eq. 2's sum over pe(e)) and for summing events of a graphlet (Eq. 5).
  void Accumulate(const AggValue& v) {
    count += v.count;
    sum += v.sum;
    count_e += v.count_e;
    if (v.min < min) min = v.min;
    if (v.max > max) max = v.max;
  }

  /// Scales the linear parts (used by snapshot coefficient evaluation);
  /// min/max are coefficient-free, so a positive coefficient keeps them and
  /// a zero coefficient is never emitted.
  void AddScaled(const AggValue& v, double coeff) {
    count += coeff * v.count;
    sum += coeff * v.sum;
    count_e += coeff * v.count_e;
    if (coeff > 0.0) {
      if (v.min < min) min = v.min;
      if (v.max > max) max = v.max;
    }
  }

  bool operator==(const AggValue& o) const {
    return count == o.count && sum == o.sum && count_e == o.count_e &&
           min == o.min && max == o.max;
  }
};

/// Completes a node's payload from its predecessor accumulation `acc`
/// (per the recurrences above).
AggValue FinishNode(const AggValue& acc, bool is_start, const Event& e,
                    const AggProfile& profile);

/// Extracts the final result value for `kind` from the folded end-node
/// payload. Empty MIN/MAX yield +/-infinity; AVG with no target events
/// yields 0.
double ExtractResult(const AggValue& final_acc, AggKind kind);

}  // namespace hamlet

#endif  // HAMLET_QUERY_AGG_VALUE_H_
