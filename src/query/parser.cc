#include "src/query/parser.h"

#include <cctype>
#include <cstdlib>
#include <vector>

namespace hamlet {
namespace {

enum class TokKind { kIdent, kNumber, kSymbol, kEnd };

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;   // ident (upper-cased copy in `upper`), symbol, number
  std::string upper;  // case-folded ident for keyword matching
  double number = 0.0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Status Run(std::vector<Token>* out) {
    size_t i = 0;
    while (i < text_.size()) {
      char c = text_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t j = i;
        while (j < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[j])) ||
                text_[j] == '_'))
          ++j;
        Token t;
        t.kind = TokKind::kIdent;
        t.text = text_.substr(i, j - i);
        t.upper = t.text;
        for (char& ch : t.upper)
          ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
        out->push_back(std::move(t));
        i = j;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '-' && i + 1 < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[i + 1])))) {
        size_t j = i + 1;
        while (j < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[j])) ||
                text_[j] == '.' || text_[j] == 'e' || text_[j] == 'E' ||
                ((text_[j] == '+' || text_[j] == '-') &&
                 (text_[j - 1] == 'e' || text_[j - 1] == 'E'))))
          ++j;
        Token t;
        t.kind = TokKind::kNumber;
        t.text = text_.substr(i, j - i);
        t.number = std::strtod(t.text.c_str(), nullptr);
        out->push_back(std::move(t));
        i = j;
        continue;
      }
      // Multi-char symbols first.
      auto two = text_.substr(i, 2);
      if (two == "<=" || two == ">=" || two == "==" || two == "!=") {
        out->push_back({TokKind::kSymbol, two, "", 0.0});
        i += 2;
        continue;
      }
      std::string one(1, c);
      if (one == "(" || one == ")" || one == "[" || one == "]" || one == "," ||
          one == "." || one == "+" || one == "*" || one == "<" || one == ">" ||
          one == "=") {
        out->push_back({TokKind::kSymbol, one, "", 0.0});
        ++i;
        continue;
      }
      return Status::InvalidArgument(std::string("unexpected character '") +
                                     c + "' in query");
    }
    out->push_back({TokKind::kEnd, "", "", 0.0});
    return Status::Ok();
  }

 private:
  const std::string& text_;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  Result<Query> ParseQueryText() {
    Query q;
    if (!EatKeyword("RETURN"))
      return Status::InvalidArgument("expected RETURN");
    Result<AggregateSpec> agg = ParseAggregate();
    if (!agg.ok()) return agg.status();
    q.aggregate = agg.value();
    if (!EatKeyword("PATTERN"))
      return Status::InvalidArgument("expected PATTERN");
    Result<Pattern> pat = ParsePatternExpr();
    if (!pat.ok()) return pat.status();
    q.pattern = pat.value();
    if (EatKeyword("WHERE")) {
      Status s = ParseConditions(&q);
      if (!s.ok()) return s;
    }
    if (EatKeyword("GROUPBY")) {
      if (Cur().kind != TokKind::kIdent)
        return Status::InvalidArgument("expected attribute after GROUPBY");
      q.group_by_name = Cur().text;
      Advance();
    }
    if (!EatKeyword("WITHIN"))
      return Status::InvalidArgument("expected WITHIN");
    Result<Timestamp> within = ParseDuration();
    if (!within.ok()) return within.status();
    Timestamp slide = within.value();
    if (EatKeyword("SLIDE")) {
      Result<Timestamp> s = ParseDuration();
      if (!s.ok()) return s.status();
      slide = s.value();
    }
    q.window = {within.value(), slide};
    if (Cur().kind != TokKind::kEnd)
      return Status::InvalidArgument("trailing tokens after query: " +
                                     Cur().text);
    return q;
  }

  Result<Pattern> ParsePatternOnly() {
    Result<Pattern> p = ParsePatternExpr();
    if (!p.ok()) return p;
    if (Cur().kind != TokKind::kEnd)
      return Status::InvalidArgument("trailing tokens after pattern");
    return p;
  }

 private:
  const Token& Cur() const { return toks_[pos_]; }
  void Advance() {
    if (pos_ + 1 < toks_.size()) ++pos_;
  }

  bool EatSymbol(const std::string& sym) {
    if (Cur().kind == TokKind::kSymbol && Cur().text == sym) {
      Advance();
      return true;
    }
    return false;
  }

  bool PeekKeyword(const std::string& kw) const {
    return Cur().kind == TokKind::kIdent && Cur().upper == kw;
  }

  bool EatKeyword(const std::string& kw) {
    if (PeekKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }

  Result<AggregateSpec> ParseAggregate() {
    if (Cur().kind != TokKind::kIdent)
      return Status::InvalidArgument("expected aggregate function");
    std::string fn = Cur().upper;
    Advance();
    if (!EatSymbol("("))
      return Status::InvalidArgument("expected ( after aggregate function");
    AggregateSpec spec;
    if (fn == "COUNT" && EatSymbol("*")) {
      spec = AggregateSpec::CountTrends();
    } else {
      if (Cur().kind != TokKind::kIdent)
        return Status::InvalidArgument("expected type in aggregate");
      std::string type = Cur().text;
      Advance();
      std::string attr;
      if (EatSymbol(".")) {
        if (Cur().kind != TokKind::kIdent)
          return Status::InvalidArgument("expected attribute in aggregate");
        attr = Cur().text;
        Advance();
      }
      if (fn == "COUNT") {
        if (!attr.empty())
          return Status::InvalidArgument("COUNT takes * or a type");
        spec = AggregateSpec::CountEvents(type);
      } else if (attr.empty()) {
        return Status::InvalidArgument(fn + " requires type.attribute");
      } else if (fn == "SUM") {
        spec = AggregateSpec::Sum(type, attr);
      } else if (fn == "AVG") {
        spec = AggregateSpec::Avg(type, attr);
      } else if (fn == "MIN") {
        spec = AggregateSpec::Min(type, attr);
      } else if (fn == "MAX") {
        spec = AggregateSpec::Max(type, attr);
      } else {
        return Status::InvalidArgument("unknown aggregate function: " + fn);
      }
    }
    if (!EatSymbol(")"))
      return Status::InvalidArgument("expected ) after aggregate");
    return spec;
  }

  // pattern := element ( (OR|AND) element )*
  Result<Pattern> ParsePatternExpr() {
    Result<Pattern> lhs = ParseElement();
    if (!lhs.ok()) return lhs;
    Pattern out = lhs.value();
    while (PeekKeyword("OR") || PeekKeyword("AND")) {
      bool is_or = PeekKeyword("OR");
      Advance();
      Result<Pattern> rhs = ParseElement();
      if (!rhs.ok()) return rhs;
      out = is_or ? Pattern::Or(std::move(out), rhs.value())
                  : Pattern::And(std::move(out), rhs.value());
    }
    return out;
  }

  Result<Pattern> ParseElement() {
    if (EatKeyword("NOT")) {
      Result<Pattern> inner = ParseElement();
      if (!inner.ok()) return inner;
      return Pattern::Not(inner.value());
    }
    if (PeekKeyword("SEQ")) {
      Advance();
      if (!EatSymbol("(")) return Status::InvalidArgument("expected ( in SEQ");
      std::vector<Pattern> parts;
      for (;;) {
        Result<Pattern> part = ParsePatternExpr();
        if (!part.ok()) return part;
        parts.push_back(part.value());
        if (EatSymbol(",")) continue;
        break;
      }
      if (!EatSymbol(")"))
        return Status::InvalidArgument("expected ) closing SEQ");
      Pattern seq = Pattern::Seq(std::move(parts));
      if (EatSymbol("+")) return Pattern::Kleene(std::move(seq));
      return seq;
    }
    if (EatSymbol("(")) {
      Result<Pattern> inner = ParsePatternExpr();
      if (!inner.ok()) return inner;
      if (!EatSymbol(")")) return Status::InvalidArgument("expected )");
      Pattern p = inner.value();
      if (EatSymbol("+")) return Pattern::Kleene(std::move(p));
      return p;
    }
    if (Cur().kind != TokKind::kIdent)
      return Status::InvalidArgument("expected event type, found: " +
                                     Cur().text);
    Pattern p = Pattern::Type(Cur().text);
    Advance();
    if (EatSymbol("+")) return Pattern::Kleene(std::move(p));
    return p;
  }

  Result<CmpOp> ParseCmpOp() {
    if (Cur().kind != TokKind::kSymbol)
      return Status::InvalidArgument("expected comparison operator");
    std::string s = Cur().text;
    Advance();
    if (s == "<") return CmpOp::kLt;
    if (s == "<=") return CmpOp::kLe;
    if (s == ">") return CmpOp::kGt;
    if (s == ">=") return CmpOp::kGe;
    if (s == "=" || s == "==") return CmpOp::kEq;
    if (s == "!=") return CmpOp::kNe;
    return Status::InvalidArgument("unknown comparison operator: " + s);
  }

  Status ParseConditions(Query* q) {
    for (;;) {
      // `[attr, attr, ...]` — equality edge predicates.
      if (EatSymbol("[")) {
        for (;;) {
          if (Cur().kind != TokKind::kIdent)
            return Status::InvalidArgument("expected attribute in [..]");
          q->edge_predicates.emplace_back(Cur().text, CmpOp::kEq);
          Advance();
          if (EatSymbol(",")) continue;
          break;
        }
        if (!EatSymbol("]")) return Status::InvalidArgument("expected ]");
      } else if (PeekKeyword("PREV")) {
        // prev.attr OP next.attr
        Advance();
        if (!EatSymbol("."))
          return Status::InvalidArgument("expected . after prev");
        if (Cur().kind != TokKind::kIdent)
          return Status::InvalidArgument("expected attribute after prev.");
        std::string attr = Cur().text;
        Advance();
        Result<CmpOp> op = ParseCmpOp();
        if (!op.ok()) return op.status();
        if (!EatKeyword("NEXT"))
          return Status::InvalidArgument("expected next in edge predicate");
        if (!EatSymbol("."))
          return Status::InvalidArgument("expected . after next");
        if (Cur().kind != TokKind::kIdent || Cur().text != attr)
          return Status::InvalidArgument(
              "edge predicate must compare the same attribute");
        Advance();
        q->edge_predicates.emplace_back(attr, op.value());
      } else {
        // Type.attr OP constant
        if (Cur().kind != TokKind::kIdent)
          return Status::InvalidArgument("expected predicate");
        std::string type = Cur().text;
        Advance();
        if (!EatSymbol("."))
          return Status::InvalidArgument("expected . in event predicate");
        if (Cur().kind != TokKind::kIdent)
          return Status::InvalidArgument("expected attribute name");
        std::string attr = Cur().text;
        Advance();
        Result<CmpOp> op = ParseCmpOp();
        if (!op.ok()) return op.status();
        if (Cur().kind != TokKind::kNumber)
          return Status::InvalidArgument("expected numeric constant");
        q->event_predicates.emplace_back(type, attr, op.value(), Cur().number);
        Advance();
      }
      if (EatKeyword("AND")) continue;
      return Status::Ok();
    }
  }

  Result<Timestamp> ParseDuration() {
    if (Cur().kind != TokKind::kNumber)
      return Status::InvalidArgument("expected duration value");
    double v = Cur().number;
    Advance();
    Timestamp unit = 1;
    if (Cur().kind == TokKind::kIdent) {
      std::string u = Cur().upper;
      if (u == "MS") {
        unit = 1;
        Advance();
      } else if (u == "S" || u == "SEC") {
        unit = kMillisPerSecond;
        Advance();
      } else if (u == "MIN") {
        unit = kMillisPerMinute;
        Advance();
      }
    }
    return static_cast<Timestamp>(v * static_cast<double>(unit));
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;
};

}  // namespace

Result<Query> ParseQuery(const std::string& text) {
  std::vector<Token> tokens;
  Status s = Lexer(text).Run(&tokens);
  if (!s.ok()) return s;
  return Parser(std::move(tokens)).ParseQueryText();
}

Result<Pattern> ParsePattern(const std::string& text) {
  std::vector<Token> tokens;
  Status s = Lexer(text).Run(&tokens);
  if (!s.ok()) return s;
  return Parser(std::move(tokens)).ParsePatternOnly();
}

}  // namespace hamlet
