#include "src/query/agg_value.h"

#include "src/common/check.h"

namespace hamlet {

AggProfile AggProfile::For(const AggregateSpec& agg) {
  AggProfile p;
  p.target_type = agg.type;
  p.target_attr = agg.attr;
  switch (agg.kind) {
    case AggKind::kCountTrends:
      break;
    case AggKind::kCountEvents:
      p.need_count_e = true;
      break;
    case AggKind::kSum:
      p.need_sum = true;
      break;
    case AggKind::kAvg:
      p.need_sum = true;
      p.need_count_e = true;
      break;
    case AggKind::kMin:
      p.need_min = true;
      break;
    case AggKind::kMax:
      p.need_max = true;
      break;
  }
  return p;
}

void AggProfile::MergeWith(const AggProfile& other) {
  if (target_type == Schema::kInvalidId) {
    target_type = other.target_type;
  } else if (other.target_type != Schema::kInvalidId) {
    HAMLET_CHECK(target_type == other.target_type);
  }
  if (target_attr == Schema::kInvalidId) {
    target_attr = other.target_attr;
  } else if (other.target_attr != Schema::kInvalidId) {
    HAMLET_CHECK(target_attr == other.target_attr);
  }
  need_sum |= other.need_sum;
  need_count_e |= other.need_count_e;
  need_min |= other.need_min;
  need_max |= other.need_max;
}

AggValue FinishNode(const AggValue& acc, bool is_start, const Event& e,
                    const AggProfile& profile) {
  AggValue out = acc;
  out.count = acc.count + (is_start ? 1.0 : 0.0);
  if (e.type == profile.target_type) {
    if (profile.need_count_e) out.count_e = acc.count_e + out.count;
    const double val =
        profile.target_attr == Schema::kInvalidId ? 0.0 : e.attr(
            profile.target_attr);
    if (profile.need_sum) out.sum = acc.sum + val * out.count;
    if (out.count > 0.0) {
      if (profile.need_min && val < out.min) out.min = val;
      if (profile.need_max && val > out.max) out.max = val;
    }
  }
  return out;
}

double ExtractResult(const AggValue& final_acc, AggKind kind) {
  switch (kind) {
    case AggKind::kCountTrends:
      return final_acc.count;
    case AggKind::kCountEvents:
      return final_acc.count_e;
    case AggKind::kSum:
      return final_acc.sum;
    case AggKind::kAvg:
      return final_acc.count_e == 0.0 ? 0.0 : final_acc.sum / final_acc.count_e;
    case AggKind::kMin:
      return final_acc.min;
    case AggKind::kMax:
      return final_acc.max;
  }
  return 0.0;
}

}  // namespace hamlet
