// Predicates (paper's optional WHERE clause).
//
// Two classes, mirroring how GRETA/HAMLET consume them:
//  * EventPredicate — filters whether an event of a given type is matched by
//    the query at all (e.g. `T.speed < 10`).
//  * EdgePredicate  — constrains *adjacent* events in a trend (e.g.
//    `[driver]` id-equality, or `prev.price < next.price`). Divergence of
//    edge predicates across sharing queries is what forces event-level
//    snapshots (Definition 9).
#ifndef HAMLET_QUERY_PREDICATE_H_
#define HAMLET_QUERY_PREDICATE_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/stream/event.h"
#include "src/stream/schema.h"

namespace hamlet {

enum class CmpOp { kLt, kLe, kGt, kGe, kEq, kNe };

const char* CmpOpName(CmpOp op);

/// Applies `lhs op rhs`.
bool EvalCmp(CmpOp op, double lhs, double rhs);

/// `<type>.<attr> <op> <constant>`; applies to events of `type` only.
struct EventPredicate {
  std::string type_name;
  std::string attr_name;
  CmpOp op = CmpOp::kLt;
  double constant = 0.0;
  TypeId type = Schema::kInvalidId;
  AttrId attr = Schema::kInvalidId;

  EventPredicate() = default;
  EventPredicate(std::string type, std::string attr, CmpOp o, double c)
      : type_name(std::move(type)),
        attr_name(std::move(attr)),
        op(o),
        constant(c) {}

  Status Resolve(Schema* schema, bool register_missing = true);

  /// True when `e` passes (or is not of this predicate's type).
  bool Eval(const Event& e) const {
    if (e.type != type) return true;
    return EvalCmp(op, e.attr(attr), constant);
  }

  std::string ToString() const;
  bool operator==(const EventPredicate& o) const {
    return type_name == o.type_name && attr_name == o.attr_name &&
           op == o.op && constant == o.constant;
  }
};

/// `prev.<attr> <op> next.<attr>` between adjacent trend events. The paper's
/// `[driver, rider]` clause is sugar for equality edge predicates.
struct EdgePredicate {
  std::string attr_name;
  CmpOp op = CmpOp::kEq;
  AttrId attr = Schema::kInvalidId;

  EdgePredicate() = default;
  EdgePredicate(std::string attr, CmpOp o)
      : attr_name(std::move(attr)), op(o) {}

  Status Resolve(Schema* schema, bool register_missing = true);

  /// True when the adjacency (prev -> next) is allowed.
  bool Eval(const Event& prev, const Event& next) const {
    return EvalCmp(op, prev.attr(attr), next.attr(attr));
  }

  std::string ToString() const;
  bool operator==(const EdgePredicate& o) const {
    return attr_name == o.attr_name && op == o.op;
  }
};

/// Evaluates all event predicates of one query against `e`.
bool PassesEventPredicates(const std::vector<EventPredicate>& preds,
                           const Event& e);

/// Evaluates all edge predicates of one query against an adjacency.
bool PassesEdgePredicates(const std::vector<EdgePredicate>& preds,
                          const Event& prev, const Event& next);

}  // namespace hamlet

#endif  // HAMLET_QUERY_PREDICATE_H_
