// Aggregation functions over event trends (paper §2.1).
//
// COUNT(*) counts trends per group; COUNT(E)/SUM/AVG/MIN/MAX fold over the
// events of type E inside all trends. All are distributive/algebraic, so they
// propagate incrementally through the GRETA/HAMLET graphs.
#ifndef HAMLET_QUERY_AGGREGATE_H_
#define HAMLET_QUERY_AGGREGATE_H_

#include <string>

#include "src/common/status.h"
#include "src/stream/schema.h"

namespace hamlet {

enum class AggKind {
  kCountTrends,  ///< COUNT(*)
  kCountEvents,  ///< COUNT(E)
  kSum,          ///< SUM(E.attr)
  kAvg,          ///< AVG(E.attr) = SUM(E.attr) / COUNT(E)
  kMin,          ///< MIN(E.attr)
  kMax,          ///< MAX(E.attr)
};

const char* AggKindName(AggKind kind);

/// One aggregation function, possibly over a target type/attribute.
struct AggregateSpec {
  AggKind kind = AggKind::kCountTrends;
  std::string type_name;  ///< target E (empty for COUNT(*))
  std::string attr_name;  ///< target attribute (empty for COUNT(*)/COUNT(E))
  TypeId type = Schema::kInvalidId;
  AttrId attr = Schema::kInvalidId;

  static AggregateSpec CountTrends() { return {}; }
  static AggregateSpec CountEvents(std::string type);
  static AggregateSpec Sum(std::string type, std::string attr);
  static AggregateSpec Avg(std::string type, std::string attr);
  static AggregateSpec Min(std::string type, std::string attr);
  static AggregateSpec Max(std::string type, std::string attr);

  /// Binds type/attr names against the schema.
  Status Resolve(Schema* schema, bool register_missing = true);

  /// "COUNT(*)", "SUM(T.price)", ...
  std::string ToString() const;

  bool operator==(const AggregateSpec& o) const {
    return kind == o.kind && type_name == o.type_name &&
           attr_name == o.attr_name;
  }
};

/// Definition 5's aggregate-compatibility: COUNT(*)/MIN/MAX share only with
/// identical functions; AVG shares with SUM and COUNT(E) over the same
/// type/attribute (AVG = SUM / COUNT).
bool AggregatesShareable(const AggregateSpec& a, const AggregateSpec& b);

}  // namespace hamlet

#endif  // HAMLET_QUERY_AGGREGATE_H_
