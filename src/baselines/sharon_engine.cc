#include "src/baselines/sharon_engine.h"

#include <algorithm>

namespace hamlet {

SharonEngine::SharonEngine(const WorkloadPlan& plan, QuerySet members,
                           int max_kleene_length)
    : plan_(&plan), members_(members), max_len_(max_kleene_length) {
  supported_.assign(static_cast<size_t>(plan.num_exec()), false);
  profiles_.resize(static_cast<size_t>(plan.num_exec()));
  members_.ForEach([&](QueryId q) {
    const ExecQuery& eq = plan_->exec_queries[static_cast<size_t>(q)];
    profiles_[static_cast<size_t>(q)] = AggProfile::For(eq.aggregate);
    if (eq.tmpl.pattern.group_kleene) return;
    for (const EdgePredicate& p : eq.edge_predicates) {
      if (p.op != CmpOp::kEq) return;  // only equality partitions supported
    }
    ExpandQuery(q, eq);
    supported_[static_cast<size_t>(q)] = true;
  });
}

SharonEngine::PartitionState& SharonEngine::PartitionFor(Expanded& ex,
                                                         const ExecQuery& eq,
                                                         const Event& e) {
  std::vector<double> key;
  key.reserve(eq.edge_predicates.size());
  for (const EdgePredicate& p : eq.edge_predicates) key.push_back(e.attr(p.attr));
  PartitionState& state = ex.partitions[key];
  if (state.prefix.empty()) {
    state.prefix.assign(ex.types.size() + 1, AggValue());
    state.prefix[0].count = 1.0;  // the empty prefix
    state.avail.assign(ex.types.size() + 2, AggValue());
  }
  return state;
}

void SharonEngine::ExpandQuery(int exec_id, const ExecQuery& eq) {
  const LinearPattern& pat = eq.tmpl.pattern;
  const int m = pat.num_positions();
  // Enumerate per-Kleene-position lengths 1..l (non-Kleene positions have
  // length exactly 1), capped to keep pathological multi-Kleene patterns
  // bounded.
  constexpr int kMaxExpansions = 4096;
  std::vector<int> lengths(static_cast<size_t>(m), 1);
  std::vector<int> kleene_positions;
  for (int i = 0; i < m; ++i) {
    if (pat.elements[static_cast<size_t>(i)].kleene)
      kleene_positions.push_back(i);
  }
  // Recursive length assignment.
  std::vector<std::vector<int>> assignments;
  std::vector<int> current(kleene_positions.size(), 1);
  auto emit = [&]() {
    if (static_cast<int>(assignments.size()) < kMaxExpansions)
      assignments.push_back(current);
  };
  if (kleene_positions.empty()) {
    assignments.push_back({});
  } else {
    // Odometer over lengths.
    for (;;) {
      emit();
      size_t d = 0;
      while (d < current.size()) {
        if (current[d] < max_len_) {
          ++current[d];
          break;
        }
        current[d] = 1;
        ++d;
      }
      if (d == current.size() ||
          static_cast<int>(assignments.size()) >= kMaxExpansions)
        break;
    }
  }

  for (const std::vector<int>& assign : assignments) {
    Expanded ex;
    ex.exec_id = exec_id;
    for (size_t ki = 0; ki < kleene_positions.size(); ++ki)
      lengths[static_cast<size_t>(kleene_positions[ki])] = assign[ki];
    // Build the expanded type sequence and map negation boundaries.
    std::vector<int> block_end(static_cast<size_t>(m), 0);
    for (int i = 0; i < m; ++i) {
      for (int r = 0; r < lengths[static_cast<size_t>(i)]; ++r)
        ex.types.push_back(pat.elements[static_cast<size_t>(i)].type);
      block_end[static_cast<size_t>(i)] = static_cast<int>(ex.types.size());
    }
    // negs[j] = negated types blocking the edge used when an event fills
    // prefix length j (between the (j-1)-th and j-th matched events).
    ex.negs.assign(ex.types.size() + 2, {});
    for (const NegationMark& n : pat.negations) {
      if (n.after_position < 0) {
        ex.leading_negs.push_back(n.type);
      } else if (n.after_position >= m - 1) {
        ex.trailing_negs.push_back(n.type);
      } else {
        // The first slot of block ap+1 fills prefix length block_end[ap]+1.
        int j = block_end[static_cast<size_t>(n.after_position)] + 1;
        ex.negs[static_cast<size_t>(j)].push_back(n.type);
      }
    }
    expanded_.push_back(std::move(ex));
    ++expanded_count_;
  }
}

void SharonEngine::OnEvent(const Event& e) {
  for (Expanded& ex : expanded_) {
    const ExecQuery& eq =
        plan_->exec_queries[static_cast<size_t>(ex.exec_id)];
    const AggProfile& prof = profiles_[static_cast<size_t>(ex.exec_id)];
    const bool passes = PassesEventPredicates(eq.event_predicates, e);
    if (!passes) continue;
    // Negation effects first: a negated match blocks boundaries across all
    // partitions (negated events are not trend events, so edge-equality
    // keys do not apply to them).
    bool negated = false;
    for (TypeId t : ex.leading_negs) {
      if (t == e.type) {
        ex.leading_blocked = true;
        negated = true;
      }
    }
    for (TypeId t : ex.trailing_negs) {
      if (t == e.type) {
        for (auto& [key, state] : ex.partitions) state.final_acc = AggValue();
        negated = true;
      }
    }
    for (size_t j = 1; j <= ex.types.size(); ++j) {
      for (TypeId t : ex.negs[j]) {
        if (t == e.type) {
          for (auto& [key, state] : ex.partitions) state.avail[j] = AggValue();
          negated = true;
        }
      }
    }
    if (negated) continue;
    bool in_types = false;
    for (TypeId t : ex.types) in_types |= (t == e.type);
    if (!in_types) continue;
    const int mlen = static_cast<int>(ex.types.size());
    const bool is_target = e.type == prof.target_type;
    const double val =
        prof.target_attr == Schema::kInvalidId ? 0.0 : e.attr(prof.target_attr);
    PartitionState& st = PartitionFor(ex, eq, e);
    // Descending j so one event never extends a prefix it just created.
    for (int j = mlen; j >= 1; --j) {
      ++ops_;
      if (ex.types[static_cast<size_t>(j - 1)] != e.type) continue;
      AggValue base;
      if (j == 1) {
        if (!ex.leading_blocked) base = st.prefix[0];
      } else {
        base = ex.negs[static_cast<size_t>(j)].empty()
                   ? st.prefix[static_cast<size_t>(j - 1)]
                   : st.avail[static_cast<size_t>(j)];
      }
      if (base.count == 0.0) continue;
      AggValue delta = base;
      if (is_target) {
        delta.count_e = base.count_e + base.count;
        delta.sum = base.sum + val * base.count;
        if (val < delta.min) delta.min = val;
        if (val > delta.max) delta.max = val;
      }
      st.prefix[static_cast<size_t>(j)].Accumulate(delta);
      // avail[j+1] shadows prefix[j] under boundary negation.
      if (j + 1 <= mlen && !ex.negs[static_cast<size_t>(j + 1)].empty())
        st.avail[static_cast<size_t>(j + 1)].Accumulate(delta);
      if (j == mlen) st.final_acc.Accumulate(delta);
    }
  }
}

bool SharonEngine::Supported(int exec_id) const {
  return supported_[static_cast<size_t>(exec_id)];
}

AggValue SharonEngine::Agg(int exec_id) const {
  AggValue out;
  for (const Expanded& ex : expanded_) {
    if (ex.exec_id != exec_id) continue;
    for (const auto& [key, state] : ex.partitions)
      out.Accumulate(state.final_acc);
  }
  return out;
}

double SharonEngine::Value(int exec_id) const {
  return ExtractResult(
      Agg(exec_id),
      plan_->exec_queries[static_cast<size_t>(exec_id)].aggregate.kind);
}

int64_t SharonEngine::MemoryBytes() const {
  int64_t bytes = 0;
  for (const Expanded& ex : expanded_) {
    bytes += static_cast<int64_t>(ex.types.size() * sizeof(TypeId)) +
             static_cast<int64_t>(sizeof(Expanded));
    for (const auto& [key, state] : ex.partitions) {
      bytes += static_cast<int64_t>(
          (state.prefix.size() + state.avail.size()) * sizeof(AggValue) +
          key.size() * sizeof(double));
    }
  }
  return bytes;
}

}  // namespace hamlet
