// MCEP-style shared two-step baseline (paper §6.1 "Methodology").
//
// The defining properties reproduced here (see DESIGN.md §2 for the
// substitution note): trends are *constructed* before aggregation (so the
// per-window cost is proportional to the number of trends — exponential in
// matched events), and construction is *shared*: queries with identical
// (pattern, predicates) signatures reuse one enumeration, with all their
// aggregates folded in a single pass. An enumeration budget guards runaway
// windows; exceeding it is reported, mirroring how two-step systems fail to
// keep up in the paper's high-rate settings.
#ifndef HAMLET_BASELINES_TWO_STEP_ENGINE_H_
#define HAMLET_BASELINES_TWO_STEP_ENGINE_H_

#include <vector>

#include "src/common/status.h"
#include "src/plan/workload_plan.h"
#include "src/query/agg_value.h"

namespace hamlet {

/// Per-window, per-group two-step evaluator for a set of exec queries.
class TwoStepEngine {
 public:
  TwoStepEngine(const WorkloadPlan& plan, QuerySet members,
                int64_t max_trends = 20'000'000);

  /// Buffers the event (step 0: no online work beyond matching).
  void OnEvent(const Event& e) { buffer_.push_back(e); }

  /// Step 1+2: constructs all trends per signature group and folds every
  /// member's aggregate. Returns kResourceExhausted past the trend budget.
  Status Finish();

  /// Valid after Finish().
  double Value(int exec_id) const;
  const AggValue& Agg(int exec_id) const;

  /// Buffered events + the in-flight trend (the paper's MCEP memory model).
  int64_t MemoryBytes() const;

  int64_t trends_constructed() const { return trends_; }

 private:
  const WorkloadPlan* plan_;
  QuerySet members_;
  int64_t max_trends_;
  EventVector buffer_;
  std::vector<AggValue> aggs_;
  std::vector<double> values_;
  std::vector<bool> valid_;
  int64_t trends_ = 0;
  int64_t peak_trend_len_ = 0;
  bool finished_ = false;
};

}  // namespace hamlet

#endif  // HAMLET_BASELINES_TWO_STEP_ENGINE_H_
