#include "src/baselines/two_step_engine.h"

#include <algorithm>

#include "src/brute/enumerator.h"

namespace hamlet {

namespace {

/// Two exec queries share construction when their trends are guaranteed
/// identical: same pattern and same predicates.
bool SameSignature(const ExecQuery& a, const ExecQuery& b) {
  if (!(a.tmpl.pattern.group_kleene == b.tmpl.pattern.group_kleene)) return false;
  if (a.tmpl.pattern.elements.size() != b.tmpl.pattern.elements.size())
    return false;
  for (size_t i = 0; i < a.tmpl.pattern.elements.size(); ++i) {
    if (a.tmpl.pattern.elements[i].type != b.tmpl.pattern.elements[i].type ||
        a.tmpl.pattern.elements[i].kleene != b.tmpl.pattern.elements[i].kleene)
      return false;
  }
  if (a.tmpl.pattern.negations.size() != b.tmpl.pattern.negations.size())
    return false;
  for (size_t i = 0; i < a.tmpl.pattern.negations.size(); ++i) {
    if (a.tmpl.pattern.negations[i].type != b.tmpl.pattern.negations[i].type ||
        a.tmpl.pattern.negations[i].after_position !=
            b.tmpl.pattern.negations[i].after_position)
      return false;
  }
  return a.event_predicates == b.event_predicates &&
         a.edge_predicates == b.edge_predicates;
}

}  // namespace

TwoStepEngine::TwoStepEngine(const WorkloadPlan& plan, QuerySet members,
                             int64_t max_trends)
    : plan_(&plan), members_(members), max_trends_(max_trends) {
  aggs_.resize(static_cast<size_t>(plan.num_exec()));
  values_.assign(static_cast<size_t>(plan.num_exec()), 0.0);
  valid_.assign(static_cast<size_t>(plan.num_exec()), false);
}

Status TwoStepEngine::Finish() {
  finished_ = true;
  // Group members by construction signature (the sharing step).
  std::vector<std::vector<int>> groups;
  members_.ForEach([&](QueryId q) {
    for (auto& g : groups) {
      if (SameSignature(plan_->exec_queries[static_cast<size_t>(g[0])],
                        plan_->exec_queries[static_cast<size_t>(q)])) {
        g.push_back(q);
        return;
      }
    }
    groups.push_back({q});
  });

  for (const auto& group : groups) {
    const ExecQuery& rep = plan_->exec_queries[static_cast<size_t>(group[0])];
    // Profiles of every member, folded per constructed trend.
    std::vector<AggProfile> profiles;
    for (int q : group)
      profiles.push_back(AggProfile::For(
          plan_->exec_queries[static_cast<size_t>(q)].aggregate));

    BruteOptions options;
    options.max_trends = max_trends_ - trends_;
    std::vector<AggValue> folded(group.size());
    options.on_trend = [&](const std::vector<int>& trend) {
      ++trends_;
      peak_trend_len_ =
          std::max(peak_trend_len_, static_cast<int64_t>(trend.size()));
      for (size_t m = 0; m < group.size(); ++m) {
        const AggProfile& prof = profiles[m];
        AggValue v;
        v.count = 1.0;
        for (int idx : trend) {
          const Event& e = buffer_[static_cast<size_t>(idx)];
          if (e.type != prof.target_type) continue;
          v.count_e += 1.0;
          const double val = prof.target_attr == Schema::kInvalidId
                                 ? 0.0
                                 : e.attr(prof.target_attr);
          v.sum += val;
          if (val < v.min) v.min = val;
          if (val > v.max) v.max = val;
        }
        folded[m].Accumulate(v);
      }
    };
    Result<BruteResult> r = BruteForceEval(rep, buffer_, options);
    if (!r.ok()) return r.status();
    for (size_t m = 0; m < group.size(); ++m) {
      const int q = group[m];
      aggs_[static_cast<size_t>(q)] = folded[m];
      values_[static_cast<size_t>(q)] = ExtractResult(
          folded[m], plan_->exec_queries[static_cast<size_t>(q)].aggregate.kind);
      valid_[static_cast<size_t>(q)] = true;
    }
  }
  return Status::Ok();
}

double TwoStepEngine::Value(int exec_id) const {
  HAMLET_CHECK(finished_ && valid_[static_cast<size_t>(exec_id)]);
  return values_[static_cast<size_t>(exec_id)];
}

const AggValue& TwoStepEngine::Agg(int exec_id) const {
  HAMLET_CHECK(finished_ && valid_[static_cast<size_t>(exec_id)]);
  return aggs_[static_cast<size_t>(exec_id)];
}

int64_t TwoStepEngine::MemoryBytes() const {
  return static_cast<int64_t>(buffer_.size() * sizeof(Event)) +
         peak_trend_len_ * static_cast<int64_t>(sizeof(int)) +
         static_cast<int64_t>(aggs_.size() * sizeof(AggValue));
}

}  // namespace hamlet
