// SHARON-style flattening baseline (paper §6.1 "Methodology").
//
// SHARON computes online *fixed-length* sequence aggregation and does not
// support Kleene closure. Exactly as the paper describes, each Kleene
// sub-pattern E+ is flattened into fixed-length sequence queries covering
// every length 1..l, each evaluated by an A-Seq-style online DP over prefix
// states. The per-event cost is O(sum of expanded positions) and the state
// is O(l^2) payloads per Kleene query — the overheads the paper measures.
//
// Scope (documented): event predicates, negation, and *equality* edge
// predicates (e.g. [driver, rider]) are supported — the latter by
// partitioning the DP state per joint attribute value, which is exactly
// what they mean semantically. Non-equality edge predicates and group
// Kleene are not supported (SHARON predates both); affected queries report
// unsupported.
#ifndef HAMLET_BASELINES_SHARON_ENGINE_H_
#define HAMLET_BASELINES_SHARON_ENGINE_H_

#include <map>
#include <vector>

#include "src/plan/workload_plan.h"
#include "src/query/agg_value.h"

namespace hamlet {

/// Per-window, per-group flattened evaluator for a set of exec queries.
class SharonEngine {
 public:
  /// `max_kleene_length` is the paper's l: the provisioned longest match.
  /// Streams whose same-type runs exceed it undercount (as real SHARON
  /// deployments would); correctness tests keep runs below it.
  SharonEngine(const WorkloadPlan& plan, QuerySet members,
               int max_kleene_length = 64);

  void OnEvent(const Event& e);

  /// True when the exec query could be flattened.
  bool Supported(int exec_id) const;
  double Value(int exec_id) const;
  AggValue Agg(int exec_id) const;

  /// Prefix-state payloads across all expanded queries (the paper's
  /// "aggregates for SHARON" memory model).
  int64_t MemoryBytes() const;
  int64_t ops() const { return ops_; }
  /// Number of expanded fixed-length queries.
  int64_t expanded_queries() const { return expanded_count_; }

 private:
  /// DP state of one equality-partition of one flattened query.
  struct PartitionState {
    /// Prefix payloads S_0..S_m; S_0 is the unit prefix.
    std::vector<AggValue> prefix;
    /// Negation-guarded availability shadow of S_{j-1} per boundary j.
    std::vector<AggValue> avail;
    AggValue final_acc;
  };

  /// One flattened fixed-length sequence query.
  struct Expanded {
    int exec_id = -1;
    std::vector<TypeId> types;              ///< expanded positions
    std::vector<std::vector<TypeId>> negs;  ///< boundary negations per pos
    std::vector<TypeId> leading_negs;
    std::vector<TypeId> trailing_negs;
    /// Keyed by the joint value of the query's equality edge attributes
    /// (one empty-key partition when the query has none).
    std::map<std::vector<double>, PartitionState> partitions;
    bool leading_blocked = false;
  };

  void ExpandQuery(int exec_id, const ExecQuery& eq);
  PartitionState& PartitionFor(Expanded& ex, const ExecQuery& eq,
                               const Event& e);

  const WorkloadPlan* plan_;
  QuerySet members_;
  int max_len_;
  std::vector<Expanded> expanded_;
  std::vector<bool> supported_;
  std::vector<AggProfile> profiles_;
  int64_t ops_ = 0;
  int64_t expanded_count_ = 0;
};

}  // namespace hamlet

#endif  // HAMLET_BASELINES_SHARON_ENGINE_H_
