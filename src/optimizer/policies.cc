#include "src/optimizer/policies.h"

namespace hamlet {

SharingDecision NeverSharePolicy::Decide(const std::vector<int>& members,
                                         const BurstStats& stats) {
  (void)members;
  (void)stats;
  return {};
}

SharingDecision AlwaysSharePolicy::Decide(const std::vector<int>& members,
                                          const BurstStats& stats) {
  (void)stats;
  SharingDecision d;
  for (int q : members) d.shared.Insert(q);
  return d;
}

SharingDecision DynamicBenefitPolicy::Decide(const std::vector<int>& members,
                                             const BurstStats& stats) {
  ++decisions_;
  CostInputs in;
  in.k = stats.k;
  in.b = stats.b;
  in.n = stats.n;
  in.g = stats.g;
  in.p = stats.p;
  in.t = stats.t;
  in.sp = stats.sp;

  // Level-2 pruning: Theorem 4.1 keeps zero-snapshot queries shared;
  // Theorem 4.2's marginal test decides each snapshot-introducing query.
  SharingDecision d;
  double sc_shared = 1.0;  // the graphlet-level snapshot itself
  int shared_count = 0;
  for (size_t i = 0; i < members.size(); ++i) {
    const double sc_q =
        i < stats.sc_per_member.size() ? stats.sc_per_member[i] : 0.0;
    if (sc_q <= 0.0 || MarginalShareWins(sc_q, in, variant_)) {
      d.shared.Insert(members[i]);
      sc_shared += sc_q;
      ++shared_count;
    }
  }
  if (shared_count < 2) return {};

  // Final Eq. 8 check of the chosen plan.
  CostInputs chosen = in;
  chosen.k = shared_count;
  chosen.sc = sc_shared;
  if (SharingBenefit(chosen, variant_) <= 0.0) return {};
  return d;
}

}  // namespace hamlet
