#include "src/optimizer/cost_model.h"

#include <algorithm>
#include <cmath>

namespace hamlet {

namespace {
double Log2G(double g) { return std::log2(std::max(2.0, g)); }
}  // namespace

double SharedCost(const CostInputs& in, CostModelVariant variant) {
  if (variant == CostModelVariant::kSimple) {
    return in.b * in.n * in.sp + in.sc * in.k * in.g * in.t;
  }
  return in.sc * in.k * in.g * in.p + in.b * (Log2G(in.g) + in.n * in.sp);
}

double NonSharedCost(const CostInputs& in, CostModelVariant variant) {
  if (variant == CostModelVariant::kSimple) {
    return static_cast<double>(in.k) * in.b * in.n;
  }
  return static_cast<double>(in.k) * in.b * (Log2G(in.g) + in.n);
}

double SharingBenefit(const CostInputs& in, CostModelVariant variant) {
  return NonSharedCost(in, variant) - SharedCost(in, variant);
}

bool MarginalShareWins(double sc_q, const CostInputs& in,
                       CostModelVariant variant) {
  if (variant == CostModelVariant::kSimple) {
    return sc_q * in.g * in.t <= in.b * in.n;
  }
  return sc_q * in.g * in.p <= in.b * (Log2G(in.g) + in.n);
}

}  // namespace hamlet
