// Online plan re-optimization: the paper's dynamic-vs-static experiment
// (§6, Fig. 12) promoted into the runtime.
//
// The engines' per-burst DynamicBenefitPolicy already adapts *within* the
// compiled sharing plan; this layer adapts the PLAN itself while a session
// runs. A BurstStatsCollector accumulates the live statistics the runtime
// already gathers — per-type arrival counts plus the engine's HamletStats
// counters (bursts, graphlet sizes, snapshot churn) — and every
// RunConfig::reoptimize_every_panes panes the OnlineReoptimizer:
//
//   1. rebuilds the cost-model inputs (Table 2's b, n, g, p, t, sc_q) for
//      each potential share group from the observed deltas,
//   2. re-runs the existing PrunedPlanSearch (Theorems 4.1/4.2, O(m)), and
//   3. compares the observed cost of the RUNNING sharing plan (PlanCost)
//      against the best plan's cost: when the relative drift exceeds
//      RunConfig::reoptimize_threshold, it emits SharingOverrides that the
//      session applies as a pane-aligned hot swap (a fresh plan epoch —
//      merged template, PredicateProgram and cohort masks rebuilt — with
//      open windows of the old plan draining to completion).
//
// Sharing decisions never change emission VALUES (the paper's correctness
// invariant; CTest-enforced by the equivalence suites), so a swap can only
// change throughput, never results. Every check is logged as a
// ReoptDecision for dashboards and the fig12 online bench.
#ifndef HAMLET_OPTIMIZER_ONLINE_OPTIMIZER_H_
#define HAMLET_OPTIMIZER_ONLINE_OPTIMIZER_H_

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/common/query_set.h"
#include "src/hamlet/hamlet_engine.h"
#include "src/optimizer/plan_search.h"
#include "src/plan/workload_plan.h"

namespace hamlet {

/// Accumulates per-type arrival counts between plan checks — the piece of
/// Table 2's inputs (n: events per window, per relevant type) that
/// HamletStats does not carry. Fed once per accepted event by the session
/// front (NOT per epoch, so churn transitions never double-count).
class BurstStatsCollector {
 public:
  /// Resets all counts and sizes the per-type table for `num_types`.
  void Reset(int num_types);

  void CountEvent(TypeId type) {
    if (type >= 0 && type < static_cast<TypeId>(type_events_.size())) {
      ++type_events_[static_cast<size_t>(type)];
    }
    ++total_events_;
  }

  int64_t type_events(TypeId type) const {
    return type >= 0 && type < static_cast<TypeId>(type_events_.size())
               ? type_events_[static_cast<size_t>(type)]
               : 0;
  }
  int64_t total_events() const { return total_events_; }
  const std::vector<int64_t>& per_type() const { return type_events_; }

 private:
  std::vector<int64_t> type_events_;
  int64_t total_events_ = 0;
};

struct OnlineReoptimizerOptions {
  /// Relative cost drift that triggers a swap: swap when
  /// (observed - best) / observed > threshold. Must be > 0.
  double threshold = 0.2;
  CostModelVariant variant = CostModelVariant::kRefined;
  /// Evidence floor: checks observing fewer engine events than this since
  /// the previous check are skipped (not logged) — early panes would
  /// otherwise thrash the plan on noise.
  int64_t min_events = 256;
};

/// One logged re-optimization check (see examples/live_dashboard).
struct ReoptDecision {
  /// Pane boundary the check ran at (event time).
  Timestamp boundary = 0;
  /// Total cost of the running sharing plan under the live statistics.
  double observed_cost = 0.0;
  /// Total cost of the best plan PrunedPlanSearch found.
  double best_cost = 0.0;
  bool swapped = false;
  /// Human-readable per-group summary ("type 2: {0,1,2} -> {0,1}").
  std::string detail;
};

/// See file comment. Single-threaded; owned by Session (plain sessions) or
/// by the ShardedSession front (per-shard self-reoptimization is disabled —
/// the plan must stay identical across shards, so only the front decides).
class OnlineReoptimizer {
 public:
  /// Binds to a (re)compiled plan. `potential_groups` are the UNRESTRICTED
  /// share groups AnalyzeWorkload built for this query set — the search
  /// space, which must survive restriction so a split group can re-merge
  /// when the statistics swing back. `applied` are the overrides currently
  /// in force (empty right after churn). Resets the statistics baselines.
  void Bind(const WorkloadPlan& plan,
            std::span<const ShareGroup> potential_groups,
            std::span<const SharingOverride> applied,
            const OnlineReoptimizerOptions& opts);

  struct Outcome {
    bool swap = false;
    /// One override per potential group when swapping (including unchanged
    /// groups, so the rebuilt plan reflects the full current decision).
    std::vector<SharingOverride> overrides;
  };

  /// Runs one check at pane boundary `boundary` given the session's
  /// cumulative engine statistics and arrival counts (the reoptimizer
  /// differences them against the previous check internally).
  Outcome Check(Timestamp boundary, const HamletStats& cumulative,
                const BurstStatsCollector& collector);

  const std::vector<ReoptDecision>& log() const { return log_; }
  /// Safe to read from any thread: ShardedSession::MetricsSnapshot reports
  /// these counters from monitor threads while the front is mid-check.
  int64_t checks() const { return checks_.load(std::memory_order_relaxed); }
  int64_t swaps() const { return swaps_.load(std::memory_order_relaxed); }
  bool bound() const { return plan_ != nullptr; }

 private:
  struct GroupState {
    TypeId type = Schema::kInvalidId;
    QuerySet original_members;
    std::vector<int> member_ids;  ///< ascending exec ids; local index order
    QuerySet current_shared;      ///< exec-id space
    double max_within = 1.0;
    int p = 1;
    int t = 1;
    /// Members that introduce snapshots (predicates/negations) — the ones
    /// Theorem 4.1 cannot keep shared for free.
    std::vector<bool> snapshotty;
    /// Event types any member's pattern mentions (indexed by TypeId).
    std::vector<bool> relevant_types;
  };

  const WorkloadPlan* plan_ = nullptr;
  OnlineReoptimizerOptions opts_;
  std::vector<GroupState> groups_;
  /// Baselines from the previous check (deltas drive the inputs).
  HamletStats base_stats_;
  std::vector<int64_t> base_type_events_;
  bool have_baseline_ = false;
  Timestamp last_boundary_ = 0;
  std::vector<ReoptDecision> log_;
  /// Plain int64_t raced with MetricsSnapshot's cross-thread reads before
  /// the thread-safety pass; relaxed atomics — the counts are monotonic
  /// telemetry, no ordering is implied.
  std::atomic<int64_t> checks_{0};
  std::atomic<int64_t> swaps_{0};
};

}  // namespace hamlet

#endif  // HAMLET_OPTIMIZER_ONLINE_OPTIMIZER_H_
