// Choice of query set (paper §4.3, Figure 7).
//
// The search space of sharing plans for one Kleene sub-pattern contains one
// shared subset S (|S| >= 2 or empty) with all remaining queries processed
// separately — 12 plans for 4 queries as in Figure 7. ExhaustivePlanSearch
// scores every plan; PrunedPlanSearch applies the snapshot-driven
// (Theorem 4.1) and benefit-driven (Theorem 4.2) pruning principles and
// runs in O(m) for m snapshot-introducing queries. The optimality tests
// assert both return equally cheap plans.
#ifndef HAMLET_OPTIMIZER_PLAN_SEARCH_H_
#define HAMLET_OPTIMIZER_PLAN_SEARCH_H_

#include <vector>

#include "src/common/query_set.h"
#include "src/optimizer/cost_model.h"

namespace hamlet {

/// One scored plan: the shared subset (empty = fully non-shared) and its
/// total execution cost Shared(S) + sum of NonShared per solo query.
struct SharingPlan {
  QuerySet shared;
  double cost = 0.0;
};

/// Per-query snapshot attributions sc_q; shared-set cost uses
/// sc(S) = 1 + sum_{q in S} sc_q.
struct PlanSearchInputs {
  CostInputs base;            ///< k ignored; derived from subsets
  std::vector<double> sc_q;   ///< per query, indexed 0..k-1
  CostModelVariant variant = CostModelVariant::kRefined;
};

/// Cost of the plan sharing exactly `shared` (other queries solo).
double PlanCost(const PlanSearchInputs& in, const QuerySet& shared);

/// Scores all subsets (exponential; k <= 16 enforced).
SharingPlan ExhaustivePlanSearch(const PlanSearchInputs& in, int k);

/// Theorem 4.1/4.2-pruned search: O(m).
SharingPlan PrunedPlanSearch(const PlanSearchInputs& in, int k);

}  // namespace hamlet

#endif  // HAMLET_OPTIMIZER_PLAN_SEARCH_H_
