#include "src/optimizer/online_optimizer.h"

#include <algorithm>
#include <cmath>

namespace hamlet {

namespace {

/// Counter-wise cumulative-minus-baseline (both sides only ever grow).
HamletStats StatsDelta(const HamletStats& cum, const HamletStats& base) {
  HamletStats d;
  d.events = cum.events - base.events;
  d.bursts_total = cum.bursts_total - base.bursts_total;
  d.bursts_shared = cum.bursts_shared - base.bursts_shared;
  d.graphlets_opened = cum.graphlets_opened - base.graphlets_opened;
  d.graphlets_shared = cum.graphlets_shared - base.graphlets_shared;
  d.snapshots_created = cum.snapshots_created - base.snapshots_created;
  d.event_snapshots = cum.event_snapshots - base.event_snapshots;
  d.splits = cum.splits - base.splits;
  d.merges = cum.merges - base.merges;
  d.ops = cum.ops - base.ops;
  return d;
}

}  // namespace

void BurstStatsCollector::Reset(int num_types) {
  type_events_.assign(num_types > 0 ? static_cast<size_t>(num_types) : 0, 0);
  total_events_ = 0;
}

void OnlineReoptimizer::Bind(const WorkloadPlan& plan,
                             std::span<const ShareGroup> potential_groups,
                             std::span<const SharingOverride> applied,
                             const OnlineReoptimizerOptions& opts) {
  plan_ = &plan;
  opts_ = opts;
  groups_.clear();
  const int num_types = plan.workload->schema()->num_types();
  for (const ShareGroup& g : potential_groups) {
    GroupState gs;
    gs.type = g.type;
    gs.original_members = g.members;
    g.members.ForEach([&](QueryId q) { gs.member_ids.push_back(q); });
    gs.current_shared = g.members;
    for (const SharingOverride& ov : applied) {
      if (ov.type == g.type && ov.original_members == g.members) {
        gs.current_shared = ov.shared.Intersect(g.members);
        if (gs.current_shared.Count() < 2) gs.current_shared = QuerySet();
      }
    }
    gs.relevant_types.assign(static_cast<size_t>(num_types), false);
    for (int q : gs.member_ids) {
      const ExecQuery& eq = plan.exec_queries[static_cast<size_t>(q)];
      gs.max_within =
          std::max(gs.max_within, static_cast<double>(eq.window.within));
      // Mirror the engine's structural inputs (HamletEngine::OpenGraphlets):
      // p = predecessor positions of the Kleene type, t = pattern length.
      const int pos = eq.tmpl.pattern.PositionOf(g.type);
      if (pos >= 0) {
        gs.p = std::max(
            gs.p, static_cast<int>(
                      eq.tmpl.pred_positions[static_cast<size_t>(pos)].size()));
      }
      gs.t = std::max(gs.t, eq.tmpl.pattern.num_positions());
      gs.snapshotty.push_back(!eq.event_predicates.empty() ||
                              eq.has_negations() || eq.has_edge_predicates());
      for (TypeId ty : eq.tmpl.pattern.AllTypes()) {
        if (ty >= 0 && ty < num_types)
          gs.relevant_types[static_cast<size_t>(ty)] = true;
      }
    }
    groups_.push_back(std::move(gs));
  }
  base_stats_ = HamletStats{};
  base_type_events_.assign(static_cast<size_t>(num_types), 0);
  have_baseline_ = false;
  last_boundary_ = 0;
}

OnlineReoptimizer::Outcome OnlineReoptimizer::Check(
    Timestamp boundary, const HamletStats& cumulative,
    const BurstStatsCollector& collector) {
  Outcome out;
  if (plan_ == nullptr || groups_.empty()) return out;
  auto seed = [&] {
    base_stats_ = cumulative;
    base_type_events_ = collector.per_type();
    have_baseline_ = true;
    last_boundary_ = boundary;
  };
  // The first check after a (re)bind only seeds the baselines: the deltas
  // before it span an unknown mixture of plans/epochs.
  if (!have_baseline_) {
    seed();
    return out;
  }
  const HamletStats delta = StatsDelta(cumulative, base_stats_);
  const Timestamp span = boundary - last_boundary_;
  // Evidence floor: keep accumulating (baseline untouched) until the
  // interval carries enough engine events to estimate the cost factors.
  if (delta.events < opts_.min_events || span <= 0) return out;
  checks_.fetch_add(1, std::memory_order_relaxed);

  const double b =
      static_cast<double>(delta.events) /
      static_cast<double>(std::max<int64_t>(1, delta.bursts_total));
  const double g =
      static_cast<double>(delta.events) /
      static_cast<double>(std::max<int64_t>(1, delta.graphlets_opened));
  const double sp = 1.0 + static_cast<double>(delta.event_snapshots) /
                              static_cast<double>(
                                  std::max<int64_t>(1, delta.events));
  const double sc_burst =
      static_cast<double>(delta.snapshots_created) /
      static_cast<double>(std::max<int64_t>(1, delta.bursts_total));

  double total_observed = 0.0;
  double total_best = 0.0;
  bool any_change = false;
  std::string detail;
  std::vector<SharingOverride> proposal;
  std::vector<QuerySet> proposal_local;
  for (GroupState& gs : groups_) {
    const int k = static_cast<int>(gs.member_ids.size());
    // n: events per window over the group's relevant types, scaled from the
    // observed interval to the widest member window.
    int64_t relevant = 0;
    const std::vector<int64_t>& now = collector.per_type();
    for (size_t t = 0; t < now.size() && t < gs.relevant_types.size(); ++t) {
      if (gs.relevant_types[t]) {
        relevant += now[t] - (t < base_type_events_.size()
                                  ? base_type_events_[t]
                                  : 0);
      }
    }
    const double n = std::max(
        1.0, static_cast<double>(relevant) * gs.max_within /
                 static_cast<double>(span));

    PlanSearchInputs in;
    in.base.b = std::max(1.0, b);
    in.base.n = n;
    in.base.g = std::max(1.0, g);
    in.base.p = gs.p;
    in.base.t = gs.t;
    in.base.sp = std::max(1.0, sp);
    in.variant = opts_.variant;
    int snapshotters = 0;
    for (bool s : gs.snapshotty) snapshotters += s ? 1 : 0;
    in.sc_q.assign(static_cast<size_t>(k), 0.0);
    for (int i = 0; i < k; ++i) {
      if (gs.snapshotty[static_cast<size_t>(i)]) {
        in.sc_q[static_cast<size_t>(i)] =
            sc_burst / static_cast<double>(std::max(1, snapshotters));
      }
    }

    const SharingPlan best = PrunedPlanSearch(in, k);
    QuerySet current_local;
    for (int i = 0; i < k; ++i) {
      if (gs.current_shared.Contains(gs.member_ids[static_cast<size_t>(i)]))
        current_local.Insert(i);
    }
    if (current_local.Count() < 2) current_local = QuerySet();
    const double observed = PlanCost(in, current_local);
    total_observed += observed;
    total_best += best.cost;

    QuerySet best_exec;
    best.shared.ForEach([&](QueryId i) {
      best_exec.Insert(gs.member_ids[static_cast<size_t>(i)]);
    });
    SharingOverride ov;
    ov.type = gs.type;
    ov.original_members = gs.original_members;
    ov.shared = best_exec;
    proposal.push_back(ov);
    proposal_local.push_back(best.shared);
    if (best.shared != current_local) {
      any_change = true;
      if (!detail.empty()) detail += "; ";
      detail += "type " + std::to_string(gs.type) + ": " +
                gs.current_shared.ToString() + " -> " + best_exec.ToString();
    }
  }

  const bool drift =
      total_observed - total_best >
      opts_.threshold * std::max(total_observed, 1e-12);
  ReoptDecision decision;
  decision.boundary = boundary;
  decision.observed_cost = total_observed;
  decision.best_cost = total_best;
  decision.swapped = any_change && drift;
  decision.detail = decision.swapped
                        ? detail
                        : (any_change ? "drift below threshold: " + detail
                                      : "plan optimal under observed stats");
  log_.push_back(std::move(decision));

  if (any_change && drift) {
    swaps_.fetch_add(1, std::memory_order_relaxed);
    out.swap = true;
    out.overrides = std::move(proposal);
    for (size_t gi = 0; gi < groups_.size(); ++gi) {
      QuerySet exec_shared;
      proposal_local[gi].ForEach([&](QueryId i) {
        exec_shared.Insert(groups_[gi].member_ids[static_cast<size_t>(i)]);
      });
      groups_[gi].current_shared = exec_shared;
    }
  }
  seed();
  return out;
}

}  // namespace hamlet
