// The dynamic sharing benefit model (paper §4.1).
//
// The paper presents two variants of the per-burst cost model:
//  * the simple form used in the worked examples Eq. 9-11 (Definition 11):
//      Shared    = b*n*sp + sc*k*g*t
//      NonShared = k*b*n
//  * the refined form with lookup costs (Definition 12 / Eq. 8):
//      Shared    = sc*k*g*p + b*(log2(g) + n*sp)
//      NonShared = k*b*(log2(g) + n)
// Benefit = NonShared - Shared; share when positive.
//
// Notation (Table 2): b events per burst, n events per window, g events per
// graphlet, k queries, p predecessor types per type per query, t types per
// query, sc snapshots created per burst, sp snapshots propagated.
#ifndef HAMLET_OPTIMIZER_COST_MODEL_H_
#define HAMLET_OPTIMIZER_COST_MODEL_H_

namespace hamlet {

enum class CostModelVariant {
  kSimple,   ///< Definition 11 (worked examples Eq. 9-11)
  kRefined,  ///< Definition 12 / Eq. 8
};

/// Cost-model inputs for one burst decision.
struct CostInputs {
  int k = 1;
  double b = 1.0;
  double n = 1.0;
  double g = 1.0;
  int p = 1;
  int t = 1;
  double sc = 1.0;
  double sp = 1.0;
};

/// Cost of processing the burst in one shared graphlet.
double SharedCost(const CostInputs& in, CostModelVariant variant);

/// Cost of processing the burst in k per-query graphlets.
double NonSharedCost(const CostInputs& in, CostModelVariant variant);

/// NonShared - Shared (Definition 12: share when > 0).
double SharingBenefit(const CostInputs& in, CostModelVariant variant);

/// Theorem 4.1/4.2 marginal test: keeping query q in the shared set trades
/// the additive factor sc_q*g*p (its snapshot maintenance) against
/// b*(log2(g)+n) (its re-computation). Returns true when sharing q wins.
bool MarginalShareWins(double sc_q, const CostInputs& in,
                       CostModelVariant variant);

}  // namespace hamlet

#endif  // HAMLET_OPTIMIZER_COST_MODEL_H_
