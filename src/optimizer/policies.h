// The sharing policies (paper §4.2/§4.3 and the static baseline of §6.2).
//
//  * NeverSharePolicy  — non-shared execution: every query in its own
//                        graphlets (equivalent to GRETA per query).
//  * AlwaysSharePolicy — the *static* optimizer of Figures 12/13: decides at
//                        compile time to share everything, never revisits.
//  * DynamicBenefitPolicy — the HAMLET optimizer: per burst, applies the
//                        snapshot-driven pruning (Theorem 4.1: queries that
//                        introduce no snapshots always share), the
//                        benefit-driven pruning (Theorem 4.2: marginal test
//                        per snapshot-introducing query), and a final Eq. 8
//                        benefit check of the chosen plan.
#ifndef HAMLET_OPTIMIZER_POLICIES_H_
#define HAMLET_OPTIMIZER_POLICIES_H_

#include <cstdint>

#include "src/hamlet/sharing_policy.h"
#include "src/optimizer/cost_model.h"

namespace hamlet {

class NeverSharePolicy : public SharingPolicy {
 public:
  SharingDecision Decide(const std::vector<int>& members,
                         const BurstStats& stats) override;
  const char* name() const override { return "never_share"; }
};

class AlwaysSharePolicy : public SharingPolicy {
 public:
  SharingDecision Decide(const std::vector<int>& members,
                         const BurstStats& stats) override;
  const char* name() const override { return "always_share(static)"; }
};

class DynamicBenefitPolicy : public SharingPolicy {
 public:
  explicit DynamicBenefitPolicy(
      CostModelVariant variant = CostModelVariant::kRefined)
      : variant_(variant) {}

  SharingDecision Decide(const std::vector<int>& members,
                         const BurstStats& stats) override;
  const char* name() const override { return "dynamic_benefit"; }

  /// Number of decisions taken (the paper reports decision overhead).
  int64_t decisions() const { return decisions_; }

 private:
  CostModelVariant variant_;
  int64_t decisions_ = 0;
};

}  // namespace hamlet

#endif  // HAMLET_OPTIMIZER_POLICIES_H_
