#include "src/optimizer/plan_search.h"

#include "src/common/check.h"

namespace hamlet {

double PlanCost(const PlanSearchInputs& in, const QuerySet& shared) {
  // Separable form of the Eq. 8 / Definition 11 cost, mirroring the
  // Theorem 4.1/4.2 proofs where moving one query between the shared and
  // solo sides changes the cost by exactly one additive factor per side
  // (sc_q*g*p when shared vs b*(log2(g)+n) when solo). The shared side pays
  // one base propagation term b*(log2(g)+n*sp) plus the graphlet-level
  // snapshot (sc = 1), and each member adds its own snapshot maintenance.
  const int k_total = static_cast<int>(in.sc_q.size());
  const int ks = shared.Count();
  const int kn = k_total - ks;
  double cost = 0.0;
  if (ks > 0) {
    CostInputs base = in.base;
    base.k = 1;
    base.sc = 1.0;
    cost += SharedCost(base, in.variant);
    const double per_snapshot = in.variant == CostModelVariant::kSimple
                                    ? in.base.g * in.base.t
                                    : in.base.g * in.base.p;
    shared.ForEach([&](QueryId q) {
      cost += in.sc_q[static_cast<size_t>(q)] * per_snapshot;
    });
  }
  if (kn > 0) {
    CostInputs n = in.base;
    n.k = kn;
    cost += NonSharedCost(n, in.variant);
  }
  return cost;
}

SharingPlan ExhaustivePlanSearch(const PlanSearchInputs& in, int k) {
  HAMLET_CHECK(k <= 16);
  SharingPlan best;
  best.cost = PlanCost(in, QuerySet());
  for (uint32_t mask = 0; mask < (1u << k); ++mask) {
    if (__builtin_popcount(mask) == 1) continue;  // a singleton shares nothing
    QuerySet shared;
    for (int q = 0; q < k; ++q) {
      if ((mask >> q) & 1) shared.Insert(q);
    }
    double cost = PlanCost(in, shared);
    if (cost < best.cost) {
      best.cost = cost;
      best.shared = shared;
    }
  }
  return best;
}

SharingPlan PrunedPlanSearch(const PlanSearchInputs& in, int k) {
  // Snapshot-driven pruning (Theorem 4.1): queries with sc_q == 0 are always
  // shared. Benefit-driven pruning (Theorem 4.2): each snapshot-introducing
  // query is shared iff its marginal share cost beats its solo cost. The
  // cost is separable per query, so the greedy selection is optimal; when
  // fewer than two queries pass, the only remaining candidates pad the
  // shared set with the cheapest failing queries (a shared set needs >= 2
  // members). O(m) plus the min-two scan.
  QuerySet shared;
  std::vector<int> failing;
  for (int q = 0; q < k; ++q) {
    const double sc_q = in.sc_q[static_cast<size_t>(q)];
    if (sc_q <= 0.0 || MarginalShareWins(sc_q, in.base, in.variant)) {
      shared.Insert(q);
    } else {
      failing.push_back(q);
    }
  }
  auto cheapest = [&](const QuerySet& exclude) {
    int best = -1;
    for (int q : failing) {
      if (exclude.Contains(q)) continue;
      if (best < 0 ||
          in.sc_q[static_cast<size_t>(q)] < in.sc_q[static_cast<size_t>(best)])
        best = q;
    }
    return best;
  };
  while (shared.Count() > 0 && shared.Count() < 2) {
    int q = cheapest(shared);
    if (q < 0) break;
    shared.Insert(q);
  }
  if (shared.Count() < 2 && static_cast<int>(failing.size()) >= 2) {
    int first = cheapest(QuerySet());
    shared.Insert(first);
    int second = cheapest(shared);
    shared.Insert(second);
  }
  SharingPlan plan;
  plan.shared = shared.Count() >= 2 ? shared : QuerySet();
  plan.cost = PlanCost(in, plan.shared);
  double solo_cost = PlanCost(in, QuerySet());
  if (solo_cost < plan.cost) {
    plan.shared = QuerySet();
    plan.cost = solo_cost;
  }
  return plan;
}

}  // namespace hamlet
