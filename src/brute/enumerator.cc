#include "src/brute/enumerator.h"

#include <algorithm>

namespace hamlet {
namespace {

// DFS enumeration state over one window of events.
class Enumerator {
 public:
  Enumerator(const ExecQuery& eq, const EventVector& events,
             const BruteOptions& options)
      : eq_(eq), tmpl_(eq.tmpl), events_(events), options_(options) {
    profile_ = AggProfile::For(eq.aggregate);
    // Force-fold every field so mismatches in any payload slot surface in
    // equivalence tests.
    profile_.need_sum |= profile_.target_attr != Schema::kInvalidId;
    profile_.need_count_e |= profile_.target_type != Schema::kInvalidId;
    matched_.resize(events.size());
    for (size_t i = 0; i < events.size(); ++i) {
      matched_[i] = PassesEventPredicates(eq.event_predicates, events[i]);
    }
  }

  Status Run(BruteResult* out) {
    const int m = tmpl_.pattern.num_positions();
    for (int i = 0; i < static_cast<int>(events_.size()); ++i) {
      const Event& e = events_[static_cast<size_t>(i)];
      if (e.type != tmpl_.pattern.elements[0].type) continue;
      if (!matched_[static_cast<size_t>(i)]) continue;
      if (LeadingNegationBlocks(i)) continue;
      trend_.push_back(i);
      Status s = Extend(i, /*position=*/0, m);
      trend_.pop_back();
      if (!s.ok()) return s;
    }
    out->agg = final_;
    out->value = ExtractResult(final_, eq_.aggregate.kind);
    out->num_trends = num_trends_;
    return Status::Ok();
  }

 private:
  bool LeadingNegationBlocks(int first_index) const {
    if (tmpl_.leading_negations.empty()) return false;
    for (int j = 0; j < first_index; ++j) {
      const Event& n = events_[static_cast<size_t>(j)];
      for (TypeId t : tmpl_.leading_negations) {
        if (n.type == t && matched_[static_cast<size_t>(j)]) return true;
      }
    }
    return false;
  }

  bool TrailingNegationBlocks(int last_index) const {
    if (tmpl_.trailing_negations.empty()) return false;
    for (int j = last_index + 1; j < static_cast<int>(events_.size()); ++j) {
      const Event& n = events_[static_cast<size_t>(j)];
      for (TypeId t : tmpl_.trailing_negations) {
        if (n.type == t && matched_[static_cast<size_t>(j)]) return true;
      }
    }
    return false;
  }

  // Is there a blocked negated event strictly between indices a and b for the
  // boundary entering `position`?
  bool BoundaryNegationBlocks(int a, int b, int position) const {
    const auto& negs =
        tmpl_.boundary_negations[static_cast<size_t>(position)];
    if (negs.empty()) return false;
    for (int j = a + 1; j < b; ++j) {
      const Event& n = events_[static_cast<size_t>(j)];
      if (!matched_[static_cast<size_t>(j)]) continue;
      for (TypeId t : negs) {
        if (n.type == t) return true;
      }
    }
    return false;
  }

  Status RecordTrend(int last_index) {
    if (TrailingNegationBlocks(last_index)) return Status::Ok();
    if (++num_trends_ > options_.max_trends)
      return Status::ResourceExhausted("brute-force trend budget exceeded");
    AggValue v;
    v.count = 1.0;
    v.min = std::numeric_limits<double>::infinity();
    v.max = -std::numeric_limits<double>::infinity();
    for (int idx : trend_) {
      const Event& e = events_[static_cast<size_t>(idx)];
      if (e.type == profile_.target_type) {
        v.count_e += 1.0;
        const double val = profile_.target_attr == Schema::kInvalidId
                               ? 0.0
                               : e.attr(profile_.target_attr);
        v.sum += val;
        if (val < v.min) v.min = val;
        if (val > v.max) v.max = val;
      }
    }
    final_.Accumulate(v);
    if (options_.on_trend) options_.on_trend(trend_);
    return Status::Ok();
  }

  // `last` is the index of the trend's current last event, matched at
  // `position`. Records completion and tries every extension.
  Status Extend(int last, int position, int m) {
    if (position == m - 1) {
      Status s = RecordTrend(last);
      if (!s.ok()) return s;
    }
    // Candidate next positions, mirroring TemplateInfo::pred_positions in
    // the forward direction.
    for (int next_pos = 0; next_pos < m; ++next_pos) {
      bool reachable = false;
      for (int pred : tmpl_.pred_positions[static_cast<size_t>(next_pos)]) {
        if (pred == position) reachable = true;
      }
      if (!reachable) continue;
      TypeId want = tmpl_.pattern.elements[static_cast<size_t>(next_pos)].type;
      for (int j = last + 1; j < static_cast<int>(events_.size()); ++j) {
        const Event& e = events_[static_cast<size_t>(j)];
        if (e.type != want) continue;
        if (!matched_[static_cast<size_t>(j)]) continue;
        if (!PassesEdgePredicates(eq_.edge_predicates,
                                  events_[static_cast<size_t>(last)], e))
          continue;
        // Chain edges respect boundary negation; self-loops and the group
        // loop are never negation-guarded (checked at compile time).
        if (next_pos == position + 1 &&
            BoundaryNegationBlocks(last, j, next_pos))
          continue;
        trend_.push_back(j);
        Status s = Extend(j, next_pos, m);
        trend_.pop_back();
        if (!s.ok()) return s;
      }
    }
    return Status::Ok();
  }

  const ExecQuery& eq_;
  const TemplateInfo& tmpl_;
  const EventVector& events_;
  const BruteOptions& options_;
  AggProfile profile_;
  std::vector<bool> matched_;
  std::vector<int> trend_;
  AggValue final_;
  int64_t num_trends_ = 0;
};

}  // namespace

Result<BruteResult> BruteForceEval(const ExecQuery& eq,
                                   const EventVector& events,
                                   const BruteOptions& options) {
  BruteResult out;
  Enumerator en(eq, events, options);
  Status s = en.Run(&out);
  if (!s.ok()) return s;
  return out;
}

Result<double> BruteForceQueryValue(const WorkloadPlan& plan, QueryId query,
                                    const EventVector& events,
                                    const BruteOptions& options) {
  const CompositionRule& rule =
      plan.compositions[static_cast<size_t>(query)];
  std::vector<BruteResult> branch_results;
  for (int exec_id : rule.exec_ids) {
    Result<BruteResult> r = BruteForceEval(
        plan.exec_queries[static_cast<size_t>(exec_id)], events, options);
    if (!r.ok()) return r.status();
    branch_results.push_back(r.value());
  }
  switch (rule.kind) {
    case CompositionKind::kSingle:
      return branch_results[0].value;
    case CompositionKind::kOr: {
      // COUNT(P1 v P2) = C1' + C2' + C12 (paper §5). Identical branches:
      // C12 = C1; disjoint type sets: C12 = 0.
      double c1 = branch_results[0].value;
      double c2 = branch_results[1].value;
      if (rule.branches_identical) return c1;
      return c1 + c2;
    }
    case CompositionKind::kAnd: {
      double c1 = branch_results[0].value;
      double c2 = branch_results[1].value;
      if (rule.branches_identical) {
        // All trends are shared: C(C12, 2) unordered distinct pairs.
        return c1 * (c1 - 1.0) / 2.0;
      }
      return c1 * c2;  // disjoint branches: C12 = 0
    }
  }
  return Status::Internal("unreachable composition kind");
}

}  // namespace hamlet
