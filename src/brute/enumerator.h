// Reference brute-force trend enumerator: the correctness ground truth.
//
// Explicitly enumerates every trend (paper Definition 3) of a linear pattern
// over a finite event sequence under skip-till-any-match semantics, applying
// predicates and negations, and folds the aggregate per trend. Exponential by
// design (that is the point of the paper); a trend budget guards tests.
#ifndef HAMLET_BRUTE_ENUMERATOR_H_
#define HAMLET_BRUTE_ENUMERATOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/status.h"
#include "src/plan/workload_plan.h"
#include "src/query/agg_value.h"

namespace hamlet {

/// Result of a brute-force evaluation of one exec query.
struct BruteResult {
  /// Folded end-of-trend payload (count = number of trends).
  AggValue agg;
  /// Final value per the query's aggregate kind.
  double value = 0.0;
  /// Trends visited (== agg.count, kept as exact integer).
  int64_t num_trends = 0;
};

/// Options for enumeration.
struct BruteOptions {
  /// Abort with kResourceExhausted beyond this many trends.
  int64_t max_trends = 5'000'000;
  /// Optional callback invoked per complete trend with the event indices.
  std::function<void(const std::vector<int>&)> on_trend;
};

/// Enumerates all trends of `eq` over `events` (one window, one group;
/// events must be strictly increasing in time).
Result<BruteResult> BruteForceEval(const ExecQuery& eq,
                                   const EventVector& events,
                                   const BruteOptions& options = {});

/// Evaluates a full source query (composing OR/AND branches per §5) over one
/// window of events.
Result<double> BruteForceQueryValue(const WorkloadPlan& plan, QueryId query,
                                    const EventVector& events,
                                    const BruteOptions& options = {});

}  // namespace hamlet

#endif  // HAMLET_BRUTE_ENUMERATOR_H_
