// Schema: event-type and attribute name registries for a dataset.
//
// Queries reference types and attributes by name; engines use dense ids.
#ifndef HAMLET_STREAM_SCHEMA_H_
#define HAMLET_STREAM_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/stream/event.h"

namespace hamlet {

/// Immutable after construction-time registration. Type ids and attribute ids
/// are dense indices in registration order.
class Schema {
 public:
  Schema() = default;

  /// Registers an event type; returns its id. Re-registering a name returns
  /// the existing id.
  TypeId AddType(const std::string& name);

  /// Registers an attribute; returns its id. Attribute 0 is conventionally
  /// the dataset's group-by key.
  AttrId AddAttr(const std::string& name);

  /// Lookup by name; kInvalidId (-1) when absent.
  TypeId FindType(const std::string& name) const;
  AttrId FindAttr(const std::string& name) const;

  const std::string& TypeName(TypeId id) const;
  const std::string& AttrName(AttrId id) const;

  int num_types() const { return static_cast<int>(type_names_.size()); }
  int num_attrs() const { return static_cast<int>(attr_names_.size()); }

  static constexpr int kInvalidId = -1;

 private:
  std::vector<std::string> type_names_;
  std::vector<std::string> attr_names_;
  std::unordered_map<std::string, TypeId> type_ids_;
  std::unordered_map<std::string, AttrId> attr_ids_;
};

}  // namespace hamlet

#endif  // HAMLET_STREAM_SCHEMA_H_
