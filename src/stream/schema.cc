#include "src/stream/schema.h"

namespace hamlet {

TypeId Schema::AddType(const std::string& name) {
  auto it = type_ids_.find(name);
  if (it != type_ids_.end()) return it->second;
  TypeId id = static_cast<TypeId>(type_names_.size());
  type_names_.push_back(name);
  type_ids_[name] = id;
  return id;
}

AttrId Schema::AddAttr(const std::string& name) {
  auto it = attr_ids_.find(name);
  if (it != attr_ids_.end()) return it->second;
  AttrId id = static_cast<AttrId>(attr_names_.size());
  attr_names_.push_back(name);
  attr_ids_[name] = id;
  return id;
}

TypeId Schema::FindType(const std::string& name) const {
  auto it = type_ids_.find(name);
  return it == type_ids_.end() ? kInvalidId : it->second;
}

AttrId Schema::FindAttr(const std::string& name) const {
  auto it = attr_ids_.find(name);
  return it == attr_ids_.end() ? kInvalidId : it->second;
}

const std::string& Schema::TypeName(TypeId id) const {
  HAMLET_CHECK(id >= 0 && id < num_types());
  return type_names_[static_cast<size_t>(id)];
}

const std::string& Schema::AttrName(AttrId id) const {
  HAMLET_CHECK(id >= 0 && id < num_attrs());
  return attr_names_[static_cast<size_t>(id)];
}

}  // namespace hamlet
