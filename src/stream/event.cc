#include "src/stream/event.h"

namespace hamlet {

bool IsTimeOrdered(const EventVector& events) {
  for (size_t i = 1; i < events.size(); ++i) {
    if (events[i].time < events[i - 1].time) return false;
  }
  return true;
}

}  // namespace hamlet
