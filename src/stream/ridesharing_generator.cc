#include "src/stream/generators.h"

namespace hamlet {

namespace {
// First ten types carry ridesharing semantics (used by the example queries);
// the remaining ten model the long tail of a 20-type production stream.
const char* kRideTypes[] = {"Request", "Travel",  "Pickup", "Dropoff",
                            "Cancel",  "Accept",  "Pool",   "Surge",
                            "Idle",    "Move",    "TypeA",  "TypeB",
                            "TypeC",   "TypeD",   "TypeE",  "TypeF",
                            "TypeG",   "TypeH",   "TypeI",  "TypeJ"};
constexpr int kNumRideTypes = 20;
}  // namespace

RidesharingGenerator::RidesharingGenerator() {
  schema_.AddAttr("district");  // group-by key
  schema_.AddAttr("driver");
  schema_.AddAttr("rider");
  schema_.AddAttr("speed");
  schema_.AddAttr("duration");
  schema_.AddAttr("price");
  for (const char* t : kRideTypes) schema_.AddType(t);
}

EventVector RidesharingGenerator::Generate(const GeneratorConfig& config) {
  Rng rng(config.seed);
  const int64_t total = static_cast<int64_t>(config.events_per_minute) *
                        config.duration_minutes;
  std::vector<Timestamp> times = generator_internal::SpreadTimestamps(
      0, config.duration_minutes * kMillisPerMinute, static_cast<int>(total),
      rng);

  // Travel dominates (it is the shared Kleene sub-pattern T+ of the paper's
  // Figure 1 queries); lifecycle types arrive at moderate weight; tail types
  // are rare.
  std::vector<generator_internal::TypeWeight> weights;
  const double type_weights[kNumRideTypes] = {
      6, 30, 5, 5, 3, 4, 3, 1, 2, 2, 0.5, 0.5, 0.5, 0.5, 0.5,
      0.5, 0.5, 0.5, 0.5, 0.5};
  for (TypeId t = 0; t < kNumRideTypes; ++t) {
    weights.push_back({t, type_weights[t]});
  }
  generator_internal::BurstProcess process(std::move(weights),
                                           config.burstiness,
                                           config.max_burst);

  EventVector out;
  out.reserve(times.size());
  for (Timestamp t : times) {
    int g = static_cast<int>(rng.NextBelow(
        static_cast<uint64_t>(config.num_groups)));
    Event e(t, process.Next(g, rng));
    e.set_attr(0, g);
    e.set_attr(1, static_cast<double>(rng.NextInt(1, 20)));  // driver
    e.set_attr(2, static_cast<double>(rng.NextInt(1, 20)));  // rider
    e.set_attr(3, rng.NextDouble(1.0, 60.0));                // speed mph
    e.set_attr(4, rng.NextDouble(60.0, 1800.0));             // duration s
    e.set_attr(5, rng.NextDouble(2.0, 80.0));                // price $
    out.push_back(e);
  }
  return out;
}

}  // namespace hamlet
