#include "src/stream/generators.h"

namespace hamlet {

namespace {
// First ten types carry ridesharing semantics (used by the example queries);
// the remaining ten model the long tail of a 20-type production stream.
const char* kRideTypes[] = {"Request", "Travel",  "Pickup", "Dropoff",
                            "Cancel",  "Accept",  "Pool",   "Surge",
                            "Idle",    "Move",    "TypeA",  "TypeB",
                            "TypeC",   "TypeD",   "TypeE",  "TypeF",
                            "TypeG",   "TypeH",   "TypeI",  "TypeJ"};
constexpr int kNumRideTypes = 20;

// Travel dominates (it is the shared Kleene sub-pattern T+ of the paper's
// Figure 1 queries); lifecycle types arrive at moderate weight; tail types
// are rare.
std::vector<generator_internal::TypeWeight> RideWeights() {
  const double type_weights[kNumRideTypes] = {
      6, 30, 5, 5, 3, 4, 3, 1, 2, 2, 0.5, 0.5, 0.5, 0.5, 0.5,
      0.5, 0.5, 0.5, 0.5, 0.5};
  std::vector<generator_internal::TypeWeight> weights;
  for (TypeId t = 0; t < kNumRideTypes; ++t) {
    weights.push_back({t, type_weights[t]});
  }
  return weights;
}

class RidesharingCursor : public EventCursor {
 public:
  explicit RidesharingCursor(const GeneratorConfig& config)
      : rng_(config.seed),
        chunker_(config),
        num_groups_(config.num_groups),
        process_(RideWeights(), config.burstiness, config.max_burst) {}

  bool Next(Event* out) override {
    Timestamp t;
    if (!chunker_.Next(rng_, &t)) return false;
    int g = static_cast<int>(
        rng_.NextBelow(static_cast<uint64_t>(num_groups_)));
    Event e(t, process_.Next(g, rng_));
    e.set_attr(0, g);
    e.set_attr(1, static_cast<double>(rng_.NextInt(1, 20)));  // driver
    e.set_attr(2, static_cast<double>(rng_.NextInt(1, 20)));  // rider
    e.set_attr(3, rng_.NextDouble(1.0, 60.0));                // speed mph
    e.set_attr(4, rng_.NextDouble(60.0, 1800.0));             // duration s
    e.set_attr(5, rng_.NextDouble(2.0, 80.0));                // price $
    *out = e;
    return true;
  }

 private:
  Rng rng_;
  generator_internal::TimestampChunker chunker_;
  int num_groups_;
  generator_internal::BurstProcess process_;
};

}  // namespace

RidesharingGenerator::RidesharingGenerator() {
  schema_.AddAttr("district");  // group-by key
  schema_.AddAttr("driver");
  schema_.AddAttr("rider");
  schema_.AddAttr("speed");
  schema_.AddAttr("duration");
  schema_.AddAttr("price");
  for (const char* t : kRideTypes) schema_.AddType(t);
}

std::unique_ptr<EventCursor> RidesharingGenerator::Stream(
    const GeneratorConfig& config) {
  return std::make_unique<RidesharingCursor>(config);
}

}  // namespace hamlet
