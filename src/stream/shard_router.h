// Deterministic event -> shard routing, shared by the sharded runtime and
// the shard-aware stream sources.
//
// The paper's pre-processing (§3.1) partitions each component's stream by
// its group-by attribute because groups never interact. ShardRouter is that
// partition function made explicit: a copyable value object mapping an
// event's group-by key to one of N shards via a SplitMix64 mix (adjacent
// group keys must not land on adjacent shards, or workloads with few groups
// would pile onto a shard prefix). Optionally the hash is overlaid with
// skew-aware rebalancing (EnableRebalancing): new group keys whose hash
// shard is overloaded are diverted to the least-loaded shard — the fix for
// a hot group pinning one shard at 100% while its hash-neighbors idle.
// Assignments are sticky, so a group's whole stream still lands on exactly
// one shard and per-group window order is preserved.
//
// Exposing the route as a value lets work move off the ingest hot path:
//  * ShardedSession (src/runtime/sharded_session.h) routes internally with
//    the same object it returns from router(), and
//  * PartitionedBatchCursor / PartitionBatches below pre-partition a stream
//    into per-shard sub-batches *at generation time*, so the ingest thread
//    hands ready-made batches to the shard queues without hashing a single
//    event (ShardedSession::PushPrePartitioned).
#ifndef HAMLET_STREAM_SHARD_ROUTER_H_
#define HAMLET_STREAM_SHARD_ROUTER_H_

#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"
#include "src/stream/event.h"
#include "src/stream/generator.h"
#include "src/stream/schema.h"

namespace hamlet {

/// Event->shard map: hash(group-by key) % num_shards, optionally overlaid
/// with skew-aware rebalancing (EnableRebalancing). Copyable and cheap;
/// without rebalancing, identical inputs route identically on every
/// platform. Copies of a rebalancing router SHARE the rebalance state (it
/// sits behind a shared_ptr), so a PartitionedBatchCursor built from
/// ShardedSession::router() stays consistent with the session's own
/// routing. All routing calls (Route) must come from one thread at a time —
/// the single-producer ingest contract the sharded runtime already imposes.
class ShardRouter {
 public:
  /// Identity router: everything to shard 0.
  ShardRouter() = default;

  /// `partition_attr` is the group-by attribute shared by all exec queries
  /// (Schema::kInvalidId when the workload has no GROUPBY — every event
  /// then routes to shard 0). `num_shards` must be >= 1.
  ShardRouter(AttrId partition_attr, int num_shards)
      : partition_attr_(partition_attr), num_shards_(num_shards) {}

  /// The pure hash route, ignoring any rebalance overrides. Stateless.
  size_t ShardOf(const Event& event) const {
    if (num_shards_ == 1) return 0;
    return static_cast<size_t>(
        SplitMix64Mix(static_cast<uint64_t>(KeyOf(event))) %
        static_cast<uint64_t>(num_shards_));
  }

  /// The group-by key the route is derived from — public so the sharded
  /// runtime's steal controller can track per-key loads and record
  /// reassignments without duplicating the attribute extraction.
  int64_t GroupKeyOf(const Event& event) const { return KeyOf(event); }

  /// The pure hash route of a bare key (ShardOf without an Event).
  size_t ShardOfKey(int64_t key) const {
    if (num_shards_ == 1) return 0;
    return static_cast<size_t>(SplitMix64Mix(static_cast<uint64_t>(key)) %
                               static_cast<uint64_t>(num_shards_));
  }

  /// The shard a bare key is (or would be) routed to — AssignedShard
  /// without an Event.
  size_t AssignedShardOfKey(int64_t key) const {
    if (state_ != nullptr) {
      auto it = state_->assignment.find(key);
      if (it != state_->assignment.end()) return it->second.shard;
    }
    return ShardOfKey(key);
  }

  /// Turns on sticky key->shard assignment tracking WITHOUT skew-aware
  /// placement of new keys: new keys take their hash shard, but Reassign
  /// may later move them. The work-stealing front needs the assignment
  /// map even when shard_rebalance_threshold is 0; with rebalancing
  /// already enabled this is a no-op. Call before routing.
  void EnableReassignment();

  /// Moves an EXISTING key's sticky assignment to `shard` — the
  /// work-stealing migration primitive. Unlike Route's first-sight
  /// placement this deliberately changes where an established group lands;
  /// the caller (ShardedSession's steal protocol) owns the fence/adopt
  /// hand-off that keeps per-group window order intact across the move.
  /// Requires reassignment/rebalancing state (CHECK) and binds the key if
  /// it was somehow unseen. `last_seen` refreshes the DrainStale clock.
  void Reassign(int64_t key, size_t shard, Timestamp last_seen);

  /// Turns on skew-aware routing: a group key seen for the FIRST time whose
  /// hash shard leads the least-loaded shard by more than `threshold_events`
  /// staged events (over a sliding window of recent routes) is assigned to
  /// the least-loaded shard instead. Keys already seen never move — a
  /// group's whole stream stays on one shard, so per-group window order is
  /// untouched; only where NEW groups land adapts to the observed skew.
  /// threshold_events <= 0 leaves the router pure. Call before routing.
  void EnableRebalancing(int64_t threshold_events);

  bool rebalancing() const { return state_ != nullptr; }

  /// The stateful route: returns the key's assigned shard, deciding the
  /// assignment on first sight (hash, or least-loaded when the hash shard
  /// is overloaded — see EnableRebalancing) and recording the event in the
  /// sliding load window. Without rebalancing this is exactly ShardOf.
  /// Single-threaded; const because copies share the state object.
  size_t Route(const Event& event) const;

  /// The shard `event` is (or would be) routed to, without recording it:
  /// the key's existing assignment if rebalancing knows one, else the hash.
  size_t AssignedShard(const Event& event) const;

  /// Records the externally-chosen placements of one pre-partitioned chunk
  /// (sub-batch i = shard i) — the PushPrePartitioned path, where the
  /// CALLER partitioned the events. Atomic: first validates every event
  /// (a key already bound to a different shard, or one chunk placing the
  /// same new key on two shards, would split a group), THEN binds all new
  /// keys permanently. Returns -1 on success, else the index of the first
  /// offending sub-batch with NO state mutated. No-op (-1) without
  /// rebalancing, where the pure hash makes every router agree. Does not
  /// feed the load window — pre-partitioned traffic was either counted at
  /// build time (PartitionedBatchCursor routes through Route) or bypasses
  /// the rebalancer by design.
  int BindChunk(const std::vector<EventVector>& batches) const;

  /// Group keys diverted off their hash shard so far (0 when pure).
  int64_t rebalanced_keys() const {
    return state_ == nullptr
               ? 0
               : state_->rebalanced_keys.load(std::memory_order_relaxed);
  }

  /// Live sticky-assignment entries (0 when pure). The unbounded-growth
  /// surface DrainStale bounds: without draining, every group key ever
  /// routed stays resident for the session's lifetime.
  int64_t map_size() const {
    return state_ == nullptr
               ? 0
               : state_->map_size.load(std::memory_order_relaxed);
  }

  /// Forgets sticky assignments of keys whose last routed event time is
  /// <= `last_seen_cutoff`, returning how many entries were dropped. Safe
  /// ONLY once every window a dropped key's events could fall into has
  /// closed AND the owning shard evicted the group's runner
  /// (RunConfig::evict_idle_groups) — a reappearing key then re-routes
  /// fresh on BOTH sides, exactly like a never-seen key, so emissions stay
  /// identical to a single-threaded run. ShardedSession calls this at pane
  /// boundaries with cutoff = boundary - max(within); see
  /// docs/API.md ("Knob matrix"). Single-threaded like Route.
  int64_t DrainStale(Timestamp last_seen_cutoff) const;

  int num_shards() const { return num_shards_; }
  AttrId partition_attr() const { return partition_attr_; }

  /// Sliding-window half-length, in routed events: windowed load = the
  /// current half plus the whole previous half, so every load estimate
  /// covers between one and two halves of recent traffic.
  static constexpr int64_t kRebalanceHalfWindow = 2048;

 private:
  /// One sticky key assignment: the shard plus the key's newest event time,
  /// which DrainStale compares against its cutoff.
  struct Assignment {
    uint32_t shard = 0;
    Timestamp last_seen = 0;
  };

  struct RebalanceState {
    int64_t threshold = 0;
    /// Every key ever routed, with its sticky shard assignment — bounded
    /// under key churn only by periodic DrainStale calls.
    std::unordered_map<int64_t, Assignment> assignment;
    /// Two-bucket sliding window of per-shard staged-event counts.
    std::vector<int64_t> current;
    std::vector<int64_t> previous;
    int64_t in_window = 0;
    /// Atomic so a metrics reader may poll it while the ingest thread
    /// routes; everything else in here is ingest-thread-only.
    std::atomic<int64_t> rebalanced_keys{0};
    /// assignment.size() mirrored for lock-free metrics reads.
    std::atomic<int64_t> map_size{0};
  };

  int64_t KeyOf(const Event& event) const {
    if (partition_attr_ != Schema::kInvalidId &&
        partition_attr_ < static_cast<AttrId>(event.num_attrs)) {
      return static_cast<int64_t>(std::llround(event.attr(partition_attr_)));
    }
    return 0;
  }

  AttrId partition_attr_ = Schema::kInvalidId;
  int num_shards_ = 1;
  std::shared_ptr<RebalanceState> state_;
};

/// One pre-partitioned ingest unit: per_shard[i] holds, in stream order, the
/// chunk's events routed to shard i. Within a chunk each per-shard
/// subsequence is strictly time-increasing; subsequences of *different*
/// shards may interleave arbitrarily (only per-shard order matters to the
/// sharded runtime).
using PartitionedBatch = std::vector<EventVector>;

/// Shard-aware cursor adapter: drains an EventCursor in chunks of
/// `batch_events` events, routing each into its shard's sub-batch. The
/// bench harness uses this so shard-scaling runs measure engine work, not
/// front-thread hashing.
class PartitionedBatchCursor {
 public:
  /// `cursor` must outlive this object and yield strictly time-increasing
  /// events. `batch_events` (>= 1) is the total chunk size across shards.
  PartitionedBatchCursor(EventCursor* cursor, const ShardRouter& router,
                         size_t batch_events);

  /// Fills `*out` (resized to router.num_shards()) with the next chunk's
  /// per-shard sub-batches; returns false when the stream is exhausted.
  bool NextBatch(PartitionedBatch* out);

  const ShardRouter& router() const { return router_; }

 private:
  EventCursor* cursor_;
  ShardRouter router_;
  size_t batch_events_;
};

/// Materializes a whole stream as pre-partitioned chunks of `batch_events`
/// events each (the benchmark-side helper: build outside the timed region,
/// then feed chunks to ShardedSession::PushPrePartitioned).
std::vector<PartitionedBatch> PartitionBatches(std::span<const Event> events,
                                               const ShardRouter& router,
                                               size_t batch_events);

}  // namespace hamlet

#endif  // HAMLET_STREAM_SHARD_ROUTER_H_
