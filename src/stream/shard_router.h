// Deterministic event -> shard routing, shared by the sharded runtime and
// the shard-aware stream sources.
//
// The paper's pre-processing (§3.1) partitions each component's stream by
// its group-by attribute because groups never interact. ShardRouter is that
// partition function made explicit: a pure, copyable value object mapping an
// event's group-by key to one of N shards via a SplitMix64 mix (adjacent
// group keys must not land on adjacent shards, or workloads with few groups
// would pile onto a shard prefix).
//
// Exposing the route as a value lets work move off the ingest hot path:
//  * ShardedSession (src/runtime/sharded_session.h) routes internally with
//    the same object it returns from router(), and
//  * PartitionedBatchCursor / PartitionBatches below pre-partition a stream
//    into per-shard sub-batches *at generation time*, so the ingest thread
//    hands ready-made batches to the shard queues without hashing a single
//    event (ShardedSession::PushPrePartitioned).
#ifndef HAMLET_STREAM_SHARD_ROUTER_H_
#define HAMLET_STREAM_SHARD_ROUTER_H_

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "src/common/rng.h"
#include "src/stream/event.h"
#include "src/stream/generator.h"
#include "src/stream/schema.h"

namespace hamlet {

/// Pure event->shard map: hash(group-by key) % num_shards. Copyable and
/// cheap; identical inputs route identically on every platform.
class ShardRouter {
 public:
  /// Identity router: everything to shard 0.
  ShardRouter() = default;

  /// `partition_attr` is the group-by attribute shared by all exec queries
  /// (Schema::kInvalidId when the workload has no GROUPBY — every event
  /// then routes to shard 0). `num_shards` must be >= 1.
  ShardRouter(AttrId partition_attr, int num_shards)
      : partition_attr_(partition_attr), num_shards_(num_shards) {}

  size_t ShardOf(const Event& event) const {
    if (num_shards_ == 1) return 0;
    int64_t key = 0;
    if (partition_attr_ != Schema::kInvalidId &&
        partition_attr_ < static_cast<AttrId>(event.num_attrs)) {
      key = static_cast<int64_t>(std::llround(event.attr(partition_attr_)));
    }
    return static_cast<size_t>(SplitMix64Mix(static_cast<uint64_t>(key)) %
                               static_cast<uint64_t>(num_shards_));
  }

  int num_shards() const { return num_shards_; }
  AttrId partition_attr() const { return partition_attr_; }

 private:
  AttrId partition_attr_ = Schema::kInvalidId;
  int num_shards_ = 1;
};

/// One pre-partitioned ingest unit: per_shard[i] holds, in stream order, the
/// chunk's events routed to shard i. Within a chunk each per-shard
/// subsequence is strictly time-increasing; subsequences of *different*
/// shards may interleave arbitrarily (only per-shard order matters to the
/// sharded runtime).
using PartitionedBatch = std::vector<EventVector>;

/// Shard-aware cursor adapter: drains an EventCursor in chunks of
/// `batch_events` events, routing each into its shard's sub-batch. The
/// bench harness uses this so shard-scaling runs measure engine work, not
/// front-thread hashing.
class PartitionedBatchCursor {
 public:
  /// `cursor` must outlive this object and yield strictly time-increasing
  /// events. `batch_events` (>= 1) is the total chunk size across shards.
  PartitionedBatchCursor(EventCursor* cursor, const ShardRouter& router,
                         size_t batch_events);

  /// Fills `*out` (resized to router.num_shards()) with the next chunk's
  /// per-shard sub-batches; returns false when the stream is exhausted.
  bool NextBatch(PartitionedBatch* out);

  const ShardRouter& router() const { return router_; }

 private:
  EventCursor* cursor_;
  ShardRouter router_;
  size_t batch_events_;
};

/// Materializes a whole stream as pre-partitioned chunks of `batch_events`
/// events each (the benchmark-side helper: build outside the timed region,
/// then feed chunks to ShardedSession::PushPrePartitioned).
std::vector<PartitionedBatch> PartitionBatches(std::span<const Event> events,
                                               const ShardRouter& router,
                                               size_t batch_events);

}  // namespace hamlet

#endif  // HAMLET_STREAM_SHARD_ROUTER_H_
