// Structure-of-arrays event batches: the columnar unit of work.
//
// The row Event (src/stream/event.h) stays the interchange struct; an
// EventBatch transposes a time-ordered run of rows into per-field columns so
// predicate evaluation becomes tight loops over contiguous `double` arrays
// (src/query/columnar_predicate.h) instead of per-event struct probing.
// Attribute columns are rectangular — every column spans every row — with
// absent attributes stored as 0.0; the per-row attribute count is kept in
// its own column, so CopyRow() reconstructs each Event bit-identically
// (padding included, since Event zero-initializes its attrs array).
#ifndef HAMLET_STREAM_EVENT_BATCH_H_
#define HAMLET_STREAM_EVENT_BATCH_H_

#include <span>
#include <vector>

#include "src/stream/event.h"

namespace hamlet {

/// See file comment. Append-only between Clear() calls; Clear() keeps every
/// column's capacity, so a reused staging batch allocates only until the
/// steady-state batch size has been seen once.
class EventBatch {
 public:
  EventBatch() = default;
  /// `num_attr_columns` is typically Schema::num_attrs(); Append() widens
  /// on demand when a row carries more attributes than the schema declared
  /// (hand-built test streams do this), zero-padding earlier rows.
  explicit EventBatch(int num_attr_columns) { ResetSchema(num_attr_columns); }

  /// Drops all rows and re-shapes to `num_attr_columns` columns.
  void ResetSchema(int num_attr_columns);

  /// Drops all rows, keeps column count and capacities.
  void Clear();

  void Reserve(int rows);

  void Append(const Event& e);

  /// Appends every row of `rows` (convenience over a caller-side loop).
  void AppendRows(std::span<const Event> rows);

  int size() const { return static_cast<int>(times_.size()); }
  bool empty() const { return times_.empty(); }
  int num_attr_columns() const { return static_cast<int>(cols_.size()); }

  Timestamp time(int i) const { return times_[static_cast<size_t>(i)]; }
  TypeId type(int i) const { return types_[static_cast<size_t>(i)]; }
  int num_attrs(int i) const {
    return static_cast<int>(num_attrs_[static_cast<size_t>(i)]);
  }

  std::span<const Timestamp> times() const { return times_; }
  std::span<const TypeId> types() const { return types_; }

  /// Contiguous run-span views over [begin, end): what a RunSpan indexes
  /// into. Same storage as the whole-batch spans, just sliced — the
  /// run-granular engine path reads these instead of CopyRow'ing per row.
  std::span<const Timestamp> times(int begin, int end) const {
    return std::span<const Timestamp>(times_).subspan(
        static_cast<size_t>(begin), static_cast<size_t>(end - begin));
  }
  std::span<const TypeId> types(int begin, int end) const {
    return std::span<const TypeId>(types_).subspan(
        static_cast<size_t>(begin), static_cast<size_t>(end - begin));
  }
  std::span<const double> column(AttrId a, int begin, int end) const {
    return std::span<const double>(cols_[static_cast<size_t>(a)])
        .subspan(static_cast<size_t>(begin),
                 static_cast<size_t>(end - begin));
  }

  /// Column for attribute `a`; one double per row, 0.0 where the row lacked
  /// the attribute (matching Event's zero-initialized attrs array).
  std::span<const double> column(AttrId a) const {
    return cols_[static_cast<size_t>(a)];
  }

  /// Raw column pointer, or nullptr when no row ever carried attribute `a`
  /// (column id beyond num_attr_columns). Kernel-facing.
  const double* column_data(AttrId a) const {
    return (a >= 0 && a < num_attr_columns())
               ? cols_[static_cast<size_t>(a)].data()
               : nullptr;
  }

  /// Reconstructs row `i` into `*out`, bit-identical to the appended Event.
  void CopyRow(int i, Event* out) const;

  /// Builds a batch from rows (tests/benches; the runtime reuses a staging
  /// batch instead).
  static EventBatch FromRows(std::span<const Event> rows,
                             int num_attr_columns);

  /// Column capacities in bytes (memory metering).
  int64_t MemoryBytes() const;

 private:
  void WidenTo(int want);

  std::vector<Timestamp> times_;
  std::vector<TypeId> types_;
  std::vector<int32_t> num_attrs_;
  std::vector<std::vector<double>> cols_;  ///< [attr][row]
};

}  // namespace hamlet

#endif  // HAMLET_STREAM_EVENT_BATCH_H_
