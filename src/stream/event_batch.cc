#include "src/stream/event_batch.h"

#include <algorithm>

namespace hamlet {

void EventBatch::ResetSchema(int num_attr_columns) {
  HAMLET_CHECK(num_attr_columns >= 0 &&
               num_attr_columns <= Event::kMaxAttrs);
  Clear();
  cols_.resize(static_cast<size_t>(num_attr_columns));
}

void EventBatch::Clear() {
  times_.clear();
  types_.clear();
  num_attrs_.clear();
  for (auto& col : cols_) col.clear();
}

void EventBatch::Reserve(int rows) {
  const size_t n = static_cast<size_t>(rows);
  times_.reserve(n);
  types_.reserve(n);
  num_attrs_.reserve(n);
  for (auto& col : cols_) col.reserve(n);
}

void EventBatch::WidenTo(int want) {
  const size_t rows = times_.size();
  while (num_attr_columns() < want) {
    cols_.emplace_back();
    cols_.back().assign(rows, 0.0);
  }
}

void EventBatch::Append(const Event& e) {
  if (e.num_attrs > num_attr_columns()) WidenTo(e.num_attrs);
  times_.push_back(e.time);
  types_.push_back(e.type);
  num_attrs_.push_back(e.num_attrs);
  const int n = num_attr_columns();
  for (int a = 0; a < n; ++a) {
    cols_[static_cast<size_t>(a)].push_back(
        a < e.num_attrs ? e.attrs[static_cast<size_t>(a)] : 0.0);
  }
}

void EventBatch::AppendRows(std::span<const Event> rows) {
  for (const Event& e : rows) Append(e);
}

void EventBatch::CopyRow(int i, Event* out) const {
  const size_t row = static_cast<size_t>(i);
  out->time = times_[row];
  out->type = types_[row];
  out->num_attrs = num_attrs_[row];
  const int n = std::min<int>(out->num_attrs, num_attr_columns());
  for (int a = 0; a < n; ++a)
    out->attrs[static_cast<size_t>(a)] = cols_[static_cast<size_t>(a)][row];
  for (int a = n; a < Event::kMaxAttrs; ++a)
    out->attrs[static_cast<size_t>(a)] = 0.0;
}

EventBatch EventBatch::FromRows(std::span<const Event> rows,
                                int num_attr_columns) {
  EventBatch batch(num_attr_columns);
  batch.Reserve(static_cast<int>(rows.size()));
  batch.AppendRows(rows);
  return batch;
}

int64_t EventBatch::MemoryBytes() const {
  int64_t bytes = static_cast<int64_t>(sizeof(EventBatch)) +
                  static_cast<int64_t>(times_.capacity() * sizeof(Timestamp)) +
                  static_cast<int64_t>(types_.capacity() * sizeof(TypeId)) +
                  static_cast<int64_t>(num_attrs_.capacity() * sizeof(int32_t));
  for (const auto& col : cols_)
    bytes += static_cast<int64_t>(col.capacity() * sizeof(double));
  return bytes;
}

}  // namespace hamlet
