#include "src/stream/adaptive_batcher.h"

namespace hamlet {

int AdaptiveBatchController::Observe(double now_seconds, size_t queue_depth,
                                     size_t queue_capacity) {
  const double max = static_cast<double>(max_batch_);
  if (last_arrival_ < 0.0) {
    // First observation: no gap yet, so only the queue signal applies.
    last_arrival_ = now_seconds;
    if (queue_depth > 0) target_ = target_ * kGrow < max ? target_ * kGrow : max;
    return static_cast<int>(target_);
  }
  double gap = now_seconds - last_arrival_;
  if (gap < 0.0) gap = 0.0;  // a clock override may be held constant
  last_arrival_ = now_seconds;
  // The lull test below compares against the cadence BEFORE this gap —
  // folding the gap in first would silently raise the effective threshold
  // from kLullGapFactor x to (kLullGapFactor + 1/kGapAlpha - 1) x.
  const double prior_ewma = ewma_gap_;
  ewma_gap_ = ewma_gap_ <= 0.0 ? gap
                               : (1.0 - kGapAlpha) * ewma_gap_ + kGapAlpha * gap;
  if (queue_capacity > 0 &&
      static_cast<double>(queue_depth) >=
          kDeepOccupancy * static_cast<double>(queue_capacity)) {
    // Deep queue: the worker is far behind; amortize maximally.
    target_ = max;
  } else if (queue_depth > 0) {
    // Worker behind: burst posture, ramp toward max.
    target_ = target_ * kGrow < max ? target_ * kGrow : max;
  } else if ((prior_ewma > 0.0 && gap > kLullGapFactor * prior_ewma) ||
             gap >= kLullGapSeconds) {
    // Queue drained and the arrival gap is opening (relative to the recent
    // cadence, or just plain wide): lull posture, shrink so events stop
    // waiting in staging.
    target_ = target_ * kShrink > 1.0 ? target_ * kShrink : 1.0;
  } else {
    // Queue drained, arrivals steady: the worker keeps up, so batching only
    // delays delivery; drift down gently.
    target_ = target_ * kDrainDecay > 1.0 ? target_ * kDrainDecay : 1.0;
  }
  return static_cast<int>(target_);
}

}  // namespace hamlet
