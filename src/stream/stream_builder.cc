#include "src/stream/stream_builder.h"

#include <sstream>

#include "src/common/check.h"

namespace hamlet {

StreamBuilder& StreamBuilder::Add(const std::string& type_name,
                                  std::initializer_list<double> attrs) {
  return AddAt(next_time_, type_name, attrs);
}

StreamBuilder& StreamBuilder::AddAt(Timestamp t, const std::string& type_name,
                                    std::initializer_list<double> attrs) {
  HAMLET_CHECK(events_.empty() || t >= events_.back().time);
  Event e(t, schema_->AddType(type_name));
  for (double v : attrs) e.set_attr(e.num_attrs, v);
  events_.push_back(e);
  next_time_ = t + 1;
  return *this;
}

StreamBuilder& StreamBuilder::AddRun(int n, const std::string& type_name,
                                     std::initializer_list<double> attrs) {
  for (int i = 0; i < n; ++i) Add(type_name, attrs);
  return *this;
}

StreamBuilder& StreamBuilder::Gap(Timestamp delta) {
  next_time_ += delta;
  return *this;
}

EventVector ParseStreamScript(const std::string& script, Schema* schema) {
  StreamBuilder builder(schema);
  std::istringstream in(script);
  std::string token;
  while (in >> token) builder.Add(token);
  return builder.Take();
}

}  // namespace hamlet
