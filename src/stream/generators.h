// The four dataset generators of the paper's evaluation (§6.1), simulated.
//
// Common structure: events arrive at `events_per_minute`, are assigned to
// groups (district/zone/house/company = attribute 0), and within each group
// arrive in bursts of same-type runs whose length is geometric with
// continuation probability `burstiness`. Bursts are the unit of HAMLET's
// runtime sharing decisions (Definition 10), so their shape is the
// behaviour-critical property each simulation preserves.
#ifndef HAMLET_STREAM_GENERATORS_H_
#define HAMLET_STREAM_GENERATORS_H_

#include <functional>
#include <string>
#include <vector>

#include "src/stream/generator.h"

namespace hamlet {

namespace generator_internal {

/// Weighted event type used by the burst process.
struct TypeWeight {
  TypeId type;
  double weight;
};

/// Per-group Markov-style burst process: repeatedly pick a type by weight
/// (never repeating the previous burst's type, so bursts are maximal runs)
/// and emit a geometric-length run of that type.
class BurstProcess {
 public:
  BurstProcess(std::vector<TypeWeight> weights, double burstiness,
               int max_burst);

  /// Returns the type of the next event for group `g`.
  TypeId Next(int g, Rng& rng);

 private:
  TypeId PickType(TypeId exclude, Rng& rng);

  std::vector<TypeWeight> weights_;
  double total_weight_;
  double burstiness_;
  int max_burst_;
  struct GroupState {
    TypeId current = -1;
    int remaining = 0;
  };
  std::vector<GroupState> groups_;
};

}  // namespace generator_internal

/// Paper's synthetic ridesharing stream: 20 event types (Request, Travel,
/// Pickup, Dropoff, Cancel, Pool, ...), attributes district (group), driver,
/// rider, speed, duration, price. Default 10K events/min.
class RidesharingGenerator : public StreamGenerator {
 public:
  RidesharingGenerator();
  const std::string& name() const override { return name_; }
  const Schema& schema() const override { return schema_; }
  std::unique_ptr<EventCursor> Stream(
      const GeneratorConfig& config) override;

 private:
  std::string name_ = "ridesharing";
  Schema schema_;
};

/// Simulated NYC taxi/Uber stream: trip lifecycle events with zone (group),
/// driver, rider, passengers, price, speed. Default 200 events/min scaled by
/// the speed-up factor.
class NycTaxiGenerator : public StreamGenerator {
 public:
  NycTaxiGenerator();
  const std::string& name() const override { return name_; }
  const Schema& schema() const override { return schema_; }
  std::unique_ptr<EventCursor> Stream(
      const GeneratorConfig& config) override;

 private:
  std::string name_ = "nyc_taxi";
  Schema schema_;
};

/// Simulated DEBS'14 smart home stream: per-plug load/work measurements with
/// house (group), plug, value. Default 20K events/min.
class SmartHomeGenerator : public StreamGenerator {
 public:
  SmartHomeGenerator();
  const std::string& name() const override { return name_; }
  const Schema& schema() const override { return schema_; }
  std::unique_ptr<EventCursor> Stream(
      const GeneratorConfig& config) override;

 private:
  std::string name_ = "smart_home";
  Schema schema_;
};

/// Simulated stock tick stream: Up/Down/Flat/Spike/Volume events with
/// company (group), price (random walk), volume. Bursts average ~120 events
/// as reported for the paper's stock data (§6.2).
class StockGenerator : public StreamGenerator {
 public:
  StockGenerator();
  const std::string& name() const override { return name_; }
  const Schema& schema() const override { return schema_; }
  std::unique_ptr<EventCursor> Stream(
      const GeneratorConfig& config) override;

 private:
  std::string name_ = "stock";
  Schema schema_;
};

}  // namespace hamlet

#endif  // HAMLET_STREAM_GENERATORS_H_
