// Hand-built stream construction for tests, examples and worked paper
// examples (Figures 4–6, Tables 3–5).
#ifndef HAMLET_STREAM_STREAM_BUILDER_H_
#define HAMLET_STREAM_STREAM_BUILDER_H_

#include <initializer_list>
#include <string>

#include "src/stream/event.h"
#include "src/stream/schema.h"

namespace hamlet {

/// Fluent builder: `StreamBuilder(s).Add("A").Add("B").Add("B")` produces
/// events with auto-incrementing timestamps (1ms apart by default).
class StreamBuilder {
 public:
  explicit StreamBuilder(Schema* schema) : schema_(schema) {}

  /// Appends one event of type `type_name` at the next timestamp.
  StreamBuilder& Add(const std::string& type_name,
                     std::initializer_list<double> attrs = {});

  /// Appends one event at an explicit timestamp (must be non-decreasing).
  StreamBuilder& AddAt(Timestamp t, const std::string& type_name,
                       std::initializer_list<double> attrs = {});

  /// Appends `n` events of `type_name` (a burst).
  StreamBuilder& AddRun(int n, const std::string& type_name,
                        std::initializer_list<double> attrs = {});

  /// Advances the clock without emitting (creates pane/burst gaps).
  StreamBuilder& Gap(Timestamp delta);

  const EventVector& events() const { return events_; }
  EventVector Take() { return std::move(events_); }

 private:
  Schema* schema_;
  Timestamp next_time_ = 0;
  EventVector events_;
};

/// Parses a whitespace-separated stream script like "A B B C" against
/// `schema` (registering unseen single-letter types); timestamps 0,1,2,…
EventVector ParseStreamScript(const std::string& script, Schema* schema);

}  // namespace hamlet

#endif  // HAMLET_STREAM_STREAM_BUILDER_H_
