#include "src/stream/generators.h"

namespace hamlet {

namespace {

class StockCursor : public EventCursor {
 public:
  explicit StockCursor(const GeneratorConfig& config)
      : rng_(config.seed),
        chunker_(config),
        num_groups_(config.num_groups),
        // Momentum: tick direction persists, producing the ~120-event
        // same-type bursts the paper reports for its stock streams (§6.2).
        process_({{/*Up*/ 0, 10},
                  {/*Down*/ 1, 10},
                  {/*Flat*/ 2, 6},
                  {/*Spike*/ 3, 1},
                  {/*Volume*/ 4, 3}},
                 config.burstiness, config.max_burst),
        price_(static_cast<size_t>(config.num_groups), 50.0) {}

  bool Next(Event* out) override {
    Timestamp t;
    if (!chunker_.Next(rng_, &t)) return false;
    int g = static_cast<int>(
        rng_.NextBelow(static_cast<uint64_t>(num_groups_)));
    TypeId type = process_.Next(g, rng_);
    double& p = price_[static_cast<size_t>(g)];
    if (type == 0) p += rng_.NextDouble(0.01, 0.5);           // Up
    else if (type == 1) p -= rng_.NextDouble(0.01, 0.5);      // Down
    else if (type == 3) p += rng_.NextDouble(-3.0, 3.0);      // Spike
    if (p < 1.0) p = 1.0;
    Event e(t, type);
    e.set_attr(0, g);
    e.set_attr(1, p);
    e.set_attr(2, static_cast<double>(rng_.NextInt(100, 10'000)));
    *out = e;
    return true;
  }

 private:
  Rng rng_;
  generator_internal::TimestampChunker chunker_;
  int num_groups_;
  generator_internal::BurstProcess process_;
  std::vector<double> price_;
};

}  // namespace

StockGenerator::StockGenerator() {
  schema_.AddAttr("company");  // group-by key
  schema_.AddAttr("price");
  schema_.AddAttr("volume");
  schema_.AddType("Up");
  schema_.AddType("Down");
  schema_.AddType("Flat");
  schema_.AddType("Spike");
  schema_.AddType("Volume");
}

std::unique_ptr<EventCursor> StockGenerator::Stream(
    const GeneratorConfig& config) {
  return std::make_unique<StockCursor>(config);
}

}  // namespace hamlet
