#include "src/stream/generators.h"

namespace hamlet {

StockGenerator::StockGenerator() {
  schema_.AddAttr("company");  // group-by key
  schema_.AddAttr("price");
  schema_.AddAttr("volume");
  schema_.AddType("Up");
  schema_.AddType("Down");
  schema_.AddType("Flat");
  schema_.AddType("Spike");
  schema_.AddType("Volume");
}

EventVector StockGenerator::Generate(const GeneratorConfig& config) {
  Rng rng(config.seed);
  const int64_t total = static_cast<int64_t>(config.events_per_minute) *
                        config.duration_minutes;
  std::vector<Timestamp> times = generator_internal::SpreadTimestamps(
      0, config.duration_minutes * kMillisPerMinute, static_cast<int>(total),
      rng);

  // Momentum: tick direction persists, producing the ~120-event same-type
  // bursts the paper reports for its stock streams (§6.2).
  std::vector<generator_internal::TypeWeight> weights = {{/*Up*/ 0, 10},
                                                         {/*Down*/ 1, 10},
                                                         {/*Flat*/ 2, 6},
                                                         {/*Spike*/ 3, 1},
                                                         {/*Volume*/ 4, 3}};
  generator_internal::BurstProcess process(std::move(weights),
                                           config.burstiness,
                                           config.max_burst);

  std::vector<double> price(static_cast<size_t>(config.num_groups), 50.0);

  EventVector out;
  out.reserve(times.size());
  for (Timestamp t : times) {
    int g = static_cast<int>(
        rng.NextBelow(static_cast<uint64_t>(config.num_groups)));
    TypeId type = process.Next(g, rng);
    double& p = price[static_cast<size_t>(g)];
    if (type == 0) p += rng.NextDouble(0.01, 0.5);           // Up
    else if (type == 1) p -= rng.NextDouble(0.01, 0.5);      // Down
    else if (type == 3) p += rng.NextDouble(-3.0, 3.0);      // Spike
    if (p < 1.0) p = 1.0;
    Event e(t, type);
    e.set_attr(0, g);
    e.set_attr(1, p);
    e.set_attr(2, static_cast<double>(rng.NextInt(100, 10'000)));
    out.push_back(e);
  }
  return out;
}

}  // namespace hamlet
