// Event model.
//
// An event (paper §2.1) is a typed, timestamped tuple with a small set of
// numeric attributes. Attribute layout is defined by a Schema; attribute 0 is
// conventionally the group-by key for the dataset.
#ifndef HAMLET_STREAM_EVENT_H_
#define HAMLET_STREAM_EVENT_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/check.h"

namespace hamlet {

/// Event timestamps are integral milliseconds. Windows, slides and panes are
/// expressed in the same unit so gcd arithmetic (paper §3.1) is exact.
using Timestamp = int64_t;

/// Dense id of an event type within a Schema.
using TypeId = int32_t;

/// Index of an attribute within a Schema.
using AttrId = int32_t;

constexpr Timestamp kMillisPerSecond = 1000;
constexpr Timestamp kMillisPerMinute = 60 * kMillisPerSecond;

/// A single stream event. Fixed-capacity attribute storage keeps events
/// allocation-free; all dataset schemas fit within kMaxAttrs.
struct Event {
  static constexpr int kMaxAttrs = 8;

  Timestamp time = 0;
  TypeId type = 0;
  int32_t num_attrs = 0;
  std::array<double, kMaxAttrs> attrs{};

  Event() = default;
  Event(Timestamp t, TypeId ty) : time(t), type(ty) {}
  Event(Timestamp t, TypeId ty, std::initializer_list<double> a)
      : time(t), type(ty) {
    HAMLET_CHECK(a.size() <= kMaxAttrs);
    for (double v : a) attrs[num_attrs++] = v;
  }

  double attr(AttrId i) const {
    HAMLET_DCHECK(i >= 0 && i < num_attrs);
    return attrs[static_cast<size_t>(i)];
  }

  void set_attr(AttrId i, double v) {
    HAMLET_DCHECK(i >= 0 && i < kMaxAttrs);
    if (i >= num_attrs) num_attrs = i + 1;
    attrs[static_cast<size_t>(i)] = v;
  }
};

/// Time-ordered sequence of events.
using EventVector = std::vector<Event>;

/// Returns true when `events` is non-decreasing in time.
bool IsTimeOrdered(const EventVector& events);

}  // namespace hamlet

#endif  // HAMLET_STREAM_EVENT_H_
