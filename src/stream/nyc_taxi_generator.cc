#include "src/stream/generators.h"

namespace hamlet {

namespace {

class NycTaxiCursor : public EventCursor {
 public:
  explicit NycTaxiCursor(const GeneratorConfig& config)
      : rng_(config.seed),
        chunker_(config),
        num_groups_(config.num_groups),
        // Trips dominated by Travel runs between lifecycle milestones — the
        // same shape the real feed's per-second GPS pings produce.
        process_({{/*Request*/ 0, 6},
                  {/*Travel*/ 1, 24},
                  {/*Pickup*/ 2, 5},
                  {/*Dropoff*/ 3, 5},
                  {/*Cancel*/ 4, 2}},
                 config.burstiness, config.max_burst),
        // Per-group rolling driver/rider pair: lifecycle events of one burst
        // run share ids, which makes [driver, rider] equality predicates
        // meaningful.
        pair_of_group_(static_cast<size_t>(config.num_groups), {1, 1}) {}

  bool Next(Event* out) override {
    Timestamp t;
    if (!chunker_.Next(rng_, &t)) return false;
    int g = static_cast<int>(
        rng_.NextBelow(static_cast<uint64_t>(num_groups_)));
    TypeId type = process_.Next(g, rng_);
    if (type == 0) {  // a new Request rotates the active driver/rider pair
      pair_of_group_[static_cast<size_t>(g)] = {
          static_cast<int>(rng_.NextInt(1, 50)),
          static_cast<int>(rng_.NextInt(1, 50))};
    }
    Event e(t, type);
    e.set_attr(0, g);
    e.set_attr(1, pair_of_group_[static_cast<size_t>(g)].first);
    e.set_attr(2, pair_of_group_[static_cast<size_t>(g)].second);
    e.set_attr(3, static_cast<double>(rng_.NextInt(1, 6)));
    e.set_attr(4, rng_.NextDouble(3.0, 90.0));
    e.set_attr(5, rng_.NextDouble(1.0, 45.0));
    *out = e;
    return true;
  }

 private:
  Rng rng_;
  generator_internal::TimestampChunker chunker_;
  int num_groups_;
  generator_internal::BurstProcess process_;
  std::vector<std::pair<int, int>> pair_of_group_;
};

}  // namespace

NycTaxiGenerator::NycTaxiGenerator() {
  schema_.AddAttr("zone");  // group-by key
  schema_.AddAttr("driver");
  schema_.AddAttr("rider");
  schema_.AddAttr("passengers");
  schema_.AddAttr("price");
  schema_.AddAttr("speed");
  schema_.AddType("Request");
  schema_.AddType("Travel");
  schema_.AddType("Pickup");
  schema_.AddType("Dropoff");
  schema_.AddType("Cancel");
}

std::unique_ptr<EventCursor> NycTaxiGenerator::Stream(
    const GeneratorConfig& config) {
  return std::make_unique<NycTaxiCursor>(config);
}

}  // namespace hamlet
