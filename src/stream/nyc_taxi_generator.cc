#include "src/stream/generators.h"

namespace hamlet {

NycTaxiGenerator::NycTaxiGenerator() {
  schema_.AddAttr("zone");  // group-by key
  schema_.AddAttr("driver");
  schema_.AddAttr("rider");
  schema_.AddAttr("passengers");
  schema_.AddAttr("price");
  schema_.AddAttr("speed");
  schema_.AddType("Request");
  schema_.AddType("Travel");
  schema_.AddType("Pickup");
  schema_.AddType("Dropoff");
  schema_.AddType("Cancel");
}

EventVector NycTaxiGenerator::Generate(const GeneratorConfig& config) {
  Rng rng(config.seed);
  const int64_t total = static_cast<int64_t>(config.events_per_minute) *
                        config.duration_minutes;
  std::vector<Timestamp> times = generator_internal::SpreadTimestamps(
      0, config.duration_minutes * kMillisPerMinute, static_cast<int>(total),
      rng);

  // Trips dominated by Travel runs between lifecycle milestones — the same
  // shape the real feed's per-second GPS pings produce.
  std::vector<generator_internal::TypeWeight> weights = {
      {/*Request*/ 0, 6},  {/*Travel*/ 1, 24}, {/*Pickup*/ 2, 5},
      {/*Dropoff*/ 3, 5}, {/*Cancel*/ 4, 2}};
  generator_internal::BurstProcess process(std::move(weights),
                                           config.burstiness,
                                           config.max_burst);

  // Per-group rolling driver/rider pair: lifecycle events of one burst run
  // share ids, which makes [driver, rider] equality predicates meaningful.
  std::vector<std::pair<int, int>> pair_of_group(
      static_cast<size_t>(config.num_groups), {1, 1});

  EventVector out;
  out.reserve(times.size());
  for (Timestamp t : times) {
    int g = static_cast<int>(
        rng.NextBelow(static_cast<uint64_t>(config.num_groups)));
    TypeId type = process.Next(g, rng);
    if (type == 0) {  // a new Request rotates the active driver/rider pair
      pair_of_group[static_cast<size_t>(g)] = {
          static_cast<int>(rng.NextInt(1, 50)),
          static_cast<int>(rng.NextInt(1, 50))};
    }
    Event e(t, type);
    e.set_attr(0, g);
    e.set_attr(1, pair_of_group[static_cast<size_t>(g)].first);
    e.set_attr(2, pair_of_group[static_cast<size_t>(g)].second);
    e.set_attr(3, static_cast<double>(rng.NextInt(1, 6)));
    e.set_attr(4, rng.NextDouble(3.0, 90.0));
    e.set_attr(5, rng.NextDouble(1.0, 45.0));
    out.push_back(e);
  }
  return out;
}

}  // namespace hamlet
