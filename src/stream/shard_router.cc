#include "src/stream/shard_router.h"

#include <algorithm>
#include <limits>

#include "src/common/check.h"

namespace hamlet {

void ShardRouter::EnableRebalancing(int64_t threshold_events) {
  if (threshold_events <= 0 || num_shards_ <= 1) return;
  state_ = std::make_shared<RebalanceState>();
  state_->threshold = threshold_events;
  state_->current.assign(static_cast<size_t>(num_shards_), 0);
  state_->previous.assign(static_cast<size_t>(num_shards_), 0);
}

void ShardRouter::EnableReassignment() {
  if (num_shards_ <= 1 || state_ != nullptr) return;
  // An unreachable threshold keeps Route's first-sight placement purely
  // hash-based; the state exists only so assignments are tracked and
  // Reassign can move them.
  state_ = std::make_shared<RebalanceState>();
  state_->threshold = std::numeric_limits<int64_t>::max();
  state_->current.assign(static_cast<size_t>(num_shards_), 0);
  state_->previous.assign(static_cast<size_t>(num_shards_), 0);
}

void ShardRouter::Reassign(int64_t key, size_t shard, Timestamp last_seen) {
  HAMLET_CHECK(state_ != nullptr);
  HAMLET_CHECK(shard < static_cast<size_t>(num_shards_));
  Assignment& a = state_->assignment[key];
  a.shard = static_cast<uint32_t>(shard);
  a.last_seen = std::max(a.last_seen, last_seen);
  state_->map_size.store(static_cast<int64_t>(state_->assignment.size()),
                         std::memory_order_relaxed);
}

size_t ShardRouter::Route(const Event& event) const {
  if (state_ == nullptr) return ShardOf(event);
  RebalanceState& st = *state_;
  const int64_t key = KeyOf(event);
  auto [it, is_new] = st.assignment.try_emplace(key, Assignment{});
  if (is_new) {
    size_t shard = ShardOf(event);
    // Windowed load = previous half-window + current partial half-window.
    auto load = [&st](size_t s) { return st.previous[s] + st.current[s]; };
    size_t least = 0;
    for (size_t s = 1; s < st.current.size(); ++s) {
      if (load(s) < load(least)) least = s;
    }
    if (load(shard) - load(least) > st.threshold) {
      shard = least;
      st.rebalanced_keys.fetch_add(1, std::memory_order_relaxed);
    }
    it->second.shard = static_cast<uint32_t>(shard);
    st.map_size.store(static_cast<int64_t>(st.assignment.size()),
                      std::memory_order_relaxed);
  }
  it->second.last_seen = event.time;
  const size_t shard = it->second.shard;
  ++st.current[shard];
  if (++st.in_window >= kRebalanceHalfWindow) {
    st.previous.swap(st.current);
    std::fill(st.current.begin(), st.current.end(), 0);
    st.in_window = 0;
  }
  return shard;
}

size_t ShardRouter::AssignedShard(const Event& event) const {
  if (state_ != nullptr) {
    auto it = state_->assignment.find(KeyOf(event));
    if (it != state_->assignment.end()) return it->second.shard;
  }
  return ShardOf(event);
}

int ShardRouter::BindChunk(const std::vector<EventVector>& batches) const {
  if (state_ == nullptr) return -1;
  // Pass 1 — validate only: every event must agree with the key's existing
  // assignment, and a new key must not appear in two sub-batches.
  std::unordered_map<int64_t, uint32_t> fresh;
  for (size_t i = 0; i < batches.size(); ++i) {
    for (const Event& e : batches[i]) {
      const int64_t key = KeyOf(e);
      auto existing = state_->assignment.find(key);
      if (existing != state_->assignment.end()) {
        if (existing->second.shard != i) return static_cast<int>(i);
        continue;
      }
      auto [it, is_new] = fresh.try_emplace(key, static_cast<uint32_t>(i));
      if (!is_new && it->second != i) return static_cast<int>(i);
    }
  }
  // Pass 2 — commit: the whole chunk checked out, bind its new keys and
  // refresh every touched key's last-seen time (pre-partitioned traffic
  // must keep its keys out of DrainStale's reach exactly like routed
  // traffic). A rejected chunk never leaves partial bindings behind.
  for (size_t i = 0; i < batches.size(); ++i) {
    for (const Event& e : batches[i]) {
      Assignment& a = state_->assignment[KeyOf(e)];
      a.shard = static_cast<uint32_t>(i);
      a.last_seen = std::max(a.last_seen, e.time);
    }
  }
  state_->map_size.store(static_cast<int64_t>(state_->assignment.size()),
                         std::memory_order_relaxed);
  return -1;
}

int64_t ShardRouter::DrainStale(Timestamp last_seen_cutoff) const {
  if (state_ == nullptr) return 0;
  int64_t dropped = 0;
  for (auto it = state_->assignment.begin();
       it != state_->assignment.end();) {
    if (it->second.last_seen <= last_seen_cutoff) {
      it = state_->assignment.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  if (dropped > 0) {
    state_->map_size.store(static_cast<int64_t>(state_->assignment.size()),
                           std::memory_order_relaxed);
  }
  return dropped;
}

PartitionedBatchCursor::PartitionedBatchCursor(EventCursor* cursor,
                                               const ShardRouter& router,
                                               size_t batch_events)
    : cursor_(cursor), router_(router), batch_events_(batch_events) {
  HAMLET_CHECK(cursor != nullptr);
  HAMLET_CHECK(batch_events >= 1);
}

bool PartitionedBatchCursor::NextBatch(PartitionedBatch* out) {
  out->resize(static_cast<size_t>(router_.num_shards()));
  for (EventVector& shard_batch : *out) shard_batch.clear();
  size_t pulled = 0;
  Event e;
  while (pulled < batch_events_ && cursor_->Next(&e)) {
    // Route (not ShardOf): with a rebalancing router copied from the
    // session, the cursor's placements share the session's sticky key
    // assignments and feed the same load window.
    (*out)[router_.Route(e)].push_back(e);
    ++pulled;
  }
  return pulled > 0;
}

std::vector<PartitionedBatch> PartitionBatches(std::span<const Event> events,
                                               const ShardRouter& router,
                                               size_t batch_events) {
  HAMLET_CHECK(batch_events >= 1);
  std::vector<PartitionedBatch> chunks;
  chunks.reserve(events.size() / batch_events + 1);
  for (size_t i = 0; i < events.size(); i += batch_events) {
    PartitionedBatch batch(static_cast<size_t>(router.num_shards()));
    const size_t end = std::min(events.size(), i + batch_events);
    for (size_t j = i; j < end; ++j) {
      batch[router.Route(events[j])].push_back(events[j]);
    }
    chunks.push_back(std::move(batch));
  }
  return chunks;
}

}  // namespace hamlet
