#include "src/stream/shard_router.h"

#include "src/common/check.h"

namespace hamlet {

PartitionedBatchCursor::PartitionedBatchCursor(EventCursor* cursor,
                                               const ShardRouter& router,
                                               size_t batch_events)
    : cursor_(cursor), router_(router), batch_events_(batch_events) {
  HAMLET_CHECK(cursor != nullptr);
  HAMLET_CHECK(batch_events >= 1);
}

bool PartitionedBatchCursor::NextBatch(PartitionedBatch* out) {
  out->resize(static_cast<size_t>(router_.num_shards()));
  for (EventVector& shard_batch : *out) shard_batch.clear();
  size_t pulled = 0;
  Event e;
  while (pulled < batch_events_ && cursor_->Next(&e)) {
    (*out)[router_.ShardOf(e)].push_back(e);
    ++pulled;
  }
  return pulled > 0;
}

std::vector<PartitionedBatch> PartitionBatches(std::span<const Event> events,
                                               const ShardRouter& router,
                                               size_t batch_events) {
  HAMLET_CHECK(batch_events >= 1);
  std::vector<PartitionedBatch> chunks;
  chunks.reserve(events.size() / batch_events + 1);
  for (size_t i = 0; i < events.size(); i += batch_events) {
    PartitionedBatch batch(static_cast<size_t>(router.num_shards()));
    const size_t end = std::min(events.size(), i + batch_events);
    for (size_t j = i; j < end; ++j) {
      batch[router.ShardOf(events[j])].push_back(events[j]);
    }
    chunks.push_back(std::move(batch));
  }
  return chunks;
}

}  // namespace hamlet
