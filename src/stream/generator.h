// Stream generator interface and shared configuration.
//
// Each generator simulates one of the paper's four evaluation datasets
// (§6.1); see DESIGN.md §2 for the substitution rationale. Generators are
// deterministic functions of (config, seed).
//
// Two consumption styles:
//  * Stream(config) opens a pull-style EventCursor that yields one event at
//    a time with O(events_per_minute) working memory — the surface for
//    push-based Session runs at paper scale;
//  * Generate(config) materializes the full stream (defined as draining one
//    cursor, so both styles yield identical streams).
#ifndef HAMLET_STREAM_GENERATOR_H_
#define HAMLET_STREAM_GENERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/stream/event.h"
#include "src/stream/schema.h"

namespace hamlet {

/// Knobs shared by all dataset generators. The paper varies `events/min`
/// (via a speed-up factor) and stream length; burst structure drives the
/// dynamic optimizer.
struct GeneratorConfig {
  uint64_t seed = 42;
  /// Average event arrival rate.
  int events_per_minute = 10'000;
  /// Total stream duration.
  int duration_minutes = 1;
  /// Number of distinct group-by key values (districts/houses/companies).
  int num_groups = 4;
  /// Probability that a same-type burst continues with one more event.
  /// Mean burst length = 1 / (1 - burstiness), capped by max_burst.
  double burstiness = 0.9;
  /// Hard cap on burst length (the paper's stock streams average 120).
  int max_burst = 150;
};

/// Pull-based event source: yields a finite stream of strictly
/// time-increasing events one at a time, so consumers need no O(stream)
/// input buffer.
class EventCursor {
 public:
  virtual ~EventCursor() = default;

  /// Writes the next event into `*out`; returns false at end of stream.
  virtual bool Next(Event* out) = 0;
};

/// Produces a finite, time-ordered event stream over its own schema.
class StreamGenerator {
 public:
  virtual ~StreamGenerator() = default;

  /// Dataset name ("ridesharing", "nyc_taxi", "smart_home", "stock").
  virtual const std::string& name() const = 0;

  /// Schema shared by all events this generator produces.
  virtual const Schema& schema() const = 0;

  /// Opens a pull-style cursor over the stream for `config`. Timestamps are
  /// strictly increasing milliseconds starting at 0. Deterministic: two
  /// cursors with the same config yield identical streams.
  virtual std::unique_ptr<EventCursor> Stream(
      const GeneratorConfig& config) = 0;

  /// Materializes the full stream by draining Stream(config). Prefer
  /// Stream() for paper-scale runs.
  EventVector Generate(const GeneratorConfig& config);
};

/// Factory by dataset name; returns nullptr for unknown names.
std::unique_ptr<StreamGenerator> MakeGenerator(const std::string& dataset);

namespace generator_internal {

/// Spreads `n` strictly increasing timestamps uniformly over
/// [start, start + span_ms) with jitter; helper shared by generators.
std::vector<Timestamp> SpreadTimestamps(Timestamp start, Timestamp span_ms,
                                        int n, Rng& rng);

/// Streams the arrival timestamps for a GeneratorConfig in per-minute
/// chunks of `events_per_minute` draws each, keeping cursor memory
/// O(rate) instead of O(stream) while preserving strict global
/// monotonicity across chunk boundaries.
class TimestampChunker {
 public:
  explicit TimestampChunker(const GeneratorConfig& config)
      : events_per_minute_(config.events_per_minute),
        minutes_(config.duration_minutes) {}

  /// Returns false after events_per_minute * duration_minutes timestamps.
  bool Next(Rng& rng, Timestamp* t);

 private:
  int events_per_minute_;
  int minutes_;
  int minute_ = 0;
  size_t pos_ = 0;
  Timestamp last_ = -1;
  std::vector<Timestamp> chunk_;
};

}  // namespace generator_internal
}  // namespace hamlet

#endif  // HAMLET_STREAM_GENERATOR_H_
