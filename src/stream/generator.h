// Stream generator interface and shared configuration.
//
// Each generator simulates one of the paper's four evaluation datasets
// (§6.1); see DESIGN.md §2 for the substitution rationale. Generators are
// deterministic functions of (config, seed).
#ifndef HAMLET_STREAM_GENERATOR_H_
#define HAMLET_STREAM_GENERATOR_H_

#include <memory>
#include <string>

#include "src/common/rng.h"
#include "src/stream/event.h"
#include "src/stream/schema.h"

namespace hamlet {

/// Knobs shared by all dataset generators. The paper varies `events/min`
/// (via a speed-up factor) and stream length; burst structure drives the
/// dynamic optimizer.
struct GeneratorConfig {
  uint64_t seed = 42;
  /// Average event arrival rate.
  int events_per_minute = 10'000;
  /// Total stream duration.
  int duration_minutes = 1;
  /// Number of distinct group-by key values (districts/houses/companies).
  int num_groups = 4;
  /// Probability that a same-type burst continues with one more event.
  /// Mean burst length = 1 / (1 - burstiness), capped by max_burst.
  double burstiness = 0.9;
  /// Hard cap on burst length (the paper's stock streams average 120).
  int max_burst = 150;
};

/// Produces a finite, time-ordered event stream over its own schema.
class StreamGenerator {
 public:
  virtual ~StreamGenerator() = default;

  /// Dataset name ("ridesharing", "nyc_taxi", "smart_home", "stock").
  virtual const std::string& name() const = 0;

  /// Schema shared by all events this generator produces.
  virtual const Schema& schema() const = 0;

  /// Generates the full stream for `config`. Timestamps are strictly
  /// increasing milliseconds starting at 0.
  virtual EventVector Generate(const GeneratorConfig& config) = 0;
};

/// Factory by dataset name; returns nullptr for unknown names.
std::unique_ptr<StreamGenerator> MakeGenerator(const std::string& dataset);

namespace generator_internal {

/// Spreads `n` strictly increasing timestamps uniformly over
/// [start, start + span_ms) with jitter; helper shared by generators.
std::vector<Timestamp> SpreadTimestamps(Timestamp start, Timestamp span_ms,
                                        int n, Rng& rng);

}  // namespace generator_internal
}  // namespace hamlet

#endif  // HAMLET_STREAM_GENERATOR_H_
