#include "src/stream/generators.h"

namespace hamlet {

SmartHomeGenerator::SmartHomeGenerator() {
  schema_.AddAttr("house");  // group-by key
  schema_.AddAttr("plug");
  schema_.AddAttr("value");
  schema_.AddType("Load");
  schema_.AddType("Work");
  schema_.AddType("Switch");
  schema_.AddType("Spike");
  schema_.AddType("Idle");
}

EventVector SmartHomeGenerator::Generate(const GeneratorConfig& config) {
  Rng rng(config.seed);
  const int64_t total = static_cast<int64_t>(config.events_per_minute) *
                        config.duration_minutes;
  std::vector<Timestamp> times = generator_internal::SpreadTimestamps(
      0, config.duration_minutes * kMillisPerMinute, static_cast<int>(total),
      rng);

  // Plug measurement feeds are dominated by long Load runs.
  std::vector<generator_internal::TypeWeight> weights = {{/*Load*/ 0, 30},
                                                         {/*Work*/ 1, 8},
                                                         {/*Switch*/ 2, 3},
                                                         {/*Spike*/ 3, 2},
                                                         {/*Idle*/ 4, 5}};
  generator_internal::BurstProcess process(std::move(weights),
                                           config.burstiness,
                                           config.max_burst);

  // Per-house measurement random walk, like a real cumulative load signal.
  std::vector<double> walk(static_cast<size_t>(config.num_groups), 100.0);

  EventVector out;
  out.reserve(times.size());
  for (Timestamp t : times) {
    int g = static_cast<int>(
        rng.NextBelow(static_cast<uint64_t>(config.num_groups)));
    double& v = walk[static_cast<size_t>(g)];
    v += rng.NextDouble(-2.0, 2.5);
    if (v < 0) v = 0;
    Event e(t, process.Next(g, rng));
    e.set_attr(0, g);
    e.set_attr(1, static_cast<double>(rng.NextInt(1, 53)));  // plug id
    e.set_attr(2, v);
    out.push_back(e);
  }
  return out;
}

}  // namespace hamlet
