#include "src/stream/generators.h"

namespace hamlet {

namespace {

class SmartHomeCursor : public EventCursor {
 public:
  explicit SmartHomeCursor(const GeneratorConfig& config)
      : rng_(config.seed),
        chunker_(config),
        num_groups_(config.num_groups),
        // Plug measurement feeds are dominated by long Load runs.
        process_({{/*Load*/ 0, 30},
                  {/*Work*/ 1, 8},
                  {/*Switch*/ 2, 3},
                  {/*Spike*/ 3, 2},
                  {/*Idle*/ 4, 5}},
                 config.burstiness, config.max_burst),
        // Per-house measurement random walk, like a real cumulative load
        // signal.
        walk_(static_cast<size_t>(config.num_groups), 100.0) {}

  bool Next(Event* out) override {
    Timestamp t;
    if (!chunker_.Next(rng_, &t)) return false;
    int g = static_cast<int>(
        rng_.NextBelow(static_cast<uint64_t>(num_groups_)));
    double& v = walk_[static_cast<size_t>(g)];
    v += rng_.NextDouble(-2.0, 2.5);
    if (v < 0) v = 0;
    Event e(t, process_.Next(g, rng_));
    e.set_attr(0, g);
    e.set_attr(1, static_cast<double>(rng_.NextInt(1, 53)));  // plug id
    e.set_attr(2, v);
    *out = e;
    return true;
  }

 private:
  Rng rng_;
  generator_internal::TimestampChunker chunker_;
  int num_groups_;
  generator_internal::BurstProcess process_;
  std::vector<double> walk_;
};

}  // namespace

SmartHomeGenerator::SmartHomeGenerator() {
  schema_.AddAttr("house");  // group-by key
  schema_.AddAttr("plug");
  schema_.AddAttr("value");
  schema_.AddType("Load");
  schema_.AddType("Work");
  schema_.AddType("Switch");
  schema_.AddType("Spike");
  schema_.AddType("Idle");
}

std::unique_ptr<EventCursor> SmartHomeGenerator::Stream(
    const GeneratorConfig& config) {
  return std::make_unique<SmartHomeCursor>(config);
}

}  // namespace hamlet
