// Burst-adaptive staging-batch controller for the sharded ingress path.
//
// HAMLET's thesis (§5) is that the right execution decision changes per
// burst: a choice tuned for steady load loses during bursts and lulls.
// RunConfig::shard_batch_size is exactly such a static choice — one fixed
// staging batch for the whole run. A value tuned for bursts (large, to
// amortize queue messages) over-delays emission delivery during lulls,
// because staged events sit in the producer's buffer until the batch fills;
// a value tuned for lulls (small, to hand events off promptly) drowns
// bursts in per-event queue traffic.
//
// AdaptiveBatchController makes the batch size burst-granular, the same way
// HAMLET makes sharing decisions burst-granular: pure arithmetic on two
// signals the producer already has in hand — the observed inter-arrival
// gap (wall clock) and the shard queue's occupancy — no timers, no extra
// threads, one decision per staged event:
//
//  * queue deep (>= 1/4 full): the worker is far behind; jump straight to
//    the configured maximum so every enqueue amortizes maximally;
//  * queue non-empty: the worker is behind; grow multiplicatively toward
//    the maximum (a burst ramps 1 -> max in ~log2(max) events);
//  * queue drained and the inter-arrival gap opening (>> its EWMA): a lull;
//    halve toward 1 so each event is handed off — and delivered — promptly;
//  * queue drained, arrivals steady: the worker keeps up; decay gently
//    toward 1, since batching is buying nothing but latency.
//
// The controller is deterministic in its observation sequence (time enters
// only through the `now_seconds` argument), so tests drive it with a
// synthetic clock — the same RunConfig::clock_override hook the session's
// latency attribution uses. Correctness never depends on its choices: batch
// boundaries only move events between messages, and the runtime's
// watermark/Close barriers flush staging regardless (see
// tests/adaptive_ingress_test.cc for the equivalence proof).
#ifndef HAMLET_STREAM_ADAPTIVE_BATCHER_H_
#define HAMLET_STREAM_ADAPTIVE_BATCHER_H_

#include <cstddef>

namespace hamlet {

/// See file comment. One instance per shard, touched only by the ingest
/// (producer) thread.
class AdaptiveBatchController {
 public:
  /// EWMA weight of the newest inter-arrival gap.
  static constexpr double kGapAlpha = 0.125;
  /// Queue occupancy at or above which the target jumps straight to max.
  static constexpr double kDeepOccupancy = 0.25;
  /// Multiplicative growth per staged event while the queue is non-empty.
  static constexpr double kGrow = 2.0;
  /// Multiplicative shrink per staged event when a lull gap opens.
  static constexpr double kShrink = 0.5;
  /// A gap this many times the EWMA gap counts as a lull opening.
  static constexpr double kLullGapFactor = 4.0;
  /// Any drained-queue gap at or above this absolute width (1 ms) is a lull
  /// regardless of the EWMA: at such rates a staged event would wait many
  /// times the per-message hand-off cost, so batching buys nothing. Without
  /// an absolute criterion the EWMA adapts to a sustained lull and the
  /// relative test stops firing with the target still high.
  static constexpr double kLullGapSeconds = 1e-3;
  /// Decay per staged event when the queue is drained and arrivals steady.
  static constexpr double kDrainDecay = 0.98;

  /// `max_batch` (>= 1) is the ceiling the target grows toward — the
  /// session passes RunConfig::shard_batch_size. The controller starts at
  /// 1 (lull posture: deliver promptly until a burst proves otherwise).
  explicit AdaptiveBatchController(int max_batch)
      : max_batch_(max_batch < 1 ? 1 : max_batch) {}

  /// Records one staged event observed at `now_seconds` (monotonic) with
  /// the shard's queue holding `queue_depth` of `queue_capacity` messages,
  /// and returns the updated target batch size in [1, max_batch].
  int Observe(double now_seconds, size_t queue_depth, size_t queue_capacity);

  /// The current target without recording an observation.
  int target() const { return static_cast<int>(target_); }

  int max_batch() const { return max_batch_; }

 private:
  int max_batch_;
  /// Kept as a double so gentle decay accumulates across events.
  double target_ = 1.0;
  double last_arrival_ = -1.0;
  double ewma_gap_ = 0.0;
};

}  // namespace hamlet

#endif  // HAMLET_STREAM_ADAPTIVE_BATCHER_H_
