#include "src/common/check.h"
#include "src/stream/generators.h"

namespace hamlet {
namespace generator_internal {

BurstProcess::BurstProcess(std::vector<TypeWeight> weights, double burstiness,
                           int max_burst)
    : weights_(std::move(weights)),
      total_weight_(0.0),
      burstiness_(burstiness),
      max_burst_(max_burst) {
  HAMLET_CHECK(!weights_.empty());
  for (const TypeWeight& w : weights_) total_weight_ += w.weight;
  HAMLET_CHECK(total_weight_ > 0.0);
}

TypeId BurstProcess::PickType(TypeId exclude, Rng& rng) {
  // Rejection-sample so a new burst always changes type, keeping bursts
  // maximal same-type runs (Definition 10's "complete burst" boundaries).
  for (int attempt = 0; attempt < 64; ++attempt) {
    double r = rng.NextDouble() * total_weight_;
    for (const TypeWeight& w : weights_) {
      r -= w.weight;
      if (r <= 0.0) {
        if (w.type != exclude || weights_.size() == 1) return w.type;
        break;
      }
    }
  }
  // Degenerate weights; fall back to the first non-excluded type.
  for (const TypeWeight& w : weights_) {
    if (w.type != exclude) return w.type;
  }
  return weights_.front().type;
}

TypeId BurstProcess::Next(int g, Rng& rng) {
  if (g >= static_cast<int>(groups_.size())) {
    groups_.resize(static_cast<size_t>(g) + 1);
  }
  GroupState& state = groups_[static_cast<size_t>(g)];
  if (state.remaining == 0) {
    state.current = PickType(state.current, rng);
    state.remaining = rng.NextBurstLength(burstiness_, max_burst_);
  }
  --state.remaining;
  return state.current;
}

}  // namespace generator_internal
}  // namespace hamlet
