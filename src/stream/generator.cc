#include "src/stream/generator.h"

#include <algorithm>

#include "src/stream/generators.h"

namespace hamlet {

EventVector StreamGenerator::Generate(const GeneratorConfig& config) {
  EventVector out;
  out.reserve(static_cast<size_t>(std::max(config.events_per_minute, 0)) *
              static_cast<size_t>(std::max(config.duration_minutes, 0)));
  std::unique_ptr<EventCursor> cursor = Stream(config);
  Event e;
  while (cursor->Next(&e)) out.push_back(e);
  return out;
}

std::unique_ptr<StreamGenerator> MakeGenerator(const std::string& dataset) {
  if (dataset == "ridesharing") return std::make_unique<RidesharingGenerator>();
  if (dataset == "nyc_taxi") return std::make_unique<NycTaxiGenerator>();
  if (dataset == "smart_home") return std::make_unique<SmartHomeGenerator>();
  if (dataset == "stock") return std::make_unique<StockGenerator>();
  return nullptr;
}

namespace generator_internal {

std::vector<Timestamp> SpreadTimestamps(Timestamp start, Timestamp span_ms,
                                        int n, Rng& rng) {
  std::vector<Timestamp> out;
  out.reserve(static_cast<size_t>(n));
  if (n <= 0) return out;
  // Draw n offsets, sort, then force strict monotonicity.
  for (int i = 0; i < n; ++i) {
    out.push_back(start +
                  static_cast<Timestamp>(rng.NextBelow(
                      static_cast<uint64_t>(std::max<Timestamp>(span_ms, 1)))));
  }
  std::sort(out.begin(), out.end());
  for (size_t i = 1; i < out.size(); ++i) {
    if (out[i] <= out[i - 1]) out[i] = out[i - 1] + 1;
  }
  return out;
}

bool TimestampChunker::Next(Rng& rng, Timestamp* t) {
  while (pos_ >= chunk_.size()) {
    if (minute_ >= minutes_) return false;
    chunk_ = SpreadTimestamps(
        static_cast<Timestamp>(minute_) * kMillisPerMinute, kMillisPerMinute,
        events_per_minute_, rng);
    // Chunks are drawn independently; enforce strict monotonicity across
    // the boundary (the fix-ups inside a chunk can spill past its span).
    for (Timestamp& ts : chunk_) {
      if (ts <= last_) ts = last_ + 1;
      last_ = ts;
    }
    pos_ = 0;
    ++minute_;
  }
  *t = chunk_[pos_++];
  return true;
}

}  // namespace generator_internal
}  // namespace hamlet
