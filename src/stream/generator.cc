#include "src/stream/generator.h"

#include <algorithm>

#include "src/stream/generators.h"

namespace hamlet {

std::unique_ptr<StreamGenerator> MakeGenerator(const std::string& dataset) {
  if (dataset == "ridesharing") return std::make_unique<RidesharingGenerator>();
  if (dataset == "nyc_taxi") return std::make_unique<NycTaxiGenerator>();
  if (dataset == "smart_home") return std::make_unique<SmartHomeGenerator>();
  if (dataset == "stock") return std::make_unique<StockGenerator>();
  return nullptr;
}

namespace generator_internal {

std::vector<Timestamp> SpreadTimestamps(Timestamp start, Timestamp span_ms,
                                        int n, Rng& rng) {
  std::vector<Timestamp> out;
  out.reserve(static_cast<size_t>(n));
  if (n <= 0) return out;
  // Draw n offsets, sort, then force strict monotonicity.
  for (int i = 0; i < n; ++i) {
    out.push_back(start +
                  static_cast<Timestamp>(rng.NextBelow(
                      static_cast<uint64_t>(std::max<Timestamp>(span_ms, 1)))));
  }
  std::sort(out.begin(), out.end());
  for (size_t i = 1; i < out.size(); ++i) {
    if (out[i] <= out[i - 1]) out[i] = out[i - 1] + 1;
  }
  return out;
}

}  // namespace generator_internal
}  // namespace hamlet
